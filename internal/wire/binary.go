// Binary framing for protocol version 4.
//
// A binary frame is a fixed 8-byte header followed by the body:
//
//	[0] 0xEC       magic; never a legal first byte of a JSON length prefix
//	[1] kind       message kind (kind* constants, mirrors Message.Type)
//	[2:4] flags    big-endian; bit 0 = heartbeat payload present
//	[4:8] length   big-endian body length, <= MaxFrame
//
// Hot message types (flow events, batches, allocations, heartbeats, job
// updates, errors) use hand-rolled field encodings: uvarint-length-prefixed
// strings, big-endian float64 for scalar quantities, uvarint counters. The
// two cold, structurally open-ended types (register, submit_job) embed their
// JSON encoding as the frame body — they happen once per job, and reusing
// encoding/json there keeps the two codecs trivially equivalent on the
// hardest structures (core.Spec trees).
//
// Observational identity with the JSON codec is part of the contract (the
// cross-codec fuzz target enforces it): the binary encoders reject the same
// values json.Marshal rejects (NaN and infinite floats) and reproduce JSON's
// round-trip canonicalizations (a heartbeat's pointer presence, a nil versus
// empty allocation map, an empty host list decoding as nil).
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"echelonflow/internal/unit"
)

// Frame constants.
const (
	binaryMagic      = 0xEC
	binaryHeaderSize = 8

	// flagHeartbeatPayload marks a heartbeat frame that carries a Heartbeat
	// payload (possibly with nonce 0); without it the heartbeat is a bare
	// keepalive, mirroring a nil *Heartbeat in the JSON envelope.
	flagHeartbeatPayload uint16 = 1 << 0
)

// Message kinds, one per Message.Type.
const (
	kindHello      = 1
	kindRegister   = 2
	kindUnregister = 3
	kindFlowEvent  = 4
	kindAllocation = 5
	kindHeartbeat  = 6
	kindError      = 7
	kindSubmitJob  = 8
	kindJobUpdate  = 9
	kindFlowBatch  = 10
)

// Compact flow-event codes (wire only; the structs keep their strings).
const (
	evReleased = 1
	evFinished = 2
	evResumed  = 3
)

// Compact job-status codes.
const (
	jsQueued   = 1
	jsAdmitted = 2
	jsRejected = 3
	jsDeparted = 4
)

// maxInternedNames bounds the per-codec intern table; beyond it, decoded
// strings are returned without being remembered (correct, just slower for a
// pathological peer cycling through unbounded distinct IDs).
const maxInternedNames = 4096

// appendBinaryFrame appends one framed message to b, which the caller hands
// to the stream as a single write. The message is assumed Validate()-clean.
func appendBinaryFrame(b []byte, m *Message) ([]byte, error) {
	var kind byte
	var flags uint16
	switch m.Type {
	case TypeHello:
		kind = kindHello
	case TypeRegister:
		kind = kindRegister
	case TypeUnregister:
		kind = kindUnregister
	case TypeFlowEvent:
		kind = kindFlowEvent
	case TypeAllocation:
		kind = kindAllocation
	case TypeHeartbeat:
		kind = kindHeartbeat
		if m.Heartbeat != nil {
			flags |= flagHeartbeatPayload
		}
	case TypeError:
		kind = kindError
	case TypeSubmitJob:
		kind = kindSubmitJob
	case TypeJobUpdate:
		kind = kindJobUpdate
	case TypeFlowBatch:
		kind = kindFlowBatch
	default:
		return nil, fmt.Errorf("wire: no binary encoding for type %q", m.Type)
	}
	start := len(b)
	b = append(b, binaryMagic, kind, byte(flags>>8), byte(flags), 0, 0, 0, 0)
	body, err := appendBinaryBody(b, m)
	if err != nil {
		return nil, err
	}
	b = body
	n := len(b) - start - binaryHeaderSize
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[start+4:start+8], uint32(n))
	return b, nil
}

// appendBinaryBody appends the body for m's type.
func appendBinaryBody(b []byte, m *Message) ([]byte, error) {
	switch m.Type {
	case TypeHello:
		b = appendString(b, m.Hello.Agent)
		return binary.AppendVarint(b, int64(m.Hello.Version)), nil
	case TypeRegister:
		return appendJSONBody(b, Message{Type: m.Type, Register: m.Register})
	case TypeUnregister:
		return appendString(b, m.Unregister.GroupID), nil
	case TypeFlowEvent:
		return appendFlowEvent(b, m.FlowEvent)
	case TypeAllocation:
		return appendAllocation(b, m.Allocation)
	case TypeHeartbeat:
		if m.Heartbeat == nil {
			return b, nil
		}
		return binary.AppendUvarint(b, m.Heartbeat.Nonce), nil
	case TypeError:
		b = appendString(b, m.Error.Msg)
		return appendString(b, m.Error.Code), nil
	case TypeSubmitJob:
		return appendJSONBody(b, Message{Type: m.Type, SubmitJob: m.SubmitJob})
	case TypeJobUpdate:
		return appendJobUpdate(b, m.JobUpdate)
	case TypeFlowBatch:
		b = binary.AppendUvarint(b, uint64(len(m.FlowBatch.Events)))
		var err error
		for i := range m.FlowBatch.Events {
			if b, err = appendFlowEvent(b, &m.FlowBatch.Events[i]); err != nil {
				return nil, err
			}
		}
		return b, nil
	}
	return nil, fmt.Errorf("wire: no binary encoding for type %q", m.Type)
}

func appendFlowEvent(b []byte, e *FlowEvent) ([]byte, error) {
	var code byte
	switch e.Event {
	case EventReleased:
		code = evReleased
	case EventFinished:
		code = evFinished
	case EventResumed:
		code = evResumed
	default:
		return nil, fmt.Errorf("wire: unknown flow event %q", e.Event)
	}
	if err := checkFinite(float64(e.Offset)); err != nil {
		return nil, err
	}
	b = appendString(b, e.GroupID)
	b = appendString(b, e.FlowID)
	b = append(b, code)
	return appendFloat(b, float64(e.Offset)), nil
}

func appendAllocation(b []byte, a *Allocation) ([]byte, error) {
	// A nil map and an empty map are distinct on the wire, exactly as they
	// are in JSON ("rates":null versus "rates":{}).
	if a.Rates == nil {
		return append(b, 0), nil
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(a.Rates)))
	for id, r := range a.Rates {
		if err := checkFinite(float64(r)); err != nil {
			return nil, err
		}
		b = appendString(b, id)
		b = appendFloat(b, float64(r))
	}
	return b, nil
}

func appendJobUpdate(b []byte, u *JobUpdate) ([]byte, error) {
	var code byte
	switch u.Status {
	case JobQueued:
		code = jsQueued
	case JobAdmitted:
		code = jsAdmitted
	case JobRejected:
		code = jsRejected
	case JobDeparted:
		code = jsDeparted
	default:
		return nil, fmt.Errorf("wire: unknown job status %q", u.Status)
	}
	b = appendString(b, u.JobID)
	b = append(b, code)
	b = binary.AppendUvarint(b, uint64(len(u.Hosts)))
	for _, h := range u.Hosts {
		b = appendString(b, h)
	}
	return appendString(b, u.Reason), nil
}

// appendJSONBody embeds the envelope's JSON encoding as the frame body, for
// the cold structurally-open message types. By-value on purpose: the callers
// rebuild a minimal envelope so the marshal's boxing escapes this copy, not
// the hot path's.
func appendJSONBody(b []byte, m Message) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	return append(b, body...), nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// checkFinite rejects the float values json.Marshal rejects, keeping the
// codecs' accepted-input sets identical.
func checkFinite(f float64) error {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("wire: marshal: unsupported value: %v", f)
	}
	return nil
}

// decodeBinary decodes one binary frame body into m. Strings that recur on
// the hot path (group and flow IDs, host names) are interned on the codec so
// steady-state decodes stop allocating them.
func (c *Codec) decodeBinary(kind byte, flags uint16, body []byte, m *Message) error {
	r := binReader{b: body}
	switch kind {
	case kindHello:
		agent, err := r.str(c)
		if err == nil {
			var v int64
			v, err = r.varint()
			if err == nil {
				m.Type = TypeHello
				m.Hello = &Hello{Agent: agent, Version: int(v)}
			}
		}
		if err != nil {
			return fmt.Errorf("wire: decode hello: %w", err)
		}
	case kindRegister, kindSubmitJob:
		if err := decodeJSONEnvelope(body, m); err != nil {
			return err
		}
		return nil // envelope carries its own type; no tail check on JSON
	case kindUnregister:
		g, err := r.str(c)
		if err != nil {
			return fmt.Errorf("wire: decode unregister: %w", err)
		}
		m.Type = TypeUnregister
		m.Unregister = &Unregister{GroupID: g}
	case kindFlowEvent:
		ev, err := r.flowEvent(c)
		if err != nil {
			return fmt.Errorf("wire: decode flow_event: %w", err)
		}
		m.Type = TypeFlowEvent
		m.FlowEvent = &ev
	case kindAllocation:
		a, err := r.allocation(c)
		if err != nil {
			return fmt.Errorf("wire: decode allocation: %w", err)
		}
		m.Type = TypeAllocation
		m.Allocation = a
	case kindHeartbeat:
		m.Type = TypeHeartbeat
		if flags&flagHeartbeatPayload != 0 {
			nonce, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("wire: decode heartbeat: %w", err)
			}
			m.Heartbeat = &Heartbeat{Nonce: nonce}
		}
	case kindError:
		msg, err := r.str(c)
		var code string
		if err == nil {
			code, err = r.str(c)
		}
		if err != nil {
			return fmt.Errorf("wire: decode error: %w", err)
		}
		m.Type = TypeError
		m.Error = &Error{Msg: msg, Code: code}
	case kindJobUpdate:
		u, err := r.jobUpdate(c)
		if err != nil {
			return fmt.Errorf("wire: decode job_update: %w", err)
		}
		m.Type = TypeJobUpdate
		m.JobUpdate = u
	case kindFlowBatch:
		n, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("wire: decode flow_batch: %w", err)
		}
		if n > uint64(len(r.b)) {
			// Each event costs >= 1 byte; a larger count is malformed, and
			// checking here keeps the allocation bounded by the frame size.
			return fmt.Errorf("wire: decode flow_batch: count %d exceeds body", n)
		}
		evs := make([]FlowEvent, n)
		for i := range evs {
			if evs[i], err = r.flowEvent(c); err != nil {
				return fmt.Errorf("wire: decode flow_batch: %w", err)
			}
		}
		m.Type = TypeFlowBatch
		m.FlowBatch = &FlowBatch{Events: evs}
	default:
		return fmt.Errorf("wire: unknown binary frame kind %d", kind)
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after binary body", len(r.b))
	}
	return nil
}

// intern returns the canonical copy of raw, remembering new names up to
// maxInternedNames. The map lookup with a string(raw) key does not allocate;
// only a first-seen name costs its copy.
func (c *Codec) intern(raw []byte) string {
	if s, ok := c.names[string(raw)]; ok {
		return s
	}
	s := string(raw)
	if len(c.names) < maxInternedNames {
		if c.names == nil {
			c.names = make(map[string]string, 64)
		}
		c.names[s] = s
	}
	return s
}

// binReader is a bounds-checked cursor over a binary frame body.
type binReader struct {
	b []byte
}

var errShortBody = fmt.Errorf("wire: binary body truncated")

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortBody
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errShortBody
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *binReader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, errShortBody
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	if len(r.b) < 8 {
		return 0, errShortBody
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

func (r *binReader) str(c *Codec) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", errShortBody
	}
	s := c.intern(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *binReader) flowEvent(c *Codec) (FlowEvent, error) {
	group, err := r.str(c)
	if err != nil {
		return FlowEvent{}, err
	}
	flow, err := r.str(c)
	if err != nil {
		return FlowEvent{}, err
	}
	code, err := r.u8()
	if err != nil {
		return FlowEvent{}, err
	}
	off, err := r.f64()
	if err != nil {
		return FlowEvent{}, err
	}
	ev := FlowEvent{GroupID: group, FlowID: flow, Offset: unit.Bytes(off)}
	switch code {
	case evReleased:
		ev.Event = EventReleased
	case evFinished:
		ev.Event = EventFinished
	case evResumed:
		ev.Event = EventResumed
	default:
		return FlowEvent{}, fmt.Errorf("wire: unknown flow event code %d", code)
	}
	return ev, nil
}

func (r *binReader) allocation(c *Codec) (*Allocation, error) {
	present, err := r.u8()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return &Allocation{}, nil
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("wire: allocation count %d exceeds body", n)
	}
	rates := make(map[string]unit.Rate, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.str(c)
		if err != nil {
			return nil, err
		}
		v, err := r.f64()
		if err != nil {
			return nil, err
		}
		rates[id] = unit.Rate(v)
	}
	return &Allocation{Rates: rates}, nil
}

func (r *binReader) jobUpdate(c *Codec) (*JobUpdate, error) {
	id, err := r.str(c)
	if err != nil {
		return nil, err
	}
	code, err := r.u8()
	if err != nil {
		return nil, err
	}
	u := &JobUpdate{JobID: id}
	switch code {
	case jsQueued:
		u.Status = JobQueued
	case jsAdmitted:
		u.Status = JobAdmitted
	case jsRejected:
		u.Status = JobRejected
	case jsDeparted:
		u.Status = JobDeparted
	default:
		return nil, fmt.Errorf("wire: unknown job status code %d", code)
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("wire: host count %d exceeds body", n)
	}
	if n > 0 { // zero hosts decode as nil, matching JSON's omitempty
		u.Hosts = make([]string, n)
		for i := range u.Hosts {
			if u.Hosts[i], err = r.str(c); err != nil {
				return nil, err
			}
		}
	}
	if u.Reason, err = r.str(c); err != nil {
		return nil, err
	}
	return u, nil
}
