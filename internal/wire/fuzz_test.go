package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"unicode/utf8"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// frame wraps a body in the codec's length prefix for seed corpora.
func frame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// FuzzRecv feeds arbitrary byte streams into Codec.Recv: it must never
// panic, never allocate beyond the frame limit for an unbacked length
// prefix, and every message it does accept must validate.
func FuzzRecv(f *testing.F) {
	// Valid frames.
	for _, m := range []Message{
		{Type: TypeHeartbeat},
		{Type: TypeHello, Hello: &Hello{Agent: "a1", Version: ProtocolVersion}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventResumed, Offset: 7}},
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f": 1}}},
	} {
		body, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame(body))
	}
	// Binary frames, valid and hostile: the receiver auto-detects framing
	// per frame, so the same fuzz target covers both decoders.
	for _, m := range []Message{
		{Type: TypeHeartbeat, Heartbeat: &Heartbeat{Nonce: 7}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventReleased}},
		{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: []FlowEvent{
			{GroupID: "g", FlowID: "f", Event: EventFinished}}}},
	} {
		b, err := appendBinaryFrame(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{binaryMagic, 99, 0, 0, 0, 0, 0, 0})             // unknown kind
	f.Add([]byte{binaryMagic, kindFlowEvent, 0, 0, 0, 0, 0, 3})  // truncated body
	f.Add([]byte{binaryMagic, kindUnregister, 0, 0, 0, 0, 0, 1, 200}) // string overrun
	// Truncated frame: header promises more than the stream holds.
	f.Add(frame([]byte(`{"type":"heartbeat"}`))[:12])
	// Oversize length prefix.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, '{', '}'})
	// Payload/type mismatches and junk bodies.
	f.Add(frame([]byte(`{"type":"hello"}`)))
	f.Add(frame([]byte(`{"type":"flow_event","flow_event":{"event":"exploded"}}`)))
	f.Add(frame([]byte(`{"type":"flow_event","flow_event":{"event":"resumed","offset":-3}}`)))
	f.Add(frame([]byte(`not json at all`)))
	f.Add(frame(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(readOnly{bytes.NewReader(data)})
		for i := 0; i < 64; i++ {
			m, err := c.Recv()
			if err != nil {
				return // any framed garbage must fail cleanly, not panic
			}
			if verr := m.Validate(); verr != nil {
				t.Fatalf("Recv accepted an invalid message %+v: %v", m, verr)
			}
			// Accepted register payloads must also survive group
			// reconstruction without panicking (arrangement specs come off
			// the wire too).
			if m.Type == TypeRegister {
				_, _ = m.Register.Group()
			}
		}
	})
}

// FuzzRoundTrip builds syntactically valid messages from fuzzed fields and
// checks Send/Recv is lossless: what one peer frames, the other decodes
// bit-for-bit.
func FuzzRoundTrip(f *testing.F) {
	f.Add("hello", "a1", 2, "g", "f", "released", 0.0, 1.5)
	f.Add("flow_event", "", 0, "job/pp", "f0", "resumed", 4096.0, 0.0)
	f.Add("unregister", "", 0, "job/pp", "", "", 0.0, 0.0)
	f.Add("allocation", "", 0, "", "flow-x", "", 0.0, 123.25)
	f.Add("heartbeat", "", 0, "", "", "", 0.0, 0.0)
	f.Add("error", "", 0, "boom", "", "", 0.0, 0.0)

	f.Fuzz(func(t *testing.T, typ, agent string, version int, groupID, flowID, event string, offset, rate float64) {
		// encoding/json coerces invalid UTF-8 to U+FFFD, which is lossy by
		// design, not a framing defect — only fuzz representable strings.
		for _, s := range []string{typ, agent, groupID, flowID, event} {
			if !utf8.ValidString(s) {
				t.Skip()
			}
		}
		// JSON has no encoding for NaN or the infinities.
		for _, v := range []float64{offset, rate} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		m := Message{Type: typ}
		switch typ {
		case TypeHello:
			m.Hello = &Hello{Agent: agent, Version: version}
		case TypeUnregister:
			m.Unregister = &Unregister{GroupID: groupID}
		case TypeFlowEvent:
			m.FlowEvent = &FlowEvent{GroupID: groupID, FlowID: flowID, Event: event, Offset: unit.Bytes(offset)}
		case TypeAllocation:
			m.Allocation = &Allocation{Rates: map[string]unit.Rate{flowID: unit.Rate(rate)}}
		case TypeError:
			m.Error = &Error{Msg: groupID}
		case TypeHeartbeat:
		default:
			// Unknown types must be rejected by Send, never framed.
			var buf bytes.Buffer
			if err := NewCodec(rw{&buf}).Send(m); err == nil {
				t.Fatalf("Send accepted unknown type %q", typ)
			}
			return
		}
		var buf bytes.Buffer
		c := NewCodec(rw{&buf})
		if err := c.Send(m); err != nil {
			// Send rejects invalid field combinations (e.g. a bad flow
			// event); Recv must agree if we frame the body ourselves.
			if m.Validate() == nil {
				t.Fatalf("Send rejected a valid message: %v", err)
			}
			return
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv failed on Send output: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", m, got)
		}
	})
}

// FuzzCrossCodec is the differential oracle over the two framings: a message
// built from fuzzed fields is sent through a JSON codec and a binary codec,
// and both must agree — identical accept/reject verdicts, and deeply-equal
// decoded messages on accept. Checked-in seed corpora under
// testdata/fuzz/FuzzCrossCodec cover every message type, heartbeat nonce
// shapes, and boundary batch/host counts.
func FuzzCrossCodec(f *testing.F) {
	// typ selects the message; count drives batch/host/rate-map sizes (its
	// sign selects nil-vs-empty and payload presence corners).
	f.Add("hello", "a1", 4, "g", "f", "released", 0.0, 1.5, uint64(0), 1, "w1", "")
	f.Add("register", "", 0, "job/pp", "f0", "", 0.0, 0.0, uint64(0), 0, "", "")
	f.Add("unregister", "", 0, "job/pp", "", "", 0.0, 0.0, uint64(0), 0, "", "")
	f.Add("flow_event", "", 0, "g", "f", "resumed", 4096.0, 0.0, uint64(0), 0, "", "")
	f.Add("flow_event", "", 0, "g", "f", "exploded", -1.0, 0.0, uint64(0), 0, "", "")
	f.Add("flow_batch", "", 0, "g", "f", "finished", 0.5, 0.0, uint64(0), 32, "", "")
	f.Add("flow_batch", "", 0, "g", "f", "released", 0.0, 0.0, uint64(0), 0, "", "")
	f.Add("allocation", "", 0, "", "flow-x", "", 0.0, 123.25, uint64(0), 16, "", "")
	f.Add("allocation", "", 0, "", "", "", 0.0, 0.0, uint64(0), -1, "", "")
	f.Add("heartbeat", "", 0, "", "", "", 0.0, 0.0, uint64(991), 1, "", "")
	f.Add("heartbeat", "", 0, "", "", "", 0.0, 0.0, uint64(0), -1, "", "")
	f.Add("submit_job", "", 0, "", "j0", "", 0.0, 0.0, uint64(0), 2, "", "")
	f.Add("job_update", "", 2, "", "j0", "", 0.0, 0.0, uint64(0), 3, "w1", "no fit")
	f.Add("error", "", 0, "boom", "", "", 0.0, 0.0, uint64(0), 0, "", "throttled")

	regBase := Register{GroupID: "job/pp"}
	if g, err := core.New("job/pp", core.Pipeline{T: 2.5},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 100}); err == nil {
		if reg, err := RegisterOf(g); err == nil {
			regBase = reg
		}
	}

	f.Fuzz(func(t *testing.T, typ, agent string, version int, groupID, flowID, event string,
		offset, rate float64, nonce uint64, count int, host, reason string) {
		for _, s := range []string{typ, agent, groupID, flowID, event, host, reason} {
			if !utf8.ValidString(s) {
				t.Skip() // JSON coerces invalid UTF-8; lossy by design
			}
		}
		for _, v := range []float64{offset, rate} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip() // rejected identically by both codecs, nothing to compare
			}
		}
		n := count
		if n < 0 {
			n = 0
		}
		if n > 64 {
			n = n % 64
		}
		m := Message{Type: typ}
		switch typ {
		case TypeHello:
			m.Hello = &Hello{Agent: agent, Version: version}
		case TypeRegister:
			reg := regBase
			reg.GroupID = groupID
			m.Register = &reg
		case TypeUnregister:
			m.Unregister = &Unregister{GroupID: groupID}
		case TypeFlowEvent:
			m.FlowEvent = &FlowEvent{GroupID: groupID, FlowID: flowID, Event: event, Offset: unit.Bytes(offset)}
		case TypeFlowBatch:
			evs := make([]FlowEvent, n)
			kinds := []string{EventReleased, EventFinished, EventResumed, event}
			for i := range evs {
				evs[i] = FlowEvent{GroupID: groupID, FlowID: flowID, Event: kinds[i%len(kinds)], Offset: unit.Bytes(offset)}
			}
			m.FlowBatch = &FlowBatch{Events: evs}
		case TypeAllocation:
			a := &Allocation{}
			if count >= 0 { // negative count = nil map corner
				a.Rates = make(map[string]unit.Rate, n)
				for i := 0; i < n; i++ {
					a.Rates[flowID+string(rune('a'+i%26))] = unit.Rate(rate) + unit.Rate(i)
				}
			}
			m.Allocation = a
		case TypeHeartbeat:
			if count >= 0 { // negative count = bare keepalive corner
				m.Heartbeat = &Heartbeat{Nonce: nonce}
			}
		case TypeSubmitJob:
			job := JobSpec{ID: flowID, Tenant: agent, Paradigm: "dp", Workers: max(n, 1),
				Layers: 2, Params: unit.Bytes(offset), Fwd: 0.1, Bwd: 0.1, Iterations: 1}
			m.SubmitJob = &SubmitJob{Job: job}
		case TypeJobUpdate:
			statuses := []string{JobQueued, JobAdmitted, JobRejected, JobDeparted, event}
			u := &JobUpdate{JobID: flowID, Status: statuses[((version%5)+5)%5], Reason: reason}
			for i := 0; i < n; i++ {
				u.Hosts = append(u.Hosts, host)
			}
			m.JobUpdate = u
		case TypeError:
			m.Error = &Error{Msg: groupID, Code: reason}
		default:
			// Unknown types must be rejected by both send paths.
			for _, bin := range []bool{false, true} {
				var buf bytes.Buffer
				c := NewCodec(rw{&buf})
				if bin {
					c.EnableBinary()
				}
				if err := c.Send(m); err == nil {
					t.Fatalf("binary=%v accepted unknown type %q", bin, typ)
				}
			}
			return
		}

		sendOne := func(bin bool) (Message, error) {
			var buf bytes.Buffer
			c := NewCodec(rw{&buf})
			if bin {
				c.EnableBinary()
			}
			if err := c.Send(m); err != nil {
				return Message{}, err
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("binary=%v Recv failed on own Send output: %v", bin, err)
			}
			return got, nil
		}
		viaJSON, errJSON := sendOne(false)
		viaBin, errBin := sendOne(true)
		if (errJSON == nil) != (errBin == nil) {
			t.Fatalf("codecs disagree on acceptance: json=%v binary=%v", errJSON, errBin)
		}
		if errJSON != nil {
			if m.Validate() == nil {
				t.Fatalf("both codecs rejected a valid message: %v", errJSON)
			}
			return
		}
		if !reflect.DeepEqual(viaJSON, viaBin) {
			t.Fatalf("codecs decode differently:\njson   %+v\nbinary %+v", viaJSON, viaBin)
		}
		if !reflect.DeepEqual(m, viaBin) {
			t.Fatalf("binary round trip lossy:\nsent %+v\ngot  %+v", m, viaBin)
		}
	})
}

// rw adapts a single buffer into the codec's ReadWriter.
type rw struct{ *bytes.Buffer }

// readOnly exposes a reader as a ReadWriter whose writes are discarded.
type readOnly struct{ *bytes.Reader }

func (readOnly) Write(p []byte) (int, error) { return len(p), nil }
