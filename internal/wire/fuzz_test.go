package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"unicode/utf8"

	"echelonflow/internal/unit"
)

// frame wraps a body in the codec's length prefix for seed corpora.
func frame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// FuzzRecv feeds arbitrary byte streams into Codec.Recv: it must never
// panic, never allocate beyond the frame limit for an unbacked length
// prefix, and every message it does accept must validate.
func FuzzRecv(f *testing.F) {
	// Valid frames.
	for _, m := range []Message{
		{Type: TypeHeartbeat},
		{Type: TypeHello, Hello: &Hello{Agent: "a1", Version: ProtocolVersion}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventResumed, Offset: 7}},
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f": 1}}},
	} {
		body, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame(body))
	}
	// Truncated frame: header promises more than the stream holds.
	f.Add(frame([]byte(`{"type":"heartbeat"}`))[:12])
	// Oversize length prefix.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, '{', '}'})
	// Payload/type mismatches and junk bodies.
	f.Add(frame([]byte(`{"type":"hello"}`)))
	f.Add(frame([]byte(`{"type":"flow_event","flow_event":{"event":"exploded"}}`)))
	f.Add(frame([]byte(`{"type":"flow_event","flow_event":{"event":"resumed","offset":-3}}`)))
	f.Add(frame([]byte(`not json at all`)))
	f.Add(frame(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCodec(readOnly{bytes.NewReader(data)})
		for i := 0; i < 64; i++ {
			m, err := c.Recv()
			if err != nil {
				return // any framed garbage must fail cleanly, not panic
			}
			if verr := m.Validate(); verr != nil {
				t.Fatalf("Recv accepted an invalid message %+v: %v", m, verr)
			}
			// Accepted register payloads must also survive group
			// reconstruction without panicking (arrangement specs come off
			// the wire too).
			if m.Type == TypeRegister {
				_, _ = m.Register.Group()
			}
		}
	})
}

// FuzzRoundTrip builds syntactically valid messages from fuzzed fields and
// checks Send/Recv is lossless: what one peer frames, the other decodes
// bit-for-bit.
func FuzzRoundTrip(f *testing.F) {
	f.Add("hello", "a1", 2, "g", "f", "released", 0.0, 1.5)
	f.Add("flow_event", "", 0, "job/pp", "f0", "resumed", 4096.0, 0.0)
	f.Add("unregister", "", 0, "job/pp", "", "", 0.0, 0.0)
	f.Add("allocation", "", 0, "", "flow-x", "", 0.0, 123.25)
	f.Add("heartbeat", "", 0, "", "", "", 0.0, 0.0)
	f.Add("error", "", 0, "boom", "", "", 0.0, 0.0)

	f.Fuzz(func(t *testing.T, typ, agent string, version int, groupID, flowID, event string, offset, rate float64) {
		// encoding/json coerces invalid UTF-8 to U+FFFD, which is lossy by
		// design, not a framing defect — only fuzz representable strings.
		for _, s := range []string{typ, agent, groupID, flowID, event} {
			if !utf8.ValidString(s) {
				t.Skip()
			}
		}
		// JSON has no encoding for NaN or the infinities.
		for _, v := range []float64{offset, rate} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		m := Message{Type: typ}
		switch typ {
		case TypeHello:
			m.Hello = &Hello{Agent: agent, Version: version}
		case TypeUnregister:
			m.Unregister = &Unregister{GroupID: groupID}
		case TypeFlowEvent:
			m.FlowEvent = &FlowEvent{GroupID: groupID, FlowID: flowID, Event: event, Offset: unit.Bytes(offset)}
		case TypeAllocation:
			m.Allocation = &Allocation{Rates: map[string]unit.Rate{flowID: unit.Rate(rate)}}
		case TypeError:
			m.Error = &Error{Msg: groupID}
		case TypeHeartbeat:
		default:
			// Unknown types must be rejected by Send, never framed.
			var buf bytes.Buffer
			if err := NewCodec(rw{&buf}).Send(m); err == nil {
				t.Fatalf("Send accepted unknown type %q", typ)
			}
			return
		}
		var buf bytes.Buffer
		c := NewCodec(rw{&buf})
		if err := c.Send(m); err != nil {
			// Send rejects invalid field combinations (e.g. a bad flow
			// event); Recv must agree if we frame the body ourselves.
			if m.Validate() == nil {
				t.Fatalf("Send rejected a valid message: %v", err)
			}
			return
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv failed on Send output: %v", err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\nsent %+v\ngot  %+v", m, got)
		}
	})
}

// rw adapts a single buffer into the codec's ReadWriter.
type rw struct{ *bytes.Buffer }

// readOnly exposes a reader as a ReadWriter whose writes are discarded.
type readOnly struct{ *bytes.Reader }

func (readOnly) Write(p []byte) (int, error) { return len(p), nil }
