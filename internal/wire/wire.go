// Package wire is the control protocol between EchelonFlow Agents and the
// Coordinator (Fig. 7): length-prefixed JSON messages over a byte stream.
// Agents report EchelonFlow registrations (arrangement function + per-flow
// size/source/destination, §5) and flow lifecycle events; the Coordinator
// pushes bandwidth allocations back.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// MaxFrame bounds a single message to keep a misbehaving peer from forcing
// unbounded allocation.
const MaxFrame = 16 << 20

// ProtocolVersion is the current control-protocol revision. Version 2 added
// reconnect support: Hello.Version, and the "resumed" flow event carrying a
// byte offset so a rejoining agent can continue an in-flight transfer. The
// coordinator accepts version 0 (field absent, pre-versioning agents)
// through ProtocolVersion.
const ProtocolVersion = 2

// Message type tags.
const (
	TypeHello      = "hello"
	TypeRegister   = "register"
	TypeUnregister = "unregister"
	TypeFlowEvent  = "flow_event"
	TypeAllocation = "allocation"
	TypeHeartbeat  = "heartbeat"
	TypeError      = "error"
)

// Flow event kinds.
const (
	EventReleased = "released"
	EventFinished = "finished"
	// EventResumed is sent by a rejoining agent for a flow that was
	// in-flight when its previous session died: Offset bytes are already
	// delivered, scheduling continues from the remainder.
	EventResumed = "resumed"
)

// FlowSpec mirrors core.Flow for transport.
type FlowSpec struct {
	ID    string     `json:"id"`
	Src   string     `json:"src"`
	Dst   string     `json:"dst"`
	Size  unit.Bytes `json:"size"`
	Stage int        `json:"stage"`
}

// Hello opens an agent session. An agent reconnecting under the same name
// takes over its previous session: parked groups are revived in place.
type Hello struct {
	Agent string `json:"agent"`
	// Version is the sender's ProtocolVersion; zero means a pre-versioning
	// peer (treated as version-1 semantics, no resume support).
	Version int `json:"version,omitempty"`
}

// Register announces an EchelonFlow: its arrangement function and flows.
type Register struct {
	GroupID     string     `json:"group_id"`
	Arrangement core.Spec  `json:"arrangement"`
	Flows       []FlowSpec `json:"flows"`
	Weight      float64    `json:"weight,omitempty"`
}

// Group reconstructs the registered EchelonFlow.
func (r Register) Group() (*core.EchelonFlow, error) {
	arr, err := r.Arrangement.Build()
	if err != nil {
		return nil, err
	}
	flows := make([]*core.Flow, len(r.Flows))
	for i, f := range r.Flows {
		flows[i] = &core.Flow{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, Stage: f.Stage}
	}
	g, err := core.New(r.GroupID, arr, flows...)
	if err != nil {
		return nil, err
	}
	g.Weight = r.Weight
	return g, nil
}

// RegisterOf serializes an EchelonFlow for transport.
func RegisterOf(g *core.EchelonFlow) (Register, error) {
	spec, err := core.SpecOf(g.Arrangement)
	if err != nil {
		return Register{}, err
	}
	flows := make([]FlowSpec, len(g.Flows))
	for i, f := range g.Flows {
		flows[i] = FlowSpec{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, Stage: f.Stage}
	}
	return Register{GroupID: g.ID, Arrangement: spec, Flows: flows, Weight: g.Weight}, nil
}

// Unregister removes an EchelonFlow (job departure).
type Unregister struct {
	GroupID string `json:"group_id"`
}

// FlowEvent reports a flow lifecycle transition.
type FlowEvent struct {
	GroupID string `json:"group_id"`
	FlowID  string `json:"flow_id"`
	Event   string `json:"event"` // EventReleased, EventFinished or EventResumed
	// Offset is the bytes already delivered, set on EventResumed.
	Offset unit.Bytes `json:"offset,omitempty"`
}

// Allocation pushes per-flow rates (bytes/second).
type Allocation struct {
	Rates map[string]unit.Rate `json:"rates"`
}

// Error carries a fatal protocol error to the peer.
type Error struct {
	Msg string `json:"msg"`
}

// Message is the transport envelope: Type selects which payload is set.
type Message struct {
	Type       string      `json:"type"`
	Hello      *Hello      `json:"hello,omitempty"`
	Register   *Register   `json:"register,omitempty"`
	Unregister *Unregister `json:"unregister,omitempty"`
	FlowEvent  *FlowEvent  `json:"flow_event,omitempty"`
	Allocation *Allocation `json:"allocation,omitempty"`
	Error      *Error      `json:"error,omitempty"`
}

// Validate checks the envelope carries the payload its type claims.
func (m Message) Validate() error {
	switch m.Type {
	case TypeHello:
		if m.Hello == nil {
			return fmt.Errorf("wire: hello message without payload")
		}
	case TypeRegister:
		if m.Register == nil {
			return fmt.Errorf("wire: register message without payload")
		}
	case TypeUnregister:
		if m.Unregister == nil {
			return fmt.Errorf("wire: unregister message without payload")
		}
	case TypeFlowEvent:
		if m.FlowEvent == nil {
			return fmt.Errorf("wire: flow_event message without payload")
		}
		if e := m.FlowEvent.Event; e != EventReleased && e != EventFinished && e != EventResumed {
			return fmt.Errorf("wire: unknown flow event %q", e)
		}
		if m.FlowEvent.Offset < 0 {
			return fmt.Errorf("wire: negative flow event offset")
		}
	case TypeAllocation:
		if m.Allocation == nil {
			return fmt.Errorf("wire: allocation message without payload")
		}
	case TypeHeartbeat:
		// No payload.
	case TypeError:
		if m.Error == nil {
			return fmt.Errorf("wire: error message without payload")
		}
	default:
		return fmt.Errorf("wire: unknown message type %q", m.Type)
	}
	return nil
}

// Codec frames messages over a byte stream: a 4-byte big-endian length
// followed by the JSON body. Send is safe for concurrent use; Recv must be
// called from a single reader goroutine.
type Codec struct {
	r  *bufio.Reader
	w  io.Writer
	mu sync.Mutex // serializes Send
}

// NewCodec wraps a stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{r: bufio.NewReader(rw), w: rw}
}

// Send frames and writes one message.
func (c *Codec) Send(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Recv reads and validates one message.
func (c *Codec) Recv() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	// Grow the body as bytes actually arrive rather than trusting the
	// length prefix: a peer claiming a near-MaxFrame body and then stalling
	// (or hanging up) must not cost a 16 MiB allocation per connection.
	var buf bytes.Buffer
	buf.Grow(int(min(n, 64<<10)))
	if _, err := io.CopyN(&buf, c.r, int64(n)); err != nil {
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("wire: unmarshal: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}
