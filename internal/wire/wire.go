// Package wire is the control protocol between EchelonFlow Agents and the
// Coordinator (Fig. 7). Agents report EchelonFlow registrations (arrangement
// function + per-flow size/source/destination, §5) and flow lifecycle
// events; the Coordinator pushes bandwidth allocations back.
//
// Two framings share the stream. The legacy framing (protocol ≤3) is a
// 4-byte big-endian length followed by a JSON body. Protocol 4 adds a
// fixed-width binary framing with a zero-allocation fast path for the hot
// message types; its frames open with the magic byte 0xEC, which can never
// begin a legal JSON length prefix (MaxFrame caps the first length byte at
// 0x01), so a receiver distinguishes the two framings per frame with no
// negotiation state. The send side is negotiated: a peer only sends binary
// frames after learning from Hello.Version that the other end is v4.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// MaxFrame bounds a single message to keep a misbehaving peer from forcing
// unbounded allocation.
const MaxFrame = 16 << 20

// ProtocolVersion is the current control-protocol revision. Version 2 added
// reconnect support: Hello.Version, and the "resumed" flow event carrying a
// byte offset so a rejoining agent can continue an in-flight transfer.
// Version 3 added the optional Heartbeat payload: a coordinator may ping a
// version>=3 agent with a nonce'd heartbeat, which the agent echoes back
// verbatim so the coordinator can measure per-agent RTT for gray-failure
// (straggler) detection. Nonce-less heartbeats keep their version-2
// semantics. Version 4 added the binary framing (see binary.go) and the
// flow_batch message; a v4 peer may send either framing, and sends binary
// only to peers that announced version >= 4. The coordinator accepts
// version 0 (field absent, pre-versioning agents) through ProtocolVersion.
const ProtocolVersion = 4

// JSONProtocolVersion is the highest revision restricted to the JSON
// framing. A v4 build forced into JSON compatibility mode announces this
// version so the peer never selects binary sends toward it.
const JSONProtocolVersion = 3

// Message type tags.
const (
	TypeHello      = "hello"
	TypeRegister   = "register"
	TypeUnregister = "unregister"
	TypeFlowEvent  = "flow_event"
	TypeAllocation = "allocation"
	TypeHeartbeat  = "heartbeat"
	TypeError      = "error"
	// TypeSubmitJob enqueues a training job on the coordinator's arrival
	// queue; TypeJobUpdate pushes the job's lifecycle transitions (queued,
	// admitted with a placement, rejected, departed) back to the submitter.
	TypeSubmitJob = "submit_job"
	TypeJobUpdate = "job_update"
	// TypeFlowBatch (protocol 4) carries many flow lifecycle events in one
	// frame: an agent draining a burst of releases/finishes amortizes the
	// framing and syscall cost, and the coordinator acknowledges the whole
	// batch with a single conflated allocation push.
	TypeFlowBatch = "flow_batch"
)

// Flow event kinds.
const (
	EventReleased = "released"
	EventFinished = "finished"
	// EventResumed is sent by a rejoining agent for a flow that was
	// in-flight when its previous session died: Offset bytes are already
	// delivered, scheduling continues from the remainder.
	EventResumed = "resumed"
)

// FlowSpec mirrors core.Flow for transport.
type FlowSpec struct {
	ID    string     `json:"id"`
	Src   string     `json:"src"`
	Dst   string     `json:"dst"`
	Size  unit.Bytes `json:"size"`
	Stage int        `json:"stage"`
}

// Hello opens an agent session. An agent reconnecting under the same name
// takes over its previous session: parked groups are revived in place.
type Hello struct {
	Agent string `json:"agent"`
	// Version is the sender's ProtocolVersion; zero means a pre-versioning
	// peer (treated as version-1 semantics, no resume support).
	Version int `json:"version,omitempty"`
}

// Register announces an EchelonFlow: its arrangement function and flows.
type Register struct {
	GroupID     string     `json:"group_id"`
	Arrangement core.Spec  `json:"arrangement"`
	Flows       []FlowSpec `json:"flows"`
	Weight      float64    `json:"weight,omitempty"`
}

// Group reconstructs the registered EchelonFlow.
func (r Register) Group() (*core.EchelonFlow, error) {
	arr, err := r.Arrangement.Build()
	if err != nil {
		return nil, err
	}
	flows := make([]*core.Flow, len(r.Flows))
	for i, f := range r.Flows {
		flows[i] = &core.Flow{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, Stage: f.Stage}
	}
	g, err := core.New(r.GroupID, arr, flows...)
	if err != nil {
		return nil, err
	}
	g.Weight = r.Weight
	return g, nil
}

// RegisterOf serializes an EchelonFlow for transport.
func RegisterOf(g *core.EchelonFlow) (Register, error) {
	spec, err := core.SpecOf(g.Arrangement)
	if err != nil {
		return Register{}, err
	}
	flows := make([]FlowSpec, len(g.Flows))
	for i, f := range g.Flows {
		flows[i] = FlowSpec{ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size, Stage: f.Stage}
	}
	return Register{GroupID: g.ID, Arrangement: spec, Flows: flows, Weight: g.Weight}, nil
}

// Unregister removes an EchelonFlow (job departure).
type Unregister struct {
	GroupID string `json:"group_id"`
}

// FlowEvent reports a flow lifecycle transition.
type FlowEvent struct {
	GroupID string `json:"group_id"`
	FlowID  string `json:"flow_id"`
	Event   string `json:"event"` // EventReleased, EventFinished or EventResumed
	// Offset is the bytes already delivered, set on EventResumed.
	Offset unit.Bytes `json:"offset,omitempty"`
}

// validate checks one flow event's shape (shared by the single-event and
// batched envelopes).
func (e *FlowEvent) validate() error {
	if e.Event != EventReleased && e.Event != EventFinished && e.Event != EventResumed {
		return fmt.Errorf("wire: unknown flow event %q", e.Event)
	}
	if e.Offset < 0 {
		return fmt.Errorf("wire: negative flow event offset")
	}
	return nil
}

// FlowBatch reports many flow lifecycle transitions at once, in order.
// Applying a batch is observationally identical to applying its events as
// individual FlowEvent messages back to back on the same session.
type FlowBatch struct {
	Events []FlowEvent `json:"events"`
}

// Allocation pushes per-flow rates (bytes/second).
type Allocation struct {
	Rates map[string]unit.Rate `json:"rates"`
}

// Heartbeat is the optional payload of a heartbeat message (version 3). A
// coordinator-initiated ping carries a non-zero Nonce; the agent echoes the
// payload verbatim, and the echo's arrival time gives the coordinator the
// session RTT. Agent-initiated keepalives carry no payload (or Nonce 0) and
// are echoed without one, exactly as in version 2 — the nonce is what keeps
// the two uses from skewing each other's bookkeeping.
type Heartbeat struct {
	Nonce uint64 `json:"nonce,omitempty"`
}

// JobSpec describes a training job for online submission: the paradigm and
// model shape the coordinator compiles into a workload once a placement
// policy has bound Workers hosts (plus one extra host for "ps"). It mirrors
// the internal/check job shape but carries a worker *count* instead of
// concrete hosts — host binding is the coordinator's decision.
type JobSpec struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Paradigm string `json:"paradigm"` // dp | ps | pp | 1f1b | tp | fsdp
	Workers  int    `json:"workers"`
	// Model shape (ddlt.Uniform parameters).
	Layers int        `json:"layers"`
	Params unit.Bytes `json:"params"`
	Acts   unit.Bytes `json:"acts"`
	Fwd    unit.Time  `json:"fwd"`
	Bwd    unit.Time  `json:"bwd"`
	// Paradigm-specific knobs (same semantics as internal/check.JobSpec).
	AggTime    unit.Time `json:"agg_time,omitempty"`
	Buckets    int       `json:"buckets,omitempty"`
	Micro      int       `json:"micro,omitempty"`
	UpdateTime unit.Time `json:"update_time,omitempty"`
	Prefetch   int       `json:"prefetch,omitempty"`
	Iterations int       `json:"iterations"`
	Weight     float64   `json:"weight,omitempty"`
	// Declared is the submitter's claimed per-iteration time, the admission
	// estimator's fallback when no profile measurement is available.
	Declared unit.Time `json:"declared,omitempty"`
}

// Validate checks the spec's shape (paradigm validity is the queue's call).
func (j JobSpec) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("wire: job without id")
	}
	if j.Workers < 1 {
		return fmt.Errorf("wire: job %q needs >=1 worker", j.ID)
	}
	if j.Layers < 1 {
		return fmt.Errorf("wire: job %q needs >=1 layer", j.ID)
	}
	if j.Iterations < 1 {
		return fmt.Errorf("wire: job %q needs >=1 iteration", j.ID)
	}
	if j.Params < 0 || j.Acts < 0 || j.Fwd < 0 || j.Bwd < 0 || j.AggTime < 0 ||
		j.UpdateTime < 0 || j.Declared < 0 || j.Weight < 0 {
		return fmt.Errorf("wire: job %q has a negative field", j.ID)
	}
	return nil
}

// SubmitJob asks the coordinator to queue a job for admission.
type SubmitJob struct {
	Job JobSpec `json:"job"`
}

// Job lifecycle states carried by JobUpdate.
const (
	JobQueued   = "queued"
	JobAdmitted = "admitted"
	JobRejected = "rejected"
	JobDeparted = "departed"
)

// JobUpdate reports a queued job's lifecycle transition to its submitter.
// Hosts is the admission placement (worker hosts, in binding order).
type JobUpdate struct {
	JobID  string   `json:"job_id"`
	Status string   `json:"status"`
	Hosts  []string `json:"hosts,omitempty"`
	Reason string   `json:"reason,omitempty"`
}

// Error codes distinguishing recoverable submission rejections from fatal
// protocol errors (an Error without a code remains fatal to the session).
const (
	ErrCodeThrottled = "throttled"  // per-tenant submission rate exceeded; retry later
	ErrCodeQueueFull = "queue_full" // pending queue at capacity
	ErrCodeBadJob    = "bad_job"    // spec invalid or uncompilable; do not retry
)

// Error carries a protocol error to the peer. Code, when set, classifies a
// recoverable rejection (see ErrCode*); without one the error is fatal.
type Error struct {
	Msg  string `json:"msg"`
	Code string `json:"code,omitempty"`
}

// Message is the transport envelope: Type selects which payload is set.
type Message struct {
	Type       string      `json:"type"`
	Hello      *Hello      `json:"hello,omitempty"`
	Register   *Register   `json:"register,omitempty"`
	Unregister *Unregister `json:"unregister,omitempty"`
	FlowEvent  *FlowEvent  `json:"flow_event,omitempty"`
	FlowBatch  *FlowBatch  `json:"flow_batch,omitempty"`
	Allocation *Allocation `json:"allocation,omitempty"`
	Heartbeat  *Heartbeat  `json:"heartbeat,omitempty"`
	SubmitJob  *SubmitJob  `json:"submit_job,omitempty"`
	JobUpdate  *JobUpdate  `json:"job_update,omitempty"`
	Error      *Error      `json:"error,omitempty"`
}

// Validate checks the envelope carries the payload its type claims.
func (m Message) Validate() error {
	switch m.Type {
	case TypeHello:
		if m.Hello == nil {
			return fmt.Errorf("wire: hello message without payload")
		}
	case TypeRegister:
		if m.Register == nil {
			return fmt.Errorf("wire: register message without payload")
		}
	case TypeUnregister:
		if m.Unregister == nil {
			return fmt.Errorf("wire: unregister message without payload")
		}
	case TypeFlowEvent:
		if m.FlowEvent == nil {
			return fmt.Errorf("wire: flow_event message without payload")
		}
		if err := m.FlowEvent.validate(); err != nil {
			return err
		}
	case TypeFlowBatch:
		if m.FlowBatch == nil {
			return fmt.Errorf("wire: flow_batch message without payload")
		}
		if len(m.FlowBatch.Events) == 0 {
			return fmt.Errorf("wire: empty flow_batch")
		}
		for i := range m.FlowBatch.Events {
			if err := m.FlowBatch.Events[i].validate(); err != nil {
				return err
			}
		}
	case TypeAllocation:
		if m.Allocation == nil {
			return fmt.Errorf("wire: allocation message without payload")
		}
	case TypeHeartbeat:
		// Payload optional: absent on plain keepalives, a Heartbeat with a
		// nonce on coordinator-initiated RTT pings and their echoes.
	case TypeSubmitJob:
		if m.SubmitJob == nil {
			return fmt.Errorf("wire: submit_job message without payload")
		}
		if err := m.SubmitJob.Job.Validate(); err != nil {
			return err
		}
	case TypeJobUpdate:
		if m.JobUpdate == nil {
			return fmt.Errorf("wire: job_update message without payload")
		}
		switch s := m.JobUpdate.Status; s {
		case JobQueued, JobAdmitted, JobRejected, JobDeparted:
		default:
			return fmt.Errorf("wire: unknown job status %q", s)
		}
	case TypeError:
		if m.Error == nil {
			return fmt.Errorf("wire: error message without payload")
		}
	default:
		return fmt.Errorf("wire: unknown message type %q", m.Type)
	}
	return nil
}

// Codec frames messages over a byte stream. Send is safe for concurrent
// use; Recv must be called from a single reader goroutine. Recv accepts
// both framings on any frame boundary (the binary magic byte disambiguates);
// Send emits the legacy JSON framing until EnableBinary switches it to the
// protocol-4 binary framing.
type Codec struct {
	r  *bufio.Reader
	w  io.Writer
	mu sync.Mutex // serializes Send and guards the send framing + buffer
	rx uint64     // bytes consumed by Recv, including partial frames

	// binary selects the outbound framing; sendBuf is the reusable frame
	// assembly buffer (header + body in one Write call), guarded by mu.
	binary  bool
	sendBuf []byte

	// names interns strings decoded off binary frames: group and flow IDs
	// repeat on every hot-path event, so steady-state decodes reuse one
	// canonical copy instead of allocating per message. Reader-goroutine
	// only, like the rest of the Recv state.
	names map[string]string

	// Partial-frame state. A Recv interrupted mid-frame (read deadline,
	// short read) parks its progress here and the next call resumes where
	// it stopped: TCP delivers the remaining bytes in order, so a timeout
	// never desynchronizes the stream. The header length is discovered from
	// the first byte (binary magic = 8 bytes, JSON length prefix = 4).
	hdr    [binaryHeaderSize]byte
	hdrN   int
	inBody bool
	body   bytes.Buffer     // reused across frames; valid while inBody
	lr     io.LimitedReader // reused body-read cursor (io.CopyN allocates one per call)
	want   uint32           // body length, valid while inBody
	kind   byte         // binary frame kind, valid while inBody on a binary frame
	flags  uint16       // binary frame flags, likewise
	isBin  bool         // current partial frame uses the binary framing
}

// NewCodec wraps a stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{r: bufio.NewReader(rw), w: rw}
}

// EnableBinary switches the send path to the protocol-4 binary framing.
// Call it only once the peer is known to speak version >= 4 (from its
// Hello); the receive path needs no switch. Safe to call concurrently with
// Send: messages already being framed finish under their framing.
func (c *Codec) EnableBinary() {
	c.mu.Lock()
	c.binary = true
	c.mu.Unlock()
}

// BinarySends reports whether the send path uses the binary framing.
func (c *Codec) BinarySends() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.binary
}

// Send frames and writes one message. Header and body are assembled into
// one buffer and handed to the stream as a single Write, so a message costs
// one syscall on a raw conn regardless of framing.
func (c *Codec) Send(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	b := c.sendBuf[:0]
	if c.binary {
		b, err = appendBinaryFrame(b, &m)
	} else {
		b, err = appendJSONFrame(b, m)
	}
	if err != nil {
		return err
	}
	c.sendBuf = b[:0] // keep the grown capacity for the next frame
	if _, err := c.w.Write(b); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// appendJSONFrame appends a legacy frame: 4-byte big-endian length + JSON.
// It takes the envelope by value so the marshal's interface boxing cannot
// force Send's envelope onto the heap and tax the binary fast path with it.
func appendJSONFrame(b []byte, m Message) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	b = append(b, hdr[:]...)
	return append(b, body...), nil
}

// decodeJSONEnvelope unmarshals a JSON body into *m through a local copy:
// json.Unmarshal's boxing then heap-allocates the local, not the caller's
// envelope, so Recv's binary fast path stays allocation-free.
func decodeJSONEnvelope(body []byte, m *Message) error {
	var jm Message
	if err := json.Unmarshal(body, &jm); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	*m = jm
	return nil
}

// Received reports the total bytes Recv has consumed, counting partial
// frames. Like Recv itself, it must only be called from the reader
// goroutine.
func (c *Codec) Received() uint64 { return c.rx }

// headerLen is the bytes of header the current frame needs: unknown frames
// read one byte, then the magic byte selects the framing.
func (c *Codec) headerLen() int {
	if c.hdrN == 0 {
		return 1
	}
	if c.hdr[0] == binaryMagic {
		return binaryHeaderSize
	}
	return 4
}

// Recv reads and validates one message. A Recv that fails on a retryable
// read error — a net.Conn deadline timeout in particular — may be called
// again: decoding resumes from the exact byte where the previous call
// stopped, even mid-frame. Both framings are accepted; each frame declares
// its own.
func (c *Codec) Recv() (Message, error) {
	if !c.inBody {
		for c.hdrN < c.headerLen() {
			n, err := c.r.Read(c.hdr[c.hdrN:c.headerLen()])
			c.hdrN += n
			c.rx += uint64(n)
			if err != nil {
				if err == io.EOF && c.hdrN > 0 {
					err = io.ErrUnexpectedEOF
				}
				return Message{}, err
			}
		}
		var n uint32
		if c.hdr[0] == binaryMagic {
			c.isBin = true
			c.kind = c.hdr[1]
			c.flags = binary.BigEndian.Uint16(c.hdr[2:4])
			n = binary.BigEndian.Uint32(c.hdr[4:8])
		} else {
			c.isBin = false
			n = binary.BigEndian.Uint32(c.hdr[:4])
		}
		if n > MaxFrame {
			return Message{}, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
		}
		// Grow the body as bytes actually arrive rather than trusting the
		// length prefix: a peer claiming a near-MaxFrame body and then
		// stalling (or hanging up) must not cost a 16 MiB allocation per
		// connection.
		c.want = n
		c.body.Reset()
		c.body.Grow(int(min(n, 64<<10)))
		c.inBody = true
	}
	c.lr.R, c.lr.N = c.r, int64(c.want)-int64(c.body.Len())
	bn, err := c.body.ReadFrom(&c.lr)
	c.rx += uint64(bn)
	if err == nil && c.body.Len() < int(c.want) {
		// ReadFrom reports a source EOF as a clean stop; here the stream
		// ended inside a frame body — a truncation, exactly like an EOF
		// mid-header, never a clean end of stream.
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		return Message{}, fmt.Errorf("wire: read body: %w", err)
	}
	c.hdrN, c.inBody, c.want = 0, false, 0
	var m Message
	if c.isBin {
		if err := c.decodeBinary(c.kind, c.flags, c.body.Bytes(), &m); err != nil {
			return Message{}, err
		}
	} else if err := decodeJSONEnvelope(c.body.Bytes(), &m); err != nil {
		return Message{}, err
	}
	// One oversized frame must not pin its high-water buffer forever.
	if c.body.Cap() > 1<<20 {
		c.body = bytes.Buffer{}
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}
