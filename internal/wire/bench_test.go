package wire

import (
	"bytes"
	"fmt"
	"testing"

	"echelonflow/internal/unit"
)

// benchMessages are the hot-path shapes the BENCH_wire.json suite tracks:
// single flow events, a 32-event batch, a 16-flow allocation push, and the
// heartbeat keepalive.
func benchMessage(name string) Message {
	switch name {
	case "FlowEvent":
		return Message{Type: TypeFlowEvent,
			FlowEvent: &FlowEvent{GroupID: "job/dp/0", FlowID: "flow-17", Event: EventReleased}}
	case "FlowBatch32":
		evs := make([]FlowEvent, 32)
		for i := range evs {
			ev := EventReleased
			if i%2 == 1 {
				ev = EventFinished
			}
			evs[i] = FlowEvent{GroupID: "job/dp/0", FlowID: fmt.Sprintf("flow-%d", i/2), Event: ev}
		}
		return Message{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: evs}}
	case "Allocation16":
		rates := make(map[string]unit.Rate, 16)
		for i := 0; i < 16; i++ {
			rates[fmt.Sprintf("flow-%d", i)] = unit.Rate(i) * 12.5
		}
		return Message{Type: TypeAllocation, Allocation: &Allocation{Rates: rates}}
	case "Heartbeat":
		return Message{Type: TypeHeartbeat, Heartbeat: &Heartbeat{Nonce: 42}}
	}
	panic("unknown bench message " + name)
}

// benchCodec measures a full Send+Recv round trip per iteration over an
// in-memory stream, the codec cost a control-plane message pays end to end.
func benchCodec(b *testing.B, name string, bin bool) {
	m := benchMessage(name)
	var buf bytes.Buffer
	c := NewCodec(rw{&buf})
	if bin {
		c.EnableBinary()
	}
	// Warm the reusable buffers and the intern table.
	for i := 0; i < 4; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWire_FlowEvent_JSON(b *testing.B)      { benchCodec(b, "FlowEvent", false) }
func BenchmarkWire_FlowEvent_Binary(b *testing.B)    { benchCodec(b, "FlowEvent", true) }
func BenchmarkWire_FlowBatch32_JSON(b *testing.B)    { benchCodec(b, "FlowBatch32", false) }
func BenchmarkWire_FlowBatch32_Binary(b *testing.B)  { benchCodec(b, "FlowBatch32", true) }
func BenchmarkWire_Allocation16_JSON(b *testing.B)   { benchCodec(b, "Allocation16", false) }
func BenchmarkWire_Allocation16_Binary(b *testing.B) { benchCodec(b, "Allocation16", true) }
func BenchmarkWire_Heartbeat_JSON(b *testing.B)      { benchCodec(b, "Heartbeat", false) }
func BenchmarkWire_Heartbeat_Binary(b *testing.B)    { benchCodec(b, "Heartbeat", true) }

// TestBinaryEncodeZeroAlloc pins the fast-path claim directly: framing a hot
// message under the binary codec allocates nothing once the send buffer has
// grown.
func TestBinaryEncodeZeroAlloc(t *testing.T) {
	for _, name := range []string{"FlowEvent", "Heartbeat"} {
		m := benchMessage(name)
		c := NewCodec(struct {
			*bytes.Reader
			discard
		}{bytes.NewReader(nil), discard{}})
		c.EnableBinary()
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(64, func() {
			if err := c.Send(m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: binary encode costs %.1f allocs/msg, want 0", name, allocs)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
