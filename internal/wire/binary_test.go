package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"echelonflow/internal/unit"
)

// sampleMessages covers every message type with representative payloads,
// including the canonicalization corners (nil vs empty allocation map,
// heartbeat pointer presence, empty host list).
func sampleMessages(t *testing.T) []Message {
	t.Helper()
	reg, err := RegisterOf(sampleGroup(t))
	if err != nil {
		t.Fatal(err)
	}
	job := sampleJob()
	return []Message{
		{Type: TypeHello, Hello: &Hello{Agent: "a1", Version: ProtocolVersion}},
		{Type: TypeHello, Hello: &Hello{Agent: "", Version: 0}},
		{Type: TypeRegister, Register: &reg},
		{Type: TypeUnregister, Unregister: &Unregister{GroupID: "job/pp"}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventReleased}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventFinished}},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f0", Event: EventResumed, Offset: 4096.5}},
		{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: []FlowEvent{
			{GroupID: "g", FlowID: "f0", Event: EventReleased},
			{GroupID: "g", FlowID: "f0", Event: EventFinished},
			{GroupID: "g", FlowID: "f1", Event: EventResumed, Offset: 7},
		}}},
		{Type: TypeAllocation, Allocation: &Allocation{}},                          // nil map
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{}}}, // empty map
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f0": 12.5, "f1": 0}}},
		{Type: TypeHeartbeat},                                    // bare keepalive
		{Type: TypeHeartbeat, Heartbeat: &Heartbeat{}},           // payload, nonce 0
		{Type: TypeHeartbeat, Heartbeat: &Heartbeat{Nonce: 991}}, // RTT ping
		{Type: TypeSubmitJob, SubmitJob: &SubmitJob{Job: job}},
		{Type: TypeJobUpdate, JobUpdate: &JobUpdate{JobID: job.ID, Status: JobQueued}},
		{Type: TypeJobUpdate, JobUpdate: &JobUpdate{JobID: job.ID, Status: JobAdmitted, Hosts: []string{"w1", "w2"}}},
		{Type: TypeJobUpdate, JobUpdate: &JobUpdate{JobID: job.ID, Status: JobRejected, Reason: "no fit"}},
		{Type: TypeError, Error: &Error{Msg: "boom"}},
		{Type: TypeError, Error: &Error{Msg: "slow down", Code: ErrCodeThrottled}},
	}
}

// roundTrip sends m through a fresh codec (binary framing iff bin) and
// decodes it back.
func roundTrip(t *testing.T, m Message, bin bool) Message {
	t.Helper()
	var buf bytes.Buffer
	c := NewCodec(rw{&buf})
	if bin {
		c.EnableBinary()
	}
	if err := c.Send(m); err != nil {
		t.Fatalf("send %+v: %v", m, err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv %+v: %v", m, err)
	}
	return got
}

// TestCrossCodecEquivalence is the unit-level half of the cross-codec
// contract: every sample message round-trips through both framings to
// deeply-equal results, and the two results equal each other.
func TestCrossCodecEquivalence(t *testing.T) {
	for i, m := range sampleMessages(t) {
		viaJSON := roundTrip(t, m, false)
		viaBin := roundTrip(t, m, true)
		if !reflect.DeepEqual(viaJSON, viaBin) {
			t.Errorf("case %d: codecs disagree\njson   %+v\nbinary %+v", i, viaJSON, viaBin)
		}
		if !reflect.DeepEqual(m, viaBin) {
			t.Errorf("case %d: binary round trip lossy\nsent %+v\ngot  %+v", i, m, viaBin)
		}
	}
}

// TestBinaryFrameShape pins the on-wire layout: magic byte, kind, flags,
// big-endian body length.
func TestBinaryFrameShape(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(rw{&buf})
	c.EnableBinary()
	if err := c.Send(Message{Type: TypeHeartbeat, Heartbeat: &Heartbeat{Nonce: 1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < binaryHeaderSize {
		t.Fatalf("frame too short: %d bytes", len(raw))
	}
	if raw[0] != binaryMagic {
		t.Errorf("magic = %#x", raw[0])
	}
	if raw[1] != kindHeartbeat {
		t.Errorf("kind = %d", raw[1])
	}
	if flags := binary.BigEndian.Uint16(raw[2:4]); flags&flagHeartbeatPayload == 0 {
		t.Errorf("flags = %#x, payload bit missing", flags)
	}
	if n := binary.BigEndian.Uint32(raw[4:8]); int(n) != len(raw)-binaryHeaderSize {
		t.Errorf("length = %d, body = %d", n, len(raw)-binaryHeaderSize)
	}
}

// TestBinaryNegotiation: a codec sends JSON frames until EnableBinary.
func TestBinaryNegotiation(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(rw{&buf})
	if err := c.Send(Message{Type: TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes()[0]; b > 0x01 {
		t.Errorf("pre-negotiation first byte = %#x, want a JSON length prefix", b)
	}
	buf.Reset()
	c.EnableBinary()
	if !c.BinarySends() {
		t.Error("BinarySends() false after EnableBinary")
	}
	if err := c.Send(Message{Type: TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes()[0]; b != binaryMagic {
		t.Errorf("post-negotiation first byte = %#x, want %#x", b, binaryMagic)
	}
	// The receive side needs no negotiation: a fresh JSON-only codec decodes
	// the binary frame.
	if m, err := NewCodec(rw{&buf}).Recv(); err != nil || m.Type != TypeHeartbeat {
		t.Errorf("un-negotiated receiver: %+v, %v", m, err)
	}
}

// countingWriter counts Write calls.
type countingWriter struct {
	bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.Buffer.Write(p)
}

// TestSendSingleWrite: header and body reach the stream in one Write call,
// under both framings — one syscall per message on a raw conn.
func TestSendSingleWrite(t *testing.T) {
	reg, err := RegisterOf(sampleGroup(t))
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Type: TypeHeartbeat},
		{Type: TypeRegister, Register: &reg},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventReleased}},
	}
	for _, bin := range []bool{false, true} {
		w := &countingWriter{}
		c := NewCodec(struct {
			io.Reader
			io.Writer
		}{new(bytes.Buffer), w})
		if bin {
			c.EnableBinary()
		}
		for i, m := range msgs {
			before := w.writes
			if err := c.Send(m); err != nil {
				t.Fatalf("binary=%v send %d: %v", bin, i, err)
			}
			if got := w.writes - before; got != 1 {
				t.Errorf("binary=%v message %d took %d writes, want 1", bin, i, got)
			}
		}
	}
}

// TestRecvTruncationErrors pins the regression: a stream ending mid-frame is
// io.ErrUnexpectedEOF at both truncation points (mid-header and mid-body),
// under both framings — never a clean io.EOF, which callers treat as an
// orderly hangup.
func TestRecvTruncationErrors(t *testing.T) {
	for _, bin := range []bool{false, true} {
		var buf bytes.Buffer
		c := NewCodec(rw{&buf})
		if bin {
			c.EnableBinary()
		}
		if err := c.Send(Message{Type: TypeFlowEvent,
			FlowEvent: &FlowEvent{GroupID: "group", FlowID: "flow", Event: EventFinished}}); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		hdrLen := 4
		if bin {
			hdrLen = binaryHeaderSize
		}
		cuts := []struct {
			name string
			n    int
		}{
			{"mid-header", hdrLen / 2},
			{"header-only", hdrLen},
			{"mid-body", hdrLen + (len(raw)-hdrLen)/2},
		}
		for _, cut := range cuts {
			c := NewCodec(readOnly{bytes.NewReader(raw[:cut.n])})
			_, err := c.Recv()
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("binary=%v %s: err = %v, want io.ErrUnexpectedEOF", bin, cut.name, err)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("binary=%v %s: truncation surfaced as clean EOF", bin, cut.name)
			}
		}
		// An empty stream remains a clean EOF.
		c2 := NewCodec(readOnly{bytes.NewReader(nil)})
		if _, err := c2.Recv(); err != io.EOF {
			t.Errorf("binary=%v empty stream: err = %v, want io.EOF", bin, err)
		}
	}
}

// TestBinaryRecvResumesMidFrame: the 8-byte header path survives read
// deadlines at every byte boundary, like the JSON path.
func TestBinaryRecvResumesMidFrame(t *testing.T) {
	var buf bytes.Buffer
	send := NewCodec(rw{&buf})
	send.EnableBinary()
	if err := send.Send(Message{Type: TypeFlowEvent,
		FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventFinished}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		r := &stutterReader{script: [][]byte{raw[:cut], nil, raw[cut:]}}
		c := NewCodec(struct {
			io.Reader
			io.Writer
		}{r, io.Discard})
		timeouts := 0
		for {
			m, err := c.Recv()
			if err != nil {
				timeouts++
				if timeouts > 2 {
					t.Fatalf("cut %d: unexpected error: %v", cut, err)
				}
				continue
			}
			if m.Type != TypeFlowEvent || m.FlowEvent.FlowID != "f" {
				t.Fatalf("cut %d: decoded %+v", cut, m)
			}
			break
		}
		if got := c.Received(); got != uint64(len(raw)) {
			t.Errorf("cut %d: Received() = %d, want %d", cut, got, len(raw))
		}
	}
}

// binaryFrame builds a raw binary frame for hostile-input tests.
func binaryFrame(kind byte, flags uint16, body []byte) []byte {
	b := []byte{binaryMagic, kind, byte(flags >> 8), byte(flags), 0, 0, 0, 0}
	binary.BigEndian.PutUint32(b[4:8], uint32(len(body)))
	return append(b, body...)
}

// TestBinaryHostileFrames: malformed binary bodies fail cleanly.
func TestBinaryHostileFrames(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"unknown kind", binaryFrame(99, 0, nil)},
		{"flow event empty body", binaryFrame(kindFlowEvent, 0, nil)},
		{"flow event bad code", binaryFrame(kindFlowEvent, 0, []byte{0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0})},
		{"string overruns body", binaryFrame(kindUnregister, 0, []byte{200})},
		{"trailing bytes", binaryFrame(kindUnregister, 0, []byte{1, 'g', 0xFF})},
		{"batch count exceeds body", binaryFrame(kindFlowBatch, 0, []byte{0xFF, 0xFF, 0x03})},
		{"batch count zero", binaryFrame(kindFlowBatch, 0, []byte{0})},
		{"allocation count exceeds body", binaryFrame(kindAllocation, 0, []byte{1, 0xFF, 0xFF, 0x03})},
		{"job update bad status", binaryFrame(kindJobUpdate, 0, []byte{1, 'j', 9, 0, 0})},
		{"heartbeat flagged but empty", binaryFrame(kindHeartbeat, flagHeartbeatPayload, nil)},
		{"register junk json", binaryFrame(kindRegister, 0, []byte("{nope"))},
		{"oversize length", func() []byte {
			f := binaryFrame(kindHeartbeat, 0, nil)
			binary.BigEndian.PutUint32(f[4:8], MaxFrame+1)
			return f
		}()},
	}
	for _, tc := range cases {
		c := NewCodec(readOnly{bytes.NewReader(tc.frame)})
		if m, err := c.Recv(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, m)
		}
	}
}

// TestBinaryRejectsNonFinite: the binary encoders reject exactly the float
// values json.Marshal rejects, keeping the accepted-input sets identical.
func TestBinaryRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for _, bin := range []bool{false, true} {
			msgs := []Message{
				{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventResumed, Offset: unit.Bytes(math.Abs(v))}},
				{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f": unit.Rate(v)}}},
			}
			for i, m := range msgs {
				var buf bytes.Buffer
				c := NewCodec(rw{&buf})
				if bin {
					c.EnableBinary()
				}
				if err := c.Send(m); err == nil {
					t.Errorf("binary=%v case %d: non-finite %v accepted", bin, i, v)
				}
			}
		}
	}
}

// TestFlowBatchValidate: the batched envelope enforces per-event shape.
func TestFlowBatchValidate(t *testing.T) {
	bad := []Message{
		{Type: TypeFlowBatch},
		{Type: TypeFlowBatch, FlowBatch: &FlowBatch{}},
		{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: []FlowEvent{{Event: "exploded"}}}},
		{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: []FlowEvent{
			{GroupID: "g", FlowID: "f", Event: EventReleased},
			{GroupID: "g", FlowID: "f", Event: EventResumed, Offset: -1},
		}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	ok := Message{Type: TypeFlowBatch, FlowBatch: &FlowBatch{Events: []FlowEvent{
		{GroupID: "g", FlowID: "f", Event: EventReleased},
	}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
}

// TestBinaryDecodeInterns: steady-state decodes of hot-path events reuse
// interned ID strings and the codec's body buffer — per-message allocations
// stay at the payload struct itself.
func TestBinaryDecodeInterns(t *testing.T) {
	var buf bytes.Buffer
	send := NewCodec(rw{&buf})
	send.EnableBinary()
	m := Message{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "job/dp/0", FlowID: "flow-17", Event: EventReleased}}
	for i := 0; i < 64; i++ {
		if err := send.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCodec(readOnly{bytes.NewReader(buf.Bytes())})
	// Warm the intern table and body buffer.
	first, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(32, func() {
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.FlowEvent.GroupID != first.FlowEvent.GroupID {
			t.Fatal("payload mismatch")
		}
	})
	// One FlowEvent struct per message; everything else is reused.
	if allocs > 2 {
		t.Errorf("steady-state decode costs %.1f allocs/msg, want <= 2", allocs)
	}
}
