package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// pipeRW adapts a net.Pipe end for the codec.
func codecPair(t *testing.T) (*Codec, *Codec, func()) {
	t.Helper()
	a, b := net.Pipe()
	return NewCodec(a), NewCodec(b), func() { a.Close(); b.Close() }
}

func sampleGroup(t *testing.T) *core.EchelonFlow {
	t.Helper()
	g, err := core.New("job/pp", core.Pipeline{T: 2.5},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 100, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 100, Stage: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	g.Weight = 2
	return g
}

func TestRegisterRoundTrip(t *testing.T) {
	g := sampleGroup(t)
	reg, err := RegisterOf(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := reg.Group()
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != g.ID || len(back.Flows) != 2 || back.Weight != 2 {
		t.Errorf("round trip group = %+v", back)
	}
	if back.Arrangement.Name() != "pipeline" {
		t.Errorf("arrangement = %s", back.Arrangement.Name())
	}
	if d := back.Arrangement.Deadline(1, 0); !d.ApproxEq(2.5) {
		t.Errorf("deadline = %v", d)
	}
}

func TestRegisterBadSpec(t *testing.T) {
	r := Register{GroupID: "g", Arrangement: core.Spec{Kind: "bogus"},
		Flows: []FlowSpec{{ID: "f", Src: "a", Dst: "b", Size: 1}}}
	if _, err := r.Group(); err == nil {
		t.Error("bogus arrangement accepted")
	}
	r2 := Register{GroupID: "", Arrangement: core.Spec{Kind: "coflow"}}
	if _, err := r2.Group(); err == nil {
		t.Error("empty group accepted")
	}
}

func TestCodecSendRecv(t *testing.T) {
	ca, cb, done := codecPair(t)
	defer done()
	g := sampleGroup(t)
	reg, _ := RegisterOf(g)
	msgs := []Message{
		{Type: TypeHello, Hello: &Hello{Agent: "a1"}},
		{Type: TypeRegister, Register: &reg},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: EventReleased}},
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f0": 12.5}}},
		{Type: TypeUnregister, Unregister: &Unregister{GroupID: "job/pp"}},
		{Type: TypeError, Error: &Error{Msg: "boom"}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != msgs[i].Type {
			t.Errorf("msg %d type = %s, want %s", i, got.Type, msgs[i].Type)
		}
		switch got.Type {
		case TypeAllocation:
			if got.Allocation.Rates["f0"] != 12.5 {
				t.Errorf("allocation payload = %v", got.Allocation.Rates)
			}
		case TypeRegister:
			if len(got.Register.Flows) != 2 || got.Register.GroupID != "job/pp" {
				t.Errorf("register payload = %+v", got.Register)
			}
		}
	}
	wg.Wait()
}

func TestValidate(t *testing.T) {
	bad := []Message{
		{Type: "mystery"},
		{Type: TypeHello},
		{Type: TypeRegister},
		{Type: TypeUnregister},
		{Type: TypeFlowEvent},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{Event: "exploded"}},
		{Type: TypeAllocation},
		{Type: TypeError},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSendRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	if err := c.Send(Message{Type: "mystery"}); err == nil {
		t.Error("invalid message sent")
	}
	if buf.Len() != 0 {
		t.Error("invalid message wrote bytes")
	}
}

func TestRecvOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

func TestRecvTruncated(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestRecvGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestRecvEOF(t *testing.T) {
	c := NewCodec(&bytes.Buffer{})
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestConcurrentSends(t *testing.T) {
	ca, cb, done := codecPair(t)
	defer done()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := Message{Type: TypeHello, Hello: &Hello{Agent: "x"}}
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if _, err := cb.Recv(); err != nil {
			t.Fatalf("recv %d: %v (interleaved frames?)", i, err)
		}
	}
	wg.Wait()
}

// Random garbage must never panic the codec — it must fail cleanly.
func TestRecvRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		blob := make([]byte, n)
		rng.Read(blob)
		c := NewCodec(bytes.NewBuffer(blob))
		for {
			if _, err := c.Recv(); err != nil {
				break // any error is fine; a panic is not
			}
		}
	}
}

// Frames with plausible headers but hostile bodies must fail cleanly too.
func TestRecvHostileFrames(t *testing.T) {
	bodies := [][]byte{
		[]byte(`{}`),
		[]byte(`{"type":""}`),
		[]byte(`{"type":"allocation","allocation":null}`),
		[]byte(`{"type":"register","register":{"group_id":"g"}}`),
		[]byte(`null`),
		[]byte(`[1,2,3]`),
		[]byte(`{"type":"hello","hello":{"agent":"` + strings.Repeat("a", 1000) + `"}}`),
	}
	for i, body := range bodies {
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		buf.Write(hdr[:])
		buf.Write(body)
		c := NewCodec(&buf)
		msg, err := c.Recv()
		// Either a clean error, or (for the long-hello case) a valid parse.
		if err == nil && msg.Validate() != nil {
			t.Errorf("case %d: invalid message passed Recv: %+v", i, msg)
		}
	}
}
