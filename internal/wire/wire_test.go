package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// pipeRW adapts a net.Pipe end for the codec.
func codecPair(t *testing.T) (*Codec, *Codec, func()) {
	t.Helper()
	a, b := net.Pipe()
	return NewCodec(a), NewCodec(b), func() { a.Close(); b.Close() }
}

func sampleGroup(t *testing.T) *core.EchelonFlow {
	t.Helper()
	g, err := core.New("job/pp", core.Pipeline{T: 2.5},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 100, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 100, Stage: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	g.Weight = 2
	return g
}

func TestRegisterRoundTrip(t *testing.T) {
	g := sampleGroup(t)
	reg, err := RegisterOf(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := reg.Group()
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != g.ID || len(back.Flows) != 2 || back.Weight != 2 {
		t.Errorf("round trip group = %+v", back)
	}
	if back.Arrangement.Name() != "pipeline" {
		t.Errorf("arrangement = %s", back.Arrangement.Name())
	}
	if d := back.Arrangement.Deadline(1, 0); !d.ApproxEq(2.5) {
		t.Errorf("deadline = %v", d)
	}
}

func TestRegisterBadSpec(t *testing.T) {
	r := Register{GroupID: "g", Arrangement: core.Spec{Kind: "bogus"},
		Flows: []FlowSpec{{ID: "f", Src: "a", Dst: "b", Size: 1}}}
	if _, err := r.Group(); err == nil {
		t.Error("bogus arrangement accepted")
	}
	r2 := Register{GroupID: "", Arrangement: core.Spec{Kind: "coflow"}}
	if _, err := r2.Group(); err == nil {
		t.Error("empty group accepted")
	}
}

func TestCodecSendRecv(t *testing.T) {
	ca, cb, done := codecPair(t)
	defer done()
	g := sampleGroup(t)
	reg, _ := RegisterOf(g)
	msgs := []Message{
		{Type: TypeHello, Hello: &Hello{Agent: "a1"}},
		{Type: TypeRegister, Register: &reg},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: EventReleased}},
		{Type: TypeAllocation, Allocation: &Allocation{Rates: map[string]unit.Rate{"f0": 12.5}}},
		{Type: TypeUnregister, Unregister: &Unregister{GroupID: "job/pp"}},
		{Type: TypeError, Error: &Error{Msg: "boom"}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i := range msgs {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Type != msgs[i].Type {
			t.Errorf("msg %d type = %s, want %s", i, got.Type, msgs[i].Type)
		}
		switch got.Type {
		case TypeAllocation:
			if got.Allocation.Rates["f0"] != 12.5 {
				t.Errorf("allocation payload = %v", got.Allocation.Rates)
			}
		case TypeRegister:
			if len(got.Register.Flows) != 2 || got.Register.GroupID != "job/pp" {
				t.Errorf("register payload = %+v", got.Register)
			}
		}
	}
	wg.Wait()
}

func TestValidate(t *testing.T) {
	bad := []Message{
		{Type: "mystery"},
		{Type: TypeHello},
		{Type: TypeRegister},
		{Type: TypeUnregister},
		{Type: TypeFlowEvent},
		{Type: TypeFlowEvent, FlowEvent: &FlowEvent{Event: "exploded"}},
		{Type: TypeAllocation},
		{Type: TypeError},
		{Type: TypeSubmitJob},
		{Type: TypeSubmitJob, SubmitJob: &SubmitJob{}}, // empty job id
		{Type: TypeJobUpdate},
		{Type: TypeJobUpdate, JobUpdate: &JobUpdate{JobID: "j", Status: "limbo"}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func sampleJob() JobSpec {
	return JobSpec{ID: "lg/t0/j0", Tenant: "t0", Paradigm: "dp", Workers: 2,
		Layers: 3, Params: 2, Acts: 1, Fwd: 0.2, Bwd: 0.3, Iterations: 2, Declared: 1.5}
}

func TestJobSpecValidate(t *testing.T) {
	if err := sampleJob().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []func(*JobSpec){
		func(j *JobSpec) { j.ID = "" },
		func(j *JobSpec) { j.Workers = 0 },
		func(j *JobSpec) { j.Layers = 0 },
		func(j *JobSpec) { j.Iterations = 0 },
		func(j *JobSpec) { j.Fwd = -1 },
		func(j *JobSpec) { j.Declared = -0.1 },
		func(j *JobSpec) { j.Weight = -2 },
	}
	for i, mut := range mutations {
		j := sampleJob()
		mut(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestJobRoundTrip(t *testing.T) {
	ca, cb, done := codecPair(t)
	defer done()
	job := sampleJob()
	msgs := []Message{
		{Type: TypeSubmitJob, SubmitJob: &SubmitJob{Job: job}},
		{Type: TypeJobUpdate, JobUpdate: &JobUpdate{JobID: job.ID, Status: JobAdmitted, Hosts: []string{"w1", "w2"}}},
		{Type: TypeError, Error: &Error{Msg: "slow down", Code: ErrCodeThrottled}},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.SubmitJob == nil || got.SubmitJob.Job != job {
		t.Errorf("submit_job payload = %+v, want %+v", got.SubmitJob, job)
	}
	got, err = cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.JobUpdate == nil || got.JobUpdate.Status != JobAdmitted || len(got.JobUpdate.Hosts) != 2 {
		t.Errorf("job_update payload = %+v", got.JobUpdate)
	}
	got, err = cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Error == nil || got.Error.Code != ErrCodeThrottled {
		t.Errorf("error payload = %+v", got.Error)
	}
	wg.Wait()
}

func TestSendRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(&buf)
	if err := c.Send(Message{Type: "mystery"}); err == nil {
		t.Error("invalid message sent")
	}
	if buf.Len() != 0 {
		t.Error("invalid message wrote bytes")
	}
}

func TestRecvOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

func TestRecvTruncated(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("short")
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestReceivedCountsConsumedBytes(t *testing.T) {
	var buf bytes.Buffer
	send := NewCodec(&buf)
	if err := send.Send(Message{Type: TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Len()
	if err := send.Send(Message{Type: TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}

	recv := NewCodec(&buf)
	if got := recv.Received(); got != 0 {
		t.Fatalf("fresh codec Received() = %d", got)
	}
	if _, err := recv.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := recv.Received(); got != uint64(frame) {
		t.Errorf("after one frame Received() = %d, want %d", got, frame)
	}
	if _, err := recv.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := recv.Received(); got != uint64(2*frame) {
		t.Errorf("after two frames Received() = %d, want %d", got, 2*frame)
	}

	// A frame truncated mid-body still advances the count.
	var trunc bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	trunc.Write(hdr[:])
	trunc.WriteString("short")
	c := NewCodec(&trunc)
	if _, err := c.Recv(); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if got := c.Received(); got != 4+5 {
		t.Errorf("truncated Received() = %d, want 9", got)
	}
}

func TestRecvGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	c := NewCodec(&buf)
	if _, err := c.Recv(); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestRecvEOF(t *testing.T) {
	c := NewCodec(&bytes.Buffer{})
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestConcurrentSends(t *testing.T) {
	ca, cb, done := codecPair(t)
	defer done()
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := Message{Type: TypeHello, Hello: &Hello{Agent: "x"}}
			if err := ca.Send(m); err != nil {
				t.Errorf("send: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if _, err := cb.Recv(); err != nil {
			t.Fatalf("recv %d: %v (interleaved frames?)", i, err)
		}
	}
	wg.Wait()
}

// Random garbage must never panic the codec — it must fail cleanly.
func TestRecvRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := rng.Intn(64)
		blob := make([]byte, n)
		rng.Read(blob)
		c := NewCodec(bytes.NewBuffer(blob))
		for {
			if _, err := c.Recv(); err != nil {
				break // any error is fine; a panic is not
			}
		}
	}
}

// Frames with plausible headers but hostile bodies must fail cleanly too.
func TestRecvHostileFrames(t *testing.T) {
	bodies := [][]byte{
		[]byte(`{}`),
		[]byte(`{"type":""}`),
		[]byte(`{"type":"allocation","allocation":null}`),
		[]byte(`{"type":"register","register":{"group_id":"g"}}`),
		[]byte(`null`),
		[]byte(`[1,2,3]`),
		[]byte(`{"type":"hello","hello":{"agent":"` + strings.Repeat("a", 1000) + `"}}`),
	}
	for i, body := range bodies {
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		buf.Write(hdr[:])
		buf.Write(body)
		c := NewCodec(&buf)
		msg, err := c.Recv()
		// Either a clean error, or (for the long-hello case) a valid parse.
		if err == nil && msg.Validate() != nil {
			t.Errorf("case %d: invalid message passed Recv: %+v", i, msg)
		}
	}
}

// fakeTimeout mimics the error a net.Conn read deadline produces.
type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "i/o timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

// stutterReader plays its script one entry per underlying Read: a []byte
// chunk is delivered (possibly short), a nil entry produces a timeout —
// emulating a read deadline firing mid-frame.
type stutterReader struct{ script [][]byte }

func (r *stutterReader) Read(p []byte) (int, error) {
	if len(r.script) == 0 {
		return 0, io.EOF
	}
	ch := r.script[0]
	if ch == nil {
		r.script = r.script[1:]
		return 0, fakeTimeout{}
	}
	n := copy(p, ch)
	if n == len(ch) {
		r.script = r.script[1:]
	} else {
		r.script[0] = ch[n:]
	}
	return n, nil
}

func TestRecvResumesMidFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := NewCodec(&buf).Send(Message{Type: TypeFlowEvent,
		FlowEvent: &FlowEvent{GroupID: "g", FlowID: "f", Event: EventFinished}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Deliver two header bytes, stall, part of the body, stall again, then
	// the rest. Each stall surfaces as a timeout from Recv; the frame must
	// still decode once the stream resumes.
	r := &stutterReader{script: [][]byte{raw[:2], nil, raw[2:9], nil, raw[9:]}}
	c := NewCodec(struct {
		io.Reader
		io.Writer
	}{r, io.Discard})
	timeouts := 0
	for {
		m, err := c.Recv()
		if err != nil {
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				t.Fatalf("Recv: %v", err)
			}
			timeouts++
			continue
		}
		if m.Type != TypeFlowEvent || m.FlowEvent == nil || m.FlowEvent.FlowID != "f" {
			t.Fatalf("decoded %+v", m)
		}
		break
	}
	if timeouts != 2 {
		t.Errorf("saw %d timeouts, want 2", timeouts)
	}
	if got := c.Received(); got != uint64(len(raw)) {
		t.Errorf("Received() = %d, want %d", got, len(raw))
	}
}
