package queue

import (
	"fmt"
	"math"
	"sort"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// View is the placement policies' picture of the cluster at one admission
// decision: the fabric (capacities, racks) plus the load already committed
// to it. The coordinator assembles it from live flow state; tests and the
// queue oracle assemble it synthetically.
type View struct {
	Net fabric.Fabric
	// Egress/Ingress are per-host committed demand (remaining bytes of
	// unfinished flows, or any load proxy — policies only compare).
	Egress  map[string]unit.Bytes
	Ingress map[string]unit.Bytes
	// Workers counts queue-admitted job workers per host.
	Workers map[string]int
}

// NewView returns an empty view over a fabric.
func NewView(net fabric.Fabric) *View {
	return &View{
		Net:     net,
		Egress:  make(map[string]unit.Bytes),
		Ingress: make(map[string]unit.Bytes),
		Workers: make(map[string]int),
	}
}

// TotalCapacity sums each host's bottleneck port capacity — the bandwidth
// budget admission charges predicted job demand against.
func (v *View) TotalCapacity() unit.Rate {
	var sum unit.Rate
	for _, h := range v.Net.Hosts() {
		sum += unit.MinRate(h.Egress, h.Ingress)
	}
	return sum
}

// load is a host's normalized port pressure: committed bytes over port
// capacity, comparable across heterogeneous NICs. A host with no usable
// port capacity (a faulted NIC, or an unknown host) is infinitely loaded,
// not empty: returning 0 here made Spread/NetAware rank dead hosts as the
// least-loaded targets and aim every new job at them.
func (v *View) load(host string) float64 {
	eg, in, ok := v.Net.Capacity(host)
	if !ok || eg <= 0 || in <= 0 {
		return math.Inf(1)
	}
	return float64(v.Egress[host])/float64(eg) + float64(v.Ingress[host])/float64(in)
}

// usable reports whether a host has capacity in both port directions.
func (v *View) usable(host string) bool {
	eg, in, ok := v.Net.Capacity(host)
	return ok && eg > 0 && in > 0
}

// Placer binds a job's workers to hosts. Implementations must be
// deterministic in (spec, view): the coordinator journals only the chosen
// hosts, and tests replay decisions.
type Placer interface {
	Name() string
	// Place returns HostsNeeded(spec) distinct hosts, or an error when the
	// fabric cannot satisfy the job at all (too few hosts).
	Place(spec wire.JobSpec, v *View) ([]string, error)
}

// hostNames lists the fabric's hosts in insertion order.
func hostNames(v *View) []string {
	hosts := v.Net.Hosts()
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.Name
	}
	return out
}

// pickSorted orders hosts by the given less function (name-tiebroken by the
// caller's less) and takes the first n.
func pickSorted(v *View, spec wire.JobSpec, less func(a, b string) bool) ([]string, error) {
	names := hostNames(v)
	need := HostsNeeded(spec)
	if need > len(names) {
		return nil, fmt.Errorf("queue: job %q needs %d hosts, fabric has %d", spec.ID, need, len(names))
	}
	// Zero-capacity hosts are ineligible while enough live hosts exist; a
	// fabric too degraded to avoid them still places (the job stalls until
	// the fault recovers, rather than being rejected).
	alive := make([]string, 0, len(names))
	for _, h := range names {
		if v.usable(h) {
			alive = append(alive, h)
		}
	}
	if len(alive) >= need {
		names = alive
	}
	sort.SliceStable(names, func(i, j int) bool { return less(names[i], names[j]) })
	return append([]string(nil), names[:need]...), nil
}

// Pack concentrates jobs: hosts already carrying the most admitted workers
// (then the most load) are chosen first, leaving the rest of the fabric
// empty for large arrivals. This is the locality-first baseline.
type Pack struct{}

// Name implements Placer.
func (Pack) Name() string { return "pack" }

// Place implements Placer.
func (Pack) Place(spec wire.JobSpec, v *View) ([]string, error) {
	return pickSorted(v, spec, func(a, b string) bool {
		if v.Workers[a] != v.Workers[b] {
			return v.Workers[a] > v.Workers[b]
		}
		la, lb := v.load(a), v.load(b)
		if la != lb {
			return la > lb
		}
		return a < b
	})
}

// Spread balances jobs: the least-occupied hosts (fewest admitted workers,
// then least load) are chosen first. This is the contention-avoidance
// baseline.
type Spread struct{}

// Name implements Placer.
func (Spread) Name() string { return "spread" }

// Place implements Placer.
func (Spread) Place(spec wire.JobSpec, v *View) ([]string, error) {
	return pickSorted(v, spec, func(a, b string) bool {
		if v.Workers[a] != v.Workers[b] {
			return v.Workers[a] < v.Workers[b]
		}
		la, lb := v.load(a), v.load(b)
		if la != lb {
			return la < lb
		}
		return a < b
	})
}

// NetAware places against the fabric's port footprints: hosts are ranked by
// normalized port pressure, and candidates in the rack where the job's
// placement so far is concentrating are preferred — cross-rack traffic rides
// oversubscribed uplinks (fabric racks), so keeping a job's workers together
// buys bandwidth that per-host balance alone cannot see. On a rackless
// big-switch fabric it degrades gracefully to load-ranked selection.
type NetAware struct {
	// CrossRackPenalty biases candidate scoring against leaving the rack the
	// job is accumulating in; 0 means DefaultCrossRackPenalty.
	CrossRackPenalty float64
}

// DefaultCrossRackPenalty is NetAware's default rack-escape bias,
// comparable to one fully-loaded port of pressure.
const DefaultCrossRackPenalty = 1.0

// Name implements Placer.
func (NetAware) Name() string { return "netaware" }

// Place implements Placer.
func (p NetAware) Place(spec wire.JobSpec, v *View) ([]string, error) {
	names := hostNames(v)
	need := HostsNeeded(spec)
	if need > len(names) {
		return nil, fmt.Errorf("queue: job %q needs %d hosts, fabric has %d", spec.ID, need, len(names))
	}
	penalty := p.CrossRackPenalty
	if penalty <= 0 {
		penalty = DefaultCrossRackPenalty
	}
	chosen := make([]string, 0, need)
	used := make(map[string]bool, need)
	rackCount := make(map[string]int)
	for len(chosen) < need {
		best, bestScore := "", 0.0
		for _, h := range names {
			if used[h] {
				continue
			}
			score := v.load(h) + float64(v.Workers[h])
			if rack := v.Net.RackOf(h); len(chosen) > 0 && rackCount[rack] == 0 {
				// Candidate sits outside every rack the job occupies so far:
				// its traffic to the existing workers crosses uplinks.
				score += penalty
			}
			if best == "" || score < bestScore || (score == bestScore && h < best) {
				best, bestScore = h, score
			}
		}
		chosen = append(chosen, best)
		used[best] = true
		rackCount[v.Net.RackOf(best)]++
	}
	return chosen, nil
}

// PlacerByName resolves a CLI policy name.
func PlacerByName(name string) (Placer, error) {
	switch name {
	case "pack":
		return Pack{}, nil
	case "spread":
		return Spread{}, nil
	case "netaware":
		return NetAware{}, nil
	default:
		return nil, fmt.Errorf("queue: unknown placement policy %q (want pack, spread or netaware)", name)
	}
}
