package queue

import (
	"errors"
	"fmt"
	"sort"

	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
var ErrQueueFull = errors.New("queue: full")

// RejectError reports a job the queue refused (invalid spec at submit,
// unsatisfiable placement at admit). Code is the wire error code to send
// the submitter; Owner names the submitting session when known.
type RejectError struct {
	JobID  string
	Owner  string
	Code   string
	Reason string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("queue: job %q rejected (%s): %s", e.JobID, e.Code, e.Reason)
}

// Options configures a Queue. Zero limits mean unlimited.
type Options struct {
	Placer    Placer
	Order     Order
	Estimator Estimator

	// MaxQueued caps pending submissions (Submit fails with ErrQueueFull
	// beyond it). MaxJobs caps concurrently admitted jobs. MaxShare caps the
	// summed predicted bandwidth demand of admitted jobs as a fraction of
	// the fabric's total capacity (0 < MaxShare <= 1); 0 disables the
	// bandwidth budget.
	MaxQueued int
	MaxJobs   int
	MaxShare  float64
}

// Queue is the deterministic job-arrival state machine: pending submissions
// ordered for admission, plus the admitted set charged against the budget.
// It has no clock and no locks — the coordinator drives it under its own
// mutex with explicit times, journaling each transition so replay can
// reproduce the state bit-for-bit via ForceAdmit/Depart.
type Queue struct {
	opts     Options
	pending  []*Job
	admitted map[string]*Admitted
	seq      int
	demand   unit.Rate // summed Demand of admitted jobs
}

// New builds a Queue, defaulting to spread placement, FIFO admission and
// declared-duration estimates.
func New(opts Options) *Queue {
	if opts.Placer == nil {
		opts.Placer = Spread{}
	}
	if opts.Order == nil {
		opts.Order = FIFO{}
	}
	if opts.Estimator == nil {
		opts.Estimator = Declared{}
	}
	return &Queue{opts: opts, admitted: make(map[string]*Admitted)}
}

// Policy returns the queue's placement and admission policy names.
func (q *Queue) Policy() (placer, order string) {
	return q.opts.Placer.Name(), q.opts.Order.Name()
}

// Submit validates and enqueues a job. It returns the queued Job, or
// ErrQueueFull / a *RejectError (bad spec, duplicate ID) — distinguishing
// "try later" from "never".
func (q *Queue) Submit(owner string, spec wire.JobSpec, now unit.Time) (*Job, error) {
	if q.opts.MaxQueued > 0 && len(q.pending) >= q.opts.MaxQueued {
		return nil, ErrQueueFull
	}
	if err := spec.Validate(); err != nil {
		return nil, &RejectError{JobID: spec.ID, Code: wire.ErrCodeBadJob, Reason: err.Error()}
	}
	if q.Job(spec.ID) != nil {
		return nil, &RejectError{JobID: spec.ID, Code: wire.ErrCodeBadJob, Reason: "duplicate job id"}
	}
	bytes, err := Inspect(spec)
	if err != nil {
		return nil, &RejectError{JobID: spec.ID, Code: wire.ErrCodeBadJob, Reason: err.Error()}
	}
	est, stable := q.opts.Estimator.Estimate(spec)
	j := &Job{Spec: spec, Owner: owner, Arrival: now, Seq: q.seq,
		Est: est, EstStable: stable, Bytes: bytes}
	if run := est * unit.Time(spec.Iterations); run > 0 {
		j.Demand = unit.Rate(float64(bytes) / float64(run))
	}
	q.seq++
	q.pending = append(q.pending, j)
	return j, nil
}

// head returns the next job in admission order, or nil. Admission is
// strictly head-of-line: a blocked head blocks everything behind it, which
// is what makes FIFO fairness (no overtaking under equal priority) an
// invariant rather than a tendency.
func (q *Queue) head() *Job {
	var best *Job
	for _, j := range q.pending {
		if best == nil || q.opts.Order.Less(j, best) {
			best = j
		}
	}
	return best
}

// Next attempts one admission against the view. It returns:
//   - (*Admitted, nil): the head job was placed and admitted;
//   - (nil, nil): nothing pending, or the head is blocked by the budget —
//     retry after a departure;
//   - (nil, *RejectError): the head cannot be placed on this fabric at all
//     and was dropped from the queue — the caller reports it and calls Next
//     again for the job behind it.
//
// Callers loop until (nil, nil). Decisions are deterministic in (queue
// state, view, now); during journal replay the coordinator bypasses Next
// and applies the recorded outcomes via ForceAdmit/Depart.
func (q *Queue) Next(v *View, now unit.Time) (*Admitted, error) {
	j := q.head()
	if j == nil {
		return nil, nil
	}
	if q.opts.MaxJobs > 0 && len(q.admitted) >= q.opts.MaxJobs {
		return nil, nil
	}
	// The bandwidth budget blocks jobs whose predicted demand overshoots the
	// fabric share — except when nothing is admitted, where blocking would
	// starve a job the budget alone can never fit.
	if q.opts.MaxShare > 0 && len(q.admitted) > 0 {
		budget := unit.Rate(q.opts.MaxShare) * v.TotalCapacity()
		if q.demand+j.Demand > budget {
			return nil, nil
		}
	}
	hosts, err := q.opts.Placer.Place(j.Spec, v)
	if err != nil {
		q.remove(j.Spec.ID)
		return nil, &RejectError{JobID: j.Spec.ID, Owner: j.Owner, Code: wire.ErrCodeBadJob, Reason: err.Error()}
	}
	return q.admit(j, hosts, now), nil
}

// ForceAdmit moves a pending job to the admitted set with the given
// placement, bypassing policy and budget — journal replay applying a
// recorded admission.
func (q *Queue) ForceAdmit(jobID string, hosts []string, at unit.Time) (*Admitted, error) {
	for _, j := range q.pending {
		if j.Spec.ID == jobID {
			return q.admit(j, hosts, at), nil
		}
	}
	return nil, fmt.Errorf("queue: ForceAdmit: job %q not pending", jobID)
}

func (q *Queue) admit(j *Job, hosts []string, at unit.Time) *Admitted {
	q.remove(j.Spec.ID)
	a := &Admitted{Job: j, Hosts: append([]string(nil), hosts...), AdmittedAt: at}
	q.admitted[j.Spec.ID] = a
	q.demand += j.Demand
	return a
}

// Depart removes a job wherever it is: an admitted job completing (or being
// evicted), or a pending job being rejected/withdrawn. It reports whether
// the job was found.
func (q *Queue) Depart(jobID string) bool {
	if a, ok := q.admitted[jobID]; ok {
		delete(q.admitted, jobID)
		q.demand -= a.Job.Demand
		if len(q.admitted) == 0 {
			q.demand = 0 // shed float residue between busy periods
		}
		return true
	}
	return q.remove(jobID)
}

func (q *Queue) remove(jobID string) bool {
	for i, j := range q.pending {
		if j.Spec.ID == jobID {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return true
		}
	}
	return false
}

// Job finds a job by ID in either set.
func (q *Queue) Job(id string) *Job {
	if a, ok := q.admitted[id]; ok {
		return a.Job
	}
	for _, j := range q.pending {
		if j.Spec.ID == id {
			return j
		}
	}
	return nil
}

// AdmittedJob returns the admitted record for a job, or nil.
func (q *Queue) AdmittedJob(id string) *Admitted { return q.admitted[id] }

// Depth returns the number of pending submissions.
func (q *Queue) Depth() int { return len(q.pending) }

// Running returns the number of admitted jobs.
func (q *Queue) Running() int { return len(q.admitted) }

// Demand returns the summed predicted bandwidth demand of admitted jobs.
func (q *Queue) Demand() unit.Rate { return q.demand }

// Pending returns the pending jobs in submission order (a copy).
func (q *Queue) Pending() []*Job {
	out := append([]*Job(nil), q.pending...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// AdmittedList returns admitted jobs in admission (sequence) order.
func (q *Queue) AdmittedList() []*Admitted {
	out := make([]*Admitted, 0, len(q.admitted))
	for _, a := range q.admitted {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job.Seq < out[j].Job.Seq })
	return out
}

// Restore resets the queue to a snapshotted state: the given pending and
// admitted jobs and the next submission sequence number. Job fields are
// taken as recorded — estimates are not recomputed, so a restored queue is
// bit-for-bit the snapshotted one.
func (q *Queue) Restore(pending []*Job, admitted []*Admitted, seq int) {
	q.pending = append([]*Job(nil), pending...)
	q.admitted = make(map[string]*Admitted, len(admitted))
	q.demand = 0
	for _, a := range admitted {
		q.admitted[a.Job.Spec.ID] = a
		q.demand += a.Job.Demand
	}
	q.seq = seq
}

// Seq returns the next submission sequence number (for snapshots).
func (q *Queue) Seq() int { return q.seq }
