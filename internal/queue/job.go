// Package queue is the coordinator's online job-arrival front end: jobs
// (wire.JobSpec, any of the six ddlt paradigms) arrive over time, a
// pluggable placement policy binds their workers to fabric hosts, and an
// admission layer orders and gates them against a concurrency/bandwidth
// budget using predicted iteration times — the prediction-assisted online
// scheduling setting of arXiv:2501.05563 layered over the paper's echelon
// scheduler. The queue itself is clockless and deterministic: callers pass
// explicit times, so the coordinator can journal its decisions and replay
// them bit-for-bit.
package queue

import (
	"fmt"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Job is one queued (or admitted) submission.
type Job struct {
	Spec    wire.JobSpec
	Owner   string // submitting session's agent name
	Arrival unit.Time
	Seq     int // submission order, the FIFO key

	// Est is the per-iteration time the admission estimator resolved at
	// submit; EstStable records whether it came from a stable profile or a
	// declared-duration fallback. Bytes is the job's total comm volume and
	// Demand its predicted bandwidth appetite (Bytes over the estimated
	// run), charged against the queue's bandwidth budget while admitted.
	Est       unit.Time
	EstStable bool
	Bytes     unit.Bytes
	Demand    unit.Rate
}

// Admitted is a job bound to hosts.
type Admitted struct {
	Job        *Job
	Hosts      []string // placement, in binding order (ps: last host is the server)
	AdmittedAt unit.Time
}

// HostsNeeded reports how many distinct hosts a placement must supply for
// the spec: its workers, plus one for the "ps" paradigm's server.
func HostsNeeded(spec wire.JobSpec) int {
	if spec.Paradigm == "ps" {
		return spec.Workers + 1
	}
	return spec.Workers
}

// Build compiles a job spec onto bound hosts (len(hosts) == HostsNeeded).
// The compilation is deterministic in (spec, hosts), so a submitter that
// knows its admission placement reconstructs the exact node and group IDs
// the coordinator registered — the loadgen drives flow events this way.
func Build(spec wire.JobSpec, hosts []string) (*ddlt.Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(hosts) != HostsNeeded(spec) {
		return nil, fmt.Errorf("queue: job %q needs %d hosts, placement bound %d",
			spec.ID, HostsNeeded(spec), len(hosts))
	}
	workers := hosts
	ps := ""
	if spec.Paradigm == "ps" {
		workers, ps = hosts[:spec.Workers], hosts[spec.Workers]
	}
	m := ddlt.Uniform(spec.ID, spec.Layers, spec.Params, spec.Acts, spec.Fwd, spec.Bwd)
	switch spec.Paradigm {
	case "dp":
		return ddlt.DPAllReduce{Name: spec.ID, Model: m, Workers: workers,
			BucketCount: spec.Buckets, Iterations: spec.Iterations}.Build()
	case "ps":
		return ddlt.DPParameterServer{Name: spec.ID, Model: m, Workers: workers, PS: ps,
			BucketCount: spec.Buckets, AggTime: spec.AggTime, Iterations: spec.Iterations}.Build()
	case "pp":
		return ddlt.PipelineGPipe{Name: spec.ID, Model: m, Workers: workers,
			MicroBatches: spec.Micro, UpdateTime: spec.UpdateTime, Iterations: spec.Iterations}.Build()
	case "1f1b":
		return ddlt.Pipeline1F1B{Name: spec.ID, Model: m, Workers: workers,
			MicroBatches: spec.Micro, UpdateTime: spec.UpdateTime, Iterations: spec.Iterations}.Build()
	case "tp":
		return ddlt.TensorParallel{Name: spec.ID, Model: m, Workers: workers,
			Iterations: spec.Iterations}.Build()
	case "fsdp":
		return ddlt.FSDP{Name: spec.ID, Model: m, Workers: workers,
			PrefetchDepth: spec.Prefetch, Iterations: spec.Iterations}.Build()
	default:
		return nil, fmt.Errorf("queue: job %q has unknown paradigm %q", spec.ID, spec.Paradigm)
	}
}

// dryHosts names enough synthetic hosts to dry-run Build for validation and
// volume accounting before any placement exists.
func dryHosts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("q%d", i)
	}
	return out
}

// Inspect dry-compiles a spec on synthetic hosts, returning its total comm
// volume. It is the submit-time validity check: an uncompilable spec (bad
// paradigm, pipeline with fewer layers than workers, ...) is rejected here,
// before it ever holds a queue slot.
func Inspect(spec wire.JobSpec) (unit.Bytes, error) {
	w, err := Build(spec, dryHosts(HostsNeeded(spec)))
	if err != nil {
		return 0, err
	}
	var total unit.Bytes
	for _, n := range w.Graph.Nodes() {
		if n.Kind == dag.Comm {
			total += n.Size
		}
	}
	return total, nil
}

// Groups lowers a compiled workload into registrable EchelonFlows, mirroring
// the simulator's group construction: comm nodes grouped by their Group
// name under the workload's arrangement, ungrouped nodes becoming singleton
// Coflows named "flow:<id>". Weight (0 means unweighted) applies to every
// group — it is the job's priority in the Eq. 4 objective.
func Groups(w *ddlt.Workload, weight float64) ([]*core.EchelonFlow, error) {
	flowsByGroup := make(map[string][]*core.Flow)
	var order []string
	for _, n := range w.Graph.Nodes() {
		if n.Kind != dag.Comm {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		if _, seen := flowsByGroup[gid]; !seen {
			order = append(order, gid)
		}
		flowsByGroup[gid] = append(flowsByGroup[gid], &core.Flow{
			ID: n.ID, Src: n.Src, Dst: n.Dst, Size: n.Size, Stage: n.Stage,
		})
	}
	out := make([]*core.EchelonFlow, 0, len(order))
	for _, gid := range order {
		flows := flowsByGroup[gid]
		var arr core.Arrangement
		if a, ok := w.Arrangements[gid]; ok {
			arr = a
		} else if len(flows) == 1 && gid == "flow:"+flows[0].ID {
			arr = core.Coflow{}
		} else {
			return nil, fmt.Errorf("queue: group %q has no arrangement", gid)
		}
		g, err := core.New(gid, arr, flows...)
		if err != nil {
			return nil, err
		}
		g.Weight = weight
		out = append(out, g)
	}
	return out, nil
}

// GroupIDs returns the group names Build(spec, hosts) will produce, without
// keeping the compiled workload around. The coordinator uses it to rebuild
// its job→groups index from a snapshot.
func GroupIDs(spec wire.JobSpec, hosts []string) ([]string, error) {
	w, err := Build(spec, hosts)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, n := range w.Graph.Nodes() {
		if n.Kind != dag.Comm {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		if !seen[gid] {
			seen[gid] = true
			out = append(out, gid)
		}
	}
	return out, nil
}
