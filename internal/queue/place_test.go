package queue

import (
	"reflect"
	"testing"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

func testNet(t *testing.T) *fabric.Network {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "a", "b", "c", "d")
	return net
}

func rackedNet(t *testing.T) *fabric.Network {
	t.Helper()
	net := testNet(t)
	for _, r := range []string{"r0", "r1"} {
		if err := net.AddRack(r, 5, 5); err != nil {
			t.Fatal(err)
		}
	}
	for host, rack := range map[string]string{"a": "r0", "b": "r0", "c": "r1", "d": "r1"} {
		if err := net.AssignRack(host, rack); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func spec(workers int) wire.JobSpec {
	return wire.JobSpec{ID: "j", Paradigm: "dp", Workers: workers, Layers: 2,
		Params: 1, Fwd: 0.1, Bwd: 0.1, Iterations: 1}
}

func TestSpreadPrefersIdleHosts(t *testing.T) {
	v := NewView(testNet(t))
	v.Workers["a"] = 2
	v.Workers["b"] = 1
	hosts, err := Spread{}.Place(spec(2), v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, []string{"c", "d"}) {
		t.Errorf("spread placed on %v, want [c d]", hosts)
	}
}

func TestPackPrefersBusyHosts(t *testing.T) {
	v := NewView(testNet(t))
	v.Workers["a"] = 2
	v.Workers["b"] = 1
	hosts, err := Pack{}.Place(spec(2), v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, []string{"a", "b"}) {
		t.Errorf("pack placed on %v, want [a b]", hosts)
	}
}

func TestLoadBreaksWorkerTies(t *testing.T) {
	v := NewView(testNet(t))
	v.Egress["a"] = 100 // load 1.0 on a; others idle
	hosts, err := Spread{}.Place(spec(3), v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, []string{"b", "c", "d"}) {
		t.Errorf("spread placed on %v, want [b c d]", hosts)
	}
}

func TestNetAwareStaysInRack(t *testing.T) {
	v := NewView(rackedNet(t))
	// c is the least loaded host, but once a worker lands in r1 the second
	// should stay there rather than jump racks to an equally-idle r0 host.
	v.Egress["a"] = 10
	v.Egress["b"] = 10
	hosts, err := NetAware{}.Place(spec(2), v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hosts, []string{"c", "d"}) {
		t.Errorf("netaware placed on %v, want [c d]", hosts)
	}
}

func TestNetAwareCrossesWhenRackFull(t *testing.T) {
	v := NewView(rackedNet(t))
	v.Egress["a"] = 10
	v.Egress["b"] = 10
	hosts, err := NetAware{}.Place(spec(3), v)
	if err != nil {
		t.Fatal(err)
	}
	// Three workers cannot fit one two-host rack; the spill host must be the
	// less loaded of r0 (names break the tie).
	if !reflect.DeepEqual(hosts, []string{"c", "d", "a"}) {
		t.Errorf("netaware placed on %v, want [c d a]", hosts)
	}
}

func TestNetAwareNoRacksDegradesToLoad(t *testing.T) {
	v := NewView(testNet(t))
	v.Egress["a"] = 50
	hosts, err := NetAware{}.Place(spec(2), v)
	if err != nil {
		t.Fatal(err)
	}
	// With every host in the "" pseudo-rack, the rack bias never fires after
	// the first pick, so selection is purely load-then-name.
	if !reflect.DeepEqual(hosts, []string{"b", "c"}) {
		t.Errorf("netaware placed on %v, want [b c]", hosts)
	}
}

func TestPlaceTooFewHosts(t *testing.T) {
	v := NewView(testNet(t))
	for _, p := range []Placer{Pack{}, Spread{}, NetAware{}} {
		if _, err := p.Place(spec(5), v); err == nil {
			t.Errorf("%s accepted a 5-worker job on a 4-host fabric", p.Name())
		}
	}
	// ps needs workers+1.
	ps := spec(4)
	ps.Paradigm = "ps"
	if _, err := (Spread{}).Place(ps, v); err == nil {
		t.Error("spread accepted ps job needing 5 hosts on 4")
	}
}

func TestPlacersAreDeterministic(t *testing.T) {
	for _, p := range []Placer{Pack{}, Spread{}, NetAware{}} {
		v := NewView(rackedNet(t))
		v.Workers["b"] = 1
		v.Ingress["d"] = 30
		first, err := p.Place(spec(3), v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := p.Place(spec(3), v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, first) {
				t.Fatalf("%s not deterministic: %v then %v", p.Name(), first, again)
			}
		}
	}
}

func TestPlacerByName(t *testing.T) {
	for _, name := range []string{"pack", "spread", "netaware"} {
		p, err := PlacerByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("PlacerByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PlacerByName("random"); err == nil {
		t.Error("unknown placer accepted")
	}
}

func TestTotalCapacity(t *testing.T) {
	net := fabric.NewNetwork()
	if err := net.AddHost("x", 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := net.AddHost("y", 6, 8); err != nil {
		t.Fatal(err)
	}
	v := NewView(net)
	if got := v.TotalCapacity(); got != unit.Rate(10) {
		t.Errorf("TotalCapacity = %v, want 10 (min(10,4)+min(6,8))", got)
	}
}

func TestPlacersAvoidFaultedHost(t *testing.T) {
	// A faulted host (both ports at zero) used to report load 0 and so rank
	// as the *least* loaded target: Spread and NetAware aimed every new job
	// straight at the dead NIC. It must now lose to any live host.
	for _, p := range []Placer{Pack{}, Spread{}, NetAware{}} {
		v := NewView(testNet(t))
		if err := v.Net.SetCapacity("a", 0, 0); err != nil {
			t.Fatal(err)
		}
		v.Egress["b"] = 90 // heavily loaded, but alive — still beats a
		v.Egress["c"] = 90
		v.Egress["d"] = 90
		hosts, err := p.Place(spec(3), v)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range hosts {
			if h == "a" {
				t.Errorf("%s placed a worker on zero-capacity host a: %v", p.Name(), hosts)
			}
		}
	}
}

func TestPlaceUsesFaultedHostOnlyAsLastResort(t *testing.T) {
	// When the job cannot fit on the live hosts alone, dead hosts become
	// eligible again (the job stalls until recovery instead of being
	// rejected) — and they still sort behind every live host.
	v := NewView(testNet(t))
	if err := v.Net.SetCapacity("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	hosts, err := Spread{}.Place(spec(4), v)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 4 || hosts[3] != "a" {
		t.Errorf("spread on a 4-of-4 job = %v, want faulted host a last", hosts)
	}
}
