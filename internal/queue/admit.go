package queue

import (
	"fmt"

	"echelonflow/internal/profile"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Order ranks queued jobs for admission. The queue admits strictly in this
// order (head-of-line, no skipping), so under equal priority FIFO fairness
// is an invariant the check oracle can assert.
type Order interface {
	Name() string
	Less(a, b *Job) bool
}

// FIFO admits in submission order.
type FIFO struct{}

// Name implements Order.
func (FIFO) Name() string { return "fifo" }

// Less implements Order.
func (FIFO) Less(a, b *Job) bool { return a.Seq < b.Seq }

// SRPT admits shortest-predicted-remaining-work first: estimated iteration
// time times remaining iterations, submission order breaking ties. With
// good predictions this minimizes mean queueing delay; with bad ones it
// degrades to noisy FIFO, which is why Est carries a stability verdict.
type SRPT struct{}

// Name implements Order.
func (SRPT) Name() string { return "srpt" }

// Less implements Order.
func (SRPT) Less(a, b *Job) bool {
	ra := a.Est * unit.Time(a.Spec.Iterations)
	rb := b.Est * unit.Time(b.Spec.Iterations)
	if ra != rb {
		return ra < rb
	}
	return a.Seq < b.Seq
}

// OrderByName resolves a CLI admission-order name.
func OrderByName(name string) (Order, error) {
	switch name {
	case "fifo":
		return FIFO{}, nil
	case "srpt":
		return SRPT{}, nil
	default:
		return nil, fmt.Errorf("queue: unknown admission order %q (want fifo or srpt)", name)
	}
}

// Estimator predicts a job's per-iteration time at submit. The bool reports
// whether the estimate is trusted (stable profile) or a fallback.
type Estimator interface {
	Estimate(spec wire.JobSpec) (unit.Time, bool)
}

// DeclaredEstimate is every estimator's fallback: the submitter's declared
// per-iteration duration, or a compute-shape derivation (layers × (fwd+bwd))
// when none was declared.
func DeclaredEstimate(spec wire.JobSpec) unit.Time {
	if spec.Declared > 0 {
		return spec.Declared
	}
	return unit.Time(spec.Layers) * (spec.Fwd + spec.Bwd)
}

// Declared is the profile-free estimator: declared durations, never stable.
type Declared struct{}

// Estimate implements Estimator.
func (Declared) Estimate(spec wire.JobSpec) (unit.Time, bool) {
	return DeclaredEstimate(spec), false
}

// ProfileEstimator predicts from measured iteration times (profile.Predict),
// falling back to the declared duration when the job has no usable
// measurements or its profile is unstable beyond Tol. IDs maps a spec to
// its per-iteration compute-unit node IDs; returning nil means "never
// profiled".
type ProfileEstimator struct {
	Profile *profile.Profile
	IDs     func(spec wire.JobSpec) [][]string
	Tol     float64
}

// Estimate implements Estimator.
func (e ProfileEstimator) Estimate(spec wire.JobSpec) (unit.Time, bool) {
	if e.Profile == nil || e.IDs == nil {
		return DeclaredEstimate(spec), false
	}
	ids := e.IDs(spec)
	if len(ids) == 0 {
		return DeclaredEstimate(spec), false
	}
	pred := e.Profile.Predict(ids, e.Tol)
	if pred.Iteration <= 0 {
		return DeclaredEstimate(spec), false
	}
	return pred.Iteration, pred.Stable
}
