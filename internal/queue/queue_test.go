package queue

import (
	"errors"
	"reflect"
	"testing"

	"echelonflow/internal/dag"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

func dpSpec(id string, workers int) wire.JobSpec {
	return wire.JobSpec{ID: id, Tenant: "t0", Paradigm: "dp", Workers: workers,
		Layers: 2, Params: 4, Fwd: 0.1, Bwd: 0.1, Iterations: 2, Declared: 1}
}

func TestHostsNeeded(t *testing.T) {
	if got := HostsNeeded(dpSpec("j", 3)); got != 3 {
		t.Errorf("dp HostsNeeded = %d", got)
	}
	ps := dpSpec("j", 3)
	ps.Paradigm = "ps"
	if got := HostsNeeded(ps); got != 4 {
		t.Errorf("ps HostsNeeded = %d, want workers+1", got)
	}
}

func TestBuildAllParadigms(t *testing.T) {
	for _, paradigm := range []string{"dp", "ps", "pp", "1f1b", "tp", "fsdp"} {
		s := dpSpec("job/"+paradigm, 2)
		s.Paradigm = paradigm
		s.Buckets = 1
		s.Micro = 2
		w, err := Build(s, dryHosts(HostsNeeded(s)))
		if err != nil {
			t.Errorf("%s: %v", paradigm, err)
			continue
		}
		comm := 0
		for _, n := range w.Graph.Nodes() {
			if n.Kind == dag.Comm {
				comm++
			}
		}
		if comm == 0 {
			t.Errorf("%s: built workload has no comm nodes", paradigm)
		}
		groups, err := Groups(w, 2)
		if err != nil {
			t.Errorf("%s: Groups: %v", paradigm, err)
			continue
		}
		for _, g := range groups {
			if g.Weight != 2 {
				t.Errorf("%s: group %s weight = %v", paradigm, g.ID, g.Weight)
			}
		}
		ids, err := GroupIDs(s, dryHosts(HostsNeeded(s)))
		if err != nil {
			t.Fatalf("%s: GroupIDs: %v", paradigm, err)
		}
		if len(ids) != len(groups) {
			t.Errorf("%s: GroupIDs returned %d names, Groups built %d", paradigm, len(ids), len(groups))
		}
		for i, g := range groups {
			if ids[i] != g.ID {
				t.Errorf("%s: GroupIDs[%d] = %s, group ID %s", paradigm, i, ids[i], g.ID)
			}
		}
	}
}

func TestBuildRejectsBadPlacement(t *testing.T) {
	if _, err := Build(dpSpec("j", 3), []string{"a", "b"}); err == nil {
		t.Error("short placement accepted")
	}
	bad := dpSpec("j", 2)
	bad.Paradigm = "mystery"
	if _, err := Build(bad, []string{"a", "b"}); err == nil {
		t.Error("unknown paradigm accepted")
	}
}

func TestInspectVolume(t *testing.T) {
	// dp all-reduce over 2 workers: ring all-reduce moves a deterministic
	// multiple of the parameter volume; just require it to be positive and
	// stable across calls.
	v1, err := Inspect(dpSpec("j", 2))
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := Inspect(dpSpec("other", 2))
	if v1 <= 0 || v1 != v2 {
		t.Errorf("Inspect volumes = %v, %v", v1, v2)
	}
	// A pipeline with more workers than layers cannot compile: Inspect must
	// catch it before the job holds a queue slot.
	pp := dpSpec("j", 4)
	pp.Paradigm = "pp"
	pp.Micro = 2
	pp.Layers = 2
	if _, err := Inspect(pp); err == nil {
		t.Error("uncompilable pipeline passed Inspect")
	}
}

func TestSubmitValidatesAndOrders(t *testing.T) {
	q := New(Options{})
	j, err := q.Submit("agent0", dpSpec("j0", 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if j.Arrival != 5 || j.Seq != 0 || j.Owner != "agent0" || j.Bytes <= 0 {
		t.Errorf("queued job = %+v", j)
	}
	// Declared=1, 2 iterations → demand = bytes / 2.
	if want := unit.Rate(float64(j.Bytes) / 2); j.Demand != want {
		t.Errorf("demand = %v, want %v", j.Demand, want)
	}
	var rej *RejectError
	if _, err := q.Submit("agent0", dpSpec("j0", 2), 6); !errors.As(err, &rej) {
		t.Errorf("duplicate id: %v", err)
	}
	bad := dpSpec("", 2)
	if _, err := q.Submit("agent0", bad, 6); !errors.As(err, &rej) || rej.Code != wire.ErrCodeBadJob {
		t.Errorf("invalid spec: %v", err)
	}
	if q.Depth() != 1 {
		t.Errorf("depth = %d after rejects", q.Depth())
	}
}

func TestSubmitQueueFull(t *testing.T) {
	q := New(Options{MaxQueued: 1})
	if _, err := q.Submit("a", dpSpec("j0", 2), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("a", dpSpec("j1", 2), 0); !errors.Is(err, ErrQueueFull) {
		t.Errorf("want ErrQueueFull, got %v", err)
	}
}

func TestNextAdmitsFIFO(t *testing.T) {
	q := New(Options{})
	v := NewView(testNet(t))
	for _, id := range []string{"j0", "j1"} {
		if _, err := q.Submit("a", dpSpec(id, 2), 0); err != nil {
			t.Fatal(err)
		}
	}
	a, err := q.Next(v, 1)
	if err != nil || a == nil || a.Job.Spec.ID != "j0" {
		t.Fatalf("first admission = %+v, %v", a, err)
	}
	if a.AdmittedAt != 1 || len(a.Hosts) != 2 {
		t.Errorf("admission record = %+v", a)
	}
	b, err := q.Next(v, 2)
	if err != nil || b == nil || b.Job.Spec.ID != "j1" {
		t.Fatalf("second admission = %+v, %v", b, err)
	}
	if c, err := q.Next(v, 3); c != nil || err != nil {
		t.Errorf("empty queue returned %+v, %v", c, err)
	}
	if q.Depth() != 0 || q.Running() != 2 {
		t.Errorf("depth=%d running=%d", q.Depth(), q.Running())
	}
}

func TestNextSRPTOrdersByPredictedWork(t *testing.T) {
	q := New(Options{Order: SRPT{}})
	v := NewView(testNet(t))
	long := dpSpec("long", 2)
	long.Declared = 10
	short := dpSpec("short", 2)
	short.Declared = 1
	q.Submit("a", long, 0)
	q.Submit("a", short, 0)
	a, err := q.Next(v, 1)
	if err != nil || a == nil || a.Job.Spec.ID != "short" {
		t.Fatalf("SRPT admitted %+v, %v", a, err)
	}
}

func TestNextMaxJobsBudget(t *testing.T) {
	q := New(Options{MaxJobs: 1})
	v := NewView(testNet(t))
	q.Submit("a", dpSpec("j0", 2), 0)
	q.Submit("a", dpSpec("j1", 2), 0)
	if a, _ := q.Next(v, 1); a == nil {
		t.Fatal("first job blocked")
	}
	if a, err := q.Next(v, 1); a != nil || err != nil {
		t.Fatalf("budget overshot: %+v, %v", a, err)
	}
	if !q.Depart("j0") {
		t.Fatal("depart j0")
	}
	if a, _ := q.Next(v, 2); a == nil || a.Job.Spec.ID != "j1" {
		t.Fatal("departure did not unblock admission")
	}
}

func TestNextBandwidthBudget(t *testing.T) {
	// Fabric capacity 40 (4 hosts × 10); MaxShare 0.5 → budget 20.
	q := New(Options{MaxShare: 0.5})
	v := NewView(testNet(t))
	big := dpSpec("big", 2)
	big.Params = 100 // large volume over declared 1s × 2 iters
	q.Submit("a", big, 0)
	q.Submit("a", big, 0) // duplicate rejected, ignore
	second := dpSpec("second", 2)
	second.Params = 100
	q.Submit("a", second, 0)
	a, _ := q.Next(v, 1)
	if a == nil {
		t.Fatal("an empty admitted set must never block on the bandwidth budget")
	}
	if q.Demand() <= 20 {
		t.Fatalf("test premise broken: demand %v should exceed budget alone", q.Demand())
	}
	if b, err := q.Next(v, 1); b != nil || err != nil {
		t.Fatalf("bandwidth budget overshot: %+v, %v", b, err)
	}
	q.Depart("big")
	if q.Demand() != 0 {
		t.Errorf("demand after last departure = %v", q.Demand())
	}
	if b, _ := q.Next(v, 2); b == nil {
		t.Fatal("departure did not unblock")
	}
}

func TestNextRejectsUnplaceable(t *testing.T) {
	q := New(Options{})
	v := NewView(testNet(t)) // 4 hosts
	q.Submit("a", dpSpec("wide", 4), 0)
	wide := q.Job("wide")
	wide.Spec.Workers = 5 // grew beyond the fabric after submit-time checks
	q.Submit("a", dpSpec("ok", 2), 0)
	a, err := q.Next(v, 1)
	var rej *RejectError
	if a != nil || !errors.As(err, &rej) || rej.JobID != "wide" {
		t.Fatalf("Next = %+v, %v", a, err)
	}
	// The reject freed the head; the job behind it admits.
	b, err := q.Next(v, 1)
	if err != nil || b == nil || b.Job.Spec.ID != "ok" {
		t.Fatalf("after reject: %+v, %v", b, err)
	}
}

func TestForceAdmitAndRestore(t *testing.T) {
	q := New(Options{})
	q.Submit("a", dpSpec("j0", 2), 0)
	q.Submit("a", dpSpec("j1", 2), 1)
	a, err := q.ForceAdmit("j0", []string{"c", "d"}, 3)
	if err != nil || !reflect.DeepEqual(a.Hosts, []string{"c", "d"}) || a.AdmittedAt != 3 {
		t.Fatalf("ForceAdmit = %+v, %v", a, err)
	}
	if _, err := q.ForceAdmit("ghost", nil, 3); err == nil {
		t.Error("ForceAdmit of unknown job accepted")
	}

	// Snapshot and restore into a fresh queue: same pending, admitted, seq.
	pending, admitted, seq := q.Pending(), q.AdmittedList(), q.Seq()
	q2 := New(Options{})
	q2.Restore(pending, admitted, seq)
	if q2.Depth() != 1 || q2.Running() != 1 || q2.Seq() != 2 {
		t.Fatalf("restored depth=%d running=%d seq=%d", q2.Depth(), q2.Running(), q2.Seq())
	}
	if q2.Demand() != q.Demand() {
		t.Errorf("restored demand %v != %v", q2.Demand(), q.Demand())
	}
	got := q2.AdmittedJob("j0")
	if got == nil || !reflect.DeepEqual(got.Hosts, a.Hosts) || got.AdmittedAt != 3 {
		t.Errorf("restored admission = %+v", got)
	}
	// Sequence numbering continues without collision.
	j, err := q2.Submit("a", dpSpec("j2", 2), 5)
	if err != nil || j.Seq != 2 {
		t.Fatalf("post-restore submit = %+v, %v", j, err)
	}
}

func TestDepartPendingJob(t *testing.T) {
	q := New(Options{})
	q.Submit("a", dpSpec("j0", 2), 0)
	if !q.Depart("j0") {
		t.Fatal("pending job not departable")
	}
	if q.Depart("j0") {
		t.Error("double departure reported found")
	}
	if q.Depth() != 0 {
		t.Errorf("depth = %d", q.Depth())
	}
}

func TestPolicyNames(t *testing.T) {
	q := New(Options{Placer: Pack{}, Order: SRPT{}})
	p, o := q.Policy()
	if p != "pack" || o != "srpt" {
		t.Errorf("Policy = %s, %s", p, o)
	}
	q = New(Options{})
	p, o = q.Policy()
	if p != "spread" || o != "fifo" {
		t.Errorf("default Policy = %s, %s", p, o)
	}
}
