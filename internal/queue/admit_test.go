package queue

import (
	"testing"

	"echelonflow/internal/profile"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

func TestFIFOOrder(t *testing.T) {
	a := &Job{Seq: 0, Est: 100}
	b := &Job{Seq: 1, Est: 1}
	if !(FIFO{}).Less(a, b) || (FIFO{}).Less(b, a) {
		t.Error("FIFO must order by submission sequence only")
	}
}

func TestSRPTOrder(t *testing.T) {
	long := &Job{Seq: 0, Est: 10, Spec: wire.JobSpec{Iterations: 2}}
	short := &Job{Seq: 1, Est: 1, Spec: wire.JobSpec{Iterations: 3}}
	if !(SRPT{}).Less(short, long) {
		t.Error("SRPT must prefer the shorter predicted run")
	}
	// Iterations multiply: 10×2 < 7×3.
	mid := &Job{Seq: 2, Est: 7, Spec: wire.JobSpec{Iterations: 3}}
	if !(SRPT{}).Less(long, mid) {
		t.Error("SRPT must compare est × iterations, not est alone")
	}
	// Equal work falls back to FIFO.
	twinA := &Job{Seq: 3, Est: 5, Spec: wire.JobSpec{Iterations: 1}}
	twinB := &Job{Seq: 4, Est: 5, Spec: wire.JobSpec{Iterations: 1}}
	if !(SRPT{}).Less(twinA, twinB) || (SRPT{}).Less(twinB, twinA) {
		t.Error("SRPT ties must break by sequence")
	}
}

func TestOrderByName(t *testing.T) {
	for _, name := range []string{"fifo", "srpt"} {
		o, err := OrderByName(name)
		if err != nil || o.Name() != name {
			t.Errorf("OrderByName(%q) = %v, %v", name, o, err)
		}
	}
	if _, err := OrderByName("lifo"); err == nil {
		t.Error("unknown order accepted")
	}
}

func TestDeclaredEstimate(t *testing.T) {
	s := wire.JobSpec{Declared: 4, Layers: 3, Fwd: 1, Bwd: 2}
	if got := DeclaredEstimate(s); got != 4 {
		t.Errorf("declared duration ignored: got %v", got)
	}
	s.Declared = 0
	if got := DeclaredEstimate(s); got != 9 {
		t.Errorf("shape-derived estimate = %v, want layers*(fwd+bwd) = 9", got)
	}
	if d, stable := (Declared{}).Estimate(s); d != 9 || stable {
		t.Errorf("Declared.Estimate = %v, %v", d, stable)
	}
}

// measuredProfile builds a profile where job/it<k>/u<i> took the given
// per-iteration durations.
func measuredProfile(perIter [][]unit.Time) (*profile.Profile, [][]string) {
	res := &sim.Result{Tasks: make(map[string]sim.Span)}
	ids := make([][]string, len(perIter))
	for k, durs := range perIter {
		for i, d := range durs {
			id := itID(k, i)
			res.Tasks[id] = sim.Span{Start: 0, End: d}
			ids[k] = append(ids[k], id)
		}
	}
	return profile.FromResult(res), ids
}

func itID(k, u int) string { return "job/it" + string(rune('0'+k)) + "/u" + string(rune('0'+u)) }

func TestProfileEstimatorStable(t *testing.T) {
	p, ids := measuredProfile([][]unit.Time{{1, 2}, {1, 2}})
	e := ProfileEstimator{Profile: p, Tol: 0.05,
		IDs: func(wire.JobSpec) [][]string { return ids }}
	est, stable := e.Estimate(wire.JobSpec{Declared: 99})
	if est != 3 || !stable {
		t.Errorf("Estimate = %v, %v; want 3, true", est, stable)
	}
}

func TestProfileEstimatorUnstableStillMeasured(t *testing.T) {
	p, ids := measuredProfile([][]unit.Time{{1}, {2}})
	e := ProfileEstimator{Profile: p, Tol: 0.05,
		IDs: func(wire.JobSpec) [][]string { return ids }}
	est, stable := e.Estimate(wire.JobSpec{Declared: 99})
	if est != 1.5 || stable {
		t.Errorf("Estimate = %v, %v; want measured mean 1.5, unstable", est, stable)
	}
}

func TestProfileEstimatorFallsBackToDeclared(t *testing.T) {
	p, _ := measuredProfile(nil)
	cases := []ProfileEstimator{
		{},           // no profile at all
		{Profile: p}, // no IDs mapping
		{Profile: p, IDs: func(wire.JobSpec) [][]string { return nil }},                   // never profiled
		{Profile: p, IDs: func(wire.JobSpec) [][]string { return [][]string{{"ghost"}} }}, // unmeasured
	}
	for i, e := range cases {
		est, stable := e.Estimate(wire.JobSpec{Declared: 7})
		if est != 7 || stable {
			t.Errorf("case %d: Estimate = %v, %v; want declared 7, unstable", i, est, stable)
		}
	}
}
