package faults

import (
	"context"
	"reflect"
	"testing"
	"time"

	"echelonflow/internal/fabric"
)

func TestStallEventValidation(t *testing.T) {
	good := []Event{
		{At: 1, Kind: SchedStall, For: 0.05},
		{At: 2, Kind: SchedStall}, // For=0 clears
		{At: 1, Kind: FsyncStall, For: 0.2},
		{At: 1, Kind: AgentStall, Agent: "a1", For: 0.1},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("%+v: %v", e, err)
		}
	}
	bad := []Event{
		{At: 1, Kind: SchedStall, For: -0.1},
		{At: 1, Kind: AgentStall, For: 0.1},            // no agent
		{At: 1, Kind: AgentStall, Agent: "a", For: -1}, // negative stall
		{At: 1, Kind: FsyncStall, For: -0.5},           //
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("%+v: want validation error", e)
		}
	}
}

func TestStallParseRoundTrip(t *testing.T) {
	src := `{"events":[{"at":1,"kind":"sched_stall","for":0.05},{"at":2,"kind":"agent_stall","agent":"a1","for":0.1},{"at":3,"kind":"fsync_stall","for":0.2},{"at":4,"kind":"sched_stall"}]}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 || s.Events[1].Agent != "a1" || s.Events[2].For != 0.2 {
		t.Fatalf("parsed %+v", s.Events)
	}
}

func TestStallKindsCompileToSimNoops(t *testing.T) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(6, "s0")
	sched := &Schedule{Events: []Event{
		{At: 1, Kind: SchedStall, For: 0.05},
		{At: 2, Kind: AgentStall, Agent: "a1", For: 0.1},
		{At: 3, Kind: FsyncStall, For: 0.2},
	}}
	caps, dils, err := CompileSim(sched, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 0 || len(dils) != 0 {
		t.Errorf("stall kinds must be sim no-ops, got %d caps %d dilations", len(caps), len(dils))
	}
}

func TestStallKindsDriveLiveHooks(t *testing.T) {
	var schedStalls, fsyncStalls []time.Duration
	type agentStall struct {
		agent string
		d     time.Duration
	}
	var agentStalls []agentStall
	actions := LiveActions{
		StallScheduler: func(d time.Duration) error { schedStalls = append(schedStalls, d); return nil },
		StallAgent: func(a string, d time.Duration) error {
			agentStalls = append(agentStalls, agentStall{a, d})
			return nil
		},
		StallFsync: func(d time.Duration) error { fsyncStalls = append(fsyncStalls, d); return nil },
	}
	sched := &Schedule{Events: []Event{
		{At: 0, Kind: SchedStall, For: 0.05},
		{At: 0.01, Kind: AgentStall, Agent: "a1", For: 0.1},
		{At: 0.02, Kind: FsyncStall, For: 0.2},
		{At: 0.03, Kind: SchedStall},
	}}
	if err := Replay(context.Background(), sched, actions, ReplayOptions{TimeScale: 0.01, Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(schedStalls, []time.Duration{50 * time.Millisecond, 0}) {
		t.Errorf("sched stalls = %v", schedStalls)
	}
	if !reflect.DeepEqual(agentStalls, []agentStall{{"a1", 100 * time.Millisecond}}) {
		t.Errorf("agent stalls = %v", agentStalls)
	}
	if !reflect.DeepEqual(fsyncStalls, []time.Duration{200 * time.Millisecond}) {
		t.Errorf("fsync stalls = %v", fsyncStalls)
	}
	// Nil hooks skip, not fail.
	if err := Replay(context.Background(), sched, LiveActions{}, ReplayOptions{TimeScale: 0.001}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateStallIncidents(t *testing.T) {
	s, err := Generate(GenConfig{
		Seed: 7, Hosts: []string{"s0", "s1"}, Horizon: 20, Incidents: 2,
		Baseline: 6, StallIncidents: 4, Agents: []string{"a0", "a1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	stalls := 0
	for _, e := range s.Events {
		switch e.Kind {
		case SchedStall, AgentStall, FsyncStall:
			stalls++
		}
	}
	if stalls != 8 { // 4 incidents, each an on + off pair
		t.Errorf("stall events = %d, want 8", stalls)
	}
	// Determinism: same config, same schedule.
	s2, err := Generate(GenConfig{
		Seed: 7, Hosts: []string{"s0", "s1"}, Horizon: 20, Incidents: 2,
		Baseline: 6, StallIncidents: 4, Agents: []string{"a0", "a1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Error("identical configs must generate identical schedules")
	}
}
