// Package faults is the fault-injection subsystem: a deterministic,
// seedable schedule of typed fault events (link degradation/failure/
// recovery, host stragglers, agent crashes and restarts, network
// partitions) that two drivers replay against the rest of the system.
//
// The sim driver (CompileSim) lowers a schedule into the event simulator's
// fabric capacity changes and compute-time dilations, so every scheduler
// can be evaluated under the same reproducible incident sequence (E12).
// The live driver (Driver) replays the same schedule in wall-clock time
// against the loopback Coordinator/Agent cluster, killing and reviving
// agent sessions and rewriting the coordinator's capacity model.
//
// Schedules are plain data: load them from JSON (Load/Parse), construct
// them in code, or draw a reproducible random one (Generate). The same
// schedule file drives both the simulator and the live cluster.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"echelonflow/internal/unit"
)

// Kind enumerates the fault event types.
type Kind string

const (
	// LinkDegrade rewrites Host's NIC capacities to Egress/Ingress.
	LinkDegrade Kind = "link_degrade"
	// LinkFail cuts Host's NIC down in both directions (drivers leave the
	// OutageFraction residual so fluid-model planning stays feasible).
	LinkFail Kind = "link_fail"
	// LinkRecover restores Host's NIC to its pre-schedule baseline.
	LinkRecover Kind = "link_recover"
	// HostStraggle dilates computation on Host by Factor (>1 slows, 1
	// restores full speed).
	HostStraggle Kind = "host_straggle"
	// AgentCrash kills the named Agent's session. In the simulator (which
	// has no agents) the crash is modelled on Host: its NIC goes down
	// until the matching AgentRestart.
	AgentCrash Kind = "agent_crash"
	// AgentRestart revives the named Agent (sim: restores Host's NIC).
	AgentRestart Kind = "agent_restart"
	// Partition isolates every host in Hosts from the fabric (all their
	// NICs go down).
	Partition Kind = "partition"
	// PartitionHeal restores every host in Hosts to baseline.
	PartitionHeal Kind = "partition_heal"
	// CoordinatorCrash kills the coordinator process: control-plane state
	// survives only through its journal. The simulator has no control
	// plane, so the sim driver treats it as a no-op.
	CoordinatorCrash Kind = "coordinator_crash"
	// CoordinatorRestart brings the coordinator back, recovering from its
	// journal (coordinator.Restore) and awaiting agent re-adoption.
	CoordinatorRestart Kind = "coordinator_restart"
	// SchedStall injects For seconds of artificial latency into every
	// scheduler pass — the gray-failure condition the deadline wrapper
	// degrades under. For=0 clears the stall. The simulator's scheduler is
	// instantaneous, so the sim driver treats it as a no-op.
	SchedStall Kind = "sched_stall"
	// AgentStall delays the named Agent's report/heartbeat path by For
	// seconds per message, making it a straggler without killing it (the
	// condition soft-quarantine detects). For=0 clears. Sim: no-op.
	AgentStall Kind = "agent_stall"
	// FsyncStall makes every journal append's fsync take an extra For
	// seconds. For=0 clears. Sim: no-op (the simulator has no journal).
	FsyncStall Kind = "fsync_stall"
)

// Event is one timed fault. Which fields matter depends on Kind; Validate
// enforces the pairing.
type Event struct {
	// At is the event time: simulated seconds for the sim driver,
	// wall-clock seconds since replay start for the live driver.
	At unit.Time `json:"at"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Host targets link and straggle events (and locates agent events on
	// the fabric for the sim driver).
	Host string `json:"host,omitempty"`
	// Hosts targets partition events.
	Hosts []string `json:"hosts,omitempty"`
	// Egress/Ingress are the degraded capacities for LinkDegrade.
	Egress  unit.Rate `json:"egress,omitempty"`
	Ingress unit.Rate `json:"ingress,omitempty"`
	// Factor is the HostStraggle compute dilation.
	Factor float64 `json:"factor,omitempty"`
	// Agent names the session for AgentCrash/AgentRestart/AgentStall.
	Agent string `json:"agent,omitempty"`
	// For is the injected latency, in seconds, for the stall kinds
	// (sched_stall, agent_stall, fsync_stall); zero clears the stall.
	For unit.Time `json:"for,omitempty"`
}

// Validate checks the event's fields against its kind.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("faults: %s event at negative time %v", e.Kind, e.At)
	}
	switch e.Kind {
	case LinkDegrade:
		if e.Host == "" {
			return fmt.Errorf("faults: link_degrade needs a host")
		}
		if e.Egress < 0 || e.Ingress < 0 {
			return fmt.Errorf("faults: link_degrade on %q has negative capacity", e.Host)
		}
	case LinkFail, LinkRecover:
		if e.Host == "" {
			return fmt.Errorf("faults: %s needs a host", e.Kind)
		}
	case HostStraggle:
		if e.Host == "" {
			return fmt.Errorf("faults: host_straggle needs a host")
		}
		if e.Factor <= 0 {
			return fmt.Errorf("faults: host_straggle on %q needs a positive factor, got %v", e.Host, e.Factor)
		}
	case AgentCrash, AgentRestart:
		if e.Agent == "" {
			return fmt.Errorf("faults: %s needs an agent name", e.Kind)
		}
	case Partition, PartitionHeal:
		if len(e.Hosts) == 0 {
			return fmt.Errorf("faults: %s needs at least one host", e.Kind)
		}
	case CoordinatorCrash, CoordinatorRestart:
		// Target-free: there is exactly one coordinator.
	case SchedStall, FsyncStall:
		if e.For < 0 {
			return fmt.Errorf("faults: %s needs a non-negative stall, got %v", e.Kind, e.For)
		}
	case AgentStall:
		if e.Agent == "" {
			return fmt.Errorf("faults: agent_stall needs an agent name")
		}
		if e.For < 0 {
			return fmt.Errorf("faults: agent_stall on %q needs a non-negative stall, got %v", e.Agent, e.For)
		}
	default:
		return fmt.Errorf("faults: unknown event kind %q", e.Kind)
	}
	return nil
}

// Schedule is an ordered fault-event list. Seed records the generator seed
// for provenance (zero for hand-written schedules); determinism of a replay
// depends only on Events.
type Schedule struct {
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// Validate checks every event and that the list is replayable.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Sorted returns the events in time order, stable for equal times, leaving
// the schedule untouched.
func (s *Schedule) Sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// End returns the time of the last event, or zero for an empty schedule.
func (s *Schedule) End() unit.Time {
	var end unit.Time
	for _, e := range s.Events {
		if e.At > end {
			end = e.At
		}
	}
	return end
}

// Parse decodes a JSON schedule and validates it. Unknown fields are
// rejected so a typo'd schedule fails loudly instead of silently injecting
// nothing.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a JSON schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}

// GenConfig parameterises Generate.
type GenConfig struct {
	// Seed fixes the random stream; the same config always yields the
	// same schedule.
	Seed int64
	// Hosts are the candidate fault targets. Required.
	Hosts []string
	// Horizon bounds event times to [0, Horizon). Required.
	Horizon unit.Time
	// Incidents is how many degrade->recover / straggle->restore pairs to
	// draw (default 3).
	Incidents int
	// MaxStraggle bounds the straggle factor (default 2; minimum drawn
	// factor is 1.1 so every straggle incident is observable).
	MaxStraggle float64
	// DegradeFraction scales degraded capacity relative to baseline
	// capacity Baseline (default 1/3). Baseline must be set when any
	// degrade incident is drawn.
	DegradeFraction float64
	Baseline        unit.Rate
	// StallIncidents is how many gray-failure stall incidents
	// (sched_stall / fsync_stall / agent_stall) to draw in addition to the
	// capacity/straggle incidents (default 0 — none, which also keeps the
	// random stream of pre-existing configs unchanged).
	StallIncidents int
	// Agents are candidate agent_stall targets; when empty, stall
	// incidents only draw sched_stall and fsync_stall.
	Agents []string
	// MaxStall bounds the injected stall in seconds (default 0.2).
	MaxStall unit.Time
}

// Generate draws a reproducible random schedule: Incidents incidents, each
// either a link degradation or a host straggle, with a recovery event at a
// random later time inside the horizon. Identical configs yield identical
// schedules (math/rand with a fixed seed), making chaos runs replayable
// from just the seed.
func Generate(cfg GenConfig) (*Schedule, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("faults: Generate needs hosts")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: Generate needs a positive horizon")
	}
	if cfg.Incidents <= 0 {
		cfg.Incidents = 3
	}
	if cfg.MaxStraggle <= 1 {
		cfg.MaxStraggle = 2
	}
	if cfg.DegradeFraction <= 0 || cfg.DegradeFraction >= 1 {
		cfg.DegradeFraction = 1.0 / 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{Seed: cfg.Seed}
	for i := 0; i < cfg.Incidents; i++ {
		host := cfg.Hosts[rng.Intn(len(cfg.Hosts))]
		start := unit.Time(rng.Float64() * float64(cfg.Horizon) * 0.6)
		end := start + unit.Time((0.1+0.3*rng.Float64())*float64(cfg.Horizon))
		if end >= cfg.Horizon {
			end = cfg.Horizon - unit.Time(unit.Eps)
		}
		if rng.Intn(2) == 0 {
			if cfg.Baseline <= 0 {
				return nil, fmt.Errorf("faults: Generate drew a degrade incident but Baseline is unset")
			}
			cap0 := unit.Rate(float64(cfg.Baseline) * cfg.DegradeFraction)
			s.Events = append(s.Events,
				Event{At: start, Kind: LinkDegrade, Host: host, Egress: cap0, Ingress: cap0},
				Event{At: end, Kind: LinkRecover, Host: host})
		} else {
			factor := 1.1 + rng.Float64()*(cfg.MaxStraggle-1.1)
			s.Events = append(s.Events,
				Event{At: start, Kind: HostStraggle, Host: host, Factor: factor},
				Event{At: end, Kind: HostStraggle, Host: host, Factor: 1})
		}
	}
	if cfg.MaxStall <= 0 {
		cfg.MaxStall = 0.2
	}
	for i := 0; i < cfg.StallIncidents; i++ {
		start := unit.Time(rng.Float64() * float64(cfg.Horizon) * 0.6)
		end := start + unit.Time((0.1+0.3*rng.Float64())*float64(cfg.Horizon))
		if end >= cfg.Horizon {
			end = cfg.Horizon - unit.Time(unit.Eps)
		}
		stall := unit.Time(0.2+0.8*rng.Float64()) * cfg.MaxStall
		kinds := []Kind{SchedStall, FsyncStall}
		if len(cfg.Agents) > 0 {
			kinds = append(kinds, AgentStall)
		}
		kind := kinds[rng.Intn(len(kinds))]
		on := Event{At: start, Kind: kind, For: stall}
		off := Event{At: end, Kind: kind}
		if kind == AgentStall {
			agent := cfg.Agents[rng.Intn(len(cfg.Agents))]
			on.Agent, off.Agent = agent, agent
		}
		s.Events = append(s.Events, on, off)
	}
	s.Events = s.Sorted()
	return s, nil
}

// Sample is the canned chaos schedule shipped in examples/faults/chaos.json
// and replayed by experiment E12: a link degradation with recovery, a
// straggler episode, and an agent crash/restart, spread over a pipeline
// iteration.
func Sample() *Schedule {
	return &Schedule{
		Events: []Event{
			{At: 3, Kind: LinkDegrade, Host: "s0", Egress: 2, Ingress: 2},
			{At: 5, Kind: HostStraggle, Host: "s2", Factor: 1.5},
			{At: 8, Kind: LinkRecover, Host: "s0"},
			{At: 10, Kind: HostStraggle, Host: "s2", Factor: 1},
			{At: 12, Kind: AgentCrash, Agent: "a1", Host: "s1"},
			{At: 13, Kind: AgentRestart, Agent: "a1", Host: "s1"},
		},
	}
}
