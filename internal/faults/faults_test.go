package faults

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

func TestParseRoundTrip(t *testing.T) {
	data, err := json.Marshal(Sample())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Sample()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, Sample())
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"events":[{"at":1,"kind":"link_fail","host":"a","bogus":true}]}`,
		"unknown kind":  `{"events":[{"at":1,"kind":"meteor_strike","host":"a"}]}`,
		"negative time": `{"events":[{"at":-1,"kind":"link_fail","host":"a"}]}`,
		"no host":       `{"events":[{"at":1,"kind":"link_degrade","egress":1,"ingress":1}]}`,
		"zero factor":   `{"events":[{"at":1,"kind":"host_straggle","host":"a","factor":0}]}`,
		"no agent":      `{"events":[{"at":1,"kind":"agent_crash"}]}`,
		"empty hosts":   `{"events":[{"at":1,"kind":"partition"}]}`,
		"not json":      `schedule?`,
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

// The shipped example schedule is the canned chaos schedule: E12 and the
// README walk through the same incident list, so they must not drift apart.
func TestShippedScheduleMatchesSample(t *testing.T) {
	got, err := Load("../../examples/faults/chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, Sample()) {
		t.Errorf("examples/faults/chaos.json diverged from faults.Sample():\n got %+v\nwant %+v", got, Sample())
	}
}

func TestSortedStable(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 5, Kind: LinkRecover, Host: "b"},
		{At: 1, Kind: LinkFail, Host: "a"},
		{At: 5, Kind: LinkRecover, Host: "a"},
	}}
	got := s.Sorted()
	if got[0].Host != "a" || got[1].Host != "b" || got[2].Host != "a" {
		t.Errorf("sort order wrong: %+v", got)
	}
	if s.Events[0].At != 5 {
		t.Error("Sorted mutated the schedule")
	}
	if s.End() != 5 {
		t.Errorf("End() = %v, want 5", s.End())
	}
}

func testNet(t *testing.T) *fabric.Network {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(6, "s0", "s1", "s2", "s3")
	return net
}

func TestCompileSim(t *testing.T) {
	net := testNet(t)
	caps, dils, err := CompileSim(Sample(), net)
	if err != nil {
		t.Fatal(err)
	}
	residual := unit.Rate(6 * OutageFraction)
	wantCaps := []sim.CapacityChange{
		{At: 3, Host: "s0", Egress: 2, Ingress: 2},
		{At: 8, Host: "s0", Egress: 6, Ingress: 6},                // recover -> baseline
		{At: 12, Host: "s1", Egress: residual, Ingress: residual}, // crash -> NIC down
		{At: 13, Host: "s1", Egress: 6, Ingress: 6},               // restart -> baseline
	}
	if !reflect.DeepEqual(caps, wantCaps) {
		t.Errorf("caps = %+v\nwant %+v", caps, wantCaps)
	}
	wantDils := []sim.DilationChange{
		{At: 5, Host: "s2", Factor: 1.5},
		{At: 10, Host: "s2", Factor: 1},
	}
	if !reflect.DeepEqual(dils, wantDils) {
		t.Errorf("dils = %+v\nwant %+v", dils, wantDils)
	}
}

func TestCompileSimBaselineIsPreIncident(t *testing.T) {
	// Recover restores the capacity the host had before the schedule's
	// first mutation, even after several degrades.
	net := testNet(t)
	sched := &Schedule{Events: []Event{
		{At: 1, Kind: LinkDegrade, Host: "s0", Egress: 3, Ingress: 3},
		{At: 2, Kind: LinkDegrade, Host: "s0", Egress: 1, Ingress: 1},
		{At: 3, Kind: LinkRecover, Host: "s0"},
	}}
	caps, _, err := CompileSim(sched, net)
	if err != nil {
		t.Fatal(err)
	}
	last := caps[len(caps)-1]
	if last.Egress != 6 || last.Ingress != 6 {
		t.Errorf("recover restored %v/%v, want 6/6", last.Egress, last.Ingress)
	}
}

func TestCompileSimPartition(t *testing.T) {
	net := testNet(t)
	sched := &Schedule{Events: []Event{
		{At: 1, Kind: Partition, Hosts: []string{"s0", "s1"}},
		{At: 2, Kind: PartitionHeal, Hosts: []string{"s0", "s1"}},
	}}
	caps, _, err := CompileSim(sched, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 4 {
		t.Fatalf("caps = %+v, want 4 changes", caps)
	}
	for _, c := range caps[:2] {
		if c.Egress != unit.Rate(6*OutageFraction) || c.Ingress != unit.Rate(6*OutageFraction) {
			t.Errorf("partition change %+v not the outage residual", c)
		}
	}
	for _, c := range caps[2:] {
		if c.Egress != 6 || c.Ingress != 6 {
			t.Errorf("heal change %+v not baseline", c)
		}
	}
}

func TestCompileSimErrors(t *testing.T) {
	net := testNet(t)
	for name, s := range map[string]*Schedule{
		"unknown host": {Events: []Event{{At: 1, Kind: LinkFail, Host: "ghost"}}},
		"crash without host": {Events: []Event{
			{At: 1, Kind: AgentCrash, Agent: "a1"}}},
		"invalid event": {Events: []Event{{At: 1, Kind: HostStraggle, Host: "s0"}}},
	} {
		if _, _, err := CompileSim(s, net); err == nil {
			t.Errorf("%s: compiled without error", name)
		}
	}
}

// A compiled link_fail/recover pair runs end-to-end in the simulator: the
// flow stalls while the NIC is down and completes after recovery.
func TestCompileSimLinkFailRuns(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "s0", Dst: "s1", Size: 12})
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "s0", "s1")
	caps, dils, err := CompileSim(&Schedule{Events: []Event{
		{At: 2, Kind: LinkFail, Host: "s0"},
		{At: 5, Kind: LinkRecover, Host: "s0"},
	}}, net)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		CapacityChanges: caps, Dilations: dils,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// [0,2] ships 4 at rate 2; [2,5] the NIC is down to the outage
	// residual; the remaining 8 resume at rate 2 and finish at 9 (within
	// the residual's leakage, well under a microsecond of model time).
	if got := res.Flows["f"].Finish; float64(got-9) > 1e-5 || float64(9-got) > 1e-5 {
		t.Errorf("finish = %v, want ~9 (3s outage mid-transfer)", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 7, Hosts: []string{"s0", "s1"}, Horizon: 20, Baseline: 6}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty generated schedule")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	for _, e := range a.Events {
		if e.At < 0 || e.At >= cfg.Horizon {
			t.Errorf("event %+v outside horizon", e)
		}
	}
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Horizon: 10}); err == nil {
		t.Error("no hosts accepted")
	}
	if _, err := Generate(GenConfig{Hosts: []string{"a"}}); err == nil {
		t.Error("no horizon accepted")
	}
}

func TestReplayLive(t *testing.T) {
	caps := map[string][2]unit.Rate{"s0": {6, 6}, "s1": {6, 6}}
	var crashes, restarts []string
	var straggles []float64
	actions := LiveActions{
		Crash:   func(a string) error { crashes = append(crashes, a); return nil },
		Restart: func(a string) error { restarts = append(restarts, a); return nil },
		SetCapacity: func(h string, eg, in unit.Rate) error {
			caps[h] = [2]unit.Rate{eg, in}
			return nil
		},
		Capacity: func(h string) (unit.Rate, unit.Rate, bool) {
			c, ok := caps[h]
			return c[0], c[1], ok
		},
		Straggle: func(h string, f float64) error { straggles = append(straggles, f); return nil },
	}
	sched := &Schedule{Events: []Event{
		{At: 0, Kind: LinkDegrade, Host: "s0", Egress: 1, Ingress: 1},
		{At: 0.01, Kind: HostStraggle, Host: "s1", Factor: 2},
		{At: 0.02, Kind: AgentCrash, Agent: "a1"},
		{At: 0.03, Kind: AgentRestart, Agent: "a1"},
		{At: 0.04, Kind: LinkRecover, Host: "s0"},
	}}
	if err := Replay(context.Background(), sched, actions, ReplayOptions{TimeScale: 0.01, Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if caps["s0"] != [2]unit.Rate{6, 6} {
		t.Errorf("s0 not restored to baseline: %v", caps["s0"])
	}
	if !reflect.DeepEqual(crashes, []string{"a1"}) || !reflect.DeepEqual(restarts, []string{"a1"}) {
		t.Errorf("crash/restart = %v / %v", crashes, restarts)
	}
	if !reflect.DeepEqual(straggles, []float64{2}) {
		t.Errorf("straggles = %v", straggles)
	}
}

func TestReplayNilHooksSkip(t *testing.T) {
	// A schedule with only agent events needs no capacity hooks.
	sched := &Schedule{Events: []Event{
		{At: 0, Kind: AgentCrash, Agent: "a1"},
		{At: 0, Kind: HostStraggle, Host: "s0", Factor: 2},
		{At: 0, Kind: CoordinatorCrash},
		{At: 0, Kind: CoordinatorRestart},
	}}
	if err := Replay(context.Background(), sched, LiveActions{}, ReplayOptions{TimeScale: 0.001}); err != nil {
		t.Fatal(err)
	}
}

// Coordinator crash/restart events validate without a target, drive the
// live hooks in order, and compile to nothing in the simulator (which has
// no control plane to lose).
func TestCoordinatorCrashEvents(t *testing.T) {
	sched := &Schedule{Events: []Event{
		{At: 1, Kind: CoordinatorCrash},
		{At: 2, Kind: CoordinatorRestart},
	}}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	var calls []string
	actions := LiveActions{
		CrashCoordinator:   func() error { calls = append(calls, "crash"); return nil },
		RestartCoordinator: func() error { calls = append(calls, "restart"); return nil },
	}
	if err := Replay(context.Background(), sched, actions, ReplayOptions{TimeScale: 0.001, Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(calls, []string{"crash", "restart"}) {
		t.Errorf("hook order = %v, want [crash restart]", calls)
	}

	net := fabric.NewNetwork()
	net.AddUniformHosts(6, "s0")
	caps, dils, err := CompileSim(sched, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 0 || len(dils) != 0 {
		t.Errorf("sim lowering emitted %d capacity / %d dilation changes, want none", len(caps), len(dils))
	}
	// The JSON wire form round-trips like every other kind.
	data, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMissingCapacityHook(t *testing.T) {
	sched := &Schedule{Events: []Event{{At: 0, Kind: LinkFail, Host: "s0"}}}
	actions := LiveActions{SetCapacity: func(string, unit.Rate, unit.Rate) error { return nil }}
	err := Replay(context.Background(), sched, actions, ReplayOptions{TimeScale: 0.001})
	if err == nil || !strings.Contains(err.Error(), "Capacity") {
		t.Errorf("want missing-Capacity error, got %v", err)
	}
}

func TestReplayCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched := &Schedule{Events: []Event{{At: 10, Kind: AgentCrash, Agent: "a1"}}}
	if err := Replay(ctx, sched, LiveActions{}, ReplayOptions{}); err != context.Canceled {
		t.Errorf("want context.Canceled, got %v", err)
	}
}
