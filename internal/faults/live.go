package faults

import (
	"context"
	"fmt"
	"time"

	"echelonflow/internal/unit"
)

// LiveActions are the hooks a live replay drives. Any nil hook causes the
// corresponding event kinds to be skipped (with a log line), so a harness
// can wire up only the faults it cares about.
type LiveActions struct {
	// Crash kills the named agent's session (process, goroutine, or
	// connection — the harness decides).
	Crash func(agent string) error
	// Restart revives the named agent.
	Restart func(agent string) error
	// SetCapacity rewrites a host's capacities in the coordinator's
	// fabric model (used by degrade/fail/recover/partition events).
	SetCapacity func(host string, egress, ingress unit.Rate) error
	// Capacity reports a host's current capacities; replay snapshots
	// them before the first mutation so recover/heal events can restore
	// the pre-incident baseline. Required when the schedule contains
	// link or partition events.
	Capacity func(host string) (egress, ingress unit.Rate, ok bool)
	// Straggle dilates compute on a host (optional; most live harnesses
	// have no compute to slow down).
	Straggle func(host string, factor float64) error
	// CrashCoordinator kills the coordinator (drop the instance, cancel
	// its Serve context — the harness decides; the journal is the only
	// state that survives).
	CrashCoordinator func() error
	// RestartCoordinator brings the coordinator back, typically via
	// coordinator.Restore on the same journal directory.
	RestartCoordinator func() error
	// StallScheduler injects d of artificial latency into every scheduler
	// pass (sched_stall; zero clears).
	StallScheduler func(d time.Duration) error
	// StallAgent delays the named agent's outbound path by d per message
	// (agent_stall; zero clears).
	StallAgent func(agent string, d time.Duration) error
	// StallFsync makes every journal append take an extra d (fsync_stall;
	// zero clears).
	StallFsync func(d time.Duration) error
}

// stallDuration converts a schedule's stall seconds into wall time.
func stallDuration(f unit.Time) time.Duration {
	return time.Duration(float64(f) * float64(time.Second))
}

// ReplayOptions tune a live replay.
type ReplayOptions struct {
	// TimeScale converts schedule time into wall-clock seconds: an event
	// at t fires at t*TimeScale seconds after replay start. Default 1;
	// tests compress with e.g. 0.01.
	TimeScale float64
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Replay executes a fault schedule against a live cluster in wall-clock
// time. It blocks until the last event has fired, the context is
// cancelled, or a hook returns an error. Events with nil hooks are
// skipped, not fatal.
func Replay(ctx context.Context, sched *Schedule, actions LiveActions, opts ReplayOptions) error {
	if sched.Empty() {
		return nil
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 1
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	base := make(map[string]baseline)
	snapshot := func(host string) (baseline, error) {
		if b, ok := base[host]; ok {
			return b, nil
		}
		if actions.Capacity == nil {
			return baseline{}, fmt.Errorf("faults: schedule mutates capacities but LiveActions.Capacity is nil")
		}
		eg, in, ok := actions.Capacity(host)
		if !ok {
			return baseline{}, fmt.Errorf("faults: host %q unknown to live cluster", host)
		}
		b := baseline{eg, in}
		base[host] = b
		return b, nil
	}
	setCap := func(e Event, host string, eg, in unit.Rate) error {
		if actions.SetCapacity == nil {
			logf("faults: skip %s on %s (no SetCapacity hook)", e.Kind, host)
			return nil
		}
		if _, err := snapshot(host); err != nil {
			return err
		}
		return actions.SetCapacity(host, eg, in)
	}
	outageCap := func(e Event, host string) error {
		if actions.SetCapacity == nil {
			logf("faults: skip %s on %s (no SetCapacity hook)", e.Kind, host)
			return nil
		}
		b, err := snapshot(host)
		if err != nil {
			return err
		}
		return actions.SetCapacity(host,
			unit.Rate(float64(b.egress)*OutageFraction),
			unit.Rate(float64(b.ingress)*OutageFraction))
	}
	restoreCap := func(e Event, host string) error {
		if actions.SetCapacity == nil {
			logf("faults: skip %s on %s (no SetCapacity hook)", e.Kind, host)
			return nil
		}
		b, err := snapshot(host)
		if err != nil {
			return err
		}
		return actions.SetCapacity(host, b.egress, b.ingress)
	}

	start := time.Now()
	for _, e := range sched.Sorted() {
		due := start.Add(time.Duration(float64(e.At) * opts.TimeScale * float64(time.Second)))
		if wait := time.Until(due); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		}
		logf("faults: t=%v %s host=%s agent=%s", e.At, e.Kind, e.Host, e.Agent)
		var err error
		switch e.Kind {
		case LinkDegrade:
			err = setCap(e, e.Host, e.Egress, e.Ingress)
		case LinkFail:
			err = outageCap(e, e.Host)
		case LinkRecover:
			err = restoreCap(e, e.Host)
		case HostStraggle:
			if actions.Straggle == nil {
				logf("faults: skip host_straggle on %s (no Straggle hook)", e.Host)
			} else {
				err = actions.Straggle(e.Host, e.Factor)
			}
		case AgentCrash:
			if actions.Crash == nil {
				logf("faults: skip agent_crash of %s (no Crash hook)", e.Agent)
			} else {
				err = actions.Crash(e.Agent)
			}
		case AgentRestart:
			if actions.Restart == nil {
				logf("faults: skip agent_restart of %s (no Restart hook)", e.Agent)
			} else {
				err = actions.Restart(e.Agent)
			}
		case CoordinatorCrash:
			if actions.CrashCoordinator == nil {
				logf("faults: skip coordinator_crash (no CrashCoordinator hook)")
			} else {
				err = actions.CrashCoordinator()
			}
		case CoordinatorRestart:
			if actions.RestartCoordinator == nil {
				logf("faults: skip coordinator_restart (no RestartCoordinator hook)")
			} else {
				err = actions.RestartCoordinator()
			}
		case Partition:
			for _, h := range e.Hosts {
				if err = outageCap(e, h); err != nil {
					break
				}
			}
		case PartitionHeal:
			for _, h := range e.Hosts {
				if err = restoreCap(e, h); err != nil {
					break
				}
			}
		case SchedStall:
			if actions.StallScheduler == nil {
				logf("faults: skip sched_stall (no StallScheduler hook)")
			} else {
				err = actions.StallScheduler(stallDuration(e.For))
			}
		case AgentStall:
			if actions.StallAgent == nil {
				logf("faults: skip agent_stall of %s (no StallAgent hook)", e.Agent)
			} else {
				err = actions.StallAgent(e.Agent, stallDuration(e.For))
			}
		case FsyncStall:
			if actions.StallFsync == nil {
				logf("faults: skip fsync_stall (no StallFsync hook)")
			} else {
				err = actions.StallFsync(stallDuration(e.For))
			}
		}
		if err != nil {
			return fmt.Errorf("faults: %s at t=%v: %w", e.Kind, e.At, err)
		}
	}
	return nil
}
