package faults

import (
	"fmt"

	"echelonflow/internal/fabric"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// OutageFraction is the residual capacity left on a "failed" NIC, as a
// fraction of its baseline: the fluid model's stand-in for zero. A true
// zero (or anything below unit.Eps) makes the MADD planners' feasibility
// check fail — a flow pinned to a dead port can never finish — while this
// residual keeps every port schedulable yet leaks only ~1e-7 of a
// capacity-second per outage second, far below any reported metric's
// resolution.
const OutageFraction = 1e-7

// baseline is a pre-incident capacity snapshot used to restore hosts on
// recover/heal events and to scale outage residuals.
type baseline struct{ egress, ingress unit.Rate }

// outageChange lowers a NIC-down event to its residual-capacity change.
func outageChange(at unit.Time, host string, b baseline) sim.CapacityChange {
	return sim.CapacityChange{
		At: at, Host: host,
		Egress:  unit.Rate(float64(b.egress) * OutageFraction),
		Ingress: unit.Rate(float64(b.ingress) * OutageFraction),
	}
}

// CompileSim lowers a fault schedule into the event simulator's inputs:
// fabric capacity changes and compute-time dilations. The network is only
// read, never mutated — its current capacities are the baseline that
// recover/restart/heal events restore. Events are emitted in time order,
// so the results can be passed straight to sim.Options.
//
// Kind mapping:
//
//	link_degrade          -> capacity change to Egress/Ingress
//	link_fail             -> capacity change to baseline*OutageFraction
//	link_recover          -> capacity change back to baseline
//	host_straggle         -> dilation change to Factor
//	agent_crash/restart   -> the simulator has no agents; the crash is
//	                         modelled on Event.Host as NIC down / NIC up
//	partition             -> NIC down for every host in Hosts
//	partition_heal        -> baseline restore for every host in Hosts
//	coordinator_crash/
//	coordinator_restart   -> no-op: the simulator schedules centrally with
//	                         no control plane to lose, so a coordinator
//	                         outage is invisible to it
//	sched_stall/
//	agent_stall/
//	fsync_stall           -> no-op: the simulator's scheduling pass and
//	                         journal are instantaneous; gray-failure stalls
//	                         only exist on the live control plane
func CompileSim(sched *Schedule, net fabric.Fabric) ([]sim.CapacityChange, []sim.DilationChange, error) {
	if sched.Empty() {
		return nil, nil, nil
	}
	if err := sched.Validate(); err != nil {
		return nil, nil, err
	}
	base := make(map[string]baseline)
	snapshot := func(host string) (baseline, error) {
		if b, ok := base[host]; ok {
			return b, nil
		}
		eg, in, ok := net.Capacity(host)
		if !ok {
			return baseline{}, fmt.Errorf("faults: host %q not in fabric", host)
		}
		b := baseline{eg, in}
		base[host] = b
		return b, nil
	}

	var caps []sim.CapacityChange
	var dils []sim.DilationChange
	for _, e := range sched.Sorted() {
		switch e.Kind {
		case LinkDegrade:
			if _, err := snapshot(e.Host); err != nil {
				return nil, nil, err
			}
			caps = append(caps, sim.CapacityChange{At: e.At, Host: e.Host, Egress: e.Egress, Ingress: e.Ingress})
		case LinkFail:
			b, err := snapshot(e.Host)
			if err != nil {
				return nil, nil, err
			}
			caps = append(caps, outageChange(e.At, e.Host, b))
		case LinkRecover:
			b, err := snapshot(e.Host)
			if err != nil {
				return nil, nil, err
			}
			caps = append(caps, sim.CapacityChange{At: e.At, Host: e.Host, Egress: b.egress, Ingress: b.ingress})
		case HostStraggle:
			if _, _, ok := net.Capacity(e.Host); !ok {
				return nil, nil, fmt.Errorf("faults: host %q not in fabric", e.Host)
			}
			dils = append(dils, sim.DilationChange{At: e.At, Host: e.Host, Factor: e.Factor})
		case AgentCrash:
			if e.Host == "" {
				return nil, nil, fmt.Errorf("faults: sim driver needs a host on agent_crash for agent %q", e.Agent)
			}
			b, err := snapshot(e.Host)
			if err != nil {
				return nil, nil, err
			}
			caps = append(caps, outageChange(e.At, e.Host, b))
		case AgentRestart:
			if e.Host == "" {
				return nil, nil, fmt.Errorf("faults: sim driver needs a host on agent_restart for agent %q", e.Agent)
			}
			b, err := snapshot(e.Host)
			if err != nil {
				return nil, nil, err
			}
			caps = append(caps, sim.CapacityChange{At: e.At, Host: e.Host, Egress: b.egress, Ingress: b.ingress})
		case Partition:
			for _, h := range e.Hosts {
				b, err := snapshot(h)
				if err != nil {
					return nil, nil, err
				}
				caps = append(caps, outageChange(e.At, h, b))
			}
		case PartitionHeal:
			for _, h := range e.Hosts {
				b, err := snapshot(h)
				if err != nil {
					return nil, nil, err
				}
				caps = append(caps, sim.CapacityChange{At: e.At, Host: h, Egress: b.egress, Ingress: b.ingress})
			}
		case CoordinatorCrash, CoordinatorRestart, SchedStall, AgentStall, FsyncStall:
			// The simulator has no control plane (and its scheduler and
			// journal are instantaneous); see the kind mapping.
		}
	}
	return caps, dils, nil
}
