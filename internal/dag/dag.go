// Package dag provides the computation-dependency graph shared by the DDLT
// workload compilers and the co-simulator.
//
// EchelonFlow's arrangement functions are derived from "computation
// dependencies (i.e., DAG) and times" (paper §1): each training paradigm is
// compiled into a graph whose nodes are computation units or network flows,
// and whose edges are happens-before dependencies. The graph is intentionally
// generic — it knows nothing about scheduling — so the same structure serves
// workload generation, profiling, and critical-path analysis.
package dag

import (
	"fmt"
	"sort"

	"echelonflow/internal/unit"
)

// Kind distinguishes computation units from communication flows.
type Kind int

const (
	// Compute nodes occupy a worker (GPU) exclusively for a fixed duration.
	Compute Kind = iota
	// Comm nodes are network flows whose duration depends on scheduling.
	Comm
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one unit in the computation arrangement.
type Node struct {
	ID   string
	Kind Kind

	// Host is the worker executing a Compute node. Unused for Comm nodes.
	Host string
	// Duration is the profiled execution time of a Compute node.
	// For Comm nodes it is advisory (used only by critical-path analysis,
	// which assumes a dedicated link).
	Duration unit.Time

	// Src, Dst and Size describe a Comm node's flow.
	Src, Dst string
	Size     unit.Bytes

	// Group names the EchelonFlow a Comm node belongs to, if any.
	Group string
	// Stage is the node's index within its group's arrangement
	// (micro-batch index for pipelines, layer/phase index for FSDP).
	Stage int

	// Seq orders ready Compute nodes on the same host: lower Seq runs
	// first. Workload compilers set it to the intended execution order.
	Seq int

	// NotBefore is the earliest simulated time the node may start even if
	// its dependencies are already satisfied. Scenario builders use it to
	// model externally timed releases (e.g. the staggered flow arrivals of
	// the paper's Fig. 2).
	NotBefore unit.Time
}

// Graph is a directed acyclic dependency graph.
//
// The zero value is not ready for use; call New.
type Graph struct {
	nodes map[string]*Node
	// succ[id] lists nodes depending on id; pred[id] lists dependencies.
	succ map[string][]string
	pred map[string][]string
	// order preserves insertion order for deterministic iteration.
	order []string
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]*Node),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
}

// Add inserts a node. It returns an error if the ID is empty or duplicated.
func (g *Graph) Add(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("dag: node must have an ID")
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("dag: duplicate node %q", n.ID)
	}
	g.nodes[n.ID] = n
	g.order = append(g.order, n.ID)
	return nil
}

// MustAdd is Add for workload compilers building graphs from trusted
// generators; it panics on error.
func (g *Graph) MustAdd(n *Node) {
	if err := g.Add(n); err != nil {
		panic(err)
	}
}

// Depend records that node "to" depends on node "from" (from must finish
// before to may start). Both nodes must already exist.
func (g *Graph) Depend(from, to string) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("dag: dependency source %q not found", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dag: dependency target %q not found", to)
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// MustDepend is Depend that panics on error.
func (g *Graph) MustDepend(from, to string) {
	if err := g.Depend(from, to); err != nil {
		panic(err)
	}
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// Deps returns the IDs a node depends on, in registration order.
func (g *Graph) Deps(id string) []string {
	return append([]string(nil), g.pred[id]...)
}

// Dependents returns the IDs depending on a node, in registration order.
func (g *Graph) Dependents(id string) []string {
	return append([]string(nil), g.succ[id]...)
}

// Roots returns nodes with no dependencies, in insertion order.
func (g *Graph) Roots() []*Node {
	var out []*Node
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, g.nodes[id])
		}
	}
	return out
}

// TopoSort returns the node IDs in a topological order (insertion order is
// used to break ties, making the result deterministic). It returns an error
// if the graph contains a cycle, naming one node on it.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.pred[id])
	}
	// ready is kept sorted by insertion index for determinism.
	pos := make(map[string]int, len(g.order))
	for i, id := range g.order {
		pos[id] = i
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		newlyReady := make([]string, 0, 4)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				newlyReady = append(newlyReady, s)
			}
		}
		ready = append(ready, newlyReady...)
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
	}
	if len(out) != len(g.nodes) {
		for _, id := range g.order {
			if indeg[id] > 0 {
				return nil, fmt.Errorf("dag: cycle involving node %q", id)
			}
		}
	}
	return out, nil
}

// Validate checks structural invariants: acyclicity and that Comm nodes have
// src, dst and a non-negative size while Compute nodes have a host and a
// non-negative duration.
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		switch n.Kind {
		case Compute:
			if n.Host == "" {
				return fmt.Errorf("dag: compute node %q has no host", n.ID)
			}
			if n.Duration < 0 {
				return fmt.Errorf("dag: compute node %q has negative duration", n.ID)
			}
		case Comm:
			if n.Src == "" || n.Dst == "" {
				return fmt.Errorf("dag: comm node %q missing src/dst", n.ID)
			}
			if n.Src == n.Dst {
				return fmt.Errorf("dag: comm node %q has src == dst (%s)", n.ID, n.Src)
			}
			if n.Size < 0 {
				return fmt.Errorf("dag: comm node %q has negative size", n.ID)
			}
		default:
			return fmt.Errorf("dag: node %q has unknown kind %v", n.ID, n.Kind)
		}
	}
	return nil
}

// CriticalPath returns the longest path length through the graph using each
// node's Duration (Comm nodes contribute Size at the given reference rate),
// and the IDs on one such path in execution order. This is the ideal
// iteration time on an uncontended network — the lower bound EchelonFlow
// scheduling aims for (Property 1).
func (g *Graph) CriticalPath(refRate unit.Rate) (unit.Time, []string, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return 0, nil, err
	}
	dist := make(map[string]unit.Time, len(topo))
	prev := make(map[string]string, len(topo))
	nodeCost := func(n *Node) unit.Time {
		if n.Kind == Comm {
			return n.Size.At(refRate)
		}
		return n.Duration
	}
	var best unit.Time
	var bestID string
	for _, id := range topo {
		n := g.nodes[id]
		start := unit.Time(0)
		for _, p := range g.pred[id] {
			if dist[p] > start {
				start = dist[p]
				prev[id] = p
			}
		}
		dist[id] = start + nodeCost(n)
		if dist[id] > best {
			best = dist[id]
			bestID = id
		}
	}
	var path []string
	for id := bestID; id != ""; {
		path = append(path, id)
		id = prev[id]
	}
	// Reverse into execution order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path, nil
}

// GroupNodes returns the Comm nodes carrying the given group name, ordered
// by Stage then insertion order.
func (g *Graph) GroupNodes(group string) []*Node {
	var out []*Node
	for _, id := range g.order {
		n := g.nodes[id]
		if n.Kind == Comm && n.Group == group {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Groups returns the distinct group names appearing on Comm nodes, in first-
// appearance order.
func (g *Graph) Groups() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range g.order {
		n := g.nodes[id]
		if n.Kind == Comm && n.Group != "" && !seen[n.Group] {
			seen[n.Group] = true
			out = append(out, n.Group)
		}
	}
	return out
}

// Merge adds every node and edge of other into g, returning an error on ID
// collision. It is used to compose multi-job workloads onto one fabric.
func (g *Graph) Merge(other *Graph) error {
	for _, n := range other.Nodes() {
		cp := *n
		if err := g.Add(&cp); err != nil {
			return err
		}
	}
	for _, id := range other.order {
		for _, s := range other.succ[id] {
			if err := g.Depend(id, s); err != nil {
				return err
			}
		}
	}
	return nil
}
