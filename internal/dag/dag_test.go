package dag

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"echelonflow/internal/unit"
)

func mustGraph(t *testing.T) *Graph {
	t.Helper()
	return New()
}

func compute(id, host string, d unit.Time) *Node {
	return &Node{ID: id, Kind: Compute, Host: host, Duration: d}
}

func comm(id, src, dst string, size unit.Bytes) *Node {
	return &Node{ID: id, Kind: Comm, Src: src, Dst: dst, Size: size}
}

func TestAddDuplicate(t *testing.T) {
	g := mustGraph(t)
	if err := g.Add(compute("a", "h", 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(compute("a", "h", 1)); err == nil {
		t.Fatal("duplicate Add should fail")
	}
}

func TestAddEmptyID(t *testing.T) {
	g := mustGraph(t)
	if err := g.Add(&Node{}); err == nil {
		t.Fatal("empty ID should fail")
	}
	if err := g.Add(nil); err == nil {
		t.Fatal("nil node should fail")
	}
}

func TestDependUnknown(t *testing.T) {
	g := mustGraph(t)
	g.MustAdd(compute("a", "h", 1))
	if err := g.Depend("a", "missing"); err == nil {
		t.Fatal("Depend on missing target should fail")
	}
	if err := g.Depend("missing", "a"); err == nil {
		t.Fatal("Depend on missing source should fail")
	}
}

func TestTopoSortLinear(t *testing.T) {
	g := mustGraph(t)
	g.MustAdd(compute("a", "h", 1))
	g.MustAdd(compute("b", "h", 1))
	g.MustAdd(compute("c", "h", 1))
	g.MustDepend("a", "b")
	g.MustDepend("b", "c")
	got, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("TopoSort = %v", got)
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	g := mustGraph(t)
	// Diamond with two independent middles; insertion order must decide.
	g.MustAdd(compute("root", "h", 1))
	g.MustAdd(compute("m2", "h", 1))
	g.MustAdd(compute("m1", "h", 1))
	g.MustAdd(compute("sink", "h", 1))
	g.MustDepend("root", "m2")
	g.MustDepend("root", "m1")
	g.MustDepend("m2", "sink")
	g.MustDepend("m1", "sink")
	for i := 0; i < 5; i++ {
		got, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != "root,m2,m1,sink" {
			t.Fatalf("TopoSort = %v, want insertion-order tie-break", got)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := mustGraph(t)
	g.MustAdd(compute("a", "h", 1))
	g.MustAdd(compute("b", "h", 1))
	g.MustDepend("a", "b")
	g.MustDepend("b", "a")
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		node    *Node
		wantErr bool
	}{
		{"valid compute", compute("a", "h", 1), false},
		{"compute no host", &Node{ID: "a", Kind: Compute, Duration: 1}, true},
		{"compute negative duration", &Node{ID: "a", Kind: Compute, Host: "h", Duration: -1}, true},
		{"valid comm", comm("a", "s", "d", 5), false},
		{"comm missing src", &Node{ID: "a", Kind: Comm, Dst: "d", Size: 1}, true},
		{"comm missing dst", &Node{ID: "a", Kind: Comm, Src: "s", Size: 1}, true},
		{"comm self loop", comm("a", "s", "s", 1), true},
		{"comm negative size", comm("a", "s", "d", -1), true},
		{"unknown kind", &Node{ID: "a", Kind: Kind(9)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := mustGraph(t)
			g.MustAdd(tt.node)
			err := g.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCriticalPath(t *testing.T) {
	g := mustGraph(t)
	// a(2) -> f(4 bytes @ rate 2 => 2) -> b(3); plus a(2) -> c(1).
	g.MustAdd(compute("a", "h1", 2))
	g.MustAdd(comm("f", "h1", "h2", 4))
	g.MustAdd(compute("b", "h2", 3))
	g.MustAdd(compute("c", "h1", 1))
	g.MustDepend("a", "f")
	g.MustDepend("f", "b")
	g.MustDepend("a", "c")
	length, path, err := g.CriticalPath(2)
	if err != nil {
		t.Fatal(err)
	}
	if !length.ApproxEq(7) {
		t.Errorf("critical path length = %v, want 7", length)
	}
	if strings.Join(path, ",") != "a,f,b" {
		t.Errorf("critical path = %v", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	g := mustGraph(t)
	length, path, err := g.CriticalPath(1)
	if err != nil || length != 0 || len(path) != 0 {
		t.Errorf("empty graph critical path = (%v,%v,%v)", length, path, err)
	}
}

func TestRoots(t *testing.T) {
	g := mustGraph(t)
	g.MustAdd(compute("a", "h", 1))
	g.MustAdd(compute("b", "h", 1))
	g.MustAdd(compute("c", "h", 1))
	g.MustDepend("a", "b")
	roots := g.Roots()
	if len(roots) != 2 || roots[0].ID != "a" || roots[1].ID != "c" {
		t.Errorf("Roots = %v", roots)
	}
}

func TestGroupNodes(t *testing.T) {
	g := mustGraph(t)
	n1 := comm("f1", "s", "d", 1)
	n1.Group, n1.Stage = "g", 1
	n0 := comm("f0", "s", "d", 1)
	n0.Group, n0.Stage = "g", 0
	other := comm("x", "s", "d", 1)
	other.Group = "other"
	g.MustAdd(n1)
	g.MustAdd(n0)
	g.MustAdd(other)
	got := g.GroupNodes("g")
	if len(got) != 2 || got[0].ID != "f0" || got[1].ID != "f1" {
		t.Errorf("GroupNodes = %v", got)
	}
	groups := g.Groups()
	if len(groups) != 2 || groups[0] != "g" || groups[1] != "other" {
		t.Errorf("Groups = %v", groups)
	}
}

func TestDepsAndDependentsAreCopies(t *testing.T) {
	g := mustGraph(t)
	g.MustAdd(compute("a", "h", 1))
	g.MustAdd(compute("b", "h", 1))
	g.MustDepend("a", "b")
	deps := g.Deps("b")
	deps[0] = "mutated"
	if g.Deps("b")[0] != "a" {
		t.Error("Deps returned a view, not a copy")
	}
	succ := g.Dependents("a")
	succ[0] = "mutated"
	if g.Dependents("a")[0] != "b" {
		t.Error("Dependents returned a view, not a copy")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.MustAdd(compute("a1", "h", 1))
	b := New()
	b.MustAdd(compute("b1", "h", 1))
	b.MustAdd(compute("b2", "h", 1))
	b.MustDepend("b1", "b2")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Errorf("merged Len = %d", a.Len())
	}
	if got := a.Deps("b2"); len(got) != 1 || got[0] != "b1" {
		t.Errorf("merged deps = %v", got)
	}
	// Merging again must collide.
	if err := a.Merge(b); err == nil {
		t.Error("second Merge should collide")
	}
}

func TestMergeCopiesNodes(t *testing.T) {
	a, b := New(), New()
	n := compute("x", "h", 1)
	b.MustAdd(n)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	n.Duration = 99
	if a.Node("x").Duration != 1 {
		t.Error("Merge should deep-copy nodes")
	}
}

// Property: a randomly generated forward-edge graph always topo-sorts, and
// the order respects every edge.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New()
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A'+i%26)) + string(rune('a'+i/26))
			g.MustAdd(compute(ids[i], "h", 1))
		}
		// Forward edges only => acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.MustDepend(ids[i], ids[j])
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range ids {
			for _, s := range g.Dependents(id) {
				if pos[id] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" {
		t.Error("Kind.String basic values wrong")
	}
	if Kind(7).String() != "kind(7)" {
		t.Errorf("unknown kind string = %q", Kind(7).String())
	}
}
