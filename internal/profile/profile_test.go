package profile

import (
	"fmt"
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// runPP simulates a 2-iteration pipeline job and returns the result.
func runPP(t *testing.T) *sim.Result {
	t.Helper()
	w, err := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 1, 1.5, 2),
		Workers: []string{"s0", "s1"}, MicroBatches: 3, Iterations: 2,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(4, w.Hosts...)
	s, err := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: sched.EchelonMADD{}, Arrangements: w.Arrangements})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFromResultAndDuration(t *testing.T) {
	res := runPP(t)
	p := FromResult(res)
	if p.Len() == 0 {
		t.Fatal("empty profile")
	}
	// Stage 1 consumes two layers of fwd 1.5 each => 3 per micro-batch.
	d, err := p.Duration("pp/it0/fw/s1m0")
	if err != nil || !d.ApproxEq(3) {
		t.Errorf("Duration = %v, %v; want 3", d, err)
	}
	if _, err := p.Duration("ghost"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestDerivePipelineFromObservedRun(t *testing.T) {
	res := runPP(t)
	p := FromResult(res)
	// Profile the consumer stage's micro-batch computes (§3.1): the
	// derived arrangement's distance must equal the true per-micro-batch
	// time of stage 1 (2 layers × 1.5).
	ids := []string{"pp/it0/fw/s1m0", "pp/it0/fw/s1m1", "pp/it0/fw/s1m2"}
	arr, err := p.DerivePipeline(ids, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !arr.T.ApproxEq(3) {
		t.Errorf("derived T = %v, want 3", arr.T)
	}
	// It must agree with the compiler-declared arrangement.
	w, _ := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 1, 1.5, 2),
		Workers: []string{"s0", "s1"}, MicroBatches: 3, Iterations: 2,
	}.Build()
	declared := w.Arrangements["pp/it0/fwd0"].(core.Pipeline)
	if !declared.T.ApproxEq(arr.T) {
		t.Errorf("declared T %v != profiled T %v", declared.T, arr.T)
	}
}

func TestUniformRejectsSkew(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{"a": 1, "b": 1, "c": 2}}
	if _, err := p.Uniform([]string{"a", "b"}, 0.01); err != nil {
		t.Errorf("uniform pair rejected: %v", err)
	}
	if _, err := p.Uniform([]string{"a", "c"}, 0.01); err == nil {
		t.Error("skewed durations accepted")
	}
	if _, err := p.Uniform(nil, 0.01); err == nil {
		t.Error("empty ids accepted")
	}
	if _, err := p.Uniform([]string{"ghost"}, 0.01); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestDeriveStaged(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{
		"f0a": 1, "f0b": 1, // layer-0 fwd on two workers
		"f1a": 2, "f1b": 2,
	}}
	arr, err := p.DeriveStaged([][]string{{"f0a", "f0b"}, {"f1a", "f1b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Gaps) != 2 || !arr.Gaps[0].ApproxEq(1) || !arr.Gaps[1].ApproxEq(2) {
		t.Errorf("gaps = %v", arr.Gaps)
	}
	if _, err := p.DeriveStaged(nil); err == nil {
		t.Error("no gap groups accepted")
	}
	if _, err := p.DeriveStaged([][]string{{"ghost"}}); err == nil {
		t.Error("unknown ids accepted")
	}
}

// The FSDP arrangement profiled from an observed run must equal the
// compiler's Eq. 7 gaps.
func TestDeriveStagedMatchesFSDP(t *testing.T) {
	w, err := ddlt.FSDP{
		Name: "f", Model: ddlt.Uniform("m", 3, 3, 1, 0.5, 1.25),
		Workers: []string{"w0", "w1", "w2"}, Iterations: 1,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, w.Hosts...)
	s, _ := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: sched.EchelonMADD{Backfill: true}, Arrangements: w.Arrangements})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := FromResult(res)
	// Gap groups per Eq. 7: fwd layers 0..n-2, then bwd layers n-1..0.
	var groups [][]string
	workersOf := func(format string, l int) []string {
		var ids []string
		for i := 0; i < 3; i++ {
			ids = append(ids, fmt.Sprintf(format, l, i))
		}
		return ids
	}
	for l := 0; l <= 1; l++ {
		groups = append(groups, workersOf("f/it0/fw/l%dw%d", l))
	}
	for l := 2; l >= 0; l-- {
		groups = append(groups, workersOf("f/it0/bw/l%dw%d", l))
	}
	profiled, err := p.DeriveStaged(groups)
	if err != nil {
		t.Fatal(err)
	}
	declared := w.Arrangements["f/it0/ag"].(core.Staged)
	if len(profiled.Gaps) != len(declared.Gaps) {
		t.Fatalf("gap count %d != %d", len(profiled.Gaps), len(declared.Gaps))
	}
	for i := range declared.Gaps {
		if !profiled.Gaps[i].ApproxEq(declared.Gaps[i]) {
			t.Errorf("gap %d: profiled %v != declared %v", i, profiled.Gaps[i], declared.Gaps[i])
		}
	}
}

func TestStability(t *testing.T) {
	res := runPP(t)
	p := FromResult(res)
	iters := make([][]string, 2)
	for k := 0; k < 2; k++ {
		for s := 0; s < 2; s++ {
			for m := 0; m < 3; m++ {
				iters[k] = append(iters[k], fmt.Sprintf("pp/it%d/fw/s%dm%d", k, s, m))
			}
		}
	}
	if err := p.Stability(iters, 0.01); err != nil {
		t.Errorf("stable job reported unstable: %v", err)
	}
	if err := p.Stability(iters[:1], 0.01); err == nil {
		t.Error("single iteration accepted")
	}
	// Mismatched unit counts.
	bad := [][]string{iters[0], iters[1][:2]}
	if err := p.Stability(bad, 0.01); err == nil {
		t.Error("mismatched unit counts accepted")
	}
}

func TestStabilityDetectsDrift(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{
		"it0/a": 1, "it1/a": 1.5,
	}}
	err := p.Stability([][]string{{"it0/a"}, {"it1/a"}}, 0.05)
	if err == nil || !strings.Contains(err.Error(), "deviates") {
		t.Errorf("drift not detected: %v", err)
	}
}

func TestPredictStable(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{
		"it0/a": 1, "it0/b": 2, "it1/a": 1, "it1/b": 2,
	}}
	pred := p.Predict([][]string{{"it0/a", "it0/b"}, {"it1/a", "it1/b"}}, 0.05)
	if !pred.Stable || !pred.Iteration.ApproxEq(3) {
		t.Errorf("Predict = %+v, want stable 3s iteration", pred)
	}
}

// An unstable profile still yields a usable mean, with the verdict and
// reason set — the declared-duration fallback hinges on this not erroring.
func TestPredictUnstableFallsBack(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{
		"it0/a": 1, "it1/a": 2,
	}}
	pred := p.Predict([][]string{{"it0/a"}, {"it1/a"}}, 0.05)
	if pred.Stable {
		t.Error("drifting profile reported stable")
	}
	if !pred.Iteration.ApproxEq(1.5) {
		t.Errorf("Iteration = %v, want mean 1.5", pred.Iteration)
	}
	if !strings.Contains(pred.Reason, "deviates") {
		t.Errorf("Reason = %q", pred.Reason)
	}
}

func TestPredictSingleIteration(t *testing.T) {
	// One iteration cannot prove stability (Stability needs >=2), but the
	// measurement itself is still the best available estimate.
	p := &Profile{durations: map[string]unit.Time{"it0/a": 2}}
	pred := p.Predict([][]string{{"it0/a"}}, 0.05)
	if pred.Stable || !pred.Iteration.ApproxEq(2) || pred.Reason == "" {
		t.Errorf("Predict = %+v", pred)
	}
}

func TestPredictMissingMeasurements(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{"it0/a": 1}}
	// Iteration 1 unmeasured: mean comes from iteration 0 alone.
	pred := p.Predict([][]string{{"it0/a"}, {"it1/a"}}, 0.05)
	if pred.Stable || !pred.Iteration.ApproxEq(1) || !strings.Contains(pred.Reason, "1 of 2") {
		t.Errorf("Predict = %+v", pred)
	}
	// Nothing measured at all: zero estimate, explicit reason.
	empty := &Profile{durations: map[string]unit.Time{}}
	pred = empty.Predict([][]string{{"x"}}, 0.05)
	if pred.Stable || pred.Iteration != 0 || pred.Reason != "no measured iterations" {
		t.Errorf("Predict = %+v", pred)
	}
}

// Two zero-duration units are identical, not divergent: relDiff guards the
// zero denominator and reports 0, so Predict must call them stable.
func TestPredictZeroDurations(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{"it0/a": 0, "it1/a": 0}}
	pred := p.Predict([][]string{{"it0/a"}, {"it1/a"}}, 0.05)
	if !pred.Stable || pred.Iteration != 0 {
		t.Errorf("Predict = %+v, want stable zero iteration", pred)
	}
	if d := relDiff(0, 0); d != 0 {
		t.Errorf("relDiff(0,0) = %v", d)
	}
}

func TestMeanErrors(t *testing.T) {
	p := &Profile{durations: map[string]unit.Time{"a": 2, "b": 4}}
	m, err := p.Mean([]string{"a", "b"})
	if err != nil || !m.ApproxEq(3) {
		t.Errorf("Mean = %v, %v", m, err)
	}
	if _, err := p.Mean([]string{"a", "ghost"}); err == nil {
		t.Error("unknown id accepted")
	}
}

// DeriveAbsolute on an uncontended 1F1B run yields the non-uniform
// arrangement of §4 Case II: deadline gaps that alternate between warm-up
// spacing and steady-state 1F1B spacing.
func TestDeriveAbsolute1F1B(t *testing.T) {
	w, err := ddlt.Pipeline1F1B{
		Name: "p1", Model: ddlt.Uniform("m", 4, 2, 0.001, 1, 1),
		Workers: []string{"s0", "s1"}, MicroBatches: 4, Iterations: 1,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(10000, w.Hosts...)
	s, err := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: sched.Fair{}, Arrangements: w.Arrangements})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	arr, err := DeriveAbsolute(res, w.Graph, "p1/it0/fwd0")
	if err != nil {
		t.Fatal(err)
	}
	if arr.Stages() != 4 {
		t.Fatalf("stages = %d", arr.Stages())
	}
	// Stage 1 of 2 total stages: warm-up is 0 on the consumer (s1 is the
	// last stage), so consumers alternate F/B: gaps of f+b = 4 between
	// consecutive forward consumptions after the first.
	gaps := make([]unit.Time, 3)
	for i := 1; i < 4; i++ {
		gaps[i-1] = arr.Deadline(i, 0) - arr.Deadline(i-1, 0)
	}
	near := func(a, b unit.Time) bool { d := a - b; return d < 0.05 && d > -0.05 }
	// First gap: F(s1,m0) at 2, F(s1,m1) at 4 (B(s1,m0) between... with
	// f=b=2 per stage) => steady 1F1B spacing f+b.
	if !near(gaps[1], gaps[2]) {
		t.Errorf("steady gaps differ: %v", gaps)
	}
	if near(gaps[0], 0) {
		t.Errorf("gaps collapsed: %v", gaps)
	}
	// And the arrangement is NOT the uniform Eq. 6 one: at least one gap
	// differs from the consumer's forward time alone.
	uniform := true
	for _, g := range gaps {
		if !near(g, gaps[0]) {
			uniform = false
		}
	}
	if uniform && near(gaps[0], 2) {
		t.Errorf("arrangement looks uniform Eq. 6: %v", gaps)
	}
}

func TestDeriveAbsoluteErrors(t *testing.T) {
	res := runPP(t)
	w, _ := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 1, 1.5, 2),
		Workers: []string{"s0", "s1"}, MicroBatches: 3, Iterations: 2,
	}.Build()
	if _, err := DeriveAbsolute(res, w.Graph, "ghost"); err == nil {
		t.Error("unknown group accepted")
	}
	if arr, err := DeriveAbsolute(res, w.Graph, "pp/it0/fwd0"); err != nil {
		t.Errorf("gpipe derive: %v", err)
	} else if arr.Stages() != 3 {
		t.Errorf("stages = %d", arr.Stages())
	}
}
