// Package profile extracts computation patterns from observed training
// iterations, the way the paper's system obtains arrangement functions
// (§3.1: the "distance" of the arrangement "can be profiled by running a
// few training iterations"; §5: the framework reports profiled dependency
// shape and computation times).
//
// Profiling works on simulator results here; against a real framework the
// same API would consume CUDA-event timings. The repetitiveness of DDLT
// (§1) is what makes this sound: Stability verifies that per-unit durations
// repeat across iterations before an arrangement derived from them is
// trusted.
package profile

import (
	"fmt"
	"math"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// Profile holds measured compute-unit durations keyed by node ID.
type Profile struct {
	durations map[string]unit.Time
}

// FromResult captures every compute node's observed duration from a run.
func FromResult(res *sim.Result) *Profile {
	p := &Profile{durations: make(map[string]unit.Time, len(res.Tasks))}
	for id, span := range res.Tasks {
		p.durations[id] = span.Duration()
	}
	return p
}

// Duration returns a node's measured duration.
func (p *Profile) Duration(id string) (unit.Time, error) {
	d, ok := p.durations[id]
	if !ok {
		return 0, fmt.Errorf("profile: no measurement for %q", id)
	}
	return d, nil
}

// Len returns the number of measured nodes.
func (p *Profile) Len() int { return len(p.durations) }

// Mean returns the average duration over the given nodes.
func (p *Profile) Mean(ids []string) (unit.Time, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("profile: Mean over no nodes")
	}
	var sum unit.Time
	for _, id := range ids {
		d, err := p.Duration(id)
		if err != nil {
			return 0, err
		}
		sum += d
	}
	return sum / unit.Time(len(ids)), nil
}

// Uniform returns the common duration of the given nodes, failing if any
// deviates from the mean by more than tol (relative, e.g. 0.05 = 5%).
func (p *Profile) Uniform(ids []string, tol float64) (unit.Time, error) {
	mean, err := p.Mean(ids)
	if err != nil {
		return 0, err
	}
	for _, id := range ids {
		d, _ := p.Duration(id)
		if relDiff(float64(d), float64(mean)) > tol {
			return 0, fmt.Errorf("profile: %q duration %v deviates from mean %v beyond %.1f%%",
				id, d, mean, tol*100)
		}
	}
	return mean, nil
}

func relDiff(a, b float64) float64 {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom < unit.Eps {
		return 0
	}
	return math.Abs(a-b) / denom
}

// DerivePipeline builds the Eq. 6 pipeline arrangement from the consumer
// stage's per-micro-batch compute units, requiring their durations to be
// uniform within tol — GPipe runs the same computation on every micro-batch.
func (p *Profile) DerivePipeline(consumerIDs []string, tol float64) (core.Pipeline, error) {
	t, err := p.Uniform(consumerIDs, tol)
	if err != nil {
		return core.Pipeline{}, err
	}
	return core.Pipeline{T: t}, nil
}

// DeriveStaged builds a staggered arrangement (Eq. 7 and generalizations)
// from per-gap compute-unit groups: gap i of the result is the mean measured
// duration of gapGroups[i] (the computation separating stage i from stage
// i+1 — e.g. layer i's forward units across workers for FSDP's forward
// phase).
func (p *Profile) DeriveStaged(gapGroups [][]string) (core.Staged, error) {
	if len(gapGroups) == 0 {
		return core.Staged{}, fmt.Errorf("profile: DeriveStaged with no gap groups")
	}
	gaps := make([]unit.Time, len(gapGroups))
	for i, ids := range gapGroups {
		m, err := p.Mean(ids)
		if err != nil {
			return core.Staged{}, fmt.Errorf("profile: gap %d: %w", i, err)
		}
		gaps[i] = m
	}
	return core.Staged{Gaps: gaps}, nil
}

// DeriveAbsolute builds an Absolute arrangement for a group from an
// observed — ideally uncontended — run: each flow's ideal finish time is
// the start of the computation consuming it, expressed as an offset from
// the head flow's consumer. This is the §4 Case II workflow for pipeline
// variants whose pattern is "more complicated than Eq. 6" (1F1B and
// friends): the data dependencies determine the arrangement, and a
// profiling run reads it off.
//
// Offsets are clamped to be non-decreasing: profiling noise below the
// clamping magnitude is tolerated, anything larger fails validation.
func DeriveAbsolute(res *sim.Result, g *dag.Graph, group string) (core.Absolute, error) {
	nodes := g.GroupNodes(group)
	if len(nodes) == 0 {
		return core.Absolute{}, fmt.Errorf("profile: no flows in group %q", group)
	}
	starts := make([]unit.Time, len(nodes))
	for i, n := range nodes {
		consumer := ""
		for _, dep := range g.Dependents(n.ID) {
			if dn := g.Node(dep); dn != nil && dn.Kind == dag.Compute {
				consumer = dep
				break
			}
		}
		if consumer == "" {
			return core.Absolute{}, fmt.Errorf("profile: flow %q has no compute consumer", n.ID)
		}
		span, ok := res.Tasks[consumer]
		if !ok {
			return core.Absolute{}, fmt.Errorf("profile: consumer %q missing from run", consumer)
		}
		starts[i] = span.Start
	}
	offsets := make([]unit.Time, len(starts))
	for i := range starts {
		offsets[i] = starts[i] - starts[0]
		if i > 0 && offsets[i] < offsets[i-1] {
			if float64(offsets[i-1]-offsets[i]) > 1e-6 {
				return core.Absolute{}, fmt.Errorf(
					"profile: group %q consumer starts not ordered at stage %d (%v < %v)",
					group, i, offsets[i], offsets[i-1])
			}
			offsets[i] = offsets[i-1]
		}
	}
	offsets[0] = 0
	return core.NewAbsolute(offsets)
}

// Prediction is Predict's result: the expected per-iteration compute time
// and whether the profile was stable enough to trust it. An unstable or
// incomplete profile still yields Iteration (the mean over whatever was
// measured, zero when nothing was) so callers can blend it with a declared
// duration; Reason says why Stable is false.
type Prediction struct {
	Iteration unit.Time
	Stable    bool
	Reason    string
}

// Predict estimates a job's per-iteration compute time from measured unit
// durations: the mean over iterations of each iteration's summed unit
// durations. Unlike Stability it never errors — admission control needs an
// answer for every job, so instability (or missing measurements) is reported
// as a verdict the caller can act on (e.g. fall back to a declared
// duration). idsPerIteration follows Stability's shape: [k][u] is unit u's
// node ID in iteration k.
func (p *Profile) Predict(idsPerIteration [][]string, tol float64) Prediction {
	var sum unit.Time
	measured := 0
	for _, it := range idsPerIteration {
		var itSum unit.Time
		complete := len(it) > 0
		for _, id := range it {
			d, err := p.Duration(id)
			if err != nil {
				complete = false
				break
			}
			itSum += d
		}
		if complete {
			sum += itSum
			measured++
		}
	}
	if measured == 0 {
		return Prediction{Reason: "no measured iterations"}
	}
	pred := Prediction{Iteration: sum / unit.Time(measured)}
	if measured < len(idsPerIteration) {
		pred.Reason = fmt.Sprintf("only %d of %d iterations measured", measured, len(idsPerIteration))
		return pred
	}
	if err := p.Stability(idsPerIteration, tol); err != nil {
		pred.Reason = err.Error()
		return pred
	}
	pred.Stable = true
	return pred
}

// Stability verifies that the computation pattern repeats across iterations:
// idsPerIteration[k][u] is unit u's node ID in iteration k, and every unit's
// duration must match its iteration-0 counterpart within tol. This is the
// precondition for reusing a profiled arrangement over a job's lifetime
// (§5: "maintain the scheduling decision throughout the DDLT lifetime
// leveraging the iterative nature of DDLT jobs").
func (p *Profile) Stability(idsPerIteration [][]string, tol float64) error {
	if len(idsPerIteration) < 2 {
		return fmt.Errorf("profile: stability needs >=2 iterations")
	}
	base := idsPerIteration[0]
	for k := 1; k < len(idsPerIteration); k++ {
		it := idsPerIteration[k]
		if len(it) != len(base) {
			return fmt.Errorf("profile: iteration %d has %d units, iteration 0 has %d", k, len(it), len(base))
		}
		for u := range it {
			d0, err := p.Duration(base[u])
			if err != nil {
				return err
			}
			dk, err := p.Duration(it[u])
			if err != nil {
				return err
			}
			if relDiff(float64(d0), float64(dk)) > tol {
				return fmt.Errorf("profile: unit %q (%v) deviates from %q (%v) beyond %.1f%%",
					it[u], dk, base[u], d0, tol*100)
			}
		}
	}
	return nil
}
