package coordinator

import (
	"strings"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// fakeClock drives the coordinator deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestCoordinator(t *testing.T, clk *fakeClock) *Coordinator {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net:       net,
		Scheduler: sched.EchelonMADD{Backfill: true},
		Clock:     clk.now,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pipelineGroup(t *testing.T) *core.EchelonFlow {
	t.Helper()
	g, err := core.New("job/pp", core.Pipeline{T: 2},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 20, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 20, Stage: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("nil Net accepted")
	}
	net := fabric.NewNetwork()
	c, err := New(Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.Scheduler == nil || c.opts.Clock == nil || c.opts.Logf == nil {
		t.Error("defaults not applied")
	}
}

func TestRegisterValidation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk)
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a1", g); err == nil {
		t.Error("duplicate registration accepted")
	}
	ghost, _ := core.NewCoflow("ghost", &core.Flow{ID: "x", Src: "w1", Dst: "nowhere", Size: 1})
	if err := c.RegisterGroup("a1", ghost); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestFlowLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk)
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	// Release the head flow at t=0: it alone gets scheduled.
	rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	if rates["f0"] <= 0 {
		t.Errorf("head flow rate = %v", rates["f0"])
	}
	ref, _, err := c.GroupStatus("job/pp")
	if err != nil || !ref.ApproxEq(0) {
		t.Errorf("reference = %v, %v", ref, err)
	}
	// Second flow released 1s later.
	clk.advance(time.Second)
	rates, err = c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rates["f1"]; !ok {
		t.Error("f1 missing from allocation")
	}
	// Head finishes at t=2: tardiness = finish - deadline(stage0, ref=0) = 2.
	clk.advance(time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	_, tard, err := c.GroupStatus("job/pp")
	if err != nil || !tard.ApproxEq(2) {
		t.Errorf("achieved tardiness = %v, %v; want 2", tard, err)
	}
}

func TestFlowEventErrors(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk)
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	cases := []wire.FlowEvent{
		{GroupID: "ghost", FlowID: "f0", Event: wire.EventReleased},
		{GroupID: "job/pp", FlowID: "ghost", Event: wire.EventReleased},
		{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}, // before release
		{GroupID: "job/pp", FlowID: "f0", Event: "exploded"},
	}
	for i, ev := range cases {
		if _, err := c.FlowEvent(ev); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err == nil {
		t.Error("double release accepted")
	}
}

// The fluid model: after advancing time at a known rate, the remaining
// volume shrinks, so the recomputed rate for a deadline-paced flow drops.
func TestFluidProgressEstimation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	fnet := fabric.NewNetwork()
	fnet.AddUniformHosts(10, "w1", "w2", "w3")
	// No backfill: rates are the minimal pacing, which exposes the fluid
	// remaining-volume estimate directly.
	c, err0 := New(Options{Net: fnet, Scheduler: sched.EchelonMADD{}, Clock: clk.now, Logf: t.Logf})
	if err0 != nil {
		t.Fatal(err0)
	}
	g, _ := core.New("g", core.Pipeline{T: 10},
		&core.Flow{ID: "a", Src: "w1", Dst: "w2", Size: 20, Stage: 1},
		&core.Flow{ID: "head", Src: "w1", Dst: "w2", Size: 0.0001, Stage: 0},
	)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g", FlowID: "head", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g", FlowID: "head", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "g", FlowID: "a", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	// Deadline 10: 20 bytes in 10s => rate 2.
	if r := rates["a"]; r < 1.9 || r > 2.1 {
		t.Errorf("initial paced rate = %v, want ~2", r)
	}
	clk.advance(5 * time.Second)
	rates, err = c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	// 10 bytes left, 5s to deadline: still ~2 — advance further to drift.
	if r := rates["a"]; r < 1.9 || r > 2.1 {
		t.Errorf("mid-flight rate = %v, want ~2", r)
	}
	if c.Reschedules() < 3 {
		t.Errorf("reschedules = %d", c.Reschedules())
	}
}

func TestUnregister(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk)
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UnregisterGroup("job/pp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.UnregisterGroup("job/pp"); err == nil {
		t.Error("double unregister accepted")
	}
	if _, _, err := c.GroupStatus("job/pp"); err == nil {
		t.Error("status of removed group accepted")
	}
}

// Competing groups from different owners are scheduled jointly.
func TestMultiGroupAllocation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "w1", "w2")
	c, err := New(Options{Net: net, Clock: clk.now, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := core.NewCoflow("g1", &core.Flow{ID: "x", Src: "w1", Dst: "w2", Size: 5})
	g2, _ := core.NewCoflow("g2", &core.Flow{ID: "y", Src: "w1", Dst: "w2", Size: 5})
	if err := c.RegisterGroup("a", g1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("b", g2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g1", FlowID: "x", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "g2", FlowID: "y", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	total := rates["x"] + rates["y"]
	if total > 1+unit.Rate(unit.Eps) {
		t.Errorf("joint allocation %v exceeds link capacity", total)
	}
	if total <= 0 {
		t.Errorf("no bandwidth allocated: %v", rates)
	}
}

func TestErrorMessagesName(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk)
	_, err := c.FlowEvent(wire.FlowEvent{GroupID: "nope", FlowID: "f", Event: wire.EventReleased})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error should name the group: %v", err)
	}
}
