package coordinator

import (
	"math"
	"testing"
	"time"

	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/wire"
)

func newTelemetryCoordinator(t *testing.T, clk *fakeClock) (*Coordinator, *telemetry.Registry, *telemetry.EventLog) {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	reg := telemetry.NewRegistry()
	evl := telemetry.NewEventLog(128)
	c, err := New(Options{
		Net:       net,
		Scheduler: sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()},
		Clock:     clk.now,
		Logf:      t.Logf,
		Metrics:   reg,
		Events:    evl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, reg, evl
}

// gaugeValue reads one gauge series from a snapshot; NaN if absent.
func gaugeValue(snap []telemetry.SnapshotFamily, name string, labels map[string]string) float64 {
	for _, f := range snap {
		if f.Name != name {
			continue
		}
	series:
		for _, s := range f.Series {
			if len(s.Labels) != len(labels) {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue series
				}
			}
			return s.Value
		}
	}
	return math.NaN()
}

func TestTelemetryEagerFamilies(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, reg, _ := newTelemetryCoordinator(t, clk)
	defer c.Close()
	// The CI smoke test curls /metrics on a freshly booted coordinator: the
	// tardiness gauge and scheduler latency histogram families must already
	// exist with zero traffic.
	snap := reg.Snapshot()
	if v := gaugeValue(snap, MetricTotalTardiness, nil); v != 0 {
		t.Errorf("fresh total tardiness gauge = %v, want 0", v)
	}
	found := false
	for _, f := range snap {
		if f.Name == "echelon_schedule_seconds" {
			found = true
		}
	}
	if !found {
		t.Error("schedule latency family not registered eagerly")
	}
}

func TestTelemetryTardinessGaugesMatchTotal(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, reg, evl := newTelemetryCoordinator(t, clk)
	defer c.Close()
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	// Finish f0 late: it runs [0, 5] against a pipeline deadline of r+2.
	clk.advance(5 * time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	total := gaugeValue(snap, MetricTotalTardiness, nil)
	perGroup := gaugeValue(snap, MetricGroupTardiness, map[string]string{"group": "job/pp"})
	weighted := gaugeValue(snap, MetricGroupWeightedTardiness, map[string]string{"group": "job/pp"})
	if math.IsNaN(total) || math.IsNaN(perGroup) || math.IsNaN(weighted) {
		t.Fatalf("missing gauges: total=%v group=%v weighted=%v", total, perGroup, weighted)
	}
	if perGroup <= 0 {
		t.Errorf("group tardiness gauge = %v, want > 0 (finished 3s late)", perGroup)
	}
	// Acceptance bar: the weighted gauge sum equals TotalTardiness to 1e-9.
	want := float64(c.TotalTardiness())
	if math.Abs(weighted-want) > 1e-9 {
		t.Errorf("weighted gauge sum = %v, TotalTardiness = %v (diff %g)", weighted, want, weighted-want)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("total gauge = %v, TotalTardiness = %v", total, want)
	}

	// Lifecycle events were recorded in order.
	kinds := make(map[string]int)
	for _, e := range evl.Tail(0) {
		kinds[e.Kind]++
	}
	if kinds[telemetry.EventRegister] != 1 || kinds[telemetry.EventRelease] != 1 || kinds[telemetry.EventFinish] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
	for _, e := range evl.Tail(0) {
		if e.Kind == telemetry.EventFinish && math.Abs(e.Tardiness-perGroup) > 1e-9 {
			t.Errorf("finish event tardiness = %v, gauge = %v", e.Tardiness, perGroup)
		}
	}

	// Reschedule counters moved.
	if got := reg.Counter(MetricReschedules, "").Value(); got == 0 {
		t.Error("reschedule counter did not advance")
	}
	if got := reg.Histogram(MetricRescheduleLat, "").Count(); got == 0 {
		t.Error("reschedule latency histogram is empty")
	}

	// Unregistering drops the per-group gauges and refreshes the total.
	if _, err := c.UnregisterGroup("job/pp"); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if v := gaugeValue(snap, MetricGroupTardiness, map[string]string{"group": "job/pp"}); !math.IsNaN(v) {
		t.Errorf("group gauge survived unregister: %v", v)
	}
	if v := gaugeValue(snap, MetricTotalTardiness, nil); v != 0 {
		t.Errorf("total gauge after unregister = %v, want 0", v)
	}
}

func TestTelemetryNilRegistryUnchanged(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newTestCoordinator(t, clk) // no Metrics/Events configured
	defer c.Close()
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	if got := c.Reschedules(); got == 0 {
		t.Error("coordinator without telemetry stopped scheduling")
	}
}
