package coordinator

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/wire"
)

// startQuarantineServer is startServer with a quarantine window.
func startQuarantineServer(t *testing.T, quarantine time.Duration) (*Coordinator, string, func()) {
	t.Helper()
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: quarantine, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	return c, ln.Addr().String(), func() { cancel(); wg.Wait() }
}

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Parking keeps the group's accumulated state and counts it exactly once in
// the Eq. 4 objective; the rejoin adopts that state instead of resetting it.
// Driven in-process with a fake clock so the tardiness arithmetic is exact.
func TestQuarantineParkedTardinessCountedOnce(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: time.Hour, Clock: clk.now, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	// Head flow finished 2s after a reference of 0: tardiness 2, weight 1.
	want := c.TotalTardiness()
	if !want.ApproxEq(2) {
		t.Fatalf("pre-park TotalTardiness = %v, want 2", want)
	}

	// The owner dies. The group parks; its tardiness neither vanishes nor
	// doubles, and it stays frozen while parked.
	c.dropSession(&session{agent: "a1"})
	if !c.GroupParked("job/pp") {
		t.Fatal("group not parked after owner death")
	}
	if got := c.TotalTardiness(); got != want {
		t.Errorf("parked TotalTardiness = %v, want %v", got, want)
	}
	clk.advance(10 * time.Second)
	if got := c.TotalTardiness(); got != want {
		t.Errorf("TotalTardiness drifted to %v while parked, want %v", got, want)
	}

	// Rejoin through the public API: the parked group is adopted with
	// exactly one reschedule, and the achieved tardiness carries over.
	n := c.Reschedules()
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatalf("rejoin registration: %v", err)
	}
	if c.GroupParked("job/pp") {
		t.Error("group still parked after rejoin")
	}
	if got := c.Reschedules(); got != n+1 {
		t.Errorf("rejoin ran %d reschedules, want exactly 1", got-n)
	}
	if got := c.TotalTardiness(); got != want {
		t.Errorf("post-rejoin TotalTardiness = %v, want %v", got, want)
	}
	// The group is live again, so a duplicate registration is an error.
	if err := c.RegisterGroup("a1", g); err == nil {
		t.Error("duplicate registration of revived group accepted")
	}
}

// A reconnecting agent revives its parked groups with exactly one
// reschedule; the re-register it replays afterwards is a no-op.
func TestQuarantineRejoinReschedulesOnce(t *testing.T) {
	coord, addr, stop := startQuarantineServer(t, 30*time.Second)
	defer stop()

	a := dialRaw(t, addr, "a1")
	g := pipelineGroup(t)
	reg, _ := wire.RegisterOf(g)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	if err := a.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}
	if rates := a.recvAllocation(t); rates["f0"] <= 0 {
		t.Fatalf("allocation = %v", rates)
	}

	a.conn.Close()
	waitFor(t, "park", func() bool { return coord.GroupParked("job/pp") })
	// Parking zeroes the rates with one reschedule, taken under the same
	// lock that parks, so the count is stable once GroupParked reports true.
	nPark := coord.Reschedules()

	b := dialRaw(t, addr, "a1")
	defer b.conn.Close()
	waitFor(t, "revive", func() bool { return !coord.GroupParked("job/pp") })
	if got := coord.Reschedules(); got != nPark+1 {
		t.Errorf("rejoin ran %d reschedules, want exactly 1", got-nPark)
	}

	// The restarted agent re-announces the group it still owns — a no-op —
	// then registers a fresh one. Neither adds a reschedule.
	if err := b.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	g2, _ := core.NewCoflow("job/extra", &core.Flow{ID: "x", Src: "w1", Dst: "w3", Size: 5})
	reg2, _ := wire.RegisterOf(g2)
	if err := b.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second registration", func() bool {
		_, _, err := coord.GroupStatus("job/extra")
		return err == nil
	})
	if got := coord.Reschedules(); got != nPark+1 {
		t.Errorf("re-register rescheduled (%d calls past rejoin), want none", got-nPark-1)
	}

	// Scheduling runs normally after the rejoin. The fresh session may first
	// receive the revive push (f0's state), so read until f1 shows up.
	if err := b.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}
	// f1's rate may legitimately be zero while f0 monopolizes the shared
	// port; what matters is that the revived group is being scheduled at all.
	for i := 0; ; i++ {
		rates := b.recvAllocation(t)
		if _, ok := rates["f1"]; ok {
			break
		}
		if i > 5 {
			t.Fatalf("f1 never allocated; last push %v", rates)
		}
	}
}

// An expired quarantine evicts; a rejoin beats the timer and the stale timer
// then fires harmlessly.
func TestQuarantineEviction(t *testing.T) {
	coord, addr, stop := startQuarantineServer(t, 150*time.Millisecond)
	defer stop()

	a := dialRaw(t, addr, "a1")
	g := pipelineGroup(t)
	reg, _ := wire.RegisterOf(g)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registration", func() bool {
		_, _, err := coord.GroupStatus("job/pp")
		return err == nil
	})
	a.conn.Close()
	waitFor(t, "eviction", func() bool {
		_, _, err := coord.GroupStatus("job/pp")
		return err != nil
	})

	// Round two: rejoin inside the window. The group must survive the old
	// timer's expiry because the park generation moved on.
	b := dialRaw(t, addr, "a1")
	if err := b.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registration", func() bool {
		_, _, err := coord.GroupStatus("job/pp")
		return err == nil
	})
	b.conn.Close()
	waitFor(t, "park", func() bool { return coord.GroupParked("job/pp") })
	c2 := dialRaw(t, addr, "a1")
	defer c2.conn.Close()
	waitFor(t, "revive", func() bool { return !coord.GroupParked("job/pp") })
	time.Sleep(300 * time.Millisecond) // let the stale eviction timer fire
	if _, _, err := coord.GroupStatus("job/pp"); err != nil {
		t.Errorf("stale quarantine timer evicted a revived group: %v", err)
	}
}

// Parked groups are invisible to the scheduler: their flows hold zero rate
// and competing groups get the capacity.
func TestQuarantineFreesBandwidth(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(1, "w1", "w2")
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: time.Hour, Clock: clk.now, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := core.NewCoflow("g1", &core.Flow{ID: "x", Src: "w1", Dst: "w2", Size: 5})
	g2, _ := core.NewCoflow("g2", &core.Flow{ID: "y", Src: "w1", Dst: "w2", Size: 5})
	if err := c.RegisterGroup("a", g1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("b", g2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g1", FlowID: "x", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g2", FlowID: "y", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	c.dropSession(&session{agent: "a"})
	rates, err := c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rates["x"]; ok {
		t.Errorf("parked flow still allocated: %v", rates)
	}
	if rates["y"] < 0.9 {
		t.Errorf("surviving flow got %v of the freed link, want ~1", rates["y"])
	}
}
