// Package coordinator implements the central EchelonFlow scheduler of the
// paper's system sketch (Fig. 7, §5): it receives EchelonFlow registrations
// and flow lifecycle events from Agents, reruns the scheduling heuristic on
// every arrival/departure (and optionally on a fixed interval), and pushes
// bandwidth allocations back.
//
// The Coordinator models flow progress fluidly — remaining volume decreases
// at the allocated rate between events — and treats Agent finish reports as
// ground truth, so modest model drift self-corrects at the next event.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Net is the capacity model of the cluster fabric. Required.
	Net *fabric.Network
	// Scheduler defaults to EchelonMADD with backfill.
	Scheduler sched.Scheduler
	// Interval, when positive, also reschedules periodically while flows
	// are active (§5's per-scheduling-interval mode).
	Interval time.Duration
	// SessionTimeout drops an agent session that sends nothing (not even a
	// heartbeat) for this long; its groups are unregistered. Zero disables
	// the timeout.
	SessionTimeout time.Duration
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
	// Logf receives diagnostic output; defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

type flowRT struct {
	flow      *core.Flow
	released  bool
	finished  bool
	remaining unit.Bytes
	rate      unit.Rate
	release   unit.Time
}

type groupRT struct {
	state  *sched.GroupState
	flows  map[string]*flowRT
	owner  string
	refSet bool
}

// Coordinator is the central scheduler. Create with New.
type Coordinator struct {
	opts  Options
	start time.Time

	mu          sync.Mutex
	groups      map[string]*groupRT
	sessions    map[*session]struct{}
	lastAdvance unit.Time
	reschedules int
	ratesTotal  int // allocation entries computed
	ratesPushed int // allocation entries actually sent (after delta filtering)

	// cache is the scheduler's plan cache when it exposes one; lifecycle
	// events invalidate the affected groups eagerly. Nil-safe.
	cache *sched.PlanCache
}

// New validates options and returns a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("coordinator: Net is required")
	}
	if opts.Scheduler == nil {
		opts.Scheduler = sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	c := &Coordinator{
		opts:     opts,
		start:    opts.Clock(),
		groups:   make(map[string]*groupRT),
		sessions: make(map[*session]struct{}),
	}
	if pc, ok := opts.Scheduler.(interface{ PlanCache() *sched.PlanCache }); ok {
		c.cache = pc.PlanCache()
	}
	return c, nil
}

// now converts wall time to scheduler time (seconds since start).
func (c *Coordinator) now() unit.Time {
	return unit.Time(c.opts.Clock().Sub(c.start).Seconds())
}

// Reschedules reports how many scheduling decisions have been made.
func (c *Coordinator) Reschedules() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reschedules
}

// RegisterGroup records an EchelonFlow on behalf of an owner (an agent name
// or an in-process caller). Flow endpoints must exist in the fabric model.
func (c *Coordinator) RegisterGroup(owner string, g *core.EchelonFlow) error {
	for _, f := range g.Flows {
		if c.opts.Net.Host(f.Src) == nil || c.opts.Net.Host(f.Dst) == nil {
			return fmt.Errorf("coordinator: flow %q references host missing from fabric model", f.ID)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.groups[g.ID]; dup {
		return fmt.Errorf("coordinator: group %q already registered", g.ID)
	}
	rt := &groupRT{
		state: &sched.GroupState{Group: g},
		flows: make(map[string]*flowRT, len(g.Flows)),
		owner: owner,
	}
	for _, f := range g.Flows {
		rt.flows[f.ID] = &flowRT{flow: f, remaining: f.Size}
	}
	c.groups[g.ID] = rt
	return nil
}

// UnregisterGroup removes an EchelonFlow (job departure) and reallocates.
func (c *Coordinator) UnregisterGroup(groupID string) (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[groupID]; !ok {
		return nil, fmt.Errorf("coordinator: unknown group %q", groupID)
	}
	c.advanceLocked()
	delete(c.groups, groupID)
	c.cache.InvalidateGroup(groupID)
	return c.rescheduleLocked()
}

// FlowEvent applies a lifecycle transition and returns the fresh allocation.
func (c *Coordinator) FlowEvent(ev wire.FlowEvent) (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[ev.GroupID]
	if !ok {
		return nil, fmt.Errorf("coordinator: unknown group %q", ev.GroupID)
	}
	f, ok := g.flows[ev.FlowID]
	if !ok {
		return nil, fmt.Errorf("coordinator: group %q has no flow %q", ev.GroupID, ev.FlowID)
	}
	c.advanceLocked()
	now := c.now()
	switch ev.Event {
	case wire.EventReleased:
		if f.released {
			return nil, fmt.Errorf("coordinator: flow %q released twice", ev.FlowID)
		}
		f.released = true
		f.release = now
		if !g.refSet {
			g.refSet = true
			g.state.Reference = now
		}
	case wire.EventFinished:
		if f.finished {
			return nil, fmt.Errorf("coordinator: flow %q finished twice", ev.FlowID)
		}
		if !f.released {
			return nil, fmt.Errorf("coordinator: flow %q finished before release", ev.FlowID)
		}
		f.finished = true
		f.remaining = 0
		deadline := g.state.Group.Arrangement.Deadline(f.flow.Stage, g.state.Reference)
		if tard := now - deadline; tard > g.state.AchievedTardiness {
			g.state.AchievedTardiness = tard
		}
	default:
		return nil, fmt.Errorf("coordinator: unknown event %q", ev.Event)
	}
	c.cache.InvalidateGroup(ev.GroupID) // the group's released flow set changed
	return c.rescheduleLocked()
}

// Tick advances the fluid model and reallocates; Serve calls it on the
// configured interval, and tests may call it directly.
func (c *Coordinator) Tick() (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked()
	return c.rescheduleLocked()
}

// GroupStatus reports a group's reference time and achieved tardiness.
func (c *Coordinator) GroupStatus(groupID string) (reference, tardiness unit.Time, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return 0, 0, fmt.Errorf("coordinator: unknown group %q", groupID)
	}
	return g.state.Reference, g.state.AchievedTardiness, nil
}

// advanceLocked integrates estimated progress since the last event.
func (c *Coordinator) advanceLocked() {
	now := c.now()
	dt := now - c.lastAdvance
	if dt <= 0 {
		return
	}
	c.lastAdvance = now
	for _, g := range c.groups {
		for _, f := range g.flows {
			if f.released && !f.finished {
				f.remaining -= f.rate.Over(dt)
				if f.remaining < 0 {
					f.remaining = 0
				}
			}
		}
	}
}

// rescheduleLocked runs the scheduler over active flows and stores the new
// rates. The returned map covers every active flow.
func (c *Coordinator) rescheduleLocked() (map[string]unit.Rate, error) {
	snap := &sched.Snapshot{Now: c.now(), Groups: make(map[string]*sched.GroupState, len(c.groups))}
	for gid, g := range c.groups {
		snap.Groups[gid] = g.state
		for _, f := range g.flows {
			if !f.released || f.finished {
				continue
			}
			remaining := f.remaining
			if remaining < 1 {
				// The agent hasn't reported completion, so the flow is
				// still real; keep a floor so it retains bandwidth.
				remaining = 1
			}
			snap.Flows = append(snap.Flows, &sched.FlowState{
				Flow: f.flow, GroupID: gid, Remaining: remaining, Release: f.release,
			})
		}
	}
	rates, err := c.opts.Scheduler.Schedule(snap, c.opts.Net)
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	c.reschedules++
	for _, fs := range snap.Flows {
		c.groups[fs.GroupID].flows[fs.Flow.ID].rate = rates[fs.Flow.ID]
	}
	c.broadcastLocked(rates)
	return rates, nil
}

// broadcastLocked pushes an allocation to every connected session. Only
// entries that changed since the session's last push are sent — the paper's
// §5 scalability lever: DDLT's iterative nature means most reschedules
// change few rates, so deltas keep the control plane small.
func (c *Coordinator) broadcastLocked(rates map[string]unit.Rate) {
	if len(c.sessions) == 0 {
		return
	}
	for s := range c.sessions {
		delta := make(map[string]unit.Rate)
		for id, r := range rates {
			if prev, ok := s.sent[id]; !ok || prev != r {
				delta[id] = r
			}
		}
		// Flows absent from the new allocation are finished; drop them
		// from the session's view so a reused ID is re-sent later.
		for id := range s.sent {
			if _, ok := rates[id]; !ok {
				delete(s.sent, id)
			}
		}
		c.ratesTotal += len(rates)
		if len(delta) == 0 {
			continue
		}
		c.ratesPushed += len(delta)
		msg := wire.Message{Type: wire.TypeAllocation, Allocation: &wire.Allocation{Rates: delta}}
		if err := s.codec.Send(msg); err != nil {
			c.opts.Logf("coordinator: push to %s failed: %v", s.agent, err)
			continue
		}
		for id, r := range delta {
			s.sent[id] = r
		}
	}
}

// PushStats reports how many allocation entries were computed versus
// actually pushed after delta filtering.
func (c *Coordinator) PushStats() (computed, pushed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ratesTotal, c.ratesPushed
}

// session is one connected agent.
type session struct {
	codec *wire.Codec
	agent string
	conn  net.Conn
	sent  map[string]unit.Rate // last rates pushed to this session
}

// Serve accepts agent connections until the context is cancelled or the
// listener fails. It owns the listener and closes it on return.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	var wg sync.WaitGroup
	defer wg.Wait()

	if c.opts.Interval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(c.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := c.Tick(); err != nil {
						c.opts.Logf("coordinator: tick: %v", err)
					}
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handleConn(ctx, conn)
		}()
	}
}

// handleConn runs one agent session to completion.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	s := &session{codec: wire.NewCodec(conn), conn: conn, sent: make(map[string]unit.Rate)}

	hello, err := s.codec.Recv()
	if err != nil || hello.Type != wire.TypeHello {
		c.opts.Logf("coordinator: bad handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	s.agent = hello.Hello.Agent
	c.mu.Lock()
	c.sessions[s] = struct{}{}
	c.mu.Unlock()
	defer c.dropSession(s)

	for {
		if ctx.Err() != nil {
			return
		}
		if c.opts.SessionTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.opts.SessionTimeout))
		}
		msg, err := s.codec.Recv()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.opts.Logf("coordinator: agent %s timed out (no heartbeat)", s.agent)
			}
			return
		}
		if err := c.handleMessage(s, msg); err != nil {
			c.opts.Logf("coordinator: agent %s: %v", s.agent, err)
			_ = s.codec.Send(wire.Message{Type: wire.TypeError, Error: &wire.Error{Msg: err.Error()}})
		}
	}
}

func (c *Coordinator) handleMessage(s *session, msg wire.Message) error {
	switch msg.Type {
	case wire.TypeHeartbeat:
		return nil
	case wire.TypeRegister:
		g, err := msg.Register.Group()
		if err != nil {
			return err
		}
		return c.RegisterGroup(s.agent, g)
	case wire.TypeUnregister:
		_, err := c.UnregisterGroup(msg.Unregister.GroupID)
		return err
	case wire.TypeFlowEvent:
		_, err := c.FlowEvent(*msg.FlowEvent)
		return err
	default:
		return fmt.Errorf("unexpected message type %q", msg.Type)
	}
}

// dropSession removes a disconnected agent and its groups.
func (c *Coordinator) dropSession(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, s)
	var orphaned []string
	for gid, g := range c.groups {
		if g.owner == s.agent && s.agent != "" {
			orphaned = append(orphaned, gid)
		}
	}
	if len(orphaned) == 0 {
		return
	}
	c.advanceLocked()
	for _, gid := range orphaned {
		delete(c.groups, gid)
		c.cache.InvalidateGroup(gid)
	}
	if _, err := c.rescheduleLocked(); err != nil {
		c.opts.Logf("coordinator: reschedule after %s departed: %v", s.agent, err)
	}
}
