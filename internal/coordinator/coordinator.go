// Package coordinator implements the central EchelonFlow scheduler of the
// paper's system sketch (Fig. 7, §5): it receives EchelonFlow registrations
// and flow lifecycle events from Agents, reruns the scheduling heuristic on
// every arrival/departure (and optionally on a fixed interval), and pushes
// bandwidth allocations back.
//
// The Coordinator models flow progress fluidly — remaining volume decreases
// at the allocated rate between events — and treats Agent finish reports as
// ground truth, so modest model drift self-corrects at the next event.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/journal"
	"echelonflow/internal/queue"
	"echelonflow/internal/ratelimit"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Net is the capacity model of the cluster fabric. Required.
	Net fabric.Fabric
	// Scheduler defaults to EchelonMADD with backfill.
	Scheduler sched.Scheduler
	// Interval, when positive, also reschedules periodically while flows
	// are active (§5's per-scheduling-interval mode).
	Interval time.Duration
	// SessionTimeout drops an agent session that sends nothing (not even a
	// heartbeat) for this long; its groups are unregistered. Zero disables
	// the timeout.
	SessionTimeout time.Duration
	// QuarantineTimeout is how long a dead agent's groups stay parked —
	// excluded from scheduling but retaining their progress state —
	// awaiting a rejoin under the same agent name. Zero evicts immediately
	// on session death (the pre-quarantine behaviour).
	QuarantineTimeout time.Duration
	// SnapshotEvery, for a coordinator built with Restore, compacts the
	// journal into a snapshot after this many appended events. Zero keeps
	// the write-ahead log growing until the next restart.
	SnapshotEvery int
	// GroupCommit, when positive, batches journal fsyncs (group-commit):
	// appends buffer in the page cache and are synced when the batch reaches
	// GroupCommitBytes (journal.DefaultGroupCommitBytes if zero) or this
	// window elapses, so durability stops serializing admission at high
	// event rates. A crash may lose up to one window of the newest records —
	// recovery still yields an exact prefix of the acknowledged state. Zero
	// keeps the per-append fsync.
	GroupCommit      time.Duration
	GroupCommitBytes int
	// Coalesce, when positive, batches flow lifecycle events: a FlowEvent
	// is applied and journaled immediately but the reschedule is deferred
	// until this window elapses (or a non-coalescible event — capacity
	// change, unregister, park/revive, tick — forces a flush first). A
	// burst of finish reports then drains into one reschedule. The journal
	// records the batch boundary (a "resched" record listing the batch's
	// groups), so Restore replays the same batches bit-for-bit.
	Coalesce time.Duration
	// RedialRate, when positive, admission-limits reconnects per agent name
	// to this many per second (burst RedialBurst, default 1), so a flapping
	// agent redialing in a tight loop cannot starve connection handling.
	RedialRate  float64
	RedialBurst float64
	// Queue, when non-nil, enables the online job-arrival pipeline: agents
	// submit wire.JobSpecs, the queue's placement/admission policies bind and
	// gate them, and the coordinator registers the compiled groups itself.
	// The queue must be dedicated to this coordinator (it is driven under the
	// coordinator's lock and restored from its journal).
	Queue *queue.Queue
	// SubmitRate, when positive, rate-limits job submissions per tenant to
	// this many per second (burst SubmitBurst, default 1); excess submissions
	// are refused with a typed throttled error, not a dropped connection.
	SubmitRate  float64
	SubmitBurst float64
	// SchedDeadline, when positive, bounds every scheduling pass with this
	// time budget (sched.WithDeadline): on overrun the pass is abandoned and
	// a max-min fair fallback allocation is pushed instead, so a slow or
	// wedged scheduler degrades the allocation quality rather than stalling
	// event handling. DeadlineTripAfter consecutive overruns/errors open a
	// circuit breaker that keeps the fallback in force for DeadlineCooldown
	// before probing recovery (defaults: 3 and 10x the budget).
	SchedDeadline     time.Duration
	DeadlineTripAfter int
	DeadlineCooldown  time.Duration
	// ShedHighWater, when positive, sheds job submissions with a typed
	// throttled wire error while more than this many inbound events (across
	// all sessions) are queued or in flight — existing work drains before
	// new jobs are admitted.
	ShedHighWater int
	// InboundQueue bounds each session's inbound event queue (default 256).
	// A full queue exerts TCP backpressure on that agent instead of growing
	// coordinator memory.
	InboundQueue int
	// SendBuffer bounds each session's outbound message queue (default 64).
	// Pushes are decoupled from the agent socket by a per-session writer, so
	// a stalled agent can never block the reschedule lock; overflowing the
	// buffer tears the session down (quarantine then holds its groups).
	SendBuffer int
	// WriteTimeout bounds each outbound frame write (default 10s). A socket
	// that cannot accept a frame within it is considered dead.
	WriteTimeout time.Duration
	// StragglerRTT, when positive, enables gray-failure detection: the
	// coordinator pings wire-v3 sessions (every PingInterval, default 1s),
	// tracks a per-agent RTT EWMA, and soft-quarantines agents whose EWMA
	// exceeds this threshold — their groups stay scheduled, but their event
	// reports are deadline-bounded (batched into a coalescing window instead
	// of triggering immediate passes). Hysteresis releases at half the
	// threshold.
	StragglerRTT time.Duration
	PingInterval time.Duration
	// Clock is injectable for tests; defaults to time.Now.
	Clock func() time.Time
	// Logf receives diagnostic output; defaults to log.Printf.
	Logf func(format string, args ...interface{})
	// Metrics, when non-nil, receives runtime counters/gauges/histograms
	// (reschedule counts and latency, per-group tardiness, journal fsync
	// latency, redial admission outcomes) and causes the Scheduler to be
	// wrapped with sched.Instrument for per-call latency histograms. Nil
	// disables all metric work.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives structured flow-lifecycle events
	// (release/finish/resume, reschedule/allocation, park/revive/evict,
	// journal snapshot and slow fsync, redial accept/reject). Nil disables
	// event logging.
	Events *telemetry.EventLog
}

type flowRT struct {
	flow      *core.Flow
	released  bool
	finished  bool
	remaining unit.Bytes
	rate      unit.Rate
	release   unit.Time
}

type groupRT struct {
	state  *sched.GroupState
	flows  map[string]*flowRT
	owner  string
	refSet bool
	// parked marks a group whose owning session died: it keeps its state
	// but is excluded from scheduling until the owner rejoins or the
	// quarantine timeout evicts it. parkGen guards a pending eviction
	// timer against a park/rejoin/park cycle reusing the group; parkedAt
	// (per opts.Clock) is when the current park began, so eviction is
	// decided against the injected clock rather than the wall timer.
	parked   bool
	parkGen  int
	parkedAt time.Time
}

// Coordinator is the central scheduler. Create with New.
type Coordinator struct {
	opts  Options
	start time.Time

	mu          sync.Mutex
	groups      map[string]*groupRT
	sessions    map[*session]struct{}
	byName      map[string]*session
	lastAdvance unit.Time
	reschedules int
	ratesTotal  int // allocation entries computed
	ratesPushed int // allocation entries actually sent (after delta filtering)

	// cache is the scheduler's plan cache when it exposes one; lifecycle
	// events invalidate the affected groups eagerly. Nil-safe.
	cache *sched.PlanCache

	// delta is the scheduler's incremental path when it implements
	// sched.DeltaScheduler (resolved once in New, through the Instrument
	// wrapper). Nil means every reschedule is a full Schedule.
	delta sched.DeltaScheduler

	// degrade is the deadline wrapper's control handle when SchedDeadline is
	// configured (resolved in New before instrumenting). degraded tracks the
	// last pass's regime under mu, so transitions emit exactly one event.
	degrade  sched.DegradeControl
	degraded bool

	// inboundDepth counts events received from agent sockets but not yet
	// fully handled, across all sessions — the backlog the shed high-water
	// mark is compared against. fsyncStall is the injected journal-append
	// latency (nanos) behind the faults.FsyncStall chaos hook.
	inboundDepth atomic.Int64
	fsyncStall   atomic.Int64

	// pingNonce numbers coordinator-initiated RTT pings (under mu).
	pingNonce uint64

	// pending accumulates the group IDs touched by coalesced flow events
	// awaiting one batched reschedule; nil means no batch is open.
	// pendingGen invalidates a stale drain timer after an early flush.
	// flushing suppresses journal compaction while the batch boundary's
	// resched record is being written and applied — a snapshot taken there
	// would capture the batch's mutations while its reschedule is in neither
	// the snapshot nor the tail.
	pending    map[string]bool
	pendingGen int
	flushing   bool

	// journal, when set (via Restore), receives an append for every
	// state-mutating event; journalEvents counts appends since the last
	// snapshot, and replaying suppresses appends while the log is being
	// re-applied. All three are guarded by mu.
	journal       *journal.Journal
	journalEvents int
	replaying     bool
	// journalBrokenSeen marks that the broken-journal transition was
	// announced (log line, gauge, lifecycle event) — the latch itself lives
	// in the journal and can be set by its group-commit background flush.
	journalBrokenSeen bool

	// limiters admission-controls redials per agent name (opts.RedialRate);
	// submitLimiters throttles job submissions per tenant (opts.SubmitRate).
	limiters       map[string]*ratelimit.Bucket
	submitLimiters map[string]*ratelimit.Bucket

	// queue is the job-arrival pipeline (opts.Queue). jobGroups/groupJob
	// index registered groups by owning job; jobFlowsLeft counts each job's
	// unfinished flows so its departure is detected on the last finish.
	queue        *queue.Queue
	jobGroups    map[string]map[string]bool
	groupJob     map[string]string
	jobFlowsLeft map[string]int

	// tel caches instrument handles resolved once in New. With Options.
	// Metrics nil every handle is nil and all recording calls are no-ops.
	tel  coordTelemetry
	jtel jobTelemetry
}

// coordTelemetry bundles the coordinator's cached instrument handles.
type coordTelemetry struct {
	reschedules    *telemetry.Counter
	rescheduleLat  *telemetry.Histogram
	totalTard      *telemetry.Gauge
	flowsActive    *telemetry.Gauge
	groupsLive     *telemetry.Gauge
	groupsParked   *telemetry.Gauge
	redialAccepted *telemetry.Counter
	redialRejected *telemetry.Counter
	fsyncLat       *telemetry.Histogram
	snapshots      *telemetry.Counter
	ratesComputed  *telemetry.Counter
	ratesPushed    *telemetry.Counter
	deltaApplied   *telemetry.Counter
	deltaFallback  *telemetry.Counter
	coalesced      *telemetry.Counter
	batches        *telemetry.Counter
	reschedErrors  *telemetry.Counter
	schedRecovered *telemetry.Counter
	shedJobs       *telemetry.Counter
	sendOverflow   *telemetry.Counter
	inboundDepth   *telemetry.Gauge
	journalBroken  *telemetry.Gauge
	softQuar       *telemetry.Counter
	softRelease    *telemetry.Counter
}

// Metric family names the coordinator exposes. Kept as constants so tests
// and the CI smoke step assert against one source of truth.
const (
	MetricTotalTardiness         = "echelon_total_tardiness_seconds"
	MetricGroupTardiness         = "echelon_group_tardiness_seconds"
	MetricGroupWeightedTardiness = "echelon_group_weighted_tardiness_seconds"
	MetricReschedules            = "echelon_reschedules_total"
	MetricRescheduleLat          = "echelon_reschedule_seconds"
	MetricFlowsActive            = "echelon_flows_active"
	MetricGroupsLive             = "echelon_groups_registered"
	MetricGroupsParked           = "echelon_groups_parked"
	MetricRedialAccepted         = "echelon_redial_accepted_total"
	MetricRedialRejected         = "echelon_redial_rejected_total"
	MetricJournalFsyncLat        = "echelon_journal_fsync_seconds"
	MetricJournalSnapshots       = "echelon_journal_snapshots_total"
	MetricRatesComputed          = "echelon_allocation_entries_computed_total"
	MetricRatesPushed            = "echelon_allocation_entries_pushed_total"
	MetricDeltaApplied           = "echelon_delta_applied_total"
	MetricDeltaFallback          = "echelon_delta_fallback_total"
	MetricCoalescedEvents        = "echelon_coalesced_events_total"
	MetricCoalesceBatches        = "echelon_coalesce_batches_total"
	MetricRescheduleErrors       = "echelon_reschedule_errors_total"
	MetricSchedDegraded          = "echelon_sched_degraded_total"
	MetricSchedRecoveries        = "echelon_sched_recoveries_total"
	MetricShedSubmissions        = "echelon_shed_submissions_total"
	MetricSendOverflow           = "echelon_send_overflow_total"
	MetricInboundDepth           = "echelon_inbound_queue_depth"
	MetricAgentRTT               = "echelon_agent_rtt_seconds"
	MetricSoftQuarantines        = "echelon_soft_quarantines_total"
	MetricSoftReleases           = "echelon_soft_releases_total"
	MetricJournalBroken          = "echelon_journal_broken"
)

// New validates options and returns a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("coordinator: Net is required")
	}
	if opts.Interval < 0 {
		return nil, fmt.Errorf("coordinator: negative Interval %v", opts.Interval)
	}
	if opts.SessionTimeout < 0 {
		return nil, fmt.Errorf("coordinator: negative SessionTimeout %v", opts.SessionTimeout)
	}
	if opts.QuarantineTimeout < 0 {
		return nil, fmt.Errorf("coordinator: negative QuarantineTimeout %v", opts.QuarantineTimeout)
	}
	if opts.SnapshotEvery < 0 {
		return nil, fmt.Errorf("coordinator: negative SnapshotEvery %d", opts.SnapshotEvery)
	}
	if opts.RedialRate < 0 || opts.RedialBurst < 0 {
		return nil, fmt.Errorf("coordinator: negative redial limit %v/%v", opts.RedialRate, opts.RedialBurst)
	}
	if opts.SubmitRate < 0 || opts.SubmitBurst < 0 {
		return nil, fmt.Errorf("coordinator: negative submit limit %v/%v", opts.SubmitRate, opts.SubmitBurst)
	}
	if opts.Coalesce < 0 {
		return nil, fmt.Errorf("coordinator: negative Coalesce %v", opts.Coalesce)
	}
	if opts.SchedDeadline < 0 || opts.DeadlineCooldown < 0 || opts.DeadlineTripAfter < 0 {
		return nil, fmt.Errorf("coordinator: negative scheduler deadline settings %v/%d/%v",
			opts.SchedDeadline, opts.DeadlineTripAfter, opts.DeadlineCooldown)
	}
	if opts.ShedHighWater < 0 || opts.InboundQueue < 0 || opts.SendBuffer < 0 {
		return nil, fmt.Errorf("coordinator: negative backpressure settings %d/%d/%d",
			opts.ShedHighWater, opts.InboundQueue, opts.SendBuffer)
	}
	if opts.WriteTimeout < 0 || opts.StragglerRTT < 0 || opts.PingInterval < 0 {
		return nil, fmt.Errorf("coordinator: negative timing settings %v/%v/%v",
			opts.WriteTimeout, opts.StragglerRTT, opts.PingInterval)
	}
	if opts.InboundQueue == 0 {
		opts.InboundQueue = 256
	}
	if opts.SendBuffer == 0 {
		opts.SendBuffer = 64
	}
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	if opts.Scheduler == nil {
		opts.Scheduler = sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}
	}
	// The deadline wrapper goes on before Instrument so the latency
	// histograms see the bounded call; the control handle is resolved here
	// because Instrument does not forward it.
	var degrade sched.DegradeControl
	if opts.SchedDeadline > 0 {
		wrapped := sched.WithDeadline(opts.Scheduler, sched.DeadlineOptions{
			Budget:    opts.SchedDeadline,
			TripAfter: opts.DeadlineTripAfter,
			Cooldown:  opts.DeadlineCooldown,
		})
		degrade, _ = wrapped.(sched.DegradeControl)
		opts.Scheduler = wrapped
	}
	// Instrument is the identity when Metrics is nil, so the unconfigured
	// scheduling path is untouched.
	opts.Scheduler = sched.Instrument(opts.Scheduler, opts.Metrics)
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	c := &Coordinator{
		opts:           opts,
		start:          opts.Clock(),
		groups:         make(map[string]*groupRT),
		sessions:       make(map[*session]struct{}),
		byName:         make(map[string]*session),
		limiters:       make(map[string]*ratelimit.Bucket),
		submitLimiters: make(map[string]*ratelimit.Bucket),
		queue:          opts.Queue,
		jobGroups:      make(map[string]map[string]bool),
		groupJob:       make(map[string]string),
		jobFlowsLeft:   make(map[string]int),
		degrade:        degrade,
	}
	if pc, ok := opts.Scheduler.(interface{ PlanCache() *sched.PlanCache }); ok {
		c.cache = pc.PlanCache()
	}
	if ds, ok := opts.Scheduler.(sched.DeltaScheduler); ok {
		c.delta = ds
	}
	// Families are registered eagerly so /metrics exposes the full surface
	// (tardiness gauges included) before the first event arrives. All calls
	// are nil-safe no-ops without a registry.
	m := opts.Metrics
	c.tel = coordTelemetry{
		reschedules:    m.Counter(MetricReschedules, "Scheduling decisions made."),
		rescheduleLat:  m.Histogram(MetricRescheduleLat, "Latency of a full reschedule (advance + schedule + broadcast)."),
		totalTard:      m.Gauge(MetricTotalTardiness, "Eq. 4 objective: weighted achieved tardiness summed over registered groups."),
		flowsActive:    m.Gauge(MetricFlowsActive, "Released, unfinished flows in the last scheduling snapshot."),
		groupsLive:     m.Gauge(MetricGroupsLive, "Registered EchelonFlow groups (including parked)."),
		groupsParked:   m.Gauge(MetricGroupsParked, "Groups quarantined awaiting their agent's rejoin."),
		redialAccepted: m.Counter(MetricRedialAccepted, "Agent handshakes admitted."),
		redialRejected: m.Counter(MetricRedialRejected, "Agent handshakes rejected by redial admission control."),
		fsyncLat:       m.Histogram(MetricJournalFsyncLat, "Latency of journal appends (fsync per append)."),
		snapshots:      m.Counter(MetricJournalSnapshots, "Journal compactions into a snapshot."),
		ratesComputed:  m.Counter(MetricRatesComputed, "Allocation entries computed across broadcasts."),
		ratesPushed:    m.Counter(MetricRatesPushed, "Allocation entries actually pushed after delta filtering."),
		deltaApplied:   m.Counter(MetricDeltaApplied, "Reschedules served by the incremental delta path."),
		deltaFallback:  m.Counter(MetricDeltaFallback, "Delta-eligible reschedules that fell back to a full Schedule."),
		coalesced:      m.Counter(MetricCoalescedEvents, "Flow events deferred into a coalescing batch."),
		batches:        m.Counter(MetricCoalesceBatches, "Coalesced batches drained into one reschedule."),
		reschedErrors:  m.Counter(MetricRescheduleErrors, "Reschedule attempts that returned an error."),
		schedRecovered: m.Counter(MetricSchedRecoveries, "Transitions from degraded scheduling back to the primary pass."),
		shedJobs:       m.Counter(MetricShedSubmissions, "Job submissions shed above the inbound high-water mark."),
		sendOverflow:   m.Counter(MetricSendOverflow, "Sessions torn down because their outbound buffer overflowed."),
		inboundDepth:   m.Gauge(MetricInboundDepth, "Inbound agent events queued or in flight across all sessions."),
		journalBroken:  m.Gauge(MetricJournalBroken, "1 while the write-ahead journal is latched broken (fail-fast)."),
		softQuar:       m.Counter(MetricSoftQuarantines, "Agents soft-quarantined for straggling heartbeat RTT."),
		softRelease:    m.Counter(MetricSoftReleases, "Soft-quarantined agents released after RTT recovery."),
	}
	c.tel.totalTard.Set(0)
	if c.queue != nil {
		c.initJobTelemetry()
	}
	return c, nil
}

// event appends a lifecycle event unless logging is off or the journal is
// replaying (replay re-executes recorded history; re-emitting it would
// duplicate the original run's events).
func (c *Coordinator) event(e telemetry.Event) {
	if c.opts.Events == nil || c.replaying {
		return
	}
	c.opts.Events.Append(e)
}

// setGroupTardinessLocked refreshes a group's tardiness gauges and the Eq. 4
// total. The weighted per-group gauges sum (in sorted-ID order, matching
// TotalTardiness) to the total gauge.
func (c *Coordinator) setGroupTardinessLocked(g *groupRT) {
	if c.opts.Metrics == nil {
		return
	}
	gid := g.state.Group.ID
	tard := float64(g.state.AchievedTardiness)
	c.opts.Metrics.Gauge(MetricGroupTardiness, "Achieved tardiness per group.", "group", gid).Set(tard)
	c.opts.Metrics.Gauge(MetricGroupWeightedTardiness, "Weight x achieved tardiness per group (summand of Eq. 4).",
		"group", gid).Set(g.state.Group.EffectiveWeight() * tard)
	c.tel.totalTard.Set(float64(c.totalTardinessLocked()))
}

// dropGroupMetricsLocked removes a departed group's gauges.
func (c *Coordinator) dropGroupMetricsLocked(gid string) {
	if c.opts.Metrics == nil {
		return
	}
	c.opts.Metrics.Delete(MetricGroupTardiness, "group", gid)
	c.opts.Metrics.Delete(MetricGroupWeightedTardiness, "group", gid)
	c.tel.totalTard.Set(float64(c.totalTardinessLocked()))
}

// now converts wall time to scheduler time (seconds since start).
func (c *Coordinator) now() unit.Time {
	return unit.Time(c.opts.Clock().Sub(c.start).Seconds())
}

// Reschedules reports how many scheduling decisions have been made.
func (c *Coordinator) Reschedules() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reschedules
}

// RegisterGroup records an EchelonFlow on behalf of an owner (an agent name
// or an in-process caller). Flow endpoints must exist in the fabric model.
// Registering a group the same owner already holds is an error — unless the
// group is parked, in which case the registration adopts the surviving
// state (a rejoin).
func (c *Coordinator) RegisterGroup(owner string, g *core.EchelonFlow) error {
	return c.register(owner, g, false)
}

// register implements RegisterGroup. With adoptLive set (the wire path), a
// same-owner duplicate of a live group is a no-op rather than an error: a
// reconnecting agent re-announces groups the coordinator still holds.
func (c *Coordinator) register(owner string, g *core.EchelonFlow, adoptLive bool) error {
	for _, f := range g.Flows {
		if c.opts.Net.Host(f.Src) == nil || c.opts.Net.Host(f.Dst) == nil {
			return fmt.Errorf("coordinator: flow %q references host missing from fabric model", f.ID)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, dup := c.groups[g.ID]; dup {
		if existing.owner != owner || (!existing.parked && !adoptLive) {
			return fmt.Errorf("coordinator: group %q already registered", g.ID)
		}
		// A rejoining agent re-registers its groups. Adopt the surviving
		// state — released/finished flags, remaining bytes, reference time
		// and achieved tardiness all carry over — instead of erroring.
		if existing.parked {
			c.flushCoalescedLocked()
			existing.parked = false
			c.advanceLocked()
			c.appendJournalLocked(journalEvent{Kind: jRevive, At: c.lastAdvance, Groups: []string{g.ID}})
			if _, err := c.rescheduleLocked(); err != nil {
				// Scheduling the revived group failed. Returning nil here
				// would tell the agent its rejoin succeeded while it holds a
				// stale allocation the scheduler never re-validated — so
				// re-park the group (journaled, so replay re-parks it after
				// its own failed reschedule) and surface the error.
				c.parkLocked([]string{g.ID}, owner, "rejoin reschedule failed")
				return fmt.Errorf("coordinator: reschedule after %q rejoined: %w", g.ID, err)
			}
		}
		return nil
	}
	if err := c.addGroupLocked(owner, g); err != nil {
		return err
	}
	if c.journal != nil {
		if reg, err := wire.RegisterOf(g); err != nil {
			c.opts.Logf("coordinator: journal: cannot serialize group %q: %v", g.ID, err)
		} else {
			c.appendJournalLocked(journalEvent{Kind: jRegister, At: c.now(), Owner: owner, Register: &reg})
		}
	}
	return nil
}

// addGroupLocked installs a fresh group's runtime state. It is the shared
// tail of RegisterGroup and journal replay; duplicates are an error.
func (c *Coordinator) addGroupLocked(owner string, g *core.EchelonFlow) error {
	if _, dup := c.groups[g.ID]; dup {
		return fmt.Errorf("coordinator: group %q already registered", g.ID)
	}
	rt := &groupRT{
		state: &sched.GroupState{Group: g},
		flows: make(map[string]*flowRT, len(g.Flows)),
		owner: owner,
	}
	for _, f := range g.Flows {
		rt.flows[f.ID] = &flowRT{flow: f, remaining: f.Size}
	}
	c.groups[g.ID] = rt
	c.setGroupTardinessLocked(rt)
	c.event(telemetry.Event{Kind: telemetry.EventRegister, At: float64(c.now()),
		Group: g.ID, Agent: owner})
	return nil
}

// UnregisterGroup removes an EchelonFlow (job departure) and reallocates.
func (c *Coordinator) UnregisterGroup(groupID string) (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[groupID]; !ok {
		return nil, fmt.Errorf("coordinator: unknown group %q", groupID)
	}
	c.flushCoalescedLocked()
	c.advanceLocked()
	c.detachGroupFromJobLocked(groupID)
	delete(c.groups, groupID)
	c.cache.InvalidateGroup(groupID)
	c.dropGroupMetricsLocked(groupID)
	c.event(telemetry.Event{Kind: telemetry.EventUnregister, At: float64(c.lastAdvance), Group: groupID})
	c.appendJournalLocked(journalEvent{Kind: jUnregister, At: c.lastAdvance, Groups: []string{groupID}})
	return c.rescheduleDeltaLocked([]string{groupID})
}

// FlowEvent applies a lifecycle transition and returns the fresh allocation.
// With coalescing enabled the mutation is applied and journaled immediately
// but the reschedule is deferred into the open batch and the returned map is
// nil — the allocation in force is unchanged, and assembling it per event
// would cost O(all flows) on the hot path (Drain reports it on demand).
func (c *Coordinator) FlowEvent(ev wire.FlowEvent) (map[string]unit.Rate, error) {
	return c.flowEvent(ev, false)
}

// softCoalesceWindow is the batching window forced on events that must be
// deadline-bounded (soft-quarantined stragglers, degraded scheduling) when no
// Coalesce window is configured.
const softCoalesceWindow = 50 * time.Millisecond

// coalesceWindowLocked picks the batching window for one flow event. The
// configured window widens 4x while the scheduler is degraded (one of the
// overload levers: drain event storms into fewer passes); a soft-quarantined
// straggler's reports — and any event during a degraded episode — are batched
// even when coalescing is otherwise off. Zero means reschedule immediately.
func (c *Coordinator) coalesceWindowLocked(soft bool) time.Duration {
	win := c.opts.Coalesce
	if win > 0 && c.degraded {
		win *= 4
	}
	if win == 0 && (soft || c.degraded) {
		win = softCoalesceWindow
	}
	return win
}

// flowEvent is FlowEvent with the session's soft-quarantine flag plumbed in.
func (c *Coordinator) flowEvent(ev wire.FlowEvent, soft bool) (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[ev.GroupID]; !ok {
		return nil, fmt.Errorf("coordinator: unknown group %q", ev.GroupID)
	}
	c.advanceLocked()
	now := c.now()
	if err := c.applyFlowLocked(ev, now); err != nil {
		return nil, err
	}
	if win := c.coalesceWindowLocked(soft); win > 0 {
		c.appendJournalLocked(journalEvent{Kind: jFlow, At: now, Flow: &ev, Defer: true})
		c.cache.InvalidateGroup(ev.GroupID)
		c.deferRescheduleLocked(ev.GroupID, win)
		c.maybeDepartJobLocked(ev)
		return nil, nil
	}
	c.appendJournalLocked(journalEvent{Kind: jFlow, At: now, Flow: &ev})
	c.cache.InvalidateGroup(ev.GroupID) // the group's released flow set changed
	rates, err := c.rescheduleDeltaLocked([]string{ev.GroupID})
	if err != nil {
		return nil, err
	}
	c.maybeDepartJobLocked(ev)
	return rates, nil
}

// maybeDepartJobLocked is the live departure decision: the finish that
// emptied a queue-admitted job's unfinished-flow count completes the job.
// Replay never decides — it applies the recorded job-departed record.
func (c *Coordinator) maybeDepartJobLocked(ev wire.FlowEvent) {
	if c.queue == nil || c.replaying || ev.Event != wire.EventFinished {
		return
	}
	jobID, ok := c.groupJob[ev.GroupID]
	if !ok || c.jobFlowsLeft[jobID] > 0 {
		return
	}
	c.departJobLocked(jobID)
}

// deferRescheduleLocked adds a group to the open coalescing batch, opening
// one (and arming its drain timer for the given window) when none is.
func (c *Coordinator) deferRescheduleLocked(gid string, win time.Duration) {
	if c.pending == nil {
		c.pending = make(map[string]bool)
		c.pendingGen++
		gen := c.pendingGen
		time.AfterFunc(win, func() { c.drainBatch(gen) })
	}
	c.pending[gid] = true
	c.tel.coalesced.Inc()
}

// drainBatch is the coalescing window's timer callback.
func (c *Coordinator) drainBatch(gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil || c.pendingGen != gen {
		return // already flushed by a non-coalescible event
	}
	c.flushCoalescedLocked()
}

// flushCoalescedLocked drains the open batch (if any) into one reschedule.
// The batch boundary is journaled — a resched record carrying the batch's
// sorted groups — so Restore replays the exact same batches and stays
// bit-for-bit. Every non-coalescible mutation (capacity change, unregister,
// tick, park/revive/evict, rejoin) flushes before acting, keeping the
// journal order equal to the live decision order.
func (c *Coordinator) flushCoalescedLocked() (map[string]unit.Rate, error) {
	if c.pending == nil {
		return nil, nil
	}
	gids := make([]string, 0, len(c.pending))
	for gid := range c.pending {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	c.pending = nil
	c.pendingGen++
	c.advanceLocked()
	c.flushing = true
	c.appendJournalLocked(journalEvent{Kind: jResched, At: c.lastAdvance, Groups: gids})
	c.tel.batches.Inc()
	rates, err := c.rescheduleDeltaLocked(gids)
	c.flushing = false
	if err != nil {
		c.opts.Logf("coordinator: coalesced reschedule (%d groups): %v", len(gids), err)
	}
	// Compaction deferred during the batch (and during the flush itself) runs
	// now, at a boundary where state and journal agree.
	if c.journal != nil && c.opts.SnapshotEvery > 0 && c.journalEvents >= c.opts.SnapshotEvery {
		c.snapshotLocked()
	}
	return rates, err
}

// Drain forces any open coalescing batch to reschedule immediately. With no
// batch open it returns the allocation currently in force. Tests and
// shutdown paths use it to avoid waiting out the window.
func (c *Coordinator) Drain() (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil {
		return c.currentRatesLocked(), nil
	}
	return c.flushCoalescedLocked()
}

// currentRatesLocked returns the committed allocation still in force for
// every active flow — what callers observe while a batch is open.
func (c *Coordinator) currentRatesLocked() map[string]unit.Rate {
	rates := make(map[string]unit.Rate)
	for _, g := range c.groups {
		if g.parked {
			continue
		}
		for id, f := range g.flows {
			if f.released && !f.finished {
				rates[id] = f.rate
			}
		}
	}
	return rates
}

// applyFlowLocked mutates flow state for one lifecycle event at the given
// scheduler time. FlowEvent calls it live; journal replay calls it with the
// recorded event time so tardiness arithmetic reproduces exactly.
func (c *Coordinator) applyFlowLocked(ev wire.FlowEvent, now unit.Time) error {
	g, ok := c.groups[ev.GroupID]
	if !ok {
		return fmt.Errorf("coordinator: unknown group %q", ev.GroupID)
	}
	f, ok := g.flows[ev.FlowID]
	if !ok {
		return fmt.Errorf("coordinator: group %q has no flow %q", ev.GroupID, ev.FlowID)
	}
	switch ev.Event {
	case wire.EventReleased:
		if f.released {
			return fmt.Errorf("coordinator: flow %q released twice", ev.FlowID)
		}
		f.released = true
		f.release = now
		if !g.refSet {
			g.refSet = true
			g.state.Reference = now
		}
		c.event(telemetry.Event{Kind: telemetry.EventRelease, At: float64(now),
			Group: ev.GroupID, Flow: ev.FlowID})
	case wire.EventFinished:
		if f.finished {
			return fmt.Errorf("coordinator: flow %q finished twice", ev.FlowID)
		}
		if !f.released {
			return fmt.Errorf("coordinator: flow %q finished before release", ev.FlowID)
		}
		f.finished = true
		f.remaining = 0
		// Job-owned groups track completion; replay maintains the counter the
		// same way, with the departure decision carried by the journal.
		if jobID, owned := c.groupJob[ev.GroupID]; owned {
			c.jobFlowsLeft[jobID]--
		}
		deadline := g.state.Group.Arrangement.Deadline(f.flow.Stage, g.state.Reference)
		tard := now - deadline
		if tard > g.state.AchievedTardiness {
			g.state.AchievedTardiness = tard
		}
		c.setGroupTardinessLocked(g)
		c.event(telemetry.Event{Kind: telemetry.EventFinish, At: float64(now),
			Group: ev.GroupID, Flow: ev.FlowID, Tardiness: float64(tard)})
	case wire.EventResumed:
		// A rejoined agent continues an in-flight transfer: Offset bytes
		// are already delivered, so scheduling resumes from the remainder.
		// Idempotent on released — the original release survived the park.
		if f.finished {
			return fmt.Errorf("coordinator: flow %q resumed after finish", ev.FlowID)
		}
		if ev.Offset > f.flow.Size {
			return fmt.Errorf("coordinator: flow %q resumed past its size (%v > %v)",
				ev.FlowID, ev.Offset, f.flow.Size)
		}
		if !f.released {
			f.released = true
			f.release = now
			if !g.refSet {
				g.refSet = true
				g.state.Reference = now
			}
		}
		f.remaining = f.flow.Size - ev.Offset
		if c.opts.Events != nil && !c.replaying {
			c.event(telemetry.Event{Kind: telemetry.EventResume, At: float64(now),
				Group: ev.GroupID, Flow: ev.FlowID,
				Detail: fmt.Sprintf("offset %v of %v", ev.Offset, f.flow.Size)})
		}
	default:
		return fmt.Errorf("coordinator: unknown event %q", ev.Event)
	}
	return nil
}

// Tick advances the fluid model and reallocates; Serve calls it on the
// configured interval, and tests may call it directly.
func (c *Coordinator) Tick() (map[string]unit.Rate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushCoalescedLocked()
	c.advanceLocked()
	return c.rescheduleLocked()
}

// GroupStatus reports a group's reference time and achieved tardiness.
func (c *Coordinator) GroupStatus(groupID string) (reference, tardiness unit.Time, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	if !ok {
		return 0, 0, fmt.Errorf("coordinator: unknown group %q", groupID)
	}
	return g.state.Reference, g.state.AchievedTardiness, nil
}

// advanceLocked integrates estimated progress since the last event.
func (c *Coordinator) advanceLocked() { c.advanceToLocked(c.now()) }

// advanceToLocked integrates up to an explicit time — journal replay drives
// it with recorded event times instead of the live clock.
func (c *Coordinator) advanceToLocked(now unit.Time) {
	dt := now - c.lastAdvance
	if dt <= 0 {
		return
	}
	c.lastAdvance = now
	for _, g := range c.groups {
		for _, f := range g.flows {
			if f.released && !f.finished {
				f.remaining -= f.rate.Over(dt)
				if f.remaining < 0 {
					f.remaining = 0
				}
			}
		}
	}
}

// buildSnapshotLocked assembles the scheduling input at the current model
// time. Assembly is deterministic — groups in sorted ID order, flows in
// their group's arrangement order — because fill arithmetic is
// order-sensitive at the last bit: map-order iteration would make two
// identical coordinators disagree in the final ulp of each rate, which the
// differential harness (internal/check) flags against the journal replay's
// bit-equality guarantee.
func (c *Coordinator) buildSnapshotLocked() *sched.Snapshot {
	snap := &sched.Snapshot{Now: c.now(), Groups: make(map[string]*sched.GroupState, len(c.groups))}
	gids := make([]string, 0, len(c.groups))
	for gid := range c.groups {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	for _, gid := range gids {
		g := c.groups[gid]
		if g.parked {
			continue
		}
		snap.Groups[gid] = g.state
		for _, member := range g.state.Group.Flows {
			f := g.flows[member.ID]
			if !f.released || f.finished {
				continue
			}
			remaining := f.remaining
			if remaining <= 0 {
				// The agent hasn't reported completion, so the flow is
				// still real; keep a floor so it retains bandwidth. The
				// floor engages only when the fluid estimate drains to
				// zero: a sub-byte flow schedules at its true remaining,
				// keeping live passes bit-equal to the simulator's.
				remaining = 1
				if f.flow.Size > 0 && f.flow.Size < 1 {
					remaining = f.flow.Size
				}
			}
			snap.Flows = append(snap.Flows, &sched.FlowState{
				Flow: f.flow, GroupID: gid, Remaining: remaining, Release: f.release,
			})
		}
	}
	return snap
}

// rescheduleLocked runs a full Schedule over active flows and stores the new
// rates. The returned map covers every active flow.
func (c *Coordinator) rescheduleLocked() (map[string]unit.Rate, error) {
	return c.rescheduleSnapLocked(nil)
}

// rescheduleDeltaLocked reschedules after an event whose effect is confined
// to the given groups, preferring the scheduler's incremental Apply and
// falling back to a full Schedule when the patch is refused.
func (c *Coordinator) rescheduleDeltaLocked(gids []string) (map[string]unit.Rate, error) {
	return c.rescheduleSnapLocked(gids)
}

func (c *Coordinator) rescheduleSnapLocked(deltaGroups []string) (map[string]unit.Rate, error) {
	t0 := time.Now()
	snap := c.buildSnapshotLocked()
	var rates map[string]unit.Rate
	var err error
	usedDelta := false
	if deltaGroups != nil && c.delta != nil {
		var ok bool
		rates, ok, err = c.delta.Apply(snap, c.opts.Net, sched.Delta{Groups: deltaGroups})
		if err == nil && ok {
			usedDelta = true
			c.tel.deltaApplied.Inc()
		} else {
			// Any refusal (or Apply error) falls back to the full pass,
			// which also rebuilds the incremental state.
			c.tel.deltaFallback.Inc()
			rates, err = nil, nil
		}
	}
	if !usedDelta {
		rates, err = c.opts.Scheduler.Schedule(snap, c.opts.Net)
	}
	c.noteDegradeLocked(snap.Now)
	if err != nil {
		c.tel.reschedErrors.Inc()
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	c.reschedules++
	for _, fs := range snap.Flows {
		c.groups[fs.GroupID].flows[fs.Flow.ID].rate = rates[fs.Flow.ID]
	}
	c.broadcastLocked(rates)
	if c.opts.Metrics != nil {
		c.tel.reschedules.Inc()
		c.tel.rescheduleLat.Observe(time.Since(t0).Seconds())
		c.tel.flowsActive.Set(float64(len(snap.Flows)))
		parked := 0
		for _, g := range c.groups {
			if g.parked {
				parked++
			}
		}
		c.tel.groupsLive.Set(float64(len(c.groups)))
		c.tel.groupsParked.Set(float64(parked))
	}
	if c.opts.Events != nil && !c.replaying {
		c.event(telemetry.Event{Kind: telemetry.EventResched, At: float64(snap.Now),
			Detail: fmt.Sprintf("%d flows across %d groups", len(snap.Flows), len(snap.Groups))})
	}
	return rates, nil
}

// noteDegradeLocked reconciles the coordinator's view of the scheduler's
// degrade regime after a pass: per-reason counters on every degraded pass,
// plus exactly one event/log line per transition in either direction. Replay
// runs the wrapper bypassed and must not narrate.
func (c *Coordinator) noteDegradeLocked(at unit.Time) {
	if c.degrade == nil || c.replaying {
		return
	}
	out := c.degrade.LastDegrade()
	if out.Degraded {
		if c.opts.Metrics != nil {
			c.opts.Metrics.Counter(MetricSchedDegraded,
				"Scheduling passes served by the fallback scheduler.", "reason", out.Reason).Inc()
		}
		if !c.degraded {
			c.degraded = true
			c.event(telemetry.Event{Kind: telemetry.EventDegrade, At: float64(at),
				Detail: fmt.Sprintf("%s after %v; fallback allocations in force", out.Reason, out.Elapsed)})
			c.opts.Logf("coordinator: scheduler degraded (%s after %v); falling back to max-min fair", out.Reason, out.Elapsed)
		}
		return
	}
	if c.degraded {
		c.degraded = false
		c.tel.schedRecovered.Inc()
		c.event(telemetry.Event{Kind: telemetry.EventRecover, At: float64(at),
			Detail: fmt.Sprintf("primary pass completed in %v", out.Elapsed)})
		c.opts.Logf("coordinator: scheduler recovered; primary pass back in force")
	}
}

// SchedDegraded reports whether the last scheduling pass fell back (or the
// breaker is open). Always false without a configured SchedDeadline.
func (c *Coordinator) SchedDegraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// broadcastLocked pushes an allocation to every connected session. Only
// entries that changed since the session's last push are sent — the paper's
// §5 scalability lever: DDLT's iterative nature means most reschedules
// change few rates, so deltas keep the control plane small.
func (c *Coordinator) broadcastLocked(rates map[string]unit.Rate) {
	if len(c.sessions) == 0 {
		return
	}
	for s := range c.sessions {
		delta := make(map[string]unit.Rate)
		for id, r := range rates {
			if prev, ok := s.sent[id]; !ok || prev != r {
				delta[id] = r
			}
		}
		// Flows absent from the new allocation are finished; drop them
		// from the session's view so a reused ID is re-sent later.
		for id := range s.sent {
			if _, ok := rates[id]; !ok {
				delete(s.sent, id)
			}
		}
		c.ratesTotal += len(rates)
		c.tel.ratesComputed.Add(uint64(len(rates)))
		if len(delta) == 0 {
			continue
		}
		c.ratesPushed += len(delta)
		c.tel.ratesPushed.Add(uint64(len(delta)))
		if err := s.sendAllocation(delta); err != nil {
			if errors.Is(err, errSendBufferFull) {
				// Conflation already absorbed any allocation burst, so a
				// full queue here means the writer is not draining at all:
				// the agent's socket is stalled behind non-conflatable
				// traffic. Keeping the session would silently diverge its
				// allocation view; close the conn so teardown parks its
				// groups and the agent resyncs on redial.
				c.sendOverflowLocked(s)
			}
			c.opts.Logf("coordinator: push to %s failed: %v", s.agent, err)
			continue
		}
		for id, r := range delta {
			s.sent[id] = r
		}
		if c.opts.Events != nil && !c.replaying {
			c.event(telemetry.Event{Kind: telemetry.EventAlloc, At: float64(c.lastAdvance), Agent: s.agent,
				Detail: fmt.Sprintf("%d/%d entries after delta filtering", len(delta), len(rates))})
		}
	}
}

// PushStats reports how many allocation entries were computed versus
// actually pushed after delta filtering.
func (c *Coordinator) PushStats() (computed, pushed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ratesTotal, c.ratesPushed
}

// sendOverflowLocked records a send-buffer overflow and closes the
// session's conn so teardown runs through the usual reader path. Callers
// hold c.mu.
func (c *Coordinator) sendOverflowLocked(s *session) {
	c.tel.sendOverflow.Inc()
	c.event(telemetry.Event{Kind: telemetry.EventSendOverflow, At: float64(c.lastAdvance),
		Agent: s.agent, Detail: "outbound buffer full; closing session"})
	s.conn.Close()
}

// session is one connected agent.
type session struct {
	codec   *wire.Codec
	agent   string
	conn    net.Conn
	version int                  // protocol version from the hello
	sent    map[string]unit.Rate // last rates pushed to this session
	// lastPush is the wall time (unix nanos) of the most recent outbound
	// send the kernel accepted. The read loop consults it before declaring
	// a silent agent dead: a peer we are actively and successfully pushing
	// to is alive even when its own traffic has stalled. (Observed on
	// loopback under heavy one-directional load: an idle client's small
	// writes can sit out a whole read-deadline window while its kernel
	// keeps acking our pushes.)
	lastPush atomic.Int64
	// superseded marks a session taken over by a reconnect under the same
	// agent name: its teardown must not park or evict the groups the new
	// session has adopted.
	superseded bool

	// out feeds the session's writer goroutine; quit stops it. Enqueueing
	// never blocks: a full buffer (a socket the writer cannot drain into)
	// fails the send instead of wedging the caller, which holds c.mu on the
	// broadcast path.
	out      chan wire.Message
	quit     chan struct{}
	quitOnce sync.Once

	// pendingAlloc conflates allocation pushes. Rates are convergent state —
	// only the latest value per flow matters — so at most one allocation
	// frame occupies the out queue at a time (a nil-Allocation placeholder)
	// and later deltas merge into the pending map until the writer picks it
	// up. Without this, a burst of flow events can outrun the writer's
	// syscall rate and overflow the queue on a perfectly healthy socket.
	// Guarded by allocMu (never held across a lock of c.mu).
	allocMu      sync.Mutex
	pendingAlloc map[string]unit.Rate

	// stall is the injected per-message outbound delay in nanos, the
	// faults.AgentStall chaos hook. soft flags a straggling agent whose
	// heartbeat RTT EWMA crossed the quarantine threshold.
	stall atomic.Int64
	soft  atomic.Bool

	// RTT ping state, guarded by the coordinator's mu: outstanding nonces
	// with their send times, and the smoothed round-trip estimate in seconds.
	pings   map[uint64]time.Time
	rttEWMA float64
}

// errSendBufferFull reports an outbound queue that the session's writer is
// not draining — a stalled or dead agent socket.
var errSendBufferFull = errors.New("session outbound buffer full")

// send enqueues one message for the session's writer. All post-handshake
// sends go through here; delivery (and the lastPush liveness stamp) happens
// on the writer goroutine, so a stalled socket can never block the caller.
func (s *session) send(m wire.Message) error {
	select {
	case <-s.quit:
		return errors.New("session closed")
	default:
	}
	select {
	case s.out <- m:
		return nil
	default:
		return errSendBufferFull
	}
}

// sendAllocation enqueues a rate delta, conflating with any allocation
// still waiting for the writer. Returns errSendBufferFull only when the out
// queue cannot absorb even the single placeholder frame — i.e. it is full
// of non-conflatable traffic the writer is not draining.
func (s *session) sendAllocation(delta map[string]unit.Rate) error {
	s.allocMu.Lock()
	if s.pendingAlloc != nil {
		for id, r := range delta {
			s.pendingAlloc[id] = r
		}
		s.allocMu.Unlock()
		return nil
	}
	pending := make(map[string]unit.Rate, len(delta))
	for id, r := range delta {
		pending[id] = r
	}
	s.pendingAlloc = pending
	s.allocMu.Unlock()
	if err := s.send(wire.Message{Type: wire.TypeAllocation}); err != nil {
		s.allocMu.Lock()
		s.pendingAlloc = nil
		s.allocMu.Unlock()
		return err
	}
	return nil
}

// close stops the writer goroutine; safe to call more than once, and on a
// session that never got a writer (tests drive dropSession directly).
func (s *session) close() {
	s.quitOnce.Do(func() {
		if s.quit != nil {
			close(s.quit)
		}
	})
}

// writeLoop drains the outbound queue onto the socket, each frame under a
// write deadline. A write failure (including a deadline expiry on a wedged
// socket) closes the connection, which unblocks the session's read loop and
// tears the session down through the usual path.
func (s *session) writeLoop(c *Coordinator) {
	for {
		select {
		case <-s.quit:
			return
		case m := <-s.out:
			if d := s.stall.Load(); d > 0 {
				t := time.NewTimer(time.Duration(d))
				select {
				case <-s.quit:
					t.Stop()
					return
				case <-t.C:
				}
			}
			if m.Type == wire.TypeAllocation && m.Allocation == nil {
				// Placeholder from sendAllocation: take whatever has
				// conflated since it was queued. Resolving after the
				// injected stall widens the merge window, matching a
				// genuinely slow socket.
				s.allocMu.Lock()
				rates := s.pendingAlloc
				s.pendingAlloc = nil
				s.allocMu.Unlock()
				if len(rates) == 0 {
					continue
				}
				m.Allocation = &wire.Allocation{Rates: rates}
			}
			if wt := c.opts.WriteTimeout; wt > 0 {
				_ = s.conn.SetWriteDeadline(time.Now().Add(wt))
			}
			if err := s.codec.Send(m); err != nil {
				c.opts.Logf("coordinator: write to agent %s failed: %v", s.agent, err)
				s.conn.Close()
				return
			}
			s.lastPush.Store(time.Now().UnixNano())
		}
	}
}

// Serve accepts agent connections until the context is cancelled or the
// listener fails. It owns the listener and closes it on return.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()
	var wg sync.WaitGroup
	defer wg.Wait()

	if c.opts.Interval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(c.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if _, err := c.Tick(); err != nil {
						c.opts.Logf("coordinator: tick: %v", err)
					}
				}
			}
		}()
	}

	if c.opts.StragglerRTT > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			iv := c.opts.PingInterval
			if iv <= 0 {
				iv = time.Second
			}
			t := time.NewTicker(iv)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					c.pingSessions()
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handleConn(ctx, conn)
		}()
	}
}

// handleConn runs one agent session to completion. Three goroutines serve
// it: this reader (framed Recv under the session read deadline), a worker
// draining the bounded inbound queue into handleMessage, and a writer
// draining the bounded outbound queue under write deadlines. The reader
// blocking on a full inbound queue is the backpressure: the kernel stops
// acking and the storming agent's own sends stall, while every other
// session keeps being served.
func (c *Coordinator) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	s := &session{codec: wire.NewCodec(conn), conn: conn, sent: make(map[string]unit.Rate),
		out: make(chan wire.Message, c.opts.SendBuffer), quit: make(chan struct{})}

	hello, err := s.codec.Recv()
	if err != nil || hello.Type != wire.TypeHello {
		c.opts.Logf("coordinator: bad handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	if v := hello.Hello.Version; v > wire.ProtocolVersion {
		c.opts.Logf("coordinator: agent %s speaks protocol %d, max %d", hello.Hello.Agent, v, wire.ProtocolVersion)
		_ = s.codec.Send(wire.Message{Type: wire.TypeError, Error: &wire.Error{
			Msg: fmt.Sprintf("unsupported protocol version %d (max %d)", v, wire.ProtocolVersion)}})
		return
	}
	s.agent = hello.Hello.Agent
	s.version = hello.Hello.Version
	if s.version >= 4 {
		// The peer decodes both framings; from here every push to it uses
		// the zero-alloc binary framing. Receive needs no switch (frames
		// self-describe), so v3 JSON agents coexist on the same listener.
		s.codec.EnableBinary()
	}
	if !c.admitRedial(s.agent) {
		c.opts.Logf("coordinator: agent %s redialing too fast, rejected", s.agent)
		c.tel.redialRejected.Inc()
		c.opts.Events.Append(telemetry.Event{Kind: telemetry.EventRedialRej,
			At: float64(c.now()), Agent: s.agent, Detail: "redial rate exceeded"})
		_ = s.codec.Send(wire.Message{Type: wire.TypeError, Error: &wire.Error{Msg: "redial rate exceeded"}})
		return
	}
	c.tel.redialAccepted.Inc()
	c.opts.Events.Append(telemetry.Event{Kind: telemetry.EventRedialOK,
		At: float64(c.now()), Agent: s.agent})
	c.adoptSession(s)

	// Teardown order (LIFO): close the inbound queue, wait out the worker,
	// drop the session (parking groups and closing quit), wait out the
	// writer. The writer starts after adoption so revive-triggered pushes
	// land in the (buffered) queue either way.
	wdone := make(chan struct{})
	go func() { defer close(wdone); s.writeLoop(c) }()
	defer func() { <-wdone }()
	defer c.dropSession(s)
	in := make(chan wire.Message, c.opts.InboundQueue)
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for m := range in {
			if err := c.handleMessage(s, m); err != nil {
				c.opts.Logf("coordinator: agent %s: %v", s.agent, err)
				_ = s.send(wire.Message{Type: wire.TypeError, Error: &wire.Error{Msg: err.Error()}})
			}
			c.tel.inboundDepth.Set(float64(c.inboundDepth.Add(-1)))
		}
	}()
	defer func() { <-workerDone }()
	defer close(in)

	for {
		if ctx.Err() != nil {
			return
		}
		if c.opts.SessionTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.opts.SessionTimeout))
		}
		msg, err := s.codec.Recv()
		if err != nil {
			// Recv wraps mid-frame read errors, so unwrap when testing for
			// a deadline timeout.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Inbound silence alone does not prove a dead agent. If our
				// own pushes to this session were accepted within the window,
				// the connection is demonstrably alive — re-arm the deadline
				// instead of evicting. Safe even when the timeout struck
				// mid-frame: Recv resumes partial decodes.
				last := s.lastPush.Load()
				if last != 0 && time.Since(time.Unix(0, last)) < c.opts.SessionTimeout {
					c.opts.Logf("coordinator: agent %s silent for %v but outbound pushes are live; keeping session", s.agent, c.opts.SessionTimeout)
					continue
				}
				c.opts.Logf("coordinator: agent %s timed out (no heartbeat)", s.agent)
			} else if err != io.EOF {
				// EOF is a clean hangup; anything else is worth a trace.
				c.opts.Logf("coordinator: agent %s disconnected: %v", s.agent, err)
			}
			return
		}
		c.tel.inboundDepth.Set(float64(c.inboundDepth.Add(1)))
		select {
		case in <- msg:
		case <-s.quit:
			c.inboundDepth.Add(-1)
			return
		}
	}
}

func (c *Coordinator) handleMessage(s *session, msg wire.Message) error {
	switch msg.Type {
	case wire.TypeHeartbeat:
		if msg.Heartbeat != nil && msg.Heartbeat.Nonce != 0 {
			// The agent echoed one of our RTT pings (wire v3). Fold the
			// round trip into the straggler detector — and do not echo
			// back, which would ping-pong forever.
			c.notePingEcho(s, msg.Heartbeat.Nonce)
			return nil
		}
		// Echo so the agent can measure round-trip time. A send failure here
		// is not an agent protocol error; the Recv loop notices the dead
		// conn on its own.
		_ = s.send(wire.Message{Type: wire.TypeHeartbeat})
		return nil
	case wire.TypeRegister:
		g, err := msg.Register.Group()
		if err != nil {
			return err
		}
		return c.register(s.agent, g, true)
	case wire.TypeUnregister:
		_, err := c.UnregisterGroup(msg.Unregister.GroupID)
		return err
	case wire.TypeFlowEvent:
		_, err := c.flowEvent(*msg.FlowEvent, s.soft.Load())
		return err
	case wire.TypeFlowBatch:
		// Apply in order, exactly as if each event arrived as its own
		// message: a bad event is reported per event and does not abort the
		// rest of the batch. The allocation ack conflates in the writer
		// (pendingAlloc), so the whole batch costs one outbound push.
		for i := range msg.FlowBatch.Events {
			if _, err := c.flowEvent(msg.FlowBatch.Events[i], s.soft.Load()); err != nil {
				c.opts.Logf("coordinator: agent %s: %v", s.agent, err)
				_ = s.send(wire.Message{Type: wire.TypeError, Error: &wire.Error{Msg: err.Error()}})
			}
		}
		return nil
	case wire.TypeSubmitJob:
		if hw := c.opts.ShedHighWater; hw > 0 && c.inboundDepth.Load() > int64(hw) {
			// Overload: refuse new work with the coded throttled error so
			// the backlog of already-admitted events drains first. The
			// session survives; the submitter backs off and retries.
			c.tel.shedJobs.Inc()
			c.event(telemetry.Event{Kind: telemetry.EventShed, At: float64(c.now()), Agent: s.agent,
				Detail: fmt.Sprintf("inbound depth %d above high water %d", c.inboundDepth.Load(), hw)})
			_ = s.send(wire.Message{Type: wire.TypeError, Error: &wire.Error{
				Msg: "coordinator overloaded: job submission shed", Code: wire.ErrCodeThrottled}})
			return nil
		}
		if err := c.SubmitJob(s.agent, msg.SubmitJob.Job); err != nil {
			// Submission refusals are typed wire errors, not protocol
			// failures: the session survives and the agent can retry or fix
			// the spec.
			_ = s.send(wire.Message{Type: wire.TypeError,
				Error: &wire.Error{Msg: err.Error(), Code: submitErrCode(err)}})
		}
		return nil
	default:
		return fmt.Errorf("unexpected message type %q", msg.Type)
	}
}

// maxOutstandingPings caps the per-session nonce table; a session that has
// stopped echoing entirely is judged on the age of its oldest ping instead.
const maxOutstandingPings = 8

// rttAlpha is the EWMA smoothing weight for new RTT observations.
const rttAlpha = 0.3

// pingSessions sends one RTT ping to every wire-v3 session and folds the
// age of long-unanswered pings into the straggler estimate — an agent that
// never echoes must still trip the threshold, not dodge it.
func (c *Coordinator) pingSessions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for s := range c.sessions {
		if s.version < 3 { // nonce'd heartbeats are wire v3
			continue
		}
		var oldest time.Time
		for _, at := range s.pings {
			if oldest.IsZero() || at.Before(oldest) {
				oldest = at
			}
		}
		if !oldest.IsZero() {
			if age := now.Sub(oldest); age > c.opts.StragglerRTT {
				// Censored observation: the true RTT is at least this.
				c.observeRTTLocked(s, age.Seconds())
			}
		}
		if len(s.pings) >= maxOutstandingPings {
			continue
		}
		c.pingNonce++
		n := c.pingNonce
		if s.pings == nil {
			s.pings = make(map[uint64]time.Time)
		}
		s.pings[n] = now
		if err := s.send(wire.Message{Type: wire.TypeHeartbeat, Heartbeat: &wire.Heartbeat{Nonce: n}}); err != nil {
			delete(s.pings, n)
		}
	}
}

// notePingEcho correlates an agent's echo with its outstanding ping and
// updates the straggler estimate.
func (c *Coordinator) notePingEcho(s *session, nonce uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sentAt, ok := s.pings[nonce]
	if !ok {
		return // superseded session's echo, or an unsolicited nonce
	}
	delete(s.pings, nonce)
	rtt := time.Since(sentAt).Seconds()
	if c.opts.Metrics != nil {
		c.opts.Metrics.Histogram(MetricAgentRTT,
			"Coordinator-measured control-plane round-trip time.", "agent", s.agent).Observe(rtt)
	}
	c.observeRTTLocked(s, rtt)
}

// observeRTTLocked folds one RTT sample (seconds) into the session's EWMA
// and flips the soft-quarantine flag across the threshold, with release at
// half of it so a borderline agent does not flap.
func (c *Coordinator) observeRTTLocked(s *session, rtt float64) {
	if s.rttEWMA == 0 {
		s.rttEWMA = rtt
	} else {
		s.rttEWMA = (1-rttAlpha)*s.rttEWMA + rttAlpha*rtt
	}
	thr := c.opts.StragglerRTT.Seconds()
	if thr <= 0 {
		return
	}
	if !s.soft.Load() && s.rttEWMA > thr {
		s.soft.Store(true)
		c.tel.softQuar.Inc()
		c.event(telemetry.Event{Kind: telemetry.EventSoftQuar, At: float64(c.now()), Agent: s.agent,
			Detail: fmt.Sprintf("rtt ewma %.3fs above %.3fs; reports deadline-bounded", s.rttEWMA, thr)})
		c.opts.Logf("coordinator: agent %s soft-quarantined (rtt ewma %.3fs > %.3fs); groups stay scheduled", s.agent, s.rttEWMA, thr)
	} else if s.soft.Load() && s.rttEWMA < thr/2 {
		s.soft.Store(false)
		c.tel.softRelease.Inc()
		c.event(telemetry.Event{Kind: telemetry.EventSoftRelease, At: float64(c.now()), Agent: s.agent,
			Detail: fmt.Sprintf("rtt ewma %.3fs recovered below %.3fs", s.rttEWMA, thr/2)})
		c.opts.Logf("coordinator: agent %s released from soft quarantine (rtt ewma %.3fs)", s.agent, s.rttEWMA)
	}
}

// AgentSoftQuarantined reports whether the named agent's live session is
// soft-quarantined for straggling RTT.
func (c *Coordinator) AgentSoftQuarantined(agent string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byName[agent]
	return s != nil && s.soft.Load()
}

// admitRedial rate-limits reconnects per agent name. A handshake denied
// here never reaches adoptSession, so a flapping agent cannot churn session
// takeover (and the reschedules it triggers) in a tight loop.
func (c *Coordinator) admitRedial(agent string) bool {
	if c.opts.RedialRate <= 0 || agent == "" {
		return true
	}
	c.mu.Lock()
	b := c.limiters[agent]
	if b == nil {
		burst := c.opts.RedialBurst
		if burst <= 0 {
			burst = 1
		}
		var err error
		if b, err = ratelimit.NewBucket(c.opts.RedialRate, burst); err != nil {
			c.mu.Unlock()
			c.opts.Logf("coordinator: redial limiter: %v", err)
			return true
		}
		c.limiters[agent] = b
	}
	c.mu.Unlock()
	return b.Allow(1)
}

// adoptSession installs a freshly-handshaken session. A reconnect under an
// already-connected agent name takes over: the stale session is closed and
// flagged so its teardown leaves the groups alone. Any groups parked from
// the previous incarnation revive with exactly one reschedule.
func (c *Coordinator) adoptSession(s *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.agent != "" {
		if old := c.byName[s.agent]; old != nil {
			old.superseded = true
			delete(c.sessions, old)
			old.conn.Close()
			old.close() // stop its writer promptly; teardown skips superseded sessions
		}
		c.byName[s.agent] = s
	}
	c.sessions[s] = struct{}{}
	var revived []string
	for gid, g := range c.groups {
		if g.owner == s.agent && s.agent != "" && g.parked {
			g.parked = false
			revived = append(revived, gid)
		}
	}
	if len(revived) == 0 {
		return
	}
	c.opts.Logf("coordinator: agent %s rejoined, revived %d quarantined group(s)", s.agent, len(revived))
	c.flushCoalescedLocked()
	c.advanceLocked()
	for _, gid := range revived {
		c.event(telemetry.Event{Kind: telemetry.EventRevive, At: float64(c.lastAdvance),
			Group: gid, Agent: s.agent})
	}
	c.appendJournalLocked(journalEvent{Kind: jRevive, At: c.lastAdvance, Groups: revived})
	if _, err := c.rescheduleLocked(); err != nil {
		c.opts.Logf("coordinator: reschedule after %s rejoined: %v", s.agent, err)
	}
}

// dropSession handles a disconnected agent. With quarantine enabled its
// groups are parked — progress state retained, zero bandwidth — awaiting a
// rejoin; otherwise (or when the quarantine expires) they are evicted.
func (c *Coordinator) dropSession(s *session) {
	s.close() // stop the writer even when superseded
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.superseded {
		return
	}
	delete(c.sessions, s)
	if c.byName[s.agent] == s {
		delete(c.byName, s.agent)
	}
	var orphaned []string
	for gid, g := range c.groups {
		if g.owner == s.agent && s.agent != "" && !g.parked {
			orphaned = append(orphaned, gid)
		}
	}
	if len(orphaned) == 0 {
		return
	}
	c.flushCoalescedLocked()
	c.advanceLocked()
	if c.opts.QuarantineTimeout == 0 {
		c.evictLocked(orphaned, "agent "+s.agent+" departed")
		return
	}
	c.parkLocked(orphaned, s.agent, "")
	c.opts.Logf("coordinator: agent %s died, parked %d group(s) for %v", s.agent, len(orphaned), c.opts.QuarantineTimeout)
	if _, err := c.rescheduleLocked(); err != nil {
		c.opts.Logf("coordinator: reschedule after %s departed: %v", s.agent, err)
	}
}

// parkLocked quarantines groups: progress state retained, zero bandwidth,
// eviction timer armed (when a quarantine window is configured), journaled.
// Shared by session teardown and the rejoin-failure path.
func (c *Coordinator) parkLocked(gids []string, agent, why string) {
	parkedAt := c.opts.Clock()
	for _, gid := range gids {
		g := c.groups[gid]
		g.parked = true
		g.parkGen++
		g.parkedAt = parkedAt
		gen := g.parkGen
		for _, f := range g.flows {
			f.rate = 0 // parked flows make no fluid progress
		}
		if c.opts.QuarantineTimeout > 0 {
			gid := gid
			time.AfterFunc(c.opts.QuarantineTimeout, func() { c.evictIfStillParked(gid, gen) })
		}
		c.event(telemetry.Event{Kind: telemetry.EventPark, At: float64(c.lastAdvance),
			Group: gid, Agent: agent, Detail: why})
	}
	c.appendJournalLocked(journalEvent{Kind: jPark, At: c.lastAdvance, Groups: gids})
}

// evictIfStillParked is the quarantine timer callback: the group is evicted
// only if it is still parked from the same incarnation that armed the timer,
// and only once the quarantine window has elapsed on the configured clock.
func (c *Coordinator) evictIfStillParked(gid string, gen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[gid]
	if !ok || !g.parked || g.parkGen != gen {
		return
	}
	// The wall timer can outrun the injected clock (fake clocks in tests,
	// timer skew in production). Deciding against opts.Clock means a rejoin
	// landing exactly at the quarantine deadline wins: the eviction re-arms
	// for the remainder instead of racing the adoption.
	if left := c.opts.QuarantineTimeout - c.opts.Clock().Sub(g.parkedAt); left > 0 {
		time.AfterFunc(left, func() { c.evictIfStillParked(gid, gen) })
		return
	}
	c.flushCoalescedLocked()
	c.advanceLocked()
	c.evictLocked([]string{gid}, "quarantine expired")
}

// evictLocked removes groups and reallocates once.
func (c *Coordinator) evictLocked(gids []string, why string) {
	for _, gid := range gids {
		c.detachGroupFromJobLocked(gid)
		delete(c.groups, gid)
		c.cache.InvalidateGroup(gid)
		c.dropGroupMetricsLocked(gid)
		c.event(telemetry.Event{Kind: telemetry.EventEvict, At: float64(c.lastAdvance),
			Group: gid, Detail: why})
	}
	c.appendJournalLocked(journalEvent{Kind: jEvict, At: c.lastAdvance, Groups: gids})
	c.opts.Logf("coordinator: evicted %d group(s): %s", len(gids), why)
	if _, err := c.rescheduleLocked(); err != nil {
		c.opts.Logf("coordinator: reschedule after eviction: %v", err)
	}
}

// GroupParked reports whether a group is quarantined (owner session dead,
// awaiting rejoin). Unknown groups report false.
func (c *Coordinator) GroupParked(groupID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[groupID]
	return ok && g.parked
}

// TotalTardiness is Eq. 4's objective over the live system: the weighted
// sum of achieved tardiness across registered groups. A parked group counts
// exactly once — its state object survives the park/rejoin cycle rather
// than being re-created. Groups are summed in sorted ID order: float
// addition is not associative, so map-order summation would make the
// objective differ in the last bit between otherwise identical runs.
func (c *Coordinator) TotalTardiness() unit.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalTardinessLocked()
}

func (c *Coordinator) totalTardinessLocked() unit.Time {
	gids := make([]string, 0, len(c.groups))
	for gid := range c.groups {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	var sum float64
	for _, gid := range gids {
		g := c.groups[gid]
		sum += g.state.Group.EffectiveWeight() * float64(g.state.AchievedTardiness)
	}
	return unit.Time(sum)
}

// SetCapacity rewires a host's port capacities in the fabric model and
// reallocates immediately — the live fault driver's degrade/recover hook.
func (c *Coordinator) SetCapacity(host string, egress, ingress unit.Rate) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushCoalescedLocked()
	c.advanceLocked()
	if c.degrade != nil {
		// An abandoned deadline pass may still be reading the fabric model;
		// wait it out before mutating capacities under it.
		c.degrade.Quiesce()
	}
	if err := c.opts.Net.SetCapacity(host, egress, ingress); err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	c.appendJournalLocked(journalEvent{Kind: jCapacity, At: c.lastAdvance, Host: host, Egress: egress, Ingress: ingress})
	_, err := c.rescheduleLocked()
	return err
}

// SetSchedStall injects d of artificial latency into every scheduling pass —
// the faults.SchedStall live hook. Requires a configured SchedDeadline
// (without one there is no wrapper to stall, and no protection to exercise).
func (c *Coordinator) SetSchedStall(d time.Duration) error {
	if c.degrade == nil {
		return fmt.Errorf("coordinator: no scheduler deadline configured")
	}
	c.degrade.SetStall(d)
	return nil
}

// QuiesceScheduler blocks until no abandoned deadline pass is still in
// flight. Harnesses that need a deterministic end to an injected stall
// episode (the degrade oracle) call it after clearing the stall, so the next
// pass is guaranteed a free slot instead of racing the drain. No-op without
// a configured SchedDeadline.
func (c *Coordinator) QuiesceScheduler() {
	if c.degrade != nil {
		c.degrade.Quiesce()
	}
}

// SetAgentStall delays the named agent's outbound frames by d each — the
// faults.AgentStall live hook. Zero clears.
func (c *Coordinator) SetAgentStall(agent string, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byName[agent]
	if s == nil {
		return fmt.Errorf("coordinator: agent %q has no live session", agent)
	}
	s.stall.Store(int64(d))
	return nil
}

// SetFsyncStall makes every journal append take an extra d — the
// faults.FsyncStall live hook. Zero clears.
func (c *Coordinator) SetFsyncStall(d time.Duration) {
	c.fsyncStall.Store(int64(d))
}

// JournalBroken reports the latched journal failure, if any: after it the
// coordinator keeps serving but stops journaling (fail-fast durability).
func (c *Coordinator) JournalBroken() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	return c.journal.Broken()
}

// Capacity reports a host's current capacities in the fabric model (the
// live fault driver snapshots baselines through this).
func (c *Coordinator) Capacity(host string) (egress, ingress unit.Rate, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opts.Net.Capacity(host)
}

// Close releases the journal, if the coordinator was built with Restore.
// The coordinator stays usable afterwards but stops journaling; call it once
// Serve has returned.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return nil
	}
	err := c.journal.Close()
	c.journal = nil
	return err
}
