package coordinator

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/queue"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/wire"
)

// queueCoordinator builds a coordinator with the job pipeline enabled on a
// four-host fabric.
func queueCoordinator(t *testing.T, clk *fakeClock, qopts queue.Options, mod func(*Options)) *Coordinator {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3", "w4")
	opts := Options{
		Net:       net,
		Scheduler: sched.EchelonMADD{Backfill: true},
		Queue:     queue.New(qopts),
		Clock:     clk.now,
		Logf:      t.Logf,
	}
	if mod != nil {
		mod(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func submitSpec(id string, workers int) wire.JobSpec {
	return wire.JobSpec{ID: id, Tenant: "t0", Paradigm: "dp", Workers: workers,
		Layers: 2, Params: 4, Fwd: 0.1, Bwd: 0.1, Buckets: 1, Iterations: 1, Declared: 1}
}

// driveJob releases and finishes every comm flow of an admitted job, exactly
// as its agent would, using the deterministic compilation on the admitted
// placement.
func driveJob(t *testing.T, c *Coordinator, clk *fakeClock, spec wire.JobSpec, hosts []string) {
	t.Helper()
	w, err := queue.Build(spec, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range w.Graph.Nodes() {
		if n.Kind != dag.Comm {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		if _, err := c.FlowEvent(wire.FlowEvent{GroupID: gid, FlowID: n.ID, Event: wire.EventReleased}); err != nil {
			t.Fatalf("release %s: %v", n.ID, err)
		}
		clk.advance(10 * time.Millisecond)
		if _, err := c.FlowEvent(wire.FlowEvent{GroupID: gid, FlowID: n.ID, Event: wire.EventFinished}); err != nil {
			t.Fatalf("finish %s: %v", n.ID, err)
		}
	}
}

func TestJobPipelineLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := telemetry.NewRegistry()
	c := queueCoordinator(t, clk, queue.Options{}, func(o *Options) { o.Metrics = reg })
	spec := submitSpec("j0", 2)
	if err := c.SubmitJob("a1", spec); err != nil {
		t.Fatal(err)
	}
	status, hosts, ok := c.JobStatus("j0")
	if !ok || status != wire.JobAdmitted || len(hosts) != 2 {
		t.Fatalf("after submit: status=%s hosts=%v ok=%v", status, hosts, ok)
	}
	if pending, running := c.QueueDepth(); pending != 0 || running != 1 {
		t.Fatalf("depth=%d running=%d", pending, running)
	}
	// The job's compiled groups are registered under the submitter.
	gids, err := queue.GroupIDs(spec, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range gids {
		if _, ok := c.groups[gid]; !ok {
			t.Fatalf("admitted group %s not registered", gid)
		}
	}
	driveJob(t, c, clk, spec, hosts)
	if _, _, ok := c.JobStatus("j0"); ok {
		t.Error("job still known after its last flow finished")
	}
	if pending, running := c.QueueDepth(); pending != 0 || running != 0 {
		t.Errorf("after departure: depth=%d running=%d", pending, running)
	}
	for _, gid := range gids {
		if _, ok := c.groups[gid]; ok {
			t.Errorf("group %s survived job departure", gid)
		}
	}
}

func TestJobAdmissionBudget(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := queueCoordinator(t, clk, queue.Options{MaxJobs: 1}, nil)
	if err := c.SubmitJob("a1", submitSpec("j0", 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitJob("a1", submitSpec("j1", 2)); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := c.JobStatus("j1"); status != wire.JobQueued {
		t.Fatalf("second job status = %s, want queued behind MaxJobs", status)
	}
	_, hosts, _ := c.JobStatus("j0")
	driveJob(t, c, clk, submitSpec("j0", 2), hosts)
	// j0's departure freed the slot; j1 admits in the same locked pass.
	if status, _, _ := c.JobStatus("j1"); status != wire.JobAdmitted {
		t.Fatalf("queued job not admitted after departure: %s", status)
	}
}

func TestSubmitJobErrors(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}

	// No queue configured.
	plain := newTestCoordinator(t, clk)
	if err := plain.SubmitJob("a1", submitSpec("j0", 2)); err == nil {
		t.Error("queueless coordinator accepted a job")
	}

	c := queueCoordinator(t, clk, queue.Options{MaxQueued: 1, MaxJobs: 1}, func(o *Options) {
		o.SubmitRate = 1e-9 // first token only; effectively never refills
		o.SubmitBurst = 1
	})
	if err := c.SubmitJob("a1", submitSpec("j0", 2)); err != nil {
		t.Fatal(err)
	}
	err := c.SubmitJob("a1", submitSpec("j1", 2))
	if !errors.Is(err, ErrThrottled) || submitErrCode(err) != wire.ErrCodeThrottled {
		t.Errorf("throttle: err=%v code=%q", err, submitErrCode(err))
	}

	// Unthrottled tenant hits queue-full (j0 admitted, MaxQueued=1).
	full := queueCoordinator(t, clk, queue.Options{MaxQueued: 1, MaxJobs: 1}, nil)
	if err := full.SubmitJob("a1", submitSpec("j0", 2)); err != nil {
		t.Fatal(err)
	}
	if err := full.SubmitJob("a1", submitSpec("j1", 2)); err != nil {
		t.Fatal(err)
	}
	err = full.SubmitJob("a1", submitSpec("j2", 2))
	if !errors.Is(err, queue.ErrQueueFull) || submitErrCode(err) != wire.ErrCodeQueueFull {
		t.Errorf("queue full: err=%v code=%q", err, submitErrCode(err))
	}

	// Invalid specs reject with a typed bad_job error.
	fresh := queueCoordinator(t, clk, queue.Options{}, nil)
	bad := submitSpec("", 2)
	err = fresh.SubmitJob("a1", bad)
	var rej *queue.RejectError
	if !errors.As(err, &rej) || submitErrCode(err) != wire.ErrCodeBadJob {
		t.Errorf("bad spec: err=%v code=%q", err, submitErrCode(err))
	}
}

func TestJobUnplaceableRejectedAtAdmission(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := queueCoordinator(t, clk, queue.Options{}, nil)
	// Five workers on a four-host fabric: compiles fine, places never.
	if err := c.SubmitJob("a1", submitSpec("wide", 5)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.JobStatus("wide"); ok {
		t.Error("unplaceable job retained")
	}
	// The queue keeps serving jobs behind the reject.
	if err := c.SubmitJob("a1", submitSpec("ok", 2)); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := c.JobStatus("ok"); status != wire.JobAdmitted {
		t.Errorf("job behind reject: %s", status)
	}
}

// jobRestoreOpts builds journaled options with a fresh queue per incarnation
// (the queue, like the fabric, is config — Restore rebuilds its state).
func jobRestoreOpts(t *testing.T, clk *fakeClock, snapEvery int) Options {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3", "w4")
	return Options{
		Net:               net,
		Scheduler:         sched.EchelonMADD{Backfill: true},
		Queue:             queue.New(queue.Options{MaxJobs: 1}),
		QuarantineTimeout: time.Hour,
		SnapshotEvery:     snapEvery,
		Clock:             clk.now,
		Logf:              t.Logf,
	}
}

// Crash-and-restore recovers the queue bit-for-bit: admitted placements,
// pending order, estimates and sequence numbers all survive, via WAL replay
// and via snapshot compaction alike.
func TestJobCrashRestoreBitForBit(t *testing.T) {
	for _, snapEvery := range []int{0, 3} {
		dir := t.TempDir()
		clk := &fakeClock{t: time.Unix(1000, 0)}
		c, err := Restore(jobRestoreOpts(t, clk, snapEvery), dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitJob("a1", submitSpec("j0", 2)); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
		if err := c.SubmitJob("a1", submitSpec("j1", 3)); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
		if err := c.SubmitJob("a2", submitSpec("j2", 2)); err != nil {
			t.Fatal(err)
		}
		// Partially run the admitted job so flow state is mid-flight.
		_, hosts, _ := c.JobStatus("j0")
		w, err := queue.Build(submitSpec("j0", 2), hosts)
		if err != nil {
			t.Fatal(err)
		}
		released := 0
		for _, n := range w.Graph.Nodes() {
			if n.Kind != dag.Comm || released >= 2 {
				continue
			}
			gid := n.Group
			if gid == "" {
				gid = "flow:" + n.ID
			}
			if _, err := c.FlowEvent(wire.FlowEvent{GroupID: gid, FlowID: n.ID, Event: wire.EventReleased}); err != nil {
				t.Fatal(err)
			}
			released++
		}
		wantPending := c.queue.Pending()
		wantAdmitted := c.queue.AdmittedList()
		wantSeq := c.queue.Seq()
		wantTard := c.TotalTardiness()
		c.Close() // crash: every append was fsynced

		c2, err := Restore(jobRestoreOpts(t, clk, snapEvery), dir)
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close()
		gotPending := c2.queue.Pending()
		gotAdmitted := c2.queue.AdmittedList()
		if len(gotPending) != len(wantPending) || c2.queue.Seq() != wantSeq {
			t.Fatalf("snapEvery=%d: restored %d pending seq %d, want %d/%d",
				snapEvery, len(gotPending), c2.queue.Seq(), len(wantPending), wantSeq)
		}
		for i, want := range wantPending {
			got := gotPending[i]
			if got.Spec != want.Spec || got.Seq != want.Seq || got.Arrival != want.Arrival ||
				got.Est != want.Est || got.Bytes != want.Bytes || got.Demand != want.Demand {
				t.Errorf("snapEvery=%d: pending[%d] = %+v, want %+v", snapEvery, i, got, want)
			}
		}
		if len(gotAdmitted) != len(wantAdmitted) {
			t.Fatalf("snapEvery=%d: restored %d admitted, want %d", snapEvery, len(gotAdmitted), len(wantAdmitted))
		}
		for i, want := range wantAdmitted {
			got := gotAdmitted[i]
			if !reflect.DeepEqual(got.Hosts, want.Hosts) || got.AdmittedAt != want.AdmittedAt ||
				got.Job.Spec != want.Job.Spec {
				t.Errorf("snapEvery=%d: admitted[%d] = %+v, want %+v", snapEvery, i, got, want)
			}
		}
		if got := c2.TotalTardiness(); got != wantTard {
			t.Errorf("snapEvery=%d: tardiness %v, want %v", snapEvery, got, wantTard)
		}
		// The job→group index survived: finishing j0's flows after the
		// owner's rejoin departs the job and admits the next one.
		if c2.jobFlowsLeft["j0"] != c.jobFlowsLeft["j0"] {
			t.Errorf("snapEvery=%d: jobFlowsLeft = %d, want %d",
				snapEvery, c2.jobFlowsLeft["j0"], c.jobFlowsLeft["j0"])
		}
	}
}

// An owner-driven group unregister dissolves the job silently once its last
// group is gone, keeping queue occupancy aligned with registered state.
func TestJobDissolvesWhenGroupsUnregistered(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := queueCoordinator(t, clk, queue.Options{}, nil)
	spec := submitSpec("j0", 2)
	if err := c.SubmitJob("a1", spec); err != nil {
		t.Fatal(err)
	}
	_, hosts, _ := c.JobStatus("j0")
	gids, err := queue.GroupIDs(spec, hosts)
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range gids {
		if _, err := c.UnregisterGroup(gid); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.JobStatus("j0"); ok {
		t.Error("job survived losing every group")
	}
	if _, running := c.QueueDepth(); running != 0 {
		t.Errorf("running = %d", running)
	}
}
