package coordinator

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/wire"
)

// sessionQueueLen reports the depth of the named agent's outbound queue
// (test-only: peeks coordinator internals under the lock).
func (c *Coordinator) sessionQueueLen(agent string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.byName[agent]; s != nil {
		return len(s.out)
	}
	return 0
}

// hasEvent reports whether the log retains at least one event of the kind.
func hasEvent(log *telemetry.EventLog, kind string) bool {
	for _, e := range log.Tail(0) {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// A connected agent that stops reading its socket entirely must not wedge
// the coordinator: pushes to it are decoupled by the per-session writer, the
// write deadline declares the socket dead, and teardown parks its groups —
// all while other control-plane calls keep completing. net.Pipe has no
// kernel buffer, so the very first frame to the stalled peer blocks the
// writer, which is the regression the session goroutine used to hit inline.
func TestStalledSocketCannotWedgeCoordinator(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	events := telemetry.NewEventLog(256)
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		WriteTimeout: 150 * time.Millisecond, QuarantineTimeout: time.Hour,
		Events: events, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, cli := net.Pipe()
	defer cli.Close()
	done := make(chan struct{})
	go func() { defer close(done); c.handleConn(context.Background(), srv) }()

	codec := wire.NewCodec(cli)
	if err := codec.Send(wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Agent: "stuck"}}); err != nil {
		t.Fatal(err)
	}
	g, _ := core.NewCoflow("stuck/g", &core.Flow{ID: "f", Src: "w1", Dst: "w2", Size: 100})
	reg, _ := wire.RegisterOf(g)
	if err := codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	// The release triggers a reschedule whose allocation push lands on a pipe
	// nobody is reading. From here on the client never reads again.
	if err := codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "stuck/g", FlowID: "f", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}

	// The coordinator lock must stay available while the writer is blocked on
	// the dead pipe.
	regDone := make(chan error, 1)
	go func() {
		g2, _ := core.NewCoflow("live/g", &core.Flow{ID: "x", Src: "w2", Dst: "w3", Size: 1})
		regDone <- c.RegisterGroup("direct", g2)
	}()
	select {
	case err := <-regDone:
		if err != nil {
			t.Fatalf("concurrent RegisterGroup failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RegisterGroup blocked behind a stalled agent socket")
	}

	// The write deadline tears the session down and quarantines its group.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("session never torn down after write deadline")
	}
	if !c.GroupParked("stuck/g") {
		t.Error("stalled agent's group not parked after teardown")
	}
}

// A session whose writer is stalled (injected AgentStall) fills its bounded
// outbound buffer with non-conflatable frames (error replies here); the next
// allocation push cannot even queue its placeholder, so the coordinator
// closes the session — emitting the overflow event — and keeps serving the
// healthy session at full speed. (Allocation bursts alone never overflow:
// they conflate into a single pending frame; see
// TestAllocationBurstConflatesWithoutOverflow.)
func TestSendOverflowTearsDownStalledSession(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	events := telemetry.NewEventLog(256)
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SendBuffer: 1, QuarantineTimeout: time.Hour,
		Events: events, Metrics: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()
	addr := ln.Addr().String()

	watcher := dialRaw(t, addr, "watcher")
	defer watcher.conn.Close()
	ga, _ := core.NewCoflow("watch/g", &core.Flow{ID: "q", Src: "w1", Dst: "w2", Size: 1})
	rega, _ := wire.RegisterOf(ga)
	if err := watcher.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &rega}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := c.GroupStatus("watch/g"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registration never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Stall the watcher's writer, then have it provoke error replies (flow
	// events for a group that does not exist). Errors are lifecycle frames —
	// no conflation — so the first occupies the writer for 10s and the next
	// fills the 1-slot buffer.
	if err := c.SetAgentStall("watcher", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := watcher.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
			FlowEvent: &wire.FlowEvent{GroupID: "nope/g", FlowID: "x", Event: wire.EventReleased}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the replies have actually clogged the queue: the watcher's
	// worker runs asynchronously from this test goroutine.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if c.sessionQueueLen("watcher") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("error replies never queued behind the stalled writer")
		}
		time.Sleep(5 * time.Millisecond)
	}

	driver := dialRaw(t, addr, "driver")
	defer driver.conn.Close()
	var flows []*core.Flow
	for i := 0; i < 6; i++ {
		flows = append(flows, &core.Flow{ID: fmt.Sprintf("b%d", i), Src: "w1", Dst: "w2", Size: 100})
	}
	gb, _ := core.NewCoflow("drive/g", flows...)
	regb, _ := wire.RegisterOf(gb)
	if err := driver.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &regb}); err != nil {
		t.Fatal(err)
	}
	// Each release re-solves the shared w1->w2 port, pushing a delta to both
	// sessions. The driver reading its own allocation synchronously proves
	// the control plane never stalls behind the stuck watcher.
	for i := 0; i < 6; i++ {
		if err := driver.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
			FlowEvent: &wire.FlowEvent{GroupID: "drive/g", FlowID: fmt.Sprintf("b%d", i), Event: wire.EventReleased}}); err != nil {
			t.Fatal(err)
		}
		driver.recvAllocation(t)
	}

	for {
		if c.GroupParked("watch/g") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled session never torn down on send overflow")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := reg.Counter(MetricSendOverflow, "").Value(); got == 0 {
		t.Error("send overflow counter not incremented")
	}
	if !hasEvent(events, telemetry.EventSendOverflow) {
		t.Error("no send-overflow event emitted")
	}
}

// A burst of flow events from a healthy agent must never overflow the
// outbound queue, however small: allocation deltas conflate into a single
// pending frame while the writer catches up. (Regression: the async-writer
// split let a tight event loop outrun the per-frame syscall rate, and the
// coordinator tore down live loadgen sessions mid-burst.)
func TestAllocationBurstConflatesWithoutOverflow(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	events := telemetry.NewEventLog(256)
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SendBuffer: 1, QuarantineTimeout: time.Hour,
		Events: events, Metrics: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()

	a := dialRaw(t, ln.Addr().String(), "burster")
	defer a.conn.Close()
	const nFlows = 64
	var flows []*core.Flow
	for i := 0; i < nFlows; i++ {
		flows = append(flows, &core.Flow{ID: fmt.Sprintf("f%d", i), Src: "w1", Dst: "w2", Size: 100})
	}
	g, _ := core.NewCoflow("burst/g", flows...)
	regMsg, _ := wire.RegisterOf(g)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &regMsg}); err != nil {
		t.Fatal(err)
	}
	// Blast every release without reading a single push: each one re-solves
	// the shared port and broadcasts a delta into the 1-slot queue.
	for i := 0; i < nFlows; i++ {
		if err := a.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
			FlowEvent: &wire.FlowEvent{GroupID: "burst/g", FlowID: fmt.Sprintf("f%d", i), Event: wire.EventReleased}}); err != nil {
			t.Fatal(err)
		}
	}
	// Liveness after the burst: a fresh release still round-trips, so the
	// session survived and the writer caught up.
	g2, _ := core.NewCoflow("probe/g", &core.Flow{ID: "p0", Src: "w2", Dst: "w1", Size: 1})
	reg2, _ := wire.RegisterOf(g2)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg2}); err != nil {
		t.Fatal(err)
	}
	if err := a.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "probe/g", FlowID: "p0", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rates := a.recvAllocation(t)
		if _, ok := rates["p0"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe flow never allocated after burst")
		}
	}
	if got := reg.Counter(MetricSendOverflow, "").Value(); got != 0 {
		t.Errorf("send overflow counter = %d during healthy burst, want 0", got)
	}
	if hasEvent(events, telemetry.EventSendOverflow) {
		t.Error("send-overflow event emitted during healthy burst")
	}
	if c.GroupParked("burst/g") {
		t.Error("healthy burster's group parked; session was torn down")
	}
}

// A scheduler pass blowing its deadline budget degrades to the fair fallback
// (narrated by exactly one transition event) instead of stalling event
// handling; when the stall clears, the next pass recovers the primary.
func TestSchedulerDeadlineDegradeAndRecover(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	events := telemetry.NewEventLog(256)
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SchedDeadline: 25 * time.Millisecond, DeadlineTripAfter: 100,
		Events: events, Metrics: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := core.NewCoflow("job/g",
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 100},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 100})
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if c.SchedDegraded() {
		t.Fatal("degraded before any overrun")
	}

	// 6x-the-budget stall: the pass is abandoned mid-flight and the fallback
	// allocation comes back immediately.
	if err := c.SetSchedStall(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/g", FlowID: "f0", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 120*time.Millisecond {
		t.Errorf("degraded pass took %v; deadline budget not enforced", elapsed)
	}
	if rates["f0"] <= 0 {
		t.Fatalf("fallback allocation = %v, want f0 > 0", rates)
	}
	if !c.SchedDegraded() {
		t.Fatal("coordinator not degraded after overrun")
	}
	if !hasEvent(events, telemetry.EventDegrade) {
		t.Error("no sched-degrade event emitted")
	}
	if got := reg.Counter(MetricSchedDegraded, "", "reason", "overrun").Value(); got == 0 {
		t.Error("overrun-reason degrade counter not incremented")
	}

	// Clear the stall and wait out the abandoned pass, then drive one more
	// event. While degraded it is batched (deadline-bounded), so force the
	// flush; the unstalled primary completes and the regime recovers.
	if err := c.SetSchedStall(0); err != nil {
		t.Fatal(err)
	}
	c.degrade.Quiesce()
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/g", FlowID: "f1", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	rates, err = c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rates["f1"] <= 0 {
		t.Fatalf("post-recovery allocation = %v, want f1 > 0", rates)
	}
	if c.SchedDegraded() {
		t.Error("still degraded after the stall cleared")
	}
	if !hasEvent(events, telemetry.EventRecover) {
		t.Error("no sched-recover event emitted")
	}
	if got := reg.Counter(MetricSchedRecoveries, "").Value(); got == 0 {
		t.Error("recovery counter not incremented")
	}
}

// While degraded, flow events are batched into the soft coalescing window
// even with coalescing otherwise off: event handling stays deadline-bounded
// instead of running one degraded pass per event.
func TestDegradedEventsAreBatched(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SchedDeadline: 25 * time.Millisecond, DeadlineTripAfter: 100, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var flows []*core.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, &core.Flow{ID: fmt.Sprintf("f%d", i), Src: "w1", Dst: "w2", Size: 100})
	}
	g, _ := core.NewCoflow("job/g", flows...)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSchedStall(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/g", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if !c.SchedDegraded() {
		t.Fatal("not degraded after overrun")
	}
	before := c.Reschedules()
	for i := 1; i < 4; i++ {
		rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/g", FlowID: fmt.Sprintf("f%d", i), Event: wire.EventReleased})
		if err != nil {
			t.Fatal(err)
		}
		if rates != nil {
			t.Fatalf("degraded event %d rescheduled immediately, want batched", i)
		}
	}
	if got := c.Reschedules(); got != before {
		t.Fatalf("degraded events ran %d immediate reschedules", got-before)
	}
	if err := c.SetSchedStall(0); err != nil {
		t.Fatal(err)
	}
	c.degrade.Quiesce()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := c.Reschedules(); got != before+1 {
		t.Errorf("batch drained into %d reschedules, want 1", got-before)
	}
}

// Job submissions above the inbound high-water mark are shed with the typed
// throttled error; the session survives the refusal.
func TestSubmitShedAboveHighWater(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	events := telemetry.NewEventLog(64)
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		ShedHighWater: 1, Events: events, Metrics: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()

	s := dialRaw(t, ln.Addr().String(), "submitter")
	defer s.conn.Close()
	// Simulate a backlog of in-flight events from other sessions.
	c.inboundDepth.Add(8)
	defer c.inboundDepth.Add(-8)
	if err := s.codec.Send(wire.Message{Type: wire.TypeSubmitJob,
		SubmitJob: &wire.SubmitJob{Job: wire.JobSpec{
			ID: "j1", Paradigm: "dp", Workers: 2, Layers: 1, Iterations: 1}}}); err != nil {
		t.Fatal(err)
	}
	s.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := s.codec.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != wire.TypeError || msg.Error.Code != wire.ErrCodeThrottled {
		t.Fatalf("want throttled error, got %+v", msg)
	}
	if got := reg.Counter(MetricShedSubmissions, "").Value(); got == 0 {
		t.Error("shed counter not incremented")
	}
	if !hasEvent(events, telemetry.EventShed) {
		t.Error("no submission-shed event emitted")
	}
	// The session is still usable after the refusal.
	if err := s.codec.Send(wire.Message{Type: wire.TypeHeartbeat}); err != nil {
		t.Fatal(err)
	}
	if msg, err := s.codec.Recv(); err != nil || msg.Type != wire.TypeHeartbeat {
		t.Fatalf("heartbeat after shed: %v, %v", msg.Type, err)
	}
}

// An agent that stops echoing RTT pings is soft-quarantined on censored
// observations (it never has to answer to be judged); once it echoes
// promptly again, hysteresis releases it.
func TestStragglerSoftQuarantineAndRelease(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	events := telemetry.NewEventLog(256)
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		StragglerRTT: 40 * time.Millisecond, PingInterval: 10 * time.Millisecond,
		Events: events, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	codec := wire.NewCodec(conn)
	// Version 3 opts into coordinator RTT pings.
	if err := codec.Send(wire.Message{Type: wire.TypeHello,
		Hello: &wire.Hello{Agent: "lag", Version: wire.ProtocolVersion}}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: swallow pings without echoing. The censored-observation path
	// must trip the quarantine from ping age alone.
	deadline := time.Now().Add(10 * time.Second)
	for !c.AgentSoftQuarantined("lag") {
		if time.Now().After(deadline) {
			t.Fatal("never soft-quarantined despite unanswered pings")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !hasEvent(events, telemetry.EventSoftQuar) {
		t.Error("no soft-quarantine event emitted")
	}

	// Phase 2: echo every ping promptly; the EWMA decays below the release
	// threshold (half the straggler RTT).
	echoCtx, echoStop := context.WithCancel(context.Background())
	var echoWG sync.WaitGroup
	defer func() {
		echoStop()
		conn.SetReadDeadline(time.Now()) // wake the pending Recv
		echoWG.Wait()
	}()
	echoWG.Add(1)
	go func() {
		defer echoWG.Done()
		for {
			if echoCtx.Err() != nil {
				return
			}
			conn.SetReadDeadline(time.Now().Add(time.Second))
			msg, err := codec.Recv()
			if err != nil {
				if echoCtx.Err() != nil {
					return
				}
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				return
			}
			if msg.Type == wire.TypeHeartbeat && msg.Heartbeat != nil && msg.Heartbeat.Nonce != 0 {
				if err := codec.Send(msg); err != nil {
					return
				}
			}
		}
	}()
	for c.AgentSoftQuarantined("lag") {
		if time.Now().After(deadline) {
			t.Fatal("never released from soft quarantine despite prompt echoes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !hasEvent(events, telemetry.EventSoftRelease) {
		t.Error("no soft-release event emitted")
	}
}
