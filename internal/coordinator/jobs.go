// Online job arrivals: the coordinator front-ends an internal/queue.Queue.
// Submissions arrive on the wire (submit_job), are throttled per tenant,
// validated, and queued; admission binds workers to hosts via the configured
// placement policy and registers the compiled groups. Every transition is
// journaled (job-queued / job-admitted / job-departed records), so Restore
// rebuilds the queue — pending jobs, admitted placements, sequence numbers —
// bit-for-bit alongside the flow state.
package coordinator

import (
	"errors"
	"fmt"
	"sort"

	"echelonflow/internal/queue"
	"echelonflow/internal/ratelimit"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Job-pipeline metric families (registered only when Options.Queue is set).
const (
	MetricQueueDepth    = "echelon_queue_depth"
	MetricJobsRunning   = "echelon_jobs_running"
	MetricJobsSubmitted = "echelon_jobs_submitted_total"
	MetricJobsAdmitted  = "echelon_jobs_admitted_total"
	MetricJobsRejected  = "echelon_jobs_rejected_total"
	MetricJobsDeparted  = "echelon_jobs_departed_total"
	MetricJobsThrottled = "echelon_jobs_throttled_total"
	MetricQueueWait     = "echelon_queue_wait_seconds"
	MetricJobTardiness  = "echelon_job_tardiness_seconds"
)

// jobTelemetry bundles the queue pipeline's cached instrument handles.
type jobTelemetry struct {
	depth     *telemetry.Gauge
	running   *telemetry.Gauge
	submitted *telemetry.Counter
	admitted  *telemetry.Counter
	rejected  *telemetry.Counter
	departed  *telemetry.Counter
	throttled *telemetry.Counter
	wait      *telemetry.Histogram
}

func (c *Coordinator) initJobTelemetry() {
	m := c.opts.Metrics
	c.jtel = jobTelemetry{
		depth:     m.Gauge(MetricQueueDepth, "Jobs queued awaiting admission."),
		running:   m.Gauge(MetricJobsRunning, "Jobs admitted and not yet departed."),
		submitted: m.Counter(MetricJobsSubmitted, "Job submissions accepted into the queue."),
		admitted:  m.Counter(MetricJobsAdmitted, "Jobs placed and registered."),
		rejected:  m.Counter(MetricJobsRejected, "Job submissions or admissions refused."),
		departed:  m.Counter(MetricJobsDeparted, "Admitted jobs that ran to completion."),
		throttled: m.Counter(MetricJobsThrottled, "Job submissions refused by the per-tenant rate limit."),
		wait:      m.Histogram(MetricQueueWait, "Queueing delay from submission to admission."),
	}
	c.jtel.depth.Set(0)
	c.jtel.running.Set(0)
}

// jobGaugesLocked refreshes the queue depth/occupancy gauges.
func (c *Coordinator) jobGaugesLocked() {
	if c.queue == nil || c.opts.Metrics == nil {
		return
	}
	c.jtel.depth.Set(float64(c.queue.Depth()))
	c.jtel.running.Set(float64(c.queue.Running()))
}

// submitThrottledLocked applies the per-tenant submission rate limit. Replay
// never throttles: journaled submissions were accepted by the live run.
func (c *Coordinator) submitThrottledLocked(tenant string) bool {
	if c.opts.SubmitRate <= 0 || c.replaying {
		return false
	}
	b := c.submitLimiters[tenant]
	if b == nil {
		burst := c.opts.SubmitBurst
		if burst <= 0 {
			burst = 1
		}
		var err error
		if b, err = ratelimit.NewBucket(c.opts.SubmitRate, burst); err != nil {
			c.opts.Logf("coordinator: submit limiter: %v", err)
			return false
		}
		c.submitLimiters[tenant] = b
	}
	return !b.Allow(1)
}

// SubmitJob validates, throttles and enqueues a job submission, then runs an
// admission pass. The returned error, if any, carries a wire error code via
// *queue.RejectError or the sentinel errors below.
var errQueueDisabled = errors.New("coordinator: job queue not configured")

// ErrThrottled marks a submission refused by the per-tenant rate limit.
var ErrThrottled = errors.New("coordinator: job submission rate exceeded")

func (c *Coordinator) SubmitJob(owner string, spec wire.JobSpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitJobLocked(owner, spec)
}

func (c *Coordinator) submitJobLocked(owner string, spec wire.JobSpec) error {
	if c.queue == nil {
		return errQueueDisabled
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = owner
	}
	if c.submitThrottledLocked(tenant) {
		c.jtel.throttled.Inc()
		return fmt.Errorf("%w (tenant %q)", ErrThrottled, tenant)
	}
	now := c.now()
	j, err := c.queue.Submit(owner, spec, now)
	if err != nil {
		var rej *queue.RejectError
		if errors.As(err, &rej) {
			c.jtel.rejected.Inc()
		}
		return err
	}
	c.appendJournalLocked(journalEvent{Kind: jJobQueued, At: now, Owner: owner, Job: &spec})
	c.jtel.submitted.Inc()
	c.jobGaugesLocked()
	c.event(telemetry.Event{Kind: telemetry.EventJobQueued, At: float64(now),
		Agent: owner, Detail: fmt.Sprintf("job %s (%s, %d workers, est %v)",
			spec.ID, spec.Paradigm, spec.Workers, j.Est)})
	c.pushJobUpdateLocked(owner, wire.JobUpdate{JobID: spec.ID, Status: wire.JobQueued})
	c.admitJobsLocked()
	return nil
}

// jobViewLocked assembles the placement policies' cluster view from live
// flow state: per-host remaining volume of every unfinished flow, plus
// admitted worker counts. Iteration is in sorted group order so view
// assembly (and thus placement) is deterministic.
func (c *Coordinator) jobViewLocked() *queue.View {
	v := queue.NewView(c.opts.Net)
	gids := make([]string, 0, len(c.groups))
	for gid := range c.groups {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	for _, gid := range gids {
		g := c.groups[gid]
		for _, member := range g.state.Group.Flows {
			f := g.flows[member.ID]
			if f.finished {
				continue
			}
			v.Egress[f.flow.Src] += f.remaining
			v.Ingress[f.flow.Dst] += f.remaining
		}
	}
	for _, a := range c.queue.AdmittedList() {
		for _, h := range a.Hosts {
			v.Workers[h]++
		}
	}
	return v
}

// admitJobsLocked drains the queue's admissible head: each admission is
// placed, compiled, registered and journaled; an unplaceable head is
// rejected and the next job tried. Runs after every submission and
// departure; never during replay (the journal carries the recorded
// decisions).
func (c *Coordinator) admitJobsLocked() {
	if c.queue == nil || c.replaying {
		return
	}
	for {
		now := c.now()
		a, err := c.queue.Next(c.jobViewLocked(), now)
		if err != nil {
			var rej *queue.RejectError
			if errors.As(err, &rej) {
				c.rejectJobLocked(rej, now)
				continue
			}
			c.opts.Logf("coordinator: admission: %v", err)
			return
		}
		if a == nil {
			c.jobGaugesLocked()
			return
		}
		if err := c.installJobLocked(a, now); err != nil {
			// The placement was accepted but the compiled groups could not be
			// registered (should not happen: placement hosts come from the
			// fabric). Surface and drop the job.
			c.opts.Logf("coordinator: install job %s: %v", a.Job.Spec.ID, err)
			c.queue.Depart(a.Job.Spec.ID)
			c.rejectJobLocked(&queue.RejectError{JobID: a.Job.Spec.ID, Owner: a.Job.Owner,
				Code: wire.ErrCodeBadJob, Reason: err.Error()}, now)
		}
	}
}

// rejectJobLocked journals and reports a dropped job. The job-departed
// record with no groups replays as "remove from queue, no reschedule".
func (c *Coordinator) rejectJobLocked(rej *queue.RejectError, now unit.Time) {
	c.appendJournalLocked(journalEvent{Kind: jJobDeparted, At: now, JobID: rej.JobID})
	c.jtel.rejected.Inc()
	c.jobGaugesLocked()
	c.event(telemetry.Event{Kind: telemetry.EventJobReject, At: float64(now),
		Agent: rej.Owner, Detail: fmt.Sprintf("job %s: %s", rej.JobID, rej.Reason)})
	c.pushJobUpdateLocked(rej.Owner,
		wire.JobUpdate{JobID: rej.JobID, Status: wire.JobRejected, Reason: rej.Reason})
}

// installJobLocked registers an admission's compiled groups and journals the
// placement. Shared between live admission and journal replay (which arrives
// here via ForceAdmit with the recorded hosts).
func (c *Coordinator) installJobLocked(a *queue.Admitted, now unit.Time) error {
	w, err := queue.Build(a.Job.Spec, a.Hosts)
	if err != nil {
		return err
	}
	groups, err := queue.Groups(w, a.Job.Spec.Weight)
	if err != nil {
		return err
	}
	for i, g := range groups {
		if err := c.addGroupLocked(a.Job.Owner, g); err != nil {
			// Roll back the partial registration so state matches the journal
			// (which will carry no admitted record for this job).
			for _, done := range groups[:i] {
				delete(c.groups, done.ID)
				delete(c.groupJob, done.ID)
				c.cache.InvalidateGroup(done.ID)
				c.dropGroupMetricsLocked(done.ID)
			}
			delete(c.jobGroups, a.Job.Spec.ID)
			delete(c.jobFlowsLeft, a.Job.Spec.ID)
			return err
		}
		if c.jobGroups[a.Job.Spec.ID] == nil {
			c.jobGroups[a.Job.Spec.ID] = make(map[string]bool, len(groups))
		}
		c.jobGroups[a.Job.Spec.ID][g.ID] = true
		c.groupJob[g.ID] = a.Job.Spec.ID
		c.jobFlowsLeft[a.Job.Spec.ID] += len(g.Flows)
	}
	c.appendJournalLocked(journalEvent{Kind: jJobAdmitted, At: now,
		JobID: a.Job.Spec.ID, Hosts: a.Hosts})
	c.jtel.admitted.Inc()
	if c.opts.Metrics != nil {
		c.jtel.wait.Observe(float64(now - a.Job.Arrival))
	}
	c.jobGaugesLocked()
	c.event(telemetry.Event{Kind: telemetry.EventJobAdmit, At: float64(now),
		Agent: a.Job.Owner, Detail: fmt.Sprintf("job %s on %v after %v queued",
			a.Job.Spec.ID, a.Hosts, now-a.Job.Arrival)})
	c.pushJobUpdateLocked(a.Job.Owner,
		wire.JobUpdate{JobID: a.Job.Spec.ID, Status: wire.JobAdmitted, Hosts: a.Hosts})
	return nil
}

// submitErrCode maps a submission error to its wire error code.
func submitErrCode(err error) string {
	var rej *queue.RejectError
	switch {
	case errors.As(err, &rej):
		return rej.Code
	case errors.Is(err, queue.ErrQueueFull):
		return wire.ErrCodeQueueFull
	case errors.Is(err, ErrThrottled):
		return wire.ErrCodeThrottled
	default:
		return ""
	}
}

// departJobLocked is the live departure path: flush any open batch, journal
// the departure, remove the job, and re-run admission on the freed budget.
func (c *Coordinator) departJobLocked(jobID string) {
	c.flushCoalescedLocked()
	c.advanceLocked()
	now := c.lastAdvance
	gids := make([]string, 0, len(c.jobGroups[jobID]))
	for gid := range c.jobGroups[jobID] {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	c.appendJournalLocked(journalEvent{Kind: jJobDeparted, At: now, JobID: jobID, Groups: gids})
	c.finishJobLocked(jobID, gids, now)
	c.admitJobsLocked()
}

// finishJobLocked removes a completed job's groups and queue entry,
// reschedules, and records its tardiness against the placement policy. It
// is the shared tail of the live departure and the job-departed replay.
func (c *Coordinator) finishJobLocked(jobID string, gids []string, now unit.Time) {
	var tard float64
	owner := c.jobOwnerLocked(jobID)
	for _, gid := range gids {
		if g := c.groups[gid]; g != nil {
			tard += g.state.Group.EffectiveWeight() * float64(g.state.AchievedTardiness)
			delete(c.groups, gid)
			c.cache.InvalidateGroup(gid)
			c.dropGroupMetricsLocked(gid)
		}
		delete(c.groupJob, gid)
	}
	delete(c.jobGroups, jobID)
	delete(c.jobFlowsLeft, jobID)
	c.queue.Depart(jobID)
	c.jtel.departed.Inc()
	if c.opts.Metrics != nil {
		placer, _ := c.queue.Policy()
		c.opts.Metrics.Histogram(MetricJobTardiness,
			"Weighted tardiness of a departed job, labeled by placement policy.",
			"policy", placer).Observe(tard)
	}
	c.jobGaugesLocked()
	c.event(telemetry.Event{Kind: telemetry.EventJobDepart, At: float64(now),
		Agent: owner, Tardiness: tard, Detail: fmt.Sprintf("job %s (%d groups)", jobID, len(gids))})
	if len(gids) > 0 {
		if _, err := c.rescheduleDeltaLocked(gids); err != nil {
			c.opts.Logf("coordinator: reschedule after job %s departed: %v", jobID, err)
		}
	}
	c.pushJobUpdateLocked(owner, wire.JobUpdate{JobID: jobID, Status: wire.JobDeparted})
}

// detachGroupFromJobLocked dissolves a group's job membership when the group
// leaves through a non-job path (unregister, eviction). When the job's last
// group goes, the job leaves the admitted set silently — the record that
// removed the group already implies it, so replay stays aligned without a
// separate job-departed record.
func (c *Coordinator) detachGroupFromJobLocked(gid string) {
	jobID, ok := c.groupJob[gid]
	if !ok {
		return
	}
	delete(c.groupJob, gid)
	if set := c.jobGroups[jobID]; set != nil {
		// Unfinished flows of the departing group no longer count toward the
		// job's completion.
		if g := c.groups[gid]; g != nil {
			for _, f := range g.flows {
				if !f.finished {
					c.jobFlowsLeft[jobID]--
				}
			}
		}
		delete(set, gid)
		if len(set) == 0 {
			delete(c.jobGroups, jobID)
			delete(c.jobFlowsLeft, jobID)
			if c.queue != nil {
				c.queue.Depart(jobID)
				c.jobGaugesLocked()
			}
		}
	}
}

// jobOwnerLocked resolves a job's submitting session name, "" if unknown.
func (c *Coordinator) jobOwnerLocked(jobID string) string {
	if c.queue == nil {
		return ""
	}
	if j := c.queue.Job(jobID); j != nil {
		return j.Owner
	}
	return ""
}

// pushJobUpdateLocked notifies the submitting session of a job transition.
// A disconnected owner just misses the update — job state is queryable on
// reconnect via the admin surface, and the journal has the full history.
func (c *Coordinator) pushJobUpdateLocked(owner string, u wire.JobUpdate) {
	if owner == "" || c.replaying {
		return
	}
	s := c.byName[owner]
	if s == nil {
		return
	}
	if err := s.send(wire.Message{Type: wire.TypeJobUpdate, JobUpdate: &u}); err != nil {
		if errors.Is(err, errSendBufferFull) {
			// Job updates are lifecycle notifications, not convergent state:
			// they cannot be conflated, and an owner that missed one has
			// diverged (a submitter waiting on JobDeparted would wait
			// forever). Tear the session down so the agent resyncs.
			c.sendOverflowLocked(s)
		}
		c.opts.Logf("coordinator: job update to %s failed: %v", owner, err)
	}
}

// QueueDepth reports pending and admitted job counts (0, 0 with no queue).
func (c *Coordinator) QueueDepth() (pending, running int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queue == nil {
		return 0, 0
	}
	return c.queue.Depth(), c.queue.Running()
}

// JobStatus reports a job's current state: "queued", "admitted" (with its
// placement), or ok=false for jobs the coordinator no longer holds.
func (c *Coordinator) JobStatus(jobID string) (status string, hosts []string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queue == nil {
		return "", nil, false
	}
	if a := c.queue.AdmittedJob(jobID); a != nil {
		return wire.JobAdmitted, append([]string(nil), a.Hosts...), true
	}
	if j := c.queue.Job(jobID); j != nil {
		return wire.JobQueued, nil, true
	}
	return "", nil, false
}
