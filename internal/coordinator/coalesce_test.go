package coordinator

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// newCoalesceCoordinator builds a coordinator with a long coalescing window
// (the wall timer never fires inside a test; Drain closes batches) and the
// incremental scheduler path enabled.
func newCoalesceCoordinator(t *testing.T, clk *fakeClock, reg *telemetry.Registry) *Coordinator {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net:       net,
		Scheduler: sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}),
		Coalesce:  time.Hour,
		Clock:     clk.now,
		Logf:      t.Logf,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A burst of flow events inside the coalescing window defers into one batch:
// no reschedule runs until the batch drains, and the drain runs exactly one.
func TestCoalesceBatchesFlowEvents(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := telemetry.NewRegistry()
	c := newCoalesceCoordinator(t, clk, reg)
	defer c.Close()
	g1, _ := core.NewCoflow("g1", &core.Flow{ID: "x", Src: "w1", Dst: "w2", Size: 5})
	g2, _ := core.NewCoflow("g2", &core.Flow{ID: "y", Src: "w2", Dst: "w3", Size: 5})
	if err := c.RegisterGroup("a", g1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a", g2); err != nil {
		t.Fatal(err)
	}
	before := c.Reschedules()
	rates, err := c.FlowEvent(wire.FlowEvent{GroupID: "g1", FlowID: "x", Event: wire.EventReleased})
	if err != nil {
		t.Fatal(err)
	}
	// The event is deferred: the allocation in force is unchanged, so the
	// hot path skips assembling it (nil map) — the new flow has no rate yet.
	if rates["x"] != 0 {
		t.Errorf("deferred release already granted rate %v", rates["x"])
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g2", FlowID: "y", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if got := c.Reschedules(); got != before {
		t.Errorf("coalesced events rescheduled %d time(s) before the drain", got-before)
	}
	rates, err = c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Reschedules(); got != before+1 {
		t.Errorf("batch drained into %d reschedules, want 1", got-before)
	}
	if rates["x"] <= 0 || rates["y"] <= 0 {
		t.Errorf("post-drain allocation = %v", rates)
	}
	if got := reg.Counter(MetricCoalescedEvents, "").Value(); got != 2 {
		t.Errorf("coalesced events counter = %v, want 2", got)
	}
	if got := reg.Counter(MetricCoalesceBatches, "").Value(); got != 1 {
		t.Errorf("batch counter = %v, want 1", got)
	}
	// The first drain ran cold (nothing for the incremental scheduler to
	// patch against) and fell back to a full pass; the next batch rides the
	// delta path against the captured state.
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g1", FlowID: "x", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricDeltaApplied, "").Value(); got < 1 {
		t.Errorf("delta applied counter = %v, want >= 1", got)
	}
}

// Non-coalescible events flush the open batch before acting, so the journal
// order always matches the live decision order.
func TestCoalesceFlushOnNoncoalescibleEvent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := newCoalesceCoordinator(t, clk, nil)
	defer c.Close()
	g1, _ := core.NewCoflow("g1", &core.Flow{ID: "x", Src: "w1", Dst: "w2", Size: 5})
	if err := c.RegisterGroup("a", g1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "g1", FlowID: "x", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if c.pending == nil {
		t.Fatal("no batch open after a coalesced event")
	}
	if _, err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if c.pending != nil {
		t.Error("tick left the coalescing batch open")
	}
	rates, err := c.Drain() // no batch: reports the allocation in force
	if err != nil {
		t.Fatal(err)
	}
	if rates["x"] <= 0 {
		t.Errorf("flow unscheduled after flush: %v", rates)
	}
}

// Crash-and-restore across coalesced batches is bit-for-bit: deferred flow
// records replay without a reschedule, resched records replay each batch
// boundary, and an open batch at crash time stays open (mutations applied,
// reschedule pending) exactly as it was live.
func TestCoalesceCrashRestoreBitForBit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	clk := &fakeClock{t: time.Unix(1000, 0)}
	opts := func() Options {
		net := fabric.NewNetwork()
		net.AddUniformHosts(10, "w1", "w2", "w3")
		return Options{
			Net:               net,
			Scheduler:         sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}),
			Coalesce:          time.Hour,
			QuarantineTimeout: time.Hour,
			SnapshotEvery:     3, // force snapshot+prime inside the history
			Clock:             clk.now,
			Logf:              t.Logf,
		}
	}
	c, err := Restore(opts(), dir)
	if err != nil {
		t.Fatal(err)
	}
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	// Leave a batch open at the crash: the finish is applied and journaled
	// (deferred), its reschedule still pending.
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	wantRef, wantTard, err := c.GroupStatus("job/pp")
	if err != nil {
		t.Fatal(err)
	}
	wantRem := make(map[string]unit.Bytes)
	for id, f := range c.groups["job/pp"].flows {
		wantRem[id] = f.remaining
	}
	c.Close()

	c2, err := Restore(opts(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	gotRef, gotTard, err := c2.GroupStatus("job/pp")
	if err != nil {
		t.Fatalf("group lost in restore: %v", err)
	}
	// Strict equality, not ApproxEq: replay must reproduce the fluid model
	// bit-for-bit across coalesced batch boundaries.
	if gotRef != wantRef || gotTard != wantTard {
		t.Errorf("restored ref/tardiness = %v/%v, want %v/%v", gotRef, gotTard, wantRef, wantTard)
	}
	for id, want := range wantRem {
		if got := c2.groups["job/pp"].flows[id].remaining; got != want {
			t.Errorf("restored remaining[%s] = %v, want %v", id, got, want)
		}
	}
	if !c2.GroupParked("job/pp") {
		t.Error("recovered group not quarantined")
	}
}

// flakySched delegates to a real scheduler until *fail is flipped, then
// errors on every Schedule call — the fixture for rejoin failure paths.
type flakySched struct {
	inner sched.Scheduler
	fail  *bool
}

func (s flakySched) Name() string { return "flaky" }

func (s flakySched) Schedule(snap *sched.Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if *s.fail {
		return nil, errors.New("induced scheduler failure")
	}
	return s.inner.Schedule(snap, net)
}

// Regression: a reschedule failure during an agent rejoin used to be logged
// and swallowed — the agent was told its rejoin succeeded while holding an
// allocation the scheduler never re-validated. The failure must propagate,
// the group must stay parked, and the error counter must move.
func TestRejoinRescheduleFailurePropagates(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	fail := false
	reg := telemetry.NewRegistry()
	c, err := New(Options{
		Net:               net,
		Scheduler:         flakySched{inner: sched.EchelonMADD{Backfill: true}, fail: &fail},
		QuarantineTimeout: time.Hour,
		Clock:             clk.now,
		Logf:              t.Logf,
		Metrics:           reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	c.dropSession(&session{agent: "a1"})
	if !c.GroupParked("job/pp") {
		t.Fatal("group not parked after session drop")
	}

	fail = true
	if err := c.RegisterGroup("a1", g); err == nil {
		t.Fatal("rejoin with a failing scheduler reported success")
	}
	if !c.GroupParked("job/pp") {
		t.Error("group unparked although its rejoin reschedule failed")
	}
	if got := reg.Counter(MetricRescheduleErrors, "").Value(); got < 1 {
		t.Errorf("reschedule error counter = %v, want >= 1", got)
	}

	// Once the scheduler recovers, the same rejoin succeeds.
	fail = false
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatalf("rejoin after recovery: %v", err)
	}
	if c.GroupParked("job/pp") {
		t.Error("group still parked after successful rejoin")
	}
}
