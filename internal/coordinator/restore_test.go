package coordinator

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/wire"
)

// restoreOpts builds Options for a journaled coordinator on a fake clock.
func restoreOpts(t *testing.T, clk *fakeClock) Options {
	t.Helper()
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	return Options{
		Net:               net,
		Scheduler:         sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: time.Hour,
		Clock:             clk.now,
		Logf:              t.Logf,
	}
}

// An empty (or missing) journal directory is a fresh start: the coordinator
// behaves exactly like New, with journaling armed for next time.
func TestRestoreEmptyDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.groups) != 0 {
		t.Fatalf("fresh restore recovered %d groups", len(c.groups))
	}
	if err := c.RegisterGroup("a1", pipelineGroup(t)); err != nil {
		t.Fatal(err)
	}
	if c.GroupParked("job/pp") {
		t.Error("freshly registered group parked")
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
}

// Crash-and-restore reproduces reference times and achieved tardiness
// bit-for-bit, parks the recovered groups, and lets the owner rejoin.
func TestRestoreReplaysState(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	clk.advance(3 * time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	wantRef, wantTard, err := c.GroupStatus("job/pp")
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no graceful shutdown, the file handle is simply abandoned.
	// Every append was fsynced, so the journal is complete.
	c.Close()

	c2, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	gotRef, gotTard, err := c2.GroupStatus("job/pp")
	if err != nil {
		t.Fatalf("group lost in restore: %v", err)
	}
	if gotRef != wantRef || gotTard != wantTard {
		t.Errorf("restored ref/tardiness = %v/%v, want %v/%v", gotRef, gotTard, wantRef, wantTard)
	}
	if !c2.GroupParked("job/pp") {
		t.Error("recovered group not quarantined while its agent is away")
	}
	// The agent redials and re-announces: the group revives with its state.
	if err := c2.RegisterGroup("a1", g); err != nil {
		t.Fatalf("rejoin after restore: %v", err)
	}
	if c2.GroupParked("job/pp") {
		t.Error("group still parked after rejoin")
	}
	if _, tard, _ := c2.GroupStatus("job/pp"); tard != wantTard {
		t.Errorf("rejoin reset tardiness to %v, want %v", tard, wantTard)
	}
	// In-flight f1 resumes from its acked offset rather than restarting.
	if _, err := c2.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventResumed, Offset: 5}); err != nil {
		t.Fatal(err)
	}
	if got := c2.groups["job/pp"].flows["f1"].remaining; got != 15 {
		t.Errorf("resumed remaining = %v, want 15", got)
	}
}

// A torn final record — the crash hit mid-append — loses only that record.
func TestRestoreTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a1", pipelineGroup(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// The release record was torn off; the registration survives.
	if _, _, err := c2.GroupStatus("job/pp"); err != nil {
		t.Fatalf("group lost to a torn tail: %v", err)
	}
	if c2.groups["job/pp"].flows["f0"].released {
		t.Error("torn release record replayed")
	}
}

// A crash between the snapshot rename and the wal truncation leaves stale
// records before the snapshot point; replay must not apply them twice.
// The stale prefix includes the group's registration, so double-applying
// would surface as a duplicate re-registration after replay.
func TestRestoreSnapshotNewerThanTail(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a1", pipelineGroup(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal")
	pre, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.snapshotLocked() // truncates the wal
	c.mu.Unlock()
	clk.advance(2 * time.Second)
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventFinished}); err != nil {
		t.Fatal(err)
	}
	_, wantTard, _ := c.GroupStatus("job/pp")
	c.Close()
	// Reconstruct the torn-compaction layout: pre-snapshot records back in
	// front of the post-snapshot tail.
	post, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, append(append([]byte{}, pre...), post...), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if len(c2.groups) != 1 {
		t.Fatalf("recovered %d groups, want 1", len(c2.groups))
	}
	if _, tard, _ := c2.GroupStatus("job/pp"); tard != wantTard {
		t.Errorf("restored tardiness = %v, want %v", tard, wantTard)
	}
}

// A duplicated register record in the tail (torn-truncation leftovers
// without a covering snapshot) is skipped with a log line, not fatal.
func TestRestoreDuplicateRegisterSkipped(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a1", pipelineGroup(t)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	wal := filepath.Join(dir, "wal")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the whole log; the second pass re-registers every group.
	// Reopening rewrites sequence numbers is not needed: Restore tolerates
	// the duplicate by skipping the failing record.
	if err := os.WriteFile(wal, append(data, data...), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Restore(restoreOpts(t, clk), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if len(c2.groups) != 1 {
		t.Errorf("recovered %d groups, want 1 (duplicate register skipped)", len(c2.groups))
	}
}

// A rejoin landing exactly at the quarantine deadline beats eviction: the
// timer decision is made against the coordinator clock, and a wall timer
// firing before the configured window has elapsed on that clock re-arms
// instead of evicting.
func TestQuarantineRejoinAtDeadline(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	net := fabric.NewNetwork()
	net.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net: net, Scheduler: sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: 10 * time.Second, Clock: clk.now, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := pipelineGroup(t)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatal(err)
	}
	c.dropSession(&session{agent: "a1"})
	if !c.GroupParked("job/pp") {
		t.Fatal("group not parked")
	}
	gen := c.groups["job/pp"].parkGen

	// The wall timer fires while the coordinator clock has not moved (the
	// extreme form of the same-tick race): must re-arm, not evict.
	c.evictIfStillParked("job/pp", gen)
	if _, _, err := c.GroupStatus("job/pp"); err != nil {
		t.Fatal("evicted before the quarantine window elapsed on the coordinator clock")
	}

	// Rejoin lands exactly at the deadline; the pending timer then fires.
	clk.advance(10 * time.Second)
	if err := c.RegisterGroup("a1", g); err != nil {
		t.Fatalf("rejoin at deadline: %v", err)
	}
	c.evictIfStillParked("job/pp", gen)
	if _, _, err := c.GroupStatus("job/pp"); err != nil {
		t.Error("stale timer evicted a group that rejoined at the deadline")
	}
	if c.GroupParked("job/pp") {
		t.Error("group still parked after deadline rejoin")
	}

	// Round two, no rejoin: once the window has truly elapsed, evict.
	c.dropSession(&session{agent: "a1"})
	gen = c.groups["job/pp"].parkGen
	clk.advance(10*time.Second + time.Millisecond)
	c.evictIfStillParked("job/pp", gen)
	if _, _, err := c.GroupStatus("job/pp"); err == nil {
		t.Error("expired quarantine did not evict")
	}
}

// Capacity mutations must survive snapshot compaction: jCapacity lives in
// the WAL tail, which compaction discards, so the snapshot itself has to
// carry current NIC capacities. Before the fix the restored fabric
// silently reverted to its construction-time capacities whenever a
// snapshot landed after a degrade.
func TestRestoreCapacitySurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	opts := restoreOpts(t, clk)
	opts.SnapshotEvery = 1 // compact after every append: no jCapacity survives in the tail
	c, err := Restore(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterGroup("a1", pipelineGroup(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetCapacity("w1", 2.5, 1.5); err != nil {
		t.Fatal(err)
	}
	// One more journaled event so the snapshot that compacts away the
	// capacity record is provably the latest state.
	if _, err := c.FlowEvent(wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	c.Close() // crash semantics are covered above; state is already compacted

	c2, err := Restore(restoreOpts(t, clk), dir) // fresh net at original capacities
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	eg, in, ok := c2.opts.Net.Capacity("w1")
	if !ok {
		t.Fatal("host w1 missing after restore")
	}
	if eg != 2.5 || in != 1.5 {
		t.Errorf("restored capacity of w1 = %v/%v, want 2.5/1.5 (degrade lost in compaction)", eg, in)
	}
	// Untouched hosts stay at their construction-time capacities.
	if eg, in, _ := c2.opts.Net.Capacity("w2"); eg != 10 || in != 10 {
		t.Errorf("restored capacity of w2 = %v/%v, want 10/10", eg, in)
	}
}
