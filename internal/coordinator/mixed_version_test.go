package coordinator

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// sniffConn records the first byte the coordinator sends back, so the test
// can pin which framing each session's replies actually use on the wire.
type sniffConn struct {
	net.Conn
	mu    sync.Mutex
	first byte
	seen  bool
}

func (s *sniffConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 {
		s.mu.Lock()
		if !s.seen {
			s.first, s.seen = p[0], true
		}
		s.mu.Unlock()
	}
	return n, err
}

func (s *sniffConn) firstByte() (byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.first, s.seen
}

// mixedClient is one scripted protocol session for the mixed-version soak.
type mixedClient struct {
	t     *testing.T
	conn  *sniffConn
	codec *wire.Codec
	gid   string
}

func dialMixed(t *testing.T, addr, name, gid string, version int) *mixedClient {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := &sniffConn{Conn: raw}
	c := wire.NewCodec(conn)
	if err := c.Send(wire.Message{Type: wire.TypeHello,
		Hello: &wire.Hello{Agent: name, Version: version}}); err != nil {
		t.Fatal(err)
	}
	if version >= 4 {
		c.EnableBinary()
	}
	return &mixedClient{t: t, conn: conn, codec: c, gid: gid}
}

// barrier sends a bare heartbeat and reads (discarding allocation pushes)
// until its echo comes back. The coordinator processes a session's inbound
// messages in order, so the echo proves every earlier message in this
// session — register, flow events — has been fully applied. That is what
// lets the test step the shared injected clock between events.
func (m *mixedClient) barrier() error {
	if err := m.codec.Send(wire.Message{Type: wire.TypeHeartbeat}); err != nil {
		return fmt.Errorf("barrier send: %w", err)
	}
	m.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		msg, err := m.codec.Recv()
		if err != nil {
			return fmt.Errorf("barrier recv: %w", err)
		}
		switch msg.Type {
		case wire.TypeHeartbeat:
			return nil
		case wire.TypeAllocation:
			// Rate pushes interleave freely with the echo; drop them.
		case wire.TypeError:
			return fmt.Errorf("coordinator error: %s", msg.Error.Msg)
		}
	}
}

func (m *mixedClient) flowEvent(flowID, event string) error {
	return m.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: m.gid, FlowID: flowID, Event: event}})
}

// TestMixedVersionTardinessAgreement is the mixed-version soak: one legacy
// v3 agent speaking JSON framing and one v4 agent speaking binary framing
// drive structurally identical coflows over disjoint hosts of the same
// fabric, event for event under a shared stepped clock. The coordinator
// must account both sessions identically — references and tardiness
// bit-equal — because the wire framing is pure transport. Run under -race
// this also soaks the codec paths against concurrent sessions.
func TestMixedVersionTardinessAgreement(t *testing.T) {
	const rounds = 12
	clk := &fakeClock{t: time.Unix(1000, 0)}
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "j1", "j2", "b1", "b2")
	coord, err := New(Options{Net: netModel,
		Scheduler: sched.EchelonMADD{Backfill: true}, Clock: clk.now, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() { defer srvWG.Done(); _ = coord.Serve(ctx, ln) }()
	defer srvWG.Wait()
	defer cancel()

	mkGroup := func(gid, src, dst string) *core.EchelonFlow {
		flows := make([]*core.Flow, rounds)
		for i := range flows {
			flows[i] = &core.Flow{ID: fmt.Sprintf("%s/f%d", gid, i), Src: src, Dst: dst, Size: 1}
		}
		g, err := core.NewCoflow(gid, flows...)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	jsonAgent := dialMixed(t, ln.Addr().String(), "legacy", "mix/json", wire.JSONProtocolVersion)
	defer jsonAgent.conn.Close()
	binAgent := dialMixed(t, ln.Addr().String(), "modern", "mix/bin", wire.ProtocolVersion)
	defer binAgent.conn.Close()
	if jsonAgent.codec.BinarySends() {
		t.Fatal("v3 client must keep JSON sends")
	}
	if !binAgent.codec.BinarySends() {
		t.Fatal("v4 client must switch to binary sends")
	}

	clients := []*mixedClient{jsonAgent, binAgent}
	for _, m := range clients {
		src, dst := "j1", "j2"
		if m == binAgent {
			src, dst = "b1", "b2"
		}
		reg, err := wire.RegisterOf(mkGroup(m.gid, src, dst))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
			t.Fatal(err)
		}
	}

	// both runs fn concurrently on the two sessions and waits: the inbound
	// paths for JSON and binary framing race each other inside the
	// coordinator while the clock stands still.
	both := func(fn func(m *mixedClient) error) {
		t.Helper()
		errs := make(chan error, len(clients))
		for _, m := range clients {
			go func(m *mixedClient) { errs <- fn(m) }(m)
		}
		for range clients {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
	}
	both((*mixedClient).barrier) // registrations applied

	for i := 0; i < rounds; i++ {
		fid := func(m *mixedClient) string { return fmt.Sprintf("%s/f%d", m.gid, i) }
		both(func(m *mixedClient) error {
			if err := m.flowEvent(fid(m), wire.EventReleased); err != nil {
				return err
			}
			return m.barrier()
		})
		// Finish far beyond the fluid-model expectation (1 byte over a
		// 10 B/s port finishes in well under a second) so every round
		// accrues real tardiness to compare.
		clk.advance(time.Second)
		both(func(m *mixedClient) error {
			if err := m.flowEvent(fid(m), wire.EventFinished); err != nil {
				return err
			}
			return m.barrier()
		})
	}

	refJ, tardJ, err := coord.GroupStatus("mix/json")
	if err != nil {
		t.Fatal(err)
	}
	refB, tardB, err := coord.GroupStatus("mix/bin")
	if err != nil {
		t.Fatal(err)
	}
	if refJ != refB {
		t.Errorf("references diverge across framings: json %v vs binary %v", refJ, refB)
	}
	if tardJ != tardB {
		t.Errorf("tardiness diverges across framings: json %v vs binary %v", tardJ, tardB)
	}
	if tardJ <= unit.Time(0) {
		t.Errorf("soak never accrued tardiness (got %v); agreement is vacuous", tardJ)
	}

	// The transport pin: the coordinator's replies to the v4 session start
	// with the binary magic, the v3 session's with a legacy JSON length
	// prefix (<= 0x01 under the 16 MiB frame cap).
	if b, ok := binAgent.conn.firstByte(); !ok || b != 0xEC {
		t.Errorf("v4 session first reply byte = %#x (seen=%v), want 0xEC", b, ok)
	}
	if b, ok := jsonAgent.conn.firstByte(); !ok || b > 0x01 {
		t.Errorf("v3 session first reply byte = %#x (seen=%v), want JSON length prefix", b, ok)
	}
}
