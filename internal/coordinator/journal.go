// Coordinator durability: every state-mutating event is appended to a
// write-ahead journal (internal/journal) and the whole control-plane state
// is periodically compacted into a snapshot. Restore rebuilds a crashed
// coordinator by replaying snapshot + tail: replay re-runs the same
// advance/apply/reschedule sequence the live coordinator executed — the
// scheduler is deterministic, so fluid-model remaining volumes, reference
// times and achieved tardiness come back bit-for-bit. Recovered groups
// re-enter quarantine until their agents redial; the existing reconnect +
// wire-v2 resume machinery then adopts them in place.
package coordinator

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"echelonflow/internal/journal"
	"echelonflow/internal/queue"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// slowFsync is the journal-append latency beyond which a journal-fsync
// lifecycle event is recorded (the latency histogram sees every append).
const slowFsync = 10 * time.Millisecond

// Journal event kinds. One record is appended per state mutation; park,
// revive and evict carry group batches so replay reschedules exactly as
// often as the live run did.
const (
	jGenesis    = "genesis"    // coordinator born: records the wall start time
	jRegister   = "register"   // new group registered
	jUnregister = "unregister" // group departed
	jFlow       = "flow"       // flow lifecycle event (released/finished/resumed)
	jCapacity   = "capacity"   // fabric capacity override
	jPark       = "park"       // owner died, groups quarantined
	jRevive     = "revive"     // owner rejoined, groups resumed
	jEvict      = "evict"      // quarantine expired or disabled, groups removed
	jResched    = "resched"    // coalesced batch boundary: one reschedule over Groups

	// Job-arrival pipeline records. A departed record with Groups is a
	// completed job; with no Groups it is an admission-time rejection (the
	// job left the queue without ever registering groups).
	jJobQueued   = "job-queued"   // submission accepted into the queue
	jJobAdmitted = "job-admitted" // job placed on Hosts and its groups registered
	jJobDeparted = "job-departed" // job completed (Groups removed) or rejected
)

// journalEvent is one WAL record. At is the scheduler time of the mutation;
// replay advances the fluid model to At before re-applying, so integration
// intervals match the live run exactly.
type journalEvent struct {
	Kind     string          `json:"kind"`
	At       unit.Time       `json:"at"`
	Wall     int64           `json:"wall,omitempty"` // genesis: start time, UnixNano
	Owner    string          `json:"owner,omitempty"`
	Register *wire.Register  `json:"register,omitempty"`
	Flow     *wire.FlowEvent `json:"flow,omitempty"`
	Defer    bool            `json:"defer,omitempty"` // flow record absorbed into a coalesced batch: no reschedule here
	Groups   []string        `json:"groups,omitempty"`
	Host     string          `json:"host,omitempty"`
	Egress   unit.Rate       `json:"egress,omitempty"`
	Ingress  unit.Rate       `json:"ingress,omitempty"`
	Job      *wire.JobSpec   `json:"job,omitempty"`    // job-queued: the submitted spec
	JobID    string          `json:"job_id,omitempty"` // job-admitted/departed
	Hosts    []string        `json:"hosts,omitempty"`  // job-admitted: the placement
}

// snapshotState is the compacted control-plane state: everything needed to
// resume scheduling without the WAL records it covers.
type snapshotState struct {
	Wall   int64           `json:"wall"` // coordinator start, UnixNano
	At     unit.Time       `json:"at"`   // fluid model position when taken
	Hosts  []snapshotHost  `json:"hosts,omitempty"`
	Groups []snapshotGroup `json:"groups"`
	Jobs   *snapshotJobs   `json:"jobs,omitempty"` // queue state, when a queue is configured
}

// snapshotHost records a host's NIC capacities at snapshot time. Capacity
// mutations are journaled as jCapacity records, but compaction drops the
// tail they live in — without this the restored fabric would revert to its
// construction-time capacities, silently undoing every degrade/recovery
// that preceded the snapshot.
type snapshotHost struct {
	Name    string    `json:"name"`
	Egress  unit.Rate `json:"egress"`
	Ingress unit.Rate `json:"ingress"`
}

// snapshotJobs compacts the job queue: pending submissions, admitted
// placements, and the next sequence number. Estimates are recorded rather
// than recomputed so a restored queue is bit-for-bit the captured one.
type snapshotJobs struct {
	Seq      int           `json:"seq"`
	Pending  []snapshotJob `json:"pending,omitempty"`
	Admitted []snapshotJob `json:"admitted,omitempty"`
}

type snapshotJob struct {
	Spec       wire.JobSpec `json:"spec"`
	Owner      string       `json:"owner,omitempty"`
	Arrival    unit.Time    `json:"arrival"`
	Seq        int          `json:"seq"`
	Est        unit.Time    `json:"est"`
	EstStable  bool         `json:"est_stable,omitempty"`
	Bytes      unit.Bytes   `json:"bytes"`
	Demand     unit.Rate    `json:"demand"`
	Hosts      []string     `json:"hosts,omitempty"` // admitted jobs only
	AdmittedAt unit.Time    `json:"admitted_at,omitempty"`
}

type snapshotGroup struct {
	Owner     string         `json:"owner"`
	Register  wire.Register  `json:"register"`
	Parked    bool           `json:"parked,omitempty"`
	RefSet    bool           `json:"ref_set,omitempty"`
	Reference unit.Time      `json:"reference"`
	Tardiness unit.Time      `json:"tardiness"`
	Flows     []snapshotFlow `json:"flows"`
}

type snapshotFlow struct {
	ID        string     `json:"id"`
	Released  bool       `json:"released,omitempty"`
	Finished  bool       `json:"finished,omitempty"`
	Remaining unit.Bytes `json:"remaining"`
	Rate      unit.Rate  `json:"rate,omitempty"`
	Release   unit.Time  `json:"release,omitempty"`
}

// appendJournalLocked records one event. Nil journal and replay are no-ops.
// An append failure latches the journal broken (fail-fast: a WAL that lost
// an fsync can no longer promise bit-for-bit recovery, so it refuses every
// later append rather than quietly leaving holes); the coordinator keeps
// serving without durability, announcing the transition exactly once.
func (c *Coordinator) appendJournalLocked(ev journalEvent) {
	if c.journal == nil || c.replaying {
		return
	}
	if err := c.journal.Broken(); err != nil {
		// Latched earlier — by a failed append here, or by the group-commit
		// window timer flushing in the background. Either way announce the
		// transition exactly once, then stay quiet.
		c.noteJournalBrokenLocked(err, ev.At)
		return
	}
	body, err := json.Marshal(ev)
	if err != nil {
		c.opts.Logf("coordinator: journal marshal %s: %v", ev.Kind, err)
		return
	}
	t0 := time.Now()
	if d := c.fsyncStall.Load(); d > 0 {
		// Injected gray-failure latency (faults.FsyncStall): inside the
		// measured window so the latency histogram and slow-fsync events
		// see it exactly like a genuinely slow disk.
		time.Sleep(time.Duration(d))
	}
	if err := c.journal.Append(body); err != nil {
		c.noteJournalBrokenLocked(err, ev.At)
		return
	}
	elapsed := time.Since(t0)
	c.tel.fsyncLat.Observe(elapsed.Seconds())
	if elapsed >= slowFsync {
		// Only slow appends reach the event ring: fsync runs on every
		// mutation and would otherwise drown the lifecycle history.
		c.event(telemetry.Event{Kind: telemetry.EventFsync, At: float64(ev.At),
			Detail: fmt.Sprintf("%s append took %v", ev.Kind, elapsed)})
	}
	c.journalEvents++
	// Compaction waits out open coalescing batches: a snapshot taken while
	// deferred mutations await their resched record would strand that batch's
	// reschedule outside both the snapshot and the tail.
	// flushCoalescedLocked re-checks this condition at the batch boundary.
	if c.opts.SnapshotEvery > 0 && c.journalEvents >= c.opts.SnapshotEvery &&
		c.pending == nil && !c.flushing {
		c.snapshotLocked()
	}
}

// noteJournalBrokenLocked announces a broken journal exactly once — the
// coordinator keeps serving without durability. The latch can be set on the
// append path or by the group-commit background flush, so announcement is
// tracked here rather than inferred from the journal's own state.
func (c *Coordinator) noteJournalBrokenLocked(err error, at unit.Time) {
	if c.journalBrokenSeen {
		return
	}
	c.journalBrokenSeen = true
	c.opts.Logf("coordinator: journal append failed, journaling disabled: %v", err)
	c.tel.journalBroken.Set(1)
	c.event(telemetry.Event{Kind: telemetry.EventJournalBroken, At: float64(at),
		Detail: err.Error()})
}

// snapshotLocked compacts current state into the journal's snapshot file.
func (c *Coordinator) snapshotLocked() {
	if c.journal == nil {
		return
	}
	st := snapshotState{Wall: c.start.UnixNano(), At: c.lastAdvance}
	for _, h := range c.opts.Net.Hosts() {
		eg, in, ok := c.opts.Net.Capacity(h.Name)
		if !ok {
			continue
		}
		st.Hosts = append(st.Hosts, snapshotHost{Name: h.Name, Egress: eg, Ingress: in})
	}
	gids := make([]string, 0, len(c.groups))
	for gid := range c.groups {
		gids = append(gids, gid)
	}
	sort.Strings(gids)
	for _, gid := range gids {
		g := c.groups[gid]
		reg, err := wire.RegisterOf(g.state.Group)
		if err != nil {
			c.opts.Logf("coordinator: snapshot: cannot serialize group %q: %v", gid, err)
			continue
		}
		sg := snapshotGroup{
			Owner: g.owner, Register: reg, Parked: g.parked, RefSet: g.refSet,
			Reference: g.state.Reference, Tardiness: g.state.AchievedTardiness,
		}
		for _, f := range g.state.Group.Flows {
			rt := g.flows[f.ID]
			sg.Flows = append(sg.Flows, snapshotFlow{
				ID: f.ID, Released: rt.released, Finished: rt.finished,
				Remaining: rt.remaining, Rate: rt.rate, Release: rt.release,
			})
		}
		st.Groups = append(st.Groups, sg)
	}
	if c.queue != nil {
		jobs := &snapshotJobs{Seq: c.queue.Seq()}
		for _, j := range c.queue.Pending() {
			jobs.Pending = append(jobs.Pending, snapshotJobOf(j, nil, 0))
		}
		for _, a := range c.queue.AdmittedList() {
			jobs.Admitted = append(jobs.Admitted, snapshotJobOf(a.Job, a.Hosts, a.AdmittedAt))
		}
		st.Jobs = jobs
	}
	body, err := json.Marshal(st)
	if err != nil {
		c.opts.Logf("coordinator: snapshot marshal: %v", err)
		return
	}
	if err := c.journal.Snapshot(body); err != nil {
		c.opts.Logf("coordinator: snapshot: %v", err)
		return
	}
	c.tel.snapshots.Inc()
	c.event(telemetry.Event{Kind: telemetry.EventSnapshot, At: float64(c.lastAdvance),
		Detail: fmt.Sprintf("%d group(s) compacted", len(st.Groups))})
	c.journalEvents = 0
}

// snapshotJobOf captures one queue entry.
func snapshotJobOf(j *queue.Job, hosts []string, at unit.Time) snapshotJob {
	return snapshotJob{
		Spec: j.Spec, Owner: j.Owner, Arrival: j.Arrival, Seq: j.Seq,
		Est: j.Est, EstStable: j.EstStable, Bytes: j.Bytes, Demand: j.Demand,
		Hosts: hosts, AdmittedAt: at,
	}
}

// jobOf rebuilds a queue entry from its snapshot.
func jobOf(sj snapshotJob) *queue.Job {
	return &queue.Job{
		Spec: sj.Spec, Owner: sj.Owner, Arrival: sj.Arrival, Seq: sj.Seq,
		Est: sj.Est, EstStable: sj.EstStable, Bytes: sj.Bytes, Demand: sj.Demand,
	}
}

// restoreJobsLocked rebuilds the queue and the job→group index from a
// snapshot. Group membership is recomputed from the recorded placements
// (compilation is deterministic) and intersected with the groups the
// snapshot actually restored — a group individually unregistered before the
// snapshot must not rejoin its job.
func (c *Coordinator) restoreJobsLocked(sj *snapshotJobs) error {
	if c.queue == nil {
		return fmt.Errorf("coordinator: snapshot carries job-queue state but no queue is configured")
	}
	pending := make([]*queue.Job, 0, len(sj.Pending))
	for _, p := range sj.Pending {
		pending = append(pending, jobOf(p))
	}
	admitted := make([]*queue.Admitted, 0, len(sj.Admitted))
	for _, a := range sj.Admitted {
		admitted = append(admitted, &queue.Admitted{
			Job: jobOf(a), Hosts: append([]string(nil), a.Hosts...), AdmittedAt: a.AdmittedAt,
		})
	}
	c.queue.Restore(pending, admitted, sj.Seq)
	for _, a := range sj.Admitted {
		gids, err := queue.GroupIDs(a.Spec, a.Hosts)
		if err != nil {
			return fmt.Errorf("coordinator: snapshot job %q: %w", a.Spec.ID, err)
		}
		for _, gid := range gids {
			g, live := c.groups[gid]
			if !live || g.owner != a.Owner {
				continue
			}
			if c.jobGroups[a.Spec.ID] == nil {
				c.jobGroups[a.Spec.ID] = make(map[string]bool, len(gids))
			}
			c.jobGroups[a.Spec.ID][gid] = true
			c.groupJob[gid] = a.Spec.ID
			for _, f := range g.flows {
				if !f.finished {
					c.jobFlowsLeft[a.Spec.ID]++
				}
			}
		}
	}
	c.jobGaugesLocked()
	return nil
}

// applySnapshotLocked rebuilds group state from a snapshot payload.
func (c *Coordinator) applySnapshotLocked(payload []byte) error {
	var st snapshotState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("coordinator: corrupt snapshot: %w", err)
	}
	c.start = time.Unix(0, st.Wall)
	c.lastAdvance = st.At
	for _, sh := range st.Hosts {
		if eg, in, ok := c.opts.Net.Capacity(sh.Name); ok && eg == sh.Egress && in == sh.Ingress {
			continue // already at the recorded capacity; don't churn the generation
		}
		if err := c.opts.Net.SetCapacity(sh.Name, sh.Egress, sh.Ingress); err != nil {
			return fmt.Errorf("coordinator: snapshot host %q: %w", sh.Name, err)
		}
	}
	for _, sg := range st.Groups {
		g, err := sg.Register.Group()
		if err != nil {
			return fmt.Errorf("coordinator: snapshot group %q: %w", sg.Register.GroupID, err)
		}
		if err := c.addGroupLocked(sg.Owner, g); err != nil {
			return err
		}
		rt := c.groups[g.ID]
		rt.parked = sg.Parked
		rt.refSet = sg.RefSet
		rt.state.Reference = sg.Reference
		rt.state.AchievedTardiness = sg.Tardiness
		for _, sf := range sg.Flows {
			f, ok := rt.flows[sf.ID]
			if !ok {
				return fmt.Errorf("coordinator: snapshot group %q has unknown flow %q", g.ID, sf.ID)
			}
			f.released, f.finished = sf.Released, sf.Finished
			f.remaining, f.rate, f.release = sf.Remaining, sf.Rate, sf.Release
		}
	}
	if st.Jobs != nil {
		if err := c.restoreJobsLocked(st.Jobs); err != nil {
			return err
		}
	}
	return nil
}

// applyJournalLocked replays one WAL record: advance the fluid model to the
// recorded time, re-apply the mutation, and reschedule wherever the live
// path did. Deterministic scheduling makes the replayed trajectory equal
// the original.
func (c *Coordinator) applyJournalLocked(ev journalEvent) error {
	switch ev.Kind {
	case jGenesis:
		c.start = time.Unix(0, ev.Wall)
		return nil
	case jRegister:
		if ev.Register == nil {
			return fmt.Errorf("coordinator: register record without payload")
		}
		g, err := ev.Register.Group()
		if err != nil {
			return err
		}
		c.advanceToLocked(ev.At)
		return c.addGroupLocked(ev.Owner, g)
	case jUnregister, jEvict:
		c.advanceToLocked(ev.At)
		for _, gid := range ev.Groups {
			if _, ok := c.groups[gid]; !ok {
				return fmt.Errorf("coordinator: %s record for unknown group %q", ev.Kind, gid)
			}
			delete(c.groups, gid)
			c.cache.InvalidateGroup(gid)
			c.dropGroupMetricsLocked(gid)
		}
		if ev.Kind == jUnregister {
			// Live unregister routes through the delta path; eviction uses a
			// full pass. Replay must take the same branch for bit-equality.
			_, err := c.rescheduleDeltaLocked(ev.Groups)
			return err
		}
		_, err := c.rescheduleLocked()
		return err
	case jFlow:
		if ev.Flow == nil {
			return fmt.Errorf("coordinator: flow record without payload")
		}
		c.advanceToLocked(ev.At)
		if err := c.applyFlowLocked(*ev.Flow, ev.At); err != nil {
			return err
		}
		c.cache.InvalidateGroup(ev.Flow.GroupID)
		if ev.Defer {
			// Coalesced record: the live path only applied the mutation; the
			// batch's jResched record carries the reschedule.
			return nil
		}
		_, err := c.rescheduleDeltaLocked([]string{ev.Flow.GroupID})
		return err
	case jResched:
		c.advanceToLocked(ev.At)
		_, err := c.rescheduleDeltaLocked(ev.Groups)
		return err
	case jJobQueued:
		if c.queue == nil {
			return fmt.Errorf("coordinator: job record without a configured queue")
		}
		if ev.Job == nil {
			return fmt.Errorf("coordinator: job-queued record without payload")
		}
		c.advanceToLocked(ev.At)
		_, err := c.queue.Submit(ev.Owner, *ev.Job, ev.At)
		return err
	case jJobAdmitted:
		if c.queue == nil {
			return fmt.Errorf("coordinator: job record without a configured queue")
		}
		c.advanceToLocked(ev.At)
		a, err := c.queue.ForceAdmit(ev.JobID, ev.Hosts, ev.At)
		if err != nil {
			return err
		}
		// installJobLocked registers the compiled groups exactly as the live
		// admission did; journaling and owner pushes are replay-suppressed.
		return c.installJobLocked(a, ev.At)
	case jJobDeparted:
		if c.queue == nil {
			return fmt.Errorf("coordinator: job record without a configured queue")
		}
		c.advanceToLocked(ev.At)
		if len(ev.Groups) == 0 {
			// Admission-time rejection: the job left the queue before
			// registering anything; no reschedule happened.
			c.queue.Depart(ev.JobID)
			c.jtel.rejected.Inc()
			c.jobGaugesLocked()
			return nil
		}
		c.finishJobLocked(ev.JobID, ev.Groups, ev.At)
		return nil
	case jCapacity:
		c.advanceToLocked(ev.At)
		if err := c.opts.Net.SetCapacity(ev.Host, ev.Egress, ev.Ingress); err != nil {
			return err
		}
		_, err := c.rescheduleLocked()
		return err
	case jPark, jRevive:
		c.advanceToLocked(ev.At)
		for _, gid := range ev.Groups {
			g, ok := c.groups[gid]
			if !ok {
				return fmt.Errorf("coordinator: %s record for unknown group %q", ev.Kind, gid)
			}
			g.parked = ev.Kind == jPark
			if g.parked {
				for _, f := range g.flows {
					f.rate = 0
				}
			}
		}
		_, err := c.rescheduleLocked()
		return err
	default:
		return fmt.Errorf("coordinator: unknown journal record kind %q", ev.Kind)
	}
}

// primeDeltaLocked rebuilds the incremental scheduler's internal state from
// snapshot-restored flow rates, so tail replay takes the same delta-vs-full
// branches the live run took. Without priming, the first replayed delta
// event would fall back to a full pass ("cold-state") — still a valid
// allocation, but potentially a different one for flows the live delta pass
// held, breaking bit-for-bit recovery. Compaction only runs at reschedule
// boundaries (never mid-batch), so the restored rates are exactly the
// allocation the live scheduler's state was captured against.
func (c *Coordinator) primeDeltaLocked() {
	if c.delta == nil {
		return
	}
	c.delta.Prime(c.buildSnapshotLocked(), c.opts.Net, c.currentRatesLocked())
}

// parkRestoredLocked quarantines every recovered group until its agent
// redials: a crash severed all sessions, so no owner is live. With a
// quarantine window configured the usual eviction timers are armed; with
// QuarantineTimeout zero (which normally means evict-on-death) recovered
// groups instead wait indefinitely — evicting everything a moment after
// recovering it would make recovery pointless.
func (c *Coordinator) parkRestoredLocked() int {
	parkedAt := c.opts.Clock()
	parked := 0
	for gid, g := range c.groups {
		parked++
		g.parked = true
		g.parkGen++
		g.parkedAt = parkedAt
		for _, f := range g.flows {
			f.rate = 0
		}
		if c.opts.QuarantineTimeout > 0 {
			gid, gen := gid, g.parkGen
			time.AfterFunc(c.opts.QuarantineTimeout, func() { c.evictIfStillParked(gid, gen) })
		}
	}
	return parked
}

// Restore builds a Coordinator from a journal directory, replaying any
// prior state, and enables journaling for the new incarnation. An empty or
// missing directory is a fresh start: behavior is identical to New plus
// journaling. Individually inconsistent WAL records are logged and skipped
// rather than aborting recovery.
func Restore(opts Options, dir string) (*Coordinator, error) {
	rec, err := journal.Restore(dir)
	if err != nil {
		return nil, fmt.Errorf("coordinator: restore: %w", err)
	}
	c, err := New(opts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replaying = true
	if c.degrade != nil {
		// Replay must re-run the recorded passes unbounded: a budget overrun
		// here would substitute fallback allocations where the live run used
		// the primary, silently breaking bit-for-bit recovery.
		c.degrade.Bypass(true)
		defer c.degrade.Bypass(false)
	}
	if rec.Snapshot != nil {
		if err := c.applySnapshotLocked(rec.Snapshot); err != nil {
			c.replaying = false
			return nil, err
		}
		c.primeDeltaLocked()
	}
	for _, raw := range rec.Tail {
		var ev journalEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			c.opts.Logf("coordinator: skipping corrupt journal record: %v", err)
			continue
		}
		if err := c.applyJournalLocked(ev); err != nil {
			c.opts.Logf("coordinator: skipping journal record %s@%v: %v", ev.Kind, ev.At, err)
		}
	}
	c.replaying = false
	if rec.Torn {
		c.opts.Logf("coordinator: journal had a torn final record (crash mid-append); dropped")
	}
	parked := c.parkRestoredLocked()

	j, err := journal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("coordinator: restore: %w", err)
	}
	if opts.GroupCommit > 0 {
		if err := j.SetGroupCommit(opts.GroupCommit, opts.GroupCommitBytes); err != nil {
			j.Close()
			return nil, fmt.Errorf("coordinator: restore: %w", err)
		}
	}
	c.journal = j
	if rec.Snapshot == nil && len(rec.Tail) == 0 {
		// Fresh journal: record when this coordinator's clock started so a
		// future Restore reconstructs the same time base.
		c.appendJournalLocked(journalEvent{Kind: jGenesis, Wall: c.start.UnixNano()})
	} else {
		// Compact what was just replayed so the next crash recovers from
		// one snapshot instead of re-replaying history.
		c.snapshotLocked()
		c.opts.Logf("coordinator: restored %d group(s) from %s (%d quarantined awaiting rejoin)",
			len(c.groups), dir, parked)
	}
	return c, nil
}
