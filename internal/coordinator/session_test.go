package coordinator

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// rawSession is a minimal protocol client for session-level tests.
type rawSession struct {
	conn  net.Conn
	codec *wire.Codec
}

func dialRaw(t *testing.T, addr, name string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewCodec(conn)
	if err := c.Send(wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Agent: name}}); err != nil {
		t.Fatal(err)
	}
	return &rawSession{conn: conn, codec: c}
}

// recvAllocation reads messages until an allocation arrives.
func (s *rawSession) recvAllocation(t *testing.T) map[string]unit.Rate {
	t.Helper()
	s.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		msg, err := s.codec.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		switch msg.Type {
		case wire.TypeAllocation:
			return msg.Allocation.Rates
		case wire.TypeError:
			t.Fatalf("coordinator error: %s", msg.Error.Msg)
		}
	}
}

func startServer(t *testing.T) (*Coordinator, string, func()) {
	t.Helper()
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Serve(ctx, ln)
	}()
	return c, ln.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

// Delta pushes: a flow whose rate is unchanged between reschedules is not
// re-sent; a changed rate is. The clock is frozen so the fluid model sees
// both reschedules at the same instant and f0's rate cannot drift between
// them — the assertion is about delta filtering, not scheduling jitter.
func TestDeltaAllocationPushes(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	coord, err0 := New(Options{Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		Clock: clk.now, Logf: t.Logf})
	if err0 != nil {
		t.Fatal(err0)
	}
	ln, err0 := net.Listen("tcp", "127.0.0.1:0")
	if err0 != nil {
		t.Fatal(err0)
	}
	srvCtx, cancel := context.WithCancel(context.Background())
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() { defer srvWG.Done(); _ = coord.Serve(srvCtx, ln) }()
	addr, stop := ln.Addr().String(), func() { cancel(); srvWG.Wait() }
	defer stop()
	s := dialRaw(t, addr, "a1")
	defer s.conn.Close()

	g := pipelineGroup(t) // f0 (20 bytes), f1 (20 bytes), w1->w2, T=2
	reg, err := wire.RegisterOf(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	release := func(id string) {
		if err := s.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
			FlowEvent: &wire.FlowEvent{GroupID: "job/pp", FlowID: id, Event: wire.EventReleased}}); err != nil {
			t.Fatal(err)
		}
	}
	release("f0")
	first := s.recvAllocation(t)
	if _, ok := first["f0"]; !ok {
		t.Fatalf("first allocation = %v, want f0", first)
	}
	release("f1")
	second := s.recvAllocation(t)
	if _, ok := second["f1"]; !ok {
		t.Fatalf("second allocation = %v, want f1 entry", second)
	}
	computed, pushed := coord.PushStats()
	if pushed >= computed {
		t.Errorf("delta filtering saved nothing: computed %d, pushed %d", computed, pushed)
	}
	if pushed == 0 {
		t.Error("nothing pushed at all")
	}
}

// A new session receives full state on its first allocation, not a delta
// against some other session's history.
func TestPerSessionDeltaState(t *testing.T) {
	_, addr, stop := startServer(t)
	defer stop()
	a := dialRaw(t, addr, "a1")
	defer a.conn.Close()

	g := pipelineGroup(t)
	reg, _ := wire.RegisterOf(g)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	if err := a.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "job/pp", FlowID: "f0", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}
	if rates := a.recvAllocation(t); rates["f0"] <= 0 {
		t.Fatalf("a1 allocation = %v", rates)
	}

	// Second agent joins; a reschedule (triggered by f1's release) must
	// deliver f0's unchanged rate to it as well, since it has never seen it.
	b := dialRaw(t, addr, "a2")
	defer b.conn.Close()
	if err := a.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: "job/pp", FlowID: "f1", Event: wire.EventReleased}}); err != nil {
		t.Fatal(err)
	}
	rates := b.recvAllocation(t)
	if _, ok := rates["f0"]; !ok {
		t.Errorf("new session missing f0 state: %v", rates)
	}
}

// A disconnecting agent's groups are dropped and capacity reallocated.
func TestSessionDropUnregisters(t *testing.T) {
	coord, addr, stop := startServer(t)
	defer stop()
	a := dialRaw(t, addr, "a1")
	g := pipelineGroup(t)
	reg, _ := wire.RegisterOf(g)
	if err := a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	// Wait until the registration is applied.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := coord.GroupStatus("job/pp"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registration never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
	a.conn.Close()
	for {
		if _, _, err := coord.GroupStatus("job/pp"); err != nil {
			break // dropped
		}
		if time.Now().After(deadline) {
			t.Fatal("group not dropped after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Bad handshakes and unknown messages don't wedge the server.
func TestBadClients(t *testing.T) {
	coord, addr, stop := startServer(t)
	defer stop()
	// No hello: send a register first.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewCodec(conn)
	g := pipelineGroup(t)
	reg, _ := wire.RegisterOf(g)
	_ = c.Send(wire.Message{Type: wire.TypeRegister, Register: &reg})
	conn.Close()

	// Hello then an unexpected hello again: server replies with an error
	// but keeps serving.
	s := dialRaw(t, addr, "weird")
	defer s.conn.Close()
	if err := s.codec.Send(wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Agent: "again"}}); err != nil {
		t.Fatal(err)
	}
	s.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := s.codec.Recv()
	if err != nil || msg.Type != wire.TypeError {
		t.Fatalf("want error reply, got %v, %v", msg.Type, err)
	}
	// The coordinator is still healthy.
	if err := coord.RegisterGroup("direct", g); err != nil {
		t.Errorf("coordinator wedged: %v", err)
	}
}

// An agent that stops talking (no heartbeats) is dropped after the session
// timeout and its groups unregistered; a heartbeating agent survives.
func TestSessionTimeout(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	coord, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SessionTimeout: 150 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = coord.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()

	silent := dialRaw(t, ln.Addr().String(), "silent")
	defer silent.conn.Close()
	g, _ := core.NewCoflow("quiet/g", &core.Flow{ID: "q", Src: "w1", Dst: "w2", Size: 1})
	reg, _ := wire.RegisterOf(g)
	if err := silent.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := coord.GroupStatus("quiet/g"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registration never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Chatty keeps heartbeating and must survive past the timeout window.
	chatty := dialRaw(t, ln.Addr().String(), "chatty")
	defer chatty.conn.Close()
	g2, _ := core.NewCoflow("chatty/g", &core.Flow{ID: "c", Src: "w1", Dst: "w2", Size: 1})
	reg2, _ := wire.RegisterOf(g2)
	if err := chatty.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg2}); err != nil {
		t.Fatal(err)
	}
	stopBeat := make(chan struct{})
	var beatWG sync.WaitGroup
	beatWG.Add(1)
	go func() {
		defer beatWG.Done()
		tk := time.NewTicker(50 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-tk.C:
				if err := chatty.codec.Send(wire.Message{Type: wire.TypeHeartbeat}); err != nil {
					return
				}
			}
		}
	}()
	defer func() { close(stopBeat); beatWG.Wait() }()

	// The silent session must be dropped (its group unregistered).
	for {
		if _, _, err := coord.GroupStatus("quiet/g"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent session never timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The chatty session's group survives well past the timeout.
	time.Sleep(400 * time.Millisecond)
	if _, _, err := coord.GroupStatus("chatty/g"); err != nil {
		t.Errorf("heartbeating session dropped: %v", err)
	}
}

// An agent that sends nothing but is actively and successfully being pushed
// to is not dead: the read deadline is re-armed as long as outbound sends
// land within the window. Once the pushes stop, the session times out.
func TestSessionSurvivesOnOutboundActivity(t *testing.T) {
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2")
	coord, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		SessionTimeout: 150 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = coord.Serve(ctx, ln) }()
	defer wg.Wait()
	defer cancel()

	// The watcher registers a group, then never sends again — but keeps
	// draining its socket, as any live agent does.
	watcher := dialRaw(t, ln.Addr().String(), "watcher")
	defer watcher.conn.Close()
	ga, _ := core.NewCoflow("watch/g", &core.Flow{ID: "q", Src: "w1", Dst: "w2", Size: 1})
	rega, _ := wire.RegisterOf(ga)
	if err := watcher.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &rega}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := watcher.codec.Recv(); err != nil {
				return
			}
		}
	}()

	// The driver's flow releases re-solve the shared w1->w2 port, so every
	// event pushes a fresh allocation delta to the watcher.
	driver := dialRaw(t, ln.Addr().String(), "driver")
	defer driver.conn.Close()
	var driverFlows []*core.Flow
	for i := 0; i < 12; i++ {
		driverFlows = append(driverFlows, &core.Flow{ID: fmt.Sprintf("b%d", i), Src: "w1", Dst: "w2", Size: 100})
	}
	gb, _ := core.NewCoflow("drive/g", driverFlows...)
	regb, _ := wire.RegisterOf(gb)
	if err := driver.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &regb}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := driver.codec.Recv(); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 12; i++ {
		if err := driver.codec.Send(wire.Message{Type: wire.TypeFlowEvent,
			FlowEvent: &wire.FlowEvent{GroupID: "drive/g", FlowID: fmt.Sprintf("b%d", i), Event: wire.EventReleased}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(60 * time.Millisecond)
	}
	// 720ms of inbound silence — nearly 5 timeout windows — but the pushes
	// kept the watcher alive.
	if _, _, err := coord.GroupStatus("watch/g"); err != nil {
		t.Fatalf("pushed-to session dropped despite outbound activity: %v", err)
	}

	// Driver hangs up; with no more flow events there are no more pushes,
	// and the still-silent watcher must now time out.
	driver.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := coord.GroupStatus("watch/g"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent session never timed out after pushes stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
