package coordinator

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/wire"
)

// startLimitedServer is startServer with redial admission control.
func startLimitedServer(t *testing.T, rate, burst float64) (*Coordinator, string, func()) {
	t.Helper()
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(10, "w1", "w2", "w3")
	c, err := New(Options{
		Net: netModel, Scheduler: sched.EchelonMADD{Backfill: true},
		RedialRate: rate, RedialBurst: burst, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Serve(ctx, ln) }()
	return c, ln.Addr().String(), func() { cancel(); wg.Wait() }
}

// An agent redialing in a tight loop is admitted only up to the burst; its
// excess handshakes are turned away before they can churn session adoption,
// and an unrelated agent connects untouched.
func TestRedialRateLimit(t *testing.T) {
	coord, addr, stop := startLimitedServer(t, 0.1, 2)
	defer stop()

	const flaps = 6
	denied := 0
	for i := 0; i < flaps; i++ {
		s := dialRaw(t, addr, "flapper")
		// Admitted sessions stay open: tearing one down would evict the
		// flapper's groups (quarantine is off here) before they're counted.
		defer s.conn.Close()
		g, err := core.NewCoflow(fmt.Sprintf("flap/%d", i),
			&core.Flow{ID: fmt.Sprintf("fl%d", i), Src: "w1", Dst: "w2", Size: 5})
		if err != nil {
			t.Fatal(err)
		}
		reg, _ := wire.RegisterOf(g)
		_ = s.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg})
		// A denied handshake gets a protocol error and a closed conn; an
		// admitted one processes the register and pushes nothing yet.
		s.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if msg, err := s.codec.Recv(); err == nil && msg.Type == wire.TypeError {
			denied++
		}
	}
	if want := flaps - 2; denied != want {
		t.Errorf("denied %d of %d redials, want %d (burst 2)", denied, flaps, want)
	}
	registered := 0
	for i := 0; i < flaps; i++ {
		if _, _, err := coord.GroupStatus(fmt.Sprintf("flap/%d", i)); err == nil {
			registered++
		}
	}
	if registered != 2 {
		t.Errorf("%d flapper registers processed, want 2", registered)
	}

	// A different agent name draws from its own bucket.
	calm := dialRaw(t, addr, "calm")
	defer calm.conn.Close()
	g, err := core.NewCoflow("calm/g", &core.Flow{ID: "cg", Src: "w2", Dst: "w3", Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := wire.RegisterOf(g)
	if err := calm.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "calm agent's registration", func() bool {
		_, _, err := coord.GroupStatus("calm/g")
		return err == nil
	})
}
