package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestHandler(health func() error) (http.Handler, *Registry, *EventLog) {
	reg := NewRegistry()
	evl := NewEventLog(8)
	return Handler(reg, evl, health), reg, evl
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerMetrics(t *testing.T) {
	h, reg, _ := newTestHandler(nil)
	reg.Counter("c_total", "help").Add(2)
	rec := get(t, h, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 2") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	h, reg, _ := newTestHandler(nil)
	reg.Gauge("g", "").Set(3)
	rec := get(t, h, "/metrics.json")
	var fams []SnapshotFamily
	if err := json.Unmarshal(rec.Body.Bytes(), &fams); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(fams) != 1 || fams[0].Series[0].Value != 3 {
		t.Errorf("snapshot = %+v", fams)
	}
}

func TestHandlerHealthz(t *testing.T) {
	h, _, _ := newTestHandler(nil)
	if rec := get(t, h, "/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthy: code=%d body=%q", rec.Code, rec.Body.String())
	}
	h2, _, _ := newTestHandler(func() error { return fmt.Errorf("journal wedged") })
	if rec := get(t, h2, "/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "journal wedged") {
		t.Errorf("unhealthy: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestHandlerEvents(t *testing.T) {
	h, _, evl := newTestHandler(nil)
	for i := 0; i < 3; i++ {
		evl.Append(Event{Kind: EventFinish, Flow: fmt.Sprintf("f%d", i), Tardiness: float64(i)})
	}
	rec := get(t, h, "/events?n=2")
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), rec.Body.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Flow != "f2" || e.Kind != EventFinish || e.Tardiness != 2 {
		t.Errorf("last event = %+v", e)
	}
	if rec := get(t, h, "/events?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n: code = %d", rec.Code)
	}
}

func TestHandlerPprof(t *testing.T) {
	h, _, _ := newTestHandler(nil)
	if rec := get(t, h, "/debug/pprof/"); rec.Code != 200 {
		t.Errorf("pprof index code = %d", rec.Code)
	}
}

func TestStartAdmin(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up", "").Inc()
	addr, shutdown, err := StartAdmin("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
