package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "help", "path", "/x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("requests_total", "", "path", "/x") != c {
		t.Error("same labels did not return the same counter")
	}
	if r.Counter("requests_total", "", "path", "/y") == c {
		t.Error("different labels returned the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "help")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Errorf("gauge = %v, want 1", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge = %v, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("lat", "help")
	h.Observe(0)          // below the smallest bound -> bucket 0
	h.Observe(1e-6)       // exactly the first bound (inclusive)
	h.Observe(3e-6)       // between 2e-6 and 4e-6
	h.Observe(1e9)        // beyond the largest finite bound -> +Inf slot
	h.Observe(math.NaN()) // dropped
	h.Observe(-1)         // dropped
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-(1e-6+3e-6+1e9)) > 1 {
		t.Errorf("sum = %v", got)
	}
	if b := bucketOf(1e-6); b != 0 {
		t.Errorf("bucketOf(1e-6) = %d, want 0", b)
	}
	if b := bucketOf(2e-6); b != 1 {
		t.Errorf("bucketOf(2e-6) = %d, want 1 (bounds inclusive)", b)
	}
	if b := bucketOf(3e-6); b != 2 {
		t.Errorf("bucketOf(3e-6) = %d, want 2", b)
	}
	if b := bucketOf(1e9); b != histBuckets {
		t.Errorf("bucketOf(1e9) = %d, want overflow %d", b, histBuckets)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	// All instrument methods must be no-ops on nil receivers.
	c.Inc()
	c.Add(3)
	_ = c.Value()
	g.Set(1)
	g.Add(1)
	_ = g.Value()
	h.Observe(1)
	_ = h.Count()
	_ = h.Sum()
	r.Delete("x")
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Fatal(err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil snapshot = %v", snap)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestLabelKeyOrderIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", "x", "1", "y", "2")
	b := r.Counter("m", "", "y", "2", "x", "1")
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestKindConflictDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	g := r.Gauge("m", "") // conflicting kind: must not panic, not exposed
	g.Set(7)              // still usable
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != kindCounter {
		t.Errorf("snapshot after conflict = %+v", snap)
	}
}

func TestDelete(t *testing.T) {
	r := NewRegistry()
	r.Gauge("m", "", "group", "a").Set(1)
	r.Gauge("m", "", "group", "b").Set(2)
	r.Delete("m", "group", "a")
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap[0].Series[0].Value; got != 2 {
		t.Errorf("surviving series value = %v", got)
	}
}

// TestConcurrentUse exercises every mutation path under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	ev := NewEventLog(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c", "", "w", string(rune('a'+n%4))).Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h", "").Observe(float64(j) * 1e-6)
				ev.Append(Event{Kind: EventRelease, Flow: "f"})
				if j%50 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(discard{})
					_ = ev.Tail(16)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Gauge("g", "").Value(); got != 8*200 {
		t.Errorf("gauge = %v, want %v", got, 8*200)
	}
	if got := r.Histogram("h", "").Count(); got != 8*200 {
		t.Errorf("histogram count = %v", got)
	}
	if got := ev.Total(); got != 8*200 {
		t.Errorf("event total = %d", got)
	}
}
