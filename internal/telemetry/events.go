package telemetry

import (
	"sync"
	"time"
)

// Event kinds shared by the live coordinator/agent path and the simulator,
// so E-experiment traces and production traces speak one schema.
const (
	EventRelease    = "release"    // flow became transmittable
	EventFinish     = "finish"     // flow completed; Tardiness is its lateness past the deadline
	EventResume     = "resume"     // rejoined agent resumed an in-flight transfer at an offset
	EventResched    = "reschedule" // scheduler re-ran over the active flow set
	EventAlloc      = "allocation" // allocation deltas pushed to connected agents
	EventRegister   = "register"   // EchelonFlow registered
	EventUnregister = "unregister"
	EventPark       = "park"   // owner died, group quarantined
	EventRevive     = "revive" // owner rejoined, group resumed
	EventEvict      = "evict"  // quarantine expired, group removed
	EventSnapshot   = "journal-snapshot"
	EventFsync      = "journal-fsync" // a journal append fsync exceeded the slow threshold
	EventRedialOK   = "redial-accept"
	EventRedialRej  = "redial-reject"
	EventReconnect  = "reconnect"  // agent re-established its coordinator session
	EventJobQueued  = "job-queued" // job submission accepted into the arrival queue
	EventJobAdmit   = "job-admit"  // queued job placed on hosts and registered
	EventJobReject  = "job-reject" // job refused (bad spec, unsatisfiable placement)
	EventJobDepart  = "job-depart" // admitted job ran to completion and left

	// Overload-protection lifecycle (scheduler deadline budgets, event
	// backpressure, gray-failure quarantine).
	EventDegrade       = "sched-degrade"    // scheduler pass fell back (overrun/error/breaker)
	EventRecover       = "sched-recover"    // primary scheduler back in force
	EventShed          = "submission-shed"  // job submission refused above the high-water mark
	EventSendOverflow  = "send-overflow"    // session outbound buffer full; session torn down
	EventSoftQuar      = "soft-quarantine"  // straggling agent RTT above threshold; reports deadline-bounded
	EventSoftRelease   = "soft-release"     // straggler's RTT recovered below hysteresis
	EventJournalBroken = "journal-broken"   // WAL append failed; journaling latched off (fail-fast)
)

// Event is one structured lifecycle record. At is scheduler/simulation time
// in seconds; Wall is stamped at ingestion (RFC3339Nano) and is absent from
// simulator-only traces' determinism checks.
type Event struct {
	Seq       uint64  `json:"seq"`
	Wall      string  `json:"wall,omitempty"`
	At        float64 `json:"at"`
	Kind      string  `json:"kind"`
	Group     string  `json:"group,omitempty"`
	Flow      string  `json:"flow,omitempty"`
	Agent     string  `json:"agent,omitempty"`
	Tardiness float64 `json:"tardiness,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// EventLog is a bounded ring of Events: appends never block or allocate
// beyond the fixed buffer, and once full the oldest events are overwritten.
// All methods are safe for concurrent use and on a nil receiver.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	start int    // index of the oldest stored event
	n     int    // events currently stored
	seq   uint64 // events ever appended
	clock func() time.Time
}

// DefaultEventCapacity is the ring size when NewEventLog is given a
// non-positive capacity.
const DefaultEventCapacity = 4096

// NewEventLog returns a ring holding up to capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{buf: make([]Event, capacity), clock: time.Now}
}

// Append stamps the event's sequence number and wall time and stores it,
// overwriting the oldest event when the ring is full. No-op on nil.
func (l *EventLog) Append(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if e.Wall == "" && l.clock != nil {
		e.Wall = l.clock().UTC().Format(time.RFC3339Nano)
	}
	i := (l.start + l.n) % len(l.buf)
	l.buf[i] = e
	if l.n < len(l.buf) {
		l.n++
	} else {
		l.start = (l.start + 1) % len(l.buf)
	}
}

// Tail returns up to n of the most recent events, oldest first. n <= 0
// returns everything retained.
func (l *EventLog) Tail(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Event, n)
	first := l.start + l.n - n
	for i := 0; i < n; i++ {
		out[i] = l.buf[(first+i)%len(l.buf)]
	}
	return out
}

// Total reports how many events were ever appended (including overwritten
// ones).
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
