package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders sorted key/value pairs as {k="v",...}; extra pairs
// (e.g. histogram le bounds) are appended last.
func formatLabels(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, all[i], escapeLabel(all[i+1]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series in label order.
func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].labels, "\xff") < strings.Join(out[j].labels, "\xff")
	})
	return out
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative buckets, _sum and
// _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels), formatValue(s.g.Value()))
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits one histogram series: cumulative _bucket lines for
// every non-empty prefix plus the +Inf bucket, then _sum and _count.
func writeHistogram(w io.Writer, name string, s *series) error {
	var cum uint64
	// Only buckets up to the highest non-empty one are emitted individually;
	// the +Inf bucket always carries the total, so the cumulative series
	// stays valid while idle histograms cost two lines instead of 41.
	top := -1
	for i := 0; i < histBuckets; i++ {
		if s.h.counts[i].Load() > 0 {
			top = i
		}
	}
	for i := 0; i <= top; i++ {
		cum += s.h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, formatLabels(s.labels, "le", formatValue(bound(i))), cum); err != nil {
			return err
		}
	}
	total := s.h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, formatLabels(s.labels, "le", "+Inf"), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, formatLabels(s.labels), formatValue(s.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels), total)
	return err
}

// SnapshotSeries is one series' state in a JSON snapshot.
type SnapshotSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields.
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets map[string]uint64 `json:"buckets,omitempty"` // upper bound -> non-cumulative count
}

// SnapshotFamily is one metric family's state in a JSON snapshot.
type SnapshotFamily struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Series []SnapshotSeries `json:"series"`
}

// Snapshot returns a point-in-time copy of every family, for the JSON
// exposition and for tests that assert on metric values.
func (r *Registry) Snapshot() []SnapshotFamily {
	fams := r.sortedFamilies()
	out := make([]SnapshotFamily, 0, len(fams))
	for _, f := range fams {
		sf := SnapshotFamily{Name: f.name, Kind: f.kind, Help: f.help}
		for _, s := range f.sortedSeries() {
			ss := SnapshotSeries{}
			if len(s.labels) > 0 {
				ss.Labels = make(map[string]string, len(s.labels)/2)
				for i := 0; i+1 < len(s.labels); i += 2 {
					ss.Labels[s.labels[i]] = s.labels[i+1]
				}
			}
			switch f.kind {
			case kindCounter:
				ss.Value = float64(s.c.Value())
			case kindGauge:
				ss.Value = s.g.Value()
			case kindHistogram:
				ss.Count = s.h.Count()
				ss.Sum = s.h.Sum()
				ss.Buckets = make(map[string]uint64)
				for i := range s.h.counts {
					if n := s.h.counts[i].Load(); n > 0 {
						ss.Buckets[formatValue(bound(i))] = n
					}
				}
			}
			sf.Series = append(sf.Series, ss)
		}
		out = append(out, sf)
	}
	return out
}
