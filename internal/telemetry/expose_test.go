package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Requests.", "path", "/x").Add(3)
	r.Gauge("temp", "Temperature.").Set(1.5)
	r.Histogram("lat_seconds", "Latency.").Observe(3e-6)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total Requests.",
		"# TYPE reqs_total counter",
		`reqs_total{path="/x"} 3`,
		"# TYPE temp gauge",
		"temp 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="4e-06"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 3e-06",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	h.Observe(1e-6) // bucket 0
	h.Observe(1e-6)
	h.Observe(3e-6) // bucket 2
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`h_bucket{le="1e-06"} 2`,
		`h_bucket{le="2e-06"} 2`, // cumulative through the empty bucket
		`h_bucket{le="4e-06"} 3`,
		`h_bucket{le="+Inf"} 3`,
		"h_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", "k", "a\"b\\c\nd").Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `g{k="a\"b\\c\nd"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing %q in %q", want, sb.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help", "x", "1").Add(7)
	r.Histogram("h", "").Observe(5e-6)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	// Families sort by name: c before h.
	if snap[0].Name != "c" || snap[0].Series[0].Value != 7 || snap[0].Series[0].Labels["x"] != "1" {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	hs := snap[1].Series[0]
	if hs.Count != 1 || hs.Sum != 5e-6 || hs.Buckets["8e-06"] != 1 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}
