package telemetry

import (
	"testing"
	"time"
)

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: EventRelease, Flow: string(rune('a' + i))})
	}
	if got := l.Total(); got != 6 {
		t.Errorf("total = %d, want 6", got)
	}
	tail := l.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("retained = %d, want 4", len(tail))
	}
	// Oldest two ("a", "b") were overwritten; tail is oldest-first.
	if tail[0].Flow != "c" || tail[3].Flow != "f" {
		t.Errorf("tail = %v .. %v, want c .. f", tail[0].Flow, tail[3].Flow)
	}
	// Seq is monotonically increasing across overwrites.
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Errorf("seq gap at %d: %d -> %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
	if got := l.Tail(2); len(got) != 2 || got[1].Flow != "f" {
		t.Errorf("Tail(2) = %+v", got)
	}
}

func TestEventLogWallStamp(t *testing.T) {
	l := NewEventLog(2)
	l.clock = func() time.Time { return time.Unix(1000, 0) }
	l.Append(Event{Kind: EventFinish})
	l.Append(Event{Kind: EventFinish, Wall: "preset"})
	tail := l.Tail(0)
	if _, err := time.Parse(time.RFC3339Nano, tail[0].Wall); err != nil {
		t.Errorf("wall stamp %q not RFC3339Nano: %v", tail[0].Wall, err)
	}
	if tail[1].Wall != "preset" {
		t.Errorf("preset wall overwritten: %q", tail[1].Wall)
	}
}

func TestEventLogNil(t *testing.T) {
	var l *EventLog
	l.Append(Event{Kind: EventRelease})
	if got := l.Tail(5); got != nil {
		t.Errorf("nil Tail = %v", got)
	}
	if got := l.Total(); got != 0 {
		t.Errorf("nil Total = %d", got)
	}
}
