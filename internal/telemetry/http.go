package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the admin surface both daemons mount under -admin:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of every family
//	/healthz       200 "ok" (503 + message when health returns an error)
//	/events        JSONL tail of the lifecycle event ring (?n=, default 256)
//	/debug/pprof/  the standard Go profiling endpoints
//
// reg, events and health may each be nil: the corresponding endpoint then
// serves an empty (but well-formed) response.
func Handler(reg *Registry, events *EventLog, health func() error) http.Handler {
	return HandlerWith(reg, events, health, nil)
}

// HandlerWith is Handler plus daemon-specific extra routes (e.g. the
// coordinator's -chaos fault-injection endpoint). Extra routes must not
// collide with the standard surface.
func HandlerWith(reg *Registry, events *EventLog, health func() error, extra map[string]http.HandlerFunc) http.Handler {
	mux := http.NewServeMux()
	for pattern, h := range extra {
		mux.HandleFunc(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range events.Tail(n) {
			_ = enc.Encode(e)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartAdmin binds addr and serves Handler in the background — the shared
// -admin boilerplate of both daemons. It returns the bound address (useful
// with ":0") and a shutdown func.
func StartAdmin(addr string, reg *Registry, events *EventLog, health func() error) (string, func() error, error) {
	return StartAdminWith(addr, reg, events, health, nil)
}

// StartAdminWith is StartAdmin with extra routes mounted alongside the
// standard surface.
func StartAdminWith(addr string, reg *Registry, events *EventLog, health func() error, extra map[string]http.HandlerFunc) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWith(reg, events, health, extra)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
