// Package telemetry is the runtime observability layer of the live system:
// a dependency-free (stdlib-only) registry of atomic counters, gauges, and
// power-of-two-bucket latency histograms with Prometheus text-format and
// JSON exposition, plus a bounded ring of structured flow-lifecycle events.
//
// The paper's argument is about observable finish-time arrangements —
// tardiness per Eq. 3/4 and the GPU idleness cost of mis-scheduling (§1,
// Fig. 1a) — so the coordinator, agent and scheduler all report through this
// package when an admin endpoint is configured.
//
// The nil *Registry is a valid always-off registry: every accessor returns a
// nil instrument whose methods are no-ops, so instrumented code pays a
// single nil check when telemetry is unconfigured and the scheduler hot path
// stays byte-identical to an uninstrumented build.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families, each a set of label-addressed
// series. All methods are safe for concurrent use and on a nil receiver.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metric kinds, as exposed in # TYPE lines and JSON snapshots.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with a fixed kind and any number of series.
type family struct {
	name, help string
	kind       string

	mu     sync.RWMutex
	series map[string]*series
}

// series is one label combination's instrument inside a family.
type series struct {
	labels []string // alternating key, value; sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelKey canonicalizes alternating key/value pairs into a map key. Pairs
// are sorted by label name so ("a","1","b","2") and ("b","2","a","1")
// address the same series. An odd trailing key gets an empty value.
func labelKey(labels []string) (string, []string) {
	if len(labels) == 0 {
		return "", nil
	}
	if len(labels)%2 != 0 {
		labels = append(append([]string(nil), labels...), "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	norm := make([]string, 0, len(pairs)*2)
	for _, p := range pairs {
		sb.WriteString(p.k)
		sb.WriteByte('\xff')
		sb.WriteString(p.v)
		sb.WriteByte('\xfe')
		norm = append(norm, p.k, p.v)
	}
	return sb.String(), norm
}

// seriesFor finds or creates the series for name+labels, enforcing the
// family's kind. A kind conflict (e.g. Counter on a name registered as a
// gauge) returns a detached series that works but is never exposed, so
// misuse cannot corrupt the exposition.
func (r *Registry) seriesFor(name, help, kind string, labels []string) *series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		return newSeries(kind, nil)
	}
	key, norm := labelKey(labels)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s == nil {
		s = newSeries(kind, norm)
		f.series[key] = s
	}
	return s
}

func newSeries(kind string, labels []string) *series {
	s := &series{labels: labels}
	switch kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = &Histogram{}
	}
	return s
}

// Counter returns the counter series for name and the given alternating
// label key/value pairs, creating family and series on first use. Safe on a
// nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.seriesFor(name, help, kindCounter, labels)
	if s == nil {
		return nil
	}
	return s.c
}

// Gauge returns the gauge series for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.seriesFor(name, help, kindGauge, labels)
	if s == nil {
		return nil
	}
	return s.g
}

// Histogram returns the histogram series for name and labels.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.seriesFor(name, help, kindHistogram, labels)
	if s == nil {
		return nil
	}
	return s.h
}

// Delete removes one series (e.g. a departed group's tardiness gauge) so it
// stops being exposed. It reports whether a series was removed.
func (r *Registry) Delete(name string, labels ...string) bool {
	if r == nil {
		return false
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return false
	}
	key, _ := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		return false
	}
	delete(f.series, key)
	return true
}

// Counter is a monotonically increasing event count. All methods are no-ops
// on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are no-ops on a nil
// receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: histBuckets finite buckets with power-of-two
// upper bounds histBase·2^i, plus an implicit +Inf bucket. With the base at
// 1µs the finite range covers 1µs .. ~6.4 days — every latency this system
// measures — in 40 buckets of fixed relative error.
const (
	histBuckets = 40
	histBase    = 1e-6
)

// Histogram is a latency distribution with power-of-two buckets. Observe is
// lock-free; all methods are no-ops on a nil receiver.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // last slot is +Inf
	sum    Gauge
}

// bucketOf maps an observation to the smallest bucket whose inclusive upper
// bound holds it.
func bucketOf(v float64) int {
	if v <= histBase {
		return 0
	}
	frac, exp := math.Frexp(v / histBase) // v/histBase == frac·2^exp, frac ∈ [0.5, 1)
	idx := exp
	if frac == 0.5 {
		idx-- // exact powers of two land on the bound, which is inclusive
	}
	if idx >= histBuckets {
		return histBuckets // +Inf
	}
	return idx
}

// Observe records one sample. NaN and negative samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// bound returns bucket i's inclusive upper bound; +Inf for the last slot.
func bound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return histBase * math.Pow(2, float64(i))
}
