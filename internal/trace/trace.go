// Package trace renders simulation results as ASCII timelines — the
// reproduction medium for the paper's workflow figures (Figs. 1, 3, 4, 5)
// — and computes the GPU idleness statistics those figures motivate ("Delay
// or reordering of data may increase GPU idleness ... and reduce training
// efficiency", §1).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// glyphs label tasks on a timeline, cycling when exhausted.
const glyphs = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// HostTimeline is one worker's computed spans in start order.
type HostTimeline struct {
	Host  string
	Spans []TaskSpan
}

// TaskSpan is one compute node's execution on a host.
type TaskSpan struct {
	ID         string
	Start, End unit.Time
}

// Timelines extracts per-host compute timelines from a result, hosts sorted
// by name and spans by start time.
func Timelines(res *sim.Result, g *dag.Graph) []HostTimeline {
	byHost := make(map[string][]TaskSpan)
	for id, span := range res.Tasks {
		n := g.Node(id)
		if n == nil {
			continue
		}
		byHost[n.Host] = append(byHost[n.Host], TaskSpan{ID: id, Start: span.Start, End: span.End})
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	out := make([]HostTimeline, 0, len(hosts))
	for _, h := range hosts {
		spans := byHost[h]
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Start != spans[j].Start {
				return spans[i].Start < spans[j].Start
			}
			return spans[i].ID < spans[j].ID
		})
		out = append(out, HostTimeline{Host: h, Spans: spans})
	}
	return out
}

// mergedBusy computes a timeline's busy time with overlapping spans merged,
// plus the [minStart, maxEnd] window. Fault-dilated replays can produce
// nested or overlapping spans, and spans sorted by start need not end in
// order, so neither summing raw durations nor trusting the last-by-start
// span's End is safe.
func (h HostTimeline) mergedBusy() (busy unit.Time, minStart, maxEnd unit.Time) {
	if len(h.Spans) == 0 {
		return 0, 0, 0
	}
	spans := append([]TaskSpan(nil), h.Spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	minStart = spans[0].Start
	curStart, curEnd := spans[0].Start, spans[0].End
	for _, s := range spans[1:] {
		if s.Start <= curEnd {
			if s.End > curEnd {
				curEnd = s.End
			}
			continue
		}
		busy += curEnd - curStart
		curStart, curEnd = s.Start, s.End
	}
	busy += curEnd - curStart
	maxEnd = curEnd
	return busy, minStart, maxEnd
}

// Idle returns a host's total idle time between its first start and last
// end — the grey areas of the paper's Fig. 1a. Overlapping spans are merged
// so dilated replays do not overcount busy time.
func (h HostTimeline) Idle() unit.Time {
	if len(h.Spans) == 0 {
		return 0
	}
	busy, minStart, maxEnd := h.mergedBusy()
	idle := (maxEnd - minStart) - busy
	if idle < 0 {
		// Merged accounting leaves only float rounding here.
		return 0
	}
	return idle
}

// Utilization returns merged busy time divided by the full [0, makespan]
// window.
func (h HostTimeline) Utilization(makespan unit.Time) float64 {
	if makespan <= 0 {
		return 0
	}
	busy, _, _ := h.mergedBusy()
	return float64(busy) / float64(makespan)
}

// Gantt renders the per-host compute timelines as an ASCII chart `width`
// characters wide, with a legend mapping glyphs to node IDs. Idle time
// renders as '.'.
func Gantt(res *sim.Result, g *dag.Graph, width int) string {
	if width < 10 {
		width = 10
	}
	tls := Timelines(res, g)
	if len(tls) == 0 || res.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / float64(res.Makespan)
	var sb strings.Builder
	glyphOf := make(map[string]byte)
	// The glyph cycle reuses symbols past len(glyphs) tasks, so the legend
	// groups every ID sharing a glyph into one entry instead of emitting
	// duplicate-looking lines.
	idsOf := make(map[byte][]string)
	var glyphOrder []byte
	next := 0
	hostWidth := 0
	for _, tl := range tls {
		if len(tl.Host) > hostWidth {
			hostWidth = len(tl.Host)
		}
	}
	for _, tl := range tls {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range tl.Spans {
			gl, ok := glyphOf[s.ID]
			if !ok {
				gl = glyphs[next%len(glyphs)]
				next++
				glyphOf[s.ID] = gl
				if len(idsOf[gl]) == 0 {
					glyphOrder = append(glyphOrder, gl)
				}
				idsOf[gl] = append(idsOf[gl], s.ID)
			}
			from := int(float64(s.Start) * scale)
			if from >= width {
				// A span starting at the makespan (zero-duration tail task)
				// still deserves a cell.
				from = width - 1
			}
			to := int(float64(s.End) * scale)
			if to <= from {
				to = from + 1
			}
			for i := from; i < to && i < width; i++ {
				row[i] = gl
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", hostWidth, tl.Host, row)
	}
	fmt.Fprintf(&sb, "%-*s  0%*s\n", hostWidth, "t", width-1, res.Makespan.String())
	legend := make([]string, 0, len(glyphOrder))
	for _, gl := range glyphOrder {
		legend = append(legend, fmt.Sprintf("%c=%s", gl, strings.Join(idsOf[gl], ",")))
	}
	sb.WriteString("legend: " + strings.Join(legend, " ") + "\n")
	return sb.String()
}

// FlowRow is one line of a flow report.
type FlowRow struct {
	ID        string
	Group     string
	Release   unit.Time
	Finish    unit.Time
	Deadline  unit.Time
	Tardiness unit.Time
}

// FlowReport extracts flow rows sorted by finish time then ID. A non-empty
// groupFilter restricts rows to that group.
func FlowReport(res *sim.Result, groupFilter string) []FlowRow {
	var out []FlowRow
	for id, rec := range res.Flows {
		if groupFilter != "" && rec.GroupID != groupFilter {
			continue
		}
		out = append(out, FlowRow{
			ID: id, Group: rec.GroupID,
			Release: rec.Release, Finish: rec.Finish,
			Deadline: rec.Deadline, Tardiness: rec.Tardiness(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Finish != out[j].Finish {
			return out[i].Finish < out[j].Finish
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FormatFlowReport renders flow rows as a fixed-width table.
func FormatFlowReport(rows []FlowRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %-22s %10s %10s %10s %10s\n",
		"flow", "group", "release", "finish", "deadline", "tardiness")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %-22s %10s %10s %10s %10s\n",
			r.ID, r.Group, r.Release.String(), r.Finish.String(),
			r.Deadline.String(), r.Tardiness.String())
	}
	return sb.String()
}

// RateChart renders the recorded rate timeline of selected flows (requires
// sim.Options.RecordRates) — the visual of the paper's Fig. 2 schedules.
// Each flow renders one row; glyph intensity encodes the rate relative to
// maxRate: '.' idle, '-' below half, '=' at least half, '#' at least 95%.
func RateChart(res *sim.Result, flowIDs []string, maxRate unit.Rate, width int) string {
	if width < 10 {
		width = 10
	}
	if res.Makespan <= 0 || maxRate <= 0 {
		return "(empty rate chart)\n"
	}
	scale := float64(width) / float64(res.Makespan)
	var sb strings.Builder
	idWidth := 0
	for _, id := range flowIDs {
		if len(id) > idWidth {
			idWidth = len(id)
		}
	}
	for _, id := range flowIDs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range res.Rates {
			if seg.FlowID != id {
				continue
			}
			frac := float64(seg.Rate) / float64(maxRate)
			var gl byte
			switch {
			case frac >= 0.95:
				gl = '#'
			case frac >= 0.5:
				gl = '='
			default:
				gl = '-'
			}
			from := int(float64(seg.From) * scale)
			to := int(float64(seg.To) * scale)
			if to <= from {
				to = from + 1
			}
			for i := from; i < to && i < width; i++ {
				row[i] = gl
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", idWidth, id, row)
	}
	fmt.Fprintf(&sb, "%-*s  0%*s\n", idWidth, "t", width-1, res.Makespan.String())
	return sb.String()
}

// PortChart renders per-port utilization over time from the recorded rate
// timeline (requires sim.Options.RecordRates): one row per host port
// direction that carried traffic, glyphs encoding utilization relative to
// the port's capacity ('.' idle, '-' <50%, '=' <95%, '#' saturated). It
// shows where the fabric bottlenecks — the port-level view of the paper's
// big-switch model.
func PortChart(res *sim.Result, g *dag.Graph, net fabric.Fabric, width int) string {
	if width < 10 {
		width = 10
	}
	if res.Makespan <= 0 || len(res.Rates) == 0 {
		return "(empty port chart)\n"
	}
	type port struct {
		host string
		dir  string // "out" or "in"
	}
	// Integrate per-column average utilization.
	cols := make(map[port][]float64)
	colWidth := float64(res.Makespan) / float64(width)
	add := func(p port, seg sim.RateSegment) {
		row, ok := cols[p]
		if !ok {
			row = make([]float64, width)
			cols[p] = row
		}
		from, to := float64(seg.From), float64(seg.To)
		for c := int(from / colWidth); c < width; c++ {
			lo := float64(c) * colWidth
			hi := lo + colWidth
			if lo >= to {
				break
			}
			overlap := math.Min(hi, to) - math.Max(lo, from)
			if overlap > 0 {
				row[c] += float64(seg.Rate) * overlap / colWidth
			}
		}
	}
	for _, seg := range res.Rates {
		n := g.Node(seg.FlowID)
		if n == nil {
			continue
		}
		add(port{n.Src, "out"}, seg)
		add(port{n.Dst, "in"}, seg)
	}
	ports := make([]port, 0, len(cols))
	for p := range cols {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].host != ports[j].host {
			return ports[i].host < ports[j].host
		}
		return ports[i].dir < ports[j].dir
	})
	nameWidth := 0
	for _, p := range ports {
		if n := len(p.host) + 4; n > nameWidth {
			nameWidth = n
		}
	}
	var sb strings.Builder
	for _, p := range ports {
		h := net.Host(p.host)
		if h == nil {
			continue
		}
		cap := float64(h.Egress)
		if p.dir == "in" {
			cap = float64(h.Ingress)
		}
		row := make([]byte, width)
		for c, used := range cols[p] {
			frac := 0.0
			if cap > 0 {
				frac = used / cap
			}
			switch {
			case frac < 0.02:
				row[c] = '.'
			case frac < 0.5:
				row[c] = '-'
			case frac < 0.95:
				row[c] = '='
			default:
				row[c] = '#'
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", nameWidth, p.host+" "+p.dir, row)
	}
	fmt.Fprintf(&sb, "%-*s  0%*s\n", nameWidth, "t", width-1, res.Makespan.String())
	return sb.String()
}
