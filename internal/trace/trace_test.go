package trace

import (
	"fmt"
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// tinyRun simulates two serial computes with a connecting flow.
func tinyRun(t *testing.T, record bool) (*sim.Result, *dag.Graph) {
	t.Helper()
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c1", Kind: dag.Compute, Host: "a", Duration: 2})
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 2, Group: "g"})
	g.MustAdd(&dag.Node{ID: "c2", Kind: dag.Compute, Host: "b", Duration: 2})
	g.MustDepend("c1", "f")
	g.MustDepend("f", "c2")
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, err := sim.New(sim.Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Arrangements: map[string]core.Arrangement{"g": core.Coflow{}},
		RecordRates:  record,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestTimelines(t *testing.T) {
	res, g := tinyRun(t, false)
	tls := Timelines(res, g)
	if len(tls) != 2 {
		t.Fatalf("timelines = %d", len(tls))
	}
	if tls[0].Host != "a" || tls[1].Host != "b" {
		t.Errorf("host order = %v, %v", tls[0].Host, tls[1].Host)
	}
	if len(tls[0].Spans) != 1 || tls[0].Spans[0].ID != "c1" {
		t.Errorf("a spans = %+v", tls[0].Spans)
	}
	// c2 runs [4,6]: util = 2/6.
	u := tls[1].Utilization(res.Makespan)
	if u < 0.33 || u > 0.34 {
		t.Errorf("utilization = %v", u)
	}
}

func TestIdle(t *testing.T) {
	h := HostTimeline{Host: "h", Spans: []TaskSpan{
		{ID: "x", Start: 1, End: 2},
		{ID: "y", Start: 4, End: 5},
	}}
	if got := h.Idle(); !got.ApproxEq(2) {
		t.Errorf("Idle = %v, want 2", got)
	}
	if got := (HostTimeline{}).Idle(); got != 0 {
		t.Errorf("empty Idle = %v", got)
	}
	if got := (HostTimeline{}).Utilization(0); got != 0 {
		t.Errorf("zero-makespan utilization = %v", got)
	}
}

// TestIdleNestedSpans regression-tests the two old Idle bugs: a window
// derived from the last-by-start span's End (wrong when an earlier span ends
// later) and raw-duration summing (overcounts overlap).
func TestIdleNestedSpans(t *testing.T) {
	// y nests inside x: the host is busy [0,10] with no idle at all, but the
	// buggy accounting summed 10+2=12 busy over a window ending at y.End=5.
	h := HostTimeline{Host: "h", Spans: []TaskSpan{
		{ID: "x", Start: 0, End: 10},
		{ID: "y", Start: 3, End: 5},
	}}
	if got := h.Idle(); got != 0 {
		t.Errorf("nested Idle = %v, want 0", got)
	}
	if got := h.Utilization(20); got != 0.5 {
		t.Errorf("nested Utilization = %v, want 0.5 (10 busy / 20)", got)
	}

	// Out-of-order ends: sorted by start, the last span ends before the
	// first. Window is [0,10], busy = [0,10] merged with [2,4] = 10.
	h = HostTimeline{Host: "h", Spans: []TaskSpan{
		{ID: "b", Start: 2, End: 4},
		{ID: "a", Start: 0, End: 10},
	}}
	if got := h.Idle(); got != 0 {
		t.Errorf("out-of-order-end Idle = %v, want 0", got)
	}

	// Partial overlap plus a gap: [0,4]∪[2,6] merges to [0,6]; gap to [8,9]
	// is 2 idle over window [0,9].
	h = HostTimeline{Host: "h", Spans: []TaskSpan{
		{ID: "a", Start: 0, End: 4},
		{ID: "b", Start: 2, End: 6},
		{ID: "c", Start: 8, End: 9},
	}}
	if got := h.Idle(); !got.ApproxEq(2) {
		t.Errorf("overlap Idle = %v, want 2", got)
	}
	if got := h.Utilization(10); got != 0.7 {
		t.Errorf("overlap Utilization = %v, want 0.7 (7 busy / 10)", got)
	}
}

func TestGantt(t *testing.T) {
	res, g := tinyRun(t, false)
	out := Gantt(res, g, 60)
	if !strings.Contains(out, "a ") || !strings.Contains(out, "b ") {
		t.Errorf("gantt missing hosts:\n%s", out)
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "c1") {
		t.Errorf("gantt missing legend:\n%s", out)
	}
	// Host b idles (dots) before c2 runs.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], ".") {
		t.Errorf("expected idle dots on host b row: %q", lines[1])
	}
	// Degenerate width clamps.
	if Gantt(res, g, 1) == "" {
		t.Error("small width produced nothing")
	}
}

// TestGanttGlyphCycleAndClamp regression-tests two rendering bugs: a task
// starting exactly at the makespan was dropped (its scaled column landed one
// past the row), and past 62 tasks the glyph cycle emitted duplicate legend
// entries instead of grouping IDs per glyph.
func TestGanttGlyphCycleAndClamp(t *testing.T) {
	g := dag.New()
	res := &sim.Result{Tasks: map[string]sim.Span{}, Makespan: 70}
	// 70 unit tasks on one host: glyphs wrap after 62.
	for i := 0; i < 70; i++ {
		id := fmt.Sprintf("t%02d", i)
		g.MustAdd(&dag.Node{ID: id, Kind: dag.Compute, Host: "h1", Duration: 1})
		res.Tasks[id] = sim.Span{Start: unit.Time(i), End: unit.Time(i + 1)}
	}
	// A zero-duration task starting at the makespan on another host.
	g.MustAdd(&dag.Node{ID: "tail", Kind: dag.Compute, Host: "h2"})
	res.Tasks["tail"] = sim.Span{Start: 70, End: 70}

	out := Gantt(res, g, 70)
	if !strings.Contains(out, "tail") {
		t.Errorf("legend lost the makespan-start task:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Row 2 is h2: the clamped tail task (glyph 'A' — the 71st assignment
	// in the 61-glyph cycle) must occupy the final cell, not be dropped.
	h2row := lines[1]
	if !strings.HasSuffix(strings.TrimSuffix(h2row, "|"), "A") {
		t.Errorf("h2 row does not end with the tail task's glyph: %q", h2row)
	}
	// The legend groups glyph-sharing IDs: glyph '1' maps to both t00 and
	// the 62nd task (t61), and appears exactly once.
	var legend string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "legend:") {
			legend = ln
		}
	}
	if n := strings.Count(legend, " 1="); n != 1 {
		t.Errorf("glyph '1' has %d legend entries, want 1:\n%s", n, legend)
	}
	if !strings.Contains(legend, "1=t00,t61") {
		t.Errorf("legend does not group glyph-sharing IDs:\n%s", legend)
	}
	if !strings.Contains(legend, "A=t09,tail") {
		t.Errorf("legend does not group the clamped tail task:\n%s", legend)
	}
}

func TestGanttEmpty(t *testing.T) {
	res := &sim.Result{Tasks: map[string]sim.Span{}}
	if got := Gantt(res, dag.New(), 40); !strings.Contains(got, "empty") {
		t.Errorf("empty gantt = %q", got)
	}
}

func TestFlowReport(t *testing.T) {
	res, _ := tinyRun(t, false)
	rows := FlowReport(res, "")
	if len(rows) != 1 || rows[0].ID != "f" {
		t.Fatalf("rows = %+v", rows)
	}
	// Flow released at 2, finishes at 4, coflow deadline = release = 2.
	if !rows[0].Release.ApproxEq(2) || !rows[0].Finish.ApproxEq(4) || !rows[0].Tardiness.ApproxEq(2) {
		t.Errorf("row = %+v", rows[0])
	}
	if got := FlowReport(res, "other"); len(got) != 0 {
		t.Errorf("filtered rows = %+v", got)
	}
	text := FormatFlowReport(rows)
	if !strings.Contains(text, "tardiness") || !strings.Contains(text, "f") {
		t.Errorf("formatted report = %q", text)
	}
}

func TestRateChart(t *testing.T) {
	res, _ := tinyRun(t, true)
	out := RateChart(res, []string{"f"}, 1, 40)
	if !strings.Contains(out, "#") {
		t.Errorf("full-rate flow should render '#':\n%s", out)
	}
	empty := RateChart(&sim.Result{}, []string{"f"}, 1, 40)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty chart = %q", empty)
	}
	if RateChart(res, []string{"f"}, 0, 40) == "" {
		t.Error("zero maxRate should still return text")
	}
	if !strings.Contains(RateChart(res, []string{"f"}, 1, 1), "|") {
		t.Error("tiny width should clamp, not break")
	}
}

func TestRateChartIntensity(t *testing.T) {
	res := &sim.Result{
		Makespan: 10,
		Rates: []sim.RateSegment{
			{FlowID: "x", From: 0, To: 5, Rate: 0.3},
			{FlowID: "x", From: 5, To: 10, Rate: 0.6},
		},
	}
	out := RateChart(res, []string{"x"}, 1, 20)
	if !strings.Contains(out, "-") || !strings.Contains(out, "=") {
		t.Errorf("intensity glyphs missing:\n%s", out)
	}
	_ = unit.Time(0)
}

func TestPortChart(t *testing.T) {
	res, g := tinyRun(t, true)
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	out := PortChart(res, g, net, 40)
	if !strings.Contains(out, "a out") || !strings.Contains(out, "b in") {
		t.Errorf("missing port rows:\n%s", out)
	}
	// The flow runs [2,4] at full rate: the middle of the chart saturates.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "#") {
		t.Errorf("expected saturation glyphs:\n%s", out)
	}
	if !strings.Contains(lines[0], ".") {
		t.Errorf("expected idle glyphs before the flow:\n%s", out)
	}
	empty := PortChart(&sim.Result{}, g, net, 40)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty chart = %q", empty)
	}
}
