package trace

import (
	"strings"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// tinyRun simulates two serial computes with a connecting flow.
func tinyRun(t *testing.T, record bool) (*sim.Result, *dag.Graph) {
	t.Helper()
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c1", Kind: dag.Compute, Host: "a", Duration: 2})
	g.MustAdd(&dag.Node{ID: "f", Kind: dag.Comm, Src: "a", Dst: "b", Size: 2, Group: "g"})
	g.MustAdd(&dag.Node{ID: "c2", Kind: dag.Compute, Host: "b", Duration: 2})
	g.MustDepend("c1", "f")
	g.MustDepend("f", "c2")
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	s, err := sim.New(sim.Options{
		Graph: g, Net: net, Scheduler: sched.Fair{},
		Arrangements: map[string]core.Arrangement{"g": core.Coflow{}},
		RecordRates:  record,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestTimelines(t *testing.T) {
	res, g := tinyRun(t, false)
	tls := Timelines(res, g)
	if len(tls) != 2 {
		t.Fatalf("timelines = %d", len(tls))
	}
	if tls[0].Host != "a" || tls[1].Host != "b" {
		t.Errorf("host order = %v, %v", tls[0].Host, tls[1].Host)
	}
	if len(tls[0].Spans) != 1 || tls[0].Spans[0].ID != "c1" {
		t.Errorf("a spans = %+v", tls[0].Spans)
	}
	// c2 runs [4,6]: util = 2/6.
	u := tls[1].Utilization(res.Makespan)
	if u < 0.33 || u > 0.34 {
		t.Errorf("utilization = %v", u)
	}
}

func TestIdle(t *testing.T) {
	h := HostTimeline{Host: "h", Spans: []TaskSpan{
		{ID: "x", Start: 1, End: 2},
		{ID: "y", Start: 4, End: 5},
	}}
	if got := h.Idle(); !got.ApproxEq(2) {
		t.Errorf("Idle = %v, want 2", got)
	}
	if got := (HostTimeline{}).Idle(); got != 0 {
		t.Errorf("empty Idle = %v", got)
	}
	if got := (HostTimeline{}).Utilization(0); got != 0 {
		t.Errorf("zero-makespan utilization = %v", got)
	}
}

func TestGantt(t *testing.T) {
	res, g := tinyRun(t, false)
	out := Gantt(res, g, 60)
	if !strings.Contains(out, "a ") || !strings.Contains(out, "b ") {
		t.Errorf("gantt missing hosts:\n%s", out)
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "c1") {
		t.Errorf("gantt missing legend:\n%s", out)
	}
	// Host b idles (dots) before c2 runs.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], ".") {
		t.Errorf("expected idle dots on host b row: %q", lines[1])
	}
	// Degenerate width clamps.
	if Gantt(res, g, 1) == "" {
		t.Error("small width produced nothing")
	}
}

func TestGanttEmpty(t *testing.T) {
	res := &sim.Result{Tasks: map[string]sim.Span{}}
	if got := Gantt(res, dag.New(), 40); !strings.Contains(got, "empty") {
		t.Errorf("empty gantt = %q", got)
	}
}

func TestFlowReport(t *testing.T) {
	res, _ := tinyRun(t, false)
	rows := FlowReport(res, "")
	if len(rows) != 1 || rows[0].ID != "f" {
		t.Fatalf("rows = %+v", rows)
	}
	// Flow released at 2, finishes at 4, coflow deadline = release = 2.
	if !rows[0].Release.ApproxEq(2) || !rows[0].Finish.ApproxEq(4) || !rows[0].Tardiness.ApproxEq(2) {
		t.Errorf("row = %+v", rows[0])
	}
	if got := FlowReport(res, "other"); len(got) != 0 {
		t.Errorf("filtered rows = %+v", got)
	}
	text := FormatFlowReport(rows)
	if !strings.Contains(text, "tardiness") || !strings.Contains(text, "f") {
		t.Errorf("formatted report = %q", text)
	}
}

func TestRateChart(t *testing.T) {
	res, _ := tinyRun(t, true)
	out := RateChart(res, []string{"f"}, 1, 40)
	if !strings.Contains(out, "#") {
		t.Errorf("full-rate flow should render '#':\n%s", out)
	}
	empty := RateChart(&sim.Result{}, []string{"f"}, 1, 40)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty chart = %q", empty)
	}
	if RateChart(res, []string{"f"}, 0, 40) == "" {
		t.Error("zero maxRate should still return text")
	}
	if !strings.Contains(RateChart(res, []string{"f"}, 1, 1), "|") {
		t.Error("tiny width should clamp, not break")
	}
}

func TestRateChartIntensity(t *testing.T) {
	res := &sim.Result{
		Makespan: 10,
		Rates: []sim.RateSegment{
			{FlowID: "x", From: 0, To: 5, Rate: 0.3},
			{FlowID: "x", From: 5, To: 10, Rate: 0.6},
		},
	}
	out := RateChart(res, []string{"x"}, 1, 20)
	if !strings.Contains(out, "-") || !strings.Contains(out, "=") {
		t.Errorf("intensity glyphs missing:\n%s", out)
	}
	_ = unit.Time(0)
}

func TestPortChart(t *testing.T) {
	res, g := tinyRun(t, true)
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b")
	out := PortChart(res, g, net, 40)
	if !strings.Contains(out, "a out") || !strings.Contains(out, "b in") {
		t.Errorf("missing port rows:\n%s", out)
	}
	// The flow runs [2,4] at full rate: the middle of the chart saturates.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "#") {
		t.Errorf("expected saturation glyphs:\n%s", out)
	}
	if !strings.Contains(lines[0], ".") {
		t.Errorf("expected idle glyphs before the flow:\n%s", out)
	}
	empty := PortChart(&sim.Result{}, g, net, 40)
	if !strings.Contains(empty, "empty") {
		t.Errorf("empty chart = %q", empty)
	}
}
