package experiments

import (
	"fmt"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// CaseStudies verifies the §4 case-study arrangement functions against
// their closed forms: Eq. 5 for the Coflow-compliant paradigms, Eq. 6 for
// pipeline parallelism, Eq. 7 for FSDP — as declared by the workload
// compilers.
func CaseStudies() (*Report, error) {
	r := &Report{ID: "cases", Title: "Case-study arrangement functions (paper §4)"}
	r.Table = metrics.NewTable("paradigm", "group", "arrangement", "d_0..d_3 at r=10")

	probes := []struct {
		paradigm, group string
		wantKind        string
	}{
		{"DP-AllReduce", "dp/it0/ar0", "coflow"},
		{"DP-PS", "ps/it0/push0", "coflow"},
		{"PP", "pp/it0/fwd0", "pipeline"},
		{"TP", "tp/it0/as0", "coflow"},
		{"FSDP", "fsdp/it0/ag", "staged"},
	}
	byName := map[string]paradigm{}
	for _, p := range standardParadigms() {
		byName[p.name] = p
	}
	for _, probe := range probes {
		w, err := byName[probe.paradigm].build()
		if err != nil {
			return nil, err
		}
		arr, ok := w.Arrangements[probe.group]
		if !ok {
			return nil, fmt.Errorf("experiments: %s has no group %q", probe.paradigm, probe.group)
		}
		var ds string
		for s := 0; s < 4; s++ {
			ds += arr.Deadline(s, 10).String() + " "
		}
		r.Table.AddRow(probe.paradigm, probe.group, arr.Name(), ds)
		r.check(probe.paradigm+" arrangement kind", arr.Name() == probe.wantKind,
			"%s (want %s)", arr.Name(), probe.wantKind)

		switch probe.wantKind {
		case "coflow":
			// Eq. 5: d_j = r.
			ok := arr.Deadline(0, 10).ApproxEq(10) && arr.Deadline(3, 10).ApproxEq(10)
			r.check(probe.paradigm+" matches Eq. 5", ok, "all deadlines = r")
		case "pipeline":
			// Eq. 6: d_j = r + j*T with T = consuming stage's time (1).
			p := arr.(core.Pipeline)
			ok := arr.Deadline(2, 10).ApproxEq(10 + 2*p.T)
			r.check(probe.paradigm+" matches Eq. 6", ok, "d_j = r + j*T, T = %v", p.T)
		case "staged":
			// Eq. 7 for a uniform model (fwd 0.75, bwd 1, 4 layers).
			eq7, err := core.NewFSDP(4, 0.75, 1)
			if err != nil {
				return nil, err
			}
			ok := true
			for s := 0; s < 8; s++ {
				if !arr.Deadline(s, 10).ApproxEq(eq7.Deadline(s, 10)) {
					ok = false
				}
			}
			r.check(probe.paradigm+" matches Eq. 7", ok, "2n staged deadlines from T_fwd/T_bwd")
		}
	}
	return r, nil
}

// Property1: EchelonFlow scheduling minimizes completion times of the
// popular paradigms — across every scheduler in the suite, EchelonMADD with
// backfill attains the best (or tied-best) makespan on each Table 1
// paradigm.
func Property1() (*Report, error) {
	r := &Report{ID: "prop1", Title: "Property 1: paradigm completion-time optimality"}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
		sched.SRPT{},
		sched.FIFO{},
		sched.EDF{},
	}
	r.Table = metrics.NewTable(append([]string{"paradigm"}, schedNames(schedulers)...)...)
	for _, p := range standardParadigms() {
		times := make([]unit.Time, len(schedulers))
		cells := make([]interface{}, 0, len(schedulers)+1)
		cells = append(cells, p.name)
		for i, s := range schedulers {
			_, res, err := runParadigm(p, s)
			if err != nil {
				return nil, err
			}
			times[i] = res.Makespan
			cells = append(cells, float64(res.Makespan))
		}
		r.Table.AddRowf(cells...)
		best := times[0]
		for _, t := range times[1:] {
			if t < best {
				best = t
			}
		}
		// Allow 1% heuristic slack.
		r.check(p.name+": echelon attains the best makespan", float64(times[0]) <= float64(best)*1.01,
			"echelon %v vs best %v", times[0], best)
	}
	return r, nil
}

func schedNames(ss []sched.Scheduler) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}

// Property2: a Coflow presented as an EchelonFlow behaves identically under
// EchelonFlow scheduling and Coflow scheduling — same rates, same
// completion time — and minimizing tardiness equals minimizing CCT.
func Property2() (*Report, error) {
	r := &Report{ID: "prop2", Title: "Property 2: Coflow ⊂ EchelonFlow"}
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "a", "b", "c")
	g, err := core.NewCoflow("c1",
		&core.Flow{ID: "x", Src: "a", Dst: "b", Size: 2},
		&core.Flow{ID: "y", Src: "c", Dst: "b", Size: 1},
		&core.Flow{ID: "z", Src: "a", Dst: "c", Size: 1},
	)
	if err != nil {
		return nil, err
	}
	snap := &sched.Snapshot{
		Now:    0,
		Groups: map[string]*sched.GroupState{"c1": {Group: g}},
	}
	for _, f := range g.Flows {
		snap.Flows = append(snap.Flows, &sched.FlowState{Flow: f, GroupID: "c1", Remaining: f.Size})
	}
	echelonRates, err := (sched.EchelonMADD{}).Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	coflowRates, err := (sched.CoflowMADD{}).Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	r.Table = metrics.NewTable("flow", "echelon rate", "coflow (MADD) rate")
	same := true
	for _, f := range g.Flows {
		a, b := echelonRates[f.ID], coflowRates[f.ID]
		r.Table.AddRowf(f.ID, float64(a), float64(b))
		if diff := float64(a - b); diff > 1e-6 || diff < -1e-6 {
			same = false
		}
	}
	r.check("EchelonMADD equals MADD on a Coflow", same, "identical minimal rates")

	// Tardiness == CCT - r for any coflow outcome.
	out := core.Outcome{Group: g, Reference: 0, Finish: map[string]unit.Time{"x": 3, "y": 3, "z": 3}}
	tard, err1 := out.Tardiness()
	cct, err2 := out.CompletionTime()
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("outcome: %v %v", err1, err2)
	}
	r.check("max tardiness equals CCT - r", tard.ApproxEq(cct-0),
		"tardiness %v, CCT %v, r 0", tard, cct)
	r.note("IsCoflow(c1) = %v; the Coflow objective is the Eq. 5 special case of Eq. 3.", g.IsCoflow())
	return r, nil
}

// Property4: the EchelonMADD adaptation stays in the same complexity class
// as MADD — measured decision latency grows comparably with flow count
// (the binary search adds a logarithmic factor).
func Property4() (*Report, error) {
	r := &Report{ID: "prop4", Title: "Property 4: scheduler cost scaling"}
	r.Table = metrics.NewTable("flows", "groups", "coflow-madd (ms)", "echelon-madd (ms)", "ratio")
	sizes := []int{8, 32, 128, 512}
	coflowT := map[int]float64{}
	echelonT := map[int]float64{}
	for _, n := range sizes {
		snap, net := syntheticSnapshot(n, 8)
		c := timeSchedule(sched.CoflowMADD{}, snap, net)
		e := timeSchedule(sched.EchelonMADD{}, snap, net)
		coflowT[n] = c.Seconds()
		echelonT[n] = e.Seconds()
		r.Table.AddRowf(n, 8, c.Seconds()*1e3, e.Seconds()*1e3, e.Seconds()/c.Seconds())
	}
	// Same complexity class means comparable *growth* with n (absolute
	// ratios depend on constants and machine load): going 32 -> 512 flows,
	// EchelonMADD's slowdown factor must stay within a generous multiple of
	// CoflowMADD's — the time-varying profiles add a log-ish factor, not a
	// polynomial one.
	eg := echelonT[512] / echelonT[32]
	cg := coflowT[512] / coflowT[32]
	r.check("echelon growth within 16x of coflow growth (32 -> 512 flows)",
		eg <= cg*16,
		"echelon grew %.1fx, coflow %.1fx", eg, cg)
	return r, nil
}

// syntheticSnapshot builds n flows spread over g pipeline groups on an
// 8-host fabric.
func syntheticSnapshot(n, groups int) (*sched.Snapshot, *fabric.Network) {
	net := fabric.NewNetwork()
	hosts := make([]string, 8)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%d", i)
	}
	net.AddUniformHosts(10, hosts...)
	snap := &sched.Snapshot{Now: 0, Groups: map[string]*sched.GroupState{}}
	flowsPer := n / groups
	if flowsPer < 1 {
		flowsPer = 1
	}
	count := 0
	for gi := 0; gi < groups && count < n; gi++ {
		gid := fmt.Sprintf("g%d", gi)
		var flows []*core.Flow
		for fi := 0; fi < flowsPer && count < n; fi++ {
			flows = append(flows, &core.Flow{
				ID:  fmt.Sprintf("%s-f%d", gid, fi),
				Src: hosts[(gi+fi)%8], Dst: hosts[(gi+fi+1)%8],
				Size: unit.Bytes(1 + fi%5), Stage: fi,
			})
			count++
		}
		g, err := core.New(gid, core.Pipeline{T: 0.5}, flows...)
		if err != nil {
			panic(err)
		}
		snap.Groups[gid] = &sched.GroupState{Group: g}
		for _, f := range flows {
			snap.Flows = append(snap.Flows, &sched.FlowState{Flow: f, GroupID: gid, Remaining: f.Size})
		}
	}
	return snap, net
}

// timeSchedule measures one scheduler's decision latency (best of 3).
func timeSchedule(s sched.Scheduler, snap *sched.Snapshot, net *fabric.Network) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := s.Schedule(snap, net); err != nil {
			panic(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
