package experiments

import (
	"fmt"

	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// ExtDegradedLink (E10) injects a fabric failure: mid-iteration, one
// pipeline worker's NIC degrades to a third of its capacity, then recovers.
// The schedulers must adapt on the fly (§5: the coordinator reruns on
// events; here the events include capacity changes). The check: EchelonFlow
// scheduling absorbs the incident at least as well as Coflow scheduling and
// re-establishes the echelon formation — uniform tardiness — after
// recovery.
func ExtDegradedLink() (*Report, error) {
	r := &Report{ID: "e10", Title: "Failure injection: link degradation and recovery"}
	run := func(s sched.Scheduler) (*sim.Result, error) {
		w, err := degradeWorkload()
		if err != nil {
			return nil, err
		}
		net := fabric.NewNetwork()
		net.AddUniformHosts(6, w.Hosts...)
		caps, dils, err := faults.CompileSim(degradeSchedule(), net)
		if err != nil {
			return nil, err
		}
		simr, err := sim.New(sim.Options{
			Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements,
			CapacityChanges: caps, Dilations: dils,
		})
		if err != nil {
			return nil, err
		}
		return simr.Run()
	}
	r.Table = metrics.NewTable("scheduler", "makespan", "fwd0 group tardiness", "post-recovery spread")
	type outcome struct {
		makespan, spread unit.Time
	}
	outs := map[string]outcome{}
	for _, s := range []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
	} {
		res, err := run(s)
		if err != nil {
			return nil, err
		}
		// Tardiness spread over the degraded link's flows that finished
		// after recovery (t > 8): a maintained formation has spread ~0.
		var post []unit.Time
		for m := 0; m < 6; m++ {
			rec := res.Flows[fmt.Sprintf("pp/it0/act/s0m%d", m)]
			if rec.Finish > 8 {
				post = append(post, rec.Tardiness())
			}
		}
		spread := unit.Time(0)
		if len(post) > 1 {
			min, max := post[0], post[0]
			for _, x := range post[1:] {
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
			spread = max - min
		}
		outs[s.Name()] = outcome{makespan: res.Makespan, spread: spread}
		r.Table.AddRowf(s.Name(), float64(res.Makespan),
			float64(res.Groups["pp/it0/fwd0"].Tardiness), float64(spread))
	}
	e, c := outs["echelon-madd+bf"], outs["coflow-madd+bf"]
	r.check("echelon absorbs the incident at least as well as coflow",
		e.makespan <= c.makespan*1.0001, "makespan %v vs %v", e.makespan, c.makespan)
	r.check("echelon re-establishes near-uniform tardiness after recovery",
		e.spread <= 0.5, "post-recovery tardiness spread %v (flows mid-flight at the transition retain residue)", e.spread)
	r.check("echelon's formation recovery beats coflow's",
		e.spread < c.spread, "spread %v vs %v", e.spread, c.spread)
	r.note("Incident: worker s0's NIC drops 6 -> 2 B/s during t=[3,8], then recovers.")
	return r, nil
}

// degradeWorkload is E10's pipeline job, shared with the scheduler
// golden-equivalence test.
func degradeWorkload() (*ddlt.Workload, error) {
	return ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 5, 1, 1),
		Workers: []string{"s0", "s1", "s2", "s3"}, MicroBatches: 6, Iterations: 1,
	}.Build()
}

// degradeSchedule is E10's incident/recovery sequence as a typed fault
// schedule, lowered through the faults sim driver (shared with the
// scheduler golden-equivalence test). The recovery restores the
// pre-incident baseline snapshot rather than hardcoding it.
func degradeSchedule() *faults.Schedule {
	return &faults.Schedule{Events: []faults.Event{
		{At: 3, Kind: faults.LinkDegrade, Host: "s0", Egress: 2, Ingress: 2},
		{At: 8, Kind: faults.LinkRecover, Host: "s0"},
	}}
}
