package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// equivScheduler is the golden-equivalence harness: every snapshot is
// scheduled twice — by the seed configuration (no plan cache) and by the
// cached/parallel scheduler — and the two rate maps must be byte-identical.
// The seed's rates drive the simulation, so any divergence is caught at the
// first event where it appears, not just in aggregate results.
type equivScheduler struct {
	t      *testing.T
	seed   sched.Scheduler
	cached sched.Scheduler
	calls  int
}

func (e *equivScheduler) Name() string { return e.seed.Name() }

func (e *equivScheduler) Schedule(snap *sched.Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	e.calls++
	want, errSeed := e.seed.Schedule(snap, net)
	got, errCached := e.cached.Schedule(snap, net)
	if (errSeed == nil) != (errCached == nil) {
		e.t.Fatalf("call %d at t=%v: seed err %v, cached err %v", e.calls, snap.Now, errSeed, errCached)
	}
	if errSeed != nil {
		return want, errSeed
	}
	if len(got) != len(want) {
		e.t.Fatalf("call %d at t=%v: rate map sizes differ (%d vs %d)", e.calls, snap.Now, len(got), len(want))
	}
	for id, r := range want {
		if g, ok := got[id]; !ok || g != r {
			e.t.Fatalf("call %d at t=%v: rate[%s] = %v cached vs %v seed", e.calls, snap.Now, id, g, r)
		}
	}
	return want, errSeed
}

// assertGolden runs the workload once under the equivalence harness. It
// forces GOMAXPROCS above 1 so the cached scheduler's parallel ranking path
// is exercised even on single-CPU machines, and returns the cache stats for
// callers that assert on hit counts.
func assertGolden(t *testing.T, base sched.EchelonMADD, opts sim.Options) sched.CacheStats {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cached := base
	cached.Cache = sched.NewPlanCache()
	eq := &equivScheduler{t: t, seed: base, cached: cached}
	opts.Scheduler = eq
	simr, err := sim.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simr.Run(); err != nil {
		t.Fatal(err)
	}
	if eq.calls == 0 {
		t.Fatal("scheduler never invoked")
	}
	st := cached.Cache.Stats()
	t.Logf("%d scheduler calls, cache stats %+v", eq.calls, st)
	return st
}

// uniformOpts wires a built workload onto a uniform fabric.
func uniformOpts(t *testing.T, w *ddlt.Workload, err error, cap unit.Rate) sim.Options {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(cap, w.Hosts...)
	return sim.Options{Graph: w.Graph, Net: net, Arrangements: w.Arrangements}
}

// paradigmCase is one ddlt workload builder shared by the golden tests.
type paradigmCase struct {
	name  string
	build func() (*ddlt.Workload, error)
}

// paradigmCases covers every ddlt paradigm the seed ships.
func paradigmCases() []paradigmCase {
	ws := []string{"s0", "s1", "s2", "s3"}
	model := ddlt.Uniform("m", 4, 6, 1, 0.5, 0.5)
	ppModel := ddlt.Uniform("m", 4, 2, 5, 1, 1)
	return []paradigmCase{
		{"dp-allreduce", func() (*ddlt.Workload, error) {
			return ddlt.DPAllReduce{Name: "dp", Model: model, Workers: ws, BucketCount: 2, Iterations: 2}.Build()
		}},
		{"dp-paramserver", func() (*ddlt.Workload, error) {
			return ddlt.DPParameterServer{Name: "ps", Model: model, Workers: ws[:3], PS: "psrv",
				BucketCount: 2, AggTime: 0.2, Iterations: 2}.Build()
		}},
		{"pp-gpipe", func() (*ddlt.Workload, error) {
			return ddlt.PipelineGPipe{Name: "pp", Model: ppModel, Workers: ws, MicroBatches: 4, Iterations: 2}.Build()
		}},
		{"pp-1f1b", func() (*ddlt.Workload, error) {
			return ddlt.Pipeline1F1B{Name: "pp", Model: ppModel, Workers: ws, MicroBatches: 4,
				UpdateTime: 0.2, Iterations: 2}.Build()
		}},
		{"fsdp", func() (*ddlt.Workload, error) {
			return ddlt.FSDP{Name: "fsdp", Model: ddlt.Uniform("m", 4, 3, 1, 0.5, 1), Workers: ws, Iterations: 2}.Build()
		}},
		{"tensor-parallel", func() (*ddlt.Workload, error) {
			return ddlt.TensorParallel{Name: "tp", Model: ppModel, Workers: ws, Iterations: 2}.Build()
		}},
		{"hybrid-tp-pp", func() (*ddlt.Workload, error) {
			return ddlt.HybridTPPP{Name: "hy", Model: ppModel,
				StageWorkers: [][]string{{"s0", "s1"}, {"s2", "s3"}}, MicroBatches: 2, Iterations: 1}.Build()
		}},
	}
}

// Every ddlt paradigm, event-driven, default production scheduler config.
func TestGoldenEquivalenceParadigms(t *testing.T) {
	for _, tc := range paradigmCases() {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.build()
			assertGolden(t, sched.EchelonMADD{Backfill: true}, uniformOpts(t, w, err, 6))
		})
	}
}

// The E8 shuffle batch: pure Coflow groups on a heterogeneous fabric.
func TestGoldenEquivalenceCoflowBatch(t *testing.T) {
	g, net, arrs, _ := coflowBatch()
	assertGolden(t, sched.EchelonMADD{Backfill: true},
		sim.Options{Graph: g, Net: net, Arrangements: arrs})
}

// The E9 workload in every cadence mode — interval ticks replay nearly
// unchanged snapshots, the cache's best case, so hits are required.
func TestGoldenEquivalenceCadence(t *testing.T) {
	for _, mode := range []struct {
		name     string
		interval unit.Time
		only     bool
	}{
		{"per-event", 0, false},
		{"interval", 0.5, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			w, err := cadenceWorkload()
			opts := uniformOpts(t, w, err, 4)
			opts.Interval = mode.interval
			opts.IntervalOnly = mode.only
			st := assertGolden(t, sched.EchelonMADD{Backfill: true}, opts)
			if st.Hits == 0 {
				t.Errorf("cache never hit on the %s cadence run: %+v", mode.name, st)
			}
		})
	}
}

// The E10 incident: capacity changes mid-run must retire cached plans
// without disturbing equivalence. The incident is lowered from the typed
// fault schedule, as in the experiment itself.
func TestGoldenEquivalenceDegradedLink(t *testing.T) {
	w, err := degradeWorkload()
	opts := uniformOpts(t, w, err, 6)
	caps, dils, err := faults.CompileSim(degradeSchedule(), opts.Net)
	if err != nil {
		t.Fatal(err)
	}
	opts.CapacityChanges, opts.Dilations = caps, dils
	assertGolden(t, sched.EchelonMADD{Backfill: true}, opts)
}

// The E11 two-tier fabric: rack uplink profiles join the planning problem.
func TestGoldenEquivalenceRacks(t *testing.T) {
	for _, oversub := range []float64{1, 4} {
		t.Run(fmt.Sprintf("oversub%g", oversub), func(t *testing.T) {
			net, hosts, err := rackFabric(oversub)
			if err != nil {
				t.Fatal(err)
			}
			w, err := rackMixWorkload(hosts)
			if err != nil {
				t.Fatal(err)
			}
			assertGolden(t, sched.EchelonMADD{Backfill: true},
				sim.Options{Graph: w.Graph, Net: net, Arrangements: w.Arrangements})
		})
	}
}

// Scheduler variants exercise every configuration knob against the cache:
// no backfill, LTF ordering, GlobalEDF planning, and the weighted objective.
func TestGoldenEquivalenceVariants(t *testing.T) {
	variants := []struct {
		name string
		base sched.EchelonMADD
	}{
		{"plain", sched.EchelonMADD{}},
		{"ltf", sched.EchelonMADD{Order: sched.LargestTardinessFirst, Backfill: true}},
		{"gedf", sched.EchelonMADD{GlobalEDF: true, Backfill: true}},
		{"weighted", sched.EchelonMADD{Weighted: true, Backfill: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			w, err := cadenceWorkload()
			opts := uniformOpts(t, w, err, 4)
			if v.base.Weighted {
				// Weight alternate groups so the weighted ordering really
				// differs from the unweighted one.
				opts.Weights = map[string]float64{}
				i := 0
				for gid := range w.Arrangements {
					if i%2 == 0 {
						opts.Weights[gid] = 3
					}
					i++
				}
			}
			assertGolden(t, v.base, opts)
		})
	}
}

// assertIdenticalRuns simulates the options twice — plain, and with an empty
// fault schedule compiled in — and requires byte-identical results.
func assertIdenticalRuns(t *testing.T, opts sim.Options) {
	t.Helper()
	empty, err := faults.Parse([]byte(`{"events":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	caps, dils, err := faults.CompileSim(empty, opts.Net)
	if err != nil {
		t.Fatal(err)
	}
	if caps != nil || dils != nil {
		t.Fatalf("empty schedule compiled to %v / %v, want nothing", caps, dils)
	}
	run := func(o sim.Options) *sim.Result {
		simr, err := sim.New(o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := simr.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	opts.Scheduler = sched.EchelonMADD{Backfill: true}
	plain := run(opts)
	opts.CapacityChanges, opts.Dilations = caps, dils
	faulted := run(opts)
	if plain.Makespan != faulted.Makespan || plain.SchedulerCalls != faulted.SchedulerCalls {
		t.Fatalf("makespan/calls diverged: %v/%d vs %v/%d",
			plain.Makespan, plain.SchedulerCalls, faulted.Makespan, faulted.SchedulerCalls)
	}
	if !reflect.DeepEqual(plain.Flows, faulted.Flows) {
		t.Errorf("flow records diverged:\n%+v\nvs\n%+v", plain.Flows, faulted.Flows)
	}
	if !reflect.DeepEqual(plain.Tasks, faulted.Tasks) {
		t.Errorf("task spans diverged")
	}
	if !reflect.DeepEqual(plain.Groups, faulted.Groups) {
		t.Errorf("group results diverged")
	}
}

// An empty fault schedule must be a perfect no-op: it compiles to no
// capacity changes and no dilations, and a run carrying it is byte-identical
// to one without the faults plumbing — across every ddlt paradigm and the
// E8-E11 workloads.
func TestGoldenEmptyFaultSchedule(t *testing.T) {
	for _, tc := range paradigmCases() {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.build()
			assertIdenticalRuns(t, uniformOpts(t, w, err, 6))
		})
	}
	t.Run("e8-coflow-batch", func(t *testing.T) {
		g, net, arrs, _ := coflowBatch()
		assertIdenticalRuns(t, sim.Options{Graph: g, Net: net, Arrangements: arrs})
	})
	t.Run("e9-cadence", func(t *testing.T) {
		w, err := cadenceWorkload()
		opts := uniformOpts(t, w, err, 4)
		opts.Interval = 0.5
		assertIdenticalRuns(t, opts)
	})
	t.Run("e10-degrade", func(t *testing.T) {
		w, err := degradeWorkload()
		assertIdenticalRuns(t, uniformOpts(t, w, err, 6))
	})
	t.Run("e11-racks", func(t *testing.T) {
		net, hosts, err := rackFabric(4)
		if err != nil {
			t.Fatal(err)
		}
		w, err := rackMixWorkload(hosts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalRuns(t, sim.Options{Graph: w.Graph, Net: net, Arrangements: w.Arrangements})
	})
}
