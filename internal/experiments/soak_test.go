package experiments

import (
	"fmt"
	"testing"

	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
)

// buildSoakWorkload composes six jobs across all five paradigms on twelve
// shared workers — a busy multi-tenant cluster.
func buildSoakWorkload() (*ddlt.Workload, error) {
	hosts := make([]string, 12)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("g%d", i)
	}
	var ws []*ddlt.Workload
	add := func(w *ddlt.Workload, err error) error {
		if err != nil {
			return err
		}
		ws = append(ws, w)
		return nil
	}
	if err := add(ddlt.DPAllReduce{
		Name: "t1-dp", Model: ddlt.Uniform("m1", 6, 6, 1, 0.4, 0.4),
		Workers: hosts[0:4], BucketCount: 3, Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.PipelineGPipe{
		Name: "t2-pp", Model: ddlt.Uniform("m2", 8, 2, 4, 0.5, 0.5),
		Workers: hosts[2:6], MicroBatches: 6, Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.TensorParallel{
		Name: "t3-tp", Model: ddlt.Uniform("m3", 4, 2, 8, 0.3, 0.3),
		Workers: hosts[4:8], Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.FSDP{
		Name: "t4-fsdp", Model: ddlt.Uniform("m4", 5, 5, 1, 0.4, 0.6),
		Workers: hosts[6:10], Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.DPParameterServer{
		Name: "t5-ps", Model: ddlt.Uniform("m5", 4, 6, 1, 0.4, 0.4),
		Workers: hosts[8:12], PS: "ps0", BucketCount: 2, AggTime: 0.1, Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.Pipeline1F1B{
		Name: "t6-1f1b", Model: ddlt.Uniform("m6", 8, 2, 4, 0.5, 0.5),
		Workers: []string{hosts[10], hosts[11], hosts[0], hosts[1]}, MicroBatches: 4, Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	if err := add(ddlt.HybridTPPP{
		Name: "t7-hybrid", Model: ddlt.Uniform("m7", 4, 2, 4, 0.4, 0.4),
		StageWorkers: [][]string{{hosts[3], hosts[5]}, {hosts[7], hosts[9]}},
		MicroBatches: 2, Iterations: 2,
	}.Build()); err != nil {
		return nil, err
	}
	return ddlt.Merge(ws...)
}

// TestSoakMixedCluster runs the busy cluster under every scheduler and
// checks completion, determinism-level sanity, and the headline ordering.
func TestSoakMixedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.EchelonMADD{Backfill: true, GlobalEDF: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
		sched.SRPT{},
		sched.FIFO{},
		sched.EDF{},
	}
	results := map[string]*sim.Result{}
	for _, s := range schedulers {
		w, err := buildSoakWorkload()
		if err != nil {
			t.Fatal(err)
		}
		net := fabric.NewNetwork()
		net.AddUniformHosts(8, w.Hosts...)
		simr, err := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simr.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		results[s.Name()] = res
		wantNodes := w.Graph.Len()
		if len(res.Tasks)+len(res.Flows) != wantNodes {
			t.Errorf("%s: completed %d of %d nodes", s.Name(), len(res.Tasks)+len(res.Flows), wantNodes)
		}
		t.Logf("%-22s makespan=%8.3f sumTardiness=%8.3f schedulerCalls=%d",
			s.Name(), float64(res.Makespan), float64(res.TotalTardiness()), res.SchedulerCalls)
	}
	// Headline claims on the melee: some EchelonMADD variant attains the
	// best sum of tardiness overall, and the default variant attains the
	// best (or near-best) makespan. Individual pairwise orderings between
	// heuristics are workload-dependent (see E1/E7/E11 for the controlled
	// comparisons).
	echelonBest := results["echelon-madd+bf"].TotalTardiness()
	if x := results["echelon-madd-gedf+bf"].TotalTardiness(); x < echelonBest {
		echelonBest = x
	}
	for _, name := range []string{"coflow-madd+bf", "fair", "srpt", "fifo", "edf"} {
		if float64(echelonBest) > float64(results[name].TotalTardiness())*1.02 {
			t.Errorf("best echelon tardiness %v exceeds %s's %v",
				echelonBest, name, results[name].TotalTardiness())
		}
	}
	e := results["echelon-madd+bf"]
	for name, res := range results {
		if float64(e.Makespan) > float64(res.Makespan)*1.05 {
			t.Errorf("echelon makespan %v more than 5%% behind %s's %v", e.Makespan, name, res.Makespan)
		}
	}
}
