package experiments

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// e13Clock is a hand-advanced clock injected into the coordinator so the
// crash-recovery timeline is bit-reproducible: scheduler time is whatever
// the script says it is, independent of how long recovery really takes.
type e13Clock struct {
	mu   sync.Mutex
	base time.Time
	t    time.Time
}

func newE13Clock() *e13Clock {
	base := time.Unix(1_700_000_000, 0)
	return &e13Clock{base: base, t: base}
}

func (c *e13Clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// setAt moves scheduler time to t seconds past the run's origin.
func (c *e13Clock) setAt(t unit.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.base.Add(time.Duration(float64(t) * float64(time.Second)))
}

// e13Groups builds the two pipeline jobs the scenario schedules. Job A and
// job B never share a NIC direction after the crash window, so the one flow
// still running at the comparison point has a capacity-limited rate that
// must match across runs exactly.
func e13Groups() (a, b *core.EchelonFlow, err error) {
	a, err = core.New("jobA/pp", core.Pipeline{T: 2},
		&core.Flow{ID: "a0", Src: "w1", Dst: "w2", Size: 20, Stage: 0},
		&core.Flow{ID: "a1", Src: "w2", Dst: "w3", Size: 20, Stage: 1})
	if err != nil {
		return nil, nil, err
	}
	b, err = core.New("jobB/pp", core.Pipeline{T: 2},
		&core.Flow{ID: "b0", Src: "w1", Dst: "w3", Size: 30, Stage: 0},
		&core.Flow{ID: "b1", Src: "w3", Dst: "w2", Size: 40, Stage: 1})
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// e13Result captures everything the golden/crash comparison checks.
type e13Result struct {
	refA, tardA unit.Time
	refB, tardB unit.Time
	total       unit.Time
	midRates    map[string]unit.Rate // allocations at t=9 (b1 in flight)

	// Crash-run-only observations.
	parkedAfterRestore bool
	revivedAfterRejoin bool
	journalFiles       int
}

// e13Run drives the scripted timeline against one coordinator. With dir
// empty the run is journal-free (the no-crash golden); otherwise the
// coordinator journals into dir and, when crash is set, is killed at t=4
// and rebuilt from the journal at t=5 via the faults subsystem's
// coordinator_crash/coordinator_restart hooks.
func e13Run(crash bool, dir string) (*e13Result, error) {
	clk := newE13Clock()
	mkOpts := func() coordinator.Options {
		net := fabric.NewNetwork()
		net.AddUniformHosts(10, "w1", "w2", "w3")
		return coordinator.Options{
			Net:               net,
			Scheduler:         sched.EchelonMADD{Backfill: true},
			QuarantineTimeout: time.Hour,
			Clock:             clk.now,
			Logf:              func(string, ...interface{}) {},
		}
	}
	groupA, groupB, err := e13Groups()
	if err != nil {
		return nil, err
	}

	var c *coordinator.Coordinator
	if dir == "" {
		c, err = coordinator.New(mkOpts())
	} else {
		c, err = coordinator.Restore(mkOpts(), dir)
	}
	if err != nil {
		return nil, err
	}

	res := &e13Result{}
	flow := func(gid, fid string, ev string, at unit.Time) error {
		clk.setAt(at)
		_, err := c.FlowEvent(wire.FlowEvent{GroupID: gid, FlowID: fid, Event: ev})
		return err
	}

	// The fault schedule is declared in the fault subsystem's vocabulary and
	// validated like any chaos run; its two events are dispatched at their
	// scheduled times through the same LiveActions hooks a wall-clock replay
	// would drive (the script advances the injected clock itself so the
	// timeline stays bit-reproducible).
	outage := &faults.Schedule{Events: []faults.Event{
		{At: 4, Kind: faults.CoordinatorCrash},
		{At: 5, Kind: faults.CoordinatorRestart},
	}}
	if err := outage.Validate(); err != nil {
		return nil, err
	}
	actions := faults.LiveActions{
		CrashCoordinator: func() error {
			// A kill, not a shutdown: the instance is abandoned with no
			// flush call — the journal's per-append fsync is all that
			// survives.
			c = nil
			return nil
		},
		RestartCoordinator: func() error {
			c2, err := coordinator.Restore(mkOpts(), dir)
			if err != nil {
				return err
			}
			res.parkedAfterRestore = c2.GroupParked("jobA/pp") && c2.GroupParked("jobB/pp")
			// The agents redial and re-announce their groups, which adopts
			// the journaled state instead of starting over.
			if err := c2.RegisterGroup("a1", groupA); err != nil {
				return err
			}
			if err := c2.RegisterGroup("a2", groupB); err != nil {
				return err
			}
			res.revivedAfterRejoin = !c2.GroupParked("jobA/pp") && !c2.GroupParked("jobB/pp")
			c = c2
			return nil
		},
	}

	// t=0: both jobs arrive and release their stage-0 flows.
	if err := c.RegisterGroup("a1", groupA); err != nil {
		return nil, err
	}
	if err := c.RegisterGroup("a2", groupB); err != nil {
		return nil, err
	}
	if err := flow("jobA/pp", "a0", wire.EventReleased, 0); err != nil {
		return nil, err
	}
	if err := flow("jobB/pp", "b0", wire.EventReleased, 0); err != nil {
		return nil, err
	}
	// t=2: job A advances to stage 1.
	if err := flow("jobA/pp", "a0", wire.EventFinished, 2); err != nil {
		return nil, err
	}
	if err := flow("jobA/pp", "a1", wire.EventReleased, 2); err != nil {
		return nil, err
	}
	if crash {
		for _, e := range outage.Sorted() {
			clk.setAt(e.At)
			var err error
			switch e.Kind {
			case faults.CoordinatorCrash:
				err = actions.CrashCoordinator()
			case faults.CoordinatorRestart:
				err = actions.RestartCoordinator()
			}
			if err != nil {
				return nil, fmt.Errorf("e13: %s at t=%v: %w", e.Kind, e.At, err)
			}
		}
	}
	// t=6: job B advances to stage 1; t=8: job A completes.
	if err := flow("jobB/pp", "b0", wire.EventFinished, 6); err != nil {
		return nil, err
	}
	if err := flow("jobB/pp", "b1", wire.EventReleased, 6); err != nil {
		return nil, err
	}
	if err := flow("jobA/pp", "a1", wire.EventFinished, 8); err != nil {
		return nil, err
	}
	// t=9: sample the allocation with b1 mid-flight.
	clk.setAt(9)
	if res.midRates, err = c.Tick(); err != nil {
		return nil, err
	}
	// t=10: job B completes.
	if err := flow("jobB/pp", "b1", wire.EventFinished, 10); err != nil {
		return nil, err
	}

	if res.refA, res.tardA, err = c.GroupStatus("jobA/pp"); err != nil {
		return nil, err
	}
	if res.refB, res.tardB, err = c.GroupStatus("jobB/pp"); err != nil {
		return nil, err
	}
	res.total = c.TotalTardiness()
	if dir != "" {
		if entries, err := os.ReadDir(dir); err == nil {
			res.journalFiles = len(entries)
		}
	}
	c.Close()
	return res, nil
}

// ExtCrashRecovery (E13) kills the coordinator mid-run and rebuilds it from
// its write-ahead journal, then proves the recovered trajectory is the
// no-crash trajectory: the restored coordinator parks the journaled groups
// until their agents re-announce them, re-adoption revives them with their
// progress intact, and per-group reference times, achieved tardiness and
// post-recovery allocations all match a golden run that never crashed —
// bit-for-bit, not approximately.
func ExtCrashRecovery() (*Report, error) {
	r := &Report{ID: "e13", Title: "Crash recovery: journal replay converges to the no-crash run"}

	golden, err := e13Run(false, "")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "e13-journal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	crashed, err := e13Run(true, dir)
	if err != nil {
		return nil, err
	}

	r.Table = metrics.NewTable("metric", "no-crash", "crash+restore")
	r.Table.AddRowf("jobA reference", float64(golden.refA), float64(crashed.refA))
	r.Table.AddRowf("jobA tardiness", float64(golden.tardA), float64(crashed.tardA))
	r.Table.AddRowf("jobB reference", float64(golden.refB), float64(crashed.refB))
	r.Table.AddRowf("jobB tardiness", float64(golden.tardB), float64(crashed.tardB))
	r.Table.AddRowf("total tardiness", float64(golden.total), float64(crashed.total))
	r.Table.AddRowf("b1 rate at t=9", float64(golden.midRates["b1"]), float64(crashed.midRates["b1"]))

	r.check("restore parks surviving groups until their agents rejoin",
		crashed.parkedAfterRestore, "parked=%v", crashed.parkedAfterRestore)
	r.check("re-registration re-adopts parked groups with state intact",
		crashed.revivedAfterRejoin, "revived=%v", crashed.revivedAfterRejoin)
	r.check("per-group reference times match the golden run bit-for-bit",
		golden.refA == crashed.refA && golden.refB == crashed.refB,
		"jobA %v vs %v, jobB %v vs %v", golden.refA, crashed.refA, golden.refB, crashed.refB)
	r.check("per-group tardiness matches the golden run bit-for-bit",
		golden.tardA == crashed.tardA && golden.tardB == crashed.tardB,
		"jobA %v vs %v, jobB %v vs %v", golden.tardA, crashed.tardA, golden.tardB, crashed.tardB)
	r.check("total tardiness matches the golden run",
		golden.total == crashed.total, "%v vs %v", golden.total, crashed.total)
	r.check("post-recovery allocations match the golden run",
		len(crashed.midRates) > 0 && reflect.DeepEqual(golden.midRates, crashed.midRates),
		"golden %v vs crash %v", golden.midRates, crashed.midRates)
	r.check("the crashed run leaves a journal behind",
		crashed.journalFiles > 0, "%d file(s) in the journal dir", crashed.journalFiles)

	// A second crash run in a fresh directory must reproduce the first one
	// exactly — recovery is deterministic, not merely close.
	dir2, err := os.MkdirTemp("", "e13-journal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir2)
	again, err := e13Run(true, dir2)
	if err != nil {
		return nil, err
	}
	r.check("crash recovery is deterministic across runs",
		again.tardA == crashed.tardA && again.tardB == crashed.tardB &&
			again.total == crashed.total && reflect.DeepEqual(again.midRates, crashed.midRates),
		"repeat total %v vs %v", again.total, crashed.total)

	r.note("Timeline: jobs A and B register at t=0; a0 finishes t=2 releasing a1; the coordinator is killed at t=4 and restored from its journal at t=5; b0 finishes t=6 releasing b1; a1 finishes t=8; allocations sampled t=9; b1 finishes t=10.")
	r.note("The restored coordinator re-enters quarantine for every journaled group; the agents' re-announcements adopt the surviving state (release flags, remaining bytes, reference times, achieved tardiness) rather than restarting the jobs.")
	return r, nil
}
