package experiments

import (
	"echelonflow/internal/core"
	"echelonflow/internal/metrics"
	"echelonflow/internal/unit"
)

// Fig6 demonstrates the paper's intuition figure: two consecutive
// EchelonFlows H and H' between pipeline workers. H runs on time; H' is
// congested, so its later flows start after their ideal finish times — and
// the arrangement function, anchored at the reference time, yields ideal
// finish times *earlier* than those starts, giving the flows "opportunities
// to transmit faster and catch up" (§3.1).
func Fig6() (*Report, error) {
	r := &Report{ID: "fig6", Title: "Arrangement function and delay offsetting (paper Fig. 6)"}
	const T = unit.Time(2)
	arr := core.Pipeline{T: T}

	h, err := core.New("H", arr,
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 1, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 1, Stage: 1},
		&core.Flow{ID: "f2", Src: "w1", Dst: "w2", Size: 1, Stage: 2},
	)
	if err != nil {
		return nil, err
	}
	hp, err := core.New("H'", arr,
		&core.Flow{ID: "f0'", Src: "w1", Dst: "w2", Size: 1, Stage: 0},
		&core.Flow{ID: "f1'", Src: "w1", Dst: "w2", Size: 1, Stage: 1},
		&core.Flow{ID: "f2'", Src: "w1", Dst: "w2", Size: 1, Stage: 2},
	)
	if err != nil {
		return nil, err
	}

	// H starts at r = 0 and maintains the arrangement.
	rH := unit.Time(0)
	dH := h.Deadlines(rH)
	// H' starts at r' = 6; its flows f1', f2' are delayed by congestion and
	// only start at 9.5 and 12 (later than their ideal finish times).
	rHp := unit.Time(6)
	dHp := hp.Deadlines(rHp)
	starts := map[string]unit.Time{"f0'": 6, "f1'": 9.5, "f2'": 12}

	r.Table = metrics.NewTable("flow", "reference", "stage", "ideal finish", "start", "offset (start - ideal)")
	for i, f := range h.Flows {
		r.Table.AddRowf(f.ID, float64(rH), f.Stage, float64(dH[i]), float64(rH)+float64(f.Stage)*float64(T), 0.0)
	}
	for i, f := range hp.Flows {
		r.Table.AddRowf(f.ID, float64(rHp), f.Stage, float64(dHp[i]), float64(starts[f.ID]),
			float64(starts[f.ID]-dHp[i]))
	}

	// Eq. 6 closed form at both references.
	eq6 := true
	for i, f := range h.Flows {
		if !dH[i].ApproxEq(rH + unit.Time(f.Stage)*T) {
			eq6 = false
		}
	}
	for i, f := range hp.Flows {
		if !dHp[i].ApproxEq(rHp + unit.Time(f.Stage)*T) {
			eq6 = false
		}
	}
	r.check("deadlines follow Eq. 6 from each reference", eq6, "d_j = r + j*T for H and H'")

	// Delay offsetting: the delayed flows' ideal finish times precede their
	// starts (d'_1 < start(f1'), d'_2 < start(f2') in the figure).
	offset := dHp[1].Before(starts["f1'"]) && dHp[2].Before(starts["f2'"])
	r.check("ideal finish precedes start for delayed flows", offset,
		"d'_1=%v < start %v; d'_2=%v < start %v", dHp[1], starts["f1'"], dHp[2], starts["f2'"])

	// Catch-up: finishing f1' and f2' at d + tau with uniform tau restores
	// the arrangement; the per-flow tardiness equals the group tardiness.
	tau := unit.Time(4.25)
	finish := map[string]unit.Time{
		"f0'": dHp[0] + tau, "f1'": dHp[1] + tau, "f2'": dHp[2] + tau,
	}
	out := core.Outcome{Group: hp, Reference: rHp, Finish: finish}
	per := out.PerFlow()
	uniform := true
	for _, tard := range per {
		if !tard.ApproxEq(tau) {
			uniform = false
		}
	}
	got, err := out.Tardiness()
	if err != nil {
		return nil, err
	}
	r.check("uniform tardiness restores the echelon formation", uniform && got.ApproxEq(tau),
		"every flow tardiness = group tardiness = %v", tau)

	r.note("The reference time r' recalibrates the arrangement per EchelonFlow (paper §3.1):")
	r.note("H' is judged against r' = 6, not against its delayed per-flow starts.")
	return r, nil
}
