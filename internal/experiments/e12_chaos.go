package experiments

import (
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// ExtChaos (E12) replays the canned chaos schedule (faults.Sample — the
// same incident list shipped as examples/faults/chaos.json) against the E10
// pipeline job: a link degradation with recovery, a straggler episode, and
// an agent crash/restart, all inside one GPipe iteration. Each scheduler
// runs the job healthy and under chaos; the checks pin down how gracefully
// each degrades and how quickly the run completes once the last fault has
// cleared. A repeat run must reproduce the chaos results exactly — the
// fault subsystem is deterministic by construction.
func ExtChaos() (*Report, error) {
	r := &Report{ID: "e12", Title: "Chaos replay: canned fault schedule, degradation and recovery"}
	chaos := faults.Sample()
	run := func(s sched.Scheduler, withFaults bool) (*sim.Result, error) {
		w, err := degradeWorkload()
		if err != nil {
			return nil, err
		}
		net := fabric.NewNetwork()
		net.AddUniformHosts(6, w.Hosts...)
		opts := sim.Options{Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements}
		if withFaults {
			opts.CapacityChanges, opts.Dilations, err = faults.CompileSim(chaos, net)
			if err != nil {
				return nil, err
			}
		}
		simr, err := sim.New(opts)
		if err != nil {
			return nil, err
		}
		return simr.Run()
	}

	r.Table = metrics.NewTable("scheduler", "healthy makespan", "chaos makespan",
		"healthy tardiness", "chaos tardiness", "recovery time")
	type outcome struct {
		healthy, chaos     unit.Time
		healthyTd, chaosTd unit.Time
		recovery           unit.Time
	}
	outs := map[string]outcome{}
	for _, s := range []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
	} {
		healthy, err := run(s, false)
		if err != nil {
			return nil, err
		}
		faulted, err := run(s, true)
		if err != nil {
			return nil, err
		}
		o := outcome{
			healthy: healthy.Makespan, chaos: faulted.Makespan,
			healthyTd: healthy.TotalTardiness(), chaosTd: faulted.TotalTardiness(),
			recovery: faulted.Makespan - chaos.End(),
		}
		outs[s.Name()] = o
		r.Table.AddRowf(s.Name(), float64(o.healthy), float64(o.chaos),
			float64(o.healthyTd), float64(o.chaosTd), float64(o.recovery))
	}

	e, c := outs["echelon-madd+bf"], outs["coflow-madd+bf"]
	for name, o := range outs {
		r.check("chaos never beats the healthy run ("+name+")",
			o.chaos >= o.healthy-unit.Time(unit.Eps) && o.chaosTd >= o.healthyTd-unit.Time(unit.Eps),
			"makespan %v vs %v, tardiness %v vs %v", o.chaos, o.healthy, o.chaosTd, o.healthyTd)
		r.check("run completes after the last fault clears ("+name+")",
			o.recovery > 0, "recovery time %v past the schedule end t=%v", o.recovery, chaos.End())
	}
	r.check("echelon degrades more gracefully than coflow under chaos",
		e.chaosTd < c.chaosTd && e.chaos <= c.chaos*1.0001,
		"tardiness %v vs %v, makespan %v vs %v", e.chaosTd, c.chaosTd, e.chaos, c.chaos)
	r.check("echelon recovers faster than coflow",
		e.recovery < c.recovery, "recovery %v vs %v", e.recovery, c.recovery)

	// Determinism: an identical replay must reproduce the chaos run
	// byte-for-byte, down to every flow's finish time.
	again, err := run(sched.EchelonMADD{Backfill: true}, true)
	if err != nil {
		return nil, err
	}
	identical := again.Makespan == e.chaos && again.TotalTardiness() == e.chaosTd
	first, _ := run(sched.EchelonMADD{Backfill: true}, true)
	if identical && first != nil {
		for id, rec := range first.Flows {
			if other, ok := again.Flows[id]; !ok || other.Finish != rec.Finish {
				identical = false
				break
			}
		}
	}
	r.check("chaos replay is deterministic",
		identical, "repeat run makespan %v vs %v", again.Makespan, e.chaos)

	r.note("Chaos schedule: s0's NIC 6 -> 2 B/s over t=[3,8]; s2 computes 1.5x slower over t=[5,10]; agent a1 (host s1) crashes at t=12, restarts at t=13.")
	r.note("Recovery time = chaos makespan minus the last fault event (t=%v).", chaos.End())
	return r, nil
}
