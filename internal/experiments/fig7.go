package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"echelonflow/internal/agent"
	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// Fig7 exercises the system sketch end to end over real loopback TCP:
// a Coordinator schedules, two Agents move real bytes under the pushed
// allocations, and the pipeline EchelonFlow's staggered finish order
// survives the trip through sockets, pacing, and wall-clock time.
func Fig7() (*Report, error) {
	r := &Report{ID: "fig7", Title: "Coordinator/Agent system over live TCP (paper Fig. 7)"}

	const capacity = 600 << 10 // 600 KiB/s modelled link
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(capacity, "w1", "w2")
	coord, err := coordinator.New(coordinator.Options{
		Net:       netModel,
		Scheduler: sched.EchelonMADD{Backfill: true},
		Logf:      func(string, ...interface{}) {},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() {
		defer serveWG.Done()
		_ = coord.Serve(ctx, ln)
	}()
	// LIFO: cancel first, then wait for Serve to drain.
	defer serveWG.Wait()
	defer cancel()

	sender, err := agent.Dial(ctx, agent.Options{
		Name: "a1", CoordinatorAddr: ln.Addr().String(),
		Logf: func(string, ...interface{}) {},
	})
	if err != nil {
		return nil, err
	}
	defer sender.Close()
	receiver, err := agent.Dial(ctx, agent.Options{
		Name: "a2", CoordinatorAddr: ln.Addr().String(), DataAddr: "127.0.0.1:0",
		Logf: func(string, ...interface{}) {},
	})
	if err != nil {
		return nil, err
	}
	defer receiver.Close()

	const flowSize = 200 << 10 // above the agents' token burst, so pacing engages
	g, err := core.New("job/pp", core.Pipeline{T: 0.15},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: flowSize, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: flowSize, Stage: 1},
		&core.Flow{ID: "f2", Src: "w1", Dst: "w2", Size: flowSize, Stage: 2},
	)
	if err != nil {
		return nil, err
	}
	if err := sender.RegisterGroup(g); err != nil {
		return nil, err
	}

	sendCtx, sendCancel := context.WithTimeout(ctx, 60*time.Second)
	defer sendCancel()
	start := time.Now()
	var (
		mu       sync.Mutex
		finished = map[string]time.Duration{}
		wg       sync.WaitGroup
		errs     = make(chan error, 3)
	)
	for i, id := range []string{"f0", "f1", "f2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := sender.SendFlow(sendCtx, "job/pp", id, flowSize, receiver.DataAddr()); err != nil {
				errs <- fmt.Errorf("%s: %w", id, err)
				return
			}
			mu.Lock()
			finished[id] = time.Since(start)
			mu.Unlock()
			errs <- nil
		}(id)
		if i < 2 {
			time.Sleep(100 * time.Millisecond) // staggered releases
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}

	r.Table = metrics.NewTable("flow", "bytes", "finish (s)", "received bytes")
	for _, id := range []string{"f0", "f1", "f2"} {
		if err := receiver.WaitReceived(sendCtx, id); err != nil {
			return nil, err
		}
		r.Table.AddRowf(id, flowSize, finished[id].Seconds(), receiver.ReceivedBytes(id))
	}

	allBytes := true
	for _, id := range []string{"f0", "f1", "f2"} {
		if receiver.ReceivedBytes(id) != flowSize {
			allBytes = false
		}
	}
	r.check("every byte arrived over the data plane", allBytes, "3 x %d bytes", flowSize)
	r.check("finish order follows the pipeline stages",
		finished["f0"] <= finished["f1"] && finished["f1"] <= finished["f2"],
		"f0 %.3fs, f1 %.3fs, f2 %.3fs", finished["f0"].Seconds(), finished["f1"].Seconds(), finished["f2"].Seconds())
	floorSec := float64(flowSize) / float64(capacity)
	minTime := time.Duration(floorSec * float64(time.Second))
	r.check("pacing enforced the modelled capacity", finished["f2"] > minTime,
		"last finish %.3fs > single-flow floor %.3fs", finished["f2"].Seconds(), minTime.Seconds())
	// The control plane is asynchronous; give it a moment to drain.
	drainUntil := time.Now().Add(10 * time.Second)
	for coord.Reschedules() < 6 && time.Now().Before(drainUntil) {
		time.Sleep(5 * time.Millisecond)
	}
	r.check("coordinator rescheduled per arrival/departure", coord.Reschedules() >= 6,
		"%d scheduling decisions for 3 releases + 3 finishes", coord.Reschedules())

	ref, tard, err := coord.GroupStatus("job/pp")
	if err != nil {
		return nil, err
	}
	r.check("coordinator tracked the group", ref >= 0 && tard >= 0,
		"reference %.3fs, achieved tardiness %.3fs", float64(ref), float64(tard))
	r.note("Flows transferred as real TCP payloads paced by per-flow token buckets (agent data plane).")
	_ = unit.Time(0)
	return r, nil
}
