package experiments

import (
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// ExtCadence (E9) ablates the rescheduling cadence of §5: "Such algorithms
// would rerun per EchelonFlow arrival/departure or per scheduling
// interval." Event-driven rescheduling is the quality ceiling; coarser
// fixed intervals trade scheduling work for tardiness.
func ExtCadence() (*Report, error) {
	r := &Report{ID: "e9", Title: "Rescheduling cadence: per-event vs fixed interval"}
	build := cadenceWorkload
	type mode struct {
		name     string
		interval unit.Time
		only     bool
	}
	modes := []mode{
		{"per-event", 0, false},
		{"interval 0.5", 0.5, true},
		{"interval 2", 2, true},
		{"interval 8", 8, true},
	}
	r.Table = metrics.NewTable("cadence", "makespan", "sum tardiness", "scheduler calls")
	results := map[string]*sim.Result{}
	for _, m := range modes {
		w, err := build()
		if err != nil {
			return nil, err
		}
		net := fabric.NewNetwork()
		net.AddUniformHosts(4, w.Hosts...)
		simr, err := sim.New(sim.Options{
			Graph: w.Graph, Net: net,
			Scheduler:    sched.EchelonMADD{Backfill: true},
			Arrangements: w.Arrangements,
			Interval:     m.interval,
			IntervalOnly: m.only,
		})
		if err != nil {
			return nil, err
		}
		res, err := simr.Run()
		if err != nil {
			return nil, err
		}
		results[m.name] = res
		r.Table.AddRowf(m.name, float64(res.Makespan), float64(res.TotalTardiness()), res.SchedulerCalls)
	}
	ev := results["per-event"]
	r.check("event-driven achieves the best makespan",
		ev.Makespan <= results["interval 0.5"].Makespan*1.0001 &&
			ev.Makespan <= results["interval 8"].Makespan*1.0001,
		"event %v vs 0.5s %v vs 8s %v", ev.Makespan,
		results["interval 0.5"].Makespan, results["interval 8"].Makespan)
	r.check("finer intervals cost more scheduler invocations",
		results["interval 0.5"].SchedulerCalls > results["interval 8"].SchedulerCalls,
		"%d calls at 0.5s vs %d at 8s",
		results["interval 0.5"].SchedulerCalls, results["interval 8"].SchedulerCalls)
	r.check("coarse cadence degrades the schedule",
		results["interval 8"].Makespan > ev.Makespan,
		"8s interval %v vs per-event %v", results["interval 8"].Makespan, ev.Makespan)
	r.note("Interval modes recompute only on ticks and hold rates stale in between — the pure")
	r.note("fixed-cadence coordinator of §5. Per-event mode reruns on every arrival/departure.")
	return r, nil
}

// cadenceWorkload is E9's pipeline job, shared with the scheduler
// golden-equivalence test.
func cadenceWorkload() (*ddlt.Workload, error) {
	return ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 6, 1, 1),
		Workers: []string{"s0", "s1", "s2", "s3"}, MicroBatches: 4, Iterations: 2,
	}.Build()
}
