package experiments

import (
	"fmt"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/trace"
	"echelonflow/internal/unit"
)

// fig2T is the successor stage's per-micro-batch computation time in the
// reconstructed Fig. 2 scenario (see DESIGN.md's reconstruction note).
const fig2T = unit.Time(7.0 / 3)

// Fig2Workload builds the motivating example: one pipeline stage pair,
// three unit-size activation flows released 0.6 apart on a unit-bandwidth
// link, consumer computation 7/3 per micro-batch.
func Fig2Workload() (*dag.Graph, *fabric.Network, map[string]core.Arrangement) {
	g := dag.New()
	for i := 0; i < 3; i++ {
		g.MustAdd(&dag.Node{
			ID: fmt.Sprintf("f%d", i+1), Kind: dag.Comm,
			Src: "w1", Dst: "w2", Size: 1,
			Group: "pp", Stage: i,
			NotBefore: unit.Time(0.6 * float64(i)),
		})
		g.MustAdd(&dag.Node{
			ID: fmt.Sprintf("c%d", i+1), Kind: dag.Compute,
			Host: "w2", Duration: fig2T, Seq: i,
		})
		g.MustDepend(fmt.Sprintf("f%d", i+1), fmt.Sprintf("c%d", i+1))
		if i > 0 {
			g.MustDepend(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1))
		}
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "w1", "w2")
	return g, net, map[string]core.Arrangement{"pp": core.Pipeline{T: fig2T}}
}

// runFig2 simulates the scenario under one scheduler.
func runFig2(s sched.Scheduler, record bool) (*sim.Result, error) {
	g, net, arrs := Fig2Workload()
	simr, err := sim.New(sim.Options{
		Graph: g, Net: net, Scheduler: s, Arrangements: arrs, RecordRates: record,
	})
	if err != nil {
		return nil, err
	}
	return simr.Run()
}

// Fig2 reproduces the paper's only quantitative result: computation finish
// times of 8.5 (fair sharing), 10 (Coflow scheduling — worse than fair!)
// and 8 (EchelonFlow scheduling, optimal), with the EchelonFlow schedule
// finishing flows staggered at 1, 10/3, 17/3 and uniform tardiness 1.
func Fig2() (*Report, error) {
	r := &Report{ID: "fig2", Title: "Motivating example (paper Fig. 2)"}
	r.Table = metrics.NewTable("scheduler", "comp finish", "paper", "f1 finish", "f2 finish", "f3 finish")

	type row struct {
		s     sched.Scheduler
		paper unit.Time
	}
	rows := []row{
		{sched.Fair{}, 8.5},
		{sched.CoflowMADD{}, 10},
		{sched.EchelonMADD{}, 8},
	}
	results := make(map[string]*sim.Result, len(rows))
	for _, rw := range rows {
		res, err := runFig2(rw.s, rw.s.Name() == "echelon-madd")
		if err != nil {
			return nil, err
		}
		results[rw.s.Name()] = res
		r.Table.AddRowf(rw.s.Name(), float64(res.Makespan), float64(rw.paper),
			float64(res.Flows["f1"].Finish), float64(res.Flows["f2"].Finish), float64(res.Flows["f3"].Finish))
		r.check(rw.s.Name()+" matches paper", res.Makespan.ApproxEq(rw.paper),
			"computation finish %v vs paper %v", res.Makespan, rw.paper)
	}

	fair := results["fair"].Makespan
	coflow := results["coflow-madd"].Makespan
	echelon := results["echelon-madd"].Makespan
	r.check("ordering echelon < fair < coflow", echelon < fair && fair < coflow,
		"echelon %v, fair %v, coflow %v", echelon, fair, coflow)

	cf := results["coflow-madd"].Flows
	r.check("coflow finishes simultaneously",
		cf["f1"].Finish.ApproxEq(cf["f2"].Finish) && cf["f2"].Finish.ApproxEq(cf["f3"].Finish),
		"finishes %v %v %v", cf["f1"].Finish, cf["f2"].Finish, cf["f3"].Finish)

	ef := results["echelon-madd"]
	staggerOK := ef.Flows["f1"].Finish.ApproxEq(1) &&
		ef.Flows["f2"].Finish.ApproxEq(unit.Time(10.0/3)) &&
		ef.Flows["f3"].Finish.ApproxEq(unit.Time(17.0/3))
	r.check("echelon finishes staggered at 1, 10/3, 17/3", staggerOK,
		"finishes %v %v %v", ef.Flows["f1"].Finish, ef.Flows["f2"].Finish, ef.Flows["f3"].Finish)
	uniform := true
	for _, id := range []string{"f1", "f2", "f3"} {
		if !ef.Flows[id].Tardiness().ApproxEq(1) {
			uniform = false
		}
	}
	r.check("echelon maintains uniform per-flow tardiness", uniform,
		"tardiness %v %v %v", ef.Flows["f1"].Tardiness(), ef.Flows["f2"].Tardiness(), ef.Flows["f3"].Tardiness())

	r.note("EchelonFlow rate schedule (cf. paper Fig. 2c):\n%s",
		trace.RateChart(ef, []string{"f1", "f2", "f3"}, 1, 64))
	r.note("Reconstruction: flow size 1 BDU, releases 0, 0.6, 1.2; link 1 BDU/s; T = 7/3 (DESIGN.md).")
	return r, nil
}
