package experiments

import (
	"fmt"

	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/profile"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// ext1F1BJob is the E7 workload: a 1F1B pipeline, the paper's "later PP
// implementations" case (§2.1 [40-42], §4 Case II).
func ext1F1BJob() ddlt.Pipeline1F1B {
	return ddlt.Pipeline1F1B{
		Name: "p1", Model: ddlt.Uniform("m", 4, 2, 6, 1, 1),
		Workers: []string{"s0", "s1", "s2", "s3"}, MicroBatches: 6, Iterations: 1,
	}
}

// calibrated1F1B builds the job and replaces every pipeline group's
// arrangement with the Absolute arrangement profiled from an uncontended
// run — the full §3.1 workflow: profile the computation pattern, express it
// as an arrangement function, schedule against it.
func calibrated1F1B() (*ddlt.Workload, error) {
	// Profiling run: same job on an effectively infinite fabric.
	probe, err := ext1F1BJob().Build()
	if err != nil {
		return nil, err
	}
	net := fabric.NewNetwork()
	// Uncontended but not degenerate: transfer times must stay well above
	// the simulator's epsilon for event ordering to be meaningful.
	net.AddUniformHosts(1e4, probe.Hosts...)
	simr, err := sim.New(sim.Options{Graph: probe.Graph, Net: net, Scheduler: sched.Fair{}, Arrangements: probe.Arrangements})
	if err != nil {
		return nil, err
	}
	res, err := simr.Run()
	if err != nil {
		return nil, err
	}
	w, err := ext1F1BJob().Build()
	if err != nil {
		return nil, err
	}
	for group := range w.Arrangements {
		arr, err := profile.DeriveAbsolute(res, probe.Graph, group)
		if err != nil {
			return nil, fmt.Errorf("calibrate %s: %w", group, err)
		}
		if err := ddlt.Calibrate(w, group, arr); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Ext1F1B (E7) evaluates the 1F1B pipeline variant: the compiler's uniform
// Eq. 6 guess versus the profiled Absolute arrangement, across schedulers.
// It demonstrates the paper's claim that PP variants "form EchelonFlows
// similarly" with arrangements "more complicated than Eq. 6".
func Ext1F1B() (*Report, error) {
	r := &Report{ID: "e7", Title: "1F1B pipeline variant with a profiled arrangement"}
	// Two regimes: capacity 6 makes the profiled arrangement sustainable
	// (activation service time 1.0 equals the warm-up gap); capacity 4 is
	// structurally infeasible (service 1.5 > warm-up gap 1), the regime
	// where tardiness policies cannot maintain a formation at all.
	const sustainable, infeasible = unit.Rate(6), unit.Rate(4)

	run := func(build func() (*ddlt.Workload, error), c unit.Rate, s sched.Scheduler) (*sim.Result, error) {
		w, err := build()
		if err != nil {
			return nil, err
		}
		return simulate(w, c, s)
	}
	uniformBuild := func() (*ddlt.Workload, error) { return ext1F1BJob().Build() }

	r.Table = metrics.NewTable("capacity", "scheduler", "arrangement", "makespan", "sum tardiness")
	type key struct {
		c     unit.Rate
		sched string
		arr   string
	}
	makespans := map[key]unit.Time{}
	for _, c := range []unit.Rate{sustainable, infeasible} {
		for _, s := range []sched.Scheduler{
			sched.EchelonMADD{Backfill: true},
			sched.EchelonMADD{Backfill: true, GlobalEDF: true},
			sched.CoflowMADD{Backfill: true},
			sched.EDF{},
			sched.Fair{},
			sched.SRPT{},
		} {
			for _, variant := range []struct {
				name  string
				build func() (*ddlt.Workload, error)
			}{
				{"eq6-guess", uniformBuild},
				{"profiled-absolute", calibrated1F1B},
			} {
				res, err := run(variant.build, c, s)
				if err != nil {
					return nil, err
				}
				makespans[key{c, s.Name(), variant.name}] = res.Makespan
				r.Table.AddRowf(float64(c), s.Name(), variant.name, float64(res.Makespan), float64(res.TotalTardiness()))
			}
		}
	}

	// The profiled arrangement is genuinely non-uniform.
	w, err := calibrated1F1B()
	if err != nil {
		return nil, err
	}
	arr := w.Arrangements["p1/it0/fwd0"]
	abs, ok := arr.(core.Absolute)
	if !ok {
		return nil, fmt.Errorf("calibrated arrangement is %T", arr)
	}
	nonUniform := false
	var firstGap unit.Time
	for i := 1; i < abs.Stages(); i++ {
		gap := abs.Deadline(i, 0) - abs.Deadline(i-1, 0)
		if i == 1 {
			firstGap = gap
		} else if !gap.ApproxEq(firstGap) {
			nonUniform = true
		}
	}
	r.check("profiled 1F1B arrangement is non-uniform (beyond Eq. 6)", nonUniform,
		"fwd0 offsets %v", abs.Offsets)

	e := makespans[key{sustainable, "echelon-madd+bf", "profiled-absolute"}]
	c := makespans[key{sustainable, "coflow-madd+bf", "profiled-absolute"}]
	f := makespans[key{sustainable, "fair", "profiled-absolute"}]
	r.check("sustainable regime: echelon beats or ties coflow", e <= c*1.0001, "echelon %v vs coflow %v", e, c)
	r.check("sustainable regime: echelon beats or ties fair", e <= f*1.0001, "echelon %v vs fair %v", e, f)

	guess := makespans[key{sustainable, "echelon-madd+bf", "eq6-guess"}]
	r.check("profiled arrangement never hurts EchelonFlow scheduling", e <= guess*1.0001,
		"profiled %v vs eq6 guess %v", e, guess)

	// Infeasible regime: global-EDF planning expresses 1F1B's cross-group
	// interleaving that group-serial planning cannot.
	serial := makespans[key{infeasible, "echelon-madd+bf", "profiled-absolute"}]
	gedf := makespans[key{infeasible, "echelon-madd-gedf+bf", "profiled-absolute"}]
	srpt := makespans[key{infeasible, "srpt", "profiled-absolute"}]
	r.check("infeasible regime: global-EDF planning beats group-serial", gedf <= serial*1.0001,
		"gedf %v vs serial %v", gedf, serial)
	r.note("Calibration path: build -> uncontended profiling run -> profile.DeriveAbsolute -> ddlt.Calibrate.")
	r.note("Honest finding: when the network cannot sustain the arrangement at all (capacity %v), "+
		"pure-throughput SRPT (%v) still beats every formation-maintaining policy (gedf %v) — "+
		"EchelonFlow's premise assumes a sustainable computation pattern.", float64(infeasible), srpt, gedf)
	return r, nil
}
