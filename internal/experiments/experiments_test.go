package experiments

import (
	"strings"
	"testing"
)

// TestAllExperiments regenerates every paper table/figure and extended
// experiment and requires every machine-checked claim to hold.
func TestAllExperiments(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			if exp.ID == "fig7" && testing.Short() {
				t.Skip("live TCP experiment skipped in -short mode")
			}
			r, err := exp.Run()
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if r.ID != exp.ID {
				t.Errorf("report ID %q != experiment ID %q", r.ID, exp.ID)
			}
			if len(r.Checks) == 0 {
				t.Errorf("%s produced no checks", exp.ID)
			}
			for _, c := range r.Failed() {
				t.Errorf("%s check %q failed: %s", exp.ID, c.Name, c.Detail)
			}
			if t.Failed() {
				t.Logf("full report:\n%s", r.String())
			}
		})
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo"}
	r.note("hello %d", 7)
	r.check("good", true, "fine")
	r.check("bad", false, "broken %s", "badly")
	out := r.String()
	for _, want := range []string{"== x: demo ==", "hello 7", "[PASS] good", "[FAIL] bad: broken badly"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if len(r.Failed()) != 1 || r.Failed()[0].Name != "bad" {
		t.Errorf("Failed = %+v", r.Failed())
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) < 15 {
		t.Errorf("only %d experiments registered", len(seen))
	}
}
