package experiments

import (
	"bytes"
	"fmt"
	"reflect"

	"echelonflow/internal/check"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// ExtCheckHarness (E14) exercises the differential testing harness end to
// end: a fixed seed corpus must pass every invariant and differential
// oracle, scenario generation and checking must be deterministic, and a
// deliberately broken scheduler must be caught by the feasibility oracle
// and shrunk to a minimal reproducer.
func ExtCheckHarness() (*Report, error) {
	r := &Report{ID: "e14", Title: "Differential check harness: oracles, determinism, shrinking"}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}

	r.Table = metrics.NewTable("seed", "hosts", "flows", "groups", "fault evs", "violations")
	violations := 0
	for _, seed := range seeds {
		out := check.RunSeed(seed, check.Config{})
		violations += len(out.Violations)
		r.Table.AddRowf(int(seed), out.Hosts, out.Flows, out.Groups, out.FaultEvents, len(out.Violations))
		for _, v := range out.Violations {
			r.note("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
	r.check("fixed corpus passes every oracle", violations == 0, "%d violations", violations)

	// Determinism: the repro contract is that a seed alone reproduces a run.
	deterministic := true
	for _, seed := range seeds[:3] {
		a, err := check.Generate(seed).Marshal()
		if err != nil {
			return nil, err
		}
		b, err := check.Generate(seed).Marshal()
		if err != nil {
			return nil, err
		}
		o1 := check.RunSeed(seed, check.Config{Oracles: check.ResultOracles()})
		o2 := check.RunSeed(seed, check.Config{Oracles: check.ResultOracles()})
		if !bytes.Equal(a, b) || !reflect.DeepEqual(o1, o2) {
			deterministic = false
		}
	}
	r.check("same seed, same scenario, same outcome", deterministic, "rerun differed")

	// A scheduler that triples every rate oversubscribes the fabric; the
	// feasibility oracle must fire and the shrinker must cut the scenario
	// down to a handful of flows.
	cfg := check.Config{
		Oracles:   []string{check.OracleFeasible},
		Scheduler: func() sched.Scheduler { return check.Overdrive{Inner: sched.Fair{}, Factor: 3} },
	}
	sc := &check.Scenario{Hosts: []check.HostSpec{
		{Name: "a", Egress: 2, Ingress: 2},
		{Name: "b", Egress: 2, Ingress: 2},
		{Name: "c", Egress: 2, Ingress: 2},
	}}
	for i := 0; i < 6; i++ {
		src, dst := "a", "b"
		if i%2 == 1 {
			src, dst = "b", "c"
		}
		sc.Nodes = append(sc.Nodes, check.NodeSpec{
			ID: fmt.Sprintf("f%d", i), Kind: "comm", Src: src, Dst: dst, Size: unit.Bytes(1 + i),
		})
	}
	broken := check.Run(sc, cfg)
	r.check("feasibility oracle catches oversubscription", broken.Failed(), "no violation reported")
	min := check.Shrink(sc, cfg, 0)
	mo := check.Run(min, cfg)
	r.check("shrunk repro still fails the same oracle",
		mo.Failed() && mo.Violations[0].Oracle == check.OracleFeasible, "%+v", mo.Violations)
	r.check("shrinker reaches <= 3 flows", mo.Flows <= 3, "%d flows after shrinking", mo.Flows)
	r.note("Shrunk from %d to %d flows; CLI equivalent: go run ./cmd/echelon-check -seed N -n 1.", broken.Flows, mo.Flows)
	return r, nil
}
