package experiments

import (
	"fmt"
	"sort"
	"strings"

	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// paradigm describes one Table 1 row: a builder (fresh workload per run so
// merges never collide), the paper's compliance claim, and the paper's
// arrangement description.
type paradigm struct {
	name        string
	compliant   bool // paper's "CoFlow compliance" column
	arrangement string
	capacity    unit.Rate
	iterations  int
	build       func() (*ddlt.Workload, error)
}

// standardParadigms returns the five Table 1 paradigms on 4 workers with
// communication sized to contend with computation.
func standardParadigms() []paradigm {
	workers := []string{"w0", "w1", "w2", "w3"}
	return []paradigm{
		{
			name: "DP-AllReduce", compliant: true, arrangement: "same finish (coflow)",
			capacity: 4, iterations: 2,
			build: func() (*ddlt.Workload, error) {
				return ddlt.DPAllReduce{
					Name: "dp", Model: ddlt.Uniform("m", 4, 8, 1, 0.5, 0.5),
					Workers: workers, BucketCount: 2, Iterations: 2,
				}.Build()
			},
		},
		{
			name: "DP-PS", compliant: true, arrangement: "same finish (coflow)",
			capacity: 8, iterations: 2,
			build: func() (*ddlt.Workload, error) {
				return ddlt.DPParameterServer{
					Name: "ps", Model: ddlt.Uniform("m", 4, 8, 1, 0.5, 0.5),
					Workers: workers, PS: "ps0", BucketCount: 2, AggTime: 0.1, Iterations: 2,
				}.Build()
			},
		},
		{
			name: "PP", compliant: false, arrangement: "staggered flow finish (pipeline)",
			capacity: 4, iterations: 2,
			build: func() (*ddlt.Workload, error) {
				return ddlt.PipelineGPipe{
					Name: "pp", Model: ddlt.Uniform("m", 4, 2, 6, 1, 1),
					Workers: workers, MicroBatches: 4, Iterations: 2,
				}.Build()
			},
		},
		{
			name: "TP", compliant: true, arrangement: "same finish (coflow)",
			capacity: 8, iterations: 2,
			build: func() (*ddlt.Workload, error) {
				return ddlt.TensorParallel{
					Name: "tp", Model: ddlt.Uniform("m", 3, 2, 12, 0.5, 0.5),
					Workers: workers, Iterations: 2,
				}.Build()
			},
		},
		{
			name: "FSDP", compliant: false, arrangement: "staggered Coflow finish (staged)",
			capacity: 6, iterations: 2,
			build: func() (*ddlt.Workload, error) {
				return ddlt.FSDP{
					Name: "fsdp", Model: ddlt.Uniform("m", 4, 8, 1, 0.75, 1),
					Workers: workers, Iterations: 2,
				}.Build()
			},
		},
	}
}

// runParadigm builds and simulates one paradigm under a scheduler.
func runParadigm(p paradigm, s sched.Scheduler) (*ddlt.Workload, *sim.Result, error) {
	w, err := p.build()
	if err != nil {
		return nil, nil, err
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(p.capacity, w.Hosts...)
	simr, err := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements})
	if err != nil {
		return nil, nil, err
	}
	res, err := simr.Run()
	if err != nil {
		return nil, nil, err
	}
	return w, res, nil
}

// workloadCompliant reports whether every group of a workload is a plain
// Coflow (the paper's compliance criterion).
func workloadCompliant(w *ddlt.Workload) bool {
	for _, arr := range w.Arrangements {
		if _, ok := arr.(core.Coflow); !ok {
			return false
		}
	}
	return true
}

// arrangementKinds summarizes the distinct arrangement kinds of a workload.
func arrangementKinds(w *ddlt.Workload) string {
	set := map[string]bool{}
	for _, arr := range w.Arrangements {
		set[arr.Name()] = true
	}
	kinds := make([]string, 0, len(set))
	for k := range set {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return strings.Join(kinds, "+")
}

// Table1 reproduces the paper's Table 1: per-paradigm Coflow compliance and
// EchelonFlow arrangement, plus measured iteration times showing EchelonFlow
// scheduling never loses to Coflow scheduling and wins on the
// non-compliant paradigms.
func Table1() (*Report, error) {
	r := &Report{ID: "table1", Title: "Paradigm compliance and arrangements (paper Table 1)"}
	r.Table = metrics.NewTable("paradigm", "coflow-compliant", "arrangement kinds",
		"iter time (coflow)", "iter time (echelon)", "speedup")

	for _, p := range standardParadigms() {
		w, _, err := runParadigm(p, sched.Fair{}) // structure probe
		if err != nil {
			return nil, err
		}
		compliant := workloadCompliant(w)
		r.check(p.name+" compliance matches paper", compliant == p.compliant,
			"measured %v, paper %v (%s)", compliant, p.compliant, p.arrangement)

		_, cres, err := runParadigm(p, sched.CoflowMADD{Backfill: true})
		if err != nil {
			return nil, err
		}
		_, eres, err := runParadigm(p, sched.EchelonMADD{Backfill: true})
		if err != nil {
			return nil, err
		}
		iters := unit.Time(p.iterations)
		coflowIt := float64(cres.Makespan / iters)
		echelonIt := float64(eres.Makespan / iters)
		r.Table.AddRowf(p.name, fmt.Sprintf("%v", compliant), arrangementKinds(w),
			coflowIt, echelonIt, coflowIt/echelonIt)
		r.check(p.name+" echelon <= coflow", eres.Makespan <= cres.Makespan*1.0001,
			"echelon %v vs coflow %v", eres.Makespan, cres.Makespan)
	}

	// Finish-time patterns under (unbackfilled) EchelonFlow scheduling:
	// coflow-compliant groups finish simultaneously, pipeline groups
	// staggered — exactly Table 1's "EchelonFlow arrangement" column.
	pp := standardParadigms()[2]
	w, res, err := runParadigm(pp, sched.EchelonMADD{})
	if err != nil {
		return nil, err
	}
	finishes := groupFinishes(w, res, "pp/it0/fwd0")
	staggered := sort.SliceIsSorted(finishes, func(i, j int) bool { return finishes[i] < finishes[j] })
	distinct := len(finishes) > 1 && finishes[len(finishes)-1].After(finishes[0])
	r.check("PP flows finish staggered under EchelonFlow", staggered && distinct,
		"fwd0 finishes %v", finishes)

	// A ring all-reduce Coflow has internal step dependencies, so only
	// same-step flows can finish together; the PS push Coflow has no
	// internal structure and shows the pure "same finish time" pattern.
	ps := standardParadigms()[1]
	wd, resd, err := runParadigm(ps, sched.EchelonMADD{})
	if err != nil {
		return nil, err
	}
	pushFinishes := groupFinishes(wd, resd, "ps/it0/push0")
	same := true
	for _, f := range pushFinishes[1:] {
		if !f.ApproxEq(pushFinishes[0]) {
			same = false
		}
	}
	r.check("DP-PS push flows finish simultaneously under EchelonFlow", same && len(pushFinishes) > 1,
		"push0 finishes %v", pushFinishes)

	// Within the DP all-reduce Coflow, each ring step's flows finish
	// together (the step chain is the only stagger).
	dp := standardParadigms()[0]
	wa, resa, err := runParadigm(dp, sched.EchelonMADD{})
	if err != nil {
		return nil, err
	}
	stepSame := true
	byStep := map[string][]unit.Time{}
	for _, n := range wa.Graph.GroupNodes("dp/it0/ar0") {
		key := n.ID[:strings.LastIndex(n.ID, "w")] // strip the worker suffix
		byStep[key] = append(byStep[key], resa.Flows[n.ID].Finish)
	}
	for _, finishes := range byStep {
		for _, f := range finishes[1:] {
			if !f.ApproxEq(finishes[0]) {
				stepSame = false
			}
		}
	}
	r.check("DP all-reduce ring steps finish simultaneously under EchelonFlow",
		stepSame && len(byStep) > 1, "per-step finishes %v", byStep)
	return r, nil
}

// groupFinishes lists a group's flow finish times in stage order.
func groupFinishes(w *ddlt.Workload, res *sim.Result, group string) []unit.Time {
	nodes := w.Graph.GroupNodes(group)
	out := make([]unit.Time, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, res.Flows[n.ID].Finish)
	}
	return out
}
