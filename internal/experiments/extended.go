package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/topology"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// relClose reports whether a and b agree within a relative tolerance.
func relClose(a, b, tol float64) bool {
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom < unit.Eps {
		return true
	}
	return math.Abs(a-b)/denom <= tol
}

// multiJobWorkload merges j pipeline jobs that share one stage-pair fabric,
// offset in start time via NotBefore on their head computes.
func multiJobWorkload(jobs int) (*ddlt.Workload, error) {
	var ws []*ddlt.Workload
	for j := 0; j < jobs; j++ {
		w, err := ddlt.PipelineGPipe{
			Name:  fmt.Sprintf("job%d", j),
			Model: ddlt.Uniform("m", 4, 2, 5, 1, 1),
			Workers: []string{
				fmt.Sprintf("j%d-s0", j), "shared-s1", // all jobs funnel into one hot worker pair
			},
			MicroBatches: 3, Iterations: 1,
		}.Build()
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ddlt.Merge(ws...)
}

// ExtMultiJob (E1) measures the Eq. 4 objective — the sum of EchelonFlow
// tardiness across competing jobs — for each scheduler, sweeping job count,
// plus the inter-group ordering ablation.
func ExtMultiJob() (*Report, error) {
	r := &Report{ID: "e1", Title: "Multi-job sum of tardiness (Eq. 4)"}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.EchelonMADD{Order: sched.LargestTardinessFirst, Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
		sched.SRPT{},
	}
	r.Table = metrics.NewTable(append([]string{"jobs"}, schedNames(schedulers)...)...)
	for _, jobs := range []int{2, 4, 6} {
		cells := []interface{}{jobs}
		sums := make([]unit.Time, len(schedulers))
		for i, s := range schedulers {
			w, err := multiJobWorkload(jobs)
			if err != nil {
				return nil, err
			}
			res, err := simulate(w, 4, s)
			if err != nil {
				return nil, err
			}
			sums[i] = res.TotalTardiness()
			cells = append(cells, float64(sums[i]))
		}
		r.Table.AddRowf(cells...)
		best := sums[0]
		for _, x := range sums[1:] {
			if x < best {
				best = x
			}
		}
		r.check(fmt.Sprintf("%d jobs: echelon-madd best on Eq. 4", jobs),
			float64(sums[0]) <= float64(best)*1.01+unit.Eps,
			"echelon %v vs best %v", sums[0], best)
	}
	r.note("Ordering ablation: column 2 ranks most-tardy-first instead of the SEBF-analogue default.")
	return r, nil
}

// ExtBandwidthSweep (E2) sweeps link capacity for a fixed pipeline job: at
// low bandwidth the network dominates and scheduler choice matters; at high
// bandwidth all schedulers converge to the compute-bound time (the
// crossover). Also ablates MADD backfilling.
func ExtBandwidthSweep() (*Report, error) {
	r := &Report{ID: "e2", Title: "Bandwidth sweep: where scheduling matters"}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.EchelonMADD{}, // backfill ablation
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
	}
	r.Table = metrics.NewTable(append([]string{"capacity"}, schedNames(schedulers)...)...)
	build := func() (*ddlt.Workload, error) {
		return ddlt.PipelineGPipe{
			Name: "pp", Model: ddlt.Uniform("m", 4, 2, 6, 1, 1),
			Workers: []string{"s0", "s1", "s2", "s3"}, MicroBatches: 4, Iterations: 1,
		}.Build()
	}
	caps := []unit.Rate{2, 4, 8, 16, 64, 256}
	makespans := make(map[string][]unit.Time)
	for _, c := range caps {
		cells := []interface{}{float64(c)}
		for _, s := range schedulers {
			w, err := build()
			if err != nil {
				return nil, err
			}
			res, err := simulate(w, c, s)
			if err != nil {
				return nil, err
			}
			makespans[s.Name()] = append(makespans[s.Name()], res.Makespan)
			cells = append(cells, float64(res.Makespan))
		}
		r.Table.AddRowf(cells...)
	}
	// Shape checks: monotone improvement with bandwidth, convergence at the
	// compute-bound end, and echelon <= coflow at the contended end.
	e := makespans["echelon-madd+bf"]
	c := makespans["coflow-madd+bf"]
	f := makespans["fair"]
	r.check("echelon beats or ties coflow when contended", e[0] <= c[0]*1.0001 && e[1] <= c[1]*1.0001,
		"cap=2: %v vs %v; cap=4: %v vs %v", e[0], c[0], e[1], c[1])
	converged := relClose(float64(e[len(e)-1]), float64(f[len(f)-1]), 0.02) &&
		relClose(float64(e[len(e)-1]), float64(c[len(c)-1]), 0.02)
	r.check("schedulers converge when compute-bound", converged,
		"cap=256: echelon %v, coflow %v, fair %v", e[len(e)-1], c[len(c)-1], f[len(f)-1])
	mono := true
	for i := 1; i < len(e); i++ {
		if e[i] > e[i-1]*1.0001 {
			mono = false
		}
	}
	r.check("more bandwidth never hurts (echelon)", mono, "makespans %v", e)
	bf := makespans["echelon-madd+bf"]
	nobf := makespans["echelon-madd"]
	worse := 0
	for i := range bf {
		if nobf[i] > bf[i]*1.0001 {
			worse++
		}
	}
	r.note("Backfill ablation: unbackfilled EchelonMADD is slower at %d of %d capacities (work conservation matters for single jobs).", worse, len(bf))
	return r, nil
}

// ExtDelayRecovery (E3) injects a stall into a pipeline and compares how
// the schedulers restore the echelon formation: the tardiness objective
// keeps per-flow tardiness uniform after the delay, while Coflow scheduling
// collapses the staggering entirely.
func ExtDelayRecovery() (*Report, error) {
	r := &Report{ID: "e3", Title: "Arrangement recovery after an injected delay"}
	const T = unit.Time(2)
	build := func() (*dag.Graph, *fabric.Network, map[string]core.Arrangement) {
		g := dag.New()
		for i := 0; i < 4; i++ {
			release := unit.Time(i) * T
			if i == 1 {
				release += 3 // the injected stall: flow 1 is late
			}
			g.MustAdd(&dag.Node{
				ID: fmt.Sprintf("f%d", i), Kind: dag.Comm,
				Src: "w1", Dst: "w2", Size: 1.5,
				Group: "pp", Stage: i, NotBefore: release,
			})
		}
		net := fabric.NewNetwork()
		net.AddUniformHosts(1, "w1", "w2")
		return g, net, map[string]core.Arrangement{"pp": core.Pipeline{T: T}}
	}
	run := func(s sched.Scheduler) (*sim.Result, error) {
		g, net, arrs := build()
		simr, err := sim.New(sim.Options{Graph: g, Net: net, Scheduler: s, Arrangements: arrs})
		if err != nil {
			return nil, err
		}
		return simr.Run()
	}
	r.Table = metrics.NewTable("scheduler", "f0 tard", "f1 tard", "f2 tard", "f3 tard", "spread", "group tard")
	type outcome struct {
		spread, group unit.Time
	}
	outs := map[string]outcome{}
	for _, s := range []sched.Scheduler{sched.EchelonMADD{}, sched.CoflowMADD{}, sched.Fair{}} {
		res, err := run(s)
		if err != nil {
			return nil, err
		}
		var tards []unit.Time
		for i := 0; i < 4; i++ {
			tards = append(tards, res.Flows[fmt.Sprintf("f%d", i)].Tardiness())
		}
		// Spread over the flows after the stall (the ones that can recover).
		min, max := tards[1], tards[1]
		for _, x := range tards[1:] {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		outs[s.Name()] = outcome{spread: max - min, group: res.Groups["pp"].Tardiness}
		r.Table.AddRowf(s.Name(), float64(tards[0]), float64(tards[1]), float64(tards[2]),
			float64(tards[3]), float64(max-min), float64(res.Groups["pp"].Tardiness))
	}
	r.check("echelon restores uniform tardiness after the stall",
		outs["echelon-madd"].spread.ApproxEq(0),
		"post-stall tardiness spread %v", outs["echelon-madd"].spread)
	r.check("echelon bounds group tardiness at the stall, not beyond",
		outs["echelon-madd"].group <= outs["coflow-madd"].group+unit.Time(unit.Eps),
		"echelon %v vs coflow %v", outs["echelon-madd"].group, outs["coflow-madd"].group)
	r.note("Tardiness is measured against ideal finish times derived from the reference time (Eq. 1),")
	r.note("so later EchelonFlows recover the arrangement — the §3.2 argument for tardiness over FCT.")
	return r, nil
}

// ExtWeightedTardiness (E4) gives one of two identical competing jobs a
// higher weight under the weighted Eq. 4 objective and verifies the
// weighted scheduler shifts tardiness onto the lighter job.
func ExtWeightedTardiness() (*Report, error) {
	r := &Report{ID: "e4", Title: "Weighted tardiness (Eq. 4, weighted variant)"}
	// A snapshot-level comparison exercises the weighted ordering directly:
	// two identical pipeline groups contend for one destination port.
	net := fabric.NewNetwork()
	net.AddUniformHosts(1, "src0", "src1", "dst")
	mk := func(id string, weight float64, srcHost string) (*core.EchelonFlow, []*sched.FlowState) {
		var flows []*core.Flow
		for i := 0; i < 3; i++ {
			flows = append(flows, &core.Flow{ID: fmt.Sprintf("%s-f%d", id, i), Src: srcHost, Dst: "dst", Size: 2, Stage: i})
		}
		g, err := core.New(id, core.Pipeline{T: 1}, flows...)
		if err != nil {
			panic(err)
		}
		g.Weight = weight
		var fss []*sched.FlowState
		for _, f := range flows {
			fss = append(fss, &sched.FlowState{Flow: f, GroupID: id, Remaining: f.Size})
		}
		return g, fss
	}
	// Group IDs chosen so the unweighted tie-break (lexicographic) favours
	// the LIGHT group: only the weight can flip the decision.
	heavy, heavyFlows := mk("z-heavy", 4, "src0")
	light, lightFlows := mk("a-light", 1, "src1")
	snap := &sched.Snapshot{Now: 0, Groups: map[string]*sched.GroupState{
		"z-heavy": {Group: heavy}, "a-light": {Group: light},
	}}
	snap.Flows = append(append([]*sched.FlowState{}, heavyFlows...), lightFlows...)

	r.Table = metrics.NewTable("scheduler", "heavy head rate", "light head rate")
	plain, err := (sched.EchelonMADD{}).Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	weightedRates, err := (sched.EchelonMADD{Weighted: true}).Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	r.Table.AddRowf("echelon-madd", float64(plain["z-heavy-f0"]), float64(plain["a-light-f0"]))
	r.Table.AddRowf("echelon-madd-w", float64(weightedRates["z-heavy-f0"]), float64(weightedRates["a-light-f0"]))
	r.check("unweighted tie-break favours the light group",
		plain["a-light-f0"] > plain["z-heavy-f0"],
		"light %v vs heavy %v", plain["a-light-f0"], plain["z-heavy-f0"])
	r.check("weighting flips priority to the heavy group",
		weightedRates["z-heavy-f0"] > weightedRates["a-light-f0"],
		"heavy %v vs light %v", weightedRates["z-heavy-f0"], weightedRates["a-light-f0"])
	r.note("Both jobs contend for dst ingress; the weighted order serves the weight-4 group first.")
	return r, nil
}

// ExtMixedParadigms (E5) is the paper's §1 motivation: drastically
// different paradigms (a pipeline job and a DP job) share a fragmented
// cluster, and only a global, arrangement-aware scheduler serves both.
func ExtMixedParadigms() (*Report, error) {
	r := &Report{ID: "e5", Title: "Mixed paradigms on a shared, fragmented cluster"}
	cluster := topology.New()
	for i := 0; i < 4; i++ {
		if err := cluster.AddHost(fmt.Sprintf("n%d", i), 2, 8, 8); err != nil {
			return nil, err
		}
	}
	ppPlace, err := cluster.Place("pp", 4, topology.Spread)
	if err != nil {
		return nil, err
	}
	dpPlace, err := cluster.Place("dp", 4, topology.Spread)
	if err != nil {
		return nil, err
	}
	ppJob := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 5, 1, 1),
		Workers: ppPlace.Slots, MicroBatches: 4, Iterations: 1,
	}
	dpJob := ddlt.DPAllReduce{
		Name: "dp", Model: ddlt.Uniform("m", 4, 8, 1, 0.5, 0.5),
		Workers: dpPlace.Slots, BucketCount: 2, Iterations: 1,
	}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
	}
	r.Table = metrics.NewTable("scheduler", "pp makespan", "dp makespan", "sum tardiness")
	results := map[string][3]float64{}
	for _, s := range schedulers {
		ppW, err := ppJob.Build()
		if err != nil {
			return nil, err
		}
		dpW, err := dpJob.Build()
		if err != nil {
			return nil, err
		}
		merged, err := ddlt.Merge(ppW, dpW)
		if err != nil {
			return nil, err
		}
		simr, err := sim.New(sim.Options{
			Graph: merged.Graph, Net: cluster.Fabric(), Scheduler: s, Arrangements: merged.Arrangements,
		})
		if err != nil {
			return nil, err
		}
		res, err := simr.Run()
		if err != nil {
			return nil, err
		}
		ppSpan := jobMakespan(res, "pp/")
		dpSpan := jobMakespan(res, "dp/")
		results[s.Name()] = [3]float64{float64(ppSpan), float64(dpSpan), float64(res.TotalTardiness())}
		r.Table.AddRowf(s.Name(), float64(ppSpan), float64(dpSpan), float64(res.TotalTardiness()))
	}
	e, c := results["echelon-madd+bf"], results["coflow-madd+bf"]
	r.check("echelon sum tardiness <= coflow", e[2] <= c[2]*1.01+unit.Eps,
		"%.4g vs %.4g", e[2], c[2])
	r.check("echelon serves both paradigms", e[0] <= c[0]*1.05 && e[1] <= c[1]*1.05,
		"pp %.4g vs %.4g; dp %.4g vs %.4g", e[0], c[0], e[1], c[1])
	r.note("Placement: both jobs Spread across 4 hosts x 2 GPUs (fragmentation %d and %d).",
		cluster.Fragmentation(ppPlace), cluster.Fragmentation(dpPlace))
	return r, nil
}

// jobMakespan returns the latest finish among a job's nodes.
func jobMakespan(res *sim.Result, prefix string) unit.Time {
	var last unit.Time
	for id, span := range res.Tasks {
		if strings.HasPrefix(id, prefix) && span.End > last {
			last = span.End
		}
	}
	for id, rec := range res.Flows {
		if strings.HasPrefix(id, prefix) && rec.Finish > last {
			last = rec.Finish
		}
	}
	return last
}

// ExtCoordinatorLatency (E6) measures the in-process Coordinator decision
// path — the practicality question of §5. It reports per-event scheduling
// latency percentiles as group count grows.
func ExtCoordinatorLatency() (*Report, error) {
	r := &Report{ID: "e6", Title: "Coordinator decision latency"}
	r.Table = metrics.NewTable("groups", "flows", "p50 (ms)", "p99 (ms)", "max (ms)")
	for _, groups := range []int{4, 16, 64} {
		lat, flows, err := coordinatorLatency(groups)
		if err != nil {
			return nil, err
		}
		r.Table.AddRowf(groups, flows,
			metrics.Percentile(lat, 50)*1e3, metrics.Percentile(lat, 99)*1e3,
			metrics.Summarize(lat).Max*1e3)
		r.check(fmt.Sprintf("%d groups: p99 under 250ms", groups),
			metrics.Percentile(lat, 99) < 0.25,
			"p99 %.2fms", metrics.Percentile(lat, 99)*1e3)
	}
	r.note("Latency covers advance + reschedule + allocation bookkeeping per flow event.")
	return r, nil
}

// coordinatorLatency drives an in-process coordinator through release
// events and measures each decision.
func coordinatorLatency(groups int) ([]float64, int, error) {
	net := fabric.NewNetwork()
	hosts := make([]string, 8)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("h%d", i)
		if err := net.AddHost(hosts[i], 100, 100); err != nil {
			return nil, 0, err
		}
	}
	coord, err := coordinator.New(coordinator.Options{
		Net:       net,
		Scheduler: sched.EchelonMADD{Backfill: true},
		Logf:      func(string, ...interface{}) {},
	})
	if err != nil {
		return nil, 0, err
	}
	flowsPer := 4
	var events []wire.FlowEvent
	for gi := 0; gi < groups; gi++ {
		gid := fmt.Sprintf("g%d", gi)
		var flows []*core.Flow
		for fi := 0; fi < flowsPer; fi++ {
			flows = append(flows, &core.Flow{
				ID:  fmt.Sprintf("%s-f%d", gid, fi),
				Src: hosts[(gi+fi)%8], Dst: hosts[(gi+fi+1)%8],
				Size: 50, Stage: fi,
			})
		}
		g, err := core.New(gid, core.Pipeline{T: 0.1}, flows...)
		if err != nil {
			return nil, 0, err
		}
		if err := coord.RegisterGroup("bench", g); err != nil {
			return nil, 0, err
		}
		for _, f := range flows {
			events = append(events, wire.FlowEvent{GroupID: gid, FlowID: f.ID, Event: wire.EventReleased})
		}
	}
	var latencies []float64
	for _, ev := range events {
		start := time.Now()
		if _, err := coord.FlowEvent(ev); err != nil {
			return nil, 0, err
		}
		latencies = append(latencies, time.Since(start).Seconds())
	}
	return latencies, groups * flowsPer, nil
}
