package experiments

import (
	"fmt"

	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// rackFabric builds 2 racks × 4 hosts with NIC capacity 6 and uplinks
// scaled by the oversubscription factor (1:1 means uplink = 4 NICs' worth).
func rackFabric(oversub float64) (*fabric.Network, []string, error) {
	net := fabric.NewNetwork()
	var hosts []string
	for r := 0; r < 2; r++ {
		rack := fmt.Sprintf("rack%d", r)
		upl := unit.Rate(4 * 6 / oversub)
		if err := net.AddRack(rack, upl, upl); err != nil {
			return nil, nil, err
		}
		for h := 0; h < 4; h++ {
			name := fmt.Sprintf("r%dh%d", r, h)
			hosts = append(hosts, name)
			if err := net.AddHost(name, 6, 6); err != nil {
				return nil, nil, err
			}
			if err := net.AssignRack(name, rack); err != nil {
				return nil, nil, err
			}
		}
	}
	return net, hosts, nil
}

// rackMixWorkload is E11's tenant mix on a rackFabric host list: a DP job
// whose ring alternates racks (every hop crosses an uplink) plus a pipeline
// confined to one rack. Shared with the scheduler golden-equivalence test.
func rackMixWorkload(hosts []string) (*ddlt.Workload, error) {
	// DP spans the racks: workers alternate racks so every ring hop
	// crosses an uplink.
	dp, err := ddlt.DPAllReduce{
		Name: "dp", Model: ddlt.Uniform("m1", 4, 6, 1, 0.5, 0.5),
		Workers:     []string{hosts[0], hosts[4], hosts[1], hosts[5]},
		BucketCount: 2, Iterations: 2,
	}.Build()
	if err != nil {
		return nil, err
	}
	// PP lives inside rack 1.
	pp, err := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m2", 4, 2, 4, 1, 1),
		Workers:      []string{hosts[6], hosts[7], hosts[2], hosts[3]}[:2],
		MicroBatches: 4, Iterations: 2,
	}.Build()
	if err != nil {
		return nil, err
	}
	return ddlt.Merge(dp, pp)
}

// ExtRackOversubscription (E11) lifts the paper's pure big-switch
// assumption: a DP job spanning both racks (its ring crosses the uplinks)
// shares the fabric with a PP job placed inside one rack. As the
// oversubscription factor grows, cross-rack traffic throttles and the
// schedulers must keep the intra-rack tenant unharmed.
func ExtRackOversubscription() (*Report, error) {
	r := &Report{ID: "e11", Title: "Two-tier fabric: rack oversubscription"}
	r.Table = metrics.NewTable("oversub", "scheduler", "dp iter time", "pp iter time", "sum tardiness")

	type key struct {
		over  float64
		sched string
	}
	res := map[key]*sim.Result{}
	for _, over := range []float64{1, 2, 4} {
		for _, s := range []sched.Scheduler{
			sched.EchelonMADD{Backfill: true},
			sched.CoflowMADD{Backfill: true},
			sched.Fair{},
		} {
			net, hosts, err := rackFabric(over)
			if err != nil {
				return nil, err
			}
			merged, err := rackMixWorkload(hosts)
			if err != nil {
				return nil, err
			}
			simr, err := sim.New(sim.Options{Graph: merged.Graph, Net: net, Scheduler: s, Arrangements: merged.Arrangements})
			if err != nil {
				return nil, err
			}
			out, err := simr.Run()
			if err != nil {
				return nil, err
			}
			res[key{over, s.Name()}] = out
			r.Table.AddRowf(over, s.Name(),
				float64(jobMakespan(out, "dp/")/2), float64(jobMakespan(out, "pp/")/2),
				float64(out.TotalTardiness()))
		}
	}

	// Oversubscription slows the cross-rack DP job monotonically...
	e1 := res[key{1, "echelon-madd+bf"}]
	e4 := res[key{4, "echelon-madd+bf"}]
	r.check("oversubscription throttles the cross-rack job",
		jobMakespan(e4, "dp/") > jobMakespan(e1, "dp/"),
		"dp makespan %v at 4:1 vs %v at 1:1", jobMakespan(e4, "dp/"), jobMakespan(e1, "dp/"))
	// ...but the intra-rack pipeline is insulated (its traffic never
	// touches an uplink).
	ppDrift := relClose(float64(jobMakespan(e4, "pp/")), float64(jobMakespan(e1, "pp/")), 0.05)
	r.check("intra-rack tenant insulated from uplink contention", ppDrift,
		"pp makespan %v at 4:1 vs %v at 1:1", jobMakespan(e4, "pp/"), jobMakespan(e1, "pp/"))
	for _, over := range []float64{1, 2, 4} {
		e := res[key{over, "echelon-madd+bf"}]
		c := res[key{over, "coflow-madd+bf"}]
		f := res[key{over, "fair"}]
		r.check(fmt.Sprintf("%.0f:1 echelon beats fair on sum tardiness", over),
			float64(e.TotalTardiness()) < float64(f.TotalTardiness()),
			"%v vs %v", e.TotalTardiness(), f.TotalTardiness())
		r.check(fmt.Sprintf("%.0f:1 echelon within 15%% of coflow", over),
			float64(e.TotalTardiness()) <= float64(c.TotalTardiness())*1.15+unit.Eps,
			"%v vs %v", e.TotalTardiness(), c.TotalTardiness())
	}
	r.note("Fabric: 2 racks x 4 hosts (NIC 6); uplink = 24/oversub per direction.")
	r.note("This mix is dominated by Coflow-compliant groups, so SEBF-ordered CoflowMADD edges")
	r.note("out the tardiness-ordered EchelonMADD by a few percent — the reverse of E1/E5, where")
	r.note("staggered arrangements dominate. Both consistently beat arrangement-oblivious fair.")
	return r, nil
}
