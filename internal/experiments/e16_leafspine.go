package experiments

import (
	"fmt"

	"echelonflow/internal/dag"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// e16Hosts is the arena: 8 uniform hosts. On the leaf-spine backend they sit
// 2 per leaf under 4 leaves, 2 spines, and a 4:1 oversubscribed core; on the
// big-switch backend the same NICs hang off one non-blocking switch.
func e16Hosts() []string {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("h%d", i)
	}
	return names
}

const e16NIC = unit.Rate(8)

func e16LeafSpine() (*fabric.LeafSpine, error) {
	return fabric.NewLeafSpineFromHosts(e16Hosts(), 2, 2, e16NIC, 4)
}

func e16BigSwitch() *fabric.Network {
	net := fabric.NewNetwork()
	net.AddUniformHosts(e16NIC, e16Hosts()...)
	return net
}

// e16Workload binds four identical 2-worker data-parallel jobs to host
// pairs. The two placements are isomorphic — every job owns both its hosts
// exclusively, with identical NICs — and differ only in where the hosts sit:
// "packed" pairs leaf-mates (h0+h1, h2+h3, ...), "spread" pairs across the
// core (h0+h4, h1+h5, ...).
func e16Workload(placement string) (*ddlt.Workload, error) {
	hosts := e16Hosts()
	var parts []*ddlt.Workload
	for j := 0; j < 4; j++ {
		var workers []string
		switch placement {
		case "packed":
			workers = []string{hosts[2*j], hosts[2*j+1]}
		case "spread":
			workers = []string{hosts[j], hosts[j+4]}
		default:
			return nil, fmt.Errorf("unknown placement %q", placement)
		}
		model := ddlt.Uniform(fmt.Sprintf("m%d", j), 3, 4, 1, 0.2, 0.2)
		w, err := ddlt.DPAllReduce{
			Name: fmt.Sprintf("job%d", j), Model: model, Workers: workers,
			BucketCount: 2, Iterations: 2,
		}.Build()
		if err != nil {
			return nil, err
		}
		parts = append(parts, w)
	}
	return ddlt.Merge(parts...)
}

// e16Run executes one placement on one backend.
func e16Run(placement string, net fabric.Fabric) (*sim.Result, *ddlt.Workload, error) {
	w, err := e16Workload(placement)
	if err != nil {
		return nil, nil, err
	}
	simr, err := sim.New(sim.Options{
		Graph: w.Graph, Net: net,
		Scheduler:    sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()},
		Arrangements: w.Arrangements,
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := simr.Run()
	return res, w, err
}

// ExtLeafSpinePlacement (E16) is the placement-sensitivity experiment the
// fabric generalization exists for: the same four jobs run under a
// leaf-local and a core-crossing placement, on both network models. The
// big-switch model prices the two placements identically — every byte meets
// only NICs — so only the leaf-spine backend can expose the cost of
// spreading workers across an oversubscribed core.
func ExtLeafSpinePlacement() (*Report, error) {
	r := &Report{ID: "e16", Title: "Leaf-spine fabric: placement sensitivity under core oversubscription"}
	r.Table = metrics.NewTable("fabric", "placement", "core flows", "sum tardiness", "makespan")

	type outcome struct {
		core     int
		tard     unit.Time
		makespan unit.Time
	}
	results := make(map[string]outcome)
	for _, placement := range []string{"packed", "spread"} {
		for _, backend := range []string{"bigswitch", "leafspine"} {
			var net fabric.Fabric
			ls, err := e16LeafSpine()
			if err != nil {
				return nil, err
			}
			if backend == "leafspine" {
				net = ls
			} else {
				net = e16BigSwitch()
			}
			res, w, err := e16Run(placement, net)
			if err != nil {
				return nil, err
			}
			core := 0
			for _, n := range w.Graph.Nodes() {
				if n.Kind == dag.Comm && ls.LeafOf(n.Src) != ls.LeafOf(n.Dst) {
					core++
				}
			}
			results[backend+"/"+placement] = outcome{core: core, tard: res.TotalTardiness(), makespan: res.Makespan}
			r.Table.AddRowf(backend, placement, core, float64(res.TotalTardiness()), float64(res.Makespan))
		}
	}

	bigPacked := results["bigswitch/packed"]
	bigSpread := results["bigswitch/spread"]
	leafPacked := results["leafspine/packed"]
	leafSpread := results["leafspine/spread"]
	r.check("the big-switch model is placement-blind",
		bigPacked.tard == bigSpread.tard && bigPacked.makespan == bigSpread.makespan,
		"packed %v/%v vs spread %v/%v (tardiness/makespan)",
		bigPacked.tard, bigPacked.makespan, bigSpread.tard, bigSpread.makespan)
	r.check("leaf-local placement pays no core tax",
		leafPacked.tard == bigPacked.tard && leafPacked.makespan == bigPacked.makespan,
		"leafspine %v/%v vs bigswitch %v/%v",
		leafPacked.tard, leafPacked.makespan, bigPacked.tard, bigPacked.makespan)
	r.check("core oversubscription separates the placements",
		float64(leafSpread.tard) > float64(leafPacked.tard)+unit.Eps,
		"spread %v vs packed %v sum tardiness", leafSpread.tard, leafPacked.tard)
	r.check("only the core-crossing placement slows down",
		leafSpread.makespan > leafPacked.makespan,
		"spread %v vs packed %v makespan", leafSpread.makespan, leafPacked.makespan)
	r.note("Fabric: 8 hosts (NIC 8), 2/leaf, 2 spines, 4:1 oversubscribed core")
	r.note("(uplinks 2/spine/direction); jobs: 4 x 2-worker dp, 2 iterations. The")
	r.note("placements are isomorphic job-for-job, so every delta is topology.")
	r.note("CLI equivalents: echelon-sim -fabric leafspine:hosts=2,spines=2,oversub=4,")
	r.note("echelon-check -fabric leafspine, echelon-coordinator -fabric leafspine.")
	return r, nil
}
