package experiments

import (
	"fmt"
	"sort"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// coflowBatch builds K classic shuffle coflows: each fans in from all
// source workers to its own reducer, with sizes spread across a 6x range —
// the traditional cluster workload (MapReduce/Spark shuffles) of the Coflow
// literature.
func coflowBatch() (*dag.Graph, *fabric.Network, map[string]core.Arrangement, []string) {
	const srcs, coflows = 4, 6
	g := dag.New()
	net := fabric.NewNetwork()
	var hosts []string
	for i := 0; i < srcs; i++ {
		hosts = append(hosts, fmt.Sprintf("m%d", i))
		// Mapper egress (10) is the contended resource...
		if err := net.AddHost(hosts[i], 10, 10); err != nil {
			panic(err)
		}
	}
	for k := 0; k < coflows; k++ {
		// ...while reducers have headroom (40), so inter-coflow ordering
		// on the shared mappers decides completion times.
		if err := net.AddHost(fmt.Sprintf("r%d", k), 40, 40); err != nil {
			panic(err)
		}
	}

	arrs := map[string]core.Arrangement{}
	var groups []string
	for k := 0; k < coflows; k++ {
		gid := fmt.Sprintf("shuffle%d", k)
		groups = append(groups, gid)
		arrs[gid] = core.Coflow{}
		for i := 0; i < srcs; i++ {
			// Sizes grow with k: coflow 0 is small (SEBF should favor it),
			// coflow 5 is 6x larger; per-mapper skew varies with i.
			size := unit.Bytes(float64(k+1) * (2 + float64(i%3)))
			g.MustAdd(&dag.Node{
				ID: fmt.Sprintf("%s/m%d", gid, i), Kind: dag.Comm,
				Src: hosts[i], Dst: fmt.Sprintf("r%d", k), Size: size, Group: gid,
			})
		}
	}
	return g, net, arrs, groups
}

// ExtCoflowBatch (E8) exercises the Property-2 compatibility claim in
// practice: on a batch of classic shuffle Coflows, EchelonFlow scheduling
// must match Coflow scheduling's average CCT (it degenerates to SEBF+MADD)
// and beat group-oblivious fair sharing — "EchelonFlow [is] compatible with
// traditional cluster applications covered by Coflow" (§3.3).
func ExtCoflowBatch() (*Report, error) {
	r := &Report{ID: "e8", Title: "Traditional Coflow batch (Property 2 in practice)"}
	schedulers := []sched.Scheduler{
		sched.EchelonMADD{Backfill: true},
		sched.CoflowMADD{Backfill: true},
		sched.Fair{},
		sched.SRPT{},
	}
	r.Table = metrics.NewTable("scheduler", "avg CCT", "p95 CCT", "makespan")
	avg := map[string]float64{}
	for _, s := range schedulers {
		g, net, arrs, groups := coflowBatch()
		simr, err := sim.New(sim.Options{Graph: g, Net: net, Scheduler: s, Arrangements: arrs})
		if err != nil {
			return nil, err
		}
		res, err := simr.Run()
		if err != nil {
			return nil, err
		}
		var ccts []float64
		for _, gid := range groups {
			gr := res.Groups[gid]
			ccts = append(ccts, float64(gr.CompletionTime-gr.Reference))
		}
		sort.Float64s(ccts)
		a := metrics.Summarize(ccts).Mean
		avg[s.Name()] = a
		r.Table.AddRowf(s.Name(), a, metrics.Percentile(ccts, 95), float64(res.Makespan))
	}
	r.check("echelon matches coflow scheduling on pure Coflows",
		relClose(avg["echelon-madd+bf"], avg["coflow-madd+bf"], 0.02),
		"avg CCT %.4g vs %.4g", avg["echelon-madd+bf"], avg["coflow-madd+bf"])
	r.check("echelon beats fair sharing on average CCT",
		avg["echelon-madd+bf"] < avg["fair"],
		"avg CCT %.4g vs fair %.4g", avg["echelon-madd+bf"], avg["fair"])
	r.note("6 shuffle coflows (4 mappers each, 6x size spread) contending on mapper egress; SEBF-ordered")
	r.note("MADD — which EchelonMADD degenerates to on Coflow arrangements — favours small coflows.")
	return r, nil
}
