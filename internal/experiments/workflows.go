package experiments

import (
	"fmt"
	"strings"

	"echelonflow/internal/core"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/trace"
	"echelonflow/internal/unit"
)

// simulate runs a workload on uniform hosts.
func simulate(w *ddlt.Workload, capacity unit.Rate, s sched.Scheduler) (*sim.Result, error) {
	net := fabric.NewNetwork()
	net.AddUniformHosts(capacity, w.Hosts...)
	simr, err := sim.New(sim.Options{Graph: w.Graph, Net: net, Scheduler: s, Arrangements: w.Arrangements})
	if err != nil {
		return nil, err
	}
	return simr.Run()
}

// Fig1 reproduces the GPipe computation timeline of the paper's Fig. 1a:
// forward micro-batches pipeline down the stages, backwards run in reverse
// order, and the early stages idle (grey areas) while gradients trickle
// back. It also verifies the Fig. 1b dependency structure.
func Fig1() (*Report, error) {
	r := &Report{ID: "fig1", Title: "GPipe timeline (paper Fig. 1)"}
	job := ddlt.PipelineGPipe{
		Name: "pp", Model: ddlt.Uniform("m", 4, 2, 0.01, 1, 1),
		Workers: []string{"s0", "s1", "s2", "s3"}, MicroBatches: 4, Iterations: 1,
	}
	w, err := job.Build()
	if err != nil {
		return nil, err
	}
	res, err := simulate(w, 1000, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return nil, err
	}
	r.note("Computation timeline (cf. paper Fig. 1a; digits are micro-batch computes, dots are idle):\n%s",
		trace.Gantt(res, w.Graph, 72))

	// Forward pipelining: F(s, m) starts one stage-time after F(s-1, m).
	near := func(a, b unit.Time) bool { d := a - b; return d < 0.05 && d > -0.05 }
	ok := true
	for s := 1; s < 4; s++ {
		for m := 0; m < 4; m++ {
			a := res.Tasks[fmt.Sprintf("pp/it0/fw/s%dm%d", s-1, m)]
			b := res.Tasks[fmt.Sprintf("pp/it0/fw/s%dm%d", s, m)]
			if b.Start < a.End-unit.Time(unit.Eps) {
				ok = false
			}
		}
	}
	r.check("forward compute respects activation dependencies", ok, "F(s,m) never precedes F(s-1,m)")

	last := res.Tasks["pp/it0/fw/s3m3"]
	r.check("pipeline fill time", near(last.End, 7), "last forward ends at %v, ideal (S-1)+M = 7", last.End)

	// Grey areas: stage 0 idles between its last forward and first backward.
	tls := trace.Timelines(res, w.Graph)
	var s0 trace.HostTimeline
	for _, tl := range tls {
		if tl.Host == "s0" {
			s0 = tl
		}
	}
	idle := s0.Idle()
	r.check("stage-0 idles awaiting gradients (grey areas)", idle > 3,
		"stage-0 idle time %v (backward waits for the reverse pipeline)", idle)

	// Backward runs micro-batches in reverse order (4 3 2 1 in the figure).
	b3 := res.Tasks["pp/it0/bw/s3m3"]
	b0 := res.Tasks["pp/it0/bw/s3m0"]
	r.check("backward order reversed", b3.Start < b0.Start,
		"B(s3,m3) at %v before B(s3,m0) at %v", b3.Start, b0.Start)
	return r, nil
}

// Fig3 reproduces the FSDP workflow of the paper's Fig. 3: per-layer
// all-gathers before forward and backward computes, reduce-scatters after
// each backward layer, bucket order, and the iteration barrier.
func Fig3() (*Report, error) {
	r := &Report{ID: "fig3", Title: "FSDP workflow (paper Fig. 3)"}
	job := ddlt.FSDP{
		Name: "fsdp", Model: ddlt.Uniform("m", 3, 6, 1, 1, 1.5),
		Workers: []string{"w0", "w1", "w2"}, Iterations: 2,
	}
	w, err := job.Build()
	if err != nil {
		return nil, err
	}
	res, err := simulate(w, 6, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return nil, err
	}
	r.note("Worker timeline (forward AG_l -> F_l ... backward AG'_l -> B_l -> RS_l):\n%s",
		trace.Gantt(res, w.Graph, 72))

	// AG_l completes before F_l starts, for every layer and worker.
	agOK := true
	for l := 0; l < 3; l++ {
		lastAG := unit.Time(0)
		for _, n := range w.Graph.Nodes() {
			if strings.HasPrefix(n.ID, fmt.Sprintf("fsdp/it0/ag/l%d/", l)) {
				if f := res.Flows[n.ID].Finish; f > lastAG {
					lastAG = f
				}
			}
		}
		for i := 0; i < 3; i++ {
			if res.Tasks[fmt.Sprintf("fsdp/it0/fw/l%dw%d", l, i)].Start < lastAG-unit.Time(unit.Eps) {
				agOK = false
			}
		}
	}
	r.check("forward waits for its layer's all-gather", agOK, "F_l starts after AG_l for l=0..2")

	// RS_l starts after B_l.
	rsOK := true
	for l := 0; l < 3; l++ {
		for i := 0; i < 3; i++ {
			bEnd := res.Tasks[fmt.Sprintf("fsdp/it0/bw/l%dw%d", l, i)].End
			rel := res.Flows[fmt.Sprintf("fsdp/it0/rs/l%d/rs/s0w%d", l, i)].Release
			if rel < bEnd-unit.Time(unit.Eps) {
				rsOK = false
			}
		}
	}
	r.check("reduce-scatter follows backward (gradient bucketing)", rsOK, "RS_l released after B_l")

	// Iteration barrier: iteration-1 all-gathers wait for all iteration-0
	// reduce-scatters.
	var lastRS unit.Time
	for id, rec := range res.Flows {
		if strings.HasPrefix(id, "fsdp/it0/rs/") && rec.Finish > lastRS {
			lastRS = rec.Finish
		}
	}
	firstIt1 := unit.Inf
	for id, rec := range res.Flows {
		if strings.HasPrefix(id, "fsdp/it1/ag/l0/") && rec.Release < firstIt1 {
			firstIt1 = rec.Release
		}
	}
	r.check("iteration barrier holds", firstIt1 >= lastRS-unit.Time(unit.Eps),
		"it1 AG released at %v, last it0 RS finished at %v", firstIt1, lastRS)

	// The AG EchelonFlow's ideal finish times follow Eq. 7.
	arr := w.Arrangements["fsdp/it0/ag"]
	eq7, _ := core.NewFSDP(3, 1, 1.5)
	match := true
	for s := 0; s < 6; s++ {
		if !arr.Deadline(s, 0).ApproxEq(eq7.Deadline(s, 0)) {
			match = false
		}
	}
	r.check("AG arrangement equals Eq. 7", match, "staged gaps match NewFSDP(3, 1, 1.5)")
	return r, nil
}

// Fig4 reproduces the DP workflow of the paper's Fig. 4: forward, bucketed
// backward, gradient synchronization per bucket (AllReduce and PS
// variants), and the iteration barrier.
func Fig4() (*Report, error) {
	r := &Report{ID: "fig4", Title: "Data-parallel workflow (paper Fig. 4)"}
	r.Table = metrics.NewTable("variant", "iter time", "sync flows", "groups")

	// AllReduce variant.
	ar, err := ddlt.DPAllReduce{
		Name: "dp", Model: ddlt.Uniform("m", 4, 8, 1, 0.5, 0.5),
		Workers: []string{"w0", "w1", "w2", "w3"}, BucketCount: 2, Iterations: 2,
	}.Build()
	if err != nil {
		return nil, err
	}
	arRes, err := simulate(ar, 4, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return nil, err
	}
	r.Table.AddRowf("DP-AllReduce", float64(arRes.Makespan/2), len(arRes.Flows), len(ar.Arrangements))
	r.note("AllReduce-variant timeline:\n%s", trace.Gantt(arRes, ar.Graph, 72))

	// Bucket 0 (deepest layers) synchronizes before bucket 1 finishes its
	// backward — the overlap gradient bucketing exists for.
	b0Rel := unit.Inf
	for id, rec := range arRes.Flows {
		if strings.HasPrefix(id, "dp/it0/ar0/") && rec.Release < b0Rel {
			b0Rel = rec.Release
		}
	}
	bw1End := unit.Time(0)
	for i := 0; i < 4; i++ {
		if e := arRes.Tasks[fmt.Sprintf("dp/it0/bw1w%d", i)].End; e > bw1End {
			bw1End = e
		}
	}
	r.check("bucket-0 sync overlaps bucket-1 backward", b0Rel < bw1End,
		"ar0 starts %v, bw1 ends %v", b0Rel, bw1End)

	// Barrier: iteration 1 forward waits for every iteration-0 sync flow.
	var lastSync unit.Time
	for id, rec := range arRes.Flows {
		if strings.HasPrefix(id, "dp/it0/") && rec.Finish > lastSync {
			lastSync = rec.Finish
		}
	}
	fw1 := arRes.Tasks["dp/it1/fw0"].Start
	r.check("all-reduce barrier before next iteration", fw1 >= lastSync-unit.Time(unit.Eps),
		"it1 forward at %v, last it0 sync at %v", fw1, lastSync)

	// PS variant.
	ps, err := ddlt.DPParameterServer{
		Name: "ps", Model: ddlt.Uniform("m", 4, 8, 1, 0.5, 0.5),
		Workers: []string{"w0", "w1", "w2", "w3"}, PS: "ps0",
		BucketCount: 2, AggTime: 0.1, Iterations: 2,
	}.Build()
	if err != nil {
		return nil, err
	}
	psRes, err := simulate(ps, 8, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return nil, err
	}
	r.Table.AddRowf("DP-PS", float64(psRes.Makespan/2), len(psRes.Flows), len(ps.Arrangements))

	// Push flows all target the PS; pull flows all leave it (Fig. 4b).
	dirOK := true
	for _, n := range ps.Graph.Nodes() {
		if strings.Contains(n.ID, "/push/") && n.Dst != "ps0" {
			dirOK = false
		}
		if strings.Contains(n.ID, "/pull/") && n.Src != "ps0" {
			dirOK = false
		}
	}
	r.check("PS push/pull directions", dirOK, "pushes into ps0, pulls out of ps0")

	// Pulls wait for aggregation of their bucket's pushes.
	aggEnd := psRes.Tasks["ps/it0/agg0"].End
	pullRel := psRes.Flows["ps/it0/b0/pull/w0"].Release
	r.check("pull waits for PS aggregation", pullRel >= aggEnd-unit.Time(unit.Eps),
		"pull released %v, agg ended %v", pullRel, aggEnd)
	return r, nil
}

// Fig5 reproduces the TP workflow of the paper's Fig. 5: per-layer forward
// all-reduce and backward all-reduce, each a barrier for the next layer.
func Fig5() (*Report, error) {
	r := &Report{ID: "fig5", Title: "Tensor-parallel workflow (paper Fig. 5)"}
	job := ddlt.TensorParallel{
		Name: "tp", Model: ddlt.Uniform("m", 3, 2, 12, 0.5, 0.5),
		Workers: []string{"w0", "w1", "w2", "w3"}, Iterations: 1,
	}
	w, err := job.Build()
	if err != nil {
		return nil, err
	}
	res, err := simulate(w, 8, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return nil, err
	}
	r.note("Per-worker timeline (F_l / all-reduce / B_l):\n%s", trace.Gantt(res, w.Graph, 72))

	// Layer barrier: F(l+1) starts only after layer l's activation
	// all-reduce fully finishes, on every worker.
	barrier := true
	for l := 0; l < 2; l++ {
		var asEnd unit.Time
		for id, rec := range res.Flows {
			if strings.HasPrefix(id, fmt.Sprintf("tp/it0/as%d/", l)) && rec.Finish > asEnd {
				asEnd = rec.Finish
			}
		}
		for i := 0; i < 4; i++ {
			if res.Tasks[fmt.Sprintf("tp/it0/fw/l%dw%d", l+1, i)].Start < asEnd-unit.Time(unit.Eps) {
				barrier = false
			}
		}
	}
	r.check("all-reduce barriers the next layer", barrier, "F(l+1) after AS(l) for l=0,1")

	// Backward mirrors forward in reverse layer order.
	bw2 := res.Tasks["tp/it0/bw/l2w0"].Start
	bw0 := res.Tasks["tp/it0/bw/l0w0"].Start
	r.check("backward reverses layer order", bw2 < bw0, "B(l2) at %v before B(l0) at %v", bw2, bw0)

	// Every group is a Coflow (Table 1 row).
	r.check("TP groups are Coflows", workloadCompliant(w), "all all-reduce groups use Eq. 5")
	return r, nil
}
