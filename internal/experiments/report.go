// Package experiments regenerates every table and figure of the paper
// (DESIGN.md's experiment index) plus the extended evaluation a full paper
// would carry. Each experiment returns a Report: a data table, prose notes
// (including rendered timelines), and machine-checked claims about the
// expected shape of the results — who wins, what is staggered, what
// barriers hold.
package experiments

import (
	"fmt"
	"strings"

	"echelonflow/internal/metrics"
)

// Check is one machine-verified claim about an experiment's outcome.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is an experiment's rendered result.
type Report struct {
	ID     string
	Title  string
	Table  *metrics.Table
	Notes  []string
	Checks []Check
}

// check appends a claim.
func (r *Report) check(name string, pass bool, format string, args ...interface{}) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// note appends prose.
func (r *Report) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Failed returns the failing checks.
func (r *Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// String renders the full report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil && r.Table.Len() > 0 {
		sb.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		sb.WriteString(n)
		if !strings.HasSuffix(n, "\n") {
			sb.WriteByte('\n')
		}
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "[%s] %s: %s\n", status, c.Name, c.Detail)
	}
	return sb.String()
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

// All lists every experiment in DESIGN.md index order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Paradigm compliance and EchelonFlow arrangements", Table1},
		{"fig1", "GPipe pipeline-parallel computation timeline", Fig1},
		{"fig2", "Motivating example: fair vs Coflow vs EchelonFlow", Fig2},
		{"fig3", "FSDP one-iteration workflow", Fig3},
		{"fig4", "Data-parallel workflow (AllReduce and PS)", Fig4},
		{"fig5", "Tensor-parallel workflow", Fig5},
		{"fig6", "Arrangement function and delay offsetting", Fig6},
		{"fig7", "Coordinator/Agent system over live TCP", Fig7},
		{"cases", "Case-study arrangement functions (Eqs. 5-7)", CaseStudies},
		{"prop1", "Property 1: EchelonFlow minimizes paradigm completion", Property1},
		{"prop2", "Property 2: Coflow is a special EchelonFlow", Property2},
		{"prop4", "Property 4: scheduler cost scaling", Property4},
		{"e1", "Extended: multi-job sum of tardiness", ExtMultiJob},
		{"e2", "Extended: bandwidth sweep and crossover", ExtBandwidthSweep},
		{"e3", "Extended: arrangement recovery after delay", ExtDelayRecovery},
		{"e4", "Extended: weighted tardiness", ExtWeightedTardiness},
		{"e5", "Extended: mixed paradigms on a shared, fragmented cluster", ExtMixedParadigms},
		{"e6", "Extended: coordinator decision latency", ExtCoordinatorLatency},
		{"e7", "Extended: 1F1B pipeline variant, profiled arrangement", Ext1F1B},
		{"e8", "Extended: traditional Coflow batch (Property 2 in practice)", ExtCoflowBatch},
		{"e9", "Extended: rescheduling cadence ablation", ExtCadence},
		{"e10", "Extended: failure injection (link degradation)", ExtDegradedLink},
		{"e11", "Extended: two-tier fabric, rack oversubscription", ExtRackOversubscription},
		{"e12", "Extended: chaos replay of a canned fault schedule", ExtChaos},
		{"e13", "Extended: coordinator crash recovery from the journal", ExtCrashRecovery},
		{"e14", "Extended: differential check harness (oracles, shrinking)", ExtCheckHarness},
		{"e15", "Extended: online arrivals, placement policy sensitivity", ExtOnlinePlacement},
		{"e16", "Extended: leaf-spine fabric, core-oversubscription placement sensitivity", ExtLeafSpinePlacement},
	}
}
