package experiments

import (
	"fmt"

	"echelonflow/internal/dag"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/metrics"
	"echelonflow/internal/queue"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// e15Fabric is the placement arena: 2 racks × 3 hosts with 3:1
// oversubscribed uplinks, small enough that the three policies are forced
// into visibly different bindings.
func e15Fabric() (*fabric.Network, error) {
	net := fabric.NewNetwork()
	for r := 0; r < 2; r++ {
		rack := fmt.Sprintf("rack%d", r)
		upl := unit.Rate(3 * 6 / 3.0)
		if err := net.AddRack(rack, upl, upl); err != nil {
			return nil, err
		}
		for h := 0; h < 3; h++ {
			name := fmt.Sprintf("r%dh%d", r, h)
			if err := net.AddHost(name, 6, 6); err != nil {
				return nil, err
			}
			if err := net.AssignRack(name, rack); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// e15Trace is the arrival-timed submission trace: alternating 2- and
// 3-worker data/tensor-parallel jobs whose all-to-all traffic punishes
// rack-oblivious bindings.
func e15Trace() []struct {
	spec    wire.JobSpec
	arrival unit.Time
} {
	var trace []struct {
		spec    wire.JobSpec
		arrival unit.Time
	}
	for i := 0; i < 6; i++ {
		spec := wire.JobSpec{
			ID: fmt.Sprintf("job%d", i), Paradigm: "dp", Workers: 2 + i%2,
			Layers: 3, Params: 4, Acts: 1, Fwd: 0.2, Bwd: 0.2,
			Buckets: 1, Iterations: 2,
		}
		if i%3 == 2 {
			spec.Paradigm = "tp"
		}
		trace = append(trace, struct {
			spec    wire.JobSpec
			arrival unit.Time
		}{spec, unit.Time(i) * 0.4})
	}
	return trace
}

// e15Place runs the trace through the queue under one placement policy (all
// jobs stay admitted, so later bindings see the accumulated occupancy) and
// returns each job's hosts in admission order.
func e15Place(p queue.Placer, net *fabric.Network) (map[string][]string, error) {
	q := queue.New(queue.Options{Placer: p})
	placements := make(map[string][]string)
	for _, tj := range e15Trace() {
		if _, err := q.Submit("e15", tj.spec, tj.arrival); err != nil {
			return nil, err
		}
		v := queue.NewView(net)
		for _, a := range q.AdmittedList() {
			for _, h := range a.Hosts {
				v.Workers[h]++
			}
		}
		a, err := q.Next(v, tj.arrival)
		if err != nil || a == nil {
			return nil, fmt.Errorf("job %s not admitted: %v", tj.spec.ID, err)
		}
		placements[a.Job.Spec.ID] = a.Hosts
	}
	return placements, nil
}

// e15Workload compiles the trace at the given placements, shifting every
// node by its job's arrival — the same arrival-timed lowering the check
// harness uses.
func e15Workload(placements map[string][]string) (*ddlt.Workload, error) {
	var parts []*ddlt.Workload
	for _, tj := range e15Trace() {
		w, err := queue.Build(tj.spec, placements[tj.spec.ID])
		if err != nil {
			return nil, err
		}
		for _, n := range w.Graph.Nodes() {
			n.NotBefore += tj.arrival
		}
		parts = append(parts, w)
	}
	return ddlt.Merge(parts...)
}

// ExtOnlinePlacement (E15) closes the loop on the online job pipeline: the
// same arrival trace is admitted under each placement policy, executed on
// the two-rack fabric, and compared on cross-rack traffic and Eq. 4 sum of
// tardiness. Placement is the only variable — the scheduler, trace and
// fabric are fixed — so any spread in the results is the policy's doing.
func ExtOnlinePlacement() (*Report, error) {
	r := &Report{ID: "e15", Title: "Online arrivals: placement policy sensitivity"}
	r.Table = metrics.NewTable("policy", "cross-rack flows", "sum tardiness", "makespan")

	type outcome struct {
		cross    int
		tard     unit.Time
		makespan unit.Time
		hosts    string
	}
	results := make(map[string]outcome)
	for _, p := range []queue.Placer{queue.Pack{}, queue.Spread{}, queue.NetAware{}} {
		net, err := e15Fabric()
		if err != nil {
			return nil, err
		}
		placements, err := e15Place(p, net)
		if err != nil {
			return nil, err
		}
		merged, err := e15Workload(placements)
		if err != nil {
			return nil, err
		}
		cross := 0
		for _, n := range merged.Graph.Nodes() {
			if n.Kind != dag.Comm {
				continue
			}
			if _, _, crosses := net.CrossRack(n.Src, n.Dst); crosses {
				cross++
			}
		}
		simr, err := sim.New(sim.Options{
			Graph: merged.Graph, Net: net,
			Scheduler:    sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()},
			Arrangements: merged.Arrangements,
		})
		if err != nil {
			return nil, err
		}
		out, err := simr.Run()
		if err != nil {
			return nil, err
		}
		sig := ""
		for _, tj := range e15Trace() {
			sig += fmt.Sprintf("%s=%v ", tj.spec.ID, placements[tj.spec.ID])
		}
		results[p.Name()] = outcome{cross: cross, tard: out.TotalTardiness(), makespan: out.Makespan, hosts: sig}
		r.Table.AddRowf(p.Name(), cross, float64(out.TotalTardiness()), float64(out.Makespan))
	}

	pack, spread, netaware := results["pack"], results["spread"], results["netaware"]
	r.check("policies bind the trace differently",
		pack.hosts != spread.hosts && spread.hosts != netaware.hosts,
		"pack=%s spread=%s netaware=%s", pack.hosts, spread.hosts, netaware.hosts)
	r.check("netaware crosses racks no more than spread",
		netaware.cross <= spread.cross, "%d vs %d cross-rack flows", netaware.cross, spread.cross)
	minT, maxT := pack.tard, pack.tard
	for _, o := range []outcome{spread, netaware} {
		if o.tard < minT {
			minT = o.tard
		}
		if o.tard > maxT {
			maxT = o.tard
		}
	}
	r.check("placement measurably moves sum tardiness",
		float64(maxT) > float64(minT)*1.05+unit.Eps,
		"range [%v, %v] across policies", minT, maxT)
	r.check("rack-affine placement beats pack's pile-up",
		float64(netaware.tard) < float64(pack.tard)+unit.Eps,
		"netaware %v vs pack %v", netaware.tard, pack.tard)
	r.note("Fabric: 2 racks x 3 hosts (NIC 6), uplink 6/direction (3:1 oversubscribed).")
	r.note("Trace: 6 dp/tp jobs, 2-3 workers, one arrival every 0.4s; every job stays")
	r.note("admitted, so later placements see the accumulated occupancy. Live-path")
	r.note("equivalents: echelon-coordinator -queue -placement <policy>, with per-policy")
	r.note("tardiness histograms in echelon_job_tardiness_seconds{policy=...}.")
	return r, nil
}
