package check

import (
	"fmt"
	"sort"
	"strings"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// Config selects what a Run checks.
type Config struct {
	// Oracles names the oracles to evaluate; nil means AllOracles().
	Oracles []string
	// Scheduler, when set, overrides the canonical scheduler (a cached
	// backfilled EchelonMADD) for the base simulation. Differential oracles
	// are skipped under an override: they are statements about the
	// canonical scheduler's implementations agreeing with each other.
	Scheduler func() sched.Scheduler
	// WireCodec, when set to "json" or "binary", makes the live-coordinator
	// oracles (live, journal, degrade) encode and decode every replayed flow
	// event through that wire framing before applying it, so the oracles also
	// prove the codec under test is observationally transparent. "" (or
	// "direct") applies event structs without a codec round trip.
	WireCodec string
	// Fabric, when set, builds each run's fabric from the scenario's host
	// specs instead of the default big-switch Network — the backend-matrix
	// hook (leaf-spine, external timing). Every simulation and oracle replay
	// inside one Run shares the builder, so differential oracles compare
	// like against like. The builder must attach exactly the scenario's
	// hosts with the given NIC capacities.
	Fabric func(hosts []HostSpec) fabric.Fabric
}

// Outcome is the result of checking one scenario.
type Outcome struct {
	Seed        uint64
	Hosts       int
	Computes    int
	Flows       int
	Groups      int
	FaultEvents int
	Makespan    unit.Time
	Violations  []Violation
}

// Failed reports whether any oracle fired.
func (o *Outcome) Failed() bool { return len(o.Violations) > 0 }

// ParseOracles resolves a comma-separated oracle list ("all" or names from
// AllOracles()).
func ParseOracles(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllOracles(), nil
	}
	known := make(map[string]bool)
	for _, o := range AllOracles() {
		known[o] = true
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if !known[name] {
			return nil, fmt.Errorf("check: unknown oracle %q (known: %s)", name, strings.Join(AllOracles(), ","))
		}
		out = append(out, name)
	}
	return out, nil
}

// canonicalScheduler is the implementation under differential test: the
// paper's scheduler with every PR 1 optimisation enabled.
func canonicalScheduler() sched.Scheduler {
	return sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}
}

// runSim executes one simulation of the compiled scenario under s.
func runSim(c *compiled, s sched.Scheduler) (*sim.Result, error) {
	opts, _ := c.simOptions(s)
	simr, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	return simr.Run()
}

// RunSeed generates the scenario for seed and checks it.
func RunSeed(seed uint64, cfg Config) *Outcome {
	return Run(Generate(seed), cfg)
}

// Run compiles the scenario, simulates it, and evaluates the selected
// oracles. Setup or simulation errors surface as violations of the
// synthetic "run" oracle so the shrinker can minimize them too.
func Run(sc *Scenario, cfg Config) *Outcome {
	out := &Outcome{Seed: sc.Seed, Hosts: len(sc.Hosts)}
	oracles := cfg.Oracles
	if len(oracles) == 0 {
		oracles = AllOracles()
	}
	want := make(map[string]bool, len(oracles))
	for _, o := range oracles {
		want[o] = true
	}

	c, err := sc.compile()
	if err != nil {
		out.Violations = append(out.Violations, vf(OracleRun, "compile: %v", err))
		return out
	}
	if cfg.Fabric != nil {
		c.fabricFn = cfg.Fabric
	}
	switch cfg.WireCodec {
	case "", "direct", "json", "binary":
		if cfg.WireCodec != "direct" {
			c.wire = cfg.WireCodec
		}
	default:
		out.Violations = append(out.Violations, vf(OracleRun, "unknown wire codec %q (direct, json or binary)", cfg.WireCodec))
		return out
	}
	for _, n := range c.graph.Nodes() {
		if n.Kind == dag.Compute {
			out.Computes++
		} else {
			out.Flows++
		}
	}
	out.Groups = len(c.groupIDs())
	if !sc.Faults.Empty() {
		out.FaultEvents = len(sc.Faults.Events)
	}

	custom := cfg.Scheduler != nil
	var s sched.Scheduler
	if custom {
		s = cfg.Scheduler()
	} else {
		s = canonicalScheduler()
	}
	res, err := runSim(c, s)
	if err != nil {
		out.Violations = append(out.Violations, vf(OracleRun, "sim: %v", err))
		return out
	}
	out.Makespan = res.Makespan

	for _, o := range ResultOracles() {
		if !want[o] {
			continue
		}
		switch o {
		case OracleFeasible:
			out.Violations = append(out.Violations, oracleFeasible(c, res)...)
		case OracleConserve:
			out.Violations = append(out.Violations, oracleConserve(c, res)...)
		case OracleOrdering:
			out.Violations = append(out.Violations, oracleOrdering(c, res)...)
		case OracleTardiness:
			out.Violations = append(out.Violations, oracleTardiness(c, res)...)
		case OracleWorkCons:
			out.Violations = append(out.Violations, oracleWorkCons(c, res, s)...)
		case OracleQueue:
			out.Violations = append(out.Violations, oracleQueue(c)...)
		}
	}
	if custom {
		return out
	}
	for _, o := range DiffOracles() {
		if !want[o] {
			continue
		}
		switch o {
		case OracleCache:
			out.Violations = append(out.Violations, diffCache(c)...)
		case OracleRank:
			out.Violations = append(out.Violations, diffRank(c)...)
		case OracleLive:
			out.Violations = append(out.Violations, diffLive(c, res)...)
		case OracleJournal:
			out.Violations = append(out.Violations, diffJournal(c, res)...)
		case OracleDelta:
			out.Violations = append(out.Violations, diffDelta(c, res)...)
		case OracleDegrade:
			out.Violations = append(out.Violations, diffDegrade(c, res)...)
		}
	}
	return out
}

// sortedGroupIDs returns the result's group names in sorted order.
func sortedGroupIDs(res *sim.Result) []string {
	out := make([]string, 0, len(res.Groups))
	for g := range res.Groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
