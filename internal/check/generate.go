package check

import (
	"fmt"
	"math/rand"

	"echelonflow/internal/faults"
	"echelonflow/internal/unit"
)

// Generate draws a scenario from a single seed. The same seed always
// yields the same scenario (math/rand with a fixed source), so a failing
// seed alone reproduces a run. Scenarios are deliberately small — a few
// hosts, one or two jobs, a handful of ad-hoc flows — because the harness
// runs hundreds of them and the shrinker prefers starting close to
// minimal.
func Generate(seed uint64) *Scenario {
	rng := rand.New(rand.NewSource(int64(seed)))
	sc := &Scenario{Seed: seed}

	// Fabric: 3-6 hosts with uneven NIC capacities.
	nHosts := 3 + rng.Intn(4)
	names := make([]string, nHosts)
	minCap := unit.Rate(0)
	for i := 0; i < nHosts; i++ {
		names[i] = fmt.Sprintf("h%d", i)
		h := HostSpec{
			Name:    names[i],
			Egress:  unit.Rate(1 + 3*rng.Float64()),
			Ingress: unit.Rate(1 + 3*rng.Float64()),
		}
		if c := h.Egress; minCap == 0 || c < minCap {
			minCap = c
		}
		if c := h.Ingress; c < minCap {
			minCap = c
		}
		sc.Hosts = append(sc.Hosts, h)
	}

	// Workload: jobs, ad-hoc nodes, or both.
	mode := rng.Intn(3)
	if mode != 1 {
		nJobs := 1 + rng.Intn(2)
		for j := 0; j < nJobs; j++ {
			sc.Jobs = append(sc.Jobs, genJob(rng, fmt.Sprintf("j%d", j), names))
		}
	}
	if mode != 0 {
		genAdhoc(rng, sc, names)
	}

	// Faults: about half the scenarios degrade links or straggle hosts
	// mid-run. Generate only draws recoverable incident pairs, so every
	// port keeps a positive capacity.
	if rng.Intn(2) == 0 {
		fs, err := faults.Generate(faults.GenConfig{
			Seed:      int64(seed) + 1,
			Hosts:     names,
			Horizon:   unit.Time(8 + 12*rng.Float64()),
			Incidents: 1 + rng.Intn(3),
			Baseline:  minCap,
		})
		if err == nil && !fs.Empty() {
			sc.Faults = fs
		}
	}

	// Cadence: mostly pure event-driven, sometimes interval-augmented,
	// occasionally interval-only (the stale-rate regime of PR 1's bugfix).
	if rng.Intn(4) == 0 {
		sc.Interval = unit.Time(0.3 + rng.Float64())
		sc.IntervalOnly = rng.Intn(2) == 0
	}
	return sc
}

// genJob draws one DDLT job over a random subset of hosts.
func genJob(rng *rand.Rand, name string, hosts []string) JobSpec {
	paradigms := []string{"dp", "ps", "pp", "1f1b", "tp", "fsdp"}
	p := paradigms[rng.Intn(len(paradigms))]

	// A shuffled host prefix becomes the worker set; "ps" reserves one
	// extra host as the parameter server.
	perm := rng.Perm(len(hosts))
	maxWorkers := len(hosts)
	if p == "ps" {
		maxWorkers--
	}
	if maxWorkers > 3 {
		maxWorkers = 3
	}
	nw := 2
	if maxWorkers > 2 {
		nw += rng.Intn(maxWorkers - 1)
	}
	workers := make([]string, nw)
	for i := range workers {
		workers[i] = hosts[perm[i]]
	}

	j := JobSpec{
		Name:     name,
		Paradigm: p,
		Model: ModelSpec{
			Layers: 2 + rng.Intn(3),
			Params: unit.Bytes(0.5 + 2*rng.Float64()),
			Acts:   unit.Bytes(0.3 + rng.Float64()),
			Fwd:    unit.Time(0.1 + 0.4*rng.Float64()),
			Bwd:    unit.Time(0.15 + 0.5*rng.Float64()),
		},
		Workers:    workers,
		Iterations: 1 + rng.Intn(2),
	}
	switch p {
	case "ps":
		j.PS = hosts[perm[nw]]
		j.AggTime = unit.Time(0.05 + 0.2*rng.Float64())
		j.Buckets = rng.Intn(3)
	case "dp":
		j.Buckets = rng.Intn(3)
	case "pp", "1f1b":
		j.Micro = 2 + rng.Intn(3)
		j.UpdateTime = unit.Time(0.05 + 0.2*rng.Float64())
		// Pipelines partition the model into one stage per worker, which
		// needs at least as many layers as workers.
		if j.Model.Layers < nw {
			j.Model.Layers = nw
		}
	case "fsdp":
		j.Prefetch = rng.Intn(3)
	}
	if rng.Intn(3) == 0 {
		j.Weight = 0.5 + 2*rng.Float64()
	}
	// About a third of jobs arrive mid-run instead of at time zero,
	// exercising the NotBefore shift and the queue-admission trace.
	if rng.Intn(3) == 0 {
		j.Arrival = unit.Time(2 * rng.Float64())
	}
	return j
}

// genAdhoc appends a random layered DAG of computes and grouped flows —
// the shape the old sim property tests drew, now a scenario fragment.
// Layered construction (edges only point to later layers) guarantees
// acyclicity; ungrouped flows exercise the singleton-Coflow path.
func genAdhoc(rng *rand.Rand, sc *Scenario, hosts []string) {
	groupCount := 1 + rng.Intn(2)
	for g := 0; g < groupCount; g++ {
		spec := GroupSpec{Name: fmt.Sprintf("x/g%d", g)}
		if rng.Intn(2) == 0 {
			spec.Arrangement.Kind = "coflow"
		} else {
			spec.Arrangement.Kind = "pipeline"
			spec.Arrangement.T = unit.Time(rng.Float64())
		}
		if rng.Intn(4) == 0 {
			spec.Weight = 0.5 + rng.Float64()
		}
		sc.Groups = append(sc.Groups, spec)
	}
	layers := 2 + rng.Intn(3)
	stagePer := make(map[string]int)
	var prev []string
	seq := 0
	for l := 0; l < layers; l++ {
		var cur []string
		for c := 0; c < 1+rng.Intn(2); c++ {
			n := NodeSpec{
				ID:       fmt.Sprintf("x/c%d-%d", l, c),
				Kind:     "compute",
				Host:     hosts[rng.Intn(len(hosts))],
				Duration: unit.Time(rng.Float64() * 1.5),
				Seq:      seq,
			}
			seq++
			n.Deps = genDeps(rng, prev)
			sc.Nodes = append(sc.Nodes, n)
			cur = append(cur, n.ID)
		}
		for f := 0; f < rng.Intn(3); f++ {
			src := rng.Intn(len(hosts))
			dst := (src + 1 + rng.Intn(len(hosts)-1)) % len(hosts)
			n := NodeSpec{
				ID:   fmt.Sprintf("x/f%d-%d", l, f),
				Kind: "comm",
				Src:  hosts[src], Dst: hosts[dst],
				Size: unit.Bytes(rng.Float64() * 4),
			}
			if rng.Intn(2) == 0 {
				n.Group = fmt.Sprintf("x/g%d", rng.Intn(groupCount))
				n.Stage = stagePer[n.Group]
				stagePer[n.Group]++
			}
			if rng.Intn(6) == 0 {
				n.NotBefore = unit.Time(rng.Float64() * 2)
			}
			n.Deps = genDeps(rng, prev)
			sc.Nodes = append(sc.Nodes, n)
			cur = append(cur, n.ID)
		}
		prev = cur
	}
}

// genDeps picks a random subset of the previous layer as dependencies.
func genDeps(rng *rand.Rand, prev []string) []string {
	var deps []string
	for _, p := range prev {
		if rng.Float64() < 0.4 {
			deps = append(deps, p)
		}
	}
	return deps
}
