package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// Shrink greedily minimizes a failing scenario while the same oracle keeps
// firing, and returns the smallest reproducer found. The reduction order
// is coarse to fine: drop whole jobs, drop fault events, cut iteration
// counts, inline jobs into explicit nodes (so individual flows become
// droppable), drop nodes, drop unused hosts, then halve flow sizes. Each
// candidate costs one full check run; budget caps the total.
func Shrink(sc *Scenario, cfg Config, budget int) *Scenario {
	base := Run(sc, cfg)
	if !base.Failed() {
		return sc
	}
	oracle := base.Violations[0].Oracle
	if budget <= 0 {
		budget = 400
	}
	runs := 0
	fails := func(cand *Scenario) bool {
		if runs >= budget {
			return false
		}
		runs++
		out := Run(cand, cfg)
		for _, v := range out.Violations {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}

	cur := sc.Clone()
	cur.Seed = 0 // reductions detach the scenario from its generator seed
	for {
		shrunk := false
		for _, cand := range candidates(cur) {
			if runs >= budget {
				return cur
			}
			if cand.Validate() != nil {
				continue
			}
			if fails(cand) {
				cur = cand
				shrunk = true
				break // restart from the coarsest reduction
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// candidates enumerates one-step reductions of sc, coarsest first.
func candidates(sc *Scenario) []*Scenario {
	var out []*Scenario
	for i := range sc.Jobs {
		c := sc.Clone()
		c.Jobs = append(c.Jobs[:i:i], c.Jobs[i+1:]...)
		out = append(out, c)
	}
	if sc.Faults != nil {
		for i := range sc.Faults.Events {
			c := sc.Clone()
			c.Faults.Events = append(c.Faults.Events[:i:i], c.Faults.Events[i+1:]...)
			if len(c.Faults.Events) == 0 {
				c.Faults = nil
			}
			out = append(out, c)
		}
	}
	for i, j := range sc.Jobs {
		if j.Iterations > 1 {
			c := sc.Clone()
			c.Jobs[i].Iterations = 1
			out = append(out, c)
		}
		if j.Micro > 2 {
			c := sc.Clone()
			c.Jobs[i].Micro = 2
			out = append(out, c)
		}
		if j.Model.Layers > 1 {
			c := sc.Clone()
			c.Jobs[i].Model.Layers = 1
			out = append(out, c)
		}
	}
	for i := range sc.Jobs {
		if c := inlineJob(sc, i); c != nil {
			out = append(out, c)
		}
	}
	for i := range sc.Nodes {
		out = append(out, dropNode(sc, i))
	}
	if c := dropUnusedHosts(sc); c != nil {
		out = append(out, c)
	}
	if c := halveSizes(sc); c != nil {
		out = append(out, c)
	}
	return out
}

// inlineJob lowers job i into explicit NodeSpecs/GroupSpecs, making its
// individual flows reachable by dropNode. Jobs whose arrangements are not
// serializable stay as jobs.
func inlineJob(sc *Scenario, i int) *Scenario {
	w, err := buildJob(sc.Jobs[i])
	if err != nil {
		return nil
	}
	c := sc.Clone()
	job := c.Jobs[i]
	c.Jobs = append(c.Jobs[:i:i], c.Jobs[i+1:]...)
	for name, arr := range w.Arrangements {
		spec, err := core.SpecOf(arr)
		if err != nil {
			return nil
		}
		c.Groups = append(c.Groups, GroupSpec{Name: name, Arrangement: spec, Weight: job.Weight})
	}
	// Keep GroupSpec order deterministic: Arrangements is a map.
	sortGroupSpecs(c.Groups)
	for _, n := range w.Graph.Nodes() {
		ns := NodeSpec{
			ID: n.ID, Host: n.Host, Duration: n.Duration,
			Src: n.Src, Dst: n.Dst, Size: n.Size,
			Group: n.Group, Stage: n.Stage, Seq: n.Seq, NotBefore: n.NotBefore,
			Deps: append([]string(nil), w.Graph.Deps(n.ID)...),
		}
		if n.Kind == dag.Compute {
			ns.Kind = "compute"
		} else {
			ns.Kind = "comm"
		}
		c.Nodes = append(c.Nodes, ns)
	}
	return c
}

func sortGroupSpecs(gs []GroupSpec) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].Name < gs[j-1].Name; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// dropNode removes node i and every dependency edge referencing it.
func dropNode(sc *Scenario, i int) *Scenario {
	c := sc.Clone()
	id := c.Nodes[i].ID
	c.Nodes = append(c.Nodes[:i:i], c.Nodes[i+1:]...)
	for j := range c.Nodes {
		var deps []string
		for _, d := range c.Nodes[j].Deps {
			if d != id {
				deps = append(deps, d)
			}
		}
		c.Nodes[j].Deps = deps
	}
	// Groups left without members are harmless (they never instantiate),
	// but prune empty group specs for smaller repros.
	used := make(map[string]bool)
	for _, n := range c.Nodes {
		if n.Group != "" {
			used[n.Group] = true
		}
	}
	var groups []GroupSpec
	for _, g := range c.Groups {
		if used[g.Name] {
			groups = append(groups, g)
		}
	}
	c.Groups = groups
	return c
}

// dropUnusedHosts removes hosts nothing references, or nil if all are used.
func dropUnusedHosts(sc *Scenario) *Scenario {
	used := make(map[string]bool)
	for _, j := range sc.Jobs {
		for _, w := range j.Workers {
			used[w] = true
		}
		if j.PS != "" {
			used[j.PS] = true
		}
	}
	for _, n := range sc.Nodes {
		for _, h := range []string{n.Host, n.Src, n.Dst} {
			if h != "" {
				used[h] = true
			}
		}
	}
	if sc.Faults != nil {
		for _, e := range sc.Faults.Events {
			if e.Host != "" {
				used[e.Host] = true
			}
		}
	}
	var hosts []HostSpec
	for _, h := range sc.Hosts {
		if used[h.Name] {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == len(sc.Hosts) || len(hosts) == 0 {
		return nil
	}
	c := sc.Clone()
	c.Hosts = hosts
	return c
}

// halveSizes halves every ad-hoc flow size and compute duration.
func halveSizes(sc *Scenario) *Scenario {
	if len(sc.Nodes) == 0 {
		return nil
	}
	c := sc.Clone()
	for i := range c.Nodes {
		c.Nodes[i].Size /= 2
		c.Nodes[i].Duration /= 2
	}
	return c
}

// Repro is the on-disk record of a shrunk failure.
type Repro struct {
	Seed     uint64    `json:"seed"`
	Oracle   string    `json:"oracle"`
	Detail   string    `json:"detail"`
	Scenario *Scenario `json:"scenario"`
}

// ParseRepro decodes either a bare scenario or the Repro envelope
// WriteRepro emits, returning the scenario in both cases.
func ParseRepro(data []byte) (*Scenario, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err == nil && r.Scenario != nil {
		if err := r.Scenario.Validate(); err != nil {
			return nil, err
		}
		return r.Scenario, nil
	}
	return Parse(data)
}

// WriteRepro persists a shrunk failing scenario under dir, named by the
// generator seed that first exposed it. It returns the written path.
func WriteRepro(dir string, seed uint64, sc *Scenario, v Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	r := Repro{Seed: seed, Oracle: v.Oracle, Detail: v.Detail, Scenario: sc}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.json", seed))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Overdrive wraps a scheduler and multiplies every allocated rate by
// Factor. A Factor above 1 oversubscribes the fabric — an intentionally
// broken scheduler used to prove the feasibility oracle and the shrinker
// catch real violations (see TestShrinkerFindsMinimalRepro and E14).
type Overdrive struct {
	Inner  sched.Scheduler
	Factor float64
	// FailAfter, when non-nil, is a countdown of remaining successful
	// Schedule calls: once it reaches zero every further call errors. With
	// Factor 1 this turns Overdrive into a deterministic failing-scheduler
	// fixture for error-propagation paths (e.g. a coordinator rejoin whose
	// reschedule fails).
	FailAfter *int
}

// Name identifies the broken scheduler in traces.
func (o Overdrive) Name() string { return fmt.Sprintf("overdrive(%s,%g)", o.Inner.Name(), o.Factor) }

// Schedule scales the inner allocation by Factor, deliberately breaking
// feasibility when Factor > 1, and fails outright once the FailAfter budget
// is exhausted.
func (o Overdrive) Schedule(snap *sched.Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if o.FailAfter != nil {
		if *o.FailAfter <= 0 {
			return nil, fmt.Errorf("overdrive: induced failure (budget exhausted)")
		}
		*o.FailAfter--
	}
	rates, err := o.Inner.Schedule(snap, net)
	if err != nil {
		return nil, err
	}
	for id, r := range rates {
		rates[id] = unit.Rate(float64(r) * o.Factor)
	}
	return rates, nil
}
