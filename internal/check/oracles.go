package check

import (
	"fmt"
	"math"
	"sort"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// Violation is one oracle failure. Details are deterministic (no
// timestamps, paths or map-ordered output) so repeated runs render
// byte-identically.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func vf(oracle, format string, args ...interface{}) Violation {
	return Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// Result-oracle names (per-run invariants on the simulator's output).
const (
	OracleFeasible  = "feasible"  // allocations respect NIC capacities; no negative/NaN rates
	OracleConserve  = "conserve"  // integrated rate equals flow size; every node completes
	OracleOrdering  = "ordering"  // release-before-finish, dependency and NotBefore order, host exclusivity
	OracleTardiness = "tardiness" // group tardiness aggregates flows; finishes beat the solo lower bound
	OracleWorkCons  = "workcons"  // work conservation: no active flow starves while both its ports idle
	OracleQueue     = "queue"     // queue admission over the job arrival trace: no early admits, FIFO fairness, budget, drain
)

// Differential-oracle names (two executions that must agree).
const (
	OracleCache   = "cache"   // EchelonMADD with PlanCache vs cold cache: identical run
	OracleRank    = "rank"    // parallel vs serial solo ranking: identical run
	OracleLive    = "live"    // sim vs live coordinator replay: same references/tardiness/allocations
	OracleJournal = "journal" // journal crash/Restore mid-run: bit-equal to uninterrupted run
	OracleDelta   = "delta"   // incremental Apply vs full Schedule: bit-equal replanned flows, held rates frozen, stale state refused
	OracleDegrade = "degrade" // injected scheduler stall: fallback stays feasible, accounting intact, bit-equal re-convergence after
)

// OracleRun is the pseudo-oracle a simulator error reports under, so
// setup/deadlock failures shrink like any other violation.
const OracleRun = "run"

// ResultOracles lists the per-run invariant oracles in evaluation order.
func ResultOracles() []string {
	return []string{OracleFeasible, OracleConserve, OracleOrdering, OracleTardiness, OracleWorkCons, OracleQueue}
}

// DiffOracles lists the differential oracles in evaluation order.
func DiffOracles() []string {
	return []string{OracleCache, OracleRank, OracleLive, OracleJournal, OracleDelta, OracleDegrade}
}

// AllOracles lists every oracle the harness knows.
func AllOracles() []string {
	return append(ResultOracles(), DiffOracles()...)
}

// capTimeline reconstructs each host's piecewise-constant NIC capacities
// from the scenario baseline and the compiled fault changes.
type capTimeline struct {
	base    map[string]HostSpec
	changes []sim.CapacityChange // sorted by At
}

func newCapTimeline(hosts []HostSpec, changes []sim.CapacityChange) *capTimeline {
	ct := &capTimeline{base: make(map[string]HostSpec, len(hosts))}
	for _, h := range hosts {
		ct.base[h.Name] = h
	}
	ct.changes = append(ct.changes, changes...)
	sort.SliceStable(ct.changes, func(i, j int) bool { return ct.changes[i].At < ct.changes[j].At })
	return ct
}

// at returns host's capacities at time t (changes at exactly t included,
// matching the simulator's apply-then-schedule order).
func (ct *capTimeline) at(host string, t unit.Time) (eg, in unit.Rate) {
	h := ct.base[host]
	eg, in = h.Egress, h.Ingress
	for _, c := range ct.changes {
		if c.At > t+unit.Time(unit.Eps) {
			break
		}
		if c.Host == host {
			eg, in = c.Egress, c.Ingress
		}
	}
	return eg, in
}

// bestPairRate is the largest min(src egress, dst ingress) available at any
// moment of the timeline — an upper bound on a flow's instantaneous rate,
// hence Size/bestPairRate lower-bounds its solo transfer time.
func (ct *capTimeline) bestPairRate(src, dst string) unit.Rate {
	breaks := []unit.Time{0}
	for _, c := range ct.changes {
		breaks = append(breaks, c.At)
	}
	var best unit.Rate
	for _, t := range breaks {
		eg, _ := ct.at(src, t)
		_, in := ct.at(dst, t)
		r := eg
		if in < r {
			r = in
		}
		if r > best {
			best = r
		}
	}
	return best
}

// span is one constant-rate window of the recorded timeline.
type span struct{ from, to unit.Time }

// spansOf collects the distinct rate-segment windows in time order.
func spansOf(res *sim.Result) []span {
	seen := make(map[span]bool)
	var out []span
	for _, seg := range res.Rates {
		s := span{seg.From, seg.To}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	return out
}

// oracleFeasible checks every recorded allocation against the fabric:
// rates are finite and non-negative, and per-span host ingress/egress sums
// stay within the capacities in force during the span.
func oracleFeasible(c *compiled, res *sim.Result) []Violation {
	var out []Violation
	ct := newCapTimeline(c.sc.Hosts, c.caps)
	node := func(id string) *dag.Node { return c.graph.Node(id) }
	net := c.newNet()

	// Accumulate usage per fabric link (NICs plus whatever interior links
	// the backend defines) per rate span, via the backend's own path
	// enumeration — the per-link generalization of the old per-port check.
	type key struct {
		link fabric.LinkKey
		s    span
	}
	use := make(map[key]float64)
	var lbuf []fabric.LinkKey
	for _, seg := range res.Rates {
		r := float64(seg.Rate)
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			out = append(out, vf(OracleFeasible, "flow %s has invalid rate %v in [%v,%v)", seg.FlowID, seg.Rate, seg.From, seg.To))
			continue
		}
		n := node(seg.FlowID)
		if n == nil {
			out = append(out, vf(OracleFeasible, "rate segment for unknown flow %s", seg.FlowID))
			continue
		}
		s := span{seg.From, seg.To}
		lbuf = net.FlowLinks(n.Src, n.Dst, lbuf[:0])
		for _, k := range lbuf {
			use[key{k, s}] += r
		}
	}
	links := net.Links()
	for _, s := range spansOf(res) {
		for _, l := range links {
			u := use[key{l.Key, s}]
			switch l.Key.Kind {
			case fabric.LinkEgress:
				eg, _ := ct.at(l.Key.Name, s.from)
				if u > float64(eg)*(1+1e-6)+unit.Eps {
					out = append(out, vf(OracleFeasible, "host %s egress oversubscribed in [%v,%v): %v > %v", l.Key.Name, s.from, s.to, u, eg))
				}
			case fabric.LinkIngress:
				_, in := ct.at(l.Key.Name, s.from)
				if u > float64(in)*(1+1e-6)+unit.Eps {
					out = append(out, vf(OracleFeasible, "host %s ingress oversubscribed in [%v,%v): %v > %v", l.Key.Name, s.from, s.to, u, in))
				}
			default:
				// Interior links keep their static capacity: fault events
				// only mutate host NICs.
				if u > float64(l.Capacity)*(1+1e-6)+unit.Eps {
					out = append(out, vf(OracleFeasible, "link %s oversubscribed in [%v,%v): %v > %v", l.Key, s.from, s.to, u, l.Capacity))
				}
			}
		}
	}
	return out
}

// oracleConserve checks completion and byte accounting: every node ran,
// and each flow's integrated rate equals its size.
func oracleConserve(c *compiled, res *sim.Result) []Violation {
	var out []Violation
	vol := make(map[string]float64)
	for _, seg := range res.Rates {
		vol[seg.FlowID] += float64(seg.Rate.Over(seg.To - seg.From))
	}
	for _, n := range c.graph.Nodes() {
		if n.Kind == dag.Compute {
			if _, ok := res.Tasks[n.ID]; !ok {
				out = append(out, vf(OracleConserve, "compute %s never ran", n.ID))
			}
			continue
		}
		rec, ok := res.Flows[n.ID]
		if !ok {
			out = append(out, vf(OracleConserve, "flow %s never finished", n.ID))
			continue
		}
		if math.Abs(vol[n.ID]-float64(n.Size)) > 1e-6*(1+float64(n.Size)) {
			out = append(out, vf(OracleConserve, "flow %s shipped %v of %v bytes", n.ID, vol[n.ID], n.Size))
		}
		if rec.Size != n.Size {
			out = append(out, vf(OracleConserve, "flow %s recorded size %v, graph says %v", n.ID, rec.Size, n.Size))
		}
	}
	return out
}

// oracleOrdering checks temporal sanity: released before finished,
// dependencies and NotBefore respected, and computes serialized per host.
func oracleOrdering(c *compiled, res *sim.Result) []Violation {
	var out []Violation
	endOf := func(id string) unit.Time {
		if sp, ok := res.Tasks[id]; ok {
			return sp.End
		}
		return res.Flows[id].Finish
	}
	startOf := func(id string) unit.Time {
		if sp, ok := res.Tasks[id]; ok {
			return sp.Start
		}
		return res.Flows[id].Release
	}
	for _, n := range c.graph.Nodes() {
		if n.Kind == dag.Comm {
			rec, ok := res.Flows[n.ID]
			if !ok {
				continue // conserve reports the gap
			}
			if rec.Finish < rec.Release-unit.Time(unit.Eps) {
				out = append(out, vf(OracleOrdering, "flow %s finished %v before release %v", n.ID, rec.Finish, rec.Release))
			}
		}
		if startOf(n.ID) < n.NotBefore-unit.Time(1e-6) {
			out = append(out, vf(OracleOrdering, "node %s started %v before its NotBefore %v", n.ID, startOf(n.ID), n.NotBefore))
		}
		for _, dep := range c.graph.Deps(n.ID) {
			if startOf(n.ID) < endOf(dep)-unit.Time(1e-6) {
				out = append(out, vf(OracleOrdering, "node %s started %v before dep %s ended %v", n.ID, startOf(n.ID), dep, endOf(dep)))
			}
		}
	}
	// Host exclusivity over compute spans.
	byHost := make(map[string][]string)
	for _, n := range c.graph.Nodes() {
		if n.Kind == dag.Compute {
			if _, ok := res.Tasks[n.ID]; ok {
				byHost[n.Host] = append(byHost[n.Host], n.ID)
			}
		}
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		ids := byHost[h]
		for i := range ids {
			for j := i + 1; j < len(ids); j++ {
				a, b := res.Tasks[ids[i]], res.Tasks[ids[j]]
				if a.Start < b.End-unit.Time(unit.Eps) && b.Start < a.End-unit.Time(unit.Eps) {
					out = append(out, vf(OracleOrdering, "computes %s and %s overlap on host %s", ids[i], ids[j], h))
				}
			}
		}
	}
	return out
}

// oracleTardiness checks the Eq. 1-4 accounting: a group's tardiness is
// the maximum over its flows (never negative — the head flow cannot beat
// the reference), the reference is the first member release, and no flow
// finishes faster than its best-case solo transfer allows.
func oracleTardiness(c *compiled, res *sim.Result) []Violation {
	var out []Violation
	ct := newCapTimeline(c.sc.Hosts, c.caps)
	for _, n := range c.commNodes() {
		rec, ok := res.Flows[n.ID]
		if !ok {
			continue
		}
		best := ct.bestPairRate(n.Src, n.Dst)
		if best <= 0 {
			continue
		}
		solo := unit.Time(float64(n.Size) / float64(best))
		if got := rec.Finish - rec.Release; got < solo-unit.Time(1e-6*(1+float64(solo))) {
			out = append(out, vf(OracleTardiness, "flow %s finished in %v, below its solo lower bound %v", n.ID, got, solo))
		}
	}
	for _, gid := range c.groupIDs() {
		gr, ok := res.Groups[gid]
		if !ok || gr.Group == nil {
			out = append(out, vf(OracleTardiness, "group %s missing from results", gid))
			continue
		}
		var maxTard unit.Time
		minRelease := unit.Time(math.Inf(1))
		seen := false
		for _, f := range gr.Group.Flows {
			rec, ok := res.Flows[f.ID]
			if !ok {
				continue
			}
			seen = true
			if tt := rec.Tardiness(); tt > maxTard {
				maxTard = tt
			}
			if rec.Release < minRelease {
				minRelease = rec.Release
			}
		}
		if !seen {
			continue
		}
		if !gr.Tardiness.ApproxEq(maxTard) {
			out = append(out, vf(OracleTardiness, "group %s tardiness %v != max flow tardiness %v", gid, gr.Tardiness, maxTard))
		}
		if gr.Tardiness < -unit.Time(unit.Eps) {
			out = append(out, vf(OracleTardiness, "group %s has negative tardiness %v", gid, gr.Tardiness))
		}
		if !gr.Reference.ApproxEq(minRelease) {
			out = append(out, vf(OracleTardiness, "group %s reference %v != first release %v", gid, gr.Reference, minRelease))
		}
	}
	return out
}

// workConserving reports whether a scheduler never idles a port an active
// flow could use — the property oracleWorkCons asserts. Greedy-fill and
// max-min schedulers qualify; MADD planners only with backfill.
func workConserving(s sched.Scheduler) bool {
	switch v := s.(type) {
	case sched.Fair, sched.SRPT, sched.FIFO, sched.EDF:
		return true
	case sched.EchelonMADD:
		return v.Backfill
	case sched.CoflowMADD:
		return v.Backfill
	default:
		return false
	}
}

// oracleWorkCons checks that during every constant-rate span, no flow that
// was active for the whole span has usable headroom on every link of its
// path (on the big-switch fabric: both of its ports). Only meaningful for
// work-conserving schedulers in event-driven mode: IntervalOnly holds rates
// stale between ticks by design.
func oracleWorkCons(c *compiled, res *sim.Result, s sched.Scheduler) []Violation {
	if !workConserving(s) || c.sc.IntervalOnly {
		return nil
	}
	var out []Violation
	net := c.newNet()
	ct := newCapTimeline(c.sc.Hosts, c.caps)
	type key struct {
		link fabric.LinkKey
		s    span
	}
	use := make(map[key]float64)
	node := func(id string) *dag.Node { return c.graph.Node(id) }
	var lbuf []fabric.LinkKey
	for _, seg := range res.Rates {
		n := node(seg.FlowID)
		if n == nil {
			continue
		}
		s := span{seg.From, seg.To}
		lbuf = net.FlowLinks(n.Src, n.Dst, lbuf[:0])
		for _, k := range lbuf {
			use[key{k, s}] += float64(seg.Rate)
		}
	}
	// Fault events only mutate host NICs, so NIC links read the capacity
	// timeline and interior links are static.
	capAt := func(k fabric.LinkKey, at unit.Time) float64 {
		switch k.Kind {
		case fabric.LinkEgress:
			eg, _ := ct.at(k.Name, at)
			return float64(eg)
		case fabric.LinkIngress:
			_, in := ct.at(k.Name, at)
			return float64(in)
		default:
			return float64(net.LinkCapacity(k))
		}
	}
	for _, s := range spansOf(res) {
		if s.to-s.from <= unit.Time(unit.Eps) {
			continue
		}
		for _, n := range c.commNodes() {
			rec, ok := res.Flows[n.ID]
			if !ok {
				continue
			}
			if rec.Release > s.from+unit.Time(unit.Eps) || rec.Finish < s.to-unit.Time(unit.Eps) {
				continue // not active throughout the span
			}
			lbuf = net.FlowLinks(n.Src, n.Dst, lbuf[:0])
			head, lim := math.Inf(1), math.Inf(1)
			for _, k := range lbuf {
				c := capAt(k, s.from)
				head = math.Min(head, c-use[key{k, s}])
				lim = math.Min(lim, c)
			}
			if head > 1e-6*(1+lim) {
				out = append(out, vf(OracleWorkCons,
					"flow %s idles with %v headroom on %s->%s during [%v,%v)",
					n.ID, head, n.Src, n.Dst, s.from, s.to))
			}
		}
	}
	return out
}
