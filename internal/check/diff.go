package check

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// compareRuns demands two simulations of the same scenario be identical —
// not approximately: the differential oracles assert that optimisations
// (plan caching, parallel ranking) are pure implementation detail.
func compareRuns(oracle string, c *compiled, a, b *sim.Result) []Violation {
	var out []Violation
	if a.Makespan != b.Makespan {
		out = append(out, vf(oracle, "makespan diverges: %v vs %v", a.Makespan, b.Makespan))
	}
	if a.SchedulerCalls != b.SchedulerCalls {
		out = append(out, vf(oracle, "scheduler calls diverge: %d vs %d", a.SchedulerCalls, b.SchedulerCalls))
	}
	for _, n := range c.commNodes() {
		ra, oka := a.Flows[n.ID]
		rb, okb := b.Flows[n.ID]
		if oka != okb || ra != rb {
			out = append(out, vf(oracle, "flow %s record diverges: %+v vs %+v", n.ID, ra, rb))
		}
	}
	for _, gid := range c.groupIDs() {
		ga, gb := a.Groups[gid], b.Groups[gid]
		if ga.Reference != gb.Reference || ga.Tardiness != gb.Tardiness || ga.CompletionTime != gb.CompletionTime {
			out = append(out, vf(oracle, "group %s diverges: ref %v/%v tard %v/%v cct %v/%v",
				gid, ga.Reference, gb.Reference, ga.Tardiness, gb.Tardiness, ga.CompletionTime, gb.CompletionTime))
		}
	}
	if len(a.Rates) != len(b.Rates) {
		out = append(out, vf(oracle, "rate timelines diverge: %d vs %d segments", len(a.Rates), len(b.Rates)))
		return out
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			out = append(out, vf(oracle, "rate segment %d diverges: %+v vs %+v", i, a.Rates[i], b.Rates[i]))
			break
		}
	}
	return out
}

// diffCache runs the scenario with a pre-warmed PlanCache and with no cache
// at all; the cache must be invisible in every observable.
func diffCache(c *compiled) []Violation {
	cache := sched.NewPlanCache()
	if _, err := runSim(c, sched.EchelonMADD{Backfill: true, Cache: cache}); err != nil {
		return []Violation{vf(OracleCache, "warm-up run: %v", err)}
	}
	warm, err := runSim(c, sched.EchelonMADD{Backfill: true, Cache: cache})
	if err != nil {
		return []Violation{vf(OracleCache, "cached run: %v", err)}
	}
	cold, err := runSim(c, sched.EchelonMADD{Backfill: true})
	if err != nil {
		return []Violation{vf(OracleCache, "cold run: %v", err)}
	}
	return compareRuns(OracleCache, c, warm, cold)
}

// gomaxprocsMu serializes diffRank's global GOMAXPROCS toggling so
// concurrent checks (e.g. parallel tests) cannot interleave it.
var gomaxprocsMu sync.Mutex

// diffRank pins GOMAXPROCS to 1 (serial solo ranking) and then to 4
// (parallel ranking) and demands identical runs. Each run gets a fresh
// cache so ranking actually executes instead of being memoized away.
func diffRank(c *compiled) []Violation {
	gomaxprocsMu.Lock()
	defer gomaxprocsMu.Unlock()
	prev := runtime.GOMAXPROCS(1)
	serial, errS := runSim(c, sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()})
	runtime.GOMAXPROCS(4)
	parallel, errP := runSim(c, sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()})
	runtime.GOMAXPROCS(prev)
	if errS != nil {
		return []Violation{vf(OracleRank, "serial run: %v", errS)}
	}
	if errP != nil {
		return []Violation{vf(OracleRank, "parallel run: %v", errP)}
	}
	return compareRuns(OracleRank, c, serial, parallel)
}

// replayEvent is one timed action in the coordinator replay of a simulated
// run: a fabric capacity rewrite or a flow lifecycle event.
type replayEvent struct {
	at   unit.Time
	kind int // 0 capacity, 1 released, 2 finished — applied in this order at equal times
	// capacity events
	host   string
	eg, in unit.Rate
	// flow events
	gid, fid string
}

// buildReplayEvents lowers a simulation result into the timed event script
// an agent fleet would deliver: every flow's release and finish, plus the
// scenario's capacity changes. Releases sort before finishes at equal times
// so zero-size flows (release == finish) replay in a legal order.
func buildReplayEvents(c *compiled, res *sim.Result) []replayEvent {
	var evs []replayEvent
	for _, cc := range c.caps {
		evs = append(evs, replayEvent{at: cc.At, kind: 0, host: cc.Host, eg: cc.Egress, in: cc.Ingress})
	}
	for _, n := range c.commNodes() {
		rec, ok := res.Flows[n.ID]
		if !ok {
			continue
		}
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		evs = append(evs, replayEvent{at: rec.Release, kind: 1, gid: gid, fid: n.ID})
		evs = append(evs, replayEvent{at: rec.Finish, kind: 2, gid: gid, fid: n.ID})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].kind != evs[j].kind {
			return evs[i].kind < evs[j].kind
		}
		return evs[i].fid < evs[j].fid
	})
	return evs
}

// buildGroups constructs the EchelonFlow groups exactly as sim.New does:
// grouped comm nodes under their arrangement, ungrouped ones as singleton
// coflows, scenario weights applied.
func buildGroups(c *compiled) ([]*core.EchelonFlow, error) {
	flowsOf := make(map[string][]*core.Flow)
	var order []string
	for _, n := range c.commNodes() {
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		if _, seen := flowsOf[gid]; !seen {
			order = append(order, gid)
		}
		flowsOf[gid] = append(flowsOf[gid], &core.Flow{ID: n.ID, Src: n.Src, Dst: n.Dst, Size: n.Size, Stage: n.Stage})
	}
	var out []*core.EchelonFlow
	for _, gid := range order {
		arr, ok := c.arrs[gid]
		if !ok {
			arr = core.Coflow{}
		}
		g, err := core.New(gid, arr, flowsOf[gid]...)
		if err != nil {
			return nil, err
		}
		if w, ok := c.weights[gid]; ok {
			g.Weight = w
		}
		out = append(out, g)
	}
	return out, nil
}

// replayOutcome is what the live-coordinator comparisons inspect.
type replayOutcome struct {
	refs  map[string]unit.Time
	tards map[string]unit.Time
	total unit.Time
	// ratesAt holds, per event time, the allocation in force after every
	// event at that time was applied.
	ratesAt map[unit.Time]map[string]unit.Rate
}

// replayHooks customizes replayRunExt beyond the plain script replay.
type replayHooks struct {
	// tweak mutates the coordinator options before every construction
	// (initial and post-crash restores alike) — the degrade oracle uses it
	// to arm the scheduler deadline.
	tweak func(*coordinator.Options)
	// before runs immediately before event i is applied, against the live
	// coordinator — the chaos injection point.
	before func(co *coordinator.Coordinator, i int) error
}

// replayRun drives the event script against a live coordinator with an
// injected hand-advanced clock (the E13 technique). An empty dir runs
// journal-free; otherwise the coordinator journals into dir and, when
// crashAt >= 0, is abandoned mid-script and rebuilt from the journal
// before the event at that index — exactly a kill, not a shutdown.
func replayRun(c *compiled, res *sim.Result, dir string, crashAt int) (*replayOutcome, error) {
	var crashes []int
	if crashAt >= 0 {
		crashes = []int{crashAt}
	}
	return replayRunExt(c, res, dir, crashes, replayHooks{})
}

// replayRunExt is replayRun generalized to repeated kill/restore cycles (one
// per index in crashes) and per-event chaos hooks.
func replayRunExt(c *compiled, res *sim.Result, dir string, crashes []int, hooks replayHooks) (*replayOutcome, error) {
	clk := newReplayClock()
	mkOpts := func() coordinator.Options {
		return coordinator.Options{
			Net: c.newNet(),
			// Delta-wrapped: single-flow events route through the
			// incremental Apply path, so the live and journal oracles also
			// prove the coordinator's delta routing (and Prime-on-Restore)
			// preserves the trajectory. Coalescing stays off — its drain
			// timer is wall-clock-driven and would be nondeterministic here.
			Scheduler:         sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}),
			QuarantineTimeout: time.Hour,
			SnapshotEvery:     8,
			Clock:             clk.now,
			Logf:              func(string, ...interface{}) {},
			// Group-commit with an hour-long window: every journal append
			// rides the batched path, and the in-process "kill" (abandon
			// without Close) loses only the deferred fsync — the write()s are
			// already in the OS page cache, so Restore must still be
			// bit-for-bit. This proves batching never reorders or drops a
			// record short of real power loss.
			GroupCommit: time.Hour,
		}
	}
	if hooks.tweak != nil {
		base := mkOpts
		mkOpts = func() coordinator.Options {
			o := base()
			hooks.tweak(&o)
			return o
		}
	}
	groups, err := buildGroups(c)
	if err != nil {
		return nil, err
	}
	var co *coordinator.Coordinator
	if dir == "" {
		co, err = coordinator.New(mkOpts())
	} else {
		co, err = coordinator.Restore(mkOpts(), dir)
	}
	if err != nil {
		return nil, err
	}
	register := func() error {
		for _, g := range groups {
			if err := co.RegisterGroup("check", g); err != nil {
				return err
			}
		}
		return nil
	}
	if err := register(); err != nil {
		return nil, err
	}

	out := &replayOutcome{
		refs:    make(map[string]unit.Time),
		tards:   make(map[string]unit.Time),
		ratesAt: make(map[unit.Time]map[string]unit.Rate),
	}
	// With a codec selected, every flow event is encoded and decoded through
	// that framing before it reaches the coordinator — the bytes a live agent
	// fleet would have put on the wire. One codec pair reused across the
	// script keeps interning and buffer reuse on the tested path too.
	roundTrip := func(ev wire.FlowEvent) (wire.FlowEvent, error) { return ev, nil }
	if c.wire != "" {
		var pipe bytes.Buffer
		codec := wire.NewCodec(&pipe)
		if c.wire == "binary" {
			codec.EnableBinary()
		}
		roundTrip = func(ev wire.FlowEvent) (wire.FlowEvent, error) {
			if err := codec.Send(wire.Message{Type: wire.TypeFlowEvent, FlowEvent: &ev}); err != nil {
				return ev, fmt.Errorf("%s codec encode: %w", c.wire, err)
			}
			m, err := codec.Recv()
			if err != nil {
				return ev, fmt.Errorf("%s codec decode: %w", c.wire, err)
			}
			if m.Type != wire.TypeFlowEvent || m.FlowEvent == nil {
				return ev, fmt.Errorf("%s codec round trip changed message type to %q", c.wire, m.Type)
			}
			return *m.FlowEvent, nil
		}
	}
	crashSet := make(map[int]bool, len(crashes))
	for _, i := range crashes {
		crashSet[i] = true
	}
	evs := buildReplayEvents(c, res)
	for i, ev := range evs {
		if crashSet[i] {
			clk.setAt(ev.at)
			co = nil // the kill: no Close, no flush; only the journal survives
			co, err = coordinator.Restore(mkOpts(), dir)
			if err != nil {
				return nil, err
			}
			if err := register(); err != nil {
				return nil, err
			}
		}
		if hooks.before != nil {
			if err := hooks.before(co, i); err != nil {
				return nil, err
			}
		}
		clk.setAt(ev.at)
		var rates map[string]unit.Rate
		switch ev.kind {
		case 0:
			if err := co.SetCapacity(ev.host, ev.eg, ev.in); err != nil {
				return nil, err
			}
			if rates, err = co.Tick(); err != nil {
				return nil, err
			}
		case 1, 2:
			event := wire.EventReleased
			if ev.kind == 2 {
				event = wire.EventFinished
			}
			fe, err := roundTrip(wire.FlowEvent{GroupID: ev.gid, FlowID: ev.fid, Event: event})
			if err != nil {
				return nil, err
			}
			if rates, err = co.FlowEvent(fe); err != nil {
				return nil, err
			}
		}
		if rates == nil {
			// A degraded (or soft-quarantined) coordinator batches events into
			// a coalescing window; its wall-clock drain timer would be
			// nondeterministic here, so force the flush synchronously at the
			// script's frozen clock instead.
			if rates, err = co.Drain(); err != nil {
				return nil, err
			}
		}
		out.ratesAt[ev.at] = rates // later events at the same time overwrite
	}
	for _, g := range groups {
		ref, tard, err := co.GroupStatus(g.ID)
		if err != nil {
			return nil, err
		}
		out.refs[g.ID], out.tards[g.ID] = ref, tard
	}
	out.total = co.TotalTardiness()
	co.Close()
	return out, nil
}

// liveTol is the sim-vs-live agreement tolerance: the coordinator's clock
// quantizes scheduler time to nanoseconds, so bit-equality with the
// float64 simulator is out of reach by about 1e-9 per event.
const liveTol = 1e-6

// diffLive replays the simulated run's flow events against a live
// coordinator and demands both sides account it the same way: per-group
// references and tardiness, the weighted total, and (in pure event-driven
// mode) the allocation after every event.
func diffLive(c *compiled, res *sim.Result) []Violation {
	live, err := replayRun(c, res, "", -1)
	if err != nil {
		return []Violation{vf(OracleLive, "replay: %v", err)}
	}
	var out []Violation
	for _, gid := range c.groupIDs() {
		gr, ok := res.Groups[gid]
		if !ok {
			continue
		}
		if math.Abs(float64(gr.Reference-live.refs[gid])) > liveTol {
			out = append(out, vf(OracleLive, "group %s reference: sim %v vs live %v", gid, gr.Reference, live.refs[gid]))
		}
		if math.Abs(float64(gr.Tardiness-live.tards[gid])) > liveTol {
			out = append(out, vf(OracleLive, "group %s tardiness: sim %v vs live %v", gid, gr.Tardiness, live.tards[gid]))
		}
	}
	if math.Abs(float64(res.TotalTardiness()-live.total)) > liveTol {
		out = append(out, vf(OracleLive, "total tardiness: sim %v vs live %v", res.TotalTardiness(), live.total))
	}
	// Allocation comparison: only the first event time is comparable.
	// Beyond it the trajectories legitimately drift — MADD rates are
	// time-varying and the simulator reschedules at compute finishes and
	// interval ticks the coordinator never observes, so remaining volumes
	// (and hence instantaneous rates) differ mid-run even though both
	// sides converge on the same finish accounting. At the first event
	// both schedulers see bit-identical snapshots (full sizes, fresh
	// references), so rates must agree to clock-quantization tolerance.
	if c.sc.IntervalOnly {
		return out
	}
	times := make([]unit.Time, 0, len(live.ratesAt))
	for t := range live.ratesAt {
		times = append(times, t)
	}
	if len(times) == 0 {
		return out
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	t0 := times[0]
	sm := make(map[string]unit.Rate)
	for _, seg := range res.Rates {
		if seg.From == t0 {
			sm[seg.FlowID] = seg.Rate
		}
	}
	lm := live.ratesAt[t0]
	ids := make(map[string]bool)
	for id := range sm {
		ids[id] = true
	}
	for id := range lm {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		// The simulator omits ~zero-rate segments, so a missing side
		// reads as zero.
		if math.Abs(float64(sm[id]-lm[id])) > liveTol*(1+math.Abs(float64(sm[id]))) {
			out = append(out, vf(OracleLive, "flow %s rate at t=%v: sim %v vs live %v", id, t0, sm[id], lm[id]))
		}
	}
	return out
}

// diffJournal replays the run twice against live coordinators — once
// uninterrupted, once killed mid-script and rebuilt from its write-ahead
// journal — and demands the recovered trajectory match (the E13 invariant,
// here over randomized scenarios): every reference time, achieved
// tardiness and the weighted total bit-equal, and allocations bit-equal at
// every instant not tainted by crossing-flow drift (see driftedFlows).
func diffJournal(c *compiled, res *sim.Result) []Violation {
	evs := buildReplayEvents(c, res)
	if len(evs) == 0 {
		return nil
	}
	golden, err := replayRun(c, res, "", -1)
	if err != nil {
		return []Violation{vf(OracleJournal, "golden replay: %v", err)}
	}
	dir, err := os.MkdirTemp("", "echelon-check-journal-*")
	if err != nil {
		return []Violation{vf(OracleJournal, "journal dir: %v", err)}
	}
	defer os.RemoveAll(dir)
	crashAt := len(evs) / 2
	crashed, err := replayRun(c, res, dir, crashAt)
	if err != nil {
		return []Violation{vf(OracleJournal, "crash replay: %v", err)}
	}
	var out []Violation
	for _, gid := range c.groupIDs() {
		if golden.refs[gid] != crashed.refs[gid] {
			out = append(out, vf(OracleJournal, "group %s reference: golden %v vs restored %v", gid, golden.refs[gid], crashed.refs[gid]))
		}
		if golden.tards[gid] != crashed.tards[gid] {
			out = append(out, vf(OracleJournal, "group %s tardiness: golden %v vs restored %v", gid, golden.tards[gid], crashed.tards[gid]))
		}
	}
	if golden.total != crashed.total {
		out = append(out, vf(OracleJournal, "total tardiness: golden %v vs restored %v", golden.total, crashed.total))
	}
	tc := evs[crashAt].at
	drifted := driftedFlows(res, tc)
	times := make([]unit.Time, 0, len(golden.ratesAt))
	for t := range golden.ratesAt {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		if t >= tc && driftActiveAt(res, drifted, t) {
			continue
		}
		if !reflect.DeepEqual(golden.ratesAt[t], crashed.ratesAt[t]) {
			out = append(out, vf(OracleJournal, "allocations at t=%v: golden %v vs restored %v", t, golden.ratesAt[t], crashed.ratesAt[t]))
		}
	}
	return out
}

// driftedFlows computes which flows' modeled remaining volume may lawfully
// diverge after a coordinator crash at tc. A flow in flight across the
// crash drifts: the journal cannot know how much it transmitted while the
// coordinator was down (agent finish reports resynchronize the model, so
// the drift is bounded and self-correcting — but not bit-zero). Drift then
// propagates: any flow sharing post-crash airtime with a drifted flow sees
// different rates, so its remaining drifts too, transitively.
func driftedFlows(res *sim.Result, tc unit.Time) map[string]bool {
	return driftedFlowsWindow(res, tc, tc)
}

// driftedFlowsWindow is driftedFlows for a divergence window rather than an
// instant: any flow in flight at any point of [t1, t2] seeds the drift set
// (the degrade oracle's episode spans many events, not one crash instant),
// and drift then propagates transitively over shared post-t1 airtime.
func driftedFlowsWindow(res *sim.Result, t1, t2 unit.Time) map[string]bool {
	drifted := make(map[string]bool)
	for id, rec := range res.Flows {
		if rec.Release < t2 && rec.Finish > t1 {
			drifted[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for id, rec := range res.Flows {
			if drifted[id] || rec.Finish <= t1 {
				continue
			}
			for did := range drifted {
				d := res.Flows[did]
				lo := unit.MaxTime(unit.MaxTime(rec.Release, d.Release), t1)
				hi := unit.MinTime(rec.Finish, d.Finish)
				if lo < hi {
					drifted[id] = true
					changed = true
					break
				}
			}
		}
	}
	return drifted
}

// Degrade-episode parameters: the stall exceeds the budget so every
// in-episode pass degrades (the first by overrun, the rest by a busy slot),
// while the budget still leaves generous headroom for a legitimate primary
// pass on a loaded CI machine, so the run outside the episode never degrades
// spuriously. A seed costs about one budget wait plus a partial stall drain.
const (
	degradeBudget = 50 * time.Millisecond
	degradeStall  = 75 * time.Millisecond
)

// diffDegrade injects a scheduler-slowdown episode over the middle third of
// the event script against a deadline-armed live coordinator and demands
// graceful degradation: every pass during the episode answers from the
// fallback with allocations that stay fabric-feasible, finish/tardiness
// accounting matches the unconstrained run bit-for-bit, and once the stall
// clears the allocation trajectory re-converges bit-for-bit with the
// non-degraded run at every instant not lawfully tainted by episode drift.
func diffDegrade(c *compiled, res *sim.Result) []Violation {
	evs := buildReplayEvents(c, res)
	if len(evs) < 3 {
		return nil
	}
	golden, err := replayRun(c, res, "", -1)
	if err != nil {
		return []Violation{vf(OracleDegrade, "golden replay: %v", err)}
	}
	epStart, epEnd := len(evs)/3, 2*len(evs)/3
	sawDegrade := false
	hooks := replayHooks{
		tweak: func(o *coordinator.Options) {
			o.SchedDeadline = degradeBudget
			// The oracle watches the deadline fallback itself; keep the
			// breaker out of the way (its cooldown is wall-clock and would
			// make post-episode behavior timing-dependent).
			o.DeadlineTripAfter = 1 << 20
		},
		before: func(co *coordinator.Coordinator, i int) error {
			switch i {
			case epStart:
				return co.SetSchedStall(degradeStall)
			case epEnd:
				sawDegrade = co.SchedDegraded()
				if err := co.SetSchedStall(0); err != nil {
					return err
				}
				// Wait out the abandoned stalled pass so the recovery pass is
				// deterministic instead of racing the drain for the slot.
				co.QuiesceScheduler()
			}
			return nil
		},
	}
	degraded, err := replayRunExt(c, res, "", nil, hooks)
	if err != nil {
		return []Violation{vf(OracleDegrade, "degraded replay: %v", err)}
	}
	var out []Violation
	if !sawDegrade {
		out = append(out, vf(OracleDegrade, "stall episode never degraded the scheduler (oracle vacuous)"))
	}
	// Ground-truth accounting (references, tardiness) is driven by reported
	// finishes, not allocation quality: it must survive the episode
	// bit-for-bit.
	for _, gid := range c.groupIDs() {
		if golden.refs[gid] != degraded.refs[gid] {
			out = append(out, vf(OracleDegrade, "group %s reference: golden %v vs degraded %v", gid, golden.refs[gid], degraded.refs[gid]))
		}
		if golden.tards[gid] != degraded.tards[gid] {
			out = append(out, vf(OracleDegrade, "group %s tardiness: golden %v vs degraded %v", gid, golden.tards[gid], degraded.tards[gid]))
		}
	}
	if golden.total != degraded.total {
		out = append(out, vf(OracleDegrade, "total tardiness: golden %v vs degraded %v", golden.total, degraded.total))
	}
	// Every allocation the degraded run pushed — fallback passes included —
	// must respect the fabric capacities in force at that instant.
	out = append(out, feasibleAt(OracleDegrade, c, degraded.ratesAt)...)
	// Re-convergence: outside the episode and its lawful drift shadow the
	// degraded run's allocations are bit-equal to the non-degraded run's.
	t1, t2 := evs[epStart].at, evs[epEnd].at
	drifted := driftedFlowsWindow(res, t1, t2)
	times := make([]unit.Time, 0, len(golden.ratesAt))
	for t := range golden.ratesAt {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		if t >= t1 && (t < t2 || driftActiveAt(res, drifted, t)) {
			continue
		}
		if !reflect.DeepEqual(golden.ratesAt[t], degraded.ratesAt[t]) {
			out = append(out, vf(OracleDegrade, "allocations at t=%v: golden %v vs degraded %v", t, golden.ratesAt[t], degraded.ratesAt[t]))
		}
	}
	return out
}

// feasibleAt checks per-instant allocation maps against the capacity
// timeline — the degraded-mode analogue of oracleFeasible, applied to what a
// live coordinator actually pushed rather than simulator rate segments.
func feasibleAt(oracle string, c *compiled, ratesAt map[unit.Time]map[string]unit.Rate) []Violation {
	var out []Violation
	ct := newCapTimeline(c.sc.Hosts, c.caps)
	times := make([]unit.Time, 0, len(ratesAt))
	for t := range ratesAt {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		rates := ratesAt[t]
		ids := make([]string, 0, len(rates))
		for id := range rates {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		egUse := make(map[string]float64)
		inUse := make(map[string]float64)
		for _, id := range ids {
			r := float64(rates[id])
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				out = append(out, vf(oracle, "flow %s has invalid rate %v at t=%v", id, rates[id], t))
				continue
			}
			n := c.graph.Node(id)
			if n == nil {
				out = append(out, vf(oracle, "allocation for unknown flow %s at t=%v", id, t))
				continue
			}
			egUse[n.Src] += r
			inUse[n.Dst] += r
		}
		for _, h := range c.sc.Hosts {
			eg, in := ct.at(h.Name, t)
			if use := egUse[h.Name]; use > float64(eg)*(1+1e-6)+unit.Eps {
				out = append(out, vf(oracle, "host %s egress oversubscribed at t=%v: %v > %v", h.Name, t, use, eg))
			}
			if use := inUse[h.Name]; use > float64(in)*(1+1e-6)+unit.Eps {
				out = append(out, vf(oracle, "host %s ingress oversubscribed at t=%v: %v > %v", h.Name, t, use, in))
			}
		}
	}
	return out
}

// driftActiveAt reports whether any drifted flow is still in flight at t.
func driftActiveAt(res *sim.Result, drifted map[string]bool, t unit.Time) bool {
	for id := range drifted {
		rec := res.Flows[id]
		if rec.Release <= t && rec.Finish > t {
			return true
		}
	}
	return false
}

// replayClock is the hand-advanced coordinator clock (E13's technique):
// scheduler time is whatever the script says, so replays are reproducible
// regardless of real elapsed time.
type replayClock struct {
	mu   sync.Mutex
	base time.Time
	t    time.Time
}

func newReplayClock() *replayClock {
	base := time.Unix(1_700_000_000, 0)
	return &replayClock{base: base, t: base}
}

func (c *replayClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *replayClock) setAt(t unit.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.base.Add(time.Duration(float64(t) * float64(time.Second)))
}
