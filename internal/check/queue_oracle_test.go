package check

import (
	"strings"
	"testing"

	"echelonflow/internal/unit"
)

// TestCheck_ArrivalShiftsNotBefore pins the arrival semantics: compiling a
// job with Arrival > 0 pushes every one of its nodes' NotBefore by exactly
// that much, and the simulated run still satisfies every result oracle
// (ordering includes the NotBefore gate).
func TestCheck_ArrivalShiftsNotBefore(t *testing.T) {
	sc := &Scenario{
		Hosts: []HostSpec{
			{Name: "a", Egress: 2, Ingress: 2},
			{Name: "b", Egress: 2, Ingress: 2},
		},
		Jobs: []JobSpec{{
			Name: "late", Paradigm: "dp",
			Model:   ModelSpec{Layers: 2, Params: 1, Acts: 1, Fwd: 0.1, Bwd: 0.1},
			Workers: []string{"a", "b"}, Iterations: 1, Arrival: 1.5,
		}},
	}
	c, err := sc.compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.graph.Nodes() {
		if n.NotBefore < 1.5 {
			t.Errorf("node %s NotBefore = %v, want >= 1.5", n.ID, n.NotBefore)
		}
	}
	out := Run(sc, Config{Oracles: ResultOracles()})
	for _, v := range out.Violations {
		t.Errorf("%s: %s", v.Oracle, v.Detail)
	}
	if out.Makespan < 1.5 {
		t.Errorf("makespan %v predates the job's arrival", out.Makespan)
	}

	sc.Jobs[0].Arrival = -1
	if err := sc.Validate(); err == nil {
		t.Error("negative arrival validated")
	}
}

// TestCheck_OracleQueueTrace drives the queue oracle over a hand-written
// staggered-arrival trace: three jobs against MaxJobs=2, where the third
// must wait for a departure. The oracle must pass and, when the trace is
// poisoned with a duplicate job name, count the rejection without tripping
// conservation.
func TestCheck_OracleQueueTrace(t *testing.T) {
	hosts := []HostSpec{
		{Name: "a", Egress: 2, Ingress: 2},
		{Name: "b", Egress: 2, Ingress: 2},
		{Name: "c", Egress: 2, Ingress: 2},
	}
	job := func(name string, arrival unit.Time) JobSpec {
		return JobSpec{
			Name: name, Paradigm: "dp",
			Model:   ModelSpec{Layers: 2, Params: 1, Acts: 1, Fwd: 0.2, Bwd: 0.2},
			Workers: []string{"a", "b"}, Iterations: 2, Arrival: arrival,
		}
	}
	sc := &Scenario{Hosts: hosts, Jobs: []JobSpec{job("j0", 0), job("j1", 0.3), job("j2", 0.6)}}
	c, err := sc.compile()
	if err != nil {
		t.Fatal(err)
	}
	if vs := oracleQueue(c); len(vs) != 0 {
		t.Errorf("clean trace tripped the queue oracle: %v", vs)
	}

	// A duplicate name is rejected at submit; everything else still drains.
	sc2 := &Scenario{Hosts: hosts, Jobs: []JobSpec{job("j0", 0), job("j0", 0.1), job("j1", 0.2)}}
	// compile() would reject duplicate groups, so lower the trace by hand.
	c2 := &compiled{sc: sc2}
	if vs := oracleQueue(c2); len(vs) != 0 {
		t.Errorf("duplicate-name trace tripped invariants: %v", vs)
	}

	// An unplaceable job (more workers than hosts) is dropped at admission
	// while jobs behind it still admit and drain.
	wide := job("wide", 0)
	wide.Workers = []string{"a", "b", "c", "a", "b"} // count is what matters
	sc3 := &Scenario{Hosts: hosts, Jobs: []JobSpec{wide, job("j1", 0.1)}}
	c3 := &compiled{sc: sc3}
	if vs := oracleQueue(c3); len(vs) != 0 {
		t.Errorf("unplaceable-head trace tripped invariants: %v", vs)
	}
}

// TestCheck_OracleQueueSeeds runs the queue oracle across the quick seed
// corpus (arrival-timed generated jobs included) and requires silence.
func TestCheck_OracleQueueSeeds(t *testing.T) {
	sawArrival := false
	for _, seed := range quickSeeds {
		sc := Generate(seed)
		for _, j := range sc.Jobs {
			if j.Arrival > 0 {
				sawArrival = true
			}
		}
		out := Run(sc, Config{Oracles: []string{OracleQueue}})
		for _, v := range out.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
	if !sawArrival {
		t.Error("no quick seed generated an arrival-timed job; generator coverage lost")
	}
}

// TestCheck_OracleQueueInList pins the oracle's registration: ParseOracles
// resolves it by name and "all" includes it.
func TestCheck_OracleQueueInList(t *testing.T) {
	got, err := ParseOracles("queue")
	if err != nil || len(got) != 1 || got[0] != OracleQueue {
		t.Fatalf("ParseOracles(queue) = %v, %v", got, err)
	}
	all, _ := ParseOracles("all")
	if !strings.Contains(strings.Join(all, ","), OracleQueue) {
		t.Error("AllOracles misses the queue oracle")
	}
}

// TestCheck_ArrivalRoundTrip pins the JSON form of the new field.
func TestCheck_ArrivalRoundTrip(t *testing.T) {
	sc := &Scenario{
		Hosts: []HostSpec{{Name: "a", Egress: 1, Ingress: 1}, {Name: "b", Egress: 1, Ingress: 1}},
		Jobs: []JobSpec{{
			Name: "j", Paradigm: "tp",
			Model:   ModelSpec{Layers: 2, Params: 1, Acts: 1, Fwd: 0.1, Bwd: 0.1},
			Workers: []string{"a", "b"}, Iterations: 1, Arrival: 2.25,
		}},
	}
	data, err := sc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Jobs[0].Arrival != 2.25 {
		t.Errorf("arrival round-tripped to %v", back.Jobs[0].Arrival)
	}
	if !strings.Contains(string(data), "\"arrival\"") {
		t.Error("arrival missing from JSON form")
	}
}
