package check

import (
	"sort"

	"echelonflow/internal/queue"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Queue-oracle admission parameters. Two concurrent jobs with a 75% budget
// keeps contention real on the generator's 1-2 job scenarios while leaving
// both the MaxJobs gate and the bandwidth gate reachable.
const (
	oracleMaxJobs  = 2
	oracleMaxShare = 0.75
)

// wireJob lowers a scenario job to the wire submission form the queue
// admits: explicit worker hosts become a count (the placer re-binds them).
func wireJob(j JobSpec) wire.JobSpec {
	return wire.JobSpec{
		ID: j.Name, Paradigm: j.Paradigm, Workers: len(j.Workers),
		Layers: j.Model.Layers, Params: j.Model.Params, Acts: j.Model.Acts,
		Fwd: j.Model.Fwd, Bwd: j.Model.Bwd,
		AggTime: j.AggTime, Buckets: j.Buckets, Micro: j.Micro,
		UpdateTime: j.UpdateTime, Prefetch: j.Prefetch,
		Iterations: j.Iterations, Weight: j.Weight,
	}
}

// oracleQueue replays the scenario's jobs as an arrival-timed submission
// trace through the internal/queue state machine — each admitted job
// occupies the queue for its estimated runtime — and checks the admission
// invariants:
//
//   - no job is admitted before it arrived;
//   - FIFO admission never overtakes (sequence numbers admit in order);
//   - the MaxJobs and bandwidth-budget gates are never overshot (the budget
//     tolerates a single admitted job — the anti-starvation exception);
//   - jobs are conserved: pending + running + departed + rejected always
//     equals submissions, and demand returns to exactly zero;
//   - the queue drains once the trace ends.
func oracleQueue(c *compiled) []Violation {
	jobs := c.sc.Jobs
	if len(jobs) == 0 {
		return nil
	}
	var out []Violation
	q := queue.New(queue.Options{MaxJobs: oracleMaxJobs, MaxShare: oracleMaxShare})
	net := c.newNet()
	budget := unit.Rate(oracleMaxShare) * queue.NewView(net).TotalCapacity()
	view := func() *queue.View {
		v := queue.NewView(net)
		for _, a := range q.AdmittedList() {
			for _, h := range a.Hosts {
				v.Workers[h]++
			}
		}
		return v
	}

	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})

	type departure struct {
		at unit.Time
		id string
	}
	var deps []departure
	arrival := make(map[string]unit.Time)
	submitted, departed, rejected := 0, 0, 0
	lastSeq := -1
	now := unit.Time(0)

	admitAll := func() {
		for {
			a, err := q.Next(view(), now)
			if err != nil {
				rejected++ // unplaceable head dropped; keep serving behind it
				continue
			}
			if a == nil {
				return
			}
			id := a.Job.Spec.ID
			if a.AdmittedAt < arrival[id]-unit.Time(unit.Eps) {
				out = append(out, vf(OracleQueue, "job %s admitted at %v before its arrival %v", id, a.AdmittedAt, arrival[id]))
			}
			if a.Job.Seq <= lastSeq {
				out = append(out, vf(OracleQueue, "job %s (seq %d) admitted after seq %d: FIFO overtake", id, a.Job.Seq, lastSeq))
			}
			lastSeq = a.Job.Seq
			if q.Running() > oracleMaxJobs {
				out = append(out, vf(OracleQueue, "%d jobs running, MaxJobs is %d", q.Running(), oracleMaxJobs))
			}
			if q.Running() > 1 && q.Demand() > budget+unit.Rate(unit.Eps) {
				out = append(out, vf(OracleQueue, "admitted demand %v overshoots budget %v with %d jobs running", q.Demand(), budget, q.Running()))
			}
			deps = append(deps, departure{at: now + a.Job.Est*unit.Time(a.Job.Spec.Iterations), id: id})
		}
	}

	ai := 0
	for ai < len(order) || len(deps) > 0 {
		sort.SliceStable(deps, func(i, j int) bool { return deps[i].at < deps[j].at })
		// Departures win ties so a freed slot is visible to a simultaneous
		// arrival, matching the coordinator's depart-then-admit order.
		if len(deps) > 0 && (ai >= len(order) || deps[0].at <= jobs[order[ai]].Arrival) {
			d := deps[0]
			deps = deps[1:]
			if d.at > now {
				now = d.at
			}
			if !q.Depart(d.id) {
				out = append(out, vf(OracleQueue, "admitted job %s missing at departure", d.id))
			}
			departed++
		} else {
			j := jobs[order[ai]]
			ai++
			if j.Arrival > now {
				now = j.Arrival
			}
			if _, err := q.Submit("check", wireJob(j), now); err != nil {
				rejected++
			} else {
				arrival[j.Name] = now
			}
			submitted++
		}
		admitAll()
		if got := q.Depth() + q.Running() + departed + rejected; got != submitted {
			out = append(out, vf(OracleQueue, "job conservation broken: %d pending + %d running + %d departed + %d rejected != %d submitted",
				q.Depth(), q.Running(), departed, rejected, submitted))
		}
		if q.Demand() < -unit.Rate(unit.Eps) {
			out = append(out, vf(OracleQueue, "negative admitted demand %v", q.Demand()))
		}
	}
	if q.Depth() != 0 || q.Running() != 0 {
		out = append(out, vf(OracleQueue, "queue failed to drain: %d pending, %d running", q.Depth(), q.Running()))
	}
	if q.Demand() != 0 {
		out = append(out, vf(OracleQueue, "residual demand %v after drain", q.Demand()))
	}
	return out
}
