package check

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// quickSeeds is the fixed tier-1 seed set: small enough to keep the test
// fast, large enough to cover every generator mode (jobs, ad-hoc DAGs,
// faults, interval cadences) several times over.
var quickSeeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}

// TestCheck_Quick runs every oracle — invariant and differential — over the
// fixed seed set and requires zero violations.
func TestCheck_Quick(t *testing.T) {
	for _, seed := range quickSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			out := RunSeed(seed, Config{})
			for _, v := range out.Violations {
				t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
			}
			if out.Flows == 0 {
				t.Errorf("seed %d generated no flows", seed)
			}
		})
	}
}

// TestCheck_CachedVsCold exercises the PlanCache differential oracle alone:
// warm-cache and no-cache EchelonMADD must produce identical runs.
func TestCheck_CachedVsCold(t *testing.T) {
	for _, seed := range quickSeeds[:8] {
		out := RunSeed(seed, Config{Oracles: []string{OracleCache}})
		for _, v := range out.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
}

// TestCheck_SimVsLive exercises the sim-vs-live differential oracle alone:
// replaying the simulated flow events against a live coordinator must
// reproduce references, tardiness and the initial allocation.
func TestCheck_SimVsLive(t *testing.T) {
	for _, seed := range quickSeeds[:8] {
		out := RunSeed(seed, Config{Oracles: []string{OracleLive}})
		for _, v := range out.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
}

// TestCheck_JournalRestore exercises the crash/Restore differential oracle
// alone: a coordinator killed mid-replay and rebuilt from its journal must
// match the uninterrupted run bit-for-bit.
func TestCheck_JournalRestore(t *testing.T) {
	for _, seed := range quickSeeds[:8] {
		out := RunSeed(seed, Config{Oracles: []string{OracleJournal}})
		for _, v := range out.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
}

// TestCheck_Deterministic pins the harness's reproducibility contract: the
// same seed yields byte-identical scenarios and deep-equal outcomes.
func TestCheck_Deterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 13} {
		a, err := Generate(seed).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: Generate is not deterministic", seed)
		}
		o1 := RunSeed(seed, Config{Oracles: ResultOracles()})
		o2 := RunSeed(seed, Config{Oracles: ResultOracles()})
		if !reflect.DeepEqual(o1, o2) {
			t.Errorf("seed %d: Run is not deterministic: %+v vs %+v", seed, o1, o2)
		}
	}
}

// TestCheck_ScenarioRoundTrip pins the JSON repro format: marshal → parse →
// marshal is the identity.
func TestCheck_ScenarioRoundTrip(t *testing.T) {
	for _, seed := range quickSeeds {
		sc := Generate(seed)
		data, err := sc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		again, err := back.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Errorf("seed %d: round trip not identity:\n%s\nvs\n%s", seed, data, again)
		}
	}
}

// brokenScenario is a hand-written scenario with several flows, used to
// prove the harness catches a deliberately infeasible scheduler.
func brokenScenario() *Scenario {
	sc := &Scenario{
		Hosts: []HostSpec{
			{Name: "a", Egress: 2, Ingress: 2},
			{Name: "b", Egress: 2, Ingress: 2},
			{Name: "c", Egress: 2, Ingress: 2},
		},
	}
	for i := 0; i < 6; i++ {
		src, dst := "a", "b"
		if i%2 == 1 {
			src, dst = "b", "c"
		}
		sc.Nodes = append(sc.Nodes, NodeSpec{
			ID: fmt.Sprintf("f%d", i), Kind: "comm", Src: src, Dst: dst, Size: unit.Bytes(1 + i),
		})
	}
	return sc
}

// TestCheck_ShrinkerFindsMinimalRepro breaks feasibility on purpose — an
// Overdrive scheduler that triples every allocated rate — and requires the
// shrinker to reduce the failing scenario to at most 3 flows (the
// acceptance bound; the true minimum here is a single flow).
func TestCheck_ShrinkerFindsMinimalRepro(t *testing.T) {
	cfg := Config{
		Oracles:   []string{OracleFeasible},
		Scheduler: func() sched.Scheduler { return Overdrive{Inner: sched.Fair{}, Factor: 3} },
	}
	sc := brokenScenario()
	out := Run(sc, cfg)
	if !out.Failed() {
		t.Fatal("overdriven scheduler did not trip the feasibility oracle")
	}
	min := Shrink(sc, cfg, 0)
	mo := Run(min, cfg)
	if !mo.Failed() {
		t.Fatal("shrunk scenario no longer fails")
	}
	if mo.Violations[0].Oracle != OracleFeasible {
		t.Fatalf("shrunk scenario fails a different oracle: %s", mo.Violations[0].Oracle)
	}
	if mo.Flows > 3 {
		t.Errorf("shrunk repro has %d flows, want <= 3", mo.Flows)
	}

	dir := t.TempDir()
	path, err := WriteRepro(dir, 42, min, mo.Violations[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	ro := Run(back, cfg)
	if !ro.Failed() {
		t.Error("reparsed repro no longer fails")
	}
	if filepath.Base(path) != "seed-42.json" {
		t.Errorf("unexpected repro name %s", path)
	}
}

// TestCheck_OracleCatchesOversubscription drives the full generated corpus
// through the broken scheduler: the feasibility oracle must fire for the
// generated scenarios too, not just hand-written ones.
func TestCheck_OracleCatchesOversubscription(t *testing.T) {
	cfg := Config{
		Oracles:   []string{OracleFeasible},
		Scheduler: func() sched.Scheduler { return Overdrive{Inner: sched.Fair{}, Factor: 3} },
	}
	fired := 0
	for _, seed := range quickSeeds[:6] {
		if RunSeed(seed, cfg).Failed() {
			fired++
		}
	}
	if fired == 0 {
		t.Error("feasibility oracle never fired under an oversubscribing scheduler")
	}
}

// TestCheck_DeltaVsFull exercises the delta-vs-full differential oracle
// alone over the full quick seed set (fault schedules included): every
// accepted patch bit-equal to a full pass on replanned groups, stale state
// always refused.
func TestCheck_DeltaVsFull(t *testing.T) {
	for _, seed := range quickSeeds {
		out := RunSeed(seed, Config{Oracles: []string{OracleDelta}})
		for _, v := range out.Violations {
			t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
		}
	}
}

// TestCheck_RejoinRescheduleFailureSurfaces drives the coordinator's public
// API with the Overdrive FailAfter fixture: a crash-recovered group whose
// rejoin reschedule fails must see the error (regression — it used to be
// logged and swallowed) and stay parked until a reschedule succeeds.
func TestCheck_RejoinRescheduleFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	clk := newReplayClock()
	mkOpts := func(budget *int) coordinator.Options {
		net := fabric.NewNetwork()
		net.AddUniformHosts(10, "a", "b")
		return coordinator.Options{
			Net:               net,
			Scheduler:         Overdrive{Inner: canonicalScheduler(), Factor: 1, FailAfter: budget},
			QuarantineTimeout: time.Hour,
			Clock:             clk.now,
			Logf:              t.Logf,
		}
	}
	plenty := 1 << 30
	co, err := coordinator.Restore(mkOpts(&plenty), dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewCoflow("g", &core.Flow{ID: "f", Src: "a", Dst: "b", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.RegisterGroup("check", g); err != nil {
		t.Fatal(err)
	}
	if _, err := co.FlowEvent(wire.FlowEvent{GroupID: "g", FlowID: "f", Event: wire.EventReleased}); err != nil {
		t.Fatal(err)
	}
	co.Close()

	// Replay consumes exactly one reschedule (the release record); the
	// rejoin's reschedule is the second call and fails.
	budget := 1
	co2, err := coordinator.Restore(mkOpts(&budget), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if !co2.GroupParked("g") {
		t.Fatal("recovered group not quarantined")
	}
	if err := co2.RegisterGroup("check", g); err == nil {
		t.Fatal("rejoin with a failing scheduler reported success")
	}
	if !co2.GroupParked("g") {
		t.Error("group unparked although its rejoin reschedule failed")
	}
	budget = 1 << 30
	if err := co2.RegisterGroup("check", g); err != nil {
		t.Fatalf("rejoin after scheduler recovery: %v", err)
	}
	if co2.GroupParked("g") {
		t.Error("group still parked after successful rejoin")
	}
}

// TestCheck_ParseRejectsGarbage pins strict scenario parsing.
func TestCheck_ParseRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"hosts":[]}`,
		`{"hosts":[{"name":"a","egress":1,"ingress":1}],"bogus":1}`,
		`{"hosts":[{"name":"a","egress":0,"ingress":1}]}`,
		`{"hosts":[{"name":"a","egress":1,"ingress":1}],"nodes":[{"id":"x","kind":"comm","src":"a","dst":"zzz"}]}`,
		`{"hosts":[{"name":"a","egress":1,"ingress":1}],"interval_only":true}`,
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse accepted invalid scenario %s", c)
		}
	}
}

// TestCheck_DegradeReconverge exercises the overload-degradation oracle: a
// 10x scheduler slowdown injected over the middle third of the replay must
// leave the coordinator answering from the max-min fallback (feasible, never
// stalled), keep finish/tardiness accounting bit-equal, and re-converge
// bit-for-bit with the never-degraded run once the stall clears. Short mode
// runs the tier-1 slice; the full run sweeps 200 seeds.
func TestCheck_DegradeReconverge(t *testing.T) {
	seeds := make([]uint64, 0, 200)
	if testing.Short() {
		seeds = append(seeds, quickSeeds[:8]...)
	} else {
		for s := uint64(1); s <= 200; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			out := RunSeed(seed, Config{Oracles: []string{OracleDegrade}})
			for _, v := range out.Violations {
				t.Errorf("seed %d: %s: %s", seed, v.Oracle, v.Detail)
			}
		})
	}
}

// TestCheck_JournalSurvivesRepeatedCrashes extends the journal oracle to a
// soak: the coordinator is killed and restored from its journal at six
// points spread across the replay, and the outcome must still match the
// uninterrupted run bit-for-bit (allocations modulo the lawful drift shadow
// of in-flight flows, accounting exactly).
func TestCheck_JournalSurvivesRepeatedCrashes(t *testing.T) {
	const kills = 6
	soaked := 0
	for seed := uint64(1); seed <= 40 && soaked < 3; seed++ {
		c, err := Generate(seed).compile()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		res, err := runSim(c, canonicalScheduler())
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}
		evs := buildReplayEvents(c, res)
		if len(evs) < 2*(kills+1) {
			continue // too few events to place 6 distinct kill points
		}
		soaked++
		golden, err := replayRun(c, res, "", -1)
		if err != nil {
			t.Fatalf("seed %d: golden replay: %v", seed, err)
		}
		crashSet := make(map[int]bool)
		for i := 1; i <= kills; i++ {
			if at := i * len(evs) / (kills + 1); at > 0 {
				crashSet[at] = true
			}
		}
		crashes := make([]int, 0, len(crashSet))
		for at := range crashSet {
			crashes = append(crashes, at)
		}
		sort.Ints(crashes)
		dir := t.TempDir()
		crashed, err := replayRunExt(c, res, dir, crashes, replayHooks{})
		if err != nil {
			t.Fatalf("seed %d: crash replay: %v", seed, err)
		}
		for _, gid := range c.groupIDs() {
			if golden.refs[gid] != crashed.refs[gid] {
				t.Errorf("seed %d: group %s reference: golden %v vs restored %v", seed, gid, golden.refs[gid], crashed.refs[gid])
			}
			if golden.tards[gid] != crashed.tards[gid] {
				t.Errorf("seed %d: group %s tardiness: golden %v vs restored %v", seed, gid, golden.tards[gid], crashed.tards[gid])
			}
		}
		if golden.total != crashed.total {
			t.Errorf("seed %d: total tardiness: golden %v vs restored %v", seed, golden.total, crashed.total)
		}
		// Allocations must agree except where a crash's drift shadow is
		// active: union the per-crash drift sets, skip instants at or after
		// the first kill while any drifted flow is still in flight.
		firstCrash := evs[crashes[0]].at
		drifted := make(map[string]bool)
		for _, at := range crashes {
			for id := range driftedFlows(res, evs[at].at) {
				drifted[id] = true
			}
		}
		times := make([]unit.Time, 0, len(golden.ratesAt))
		for tt := range golden.ratesAt {
			times = append(times, tt)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for _, tt := range times {
			if tt >= firstCrash && driftActiveAt(res, drifted, tt) {
				continue
			}
			if !reflect.DeepEqual(golden.ratesAt[tt], crashed.ratesAt[tt]) {
				t.Errorf("seed %d: allocations at t=%v: golden %v vs restored %v", seed, tt, golden.ratesAt[tt], crashed.ratesAt[tt])
			}
		}
	}
	if soaked < 3 {
		t.Fatalf("only %d scenarios in seeds 1..40 were rich enough to soak; generator drifted?", soaked)
	}
}
