// Package check is the differential testing harness: a seeded scenario
// generator, a library of invariant and differential oracles, and a
// shrinker that minimizes failing scenarios to small reproducers.
//
// A Scenario is a self-contained JSON description of one randomized test
// case: a fabric (hosts with NIC capacities), DDLT training jobs compiled
// through internal/ddlt, optional ad-hoc DAG nodes with explicit
// arrangements, an optional fault schedule (internal/faults), and the
// rescheduling cadence. Everything the harness does — simulation, live
// coordinator replay, journal crash/restore — derives deterministically
// from the scenario, so a failure reproduces from its JSON (or just its
// seed) alone. See DESIGN.md "Reproducing a failure".
package check

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"echelonflow/internal/core"
	"echelonflow/internal/dag"
	"echelonflow/internal/ddlt"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// HostSpec is one fabric host and its NIC capacities.
type HostSpec struct {
	Name    string    `json:"name"`
	Egress  unit.Rate `json:"egress"`
	Ingress unit.Rate `json:"ingress"`
}

// ModelSpec is a uniform model shape for ddlt compilers.
type ModelSpec struct {
	Layers int        `json:"layers"`
	Params unit.Bytes `json:"params"` // per-layer parameter volume
	Acts   unit.Bytes `json:"acts"`   // per-layer activation volume
	Fwd    unit.Time  `json:"fwd"`    // per-layer forward compute time
	Bwd    unit.Time  `json:"bwd"`    // per-layer backward compute time
}

// JobSpec names a DDLT paradigm and its parameters. Paradigm is one of
// "dp" (AllReduce), "ps" (parameter server), "pp" (GPipe), "1f1b",
// "tp" (tensor parallel) or "fsdp".
type JobSpec struct {
	Name       string    `json:"name"`
	Paradigm   string    `json:"paradigm"`
	Model      ModelSpec `json:"model"`
	Workers    []string  `json:"workers"`
	PS         string    `json:"ps,omitempty"`       // ps only: the server host
	AggTime    unit.Time `json:"agg_time,omitempty"` // ps only: per-bucket aggregation
	Buckets    int       `json:"buckets,omitempty"`  // dp/ps: gradient buckets (0 = per layer)
	Micro      int       `json:"micro,omitempty"`    // pp/1f1b: micro-batches
	UpdateTime unit.Time `json:"update_time,omitempty"`
	Prefetch   int       `json:"prefetch,omitempty"` // fsdp: prefetch depth
	Iterations int       `json:"iterations"`
	// Weight scales every group of this job in the weighted Eq. 4
	// objective (0 means 1).
	Weight float64 `json:"weight,omitempty"`
	// Arrival delays the whole job: no node of it may start earlier (the
	// compiler shifts every node's NotBefore by it). It is also the job's
	// submission time in the queue-admission oracle's arrival trace.
	Arrival unit.Time `json:"arrival,omitempty"`
}

// NodeSpec is one ad-hoc DAG node: Kind "compute" or "comm".
type NodeSpec struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Host      string     `json:"host,omitempty"`
	Duration  unit.Time  `json:"duration,omitempty"`
	Src       string     `json:"src,omitempty"`
	Dst       string     `json:"dst,omitempty"`
	Size      unit.Bytes `json:"size,omitempty"`
	Group     string     `json:"group,omitempty"`
	Stage     int        `json:"stage,omitempty"`
	Seq       int        `json:"seq,omitempty"`
	NotBefore unit.Time  `json:"not_before,omitempty"`
	Deps      []string   `json:"deps,omitempty"`
}

// GroupSpec binds an ad-hoc group name to a serialized arrangement.
type GroupSpec struct {
	Name        string    `json:"name"`
	Arrangement core.Spec `json:"arrangement"`
	Weight      float64   `json:"weight,omitempty"`
}

// Scenario is one self-contained test case.
type Scenario struct {
	// Seed records provenance: the generator seed this scenario was drawn
	// from (zero for hand-written or shrunk scenarios whose seed no longer
	// regenerates them).
	Seed  uint64     `json:"seed,omitempty"`
	Hosts []HostSpec `json:"hosts"`
	Jobs  []JobSpec  `json:"jobs,omitempty"`
	// Nodes and Groups describe an ad-hoc workload merged alongside the
	// jobs (the shrinker also lowers jobs into this form to drop
	// individual flows).
	Nodes  []NodeSpec       `json:"nodes,omitempty"`
	Groups []GroupSpec      `json:"groups,omitempty"`
	Faults *faults.Schedule `json:"faults,omitempty"`
	// Interval and IntervalOnly select the rescheduling cadence
	// (sim.Options semantics).
	Interval     unit.Time `json:"interval,omitempty"`
	IntervalOnly bool      `json:"interval_only,omitempty"`
}

// Parse decodes and validates a JSON scenario. Unknown fields are rejected
// so a mistyped repro fails loudly.
func Parse(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("check: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Marshal renders the scenario as indented JSON, the on-disk repro format.
func (sc *Scenario) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("check: marshal scenario: %w", err)
	}
	return append(data, '\n'), nil
}

// Clone deep-copies the scenario via its JSON form.
func (sc *Scenario) Clone() *Scenario {
	data, err := json.Marshal(sc)
	if err != nil {
		panic(fmt.Sprintf("check: clone: %v", err))
	}
	var out Scenario
	if err := json.Unmarshal(data, &out); err != nil {
		panic(fmt.Sprintf("check: clone: %v", err))
	}
	return &out
}

// Validate checks the scenario's shape without compiling it.
func (sc *Scenario) Validate() error {
	if len(sc.Hosts) == 0 {
		return fmt.Errorf("check: scenario has no hosts")
	}
	seen := make(map[string]bool, len(sc.Hosts))
	for _, h := range sc.Hosts {
		if h.Name == "" {
			return fmt.Errorf("check: host with empty name")
		}
		if seen[h.Name] {
			return fmt.Errorf("check: duplicate host %q", h.Name)
		}
		seen[h.Name] = true
		if h.Egress <= 0 || h.Ingress <= 0 {
			return fmt.Errorf("check: host %q needs positive capacities", h.Name)
		}
	}
	for _, j := range sc.Jobs {
		if j.Name == "" {
			return fmt.Errorf("check: job with empty name")
		}
		for _, w := range j.Workers {
			if !seen[w] {
				return fmt.Errorf("check: job %q worker %q not in hosts", j.Name, w)
			}
		}
		if j.PS != "" && !seen[j.PS] {
			return fmt.Errorf("check: job %q PS %q not in hosts", j.Name, j.PS)
		}
		if j.Arrival < 0 {
			return fmt.Errorf("check: job %q has negative arrival %v", j.Name, j.Arrival)
		}
	}
	for _, n := range sc.Nodes {
		switch n.Kind {
		case "compute":
			if !seen[n.Host] {
				return fmt.Errorf("check: compute %q host %q not in hosts", n.ID, n.Host)
			}
		case "comm":
			if !seen[n.Src] || !seen[n.Dst] {
				return fmt.Errorf("check: comm %q endpoints not in hosts", n.ID)
			}
		default:
			return fmt.Errorf("check: node %q has unknown kind %q", n.ID, n.Kind)
		}
	}
	if sc.Faults != nil {
		if err := sc.Faults.Validate(); err != nil {
			return err
		}
	}
	if sc.IntervalOnly && sc.Interval <= 0 {
		return fmt.Errorf("check: interval_only requires a positive interval")
	}
	return nil
}

// compiled is a scenario lowered to simulator inputs. The graph,
// arrangements and fault changes are immutable across runs; each run gets
// its own fabric via newNet (runs mutate capacities).
type compiled struct {
	sc      *Scenario
	graph   *dag.Graph
	arrs    map[string]core.Arrangement
	weights map[string]float64
	caps    []sim.CapacityChange
	dils    []sim.DilationChange
	// wire selects the codec the live-coordinator oracles round-trip every
	// replayed flow event through ("" = apply structs directly). Set from
	// Config.WireCodec by Run.
	wire string
	// fabricFn builds each run's fabric from the scenario's host specs
	// (big-switch by default). Set from Config.Fabric by Run so every
	// simulation and oracle replay in one Run schedules against the same
	// backend.
	fabricFn func(hosts []HostSpec) fabric.Fabric
}

// buildJob compiles one JobSpec through its ddlt paradigm.
func buildJob(j JobSpec) (*ddlt.Workload, error) {
	m := ddlt.Uniform(j.Name, j.Model.Layers, j.Model.Params, j.Model.Acts, j.Model.Fwd, j.Model.Bwd)
	switch j.Paradigm {
	case "dp":
		return ddlt.DPAllReduce{Name: j.Name, Model: m, Workers: j.Workers,
			BucketCount: j.Buckets, Iterations: j.Iterations}.Build()
	case "ps":
		return ddlt.DPParameterServer{Name: j.Name, Model: m, Workers: j.Workers, PS: j.PS,
			BucketCount: j.Buckets, AggTime: j.AggTime, Iterations: j.Iterations}.Build()
	case "pp":
		return ddlt.PipelineGPipe{Name: j.Name, Model: m, Workers: j.Workers,
			MicroBatches: j.Micro, UpdateTime: j.UpdateTime, Iterations: j.Iterations}.Build()
	case "1f1b":
		return ddlt.Pipeline1F1B{Name: j.Name, Model: m, Workers: j.Workers,
			MicroBatches: j.Micro, UpdateTime: j.UpdateTime, Iterations: j.Iterations}.Build()
	case "tp":
		return ddlt.TensorParallel{Name: j.Name, Model: m, Workers: j.Workers,
			Iterations: j.Iterations}.Build()
	case "fsdp":
		return ddlt.FSDP{Name: j.Name, Model: m, Workers: j.Workers,
			PrefetchDepth: j.Prefetch, Iterations: j.Iterations}.Build()
	default:
		return nil, fmt.Errorf("check: job %q has unknown paradigm %q", j.Name, j.Paradigm)
	}
}

// adhocWorkload lowers the scenario's explicit nodes and groups.
func (sc *Scenario) adhocWorkload() (*ddlt.Workload, error) {
	w := &ddlt.Workload{Graph: dag.New(), Arrangements: make(map[string]core.Arrangement)}
	for _, g := range sc.Groups {
		arr, err := g.Arrangement.Build()
		if err != nil {
			return nil, fmt.Errorf("check: group %q: %w", g.Name, err)
		}
		w.Arrangements[g.Name] = arr
	}
	for _, n := range sc.Nodes {
		node := &dag.Node{
			ID: n.ID, Host: n.Host, Duration: n.Duration,
			Src: n.Src, Dst: n.Dst, Size: n.Size,
			Group: n.Group, Stage: n.Stage, Seq: n.Seq, NotBefore: n.NotBefore,
		}
		if n.Kind == "compute" {
			node.Kind = dag.Compute
		} else {
			node.Kind = dag.Comm
		}
		if err := w.Graph.Add(node); err != nil {
			return nil, fmt.Errorf("check: %w", err)
		}
		if n.Group != "" {
			if _, ok := w.Arrangements[n.Group]; !ok {
				return nil, fmt.Errorf("check: comm %q references undeclared group %q", n.ID, n.Group)
			}
		}
	}
	for _, n := range sc.Nodes {
		for _, d := range n.Deps {
			if err := w.Graph.Depend(d, n.ID); err != nil {
				return nil, fmt.Errorf("check: %w", err)
			}
		}
	}
	return w, nil
}

// compile lowers the scenario: jobs and ad-hoc nodes merge into one graph,
// per-group weights are resolved, and the fault schedule becomes capacity
// changes and dilations against the baseline fabric.
func (sc *Scenario) compile() (*compiled, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var parts []*ddlt.Workload
	weights := make(map[string]float64)
	for _, j := range sc.Jobs {
		w, err := buildJob(j)
		if err != nil {
			return nil, err
		}
		// An arriving job's nodes may not start before it arrives; shifting
		// NotBefore here (before the merge) turns the static graph into an
		// arrival-timed trace the ordering oracle checks like any other gate.
		if j.Arrival > 0 {
			for _, n := range w.Graph.Nodes() {
				n.NotBefore += j.Arrival
			}
		}
		if j.Weight > 0 {
			for g := range w.Arrangements {
				weights[g] = j.Weight
			}
		}
		parts = append(parts, w)
	}
	if len(sc.Nodes) > 0 || len(sc.Groups) > 0 {
		w, err := sc.adhocWorkload()
		if err != nil {
			return nil, err
		}
		for _, g := range sc.Groups {
			if g.Weight > 0 {
				weights[g.Name] = g.Weight
			}
		}
		parts = append(parts, w)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("check: scenario has neither jobs nor nodes")
	}
	merged, err := ddlt.Merge(parts...)
	if err != nil {
		return nil, err
	}
	c := &compiled{sc: sc, graph: merged.Graph, arrs: merged.Arrangements, weights: weights}
	c.fabricFn = func(hosts []HostSpec) fabric.Fabric { return newNet(hosts) }
	if !sc.Faults.Empty() {
		caps, dils, err := faults.CompileSim(sc.Faults, c.newNet())
		if err != nil {
			return nil, err
		}
		c.caps, c.dils = caps, dils
	}
	return c, nil
}

// newNet builds a fresh baseline fabric for one run, via the configured
// backend builder (big-switch by default; Config.Fabric overrides it).
func (c *compiled) newNet() fabric.Fabric {
	if c.fabricFn == nil {
		return newNet(c.sc.Hosts)
	}
	return c.fabricFn(c.sc.Hosts)
}

func newNet(hosts []HostSpec) *fabric.Network {
	net := fabric.NewNetwork()
	for _, h := range hosts {
		if err := net.AddHost(h.Name, h.Egress, h.Ingress); err != nil {
			panic(fmt.Sprintf("check: %v", err)) // Validate guarantees this cannot happen
		}
	}
	return net
}

// simOptions assembles one run's simulator options around a fresh fabric.
func (c *compiled) simOptions(s sched.Scheduler) (sim.Options, fabric.Fabric) {
	net := c.newNet()
	return sim.Options{
		Graph:           c.graph,
		Net:             net,
		Scheduler:       s,
		Arrangements:    c.arrs,
		Weights:         c.weights,
		Interval:        c.sc.Interval,
		IntervalOnly:    c.sc.IntervalOnly,
		RecordRates:     true,
		CapacityChanges: append([]sim.CapacityChange(nil), c.caps...),
		Dilations:       append([]sim.DilationChange(nil), c.dils...),
	}, net
}

// commNodes returns the scenario's comm nodes in graph order.
func (c *compiled) commNodes() []*dag.Node {
	var out []*dag.Node
	for _, n := range c.graph.Nodes() {
		if n.Kind == dag.Comm {
			out = append(out, n)
		}
	}
	return out
}

// groupIDs returns every group name a run will produce (including the
// synthetic "flow:<id>" singletons for ungrouped comm nodes), sorted.
func (c *compiled) groupIDs() []string {
	seen := make(map[string]bool)
	for _, n := range c.commNodes() {
		gid := n.Group
		if gid == "" {
			gid = "flow:" + n.ID
		}
		seen[gid] = true
	}
	out := make([]string, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
