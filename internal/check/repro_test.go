package check

import (
	"os"
	"path/filepath"
	"testing"

	"echelonflow/internal/fabric"
)

// bindingLeafSpine builds the same two-hosts-per-leaf, two-spine, 2:1
// oversubscribed Clos the nightly leafspine matrix runs, so checked-in
// repros replay against genuinely binding interior links.
func bindingLeafSpine(hosts []HostSpec) fabric.Fabric {
	spec, err := fabric.ParseSpec("leafspine:hosts=2,spines=2,oversub=2")
	if err != nil {
		panic(err)
	}
	caps := make([]fabric.HostCap, 0, len(hosts))
	for _, h := range hosts {
		caps = append(caps, fabric.HostCap{Name: h.Name, Egress: h.Egress, Ingress: h.Ingress})
	}
	f, err := spec.Build(caps)
	if err != nil {
		panic(err)
	}
	return f
}

// TestCheckedInRepros replays every shrunk failure checked into
// testdata/repros under all oracles, every wire codec, and both fabric
// backends. Each file is the minimal scenario for a bug the harness once
// caught (seeds 111 and 197: sub-byte flow sizes scheduled against the
// coordinator's 1-byte remaining floor, diverging live rates from the
// simulator at t=0; seed 110: a NIC degrade compacted out of the journal
// tail, so the restored coordinator planned against construction-time
// capacities — binding only on the leaf-spine replay); a regression would
// re-fire its oracle here.
func TestCheckedInRepros(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "repros")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read repro dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("no repros found in %s", dir)
	}
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sc, err := ParseRepro(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		for _, codec := range []string{"direct", "json", "binary"} {
			t.Run(name+"/"+codec, func(t *testing.T) {
				out := Run(sc, Config{WireCodec: codec})
				for _, v := range out.Violations {
					t.Errorf("oracle %s fired: %s", v.Oracle, v.Detail)
				}
			})
		}
		t.Run(name+"/leafspine", func(t *testing.T) {
			out := Run(sc, Config{Fabric: bindingLeafSpine})
			for _, v := range out.Violations {
				t.Errorf("oracle %s fired: %s", v.Oracle, v.Detail)
			}
		})
	}
}
