package check

import (
	"fmt"
	"reflect"
	"testing"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// nonBindingLeafSpine attaches every scenario host to its own leaf of a
// single-spine Clos whose interior links are effectively infinite. With one
// host per leaf, each uplink carries exactly the flows of that host's egress
// NIC (and each downlink those of the ingress NIC), so the extra links add
// no breakpoints and never bind — planning must be bit-identical to the
// big-switch model.
func nonBindingLeafSpine(hosts []HostSpec) fabric.Fabric {
	ls, err := fabric.NewLeafSpine(1)
	if err != nil {
		panic(err)
	}
	for _, h := range hosts {
		leaf := "L-" + h.Name
		if err := ls.AddLeaf(leaf, unit.Rate(1e300), unit.Rate(1e300)); err != nil {
			panic(err)
		}
		if err := ls.AddHost(h.Name, leaf, h.Egress, h.Ingress); err != nil {
			panic(err)
		}
	}
	return ls
}

// sixParadigmScenario runs one job of every DDLT paradigm concurrently on a
// shared six-host fabric, so the equivalence claim covers each paradigm's
// traffic pattern under contention.
func sixParadigmScenario() *Scenario {
	sc := &Scenario{}
	for i := 0; i < 6; i++ {
		sc.Hosts = append(sc.Hosts, HostSpec{Name: fmt.Sprintf("h%d", i), Egress: 4, Ingress: 4})
	}
	model := ModelSpec{Layers: 4, Params: 2, Acts: 0.8, Fwd: 0.2, Bwd: 0.3}
	mk := func(name, paradigm string, workers ...string) JobSpec {
		return JobSpec{Name: name, Paradigm: paradigm, Model: model, Workers: workers, Iterations: 2}
	}
	dp := mk("jdp", "dp", "h0", "h1", "h2")
	dp.Buckets = 2
	ps := mk("jps", "ps", "h3", "h4")
	ps.PS = "h5"
	ps.AggTime = 0.1
	pp := mk("jpp", "pp", "h0", "h3")
	pp.Micro = 3
	pp.UpdateTime = 0.1
	ob := mk("j1f", "1f1b", "h1", "h4")
	ob.Micro = 3
	ob.UpdateTime = 0.1
	tp := mk("jtp", "tp", "h2", "h5")
	fs := mk("jfs", "fsdp", "h0", "h5")
	fs.Prefetch = 1
	sc.Jobs = []JobSpec{dp, ps, pp, ob, tp, fs}
	return sc
}

// TestLeafSpineNonBindingBitIdentical is the cross-backend equivalence
// property of the fabric generalization: on a leaf-spine whose interior
// links never bind, the canonical scheduler must reproduce the big-switch
// simulation bit for bit — every rate segment, flow finish, and the
// makespan — across all six DDLT paradigms.
func TestLeafSpineNonBindingBitIdentical(t *testing.T) {
	sc := sixParadigmScenario()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func(fab func([]HostSpec) fabric.Fabric) *Outcome {
		return Run(sc, Config{Oracles: []string{OracleFeasible, OracleConserve}, Fabric: fab})
	}
	big := run(nil)
	leaf := run(nonBindingLeafSpine)
	for _, o := range []*Outcome{big, leaf} {
		for _, v := range o.Violations {
			t.Errorf("violation: %v", v)
		}
	}
	if big.Makespan != leaf.Makespan {
		t.Errorf("makespan differs: bigswitch %v vs leafspine %v", big.Makespan, leaf.Makespan)
	}
}

// TestLeafSpineNonBindingRatesBitIdentical compares the raw per-flow rate
// timelines of the two backends on random generated scenarios (all six
// paradigms appear across the seed range).
func TestLeafSpineNonBindingRatesBitIdentical(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		sc := Generate(uint64(seed))
		if !sc.Faults.Empty() {
			// Fault schedules mutate NICs only; they are covered by the
			// nightly matrix. Keep this property about pure planning.
			sc.Faults = nil
		}
		c, err := sc.compile()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		resBig, err := runSim(c, canonicalScheduler())
		if err != nil {
			t.Fatalf("seed %d: bigswitch sim: %v", seed, err)
		}
		c.fabricFn = nonBindingLeafSpine
		resLeaf, err := runSim(c, canonicalScheduler())
		if err != nil {
			t.Fatalf("seed %d: leafspine sim: %v", seed, err)
		}
		if resBig.Makespan != resLeaf.Makespan {
			t.Errorf("seed %d: makespan %v vs %v", seed, resBig.Makespan, resLeaf.Makespan)
		}
		if !reflect.DeepEqual(resBig.Rates, resLeaf.Rates) {
			t.Errorf("seed %d: rate timelines diverge between backends", seed)
		}
	}
}
