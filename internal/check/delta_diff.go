package check

import (
	"sort"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

// deltaViolationCap bounds how many violations one scenario reports: a
// diverged trajectory compounds at every later event, and the shrinker only
// needs the first few to minimize.
const deltaViolationCap = 16

// diffDelta is the delta-vs-full differential oracle. It drives the
// simulated run's event script through a standalone fluid model (the same
// assembly discipline as the coordinator: sorted groups, arrangement-order
// flows, remaining floored at 1) and, at every flow event, asks the
// incremental scheduler for a patch while an independent full EchelonMADD
// solves the identical snapshot. The contract proven per event:
//
//   - an accepted patch is bit-equal to the full pass for every flow of a
//     replanned group, holds every other flow at exactly its in-force rate,
//     covers every snapshot flow, and is feasible on the live fabric;
//   - a refused patch falls back to a full pass that must bit-equal the
//     independent reference (full-vs-full determinism);
//   - after a capacity change the patch MUST be refused — the incremental
//     state is stale by construction.
//
// Held flows are deliberately NOT compared against the full pass: a full
// Schedule may lawfully re-pace an untouched group (backfill redistributes
// freed capacity), while the delta contract freezes it until its own next
// event or a full reschedule. That divergence is semantic, not a bug, and
// DESIGN.md documents it.
func diffDelta(c *compiled, res *sim.Result) []Violation {
	groups, err := buildGroups(c)
	if err != nil {
		return []Violation{vf(OracleDelta, "build groups: %v", err)}
	}
	net := c.newNet()
	deltaS := sched.NewDelta(sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()})
	fullS := sched.EchelonMADD{Backfill: true, Cache: sched.NewPlanCache()}

	type dfFlow struct {
		flow               *core.Flow
		released, finished bool
		remaining          unit.Bytes
		release            unit.Time
		rate               unit.Rate
	}
	type dfGroup struct {
		state  *sched.GroupState
		refSet bool
		flows  map[string]*dfFlow
	}
	gs := make(map[string]*dfGroup, len(groups))
	gids := make([]string, 0, len(groups))
	for _, g := range groups {
		dg := &dfGroup{state: &sched.GroupState{Group: g}, flows: make(map[string]*dfFlow, len(g.Flows))}
		for _, f := range g.Flows {
			dg.flows[f.ID] = &dfFlow{flow: f, remaining: f.Size}
		}
		gs[g.ID] = dg
		gids = append(gids, g.ID)
	}
	sort.Strings(gids)

	buildSnap := func(now unit.Time) *sched.Snapshot {
		snap := &sched.Snapshot{Now: now, Groups: make(map[string]*sched.GroupState, len(gs))}
		for _, gid := range gids {
			dg := gs[gid]
			snap.Groups[gid] = dg.state
			for _, member := range dg.state.Group.Flows {
				f := dg.flows[member.ID]
				if !f.released || f.finished {
					continue
				}
				remaining := f.remaining
				if remaining < 1 {
					remaining = 1
				}
				snap.Flows = append(snap.Flows, &sched.FlowState{
					Flow: f.flow, GroupID: gid, Remaining: remaining, Release: f.release,
				})
			}
		}
		return snap
	}
	commit := func(snap *sched.Snapshot, rates map[string]unit.Rate) {
		for _, fs := range snap.Flows {
			gs[fs.GroupID].flows[fs.Flow.ID].rate = rates[fs.Flow.ID]
		}
	}

	var out []Violation
	var last unit.Time
	for _, ev := range buildReplayEvents(c, res) {
		if len(out) >= deltaViolationCap {
			return out
		}
		if dt := ev.at - last; dt > 0 {
			for _, dg := range gs {
				for _, f := range dg.flows {
					if f.released && !f.finished {
						f.remaining -= f.rate.Over(dt)
						if f.remaining < 0 {
							f.remaining = 0
						}
					}
				}
			}
		}
		last = ev.at

		if ev.kind == 0 { // fabric capacity change
			if err := net.SetCapacity(ev.host, ev.eg, ev.in); err != nil {
				return append(out, vf(OracleDelta, "capacity at t=%v: %v", ev.at, err))
			}
			snap := buildSnap(ev.at)
			if _, ok, err := deltaS.Apply(snap, net, sched.Delta{Groups: nil}); err != nil {
				out = append(out, vf(OracleDelta, "apply across capacity change at t=%v: %v", ev.at, err))
			} else if ok {
				out = append(out, vf(OracleDelta, "patch accepted across a capacity change at t=%v", ev.at))
			}
			rates, err := deltaS.Schedule(snap, net)
			if err != nil {
				return append(out, vf(OracleDelta, "full pass after capacity change at t=%v: %v", ev.at, err))
			}
			commit(snap, rates)
			continue
		}

		dg := gs[ev.gid]
		f := dg.flows[ev.fid]
		if ev.kind == 1 { // released
			f.released = true
			f.release = ev.at
			if !dg.refSet {
				dg.refSet = true
				dg.state.Reference = ev.at
			}
		} else { // finished
			f.finished = true
			f.remaining = 0
			deadline := dg.state.Group.Arrangement.Deadline(f.flow.Stage, dg.state.Reference)
			if tard := ev.at - deadline; tard > dg.state.AchievedTardiness {
				dg.state.AchievedTardiness = tard
			}
		}
		deltaS.PlanCache().InvalidateGroup(ev.gid)
		fullS.Cache.InvalidateGroup(ev.gid)

		snap := buildSnap(ev.at)
		full, err := fullS.Schedule(snap, net)
		if err != nil {
			return append(out, vf(OracleDelta, "reference full pass at t=%v: %v", ev.at, err))
		}
		patch, ok, err := deltaS.Apply(snap, net, sched.Delta{Groups: []string{ev.gid}})
		if err != nil {
			return append(out, vf(OracleDelta, "apply at t=%v: %v", ev.at, err))
		}
		if !ok {
			rates, err := deltaS.Schedule(snap, net)
			if err != nil {
				return append(out, vf(OracleDelta, "fallback full pass at t=%v: %v", ev.at, err))
			}
			for _, fs := range snap.Flows {
				if rates[fs.Flow.ID] != full[fs.Flow.ID] {
					out = append(out, vf(OracleDelta, "fallback flow %s at t=%v: %v vs reference %v",
						fs.Flow.ID, ev.at, rates[fs.Flow.ID], full[fs.Flow.ID]))
				}
			}
			commit(snap, rates)
			continue
		}

		outcome := deltaS.LastOutcome()
		replanned := make(map[string]bool, len(outcome.Replanned))
		for _, id := range outcome.Replanned {
			replanned[id] = true
		}
		if !replanned[ev.gid] && len(snap.Flows) > 0 {
			// The event's own group must be replanned whenever it still has
			// active flows; a vanished group (last flow finished) may not.
			if flows := byGroupActive(snap, ev.gid); flows > 0 {
				out = append(out, vf(OracleDelta, "patch at t=%v did not replan the event's group %s", ev.at, ev.gid))
			}
		}
		for _, fs := range snap.Flows {
			r, present := patch[fs.Flow.ID]
			if !present {
				out = append(out, vf(OracleDelta, "patch at t=%v misses flow %s", ev.at, fs.Flow.ID))
				continue
			}
			if replanned[fs.GroupID] {
				if r != full[fs.Flow.ID] {
					out = append(out, vf(OracleDelta, "replanned flow %s at t=%v: patch %v vs full %v",
						fs.Flow.ID, ev.at, r, full[fs.Flow.ID]))
				}
			} else if held := gs[fs.GroupID].flows[fs.Flow.ID].rate; r != held {
				out = append(out, vf(OracleDelta, "held flow %s at t=%v: patch %v vs in-force %v",
					fs.Flow.ID, ev.at, r, held))
			}
		}
		reqs := make([]fabric.Request, len(snap.Flows))
		for i, fs := range snap.Flows {
			reqs[i] = fabric.Request{ID: fs.Flow.ID, Src: fs.Flow.Src, Dst: fs.Flow.Dst}
		}
		if err := net.Feasible(reqs, patch); err != nil {
			out = append(out, vf(OracleDelta, "patch infeasible at t=%v: %v", ev.at, err))
		}
		commit(snap, patch)
	}
	return out
}

// byGroupActive counts the snapshot's active flows belonging to one group.
func byGroupActive(snap *sched.Snapshot, gid string) int {
	n := 0
	for _, fs := range snap.Flows {
		if fs.GroupID == gid {
			n++
		}
	}
	return n
}
