package fabric

import (
	"fmt"

	"echelonflow/internal/unit"
)

// Rack is an optional second tier of the fabric: hosts assigned to a rack
// share its uplink (rack→core) and downlink (core→rack) capacity. With no
// racks defined the network is the pure big switch of the Coflow
// literature; with racks it models the oversubscribed leaf-spine fabrics of
// real GPU clusters, where cross-rack bandwidth is scarcer than NIC
// bandwidth.
type Rack struct {
	Name     string
	Uplink   unit.Rate // traffic leaving the rack
	Downlink unit.Rate // traffic entering the rack
}

// AddRack registers a rack.
func (n *Network) AddRack(name string, uplink, downlink unit.Rate) error {
	if name == "" {
		return fmt.Errorf("fabric: rack must have a name")
	}
	if uplink < 0 || downlink < 0 {
		return fmt.Errorf("fabric: rack %q has negative capacity", name)
	}
	if n.racks == nil {
		n.racks = make(map[string]*Rack)
	}
	if _, dup := n.racks[name]; dup {
		return fmt.Errorf("fabric: duplicate rack %q", name)
	}
	n.racks[name] = &Rack{Name: name, Uplink: uplink, Downlink: downlink}
	n.rackNames = append(n.rackNames, name)
	n.gen++
	n.topoGen++
	return nil
}

// AssignRack places a host in a rack. A host belongs to at most one rack.
func (n *Network) AssignRack(host, rack string) error {
	if n.hosts[host] == nil {
		return fmt.Errorf("fabric: unknown host %q", host)
	}
	if n.racks[rack] == nil {
		return fmt.Errorf("fabric: unknown rack %q", rack)
	}
	if n.rackOf == nil {
		n.rackOf = make(map[string]string)
	}
	if existing, ok := n.rackOf[host]; ok {
		return fmt.Errorf("fabric: host %q already in rack %q", host, existing)
	}
	n.rackOf[host] = rack
	n.gen++
	n.topoGen++
	return nil
}

// ReassignRack moves a host to a (possibly different) rack, unlike
// AssignRack which refuses hosts that already have one. Re-placement sweeps
// (E16) use it to compare rack layouts on one fabric. A real move bumps the
// topology generation, so plan caches, pooled port profiles, and delta
// scheduler state keyed on TopoGeneration are discarded; a no-op move (same
// rack) mutates nothing.
func (n *Network) ReassignRack(host, rack string) error {
	if n.hosts[host] == nil {
		return fmt.Errorf("fabric: unknown host %q", host)
	}
	if n.racks[rack] == nil {
		return fmt.Errorf("fabric: unknown rack %q", rack)
	}
	if n.rackOf == nil {
		n.rackOf = make(map[string]string)
	}
	if n.rackOf[host] == rack {
		return nil
	}
	n.rackOf[host] = rack
	n.gen++
	n.topoGen++
	return nil
}

// Rack returns the named rack, or nil.
func (n *Network) Rack(name string) *Rack { return n.racks[name] }

// RackOf returns the rack a host belongs to, or "" for rackless hosts.
func (n *Network) RackOf(host string) string { return n.rackOf[host] }

// Racks returns all racks in registration order.
func (n *Network) Racks() []*Rack {
	out := make([]*Rack, 0, len(n.rackNames))
	for _, name := range n.rackNames {
		out = append(out, n.racks[name])
	}
	return out
}

// SetRackCapacity changes a rack's capacities (degradation/recovery).
func (n *Network) SetRackCapacity(name string, uplink, downlink unit.Rate) error {
	r := n.racks[name]
	if r == nil {
		return fmt.Errorf("fabric: unknown rack %q", name)
	}
	if uplink < 0 || downlink < 0 {
		return fmt.Errorf("fabric: rack %q given negative capacity", name)
	}
	r.Uplink, r.Downlink = uplink, downlink
	n.gen++
	return nil
}

// CrossRack reports whether a flow crosses rack boundaries, and the racks
// involved ("" when an endpoint is rackless, which never constrains).
func (n *Network) CrossRack(src, dst string) (srcRack, dstRack string, crosses bool) {
	srcRack, dstRack = n.rackOf[src], n.rackOf[dst]
	// Intra-rack traffic does not touch the uplinks.
	if srcRack != "" && srcRack == dstRack {
		return "", "", false
	}
	return srcRack, dstRack, srcRack != "" || dstRack != ""
}
