package fabric

import (
	"fmt"

	"echelonflow/internal/unit"
)

// LinkKind classifies one direction of one capacity pool in a fabric. The
// kinds are distinct namespaces: an egress link named "h0" and an ingress
// link named "h0" are different pools.
type LinkKind uint8

const (
	// LinkEgress is a host's outbound NIC (name = host).
	LinkEgress LinkKind = iota
	// LinkIngress is a host's inbound NIC (name = host).
	LinkIngress
	// LinkUp carries traffic from a leaf/rack toward the core (name = rack,
	// or "leaf/spine" for a per-spine leaf-spine uplink).
	LinkUp
	// LinkDown carries traffic from the core toward a leaf/rack.
	LinkDown
	// LinkCore is any interior hop a multi-tier backend defines beyond the
	// four classic kinds.
	LinkCore
)

// String names the kind for error messages and traces.
func (k LinkKind) String() string {
	switch k {
	case LinkEgress:
		return "egress"
	case LinkIngress:
		return "ingress"
	case LinkUp:
		return "uplink"
	case LinkDown:
		return "downlink"
	case LinkCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// LinkKey identifies one link. Two flows interact in scheduling exactly when
// they share a key, which is what makes the delta scheduler's port-footprint
// closure exact on every backend.
type LinkKey struct {
	Kind LinkKind
	Name string
}

// String formats a key for error messages.
func (k LinkKey) String() string { return k.Kind.String() + ":" + k.Name }

// Link is a key with its current capacity.
type Link struct {
	Key      LinkKey
	Capacity unit.Rate
}

// Fabric is the scheduling abstraction over a network model: hosts with
// addressable port capacities, plus the full set of capacity-constrained
// links and the per-flow path over them. The big-switch Network, the
// leaf-spine backend, and the external-timing backend all implement it.
//
// Contract: FlowLinks must be deterministic in (src, dst, topology) and must
// return every link a src→dst flow consumes capacity on, host NICs included,
// in a stable order. Links must enumerate every link FlowLinks can return,
// in a deterministic order, grouped so that all LinkEgress keys precede all
// LinkIngress keys (Feasible reports violations in Links order). Generation
// must change on every capacity or topology mutation and TopoGeneration on
// every topology mutation, so schedulers can key caches on them.
type Fabric interface {
	// Generation counts every mutation (topology or capacity).
	Generation() uint64
	// TopoGeneration counts only topology mutations.
	TopoGeneration() uint64
	// Host returns the named host, or nil.
	Host(name string) *Host
	// Hosts returns all hosts in a deterministic (insertion) order.
	Hosts() []*Host
	// Len returns the number of hosts.
	Len() int
	// Capacity reports a host's NIC capacities; ok is false for unknown hosts.
	Capacity(name string) (egress, ingress unit.Rate, ok bool)
	// SetCapacity rewrites a host's NIC capacities (faults, recovery).
	SetCapacity(name string, egress, ingress unit.Rate) error
	// RackOf names the rack/leaf a host belongs to, or "" when untiered.
	RackOf(host string) string
	// FlowLinks appends the links a src→dst flow traverses to buf and
	// returns it. Callers reuse buf across calls to keep hot paths
	// allocation-free.
	FlowLinks(src, dst string, buf []LinkKey) []LinkKey
	// LinkCapacity returns a link's current capacity (0 for unknown keys).
	LinkCapacity(k LinkKey) unit.Rate
	// Links enumerates every capacity-constrained link.
	Links() []Link
	// Feasible verifies per-flow rates respect every link's capacity.
	Feasible(reqs []Request, rates map[string]unit.Rate) error
	// GreedyFill allocates requests strictly in order against residuals.
	GreedyFill(reqs []Request) (map[string]unit.Rate, error)
	// MaxMin computes the max-min fair allocation via progressive filling.
	MaxMin(reqs []Request) (map[string]unit.Rate, error)
	// BottleneckTime is the most loaded link's volume over capacity (Varys'
	// Γ), the minimum time to ship the volumes.
	BottleneckTime(vols []VolumeDemand) (unit.Time, error)
	// NewResidual snapshots full link capacities for an allocation pass.
	NewResidual() *Residual
}

// checkEndpointsOf verifies both endpoints of every request exist and differ.
func checkEndpointsOf(f Fabric, reqs []Request) error {
	for _, r := range reqs {
		if f.Host(r.Src) == nil {
			return fmt.Errorf("fabric: request %q: unknown src host %q", r.ID, r.Src)
		}
		if f.Host(r.Dst) == nil {
			return fmt.Errorf("fabric: request %q: unknown dst host %q", r.ID, r.Dst)
		}
		if r.Src == r.Dst {
			return fmt.Errorf("fabric: request %q: src == dst (%s)", r.ID, r.Src)
		}
	}
	return nil
}

// oversubscribedError phrases a link violation the way the big-switch model
// always has, so shrunk repros and tests keep their messages.
func oversubscribedError(k LinkKey, used, cap unit.Rate) error {
	switch k.Kind {
	case LinkEgress:
		return fmt.Errorf("fabric: egress of %q oversubscribed: %v > %v", k.Name, used, cap)
	case LinkIngress:
		return fmt.Errorf("fabric: ingress of %q oversubscribed: %v > %v", k.Name, used, cap)
	case LinkUp:
		return fmt.Errorf("fabric: uplink of rack %q oversubscribed: %v > %v", k.Name, used, cap)
	case LinkDown:
		return fmt.Errorf("fabric: downlink of rack %q oversubscribed: %v > %v", k.Name, used, cap)
	default:
		return fmt.Errorf("fabric: link %q oversubscribed: %v > %v", k, used, cap)
	}
}

// feasibleLinks is the shared Feasible implementation: accumulate per-link
// usage in request order, then check links in the backend's canonical Links
// order (deterministic, egress first — matching the historical big-switch
// check order).
func feasibleLinks(f Fabric, reqs []Request, rates map[string]unit.Rate) error {
	if err := checkEndpointsOf(f, reqs); err != nil {
		return err
	}
	used := make(map[LinkKey]unit.Rate, 2*len(reqs))
	var buf []LinkKey
	for _, r := range reqs {
		rt := rates[r.ID]
		if rt < 0 {
			return fmt.Errorf("fabric: flow %q has negative rate %v", r.ID, rt)
		}
		buf = f.FlowLinks(r.Src, r.Dst, buf[:0])
		for _, k := range buf {
			used[k] += rt
		}
	}
	const tol = 1e-6
	for _, l := range f.Links() {
		if u, ok := used[l.Key]; ok && float64(u) > float64(l.Capacity)+tol {
			return oversubscribedError(l.Key, u, l.Capacity)
		}
	}
	return nil
}

// greedyFillLinks is the shared GreedyFill implementation.
func greedyFillLinks(f Fabric, reqs []Request) (map[string]unit.Rate, error) {
	if err := checkEndpointsOf(f, reqs); err != nil {
		return nil, err
	}
	res := f.NewResidual()
	rates := make(map[string]unit.Rate, len(reqs))
	for _, r := range reqs {
		rate := unit.MinRate(res.Available(r.Src, r.Dst), r.capOrInf())
		rates[r.ID] = rate
		res.Take(r.Src, r.Dst, rate)
	}
	return rates, nil
}

// maxMinLinks is the shared MaxMin implementation: progressive filling over
// the per-link residuals. See Network.MaxMin for the algorithm narrative;
// this is the same arithmetic with the four kind-specific maps folded into
// one link-keyed map, which leaves every share, freeze and take bit-equal on
// the big switch.
func maxMinLinks(f Fabric, reqs []Request) (map[string]unit.Rate, error) {
	if err := checkEndpointsOf(f, reqs); err != nil {
		return nil, err
	}
	rates := make(map[string]unit.Rate, len(reqs))
	frozen := make(map[string]bool, len(reqs))
	res := f.NewResidual()

	// Per-request link lists, computed once.
	links := make([][]LinkKey, len(reqs))
	for i, r := range reqs {
		links[i] = f.FlowLinks(r.Src, r.Dst, nil)
	}

	remaining := len(reqs)
	for remaining > 0 {
		// Count unfrozen flows per link.
		count := make(map[LinkKey]int)
		for i, r := range reqs {
			if frozen[r.ID] {
				continue
			}
			for _, k := range links[i] {
				count[k]++
			}
		}
		// The bottleneck share is the minimum per-flow share over all links.
		share := unit.Rate(1e300)
		for k, c := range count {
			if s := res.free[k] / unit.Rate(c); s < share {
				share = s
			}
		}
		// Any flow capped below the bottleneck share freezes at its cap.
		minCap := unit.Rate(1e300)
		for _, r := range reqs {
			if !frozen[r.ID] && r.capOrInf() < minCap {
				minCap = r.capOrInf()
			}
		}
		if minCap < share {
			for _, r := range reqs {
				if frozen[r.ID] || r.capOrInf() != minCap {
					continue
				}
				rates[r.ID] = minCap
				res.Take(r.Src, r.Dst, minCap)
				frozen[r.ID] = true
				remaining--
			}
			continue
		}
		// Identify the bottleneck links from the pre-iteration residuals,
		// then freeze every unfrozen flow crossing one of them at the share.
		// (Deciding and taking in one pass would let intra-pass residual
		// updates freeze non-bottlenecked flows prematurely.)
		bottleneck := make(map[LinkKey]bool)
		tol := unit.Rate(unit.Eps) * unit.MaxRate(1, share)
		for k, c := range count {
			if res.free[k]/unit.Rate(c) <= share+tol {
				bottleneck[k] = true
			}
		}
		progressed := false
		for i, r := range reqs {
			if frozen[r.ID] {
				continue
			}
			onBottleneck := false
			for _, k := range links[i] {
				if bottleneck[k] {
					onBottleneck = true
					break
				}
			}
			if onBottleneck {
				rates[r.ID] = share
				res.Take(r.Src, r.Dst, share)
				frozen[r.ID] = true
				remaining--
				progressed = true
			}
		}
		if !progressed {
			// Should be unreachable; guard against float pathologies.
			for _, r := range reqs {
				if !frozen[r.ID] {
					rates[r.ID] = share
					res.Take(r.Src, r.Dst, share)
					frozen[r.ID] = true
					remaining--
				}
			}
		}
	}
	return rates, nil
}

// bottleneckTimeLinks is the shared BottleneckTime implementation.
func bottleneckTimeLinks(f Fabric, vols []VolumeDemand) (unit.Time, error) {
	acc := make(map[LinkKey]unit.Bytes, 2*len(vols))
	var buf []LinkKey
	for _, v := range vols {
		if f.Host(v.Src) == nil || f.Host(v.Dst) == nil {
			return 0, fmt.Errorf("fabric: volume demand references unknown host (%s→%s)", v.Src, v.Dst)
		}
		buf = f.FlowLinks(v.Src, v.Dst, buf[:0])
		for _, k := range buf {
			acc[k] += v.Volume
		}
	}
	var t unit.Time
	for k, vol := range acc {
		t = unit.MaxTime(t, vol.At(f.LinkCapacity(k)))
	}
	return t, nil
}

// Residual tracks remaining link capacity during an allocation pass. It
// works over any Fabric: Available and Take resolve a flow's links through
// the backend's FlowLinks.
type Residual struct {
	f    Fabric
	free map[LinkKey]unit.Rate
	buf  []LinkKey
}

// NewResidualOf snapshots a fabric's full link capacities.
func NewResidualOf(f Fabric) *Residual {
	links := f.Links()
	r := &Residual{f: f, free: make(map[LinkKey]unit.Rate, len(links))}
	for _, l := range links {
		r.free[l.Key] = l.Capacity
	}
	return r
}

// Free returns the remaining capacity of one link (0 for unknown keys).
func (r *Residual) Free(k LinkKey) unit.Rate { return r.free[k] }

// EgressFree returns the remaining egress capacity of a host.
func (r *Residual) EgressFree(host string) unit.Rate {
	return r.free[LinkKey{Kind: LinkEgress, Name: host}]
}

// IngressFree returns the remaining ingress capacity of a host.
func (r *Residual) IngressFree(host string) unit.Rate {
	return r.free[LinkKey{Kind: LinkIngress, Name: host}]
}

// RackUpFree returns a rack's remaining uplink capacity.
func (r *Residual) RackUpFree(rack string) unit.Rate {
	return r.free[LinkKey{Kind: LinkUp, Name: rack}]
}

// RackDownFree returns a rack's remaining downlink capacity.
func (r *Residual) RackDownFree(rack string) unit.Rate {
	return r.free[LinkKey{Kind: LinkDown, Name: rack}]
}

// Available returns the largest rate a src→dst flow could still use: the
// minimum residual over every link on its path.
func (r *Residual) Available(src, dst string) unit.Rate {
	r.buf = r.f.FlowLinks(src, dst, r.buf[:0])
	a := unit.Rate(1e300)
	for _, k := range r.buf {
		a = unit.MinRate(a, r.free[k])
	}
	if a < 0 {
		return 0
	}
	return a
}

// Take consumes rate on every link the flow touches. Taking more than
// available clamps the residual at zero (callers should only Take what
// Available allowed).
func (r *Residual) Take(src, dst string, rate unit.Rate) {
	r.buf = r.f.FlowLinks(src, dst, r.buf[:0])
	for _, k := range r.buf {
		r.free[k] -= rate
		if r.free[k] < 0 {
			r.free[k] = 0
		}
	}
}
