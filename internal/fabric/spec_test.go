package fabric

import (
	"testing"

	"echelonflow/internal/unit"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{in: "bigswitch", want: "bigswitch"},
		{in: "", want: "bigswitch"},
		{in: "leafspine", want: "leafspine:hosts=4,spines=2,oversub=3"},
		{in: "leafspine:hosts=2,spines=4,oversub=1", want: "leafspine:hosts=2,spines=4,oversub=1"},
		{in: "leafspine:oversub=1.5", want: "leafspine:hosts=4,spines=2,oversub=1.5"},
		{in: "extern:netsim -model clos", want: "extern:netsim -model clos"},
		{in: "bigswitch:x", err: true},
		{in: "leafspine:hosts=0", err: true},
		{in: "leafspine:spines=-1", err: true},
		{in: "leafspine:oversub=0", err: true},
		{in: "leafspine:color=blue", err: true},
		{in: "extern:", err: true},
		{in: "torus", err: true},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", c.in, sp)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if sp.String() != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, sp.String(), c.want)
		}
	}
}

func TestSpecBuildLeafSpineGeometry(t *testing.T) {
	sp, err := ParseSpec("leafspine:hosts=2,spines=2,oversub=4")
	if err != nil {
		t.Fatal(err)
	}
	hosts := []HostCap{
		{Name: "a", Egress: 8, Ingress: 8},
		{Name: "b", Egress: 8, Ingress: 8},
		{Name: "c", Egress: 4, Ingress: 2},
	}
	f, err := sp.Build(hosts)
	if err != nil {
		t.Fatal(err)
	}
	ls := f.(*LeafSpine)
	if got := ls.LeafOf("a"); got != "l0" {
		t.Errorf("LeafOf(a) = %q, want l0", got)
	}
	if got := ls.LeafOf("c"); got != "l1" {
		t.Errorf("LeafOf(c) = %q, want l1", got)
	}
	// Leaf l0 attaches 16 B/s of egress NICs; 4:1 oversub over 2 spines
	// leaves 2 B/s per uplink. Leaf l1's lone host gives 0.5 up, 0.25 down.
	if got := ls.LinkCapacity(LinkKey{Kind: LinkUp, Name: spineLinkName("l0", 0)}); got != unit.Rate(2) {
		t.Errorf("l0 uplink = %v, want 2", got)
	}
	if got := ls.LinkCapacity(LinkKey{Kind: LinkUp, Name: spineLinkName("l1", 1)}); got != unit.Rate(0.5) {
		t.Errorf("l1 uplink = %v, want 0.5", got)
	}
	if got := ls.LinkCapacity(LinkKey{Kind: LinkDown, Name: spineLinkName("l1", 0)}); got != unit.Rate(0.25) {
		t.Errorf("l1 downlink = %v, want 0.25", got)
	}
}

func TestSpecBuildBigSwitch(t *testing.T) {
	sp, err := ParseSpec("bigswitch")
	if err != nil {
		t.Fatal(err)
	}
	f, err := sp.Build([]HostCap{{Name: "a", Egress: 3, Ingress: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*Network); !ok {
		t.Fatalf("bigswitch built %T", f)
	}
	eg, in, ok := f.Capacity("a")
	if !ok || eg != 3 || in != 5 {
		t.Errorf("Capacity(a) = %v,%v,%v", eg, in, ok)
	}
}
