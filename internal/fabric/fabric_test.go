package fabric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/unit"
)

func twoHosts(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.AddUniformHosts(1, "a", "b")
	return n
}

func TestAddHostErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddHost("", 1, 1); err == nil {
		t.Error("empty name accepted")
	}
	if err := n.AddHost("a", -1, 1); err == nil {
		t.Error("negative egress accepted")
	}
	if err := n.AddHost("a", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("a", 1, 1); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestHostsOrder(t *testing.T) {
	n := NewNetwork()
	n.AddUniformHosts(2, "w3", "w1", "w2")
	hosts := n.Hosts()
	if len(hosts) != 3 || hosts[0].Name != "w3" || hosts[1].Name != "w1" {
		t.Errorf("Hosts order = %v", hosts)
	}
	if n.Len() != 3 {
		t.Errorf("Len = %d", n.Len())
	}
	if n.Host("w2") == nil || n.Host("nope") != nil {
		t.Error("Host lookup wrong")
	}
}

func TestMaxMinSingleLink(t *testing.T) {
	n := twoHosts(t)
	reqs := []Request{
		{ID: "f1", Src: "a", Dst: "b"},
		{ID: "f2", Src: "a", Dst: "b"},
		{ID: "f3", Src: "a", Dst: "b"},
	}
	rates, err := n.MaxMin(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if math.Abs(float64(rates[r.ID])-1.0/3) > 1e-9 {
			t.Errorf("rate[%s] = %v, want 1/3", r.ID, rates[r.ID])
		}
	}
}

func TestMaxMinRespectsCaps(t *testing.T) {
	n := twoHosts(t)
	reqs := []Request{
		{ID: "small", Src: "a", Dst: "b", Cap: 0.1},
		{ID: "big", Src: "a", Dst: "b"},
	}
	rates, err := n.MaxMin(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["small"])-0.1) > 1e-9 {
		t.Errorf("capped flow rate = %v, want 0.1", rates["small"])
	}
	if math.Abs(float64(rates["big"])-0.9) > 1e-9 {
		t.Errorf("uncapped flow rate = %v, want 0.9 (released share)", rates["big"])
	}
}

func TestMaxMinMultiBottleneck(t *testing.T) {
	// Classic example: hosts a,b send to c; a also sends to d.
	// c's ingress (1) is shared by two flows (share 0.5); then a's egress
	// residual (1 - 0.5) goes entirely to the a→d flow.
	n := NewNetwork()
	n.AddUniformHosts(1, "a", "b", "c", "d")
	reqs := []Request{
		{ID: "ac", Src: "a", Dst: "c"},
		{ID: "bc", Src: "b", Dst: "c"},
		{ID: "ad", Src: "a", Dst: "d"},
	}
	rates, err := n.MaxMin(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"ac": 0.5, "bc": 0.5, "ad": 0.5}
	for id, w := range want {
		if math.Abs(float64(rates[id])-w) > 1e-9 {
			t.Errorf("rate[%s] = %v, want %v", id, rates[id], w)
		}
	}
}

func TestMaxMinAsymmetricPorts(t *testing.T) {
	n := NewNetwork()
	if err := n.AddHost("fat", 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("thin", 1, 1); err != nil {
		t.Fatal(err)
	}
	rates, err := n.MaxMin([]Request{{ID: "f", Src: "fat", Dst: "thin"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["f"])-1) > 1e-9 {
		t.Errorf("rate = %v, want 1 (thin ingress)", rates["f"])
	}
}

func TestGreedyFillOrder(t *testing.T) {
	n := twoHosts(t)
	reqs := []Request{
		{ID: "first", Src: "a", Dst: "b", Cap: 0.7},
		{ID: "second", Src: "a", Dst: "b"},
		{ID: "starved", Src: "a", Dst: "b"},
	}
	rates, err := n.GreedyFill(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rates["first"] != 0.7 {
		t.Errorf("first = %v", rates["first"])
	}
	if math.Abs(float64(rates["second"])-0.3) > 1e-9 {
		t.Errorf("second = %v, want 0.3", rates["second"])
	}
	if rates["starved"] != 0 {
		t.Errorf("starved = %v, want 0", rates["starved"])
	}
}

func TestEndpointValidation(t *testing.T) {
	n := twoHosts(t)
	cases := []Request{
		{ID: "x", Src: "missing", Dst: "b"},
		{ID: "x", Src: "a", Dst: "missing"},
		{ID: "x", Src: "a", Dst: "a"},
	}
	for _, req := range cases {
		if _, err := n.MaxMin([]Request{req}); err == nil {
			t.Errorf("MaxMin accepted bad request %+v", req)
		}
		if _, err := n.GreedyFill([]Request{req}); err == nil {
			t.Errorf("GreedyFill accepted bad request %+v", req)
		}
		if err := n.Feasible([]Request{req}, nil); err == nil {
			t.Errorf("Feasible accepted bad request %+v", req)
		}
	}
}

func TestFeasible(t *testing.T) {
	n := twoHosts(t)
	reqs := []Request{
		{ID: "f1", Src: "a", Dst: "b"},
		{ID: "f2", Src: "a", Dst: "b"},
	}
	ok := map[string]unit.Rate{"f1": 0.5, "f2": 0.5}
	if err := n.Feasible(reqs, ok); err != nil {
		t.Errorf("feasible allocation rejected: %v", err)
	}
	bad := map[string]unit.Rate{"f1": 0.8, "f2": 0.5}
	if err := n.Feasible(reqs, bad); err == nil {
		t.Error("oversubscribed allocation accepted")
	}
	neg := map[string]unit.Rate{"f1": -0.1}
	if err := n.Feasible(reqs, neg); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestResidual(t *testing.T) {
	n := twoHosts(t)
	res := n.NewResidual()
	if res.Available("a", "b") != 1 {
		t.Errorf("Available = %v", res.Available("a", "b"))
	}
	res.Take("a", "b", 0.6)
	if math.Abs(float64(res.Available("a", "b"))-0.4) > 1e-9 {
		t.Errorf("after Take, Available = %v", res.Available("a", "b"))
	}
	res.Take("a", "b", 5) // over-take clamps
	if res.Available("a", "b") != 0 {
		t.Errorf("over-taken residual = %v", res.Available("a", "b"))
	}
}

func TestLoads(t *testing.T) {
	n := twoHosts(t)
	reqs := []Request{{ID: "f", Src: "a", Dst: "b"}}
	loads := n.Loads(reqs, map[string]unit.Rate{"f": 0.5})
	if len(loads) != 2 {
		t.Fatalf("Loads = %v", loads)
	}
	if loads[0].Host != "a" || loads[0].Dir != "egress" || loads[0].Used != 0.5 {
		t.Errorf("loads[0] = %+v", loads[0])
	}
	if loads[1].Host != "b" || loads[1].Dir != "ingress" {
		t.Errorf("loads[1] = %+v", loads[1])
	}
}

func TestBottleneckTime(t *testing.T) {
	n := NewNetwork()
	n.AddUniformHosts(2, "a", "b", "c")
	// a sends 4 to b and 4 to c: a's egress carries 8 at rate 2 => 4.
	vols := []VolumeDemand{
		{Src: "a", Dst: "b", Volume: 4},
		{Src: "a", Dst: "c", Volume: 4},
	}
	got, err := n.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(4) {
		t.Errorf("BottleneckTime = %v, want 4", got)
	}
	if _, err := n.BottleneckTime([]VolumeDemand{{Src: "a", Dst: "zz", Volume: 1}}); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestBottleneckTimeIngress(t *testing.T) {
	n := NewNetwork()
	n.AddUniformHosts(1, "a", "b", "c")
	// b and c both send 3 to a: a's ingress carries 6 at rate 1 => 6.
	vols := []VolumeDemand{
		{Src: "b", Dst: "a", Volume: 3},
		{Src: "c", Dst: "a", Volume: 3},
	}
	got, err := n.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(6) {
		t.Errorf("BottleneckTime = %v, want 6", got)
	}
}

// randomScenario builds a random network and request set for property tests.
func randomScenario(rng *rand.Rand) (*Network, []Request) {
	n := NewNetwork()
	hostCount := 2 + rng.Intn(6)
	names := make([]string, hostCount)
	for i := range names {
		names[i] = string(rune('a' + i))
		// Capacities in [0.5, 10.5).
		_ = n.AddHost(names[i], unit.Rate(0.5+10*rng.Float64()), unit.Rate(0.5+10*rng.Float64()))
	}
	flowCount := 1 + rng.Intn(12)
	reqs := make([]Request, 0, flowCount)
	for i := 0; i < flowCount; i++ {
		s := rng.Intn(hostCount)
		d := rng.Intn(hostCount)
		if s == d {
			d = (d + 1) % hostCount
		}
		var cap unit.Rate
		if rng.Float64() < 0.3 {
			cap = unit.Rate(0.1 + rng.Float64())
		}
		reqs = append(reqs, Request{ID: string(rune('A' + i)), Src: names[s], Dst: names[d], Cap: cap})
	}
	return n, reqs
}

// Property: MaxMin allocations are always feasible and respect caps.
func TestMaxMinFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, reqs := randomScenario(rng)
		rates, err := n.MaxMin(reqs)
		if err != nil {
			return false
		}
		if err := n.Feasible(reqs, rates); err != nil {
			t.Logf("infeasible: %v", err)
			return false
		}
		for _, r := range reqs {
			if r.Cap > 0 && float64(rates[r.ID]) > float64(r.Cap)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: MaxMin is Pareto-efficient — every flow is limited by either its
// cap or a saturated port.
func TestMaxMinParetoProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, reqs := randomScenario(rng)
		rates, err := n.MaxMin(reqs)
		if err != nil {
			return false
		}
		eg := make(map[string]unit.Rate)
		in := make(map[string]unit.Rate)
		for _, r := range reqs {
			eg[r.Src] += rates[r.ID]
			in[r.Dst] += rates[r.ID]
		}
		const tol = 1e-6
		for _, r := range reqs {
			atCap := r.Cap > 0 && float64(rates[r.ID]) >= float64(r.Cap)-tol
			egSat := float64(eg[r.Src]) >= float64(n.Host(r.Src).Egress)-tol
			inSat := float64(in[r.Dst]) >= float64(n.Host(r.Dst).Ingress)-tol
			if !atCap && !egSat && !inSat {
				t.Logf("flow %s not limited: rate=%v cap=%v eg=%v/%v in=%v/%v",
					r.ID, rates[r.ID], r.Cap, eg[r.Src], n.Host(r.Src).Egress, in[r.Dst], n.Host(r.Dst).Ingress)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: GreedyFill allocations are always feasible.
func TestGreedyFillFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, reqs := randomScenario(rng)
		rates, err := n.GreedyFill(reqs)
		if err != nil {
			return false
		}
		return n.Feasible(reqs, rates) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
