package fabric

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"echelonflow/internal/unit"
)

// HostCap is one host's NIC specification handed to Spec.Build — the common
// denominator the CLI front-ends (uniform -cap hosts, heterogeneous -host
// specs, generated scenarios) all reduce to.
type HostCap struct {
	Name    string
	Egress  unit.Rate
	Ingress unit.Rate
}

// Spec is a parsed -fabric flag value: which backend to build and its
// geometry. The grammar shared by echelon-sim, echelon-coordinator and
// echelon-check is
//
//	bigswitch                          the classic hosts-only fluid fabric
//	leafspine                          2-spine Clos, 4 hosts/leaf, 3:1 oversub
//	leafspine:hosts=2,spines=4,oversub=1
//	extern:<command line>              external timing process over bigswitch
type Spec struct {
	Kind string // "bigswitch" | "leafspine" | "extern"

	// Leaf-spine geometry (Kind "leafspine").
	HostsPerLeaf int
	Spines       int
	Oversub      float64

	// External timing process (Kind "extern"). Timeout 0 means
	// DefaultExternTimeout.
	Command []string
	Timeout time.Duration
}

// ParseSpec parses a -fabric flag value.
func ParseSpec(s string) (*Spec, error) {
	kind, rest, hasRest := strings.Cut(s, ":")
	switch kind {
	case "", "bigswitch":
		if hasRest {
			return nil, fmt.Errorf("fabric: bigswitch takes no options, got %q", s)
		}
		return &Spec{Kind: "bigswitch"}, nil
	case "leafspine":
		sp := &Spec{Kind: "leafspine", HostsPerLeaf: 4, Spines: 2, Oversub: 3}
		if !hasRest || rest == "" {
			return sp, nil
		}
		for _, opt := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("fabric: leafspine option %q: want key=value", opt)
			}
			switch key {
			case "hosts":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fabric: leafspine hosts=%q: want a positive integer", val)
				}
				sp.HostsPerLeaf = n
			case "spines":
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fabric: leafspine spines=%q: want a positive integer", val)
				}
				sp.Spines = n
			case "oversub":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil || f <= 0 {
					return nil, fmt.Errorf("fabric: leafspine oversub=%q: want a positive ratio", val)
				}
				sp.Oversub = f
			default:
				return nil, fmt.Errorf("fabric: unknown leafspine option %q (want hosts, spines or oversub)", key)
			}
		}
		return sp, nil
	case "extern":
		cmd := strings.Fields(rest)
		if len(cmd) == 0 {
			return nil, fmt.Errorf("fabric: extern needs a command, e.g. extern:echelon-netsim")
		}
		return &Spec{Kind: "extern", Command: cmd}, nil
	default:
		return nil, fmt.Errorf("fabric: unknown backend %q (want bigswitch, leafspine[:opts] or extern:<cmd>)", kind)
	}
}

// String renders the spec back in flag syntax.
func (sp *Spec) String() string {
	switch sp.Kind {
	case "leafspine":
		return fmt.Sprintf("leafspine:hosts=%d,spines=%d,oversub=%g", sp.HostsPerLeaf, sp.Spines, sp.Oversub)
	case "extern":
		return "extern:" + strings.Join(sp.Command, " ")
	default:
		return sp.Kind
	}
}

// Build constructs the selected backend over the given hosts. Leaf-spine
// fabrics attach hosts HostsPerLeaf at a time to leaves l0, l1, ... in the
// order given, sizing each leaf's per-spine links so the leaf's core
// bandwidth is its attached NIC bandwidth divided by Oversub (per
// direction, so heterogeneous NICs are respected). An extern fabric wraps
// the big-switch model: structure and feasibility stay native, timing
// queries go to the external process.
func (sp *Spec) Build(hosts []HostCap) (Fabric, error) {
	switch sp.Kind {
	case "bigswitch":
		return sp.buildNetwork(hosts)
	case "leafspine":
		ls, err := NewLeafSpine(sp.Spines)
		if err != nil {
			return nil, err
		}
		nLeaves := (len(hosts) + sp.HostsPerLeaf - 1) / sp.HostsPerLeaf
		for l := 0; l < nLeaves; l++ {
			var up, down unit.Rate
			for i := l * sp.HostsPerLeaf; i < len(hosts) && i < (l+1)*sp.HostsPerLeaf; i++ {
				up += hosts[i].Egress
				down += hosts[i].Ingress
			}
			up = unit.Rate(float64(up) / sp.Oversub / float64(sp.Spines))
			down = unit.Rate(float64(down) / sp.Oversub / float64(sp.Spines))
			if err := ls.AddLeaf(fmt.Sprintf("l%d", l), up, down); err != nil {
				return nil, err
			}
		}
		for i, h := range hosts {
			if err := ls.AddHost(h.Name, fmt.Sprintf("l%d", i/sp.HostsPerLeaf), h.Egress, h.Ingress); err != nil {
				return nil, err
			}
		}
		return ls, nil
	case "extern":
		inner, err := sp.buildNetwork(hosts)
		if err != nil {
			return nil, err
		}
		return NewExtern(inner, sp.Command, ExternOptions{Timeout: sp.Timeout})
	default:
		return nil, fmt.Errorf("fabric: unknown backend %q", sp.Kind)
	}
}

func (sp *Spec) buildNetwork(hosts []HostCap) (*Network, error) {
	n := NewNetwork()
	for _, h := range hosts {
		if err := n.AddHost(h.Name, h.Egress, h.Ingress); err != nil {
			return nil, err
		}
	}
	return n, nil
}
