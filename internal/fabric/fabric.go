// Package fabric models the datacenter network as a fluid-flow "big switch":
// a non-blocking core where only host NIC ingress and egress capacities
// constrain transfers. This is the standard model of the Coflow scheduling
// literature the paper builds on (Varys, Sincronia), and it is exactly the
// abstraction the paper's Coordinator schedules against (§5): schedulers
// assign per-flow rates, and an allocation is feasible when no host's egress
// or ingress capacity is exceeded.
package fabric

import (
	"fmt"
	"sort"

	"echelonflow/internal/unit"
)

// Host is one endpoint (a GPU worker or parameter server) attached to the
// fabric with independent send and receive capacities.
type Host struct {
	Name    string
	Egress  unit.Rate // outbound NIC capacity
	Ingress unit.Rate // inbound NIC capacity
}

// Network is a set of hosts on a non-blocking core.
//
// The zero value is not ready for use; call NewNetwork.
type Network struct {
	hosts map[string]*Host
	names []string // insertion order, for deterministic iteration

	// Optional two-tier extension (see rack.go).
	racks     map[string]*Rack
	rackNames []string
	rackOf    map[string]string

	// gen counts every mutation (topology or capacity); topoGen counts
	// only topology mutations (hosts/racks added or re-assigned). Schedulers
	// key cached capacity profiles and scheduling plans on these so a
	// SetCapacity or AddHost between scheduling rounds invalidates them.
	gen     uint64
	topoGen uint64
}

// Generation identifies the network's mutation epoch: it increases on every
// topology or capacity change. Equal generations guarantee identical
// capacities and topology.
func (n *Network) Generation() uint64 { return n.gen }

// TopoGeneration increases only when hosts or racks are added or
// re-assigned; capacity rewrites on existing ports leave it unchanged.
func (n *Network) TopoGeneration() uint64 { return n.topoGen }

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]*Host)}
}

// AddHost attaches a host with the given capacities.
func (n *Network) AddHost(name string, egress, ingress unit.Rate) error {
	if name == "" {
		return fmt.Errorf("fabric: host must have a name")
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q has negative capacity", name)
	}
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("fabric: duplicate host %q", name)
	}
	n.hosts[name] = &Host{Name: name, Egress: egress, Ingress: ingress}
	n.names = append(n.names, name)
	n.gen++
	n.topoGen++
	return nil
}

// AddUniformHosts attaches every named host with symmetric capacity c.
// It panics on duplicates; it is a scenario-construction helper.
func (n *Network) AddUniformHosts(c unit.Rate, names ...string) {
	for _, name := range names {
		if err := n.AddHost(name, c, c); err != nil {
			panic(err)
		}
	}
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Capacity reports a host's current port capacities. The ok result is false
// for unknown hosts. Fault drivers snapshot these before their first
// mutation so recovery events can restore the pre-incident baseline.
func (n *Network) Capacity(name string) (egress, ingress unit.Rate, ok bool) {
	h := n.hosts[name]
	if h == nil {
		return 0, 0, false
	}
	return h.Egress, h.Ingress, true
}

// SetCapacity changes a host's port capacities — degraded links,
// background traffic, recovering NICs. Schedulers observe the change on
// their next invocation.
func (n *Network) SetCapacity(name string, egress, ingress unit.Rate) error {
	h := n.hosts[name]
	if h == nil {
		return fmt.Errorf("fabric: unknown host %q", name)
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q given negative capacity", name)
	}
	h.Egress, h.Ingress = egress, ingress
	n.gen++
	return nil
}

// Hosts returns all hosts in insertion order.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.names))
	for _, name := range n.names {
		out = append(out, n.hosts[name])
	}
	return out
}

// Len returns the number of hosts.
func (n *Network) Len() int { return len(n.hosts) }

// Request is a flow asking for bandwidth between two hosts. Cap, when
// positive, bounds the rate the flow can use (e.g. the rate that would
// finish it within the current scheduling quantum).
type Request struct {
	ID  string
	Src string
	Dst string
	Cap unit.Rate
}

// capOrInf normalizes a request cap: non-positive means unbounded.
func (r Request) capOrInf() unit.Rate {
	if r.Cap <= 0 {
		return unit.Rate(1e300)
	}
	return r.Cap
}

// checkEndpoints verifies both endpoints exist and differ.
func (n *Network) checkEndpoints(reqs []Request) error {
	for _, r := range reqs {
		if n.hosts[r.Src] == nil {
			return fmt.Errorf("fabric: request %q: unknown src host %q", r.ID, r.Src)
		}
		if n.hosts[r.Dst] == nil {
			return fmt.Errorf("fabric: request %q: unknown dst host %q", r.ID, r.Dst)
		}
		if r.Src == r.Dst {
			return fmt.Errorf("fabric: request %q: src == dst (%s)", r.ID, r.Src)
		}
	}
	return nil
}

// Feasible reports whether the given per-flow rates respect every host's
// egress and ingress capacity (within tolerance).
func (n *Network) Feasible(reqs []Request, rates map[string]unit.Rate) error {
	if err := n.checkEndpoints(reqs); err != nil {
		return err
	}
	eg := make(map[string]unit.Rate, len(n.hosts))
	in := make(map[string]unit.Rate, len(n.hosts))
	for _, r := range reqs {
		rt := rates[r.ID]
		if rt < 0 {
			return fmt.Errorf("fabric: flow %q has negative rate %v", r.ID, rt)
		}
		eg[r.Src] += rt
		in[r.Dst] += rt
	}
	up := make(map[string]unit.Rate, len(n.racks))
	down := make(map[string]unit.Rate, len(n.racks))
	for _, r := range reqs {
		if srcRack, dstRack, crosses := n.CrossRack(r.Src, r.Dst); crosses {
			if srcRack != "" {
				up[srcRack] += rates[r.ID]
			}
			if dstRack != "" {
				down[dstRack] += rates[r.ID]
			}
		}
	}
	const tol = 1e-6
	for name, used := range eg {
		if float64(used) > float64(n.hosts[name].Egress)+tol {
			return fmt.Errorf("fabric: egress of %q oversubscribed: %v > %v", name, used, n.hosts[name].Egress)
		}
	}
	for name, used := range in {
		if float64(used) > float64(n.hosts[name].Ingress)+tol {
			return fmt.Errorf("fabric: ingress of %q oversubscribed: %v > %v", name, used, n.hosts[name].Ingress)
		}
	}
	for name, used := range up {
		if float64(used) > float64(n.racks[name].Uplink)+tol {
			return fmt.Errorf("fabric: uplink of rack %q oversubscribed: %v > %v", name, used, n.racks[name].Uplink)
		}
	}
	for name, used := range down {
		if float64(used) > float64(n.racks[name].Downlink)+tol {
			return fmt.Errorf("fabric: downlink of rack %q oversubscribed: %v > %v", name, used, n.racks[name].Downlink)
		}
	}
	return nil
}

// Residual tracks remaining port capacity during an allocation pass.
type Residual struct {
	net      *Network
	egress   map[string]unit.Rate
	ingress  map[string]unit.Rate
	rackUp   map[string]unit.Rate
	rackDown map[string]unit.Rate
}

// NewResidual snapshots the network's full capacities.
func (n *Network) NewResidual() *Residual {
	r := &Residual{
		net:      n,
		egress:   make(map[string]unit.Rate, len(n.hosts)),
		ingress:  make(map[string]unit.Rate, len(n.hosts)),
		rackUp:   make(map[string]unit.Rate, len(n.racks)),
		rackDown: make(map[string]unit.Rate, len(n.racks)),
	}
	for name, h := range n.hosts {
		r.egress[name] = h.Egress
		r.ingress[name] = h.Ingress
	}
	for name, rk := range n.racks {
		r.rackUp[name] = rk.Uplink
		r.rackDown[name] = rk.Downlink
	}
	return r
}

// EgressFree returns the remaining egress capacity of a host.
func (r *Residual) EgressFree(host string) unit.Rate { return r.egress[host] }

// IngressFree returns the remaining ingress capacity of a host.
func (r *Residual) IngressFree(host string) unit.Rate { return r.ingress[host] }

// RackUpFree returns a rack's remaining uplink capacity.
func (r *Residual) RackUpFree(rack string) unit.Rate { return r.rackUp[rack] }

// RackDownFree returns a rack's remaining downlink capacity.
func (r *Residual) RackDownFree(rack string) unit.Rate { return r.rackDown[rack] }

// Available returns the largest rate a src→dst flow could still use,
// honoring rack uplinks/downlinks when the flow crosses racks.
func (r *Residual) Available(src, dst string) unit.Rate {
	a := unit.MinRate(r.egress[src], r.ingress[dst])
	if srcRack, dstRack, crosses := r.net.CrossRack(src, dst); crosses {
		if srcRack != "" {
			a = unit.MinRate(a, r.rackUp[srcRack])
		}
		if dstRack != "" {
			a = unit.MinRate(a, r.rackDown[dstRack])
		}
	}
	if a < 0 {
		return 0
	}
	return a
}

// Take consumes rate on every port the flow touches. Taking more than
// available clamps the residual at zero (callers should only Take what
// Available allowed).
func (r *Residual) Take(src, dst string, rate unit.Rate) {
	clamp := func(m map[string]unit.Rate, k string) {
		m[k] -= rate
		if m[k] < 0 {
			m[k] = 0
		}
	}
	clamp(r.egress, src)
	clamp(r.ingress, dst)
	if srcRack, dstRack, crosses := r.net.CrossRack(src, dst); crosses {
		if srcRack != "" {
			clamp(r.rackUp, srcRack)
		}
		if dstRack != "" {
			clamp(r.rackDown, dstRack)
		}
	}
}

// GreedyFill allocates rates to requests strictly in the given order: each
// request receives the most it can (up to its cap) from what earlier
// requests left behind. It is the enforcement primitive for priority-ordered
// schedulers (SRPT, FIFO) and for backfilling MADD leftovers.
func (n *Network) GreedyFill(reqs []Request) (map[string]unit.Rate, error) {
	if err := n.checkEndpoints(reqs); err != nil {
		return nil, err
	}
	res := n.NewResidual()
	rates := make(map[string]unit.Rate, len(reqs))
	for _, r := range reqs {
		rate := unit.MinRate(res.Available(r.Src, r.Dst), r.capOrInf())
		rates[r.ID] = rate
		res.Take(r.Src, r.Dst, rate)
	}
	return rates, nil
}

// MaxMin computes the max-min fair allocation over the requests via
// progressive filling: repeatedly find the most contended port, give each of
// its unfrozen flows an equal share, freeze them, and recurse on the rest.
// Request caps participate: a flow whose cap is below its fair share is
// frozen at its cap, releasing the difference to others. This is the
// "bandwidth fair sharing" baseline of the paper's Fig. 2.
func (n *Network) MaxMin(reqs []Request) (map[string]unit.Rate, error) {
	if err := n.checkEndpoints(reqs); err != nil {
		return nil, err
	}
	rates := make(map[string]unit.Rate, len(reqs))
	frozen := make(map[string]bool, len(reqs))
	res := n.NewResidual()

	remaining := len(reqs)
	for remaining > 0 {
		// Count unfrozen flows per port (including rack uplinks/downlinks).
		egCount := make(map[string]int)
		inCount := make(map[string]int)
		upCount := make(map[string]int)
		downCount := make(map[string]int)
		for _, r := range reqs {
			if frozen[r.ID] {
				continue
			}
			egCount[r.Src]++
			inCount[r.Dst]++
			if srcRack, dstRack, crosses := n.CrossRack(r.Src, r.Dst); crosses {
				if srcRack != "" {
					upCount[srcRack]++
				}
				if dstRack != "" {
					downCount[dstRack]++
				}
			}
		}
		// The bottleneck share is the minimum per-flow share over all ports.
		share := unit.Rate(1e300)
		for p, c := range egCount {
			if s := res.egress[p] / unit.Rate(c); s < share {
				share = s
			}
		}
		for p, c := range inCount {
			if s := res.ingress[p] / unit.Rate(c); s < share {
				share = s
			}
		}
		for p, c := range upCount {
			if s := res.rackUp[p] / unit.Rate(c); s < share {
				share = s
			}
		}
		for p, c := range downCount {
			if s := res.rackDown[p] / unit.Rate(c); s < share {
				share = s
			}
		}
		// Any flow capped below the bottleneck share freezes at its cap.
		minCap := unit.Rate(1e300)
		for _, r := range reqs {
			if !frozen[r.ID] && r.capOrInf() < minCap {
				minCap = r.capOrInf()
			}
		}
		if minCap < share {
			for _, r := range reqs {
				if frozen[r.ID] || r.capOrInf() != minCap {
					continue
				}
				rates[r.ID] = minCap
				res.Take(r.Src, r.Dst, minCap)
				frozen[r.ID] = true
				remaining--
			}
			continue
		}
		// Identify the bottleneck ports from the pre-iteration residuals,
		// then freeze every unfrozen flow crossing one of them at the share.
		// (Deciding and taking in one pass would let intra-pass residual
		// updates freeze non-bottlenecked flows prematurely.)
		bottleneckEg := make(map[string]bool)
		bottleneckIn := make(map[string]bool)
		bottleneckUp := make(map[string]bool)
		bottleneckDown := make(map[string]bool)
		tol := unit.Rate(unit.Eps) * unit.MaxRate(1, share)
		for p, c := range egCount {
			if res.egress[p]/unit.Rate(c) <= share+tol {
				bottleneckEg[p] = true
			}
		}
		for p, c := range inCount {
			if res.ingress[p]/unit.Rate(c) <= share+tol {
				bottleneckIn[p] = true
			}
		}
		for p, c := range upCount {
			if res.rackUp[p]/unit.Rate(c) <= share+tol {
				bottleneckUp[p] = true
			}
		}
		for p, c := range downCount {
			if res.rackDown[p]/unit.Rate(c) <= share+tol {
				bottleneckDown[p] = true
			}
		}
		progressed := false
		for _, r := range reqs {
			if frozen[r.ID] {
				continue
			}
			onBottleneck := bottleneckEg[r.Src] || bottleneckIn[r.Dst]
			if srcRack, dstRack, crosses := n.CrossRack(r.Src, r.Dst); crosses {
				onBottleneck = onBottleneck ||
					(srcRack != "" && bottleneckUp[srcRack]) ||
					(dstRack != "" && bottleneckDown[dstRack])
			}
			if onBottleneck {
				rates[r.ID] = share
				res.Take(r.Src, r.Dst, share)
				frozen[r.ID] = true
				remaining--
				progressed = true
			}
		}
		if !progressed {
			// Should be unreachable; guard against float pathologies.
			for _, r := range reqs {
				if !frozen[r.ID] {
					rates[r.ID] = share
					res.Take(r.Src, r.Dst, share)
					frozen[r.ID] = true
					remaining--
				}
			}
		}
	}
	return rates, nil
}

// PortLoad describes how much of one direction of a host port an allocation
// uses.
type PortLoad struct {
	Host     string
	Dir      string // "egress" or "ingress"
	Used     unit.Rate
	Capacity unit.Rate
}

// Loads summarizes per-port usage of an allocation, sorted by host then
// direction, for traces and tests.
func (n *Network) Loads(reqs []Request, rates map[string]unit.Rate) []PortLoad {
	eg := make(map[string]unit.Rate)
	in := make(map[string]unit.Rate)
	for _, r := range reqs {
		eg[r.Src] += rates[r.ID]
		in[r.Dst] += rates[r.ID]
	}
	var out []PortLoad
	for _, name := range n.names {
		h := n.hosts[name]
		if eg[name] > 0 {
			out = append(out, PortLoad{Host: name, Dir: "egress", Used: eg[name], Capacity: h.Egress})
		}
		if in[name] > 0 {
			out = append(out, PortLoad{Host: name, Dir: "ingress", Used: in[name], Capacity: h.Ingress})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// BottleneckTime returns the minimum time needed to ship the given volumes
// between host pairs, i.e. the most loaded port's total volume divided by
// its capacity. This is Varys' Γ for a coflow, used by both MADD variants.
func (n *Network) BottleneckTime(vols []VolumeDemand) (unit.Time, error) {
	eg := make(map[string]unit.Bytes)
	in := make(map[string]unit.Bytes)
	for _, v := range vols {
		if n.hosts[v.Src] == nil || n.hosts[v.Dst] == nil {
			return 0, fmt.Errorf("fabric: volume demand references unknown host (%s→%s)", v.Src, v.Dst)
		}
		eg[v.Src] += v.Volume
		in[v.Dst] += v.Volume
	}
	up := make(map[string]unit.Bytes)
	down := make(map[string]unit.Bytes)
	for _, v := range vols {
		if srcRack, dstRack, crosses := n.CrossRack(v.Src, v.Dst); crosses {
			if srcRack != "" {
				up[srcRack] += v.Volume
			}
			if dstRack != "" {
				down[dstRack] += v.Volume
			}
		}
	}
	var t unit.Time
	for name, vol := range eg {
		t = unit.MaxTime(t, vol.At(n.hosts[name].Egress))
	}
	for name, vol := range in {
		t = unit.MaxTime(t, vol.At(n.hosts[name].Ingress))
	}
	for name, vol := range up {
		t = unit.MaxTime(t, vol.At(n.racks[name].Uplink))
	}
	for name, vol := range down {
		t = unit.MaxTime(t, vol.At(n.racks[name].Downlink))
	}
	return t, nil
}

// VolumeDemand is a remaining volume between two hosts.
type VolumeDemand struct {
	Src    string
	Dst    string
	Volume unit.Bytes
}
