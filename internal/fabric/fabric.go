// Package fabric models the datacenter network as a fluid-flow "big switch":
// a non-blocking core where only host NIC ingress and egress capacities
// constrain transfers. This is the standard model of the Coflow scheduling
// literature the paper builds on (Varys, Sincronia), and it is exactly the
// abstraction the paper's Coordinator schedules against (§5): schedulers
// assign per-flow rates, and an allocation is feasible when no host's egress
// or ingress capacity is exceeded.
package fabric

import (
	"fmt"
	"sort"

	"echelonflow/internal/unit"
)

// Host is one endpoint (a GPU worker or parameter server) attached to the
// fabric with independent send and receive capacities.
type Host struct {
	Name    string
	Egress  unit.Rate // outbound NIC capacity
	Ingress unit.Rate // inbound NIC capacity
}

// Network is a set of hosts on a non-blocking core.
//
// The zero value is not ready for use; call NewNetwork.
type Network struct {
	hosts map[string]*Host
	names []string // insertion order, for deterministic iteration

	// Optional two-tier extension (see rack.go).
	racks     map[string]*Rack
	rackNames []string
	rackOf    map[string]string

	// gen counts every mutation (topology or capacity); topoGen counts
	// only topology mutations (hosts/racks added or re-assigned). Schedulers
	// key cached capacity profiles and scheduling plans on these so a
	// SetCapacity or AddHost between scheduling rounds invalidates them.
	gen     uint64
	topoGen uint64
}

// Generation identifies the network's mutation epoch: it increases on every
// topology or capacity change. Equal generations guarantee identical
// capacities and topology.
func (n *Network) Generation() uint64 { return n.gen }

// TopoGeneration increases only when hosts or racks are added or
// re-assigned; capacity rewrites on existing ports leave it unchanged.
func (n *Network) TopoGeneration() uint64 { return n.topoGen }

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{hosts: make(map[string]*Host)}
}

// AddHost attaches a host with the given capacities.
func (n *Network) AddHost(name string, egress, ingress unit.Rate) error {
	if name == "" {
		return fmt.Errorf("fabric: host must have a name")
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q has negative capacity", name)
	}
	if _, ok := n.hosts[name]; ok {
		return fmt.Errorf("fabric: duplicate host %q", name)
	}
	n.hosts[name] = &Host{Name: name, Egress: egress, Ingress: ingress}
	n.names = append(n.names, name)
	n.gen++
	n.topoGen++
	return nil
}

// AddUniformHosts attaches every named host with symmetric capacity c.
// It panics on duplicates; it is a scenario-construction helper.
func (n *Network) AddUniformHosts(c unit.Rate, names ...string) {
	for _, name := range names {
		if err := n.AddHost(name, c, c); err != nil {
			panic(err)
		}
	}
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Capacity reports a host's current port capacities. The ok result is false
// for unknown hosts. Fault drivers snapshot these before their first
// mutation so recovery events can restore the pre-incident baseline.
func (n *Network) Capacity(name string) (egress, ingress unit.Rate, ok bool) {
	h := n.hosts[name]
	if h == nil {
		return 0, 0, false
	}
	return h.Egress, h.Ingress, true
}

// SetCapacity changes a host's port capacities — degraded links,
// background traffic, recovering NICs. Schedulers observe the change on
// their next invocation.
func (n *Network) SetCapacity(name string, egress, ingress unit.Rate) error {
	h := n.hosts[name]
	if h == nil {
		return fmt.Errorf("fabric: unknown host %q", name)
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q given negative capacity", name)
	}
	h.Egress, h.Ingress = egress, ingress
	n.gen++
	return nil
}

// Hosts returns all hosts in insertion order.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, 0, len(n.names))
	for _, name := range n.names {
		out = append(out, n.hosts[name])
	}
	return out
}

// Len returns the number of hosts.
func (n *Network) Len() int { return len(n.hosts) }

// Request is a flow asking for bandwidth between two hosts. Cap, when
// positive, bounds the rate the flow can use (e.g. the rate that would
// finish it within the current scheduling quantum).
type Request struct {
	ID  string
	Src string
	Dst string
	Cap unit.Rate
}

// capOrInf normalizes a request cap: non-positive means unbounded.
func (r Request) capOrInf() unit.Rate {
	if r.Cap <= 0 {
		return unit.Rate(1e300)
	}
	return r.Cap
}

// FlowLinks implements Fabric: a big-switch flow consumes its source's
// egress NIC and its destination's ingress NIC, plus the rack uplink and
// downlink when the endpoints sit in different racks. The order — egress,
// ingress, uplink, downlink — is load-bearing: schedulers accumulate and
// reserve in FlowLinks order, and this order reproduces the historical
// kind-by-kind arithmetic bit for bit.
func (n *Network) FlowLinks(src, dst string, buf []LinkKey) []LinkKey {
	buf = append(buf, LinkKey{Kind: LinkEgress, Name: src}, LinkKey{Kind: LinkIngress, Name: dst})
	if srcRack, dstRack, crosses := n.CrossRack(src, dst); crosses {
		if srcRack != "" {
			buf = append(buf, LinkKey{Kind: LinkUp, Name: srcRack})
		}
		if dstRack != "" {
			buf = append(buf, LinkKey{Kind: LinkDown, Name: dstRack})
		}
	}
	return buf
}

// LinkCapacity implements Fabric.
func (n *Network) LinkCapacity(k LinkKey) unit.Rate {
	switch k.Kind {
	case LinkEgress:
		if h := n.hosts[k.Name]; h != nil {
			return h.Egress
		}
	case LinkIngress:
		if h := n.hosts[k.Name]; h != nil {
			return h.Ingress
		}
	case LinkUp:
		if r := n.racks[k.Name]; r != nil {
			return r.Uplink
		}
	case LinkDown:
		if r := n.racks[k.Name]; r != nil {
			return r.Downlink
		}
	}
	return 0
}

// Links implements Fabric: every host NIC direction (egress first, then
// ingress, hosts in insertion order) followed by every rack uplink and
// downlink in registration order.
func (n *Network) Links() []Link {
	out := make([]Link, 0, 2*len(n.names)+2*len(n.rackNames))
	for _, name := range n.names {
		out = append(out, Link{Key: LinkKey{Kind: LinkEgress, Name: name}, Capacity: n.hosts[name].Egress})
	}
	for _, name := range n.names {
		out = append(out, Link{Key: LinkKey{Kind: LinkIngress, Name: name}, Capacity: n.hosts[name].Ingress})
	}
	for _, name := range n.rackNames {
		out = append(out, Link{Key: LinkKey{Kind: LinkUp, Name: name}, Capacity: n.racks[name].Uplink})
	}
	for _, name := range n.rackNames {
		out = append(out, Link{Key: LinkKey{Kind: LinkDown, Name: name}, Capacity: n.racks[name].Downlink})
	}
	return out
}

// Feasible reports whether the given per-flow rates respect every link's
// capacity (within tolerance).
func (n *Network) Feasible(reqs []Request, rates map[string]unit.Rate) error {
	return feasibleLinks(n, reqs, rates)
}

// NewResidual snapshots the network's full capacities.
func (n *Network) NewResidual() *Residual { return NewResidualOf(n) }

// GreedyFill allocates rates to requests strictly in the given order: each
// request receives the most it can (up to its cap) from what earlier
// requests left behind. It is the enforcement primitive for priority-ordered
// schedulers (SRPT, FIFO) and for backfilling MADD leftovers.
func (n *Network) GreedyFill(reqs []Request) (map[string]unit.Rate, error) {
	return greedyFillLinks(n, reqs)
}

// MaxMin computes the max-min fair allocation over the requests via
// progressive filling: repeatedly find the most contended link, give each of
// its unfrozen flows an equal share, freeze them, and recurse on the rest.
// Request caps participate: a flow whose cap is below its fair share is
// frozen at its cap, releasing the difference to others. This is the
// "bandwidth fair sharing" baseline of the paper's Fig. 2.
func (n *Network) MaxMin(reqs []Request) (map[string]unit.Rate, error) {
	return maxMinLinks(n, reqs)
}

// PortLoad describes how much of one direction of a host port an allocation
// uses.
type PortLoad struct {
	Host     string
	Dir      string // "egress" or "ingress"
	Used     unit.Rate
	Capacity unit.Rate
}

// Loads summarizes per-port usage of an allocation, sorted by host then
// direction, for traces and tests.
func (n *Network) Loads(reqs []Request, rates map[string]unit.Rate) []PortLoad {
	eg := make(map[string]unit.Rate)
	in := make(map[string]unit.Rate)
	for _, r := range reqs {
		eg[r.Src] += rates[r.ID]
		in[r.Dst] += rates[r.ID]
	}
	var out []PortLoad
	for _, name := range n.names {
		h := n.hosts[name]
		if eg[name] > 0 {
			out = append(out, PortLoad{Host: name, Dir: "egress", Used: eg[name], Capacity: h.Egress})
		}
		if in[name] > 0 {
			out = append(out, PortLoad{Host: name, Dir: "ingress", Used: in[name], Capacity: h.Ingress})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// BottleneckTime returns the minimum time needed to ship the given volumes
// between host pairs, i.e. the most loaded link's total volume divided by
// its capacity. This is Varys' Γ for a coflow, used by both MADD variants.
func (n *Network) BottleneckTime(vols []VolumeDemand) (unit.Time, error) {
	return bottleneckTimeLinks(n, vols)
}

// VolumeDemand is a remaining volume between two hosts.
type VolumeDemand struct {
	Src    string
	Dst    string
	Volume unit.Bytes
}
