package fabric

import (
	"math"
	"testing"

	"echelonflow/internal/unit"
)

// twoRackNet: racks A{a1,a2} and B{b1,b2}, host NICs 4, uplinks 2 (2:1
// oversubscription).
func twoRackNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.AddUniformHosts(4, "a1", "a2", "b1", "b2")
	for _, r := range []string{"A", "B"} {
		if err := n.AddRack(r, 2, 2); err != nil {
			t.Fatal(err)
		}
	}
	for host, rack := range map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"} {
		if err := n.AssignRack(host, rack); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestRackValidation(t *testing.T) {
	n := NewNetwork()
	n.AddUniformHosts(1, "h")
	if err := n.AddRack("", 1, 1); err == nil {
		t.Error("empty rack name accepted")
	}
	if err := n.AddRack("r", -1, 1); err == nil {
		t.Error("negative uplink accepted")
	}
	if err := n.AddRack("r", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRack("r", 1, 1); err == nil {
		t.Error("duplicate rack accepted")
	}
	if err := n.AssignRack("ghost", "r"); err == nil {
		t.Error("unknown host accepted")
	}
	if err := n.AssignRack("h", "ghost"); err == nil {
		t.Error("unknown rack accepted")
	}
	if err := n.AssignRack("h", "r"); err != nil {
		t.Fatal(err)
	}
	if err := n.AssignRack("h", "r"); err == nil {
		t.Error("double assignment accepted")
	}
	if n.RackOf("h") != "r" || n.RackOf("ghost") != "" {
		t.Error("RackOf wrong")
	}
	if len(n.Racks()) != 1 || n.Rack("r") == nil {
		t.Error("rack lookup wrong")
	}
}

func TestCrossRack(t *testing.T) {
	n := twoRackNet(t)
	if _, _, crosses := n.CrossRack("a1", "a2"); crosses {
		t.Error("intra-rack flow should not cross")
	}
	srcR, dstR, crosses := n.CrossRack("a1", "b1")
	if !crosses || srcR != "A" || dstR != "B" {
		t.Errorf("cross rack = %q %q %v", srcR, dstR, crosses)
	}
	// Rackless peers never constrain.
	n2 := NewNetwork()
	n2.AddUniformHosts(1, "x", "y")
	if _, _, crosses := n2.CrossRack("x", "y"); crosses {
		t.Error("rackless fabric should not cross")
	}
}

func TestRackFeasibility(t *testing.T) {
	n := twoRackNet(t)
	reqs := []Request{
		{ID: "x", Src: "a1", Dst: "b1"},
		{ID: "y", Src: "a2", Dst: "b2"},
	}
	// Each flow could do 4 on NICs, but rack A's uplink is 2 total.
	ok := map[string]unit.Rate{"x": 1, "y": 1}
	if err := n.Feasible(reqs, ok); err != nil {
		t.Errorf("feasible rejected: %v", err)
	}
	bad := map[string]unit.Rate{"x": 1.5, "y": 1.5}
	if err := n.Feasible(reqs, bad); err == nil {
		t.Error("uplink oversubscription accepted")
	}
	// Intra-rack traffic ignores the uplink.
	intra := []Request{{ID: "z", Src: "a1", Dst: "a2"}}
	if err := n.Feasible(intra, map[string]unit.Rate{"z": 4}); err != nil {
		t.Errorf("intra-rack full NIC rate rejected: %v", err)
	}
}

func TestRackMaxMin(t *testing.T) {
	n := twoRackNet(t)
	reqs := []Request{
		{ID: "x", Src: "a1", Dst: "b1"}, // cross-rack: capped by uplink share
		{ID: "y", Src: "a2", Dst: "b2"}, // cross-rack
		{ID: "z", Src: "a1", Dst: "a2"}, // intra-rack: NIC-limited only
	}
	rates, err := n.MaxMin(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Uplink A (2) shared by x,y => 1 each; z then gets a1's leftover
	// egress: 4 - 1 = 3.
	if math.Abs(float64(rates["x"])-1) > 1e-9 || math.Abs(float64(rates["y"])-1) > 1e-9 {
		t.Errorf("cross-rack rates = %v", rates)
	}
	if math.Abs(float64(rates["z"])-3) > 1e-9 {
		t.Errorf("intra-rack rate = %v, want 3", rates["z"])
	}
	if err := n.Feasible(reqs, rates); err != nil {
		t.Errorf("maxmin infeasible: %v", err)
	}
}

func TestRackResidual(t *testing.T) {
	n := twoRackNet(t)
	res := n.NewResidual()
	if got := res.Available("a1", "b1"); got != 2 {
		t.Errorf("cross-rack available = %v, want uplink 2", got)
	}
	res.Take("a1", "b1", 2)
	if got := res.Available("a2", "b2"); got != 0 {
		t.Errorf("after uplink drained, available = %v, want 0", got)
	}
	if got := res.Available("a2", "a1"); got != 4 {
		t.Errorf("intra-rack available = %v, want 4", got)
	}
	if res.RackUpFree("A") != 0 || res.RackDownFree("B") != 0 {
		t.Error("rack residual accessors wrong")
	}
}

func TestRackBottleneckTime(t *testing.T) {
	n := twoRackNet(t)
	vols := []VolumeDemand{
		{Src: "a1", Dst: "b1", Volume: 4},
		{Src: "a2", Dst: "b2", Volume: 4},
	}
	// 8 bytes over uplink A at rate 2 => 4 (NICs would allow 1 each).
	got, err := n.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEq(4) {
		t.Errorf("BottleneckTime = %v, want 4", got)
	}
}

func TestSetRackCapacity(t *testing.T) {
	n := twoRackNet(t)
	if err := n.SetRackCapacity("A", 8, 8); err != nil {
		t.Fatal(err)
	}
	if n.Rack("A").Uplink != 8 {
		t.Error("capacity not updated")
	}
	if err := n.SetRackCapacity("ghost", 1, 1); err == nil {
		t.Error("unknown rack accepted")
	}
	if err := n.SetRackCapacity("A", -1, 1); err == nil {
		t.Error("negative capacity accepted")
	}
}
