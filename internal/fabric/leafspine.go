package fabric

import (
	"fmt"
	"hash/fnv"

	"echelonflow/internal/unit"
)

// LeafSpine is a native two-tier Clos fabric: hosts attach to leaf switches,
// leaves connect to every spine with individually-capacitated up and down
// links, and each flow is pinned to one spine by a deterministic ECMP-style
// hash of its endpoints. A cross-leaf flow therefore consumes capacity on
// four links — source NIC, srcLeaf→spine uplink, spine→dstLeaf downlink,
// destination NIC — rather than the NIC-plus-rack-pool abstraction of the
// big switch. Intra-leaf flows touch only the two NICs.
//
// Link naming: the uplink from leaf L to spine k is LinkUp "L/sk"; the
// downlink from spine k to leaf L is LinkDown "L/sk". RackOf reports the
// leaf, so rack-aware placement policies treat leaves as racks.
//
// The zero value is not ready for use; call NewLeafSpine.
type LeafSpine struct {
	hosts   map[string]*Host
	names   []string
	leaves  []string // registration order
	leafSet map[string]bool
	leafOf  map[string]string // host → leaf
	spines  int
	up      map[LinkKey]unit.Rate // LinkUp keys
	down    map[LinkKey]unit.Rate // LinkDown keys
	gen     uint64
	topoGen uint64
}

// NewLeafSpine returns an empty fabric with the given number of spine
// switches (at least 1).
func NewLeafSpine(spines int) (*LeafSpine, error) {
	if spines < 1 {
		return nil, fmt.Errorf("fabric: leaf-spine needs at least 1 spine, got %d", spines)
	}
	return &LeafSpine{
		hosts:   make(map[string]*Host),
		leafSet: make(map[string]bool),
		leafOf:  make(map[string]string),
		spines:  spines,
		up:      make(map[LinkKey]unit.Rate),
		down:    make(map[LinkKey]unit.Rate),
	}, nil
}

// Spines returns the spine count.
func (ls *LeafSpine) Spines() int { return ls.spines }

// AddLeaf registers a leaf switch with uniform per-spine link capacities:
// every one of its spine uplinks and downlinks gets upPerSpine/downPerSpine.
func (ls *LeafSpine) AddLeaf(name string, upPerSpine, downPerSpine unit.Rate) error {
	if name == "" {
		return fmt.Errorf("fabric: leaf must have a name")
	}
	if upPerSpine < 0 || downPerSpine < 0 {
		return fmt.Errorf("fabric: leaf %q has negative link capacity", name)
	}
	if ls.leafSet[name] {
		return fmt.Errorf("fabric: duplicate leaf %q", name)
	}
	ls.leafSet[name] = true
	ls.leaves = append(ls.leaves, name)
	for k := 0; k < ls.spines; k++ {
		ls.up[LinkKey{Kind: LinkUp, Name: spineLinkName(name, k)}] = upPerSpine
		ls.down[LinkKey{Kind: LinkDown, Name: spineLinkName(name, k)}] = downPerSpine
	}
	ls.gen++
	ls.topoGen++
	return nil
}

// spineLinkName is the canonical "leaf/spine" link name.
func spineLinkName(leaf string, spine int) string {
	return fmt.Sprintf("%s/s%d", leaf, spine)
}

// AddHost attaches a host to a leaf.
func (ls *LeafSpine) AddHost(name, leaf string, egress, ingress unit.Rate) error {
	if name == "" {
		return fmt.Errorf("fabric: host must have a name")
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q has negative capacity", name)
	}
	if _, ok := ls.hosts[name]; ok {
		return fmt.Errorf("fabric: duplicate host %q", name)
	}
	if !ls.leafSet[leaf] {
		return fmt.Errorf("fabric: unknown leaf %q", leaf)
	}
	ls.hosts[name] = &Host{Name: name, Egress: egress, Ingress: ingress}
	ls.names = append(ls.names, name)
	ls.leafOf[name] = leaf
	ls.gen++
	ls.topoGen++
	return nil
}

// MoveHost re-attaches a host to a different leaf — the placement-sweep
// analogue of Network.ReassignRack. It bumps the topology generation so
// plan caches and delta state keyed on it are discarded.
func (ls *LeafSpine) MoveHost(name, leaf string) error {
	if ls.hosts[name] == nil {
		return fmt.Errorf("fabric: unknown host %q", name)
	}
	if !ls.leafSet[leaf] {
		return fmt.Errorf("fabric: unknown leaf %q", leaf)
	}
	if ls.leafOf[name] == leaf {
		return nil
	}
	ls.leafOf[name] = leaf
	ls.gen++
	ls.topoGen++
	return nil
}

// Generation implements Fabric.
func (ls *LeafSpine) Generation() uint64 { return ls.gen }

// TopoGeneration implements Fabric.
func (ls *LeafSpine) TopoGeneration() uint64 { return ls.topoGen }

// Host implements Fabric.
func (ls *LeafSpine) Host(name string) *Host { return ls.hosts[name] }

// Hosts implements Fabric (insertion order).
func (ls *LeafSpine) Hosts() []*Host {
	out := make([]*Host, 0, len(ls.names))
	for _, name := range ls.names {
		out = append(out, ls.hosts[name])
	}
	return out
}

// Len implements Fabric.
func (ls *LeafSpine) Len() int { return len(ls.hosts) }

// Capacity implements Fabric.
func (ls *LeafSpine) Capacity(name string) (egress, ingress unit.Rate, ok bool) {
	h := ls.hosts[name]
	if h == nil {
		return 0, 0, false
	}
	return h.Egress, h.Ingress, true
}

// SetCapacity implements Fabric.
func (ls *LeafSpine) SetCapacity(name string, egress, ingress unit.Rate) error {
	h := ls.hosts[name]
	if h == nil {
		return fmt.Errorf("fabric: unknown host %q", name)
	}
	if egress < 0 || ingress < 0 {
		return fmt.Errorf("fabric: host %q given negative capacity", name)
	}
	h.Egress, h.Ingress = egress, ingress
	ls.gen++
	return nil
}

// SetSpineLink rewrites one leaf↔spine link pair's capacities (degraded or
// recovering interior links).
func (ls *LeafSpine) SetSpineLink(leaf string, spine int, up, down unit.Rate) error {
	if !ls.leafSet[leaf] {
		return fmt.Errorf("fabric: unknown leaf %q", leaf)
	}
	if spine < 0 || spine >= ls.spines {
		return fmt.Errorf("fabric: leaf %q has no spine %d", leaf, spine)
	}
	if up < 0 || down < 0 {
		return fmt.Errorf("fabric: leaf %q spine %d given negative capacity", leaf, spine)
	}
	name := spineLinkName(leaf, spine)
	ls.up[LinkKey{Kind: LinkUp, Name: name}] = up
	ls.down[LinkKey{Kind: LinkDown, Name: name}] = down
	ls.gen++
	return nil
}

// RackOf implements Fabric: the leaf is the host's rack.
func (ls *LeafSpine) RackOf(host string) string { return ls.leafOf[host] }

// LeafOf returns the leaf a host attaches to ("" for unknown hosts).
func (ls *LeafSpine) LeafOf(host string) string { return ls.leafOf[host] }

// Leaves returns leaf names in registration order.
func (ls *LeafSpine) Leaves() []string { return append([]string(nil), ls.leaves...) }

// SpineFor returns the spine index a src→dst flow is pinned to: an FNV hash
// of the endpoint pair, stable across runs and processes (ECMP with a
// deterministic hash function).
func (ls *LeafSpine) SpineFor(src, dst string) int {
	h := fnv.New32a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	return int(h.Sum32() % uint32(ls.spines))
}

// FlowLinks implements Fabric: source NIC, uplink to the hashed spine,
// downlink from it, destination NIC — the uplink/downlink only when the
// endpoints sit on different leaves. The egress/ingress/up/down order
// mirrors Network.FlowLinks so scheduler arithmetic is comparable across
// backends.
func (ls *LeafSpine) FlowLinks(src, dst string, buf []LinkKey) []LinkKey {
	buf = append(buf, LinkKey{Kind: LinkEgress, Name: src}, LinkKey{Kind: LinkIngress, Name: dst})
	srcLeaf, dstLeaf := ls.leafOf[src], ls.leafOf[dst]
	if srcLeaf == dstLeaf || srcLeaf == "" || dstLeaf == "" {
		return buf
	}
	spine := ls.SpineFor(src, dst)
	buf = append(buf,
		LinkKey{Kind: LinkUp, Name: spineLinkName(srcLeaf, spine)},
		LinkKey{Kind: LinkDown, Name: spineLinkName(dstLeaf, spine)})
	return buf
}

// LinkCapacity implements Fabric.
func (ls *LeafSpine) LinkCapacity(k LinkKey) unit.Rate {
	switch k.Kind {
	case LinkEgress:
		if h := ls.hosts[k.Name]; h != nil {
			return h.Egress
		}
	case LinkIngress:
		if h := ls.hosts[k.Name]; h != nil {
			return h.Ingress
		}
	case LinkUp:
		return ls.up[k]
	case LinkDown:
		return ls.down[k]
	}
	return 0
}

// Links implements Fabric: host NICs (egress then ingress, insertion order)
// followed by every leaf's spine uplinks then downlinks in leaf registration
// order.
func (ls *LeafSpine) Links() []Link {
	out := make([]Link, 0, 2*len(ls.names)+2*len(ls.leaves)*ls.spines)
	for _, name := range ls.names {
		out = append(out, Link{Key: LinkKey{Kind: LinkEgress, Name: name}, Capacity: ls.hosts[name].Egress})
	}
	for _, name := range ls.names {
		out = append(out, Link{Key: LinkKey{Kind: LinkIngress, Name: name}, Capacity: ls.hosts[name].Ingress})
	}
	for _, leaf := range ls.leaves {
		for k := 0; k < ls.spines; k++ {
			key := LinkKey{Kind: LinkUp, Name: spineLinkName(leaf, k)}
			out = append(out, Link{Key: key, Capacity: ls.up[key]})
		}
	}
	for _, leaf := range ls.leaves {
		for k := 0; k < ls.spines; k++ {
			key := LinkKey{Kind: LinkDown, Name: spineLinkName(leaf, k)}
			out = append(out, Link{Key: key, Capacity: ls.down[key]})
		}
	}
	return out
}

// Feasible implements Fabric.
func (ls *LeafSpine) Feasible(reqs []Request, rates map[string]unit.Rate) error {
	return feasibleLinks(ls, reqs, rates)
}

// GreedyFill implements Fabric.
func (ls *LeafSpine) GreedyFill(reqs []Request) (map[string]unit.Rate, error) {
	return greedyFillLinks(ls, reqs)
}

// MaxMin implements Fabric.
func (ls *LeafSpine) MaxMin(reqs []Request) (map[string]unit.Rate, error) {
	return maxMinLinks(ls, reqs)
}

// BottleneckTime implements Fabric.
func (ls *LeafSpine) BottleneckTime(vols []VolumeDemand) (unit.Time, error) {
	return bottleneckTimeLinks(ls, vols)
}

// NewResidual implements Fabric.
func (ls *LeafSpine) NewResidual() *Residual { return NewResidualOf(ls) }

// NewLeafSpineFromHosts builds a leaf-spine fabric over uniform hosts: the
// named hosts are attached hostsPerLeaf at a time to leaves l0, l1, ... with
// NIC capacity nic in both directions, and each leaf gets `spines` uplinks
// and downlinks sized so the leaf's total core bandwidth is its attached NIC
// bandwidth divided by oversub (oversub 1 = non-blocking, 3 = the classic
// 3:1 oversubscribed pod). It is the scenario-construction helper behind
// the -fabric leafspine CLI flag.
func NewLeafSpineFromHosts(names []string, hostsPerLeaf, spines int, nic unit.Rate, oversub float64) (*LeafSpine, error) {
	if hostsPerLeaf < 1 {
		return nil, fmt.Errorf("fabric: hostsPerLeaf must be >= 1, got %d", hostsPerLeaf)
	}
	if oversub <= 0 {
		return nil, fmt.Errorf("fabric: oversubscription must be positive, got %g", oversub)
	}
	ls, err := NewLeafSpine(spines)
	if err != nil {
		return nil, err
	}
	perSpine := unit.Rate(float64(nic) * float64(hostsPerLeaf) / oversub / float64(spines))
	nLeaves := (len(names) + hostsPerLeaf - 1) / hostsPerLeaf
	for l := 0; l < nLeaves; l++ {
		if err := ls.AddLeaf(fmt.Sprintf("l%d", l), perSpine, perSpine); err != nil {
			return nil, err
		}
	}
	for i, name := range names {
		if err := ls.AddHost(name, fmt.Sprintf("l%d", i/hostsPerLeaf), nic, nic); err != nil {
			return nil, err
		}
	}
	return ls, nil
}
