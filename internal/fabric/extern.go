package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os/exec"
	"sync"
	"time"

	"echelonflow/internal/unit"
)

// ExternOptions configures an external-timing fabric.
type ExternOptions struct {
	// Timeout bounds each request round trip; zero means DefaultExternTimeout.
	Timeout time.Duration
	// Logf, when set, narrates process lifecycle and fallback transitions.
	Logf func(format string, args ...any)
}

// DefaultExternTimeout is the per-request budget before the external model
// is declared unresponsive and the fabric latches onto its native fallback.
const DefaultExternTimeout = 2 * time.Second

// externRequest is one line sent to the external timing model.
type externRequest struct {
	ID      uint64         `json:"id"`
	Volumes []externVolume `json:"volumes"`
}

type externVolume struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst"`
	Bytes float64 `json:"bytes"`
}

// externResponse is one line received back.
type externResponse struct {
	ID    uint64  `json:"id"`
	Time  float64 `json:"time"`
	Error string  `json:"error,omitempty"`
}

// externProc is the subprocess half of an Extern, shared between every
// Extern bound to it (see Rebind): one external model can serve a sequence
// of fabrics, e.g. the check harness rebinding it to each generated
// scenario instead of spawning a process per run.
type externProc struct {
	opts ExternOptions

	mu       sync.Mutex
	cmd      *exec.Cmd
	stdin    *bufio.Writer
	replies  <-chan externResponse
	nextID   uint64
	degraded bool
}

// Extern couples the native fabric model to an external timing process — the
// co-simulation pattern where a main engine delegates network timing to a
// swappable detailed simulator over a line-oriented protocol. Structure
// (hosts, links, paths, feasibility, residuals) comes from the wrapped inner
// fabric; BottleneckTime is answered by the subprocess, which receives one
// JSON line per query:
//
//	{"id":1,"volumes":[{"src":"h0","dst":"h1","bytes":1048576}, ...]}
//
// and must reply with exactly one JSON line carrying the same id:
//
//	{"id":1,"time":0.0125}            // seconds to ship the volumes
//	{"id":1,"error":"..."}            // per-query failure
//
// A reply that times out, fails to parse, carries the wrong id, or arrives
// after the process died latches the fabric into degraded mode: every
// subsequent BottleneckTime is answered by the inner model, so scheduling
// continues (with native timing) when the external model misbehaves.
// Per-query "error" replies fall back for that query without latching.
type Extern struct {
	Fabric // structural queries delegate to the inner backend

	p *externProc
}

// NewExtern launches the external timing process (argv[0] is the binary) and
// wraps inner with it. The process is expected to read requests from stdin
// and write responses to stdout, one JSON object per line.
func NewExtern(inner Fabric, argv []string, opts ExternOptions) (*Extern, error) {
	if inner == nil {
		return nil, fmt.Errorf("fabric: extern needs an inner fabric")
	}
	if len(argv) == 0 {
		return nil, fmt.Errorf("fabric: extern needs a command")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultExternTimeout
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("fabric: extern stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("fabric: extern stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fabric: extern start %q: %w", argv[0], err)
	}
	replies := make(chan externResponse)
	go func() {
		defer close(replies)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			var resp externResponse
			if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
				return // protocol corruption: stop; pending read times out or sees close
			}
			replies <- resp
		}
	}()
	e := &Extern{
		Fabric: inner,
		p: &externProc{
			opts:    opts,
			cmd:     cmd,
			stdin:   bufio.NewWriter(stdin),
			replies: replies,
		},
	}
	opts.Logf("fabric: extern timing model %q started (pid %d)", argv[0], cmd.Process.Pid)
	return e, nil
}

// Inner returns the wrapped native fabric.
func (e *Extern) Inner() Fabric { return e.Fabric }

// Rebind returns an Extern answering timing queries with the same external
// process but structural queries from a different inner fabric. Degraded
// state is shared: if the process dies, every bound fabric falls back.
func (e *Extern) Rebind(inner Fabric) *Extern {
	return &Extern{Fabric: inner, p: e.p}
}

// Degraded reports whether the external model has been latched off (the
// inner model answers all timing queries).
func (e *Extern) Degraded() bool {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	return e.p.degraded
}

// Close terminates the external process. The fabric remains usable — every
// further timing query runs on the inner model.
func (e *Extern) Close() error {
	e.p.mu.Lock()
	defer e.p.mu.Unlock()
	e.p.latchLocked("closed")
	if e.p.cmd.Process != nil {
		e.p.cmd.Process.Kill()
	}
	return e.p.cmd.Wait()
}

// latchLocked permanently routes timing to the inner model.
func (p *externProc) latchLocked(why string) {
	if !p.degraded {
		p.degraded = true
		p.opts.Logf("fabric: extern timing model degraded (%s); using native fallback", why)
	}
}

// BottleneckTime implements Fabric: the external model answers when healthy,
// the inner model otherwise.
func (e *Extern) BottleneckTime(vols []VolumeDemand) (unit.Time, error) {
	// Validate endpoints against the structural model first, so unknown-host
	// errors behave identically to the native backends.
	for _, v := range vols {
		if e.Fabric.Host(v.Src) == nil || e.Fabric.Host(v.Dst) == nil {
			return 0, fmt.Errorf("fabric: volume demand references unknown host (%s→%s)", v.Src, v.Dst)
		}
	}
	e.p.mu.Lock()
	if e.p.degraded {
		e.p.mu.Unlock()
		return e.Fabric.BottleneckTime(vols)
	}
	e.p.nextID++
	req := externRequest{ID: e.p.nextID, Volumes: make([]externVolume, 0, len(vols))}
	for _, v := range vols {
		req.Volumes = append(req.Volumes, externVolume{Src: v.Src, Dst: v.Dst, Bytes: float64(v.Volume)})
	}
	t, ok := e.p.roundTripLocked(req)
	e.p.mu.Unlock()
	if !ok {
		return e.Fabric.BottleneckTime(vols)
	}
	return t, nil
}

// roundTripLocked performs one request/response exchange. ok=false means the
// caller must use the native fallback; hard failures latch degraded mode.
func (p *externProc) roundTripLocked(req externRequest) (unit.Time, bool) {
	data, err := json.Marshal(req)
	if err != nil {
		p.latchLocked("encode: " + err.Error())
		return 0, false
	}
	data = append(data, '\n')
	if _, err := p.stdin.Write(data); err != nil {
		p.latchLocked("write: " + err.Error())
		return 0, false
	}
	if err := p.stdin.Flush(); err != nil {
		p.latchLocked("flush: " + err.Error())
		return 0, false
	}
	timer := time.NewTimer(p.opts.Timeout)
	defer timer.Stop()
	select {
	case resp, open := <-p.replies:
		switch {
		case !open:
			p.latchLocked("process exited")
			return 0, false
		case resp.ID != req.ID:
			p.latchLocked(fmt.Sprintf("response id %d for request %d", resp.ID, req.ID))
			return 0, false
		case resp.Error != "":
			// A per-query error is not a process failure: fall back for this
			// query only.
			p.opts.Logf("fabric: extern timing query %d: %s", req.ID, resp.Error)
			return 0, false
		case resp.Time < 0:
			p.latchLocked(fmt.Sprintf("negative time %g", resp.Time))
			return 0, false
		default:
			return unit.Time(resp.Time), true
		}
	case <-timer.C:
		p.latchLocked(fmt.Sprintf("timeout after %v", p.opts.Timeout))
		return 0, false
	}
}
