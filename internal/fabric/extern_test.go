package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"echelonflow/internal/unit"
)

// TestHelperProcess is not a test: it is the external timing model the
// extern tests boot as a subprocess (the standard re-exec pattern, so no
// binary outside the test suite is needed). Behaviour is selected by
// FABRIC_EXTERN_MODE.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("FABRIC_EXTERN_HELPER") != "1" {
		return
	}
	defer os.Exit(0)
	mode := os.Getenv("FABRIC_EXTERN_MODE")
	sc := bufio.NewScanner(os.Stdin)
	out := bufio.NewWriter(os.Stdout)
	for sc.Scan() {
		var req struct {
			ID      uint64 `json:"id"`
			Volumes []struct {
				Src   string  `json:"src"`
				Dst   string  `json:"dst"`
				Bytes float64 `json:"bytes"`
			} `json:"volumes"`
		}
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			fmt.Fprintf(os.Stderr, "helper: %v\n", err)
			os.Exit(1)
		}
		switch mode {
		case "half-rate":
			// A toy detailed model: every byte ships at 0.5 B/s through one
			// serial bottleneck — distinguishable from the native fluid model.
			var total float64
			for _, v := range req.Volumes {
				total += v.Bytes
			}
			fmt.Fprintf(out, "{\"id\":%d,\"time\":%g}\n", req.ID, total/0.5)
		case "per-query-error":
			fmt.Fprintf(out, "{\"id\":%d,\"error\":\"no model for these endpoints\"}\n", req.ID)
		case "silent":
			// Never answer: forces the timeout path.
		default:
			fmt.Fprintf(out, "{\"id\":%d,\"time\":0.125}\n", req.ID)
		}
		out.Flush()
	}
}

func helperArgv() []string {
	return []string{os.Args[0], "-test.run=TestHelperProcess"}
}

func externTestFabric(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.AddUniformHosts(10, "a", "b", "c")
	return n
}

func newTestExtern(t *testing.T, mode string, opts ExternOptions) *Extern {
	t.Helper()
	t.Setenv("FABRIC_EXTERN_HELPER", "1")
	t.Setenv("FABRIC_EXTERN_MODE", mode)
	e, err := NewExtern(externTestFabric(t), helperArgv(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestExternAnswersTiming(t *testing.T) {
	e := newTestExtern(t, "half-rate", ExternOptions{})
	vols := []VolumeDemand{{Src: "a", Dst: "b", Volume: 20}}
	got, err := e.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	// 20 bytes at the helper's 0.5 B/s serial bottleneck; the native model
	// would say 2 (20 bytes over a 10 B/s NIC), so 40 proves the external
	// answer was used.
	if got != unit.Time(40) {
		t.Errorf("BottleneckTime = %v, want 40 (external model)", got)
	}
	if e.Degraded() {
		t.Error("healthy extern reported degraded")
	}
	// Structural queries delegate to the inner fabric untouched.
	if e.Len() != 3 || e.Host("a") == nil {
		t.Error("structural delegation broken")
	}
}

func TestExternUnknownHostMatchesNative(t *testing.T) {
	e := newTestExtern(t, "half-rate", ExternOptions{})
	_, errExt := e.BottleneckTime([]VolumeDemand{{Src: "a", Dst: "zz", Volume: 1}})
	_, errNat := externTestFabric(t).BottleneckTime([]VolumeDemand{{Src: "a", Dst: "zz", Volume: 1}})
	if errExt == nil || errNat == nil || errExt.Error() != errNat.Error() {
		t.Errorf("unknown-host errors differ: extern %v vs native %v", errExt, errNat)
	}
	if e.Degraded() {
		t.Error("validation failure must not latch degraded mode")
	}
}

func TestExternPerQueryErrorFallsBackWithoutLatching(t *testing.T) {
	e := newTestExtern(t, "per-query-error", ExternOptions{})
	vols := []VolumeDemand{{Src: "a", Dst: "b", Volume: 20}}
	got, err := e.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	if got != unit.Time(2) {
		t.Errorf("BottleneckTime = %v, want native 2 on per-query error", got)
	}
	if e.Degraded() {
		t.Error("per-query error latched degraded mode")
	}
}

func TestExternTimeoutLatchesDegraded(t *testing.T) {
	e := newTestExtern(t, "silent", ExternOptions{Timeout: 50 * time.Millisecond})
	vols := []VolumeDemand{{Src: "a", Dst: "b", Volume: 20}}
	got, err := e.BottleneckTime(vols)
	if err != nil {
		t.Fatal(err)
	}
	if got != unit.Time(2) {
		t.Errorf("BottleneckTime = %v, want native 2 after timeout", got)
	}
	if !e.Degraded() {
		t.Error("timeout did not latch degraded mode")
	}
}

func TestExternRebindSharesProcess(t *testing.T) {
	e := newTestExtern(t, "half-rate", ExternOptions{})
	other := NewNetwork()
	other.AddUniformHosts(5, "x", "y")
	e2 := e.Rebind(other)
	if got, err := e2.BottleneckTime([]VolumeDemand{{Src: "x", Dst: "y", Volume: 10}}); err != nil || got != unit.Time(20) {
		t.Fatalf("rebound answer = %v, %v; want 20 (external model)", got, err)
	}
	if e2.Host("x") == nil || e2.Host("a") != nil {
		t.Error("rebound extern did not switch structural delegation")
	}
	e2.Close()
	if !e.Degraded() {
		t.Error("closing a rebound extern must latch the shared process state")
	}
	if got, err := e.BottleneckTime([]VolumeDemand{{Src: "a", Dst: "b", Volume: 20}}); err != nil || got != unit.Time(2) {
		t.Errorf("original binding after shared close = %v, %v; want native 2", got, err)
	}
}

// TestExternSurvivesProcessKill is the fault-injection smoke test: the
// external model dies mid-session and every subsequent timing query must be
// answered by the native fallback, permanently.
func TestExternSurvivesProcessKill(t *testing.T) {
	e := newTestExtern(t, "half-rate", ExternOptions{Timeout: 2 * time.Second})
	vols := []VolumeDemand{{Src: "a", Dst: "b", Volume: 20}}
	if got, err := e.BottleneckTime(vols); err != nil || got != unit.Time(40) {
		t.Fatalf("pre-kill answer = %v, %v; want 40", got, err)
	}
	if err := e.p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// The reader goroutine sees EOF and closes the reply channel; the next
	// query must latch and fall back rather than hang or error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := e.BottleneckTime(vols)
		if err != nil {
			t.Fatal(err)
		}
		if got == unit.Time(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still getting %v after kill, want native 2", got)
		}
	}
	if !e.Degraded() {
		t.Error("process death did not latch degraded mode")
	}
	if got, err := e.BottleneckTime(vols); err != nil || got != unit.Time(2) {
		t.Errorf("post-kill answer = %v, %v; want native 2", got, err)
	}
}
