package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func tailStrings(r *Recovery) []string {
	out := make([]string, len(r.Tail))
	for i, p := range r.Tail {
		out[i] = string(p)
	}
	return out
}

func TestEmptyDir(t *testing.T) {
	dir := t.TempDir()
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot != nil || len(r.Tail) != 0 || r.Torn {
		t.Fatalf("empty dir recovered %+v", r)
	}
	// A missing directory also recovers empty.
	r, err = Restore(filepath.Join(dir, "never-created"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot != nil || len(r.Tail) != 0 {
		t.Fatalf("missing dir recovered %+v", r)
	}
}

func TestAppendRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "one", "two", "three")
	if j.Seq() != 3 {
		t.Errorf("seq = %d, want 3", j.Seq())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three"}
	if got := tailStrings(r); len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Errorf("tail = %v, want %v", got, want)
	}
	if r.Snapshot != nil || r.Torn {
		t.Errorf("unexpected snapshot/torn: %+v", r)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	appendAll(t, j, "a", "b")
	j.Close()
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 2 {
		t.Fatalf("reopened seq = %d, want 2", j2.Seq())
	}
	appendAll(t, j2, "c")
	j2.Close()
	r, _ := Restore(dir)
	if got := tailStrings(r); len(got) != 3 || got[2] != "c" {
		t.Errorf("tail after reopen = %v", got)
	}
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	appendAll(t, j, "a", "b", "c")
	if err := j.Snapshot([]byte("state@3")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "d", "e")
	j.Close()
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Snapshot) != "state@3" || r.SnapSeq != 3 {
		t.Errorf("snapshot = %q @%d, want state@3 @3", r.Snapshot, r.SnapSeq)
	}
	if got := tailStrings(r); len(got) != 2 || got[0] != "d" || got[1] != "e" {
		t.Errorf("tail = %v, want [d e]", got)
	}
}

// A crash between the snapshot rename and the wal truncation leaves stale
// records in the wal; recovery must skip them by sequence.
func TestSnapshotNewerThanTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	appendAll(t, j, "a", "b", "c")
	j.Close()
	// Write the snapshot by hand covering seq 2, leaving all three wal
	// records in place: records 1-2 are stale, record 3 is live tail.
	f, err := os.Create(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(f, 2, []byte("state@2")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Snapshot) != "state@2" {
		t.Fatalf("snapshot = %q", r.Snapshot)
	}
	if got := tailStrings(r); len(got) != 1 || got[0] != "c" {
		t.Errorf("tail = %v, want [c] (stale records skipped)", got)
	}
	// A snapshot strictly newer than every wal record yields an empty tail.
	f, _ = os.Create(filepath.Join(dir, snapName))
	writeRecord(f, 9, []byte("state@9"))
	f.Close()
	r, err = Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tail) != 0 {
		t.Errorf("tail = %v, want empty when snapshot outruns the wal", tailStrings(r))
	}
	// Reopening for writing continues past the snapshot's sequence.
	j2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Seq() != 9 {
		t.Errorf("seq = %d, want 9 (snapshot sequence wins)", j2.Seq())
	}
}

// A torn final record — a crash mid-append — is dropped; the intact prefix
// survives, and a reopened journal overwrites the tear.
func TestTornFinalRecord(t *testing.T) {
	for _, cut := range []int{1, headerSize - 1, headerSize + 1} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := Open(dir)
			appendAll(t, j, "alpha", "beta", "gamma")
			j.Close()
			path := filepath.Join(dir, walName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			full := len(data)
			if err := os.WriteFile(path, data[:full-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Torn {
				t.Error("torn tail not reported")
			}
			if got := tailStrings(r); len(got) != 2 || got[1] != "beta" {
				t.Errorf("tail = %v, want intact prefix [alpha beta]", got)
			}
			// Reopen and append: the torn bytes are overwritten, and a
			// subsequent restore sees a clean log again.
			j2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if j2.Seq() != 2 {
				t.Errorf("seq after tear = %d, want 2", j2.Seq())
			}
			appendAll(t, j2, "delta")
			j2.Close()
			r, _ = Restore(dir)
			if r.Torn {
				t.Error("tear survived a reopen+append")
			}
			if got := tailStrings(r); len(got) != 3 || got[2] != "delta" {
				t.Errorf("tail = %v, want [alpha beta delta]", got)
			}
		})
	}
}

// Flipping a payload byte fails the CRC; recovery stops at the corruption.
func TestCorruptRecordDetected(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	appendAll(t, j, "good", "soon-corrupt")
	j.Close()
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	r, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Torn || len(r.Tail) != 1 || string(r.Tail[0]) != "good" {
		t.Errorf("recovery = torn=%v tail=%v, want torn with [good]", r.Torn, tailStrings(r))
	}
}

// A corrupt snapshot is unrecoverable (its history was truncated away) and
// must be a loud error, not a silent empty state.
func TestCorruptSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir)
	appendAll(t, j, "a")
	if err := j.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, snapName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := Restore(dir); err == nil {
		t.Error("corrupt snapshot restored without error")
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt snapshot opened without error")
	}
}

// An oversize length prefix is rejected without allocating the claimed size.
func TestOversizeRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRecord(&buf, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0], data[1], data[2], data[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readRecord(bytes.NewReader(data)); err == nil {
		t.Error("oversize record accepted")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := Open(t.TempDir())
	j.Close()
	if err := j.Append([]byte("x")); err == nil {
		t.Error("append after close succeeded")
	}
	if err := j.Snapshot([]byte("x")); err == nil {
		t.Error("snapshot after close succeeded")
	}
}
