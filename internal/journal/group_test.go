package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// countWS counts Sync calls through to the real wal.
type countWS struct {
	inner WriteSyncer
	syncs int
}

func (c *countWS) Write(p []byte) (int, error) { return c.inner.Write(p) }
func (c *countWS) Sync() error {
	c.syncs++
	return c.inner.Sync()
}

// TestGroupCommitBatchesFsync: under group-commit, N appends cost zero
// fsyncs until the byte threshold or an explicit Flush; per-append mode
// costs one each.
func TestGroupCommitBatchesFsync(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cw := &countWS{inner: j.out}
	j.out = cw

	// Baseline: per-append fsync.
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte("solo")); err != nil {
			t.Fatal(err)
		}
	}
	if cw.syncs != 3 {
		t.Fatalf("per-append mode: %d syncs after 3 appends, want 3", cw.syncs)
	}

	// Group-commit with an unreachable window and a large byte threshold:
	// appends must not sync at all.
	if err := j.SetGroupCommit(time.Hour, 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append([]byte(fmt.Sprintf("batched-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if cw.syncs != 3 {
		t.Fatalf("group-commit: %d syncs after 100 appends, want still 3", cw.syncs)
	}

	// The explicit barrier flushes the batch in one fsync.
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 4 {
		t.Fatalf("after Flush: %d syncs, want 4", cw.syncs)
	}
	// An empty batch is a free barrier.
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 4 {
		t.Fatalf("empty Flush synced: %d, want 4", cw.syncs)
	}

	// The byte threshold forces a flush mid-stream.
	if err := j.SetGroupCommit(time.Hour, 64); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 5 {
		t.Fatalf("byte threshold: %d syncs, want 5", cw.syncs)
	}

	// Everything appended is durable and ordered after recovery.
	rec, err := Restore(j.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 104 {
		t.Fatalf("recovered %d records, want 104", len(rec.Tail))
	}
	if string(rec.Tail[3]) != "batched-0" || string(rec.Tail[102]) != "batched-99" {
		t.Fatalf("recovered records out of order: %q ... %q", rec.Tail[3], rec.Tail[102])
	}
}

// TestGroupCommitWindowFlush: the window timer syncs a lingering batch
// without any further journal calls.
func TestGroupCommitWindowFlush(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cw := &countWS{inner: j.out}
	j.out = cw
	if err := j.SetGroupCommit(5*time.Millisecond, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("lingering")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		synced := cw.syncs > 0 && j.pendingN == 0
		j.mu.Unlock()
		if synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window timer never flushed the batch")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitDisable: switching back to per-append mode flushes the
// pending batch and restores the old cadence.
func TestGroupCommitDisable(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cw := &countWS{inner: j.out}
	j.out = cw
	if err := j.SetGroupCommit(time.Hour, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 0 {
		t.Fatalf("batched append synced: %d", cw.syncs)
	}
	if err := j.SetGroupCommit(0, 0); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 1 {
		t.Fatalf("disable must flush the batch: %d syncs, want 1", cw.syncs)
	}
	if err := j.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 2 {
		t.Fatalf("per-append mode not restored: %d syncs, want 2", cw.syncs)
	}
}

// TestGroupCommitCloseFlushes: Close is a barrier; nothing acknowledged is
// lost across an orderly shutdown.
func TestGroupCommitCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cw := &countWS{inner: j.out}
	j.out = cw
	if err := j.SetGroupCommit(time.Hour, 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 1 {
		t.Fatalf("Close flushed %d times, want 1", cw.syncs)
	}
	rec, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 7 {
		t.Fatalf("recovered %d records, want 7", len(rec.Tail))
	}
}

// TestGroupCommitSnapshotFlushesPending: Snapshot drains the batch before
// compacting, so a snapshot failure cannot strand unsynced records.
func TestGroupCommitSnapshotFlushesPending(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cw := &countWS{inner: j.out}
	j.out = cw
	if err := j.SetGroupCommit(time.Hour, 1<<20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot([]byte("state-after-5")); err != nil {
		t.Fatal(err)
	}
	if cw.syncs != 1 {
		t.Fatalf("Snapshot flushed %d times, want 1", cw.syncs)
	}
	rec, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "state-after-5" || len(rec.Tail) != 0 {
		t.Fatalf("recovery = snapshot %q + %d tail records", rec.Snapshot, len(rec.Tail))
	}
	// Appends after the compaction keep their sequence continuity.
	if err := j.Append([]byte("post-snap")); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err = Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || string(rec.Tail[0]) != "post-snap" {
		t.Fatalf("post-snapshot tail = %q", rec.Tail)
	}
}

// TestGroupCommitTornBatchTruncation is the torn-batch corpus: a crash that
// loses an arbitrary suffix of the unsynced batch must recover to an exact,
// bit-for-bit prefix of the appended records — a clean truncation, never a
// gap, reorder, or mutation. Every byte offset in the unsynced tail is a
// corpus entry.
func TestGroupCommitTornBatchTruncation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetGroupCommit(time.Hour, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Mixed-size records so tear offsets land in headers, payloads, and
	// exactly on frame boundaries.
	var want [][]byte
	for i := 0; i < 12; i++ {
		p := []byte(fmt.Sprintf("record-%02d-%s", i, string(make([]byte, i*7))))
		want = append(want, p)
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Read the wal image this process wrote (the OS page cache view — what
	// a kernel-surviving crash keeps in full, and a power cut keeps a
	// prefix of).
	img, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for cut := 0; cut <= len(img); cut++ {
		crash := t.TempDir()
		if err := os.WriteFile(filepath.Join(crash, walName), img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Restore(crash)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// The recovered tail must be an exact prefix of the appended records.
		if len(rec.Tail) > len(want) {
			t.Fatalf("cut %d: recovered %d records from %d appends", cut, len(rec.Tail), len(want))
		}
		for i, p := range rec.Tail {
			if string(p) != string(want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, p, want[i])
			}
		}
		// Reopening the crashed wal must drop the tear and keep appending
		// from the intact prefix (the bit-for-bit Restore contract after a
		// reopen, not just a read).
		j2, err := Open(crash)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := j2.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut %d: post-crash append: %v", cut, err)
		}
		j2.Close()
		rec2, err := Restore(crash)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(rec2.Tail) != len(rec.Tail)+1 ||
			string(rec2.Tail[len(rec2.Tail)-1]) != "post-crash" {
			t.Fatalf("cut %d: post-crash tail has %d records", cut, len(rec2.Tail))
		}
	}
}

// TestGroupCommitBackgroundFlushFailureLatches: an fsync failure on the
// window timer's goroutine latches the journal broken, surfaced to the
// writer on its next call.
func TestGroupCommitBackgroundFlushFailureLatches(t *testing.T) {
	j, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fw := &faultyWS{inner: j.out, writeAfter: -1, syncErr: syscall.ENOSPC}
	j.out = fw
	if err := j.SetGroupCommit(2*time.Millisecond, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("doomed")); err != nil {
		t.Fatal(err) // buffered append succeeds; the flush will fail
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Broken() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background flush failure never latched broken")
		}
		time.Sleep(time.Millisecond)
	}
	if err := j.Append([]byte("after")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after background failure = %v, want ErrBroken", err)
	}
	if err := j.Flush(); !errors.Is(err, ErrBroken) {
		t.Fatalf("flush after background failure = %v, want ErrBroken", err)
	}
}
