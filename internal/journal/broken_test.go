package journal

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
)

// faultyWS wraps the real wal WriteSyncer, failing writes after a byte
// budget and/or failing Sync — the error-injection seam for the broken
// latch. Bytes under the budget still reach the underlying file, so the
// on-disk state after a mid-append failure is a genuinely torn frame.
type faultyWS struct {
	inner      WriteSyncer
	writeAfter int   // fail writes once this many bytes went through (-1 never)
	written    int
	writeErr   error
	syncErr    error
}

func (f *faultyWS) Write(p []byte) (int, error) {
	if f.writeAfter >= 0 && f.written+len(p) > f.writeAfter {
		n := f.writeAfter - f.written
		if n > 0 {
			n, _ = f.inner.Write(p[:n])
		} else {
			n = 0
		}
		f.written += n
		return n, f.writeErr
	}
	n, err := f.inner.Write(p)
	f.written += n
	return n, err
}

func (f *faultyWS) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	return f.inner.Sync()
}

func TestAppendFsyncFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("healthy")); err != nil {
		t.Fatal(err)
	}

	// ENOSPC on fsync: the append must fail and latch the journal broken.
	fw := &faultyWS{inner: j.out, writeAfter: -1, syncErr: syscall.ENOSPC}
	j.out = fw
	err = j.Append([]byte("doomed"))
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append error = %v, want ENOSPC", err)
	}
	if j.Broken() == nil {
		t.Fatal("journal must latch broken after an fsync failure")
	}

	// Even with healthy storage again, further writes are refused: the
	// synced prefix of the wal is unknown.
	fw.syncErr = nil
	if err := j.Append([]byte("late")); !errors.Is(err, ErrBroken) {
		t.Fatalf("post-failure append error = %v, want ErrBroken", err)
	}
	if err := j.Snapshot([]byte("snap")); !errors.Is(err, ErrBroken) {
		t.Fatalf("post-failure snapshot error = %v, want ErrBroken", err)
	}
	if got := j.Seq(); got != 1 {
		t.Errorf("seq = %d, want 1 (failed append must not advance it)", got)
	}

	// Recovery drops the unsynced suffix's tear (if any) and keeps the
	// intact prefix.
	rec, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) < 1 || string(rec.Tail[0]) != "healthy" {
		t.Fatalf("recovery tail = %q, want the pre-failure record first", rec.Tail)
	}
}

func TestMidAppendWriteFailureLatchesBroken(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}

	// Fail mid-frame: a few header bytes land on disk, then the device
	// errors. The wal now ends in a torn record.
	fw := &faultyWS{inner: j.out, writeAfter: 6, writeErr: syscall.EIO}
	j.out = fw
	if err := j.Append([]byte("torn-record-payload")); err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("append error = %v, want EIO", err)
	}
	if j.Broken() == nil {
		t.Fatal("journal must latch broken after a mid-append write failure")
	}
	if err := j.Append([]byte("after")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after tear = %v, want ErrBroken", err)
	}

	// Recovery keeps the intact record and reports the torn tail.
	rec, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tail) != 1 || string(rec.Tail[0]) != "first" {
		t.Fatalf("recovery tail = %q, want exactly the intact record", rec.Tail)
	}
	if !rec.Torn {
		t.Error("recovery must flag the torn tail")
	}
}

func TestWriteRecordRoundTripThroughSeam(t *testing.T) {
	// The seam must not change framing: a record written through a plain
	// buffer WriteSyncer reads back bit-identical.
	var buf bytes.Buffer
	ws := nopSync{&buf}
	if err := writeRecord(ws, 7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	rec, n, err := readRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.seq != 7 || string(rec.payload) != "payload" || n != int64(headerSize+7) {
		t.Fatalf("round trip = %+v (%d bytes)", rec, n)
	}
}

type nopSync struct{ *bytes.Buffer }

func (nopSync) Sync() error { return nil }
