// Package journal gives the Coordinator durable control-plane state: a
// length-prefixed, CRC-checked write-ahead log plus periodic snapshots, laid
// out so that a crash at any instant — mid-append, mid-snapshot, between
// snapshot and log truncation — loses at most the record being written.
//
// A journal directory holds two files:
//
//	wal       append-only records, fsynced per append (or per batch, with
//	          group-commit — see SetGroupCommit)
//	snapshot  the newest compaction, written atomically (tmp + rename)
//
// Every record (in either file) is framed as
//
//	[4-byte big-endian payload length][4-byte CRC-32 (IEEE)][8-byte sequence][payload]
//
// where the CRC covers the sequence and payload. Sequence numbers increase
// by one per append; the snapshot records the sequence it covers, so
// recovery is "load snapshot, then replay wal records with a later
// sequence". A wal that still contains records at or before the snapshot's
// sequence (a crash between snapshot rename and wal truncation) replays
// cleanly: the stale prefix is skipped. A torn final record (a crash
// mid-append) is detected by its short frame or CRC mismatch and dropped;
// anything before it is intact by construction.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	walName  = "wal"
	snapName = "snapshot"

	// MaxRecord bounds a single payload so a corrupt length prefix cannot
	// force an unbounded allocation during recovery.
	MaxRecord = 64 << 20

	headerSize = 4 + 4 + 8 // length + crc + seq
)

// ErrBroken marks a journal that refuses writes after a storage failure.
// Once an append write or fsync fails, the wal's on-disk tail is unknown —
// appending past a possibly-torn frame would silently orphan every later
// record at recovery — so the journal latches broken and fails fast instead.
var ErrBroken = errors.New("journal: broken")

// WriteSyncer is the wal write seam: *os.File satisfies it, and tests
// substitute error-injecting implementations to exercise the broken latch.
type WriteSyncer interface {
	io.Writer
	Sync() error
}

// DefaultGroupCommitBytes is the batch-size flush threshold SetGroupCommit
// applies when given a non-positive maxBytes.
const DefaultGroupCommitBytes = 256 << 10

// Journal is an open journal directory. The Coordinator serializes Append
// and Snapshot under its state lock so the log order equals the
// state-mutation order; an internal mutex additionally makes every method
// safe against the group-commit window timer, which flushes from its own
// goroutine.
type Journal struct {
	mu     sync.Mutex
	dir    string
	wal    *os.File
	out    WriteSyncer // wal, unless a test injected a wrapper
	seq    uint64      // sequence of the last record written (snapshot or wal)
	broken error       // first storage failure; latched, see ErrBroken

	// Group-commit state (see SetGroupCommit). While gcWindow > 0, appends
	// buffer in the OS page cache and a batch is fsynced when pendingBytes
	// reaches gcBytes or the window timer fires, whichever is first.
	gcWindow     time.Duration
	gcBytes      int
	pendingN     int // appended records not yet covered by an fsync
	pendingBytes int
	timer        *time.Timer // armed while a window flush is scheduled
}

// Open creates the directory if needed, scans any existing state to find
// the last sequence number, and opens the wal for appending.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir}
	if snap, seq, err := readSnapshotFile(filepath.Join(dir, snapName)); err != nil {
		return nil, err
	} else if snap != nil {
		j.seq = seq
	}
	// Scan the wal tail for the true last sequence (it may run past the
	// snapshot) and note where intact records end so a torn tail is
	// overwritten by the next append instead of corrupting the frame stream.
	end := int64(0)
	if f, err := os.Open(filepath.Join(dir, walName)); err == nil {
		for {
			rec, n, err := readRecord(f)
			if err != nil {
				break // torn or absent tail: intact prefix ends here
			}
			end += n
			if rec.seq > j.seq {
				j.seq = rec.seq
			}
		}
		f.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := wal.Truncate(end); err != nil {
		wal.Close()
		return nil, fmt.Errorf("journal: drop torn tail: %w", err)
	}
	if _, err := wal.Seek(end, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.wal = wal
	j.out = wal
	return j, nil
}

// Broken returns the first storage failure that latched the journal broken,
// or nil while it is healthy.
func (j *Journal) Broken() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken
}

// fail latches the journal broken and returns the failure.
func (j *Journal) fail(err error) error {
	if j.broken == nil {
		j.broken = err
	}
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Seq returns the sequence number of the last record written.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// SetGroupCommit switches the journal from per-append fsync to batched
// fsync: appends buffer in the OS page cache, and the batch is synced when
// its size reaches maxBytes (DefaultGroupCommitBytes if non-positive) or
// window elapses after the batch's first append, whichever is first. A
// non-positive window restores per-append fsync.
//
// The durability contract weakens in exactly one way: a crash may lose the
// unsynced tail — the most recent appends, up to one window or one batch.
// What recovery reads is still bit-for-bit exact: records are written to the
// wal in order, so a lost tail is a clean truncation (possibly plus one torn
// record at the cut, dropped like any other tear), never a gap or a
// reordering. Restore after a mid-batch crash yields a prefix of the
// acknowledged state, the same guarantee a crash between two per-append
// fsyncs always had.
func (j *Journal) SetGroupCommit(window time.Duration, maxBytes int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if window <= 0 {
		err := j.flushLocked()
		j.gcWindow, j.gcBytes = 0, 0
		return err
	}
	if maxBytes <= 0 {
		maxBytes = DefaultGroupCommitBytes
	}
	j.gcWindow, j.gcBytes = window, maxBytes
	return nil
}

// Flush fsyncs any appends still pending under group-commit; it is the
// durability barrier callers take before acknowledging externally visible
// effects. A no-op when nothing is pending.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, j.broken)
	}
	return j.flushLocked()
}

// flushLocked fsyncs the pending batch. Caller holds j.mu.
func (j *Journal) flushLocked() error {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	if j.pendingN == 0 {
		return nil
	}
	j.pendingN, j.pendingBytes = 0, 0
	if err := j.out.Sync(); err != nil {
		return j.fail(fmt.Errorf("journal: sync: %w", err))
	}
	return nil
}

// windowExpired is the group-commit timer callback: it flushes whatever
// batch accumulated during the window. A failure latches the journal broken,
// surfaced to the writer on its next Append.
func (j *Journal) windowExpired() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.timer = nil
	if j.wal == nil || j.broken != nil {
		return
	}
	j.flushLocked()
}

// Append writes one record to the wal and makes it durable: immediately
// under the default per-append fsync, or within one group-commit window/
// batch after SetGroupCommit. Any write or fsync failure latches the journal
// broken: the record may be torn on disk, so further appends are refused
// with ErrBroken rather than silently diverging from the in-memory state.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, j.broken)
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	if err := writeRecord(j.out, j.seq+1, payload); err != nil {
		return j.fail(fmt.Errorf("journal: append: %w", err))
	}
	if j.gcWindow <= 0 {
		if err := j.out.Sync(); err != nil {
			return j.fail(fmt.Errorf("journal: sync: %w", err))
		}
		j.seq++
		return nil
	}
	j.seq++
	j.pendingN++
	j.pendingBytes += headerSize + len(payload)
	if j.pendingBytes >= j.gcBytes {
		return j.flushLocked()
	}
	if j.timer == nil {
		j.timer = time.AfterFunc(j.gcWindow, j.windowExpired)
	}
	return nil
}

// Snapshot atomically replaces the snapshot file with the given payload,
// stamped with the current sequence, then truncates the wal: every record
// the snapshot covers is now redundant. A crash between the rename and the
// truncation only leaves stale wal records, which recovery skips by
// sequence.
func (j *Journal) Snapshot(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, j.broken)
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds limit", len(payload))
	}
	// Any group-commit batch still pending covers records the snapshot
	// subsumes; flush it so a failed snapshot leaves a fully durable wal.
	if err := j.flushLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(j.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := writeRecord(f, j.seq, payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// The snapshot file is in place; from here a failure leaves the wal
	// position unknown, so it latches the journal broken too.
	if err := j.wal.Truncate(0); err != nil {
		return j.fail(fmt.Errorf("journal: truncate wal: %w", err))
	}
	if _, err := j.wal.Seek(0, io.SeekStart); err != nil {
		return j.fail(fmt.Errorf("journal: %w", err))
	}
	if err := j.wal.Sync(); err != nil {
		return j.fail(fmt.Errorf("journal: sync: %w", err))
	}
	return nil
}

// Close flushes any pending group-commit batch and releases the wal file
// handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	var ferr error
	if j.broken == nil {
		ferr = j.flushLocked()
	} else if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	err := j.wal.Close()
	j.wal = nil
	if ferr != nil {
		return ferr
	}
	return err
}

// Recovery is the result of reading a journal directory: the newest
// snapshot payload (nil if none was ever taken) and the wal records that
// postdate it, oldest first. Torn reports whether a partial final wal
// record was dropped.
type Recovery struct {
	Snapshot []byte
	SnapSeq  uint64
	Tail     [][]byte
	Torn     bool
}

// Restore reads a journal directory without opening it for writing. A
// missing or empty directory recovers to an empty state, not an error.
func Restore(dir string) (*Recovery, error) {
	r := &Recovery{}
	snap, seq, err := readSnapshotFile(filepath.Join(dir, snapName))
	if err != nil {
		return nil, err
	}
	r.Snapshot, r.SnapSeq = snap, seq
	f, err := os.Open(filepath.Join(dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	for {
		rec, _, err := readRecord(f)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// A short frame or CRC mismatch at the tail is a torn final
			// record: everything before it is intact, so recovery keeps
			// the prefix and drops the tear.
			r.Torn = true
			break
		}
		if rec.seq <= r.SnapSeq && r.Snapshot != nil {
			continue // stale record already covered by the snapshot
		}
		r.Tail = append(r.Tail, rec.payload)
	}
	return r, nil
}

// readSnapshotFile loads and verifies the snapshot record, or returns
// (nil, 0, nil) when no snapshot exists. A corrupt snapshot is an error —
// unlike a torn wal tail it cannot be skipped, because everything it
// covered was truncated away.
func readSnapshotFile(path string) ([]byte, uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	rec, _, err := readRecord(f)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: corrupt snapshot %s: %w", path, err)
	}
	return rec.payload, rec.seq, nil
}

type record struct {
	seq     uint64
	payload []byte
}

// writeRecord frames one record onto w.
func writeRecord(w io.Writer, seq uint64, payload []byte) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:16])
	crc.Write(payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRecord parses one record, returning it and the bytes consumed.
func readRecord(r io.Reader) (record, int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return record{}, 0, fmt.Errorf("journal: torn record header: %w", err)
		}
		return record{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxRecord {
		return record{}, 0, fmt.Errorf("journal: record of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return record{}, 0, fmt.Errorf("journal: torn record payload: %w", err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:16])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(hdr[4:8]) {
		return record{}, 0, fmt.Errorf("journal: record checksum mismatch")
	}
	return record{seq: binary.BigEndian.Uint64(hdr[8:16]), payload: payload}, headerSize + int64(n), nil
}
