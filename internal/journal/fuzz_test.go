package journal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// frameRecord builds one on-disk record frame for seed corpora.
func frameRecord(seq uint64, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeRecord(&buf, seq, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRestore throws arbitrary snapshot and wal bytes at recovery. Restore
// must never panic and never invent records; whenever it succeeds, the
// directory must also be openable for appending, and an append must extend
// exactly the recovered tail — the torn/stale bytes Restore skipped must
// stay invisible.
func FuzzRestore(f *testing.F) {
	snap := frameRecord(3, []byte(`{"snap":true}`))
	recs := append(frameRecord(4, []byte("r4")), frameRecord(5, []byte("r5"))...)

	// Clean states: snapshot + newer wal, wal only, snapshot only.
	f.Add(snap, recs)
	f.Add([]byte(nil), recs)
	f.Add(snap, []byte(nil))
	// Stale wal prefix at or before the snapshot sequence (crash between
	// snapshot rename and wal truncation).
	f.Add(snap, append(frameRecord(2, []byte("stale")), recs...))
	// Torn tails: mid-header and mid-payload.
	f.Add(snap, append(append([]byte(nil), recs...), frameRecord(6, []byte("torn"))[:7]...))
	f.Add(snap, append(append([]byte(nil), recs...), frameRecord(6, []byte("torn-payload"))[:headerSize+4]...))
	// Flipped CRC byte in the final record.
	bad := append([]byte(nil), recs...)
	bad[len(bad)-len(frameRecord(5, []byte("r5")))+5] ^= 0xFF
	f.Add(snap, bad)
	// Oversize length prefix.
	f.Add(snap, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	// Corrupt snapshot (unrecoverable by design).
	f.Add([]byte("not a snapshot"), recs)

	f.Fuzz(func(t *testing.T, snapData, walData []byte) {
		dir := t.TempDir()
		if len(snapData) > 0 {
			if err := os.WriteFile(filepath.Join(dir, snapName), snapData, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if len(walData) > 0 {
			if err := os.WriteFile(filepath.Join(dir, walName), walData, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, err := Restore(dir)
		if err != nil {
			return // corrupt snapshots fail cleanly; that is the contract
		}
		again, err := Restore(dir)
		if err != nil || !reflect.DeepEqual(r, again) {
			t.Fatalf("Restore is not idempotent: %+v / %v vs %+v", r, err, again)
		}

		// A restorable directory must be appendable: Open drops the same
		// torn/stale bytes, and a fresh append lands right after the
		// recovered tail.
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("Restore succeeded but Open failed: %v", err)
		}
		payload := []byte("appended-after-recovery")
		if err := j.Append(payload); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Restore(dir)
		if err != nil {
			t.Fatalf("Restore after append: %v", err)
		}
		if r2.Torn {
			t.Fatal("append rewrote the tail but Restore still reports a tear")
		}
		want := append(append([][]byte{}, r.Tail...), payload)
		if !reflect.DeepEqual(r2.Tail, want) {
			t.Fatalf("append did not extend the recovered tail:\nbefore %q\nafter  %q", r.Tail, r2.Tail)
		}
		if !bytes.Equal(r2.Snapshot, r.Snapshot) || r2.SnapSeq != r.SnapSeq {
			t.Fatal("append changed the recovered snapshot")
		}
	})
}

// FuzzReadRecord checks the frame parser alone: arbitrary bytes must never
// panic or over-allocate, and any record it accepts must re-frame to the
// exact bytes consumed.
func FuzzReadRecord(f *testing.F) {
	f.Add(frameRecord(1, []byte("payload")))
	f.Add(frameRecord(0, nil))
	f.Add(frameRecord(1, []byte("payload"))[:5])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := readRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("claimed to consume %d of %d bytes", n, len(data))
		}
		if got := frameRecord(rec.seq, rec.payload); !bytes.Equal(got, data[:n]) {
			t.Fatalf("accepted record does not re-frame to its input:\n%x\nvs\n%x", got, data[:n])
		}
		var hdrLen uint32 = binary.BigEndian.Uint32(data[0:4])
		if int64(hdrLen) != n-headerSize {
			t.Fatalf("consumed %d payload bytes but header declared %d", n-headerSize, hdrLen)
		}
	})
}
