package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 10})
	if s.Count != 4 || s.Min != 1 || s.Max != 10 || s.Mean != 4 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {200, 4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p50 := Percentile(xs, 50)
		s := Summarize(xs)
		return p50 >= s.Min && p50 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRow("gamma") // short row padded
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("rule = %q", lines[1])
	}
	if !strings.Contains(out, "2.5") {
		t.Errorf("formatted float missing:\n%s", out)
	}
	// Columns align: every line has the same prefix width for column 2.
	col2 := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col2:], "1") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

// TestAddRowfGuardsNonFinite regression-tests the EXPERIMENTS-table NaN
// leak: an empty-sample Percentile returns NaN, which AddRowf must render as
// "n/a" instead of printing NaN into the report.
func TestAddRowfGuardsNonFinite(t *testing.T) {
	tb := NewTable("scenario", "p95", "ratio")
	tb.AddRowf("empty", Percentile(nil, 95), math.Inf(1))
	tb.AddRowf("neg", math.Inf(-1), 1.25)
	out := tb.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("non-finite value leaked into table:\n%s", out)
	}
	if got := strings.Count(out, "n/a"); got != 3 {
		t.Errorf("n/a cells = %d, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, "1.25") {
		t.Errorf("finite value lost:\n%s", out)
	}
}

func TestTableTruncatesLongRows(t *testing.T) {
	tb := NewTable("only")
	tb.AddRow("a", "extra", "cells")
	if strings.Contains(tb.String(), "extra") {
		t.Error("extra cells should be dropped")
	}
}
