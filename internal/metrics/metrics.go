// Package metrics provides the summary statistics and fixed-width tables
// the experiment harness prints (EXPERIMENTS.md rows).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds basic distribution statistics.
type Summary struct {
	Count          int
	Mean, Min, Max float64
}

// Summarize computes a Summary over the samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	return s
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
// Empty input returns NaN; table-rendering callers go through AddRowf, which
// prints non-finite values as "n/a" instead of leaking NaN into EXPERIMENTS
// tables.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table renders rows with auto-sized columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with %v. Non-finite float64 cells (NaN from an
// empty-sample Percentile, ±Inf from a division) render as "n/a" rather
// than polluting experiment tables.
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) || math.IsInf(v, 0) {
				strs[i] = "n/a"
			} else {
				strs[i] = fmt.Sprintf("%.4g", v)
			}
		default:
			strs[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(strs...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
