// Package unit defines the scalar quantities shared by every EchelonFlow
// subsystem: simulated time, data volume, and transmission rate.
//
// The network fabric is a fluid-flow model, so all three quantities are
// real-valued. Times are in seconds, volumes in bytes, rates in bytes per
// second; nothing in the codebase depends on those units beyond consistency,
// so scenarios are free to use abstract units (the paper's Fig. 2 uses a
// unit-bandwidth link).
package unit

import (
	"fmt"
	"math"
)

// Time is a point on (or a span of) the simulated clock, in seconds.
type Time float64

// Bytes is a volume of data.
type Bytes float64

// Rate is a transmission rate in bytes per second.
type Rate float64

// Eps is the tolerance used for completion detection and feasibility
// comparisons throughout the fluid model. Event times are derived from
// divisions of float64 quantities, so exact comparisons are not meaningful.
const Eps = 1e-9

// Inf is an unbounded time, used for "no next event".
var Inf = Time(math.Inf(1))

// IsInf reports whether t is unbounded.
func (t Time) IsInf() bool { return math.IsInf(float64(t), 0) }

// Before reports whether t is strictly earlier than u beyond tolerance.
func (t Time) Before(u Time) bool { return float64(t) < float64(u)-Eps }

// After reports whether t is strictly later than u beyond tolerance.
func (t Time) After(u Time) bool { return float64(t) > float64(u)+Eps }

// ApproxEq reports whether t and u are equal within tolerance.
func (t Time) ApproxEq(u Time) bool { return math.Abs(float64(t-u)) <= Eps }

// String formats the time with enough precision for traces.
func (t Time) String() string {
	if t.IsInf() {
		return "inf"
	}
	return fmt.Sprintf("%.6g", float64(t))
}

// Zeroish reports whether b is zero within tolerance.
func (b Bytes) Zeroish() bool { return math.Abs(float64(b)) <= Eps }

// At returns the time needed to transmit b bytes at rate r.
// A non-positive rate yields Inf.
func (b Bytes) At(r Rate) Time {
	if r <= Eps {
		return Inf
	}
	return Time(float64(b) / float64(r))
}

// Over returns the volume transmitted at rate r for duration d.
func (r Rate) Over(d Time) Bytes {
	if d <= 0 {
		return 0
	}
	return Bytes(float64(r) * float64(d))
}

// MinTime returns the smaller of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinRate returns the smaller of a and b.
func MinRate(a, b Rate) Rate {
	if a < b {
		return a
	}
	return b
}

// MaxRate returns the larger of a and b.
func MaxRate(a, b Rate) Rate {
	if a > b {
		return a
	}
	return b
}

// ClampRate bounds r to [0, max].
func ClampRate(r, max Rate) Rate {
	if r < 0 {
		return 0
	}
	if r > max {
		return max
	}
	return r
}
