package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesAt(t *testing.T) {
	tests := []struct {
		name string
		b    Bytes
		r    Rate
		want Time
	}{
		{"unit", 1, 1, 1},
		{"double", 10, 5, 2},
		{"fraction", 1, 4, 0.25},
		{"zero bytes", 0, 3, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.At(tt.r); !got.ApproxEq(tt.want) {
				t.Errorf("(%v).At(%v) = %v, want %v", tt.b, tt.r, got, tt.want)
			}
		})
	}
}

func TestBytesAtZeroRate(t *testing.T) {
	if got := Bytes(5).At(0); !got.IsInf() {
		t.Errorf("At(0) = %v, want inf", got)
	}
	if got := Bytes(5).At(-1); !got.IsInf() {
		t.Errorf("At(-1) = %v, want inf", got)
	}
}

func TestRateOver(t *testing.T) {
	if got := Rate(4).Over(2.5); got != 10 {
		t.Errorf("Over = %v, want 10", got)
	}
	if got := Rate(4).Over(-1); got != 0 {
		t.Errorf("Over negative duration = %v, want 0", got)
	}
}

func TestTimeComparisons(t *testing.T) {
	a, b := Time(1.0), Time(1.0+Eps/2)
	if a.Before(b) || b.After(a) {
		t.Error("within-epsilon values should not compare as strictly ordered")
	}
	if !a.ApproxEq(b) {
		t.Error("within-epsilon values should be ApproxEq")
	}
	if !Time(1).Before(2) {
		t.Error("1 should be Before 2")
	}
	if !Time(2).After(1) {
		t.Error("2 should be After 1")
	}
}

func TestInf(t *testing.T) {
	if !Inf.IsInf() {
		t.Error("Inf.IsInf() = false")
	}
	if Inf.String() != "inf" {
		t.Errorf("Inf.String() = %q", Inf.String())
	}
	if Time(3).IsInf() {
		t.Error("finite time reported as inf")
	}
}

func TestMinMax(t *testing.T) {
	if MinTime(1, 2) != 1 || MaxTime(1, 2) != 2 {
		t.Error("MinTime/MaxTime wrong")
	}
	if MinRate(3, 2) != 2 || MaxRate(3, 2) != 3 {
		t.Error("MinRate/MaxRate wrong")
	}
}

func TestClampRate(t *testing.T) {
	tests := []struct {
		r, max, want Rate
	}{
		{-1, 5, 0},
		{3, 5, 3},
		{7, 5, 5},
	}
	for _, tt := range tests {
		if got := ClampRate(tt.r, tt.max); got != tt.want {
			t.Errorf("ClampRate(%v,%v) = %v, want %v", tt.r, tt.max, got, tt.want)
		}
	}
}

func TestZeroish(t *testing.T) {
	if !Bytes(0).Zeroish() || !Bytes(Eps/2).Zeroish() {
		t.Error("near-zero volume not Zeroish")
	}
	if Bytes(1).Zeroish() {
		t.Error("1 byte reported Zeroish")
	}
}

// Property: transmitting for the exact duration At reports ships the volume.
func TestRoundTripProperty(t *testing.T) {
	f := func(rawB, rawR float64) bool {
		b := Bytes(math.Abs(rawB))
		r := Rate(math.Abs(rawR)) + 1 // keep rate positive and sane
		if math.IsInf(float64(b), 0) || math.IsNaN(float64(b)) {
			return true
		}
		d := b.At(r)
		got := r.Over(d)
		diff := math.Abs(float64(got - b))
		return diff <= 1e-6*math.Max(1, float64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MinTime/MaxTime bracket both arguments.
func TestMinMaxProperty(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := MinTime(Time(a), Time(b)), MaxTime(Time(a), Time(b))
		return lo <= Time(a) && lo <= Time(b) && hi >= Time(a) && hi >= Time(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	if s := Time(2.5).String(); s != "2.5" {
		t.Errorf("String = %q, want 2.5", s)
	}
}
