package collective

import (
	"fmt"
	"strings"
	"testing"

	"echelonflow/internal/dag"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/sim"
	"echelonflow/internal/unit"
)

func workers(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = fmt.Sprintf("w%d", i)
	}
	return out
}

func TestRingAllReduceStructure(t *testing.T) {
	g := dag.New()
	op, err := RingAllReduce(g, "ar", workers(4), 8, "grp", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2(m-1) steps × m flows = 24 flows.
	if g.Len() != 24 || len(op.All) != 24 {
		t.Errorf("node count = %d/%d, want 24", g.Len(), len(op.All))
	}
	if len(op.Last) != 4 {
		t.Errorf("final flows = %d, want 4", len(op.Last))
	}
	if len(op.Step0) != 4 || !strings.Contains(op.Step0[0], "/rs/s0") {
		t.Errorf("entry flows = %v", op.Step0)
	}
	for _, id := range op.Last {
		if !strings.Contains(id, "/ag/s2") {
			t.Errorf("final flow %q should be an all-gather step-2 flow", id)
		}
	}
	// Chunk size = 8/4 = 2.
	for _, n := range g.Nodes() {
		if n.Size != 2 {
			t.Errorf("flow %s size = %v, want 2", n.ID, n.Size)
		}
		if n.Group != "grp" {
			t.Errorf("flow %s group = %q", n.ID, n.Group)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingStepDependencies(t *testing.T) {
	g := dag.New()
	if _, err := RingReduceScatter(g, "x", workers(3), 3, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	// Worker 1's step-1 flow depends on worker 0's step-0 flow.
	deps := g.Deps("x/rs/s1w1")
	if len(deps) != 1 || deps[0] != "x/rs/s0w0" {
		t.Errorf("deps of s1w1 = %v, want [x/rs/s0w0]", deps)
	}
	// Ring wrap: worker 0's step-1 flow depends on worker 2's step-0 flow.
	deps = g.Deps("x/rs/s1w0")
	if len(deps) != 1 || deps[0] != "x/rs/s0w2" {
		t.Errorf("deps of s1w0 = %v, want [x/rs/s0w2]", deps)
	}
}

func TestRingExternalDeps(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "compute", Kind: dag.Compute, Host: "w0", Duration: 1})
	if _, err := RingAllGather(g, "x", workers(2), 2, "", 0, []string{"compute"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"x/ag/s0w0", "x/ag/s0w1"} {
		deps := g.Deps(id)
		if len(deps) != 1 || deps[0] != "compute" {
			t.Errorf("deps of %s = %v", id, deps)
		}
	}
}

func TestRingValidation(t *testing.T) {
	g := dag.New()
	if _, err := RingAllReduce(nil, "x", workers(2), 1, "", 0, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := RingAllReduce(g, "x", workers(1), 1, "", 0, nil); err == nil {
		t.Error("single worker accepted")
	}
	if _, err := RingAllReduce(g, "x", []string{"a", "a"}, 1, "", 0, nil); err == nil {
		t.Error("duplicate workers accepted")
	}
	if _, err := RingAllReduce(g, "x", []string{"a", ""}, 1, "", 0, nil); err == nil {
		t.Error("empty worker accepted")
	}
	if _, err := RingAllReduce(g, "x", workers(2), -1, "", 0, nil); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := RingAllReduce(g, "x", workers(2), 1, "", 0, []string{"ghost"}); err == nil {
		t.Error("unknown dep accepted")
	}
}

func TestPSPushPull(t *testing.T) {
	g := dag.New()
	push, err := PSPush(g, "it0", workers(3), "ps", 4, "push", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(push.All) != 3 || len(push.Step0) != 3 || len(push.Last) != 3 {
		t.Fatalf("push op = %+v", push)
	}
	for _, id := range push.All {
		n := g.Node(id)
		if n.Dst != "ps" || n.Size != 4 {
			t.Errorf("push flow %+v", n)
		}
	}
	pull, err := PSPull(g, "it0", workers(3), "ps", 4, "pull", 0, push.Last)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pull.All {
		n := g.Node(id)
		if n.Src != "ps" {
			t.Errorf("pull flow src = %q", n.Src)
		}
		if len(g.Deps(id)) != 3 {
			t.Errorf("pull deps = %v", g.Deps(id))
		}
	}
}

func TestPSValidation(t *testing.T) {
	g := dag.New()
	if _, err := PSPush(g, "x", workers(2), "", 1, "", 0, nil); err == nil {
		t.Error("empty PS accepted")
	}
	if _, err := PSPush(g, "x", nil, "ps", 1, "", 0, nil); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := PSPush(g, "x", []string{"ps"}, "ps", 1, "", 0, nil); err == nil {
		t.Error("worker==PS accepted")
	}
	if _, err := PSPush(g, "x", workers(2), "ps", -1, "", 0, nil); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := PSPull(nil, "x", workers(2), "ps", 1, "", 0, nil); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestAllToAll(t *testing.T) {
	g := dag.New()
	op, err := AllToAll(g, "x", workers(3), 2, "a2a", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(op.All) != 6 {
		t.Errorf("flow count = %d, want m(m-1)=6", len(op.All))
	}
	for _, id := range op.All {
		n := g.Node(id)
		if n.Stage != 1 || n.Group != "a2a" || n.Size != 2 {
			t.Errorf("flow %+v", n)
		}
	}
}

func TestP2P(t *testing.T) {
	g := dag.New()
	g.MustAdd(&dag.Node{ID: "c", Kind: dag.Compute, Host: "a", Duration: 1})
	id, err := P2P(g, "act", "a", "b", 5, "pp", 2, []string{"c"})
	if err != nil || id != "act" {
		t.Fatal(err)
	}
	n := g.Node("act")
	if n.Size != 5 || n.Stage != 2 || len(g.Deps("act")) != 1 {
		t.Errorf("p2p node %+v deps %v", n, g.Deps("act"))
	}
	if _, err := P2P(nil, "x", "a", "b", 1, "", 0, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := P2P(g, "act", "a", "b", 1, "", 0, nil); err == nil {
		t.Error("duplicate ID accepted")
	}
}

// End-to-end sanity: a 4-worker ring all-reduce of V bytes on uniform links
// of capacity C completes in the textbook 2(m-1)/m × V/C when uncontended.
func TestRingAllReduceSimulatedDuration(t *testing.T) {
	const m, V, C = 4, 8.0, 2.0
	g := dag.New()
	if _, err := RingAllReduce(g, "ar", workers(m), V, "", 0, nil); err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(C, workers(m)...)
	s, err := sim.New(sim.Options{Graph: g, Net: net, Scheduler: sched.Fair{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := unit.Time(2 * (m - 1) / float64(m) * V / C)
	if !res.Makespan.ApproxEq(want) {
		t.Errorf("all-reduce makespan = %v, want %v", res.Makespan, want)
	}
}
