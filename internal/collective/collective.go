// Package collective decomposes the communication primitives of DDLT
// frameworks — ring all-reduce (reduce-scatter + all-gather), parameter-
// server push/pull, and all-to-all — into point-to-point flows on the
// computation graph, with the step dependencies a real implementation
// (NCCL/Gloo ring algorithms) imposes.
//
// For an m-worker ring over a buffer of V bytes, the buffer splits into m
// chunks of V/m; reduce-scatter and all-gather each take m−1 steps (§2.1),
// and in every step each worker forwards one chunk to its ring successor,
// which it may only do after receiving the previous step's chunk from its
// ring predecessor.
package collective

import (
	"fmt"

	"echelonflow/internal/dag"
	"echelonflow/internal/unit"
)

// Op describes the flows a collective emitted: Step0 holds the entry flows
// indexed by worker (callers hang per-worker dependencies off these — e.g.
// worker i's backward compute gates only worker i's first send), Last holds
// the final-step flows whose joint completion is the collective's barrier,
// and All lists every flow in emission order.
type Op struct {
	All   []string
	Step0 []string
	Last  []string
}

// merge concatenates two ops sequentially (a then b).
func (a Op) merge(b Op) Op {
	return Op{
		All:   append(append([]string(nil), a.All...), b.All...),
		Step0: append([]string(nil), a.Step0...),
		Last:  append([]string(nil), b.Last...),
	}
}

// validateRing checks common ring-collective arguments.
func validateRing(g *dag.Graph, workers []string, size unit.Bytes) error {
	if g == nil {
		return fmt.Errorf("collective: nil graph")
	}
	if len(workers) < 2 {
		return fmt.Errorf("collective: ring needs >=2 workers, got %d", len(workers))
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" {
			return fmt.Errorf("collective: empty worker name")
		}
		if seen[w] {
			return fmt.Errorf("collective: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if size < 0 {
		return fmt.Errorf("collective: negative size %v", size)
	}
	return nil
}

// ringPhase emits `steps` ring steps named prefix/s<step>w<i>: in each step
// every worker sends a chunk to its successor, depending on the chunk it
// received in the previous step (and on deps for step 0).
func ringPhase(g *dag.Graph, prefix string, workers []string, chunk unit.Bytes, steps int, group string, stage int, deps []string) (Op, error) {
	m := len(workers)
	ids := make([][]string, steps)
	var op Op
	for s := 0; s < steps; s++ {
		ids[s] = make([]string, m)
		for i := 0; i < m; i++ {
			id := fmt.Sprintf("%s/s%dw%d", prefix, s, i)
			ids[s][i] = id
			if err := g.Add(&dag.Node{
				ID: id, Kind: dag.Comm,
				Src: workers[i], Dst: workers[(i+1)%m],
				Size: chunk, Group: group, Stage: stage,
			}); err != nil {
				return Op{}, err
			}
			op.All = append(op.All, id)
			if s == 0 {
				for _, d := range deps {
					if err := g.Depend(d, id); err != nil {
						return Op{}, err
					}
				}
				continue
			}
			// Worker i forwards in step s what it received in step s-1
			// from its predecessor (i-1 mod m).
			prev := ids[s-1][(i-1+m)%m]
			if err := g.Depend(prev, id); err != nil {
				return Op{}, err
			}
		}
	}
	if steps > 0 {
		op.Step0 = append([]string(nil), ids[0]...)
		op.Last = append([]string(nil), ids[steps-1]...)
	}
	return op, nil
}

// RingReduceScatter emits the m−1 reduce-scatter steps for a size-byte
// buffer over the workers. Flows carry the given group and stage; step-0
// flows depend on deps.
func RingReduceScatter(g *dag.Graph, prefix string, workers []string, size unit.Bytes, group string, stage int, deps []string) (Op, error) {
	if err := validateRing(g, workers, size); err != nil {
		return Op{}, err
	}
	m := len(workers)
	return ringPhase(g, prefix+"/rs", workers, size/unit.Bytes(m), m-1, group, stage, deps)
}

// RingAllGather emits the m−1 all-gather steps, mirroring RingReduceScatter.
func RingAllGather(g *dag.Graph, prefix string, workers []string, size unit.Bytes, group string, stage int, deps []string) (Op, error) {
	if err := validateRing(g, workers, size); err != nil {
		return Op{}, err
	}
	m := len(workers)
	return ringPhase(g, prefix+"/ag", workers, size/unit.Bytes(m), m-1, group, stage, deps)
}

// RingAllReduce emits a full all-reduce: reduce-scatter followed by
// all-gather, 2(m−1) steps in total (§2.1). The returned Op's Step0 are the
// reduce-scatter entry flows and Last the all-gather exit flows.
func RingAllReduce(g *dag.Graph, prefix string, workers []string, size unit.Bytes, group string, stage int, deps []string) (Op, error) {
	rs, err := RingReduceScatter(g, prefix, workers, size, group, stage, deps)
	if err != nil {
		return Op{}, err
	}
	ag, err := RingAllGather(g, prefix, workers, size, group, stage, rs.Last)
	if err != nil {
		return Op{}, err
	}
	return rs.merge(ag), nil
}

// PSPush emits one gradient-push flow per worker to the parameter server
// (Fig. 4b, workers→PS).
func PSPush(g *dag.Graph, prefix string, workers []string, ps string, perWorker unit.Bytes, group string, stage int, deps []string) (Op, error) {
	return psFanFlows(g, prefix+"/push", workers, ps, perWorker, group, stage, deps, true)
}

// PSPull emits one model-pull flow per worker from the parameter server
// (Fig. 4b, PS→workers).
func PSPull(g *dag.Graph, prefix string, workers []string, ps string, perWorker unit.Bytes, group string, stage int, deps []string) (Op, error) {
	return psFanFlows(g, prefix+"/pull", workers, ps, perWorker, group, stage, deps, false)
}

func psFanFlows(g *dag.Graph, prefix string, workers []string, ps string, perWorker unit.Bytes, group string, stage int, deps []string, toPS bool) (Op, error) {
	if g == nil {
		return Op{}, fmt.Errorf("collective: nil graph")
	}
	if ps == "" {
		return Op{}, fmt.Errorf("collective: empty PS host")
	}
	if len(workers) == 0 {
		return Op{}, fmt.Errorf("collective: PS fan needs >=1 worker")
	}
	if perWorker < 0 {
		return Op{}, fmt.Errorf("collective: negative size %v", perWorker)
	}
	var op Op
	for i, w := range workers {
		if w == ps {
			return Op{}, fmt.Errorf("collective: worker %q is the PS host", w)
		}
		id := fmt.Sprintf("%s/w%d", prefix, i)
		src, dst := w, ps
		if !toPS {
			src, dst = ps, w
		}
		if err := g.Add(&dag.Node{
			ID: id, Kind: dag.Comm, Src: src, Dst: dst,
			Size: perWorker, Group: group, Stage: stage,
		}); err != nil {
			return Op{}, err
		}
		for _, d := range deps {
			if err := g.Depend(d, id); err != nil {
				return Op{}, err
			}
		}
		op.All = append(op.All, id)
	}
	op.Step0 = append([]string(nil), op.All...)
	op.Last = append([]string(nil), op.All...)
	return op, nil
}

// AllToAll emits a full-mesh exchange: every worker sends perPair bytes to
// every other worker. Step0 groups flows by source worker, so Step0 has
// m(m−1) entries in source-major order (it equals All and Last: every flow
// is both an entry and an exit of the exchange).
func AllToAll(g *dag.Graph, prefix string, workers []string, perPair unit.Bytes, group string, stage int, deps []string) (Op, error) {
	if err := validateRing(g, workers, perPair); err != nil {
		return Op{}, err
	}
	var op Op
	for i, src := range workers {
		for j, dst := range workers {
			if i == j {
				continue
			}
			id := fmt.Sprintf("%s/a2a%d-%d", prefix, i, j)
			if err := g.Add(&dag.Node{
				ID: id, Kind: dag.Comm, Src: src, Dst: dst,
				Size: perPair, Group: group, Stage: stage,
			}); err != nil {
				return Op{}, err
			}
			for _, d := range deps {
				if err := g.Depend(d, id); err != nil {
					return Op{}, err
				}
			}
			op.All = append(op.All, id)
		}
	}
	op.Step0 = append([]string(nil), op.All...)
	op.Last = append([]string(nil), op.All...)
	return op, nil
}

// P2P emits a single point-to-point flow (pipeline-parallel activations and
// gradients).
func P2P(g *dag.Graph, id, src, dst string, size unit.Bytes, group string, stage int, deps []string) (string, error) {
	if g == nil {
		return "", fmt.Errorf("collective: nil graph")
	}
	if err := g.Add(&dag.Node{
		ID: id, Kind: dag.Comm, Src: src, Dst: dst,
		Size: size, Group: group, Stage: stage,
	}); err != nil {
		return "", err
	}
	for _, d := range deps {
		if err := g.Depend(d, id); err != nil {
			return "", err
		}
	}
	return id, nil
}
