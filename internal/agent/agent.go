// Package agent implements the EchelonFlow Agent of the paper's system
// sketch (Fig. 7, §5): the shim between a training framework and its
// message-passing backend. The agent registers EchelonFlows with the
// Coordinator, reports flow releases and completions, and enforces the
// Coordinator's bandwidth allocations on the data plane by pacing real TCP
// transfers with per-flow token buckets — the weighted-bandwidth-sharing
// enforcement the paper describes.
//
// The agent survives coordinator-session loss: with Options.Reconnect it
// redials with exponential backoff plus jitter, re-announces its groups,
// and reports in-flight transfers with their byte offsets so scheduling
// resumes from the remainder. The data plane is resumable independently: a
// receiver acknowledges how many bytes of a flow it already holds, and the
// sender continues from that offset instead of restarting from zero.
package agent

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/ratelimit"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Options configures an Agent.
type Options struct {
	// Name identifies the agent to the Coordinator.
	Name string
	// CoordinatorAddr is the Coordinator's control endpoint.
	CoordinatorAddr string
	// DataAddr, when non-empty, is the listen address for incoming flow
	// payloads (use "127.0.0.1:0" to pick a free port).
	DataAddr string
	// Burst is the token-bucket burst in bytes (default 64 KiB).
	Burst float64
	// Chunk is the paced write size in bytes (default 16 KiB).
	Chunk int
	// Heartbeat is the control-plane keepalive interval (default 5s).
	// Each beat is jittered ±20% so a restarted fleet does not
	// synchronize its heartbeats. Must not be negative; set
	// DisableHeartbeat to turn keepalives off.
	Heartbeat time.Duration
	// DisableHeartbeat turns off control-plane keepalives.
	DisableHeartbeat bool
	// Reconnect enables automatic redial of a lost coordinator session
	// with exponential backoff + jitter. On reconnect the agent replays
	// its handshake, re-registers its groups, and reports in-flight flows
	// with their current byte offsets.
	Reconnect bool
	// ReconnectBackoff is the initial redial delay (default 100ms; it
	// doubles per failed attempt up to ReconnectMax).
	ReconnectBackoff time.Duration
	// ReconnectMax caps the redial delay (default 5s).
	ReconnectMax time.Duration
	// JitterSeed seeds the heartbeat/backoff jitter stream; zero draws a
	// seed from the clock. Fixing it makes fault-injection runs
	// reproducible.
	JitterSeed int64
	// ForceJSON pins the session to the legacy JSON wire framing: the agent
	// announces wire.JSONProtocolVersion in its hello (so the coordinator
	// never selects binary sends toward it) and keeps its own sends JSON.
	// For debugging with stream captures and for exercising mixed-version
	// fleets; the default uses the protocol-4 binary framing.
	ForceJSON bool
	// Metrics, when non-nil, receives agent telemetry: reconnect attempt
	// counters and the heartbeat round-trip histogram. Nil costs nothing.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives lifecycle events (reconnects).
	Events *telemetry.EventLog
	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

func (o *Options) validate() error {
	if o.Name == "" {
		return fmt.Errorf("agent: Name is required")
	}
	if o.CoordinatorAddr == "" {
		return fmt.Errorf("agent: CoordinatorAddr is required")
	}
	if o.Burst < 0 {
		return fmt.Errorf("agent: negative Burst %v", o.Burst)
	}
	if o.Chunk < 0 {
		return fmt.Errorf("agent: negative Chunk %d", o.Chunk)
	}
	if o.Heartbeat < 0 {
		return fmt.Errorf("agent: negative Heartbeat %v (set DisableHeartbeat to disable keepalives)", o.Heartbeat)
	}
	if o.ReconnectBackoff < 0 {
		return fmt.Errorf("agent: negative ReconnectBackoff %v", o.ReconnectBackoff)
	}
	if o.ReconnectMax < 0 {
		return fmt.Errorf("agent: negative ReconnectMax %v", o.ReconnectMax)
	}
	if o.Burst == 0 {
		o.Burst = 64 << 10
	}
	if o.Chunk == 0 {
		o.Chunk = 16 << 10
	}
	if float64(o.Chunk) > o.Burst {
		return fmt.Errorf("agent: chunk %d exceeds burst %v", o.Chunk, o.Burst)
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.ReconnectBackoff == 0 {
		o.ReconnectBackoff = 100 * time.Millisecond
	}
	if o.ReconnectMax == 0 {
		o.ReconnectMax = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return nil
}

// flowProg tracks a sending flow across session loss: base is the byte
// offset acknowledged by the receiver at dial time, bytes counts what this
// agent has written since. base+bytes is the delivered offset reported on
// resume.
type flowProg struct {
	groupID string
	base    int64
	bytes   int64
	active  bool
}

// Agent is a live EchelonFlow agent. Create with Dial; Close releases all
// resources.
type Agent struct {
	opts   Options
	dataLn net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// sessMu guards the current control session; reconnects swap it.
	sessMu sync.RWMutex
	conn   net.Conn
	codec  *wire.Codec

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when recvActive changes
	buckets    map[string]*ratelimit.Bucket
	lastRates  map[string]unit.Rate
	received   map[string]int64
	recvDone   map[string]chan struct{}
	recvActive map[string]bool
	progress   map[string]*flowProg
	groups     map[string]*core.EchelonFlow
	// pendingFinish queues finish reports whose send failed mid-outage
	// (flow ID -> group ID); the next successful redial replays them so a
	// transfer completing while the coordinator is away is not lost.
	pendingFinish map[string]string

	rngMu sync.Mutex
	rng   *rand.Rand

	// Telemetry handles (nil-safe no-ops when Options.Metrics is nil).
	telAttempts   *telemetry.Counter
	telReconnects *telemetry.Counter
	telRTT        *telemetry.Histogram

	// hbMu guards heartbeat send timestamps awaiting the coordinator's
	// echo; capped so a non-echoing (older) coordinator cannot grow it.
	hbMu      sync.Mutex
	hbPending []time.Time
}

// maxPendingHeartbeats bounds the RTT-correlation queue against
// coordinators that never echo heartbeats.
const maxPendingHeartbeats = 16

// Dial connects to the Coordinator, performs the handshake, and starts the
// allocation listener and (if configured) the data-plane listener.
func Dial(ctx context.Context, opts Options) (*Agent, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", opts.CoordinatorAddr)
	if err != nil {
		return nil, fmt.Errorf("agent: dial coordinator: %w", err)
	}
	actx, cancel := context.WithCancel(context.Background())
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	a := &Agent{
		opts: opts, conn: conn, codec: wire.NewCodec(conn),
		ctx: actx, cancel: cancel,
		buckets:       make(map[string]*ratelimit.Bucket),
		lastRates:     make(map[string]unit.Rate),
		received:      make(map[string]int64),
		recvDone:      make(map[string]chan struct{}),
		recvActive:    make(map[string]bool),
		progress:      make(map[string]*flowProg),
		groups:        make(map[string]*core.EchelonFlow),
		pendingFinish: make(map[string]string),
		rng:           rand.New(rand.NewSource(seed)),
	}
	a.cond = sync.NewCond(&a.mu)
	a.telAttempts = opts.Metrics.Counter("echelon_agent_reconnect_attempts_total",
		"Coordinator redial attempts (including failures).", "agent", opts.Name)
	a.telReconnects = opts.Metrics.Counter("echelon_agent_reconnects_total",
		"Successful coordinator session re-establishments.", "agent", opts.Name)
	a.telRTT = opts.Metrics.Histogram("echelon_agent_heartbeat_rtt_seconds",
		"Control-plane heartbeat round-trip time.", "agent", opts.Name)
	if err := a.codec.Send(a.helloMessage()); err != nil {
		conn.Close()
		cancel()
		return nil, fmt.Errorf("agent: handshake: %w", err)
	}
	a.negotiateSend(a.codec)
	if opts.DataAddr != "" {
		ln, err := net.Listen("tcp", opts.DataAddr)
		if err != nil {
			conn.Close()
			cancel()
			return nil, fmt.Errorf("agent: data listener: %w", err)
		}
		a.dataLn = ln
		a.wg.Add(1)
		go a.acceptLoop()
	}
	a.wg.Add(1)
	go a.controlLoop()
	if !opts.DisableHeartbeat {
		a.wg.Add(1)
		go a.heartbeatLoop()
	}
	return a, nil
}

func (a *Agent) helloMessage() wire.Message {
	v := wire.ProtocolVersion
	if a.opts.ForceJSON {
		v = wire.JSONProtocolVersion
	}
	return wire.Message{Type: wire.TypeHello,
		Hello: &wire.Hello{Agent: a.opts.Name, Version: v}}
}

// negotiateSend switches a freshly-handshaken codec to binary sends unless
// the session is pinned to JSON. The hello itself always goes out JSON-framed
// — the peer's framing support is only known from its version afterward, and
// a v4 coordinator accepts either framing on any frame.
func (a *Agent) negotiateSend(codec *wire.Codec) {
	if !a.opts.ForceJSON {
		codec.EnableBinary()
	}
}

// send dispatches one control message over the current session.
func (a *Agent) send(m wire.Message) error {
	a.sessMu.RLock()
	codec := a.codec
	a.sessMu.RUnlock()
	if codec == nil {
		return fmt.Errorf("agent %s: control session down", a.opts.Name)
	}
	return codec.Send(m)
}

// jittered spreads an interval uniformly over ±20%.
func (a *Agent) jittered(d time.Duration) time.Duration {
	a.rngMu.Lock()
	f := 0.8 + 0.4*a.rng.Float64()
	a.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// heartbeatLoop keeps the control session alive across idle periods. Each
// interval is independently jittered so restarted fleets desynchronize.
func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	for {
		t := time.NewTimer(a.jittered(a.opts.Heartbeat))
		select {
		case <-a.ctx.Done():
			t.Stop()
			return
		case <-t.C:
			sentAt := time.Now()
			if err := a.send(wire.Message{Type: wire.TypeHeartbeat}); err == nil {
				a.hbMu.Lock()
				if len(a.hbPending) < maxPendingHeartbeats {
					a.hbPending = append(a.hbPending, sentAt)
				}
				a.hbMu.Unlock()
			} else {
				if a.opts.Reconnect {
					// The control loop is redialing; keep beating.
					continue
				}
				if a.ctx.Err() == nil {
					a.opts.Logf("agent %s: heartbeat failed: %v", a.opts.Name, err)
				}
				return
			}
		}
	}
}

// DataAddr returns the bound data-plane address, or "" without a data plane.
func (a *Agent) DataAddr() string {
	if a.dataLn == nil {
		return ""
	}
	return a.dataLn.Addr().String()
}

// Close tears down both planes and waits for background goroutines.
func (a *Agent) Close() error {
	a.cancel()
	a.sessMu.Lock()
	var err error
	if a.conn != nil {
		err = a.conn.Close()
	}
	a.sessMu.Unlock()
	if a.dataLn != nil {
		a.dataLn.Close()
	}
	a.mu.Lock()
	a.cond.Broadcast()
	a.mu.Unlock()
	a.wg.Wait()
	return err
}

// controlLoop applies pushed allocations; when the session dies and
// Reconnect is enabled it redials and resumes, otherwise it exits.
func (a *Agent) controlLoop() {
	defer a.wg.Done()
	for {
		err := a.readSession()
		if a.ctx.Err() != nil {
			return
		}
		if !a.opts.Reconnect {
			a.opts.Logf("agent %s: control connection lost: %v", a.opts.Name, err)
			return
		}
		a.opts.Logf("agent %s: control connection lost (%v), reconnecting", a.opts.Name, err)
		if a.reconnect() != nil {
			return // context cancelled mid-backoff
		}
	}
}

// readSession consumes the current control session until it fails.
func (a *Agent) readSession() error {
	a.sessMu.RLock()
	codec := a.codec
	a.sessMu.RUnlock()
	if codec == nil {
		return fmt.Errorf("no session")
	}
	for {
		msg, err := codec.Recv()
		if err != nil {
			return err
		}
		switch msg.Type {
		case wire.TypeAllocation:
			a.applyAllocation(msg.Allocation.Rates)
		case wire.TypeHeartbeat:
			if msg.Heartbeat != nil && msg.Heartbeat.Nonce != 0 {
				// Coordinator-initiated RTT ping (wire v3): echo the nonce
				// back verbatim. Deliberately not correlated with hbPending —
				// those are this agent's own keepalives awaiting the
				// coordinator's nonce-less echo, and popping one here would
				// skew the agent-side RTT estimate.
				if err := a.send(wire.Message{Type: wire.TypeHeartbeat,
					Heartbeat: &wire.Heartbeat{Nonce: msg.Heartbeat.Nonce}}); err != nil {
					a.opts.Logf("agent %s: ping echo: %v", a.opts.Name, err)
				}
				continue
			}
			// The coordinator echoes heartbeats; correlate with the oldest
			// outstanding send to measure control-plane RTT.
			a.hbMu.Lock()
			if len(a.hbPending) > 0 {
				sentAt := a.hbPending[0]
				a.hbPending = a.hbPending[1:]
				a.hbMu.Unlock()
				a.telRTT.Observe(time.Since(sentAt).Seconds())
			} else {
				a.hbMu.Unlock()
			}
		case wire.TypeError:
			a.opts.Logf("agent %s: coordinator error: %s", a.opts.Name, msg.Error.Msg)
		default:
			a.opts.Logf("agent %s: unexpected message %q", a.opts.Name, msg.Type)
		}
	}
}

// reconnect redials the coordinator with exponential backoff + jitter
// until it succeeds or the agent closes. On success the session state is
// replayed: handshake, group registrations, and resume events carrying the
// delivered byte offset of every in-flight send.
func (a *Agent) reconnect() error {
	backoff := a.opts.ReconnectBackoff
	for attempt := 1; ; attempt++ {
		delay := a.jittered(backoff)
		t := time.NewTimer(delay)
		select {
		case <-a.ctx.Done():
			t.Stop()
			return a.ctx.Err()
		case <-t.C:
		}
		a.telAttempts.Inc()
		if err := a.redial(); err != nil {
			if a.ctx.Err() != nil {
				return a.ctx.Err()
			}
			backoff *= 2
			if backoff > a.opts.ReconnectMax {
				backoff = a.opts.ReconnectMax
			}
			a.opts.Logf("agent %s: reconnect attempt %d failed: %v (next in ~%v)",
				a.opts.Name, attempt, err, backoff)
			continue
		}
		a.opts.Logf("agent %s: reconnected after %d attempt(s)", a.opts.Name, attempt)
		a.telReconnects.Inc()
		if a.opts.Events != nil {
			a.opts.Events.Append(telemetry.Event{Kind: telemetry.EventReconnect,
				Agent: a.opts.Name, Detail: fmt.Sprintf("after %d attempt(s)", attempt)})
		}
		return nil
	}
}

// redial establishes one new control session and replays agent state.
func (a *Agent) redial() error {
	var d net.Dialer
	conn, err := d.DialContext(a.ctx, "tcp", a.opts.CoordinatorAddr)
	if err != nil {
		return err
	}
	codec := wire.NewCodec(conn)
	if err := codec.Send(a.helloMessage()); err != nil {
		conn.Close()
		return err
	}
	a.negotiateSend(codec)
	a.sessMu.Lock()
	if a.conn != nil {
		a.conn.Close()
	}
	a.conn, a.codec = conn, codec
	a.sessMu.Unlock()
	// Beats sent into the dead session will never be echoed; dropping them
	// keeps RTT correlation aligned with the new session's echoes.
	a.hbMu.Lock()
	a.hbPending = a.hbPending[:0]
	a.hbMu.Unlock()

	// Re-announce groups, then in-flight transfers with their offsets so
	// the coordinator schedules the remainder, not the full size.
	a.mu.Lock()
	groups := make([]*core.EchelonFlow, 0, len(a.groups))
	for _, g := range a.groups {
		groups = append(groups, g)
	}
	type resume struct {
		groupID, flowID string
		offset          int64
	}
	var resumes []resume
	for id, p := range a.progress {
		if p.active {
			resumes = append(resumes, resume{p.groupID, id, p.base + p.bytes})
		}
	}
	finishes := make(map[string]string, len(a.pendingFinish))
	for id, gid := range a.pendingFinish {
		finishes[id] = gid
	}
	a.mu.Unlock()
	for _, g := range groups {
		if err := a.RegisterGroup(g); err != nil {
			a.opts.Logf("agent %s: re-register %s: %v", a.opts.Name, g.ID, err)
		}
	}
	for _, r := range resumes {
		msg := wire.Message{Type: wire.TypeFlowEvent, FlowEvent: &wire.FlowEvent{
			GroupID: r.groupID, FlowID: r.flowID,
			Event: wire.EventResumed, Offset: unit.Bytes(r.offset)}}
		if err := a.send(msg); err != nil {
			a.opts.Logf("agent %s: resume %s: %v", a.opts.Name, r.flowID, err)
		}
	}
	// Replay finish reports that completed while the coordinator was away.
	for id, gid := range finishes {
		msg := wire.Message{Type: wire.TypeFlowEvent, FlowEvent: &wire.FlowEvent{
			GroupID: gid, FlowID: id, Event: wire.EventFinished}}
		if err := a.send(msg); err != nil {
			a.opts.Logf("agent %s: replay finish %s: %v", a.opts.Name, id, err)
			continue // still pending; the next redial retries
		}
		a.mu.Lock()
		delete(a.pendingFinish, id)
		a.mu.Unlock()
	}
	return nil
}

// applyAllocation updates bucket rates, remembering rates for flows whose
// buckets do not exist yet (allocation can race ahead of SendFlow).
func (a *Agent) applyAllocation(rates map[string]unit.Rate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, r := range rates {
		a.lastRates[id] = r
		if b, ok := a.buckets[id]; ok {
			b.SetRate(float64(r))
		}
	}
}

// RegisterGroup announces an EchelonFlow to the Coordinator and remembers
// it for replay after a reconnect.
func (a *Agent) RegisterGroup(g *core.EchelonFlow) error {
	reg, err := wire.RegisterOf(g)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.groups[g.ID] = g
	a.mu.Unlock()
	return a.send(wire.Message{Type: wire.TypeRegister, Register: &reg})
}

// UnregisterGroup removes an EchelonFlow.
func (a *Agent) UnregisterGroup(groupID string) error {
	a.mu.Lock()
	delete(a.groups, groupID)
	a.mu.Unlock()
	return a.send(wire.Message{Type: wire.TypeUnregister, Unregister: &wire.Unregister{GroupID: groupID}})
}

// SendFlow transfers size bytes of flow data to the destination agent's
// data plane, paced by the Coordinator's allocation. It reports the flow
// released before the first byte and finished after the last, and blocks
// until done. The flow starts paused until the first allocation arrives.
//
// The receiver acknowledges how many bytes of the flow it already holds;
// SendFlow skips that prefix, so retrying an interrupted transfer (or
// re-sending after an agent restart) continues from the last delivered
// byte instead of restarting — the control plane learns the offset via a
// "resumed" event.
func (a *Agent) SendFlow(ctx context.Context, groupID, flowID string, size int64, dstAddr string) error {
	if size < 0 {
		return fmt.Errorf("agent: negative flow size")
	}
	bucket, err := ratelimit.NewBucket(0, a.opts.Burst)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if p := a.progress[flowID]; p != nil && p.active {
		a.mu.Unlock()
		return fmt.Errorf("agent: flow %q already sending", flowID)
	}
	prog := a.progress[flowID]
	if prog == nil {
		prog = &flowProg{}
		a.progress[flowID] = prog
	}
	prog.groupID = groupID
	prog.active = true
	a.buckets[flowID] = bucket
	if r, ok := a.lastRates[flowID]; ok {
		bucket.SetRate(float64(r))
	}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.buckets, flowID)
		prog.active = false
		a.mu.Unlock()
	}()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", dstAddr)
	if err != nil {
		return fmt.Errorf("agent: dial data plane: %w", err)
	}
	defer conn.Close()
	if err := writeDataHeader(conn, flowID, size); err != nil {
		return err
	}
	offset, err := readDataAck(conn)
	if err != nil {
		return fmt.Errorf("agent: flow %q offset ack: %w", flowID, err)
	}
	if offset > size {
		return fmt.Errorf("agent: flow %q receiver acked %d beyond size %d", flowID, offset, size)
	}
	a.mu.Lock()
	prog.base = offset
	a.mu.Unlock()

	ev := &wire.FlowEvent{GroupID: groupID, FlowID: flowID, Event: wire.EventReleased}
	if offset > 0 {
		ev.Event = wire.EventResumed
		ev.Offset = unit.Bytes(offset)
	}
	if err := a.send(wire.Message{Type: wire.TypeFlowEvent, FlowEvent: ev}); err != nil {
		return fmt.Errorf("agent: report release: %w", err)
	}

	chunk := make([]byte, a.opts.Chunk)
	for sent := offset; sent < size; {
		n := int64(len(chunk))
		if size-sent < n {
			n = size - sent
		}
		if err := bucket.Wait(ctx, float64(n)); err != nil {
			return fmt.Errorf("agent: pacing flow %q: %w", flowID, err)
		}
		if _, err := conn.Write(chunk[:n]); err != nil {
			return fmt.Errorf("agent: send flow %q: %w", flowID, err)
		}
		sent += n
		a.mu.Lock()
		prog.bytes += n
		a.mu.Unlock()
	}

	finish := wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: groupID, FlowID: flowID, Event: wire.EventFinished}}
	if err := a.send(finish); err != nil {
		if a.opts.Reconnect {
			// The payload is fully delivered; only the report was lost to a
			// dead session. Queue it for the next redial instead of failing
			// a transfer that actually succeeded.
			a.mu.Lock()
			a.pendingFinish[flowID] = groupID
			a.mu.Unlock()
			a.opts.Logf("agent %s: finish report for %s deferred to reconnect: %v", a.opts.Name, flowID, err)
			return nil
		}
		return fmt.Errorf("agent: report finish: %w", err)
	}
	return nil
}

// SentBytes reports how many payload bytes this agent has written for a
// flow (excluding any prefix delivered by a previous incarnation and
// skipped via the resume ack).
func (a *Agent) SentBytes(flowID string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p := a.progress[flowID]; p != nil {
		return p.bytes
	}
	return 0
}

// ReceivedBytes reports how many payload bytes have arrived for a flow.
func (a *Agent) ReceivedBytes(flowID string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received[flowID]
}

// WaitReceived blocks until the named flow's payload has fully arrived on
// this agent's data plane, or the context is cancelled.
func (a *Agent) WaitReceived(ctx context.Context, flowID string) error {
	a.mu.Lock()
	ch, ok := a.recvDone[flowID]
	if !ok {
		ch = make(chan struct{})
		a.recvDone[flowID] = ch
	}
	a.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acceptLoop serves the data plane.
func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.dataLn.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer conn.Close()
			if err := a.receiveFlow(conn); err != nil && a.ctx.Err() == nil {
				a.opts.Logf("agent %s: data plane: %v", a.opts.Name, err)
			}
		}()
	}
}

// receiveFlow drains one incoming flow, accounting its bytes. It first
// acknowledges how much of the flow already arrived (from an interrupted
// earlier connection) so the sender resumes from that offset. Concurrent
// connections for the same flow serialize.
func (a *Agent) receiveFlow(conn net.Conn) error {
	flowID, size, err := readDataHeader(conn)
	if err != nil {
		return err
	}
	a.mu.Lock()
	for a.recvActive[flowID] && a.ctx.Err() == nil {
		a.cond.Wait()
	}
	if a.ctx.Err() != nil {
		a.mu.Unlock()
		return a.ctx.Err()
	}
	a.recvActive[flowID] = true
	got := a.received[flowID]
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.recvActive[flowID] = false
		a.cond.Broadcast()
		a.mu.Unlock()
	}()

	if err := writeDataAck(conn, got); err != nil {
		return fmt.Errorf("flow %q ack: %w", flowID, err)
	}
	buf := make([]byte, 32<<10)
	for got < size {
		want := int64(len(buf))
		if size-got < want {
			want = size - got
		}
		n, err := conn.Read(buf[:want])
		if n > 0 {
			got += int64(n)
			a.mu.Lock()
			a.received[flowID] = got
			a.mu.Unlock()
		}
		if err != nil {
			if err == io.EOF && got == size {
				break
			}
			return fmt.Errorf("flow %q truncated at %d/%d: %w", flowID, got, size, err)
		}
	}
	a.mu.Lock()
	ch, ok := a.recvDone[flowID]
	if !ok {
		ch = make(chan struct{})
		a.recvDone[flowID] = ch
	}
	select {
	case <-ch:
	default:
		close(ch)
	}
	a.mu.Unlock()
	return nil
}

// writeDataHeader frames a flow's identity and size on the data plane.
func writeDataHeader(w io.Writer, flowID string, size int64) error {
	id := []byte(flowID)
	if len(id) > 1<<16 {
		return fmt.Errorf("agent: flow ID too long")
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(id)))
	binary.BigEndian.PutUint64(hdr[4:], uint64(size))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("agent: write data header: %w", err)
	}
	if _, err := w.Write(id); err != nil {
		return fmt.Errorf("agent: write data header: %w", err)
	}
	return nil
}

// readDataHeader parses the data-plane framing.
func readDataHeader(r io.Reader) (string, int64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", 0, fmt.Errorf("read data header: %w", err)
	}
	idLen := binary.BigEndian.Uint32(hdr[:4])
	if idLen > 1<<16 {
		return "", 0, fmt.Errorf("data header id length %d too large", idLen)
	}
	size := int64(binary.BigEndian.Uint64(hdr[4:]))
	if size < 0 {
		return "", 0, fmt.Errorf("negative flow size")
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", 0, fmt.Errorf("read flow id: %w", err)
	}
	return string(id), size, nil
}

// writeDataAck reports the receiver's current byte offset for a flow; the
// sender skips that prefix.
func writeDataAck(w io.Writer, offset int64) error {
	var ack [8]byte
	binary.BigEndian.PutUint64(ack[:], uint64(offset))
	_, err := w.Write(ack[:])
	return err
}

// readDataAck parses the receiver's resume offset.
func readDataAck(r io.Reader) (int64, error) {
	var ack [8]byte
	if _, err := io.ReadFull(r, ack[:]); err != nil {
		return 0, err
	}
	off := int64(binary.BigEndian.Uint64(ack[:]))
	if off < 0 {
		return 0, fmt.Errorf("negative resume offset")
	}
	return off, nil
}
