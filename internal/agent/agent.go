// Package agent implements the EchelonFlow Agent of the paper's system
// sketch (Fig. 7, §5): the shim between a training framework and its
// message-passing backend. The agent registers EchelonFlows with the
// Coordinator, reports flow releases and completions, and enforces the
// Coordinator's bandwidth allocations on the data plane by pacing real TCP
// transfers with per-flow token buckets — the weighted-bandwidth-sharing
// enforcement the paper describes.
package agent

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"echelonflow/internal/core"
	"echelonflow/internal/ratelimit"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

// Options configures an Agent.
type Options struct {
	// Name identifies the agent to the Coordinator.
	Name string
	// CoordinatorAddr is the Coordinator's control endpoint.
	CoordinatorAddr string
	// DataAddr, when non-empty, is the listen address for incoming flow
	// payloads (use "127.0.0.1:0" to pick a free port).
	DataAddr string
	// Burst is the token-bucket burst in bytes (default 64 KiB).
	Burst float64
	// Chunk is the paced write size in bytes (default 16 KiB).
	Chunk int
	// Heartbeat is the control-plane keepalive interval (default 5s;
	// negative disables heartbeats).
	Heartbeat time.Duration
	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

// Agent is a live EchelonFlow agent. Create with Dial; Close releases all
// resources.
type Agent struct {
	opts   Options
	conn   net.Conn
	codec  *wire.Codec
	dataLn net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	buckets   map[string]*ratelimit.Bucket
	lastRates map[string]unit.Rate
	received  map[string]int64
	recvDone  map[string]chan struct{}
}

// Dial connects to the Coordinator, performs the handshake, and starts the
// allocation listener and (if configured) the data-plane listener.
func Dial(ctx context.Context, opts Options) (*Agent, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("agent: Name is required")
	}
	if opts.CoordinatorAddr == "" {
		return nil, fmt.Errorf("agent: CoordinatorAddr is required")
	}
	if opts.Burst <= 0 {
		opts.Burst = 64 << 10
	}
	if opts.Chunk <= 0 {
		opts.Chunk = 16 << 10
	}
	if float64(opts.Chunk) > opts.Burst {
		return nil, fmt.Errorf("agent: chunk %d exceeds burst %v", opts.Chunk, opts.Burst)
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 5 * time.Second
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", opts.CoordinatorAddr)
	if err != nil {
		return nil, fmt.Errorf("agent: dial coordinator: %w", err)
	}
	actx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		opts: opts, conn: conn, codec: wire.NewCodec(conn),
		ctx: actx, cancel: cancel,
		buckets:   make(map[string]*ratelimit.Bucket),
		lastRates: make(map[string]unit.Rate),
		received:  make(map[string]int64),
		recvDone:  make(map[string]chan struct{}),
	}
	hello := wire.Message{Type: wire.TypeHello, Hello: &wire.Hello{Agent: opts.Name}}
	if err := a.codec.Send(hello); err != nil {
		conn.Close()
		cancel()
		return nil, fmt.Errorf("agent: handshake: %w", err)
	}
	if opts.DataAddr != "" {
		ln, err := net.Listen("tcp", opts.DataAddr)
		if err != nil {
			conn.Close()
			cancel()
			return nil, fmt.Errorf("agent: data listener: %w", err)
		}
		a.dataLn = ln
		a.wg.Add(1)
		go a.acceptLoop()
	}
	a.wg.Add(1)
	go a.controlLoop()
	if opts.Heartbeat > 0 {
		a.wg.Add(1)
		go a.heartbeatLoop()
	}
	return a, nil
}

// heartbeatLoop keeps the control session alive across idle periods.
func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return
		case <-t.C:
			if err := a.codec.Send(wire.Message{Type: wire.TypeHeartbeat}); err != nil {
				if a.ctx.Err() == nil {
					a.opts.Logf("agent %s: heartbeat failed: %v", a.opts.Name, err)
				}
				return
			}
		}
	}
}

// DataAddr returns the bound data-plane address, or "" without a data plane.
func (a *Agent) DataAddr() string {
	if a.dataLn == nil {
		return ""
	}
	return a.dataLn.Addr().String()
}

// Close tears down both planes and waits for background goroutines.
func (a *Agent) Close() error {
	a.cancel()
	err := a.conn.Close()
	if a.dataLn != nil {
		a.dataLn.Close()
	}
	a.wg.Wait()
	return err
}

// controlLoop applies pushed allocations until the connection closes.
func (a *Agent) controlLoop() {
	defer a.wg.Done()
	for {
		msg, err := a.codec.Recv()
		if err != nil {
			if a.ctx.Err() == nil {
				a.opts.Logf("agent %s: control connection lost: %v", a.opts.Name, err)
			}
			return
		}
		switch msg.Type {
		case wire.TypeAllocation:
			a.applyAllocation(msg.Allocation.Rates)
		case wire.TypeError:
			a.opts.Logf("agent %s: coordinator error: %s", a.opts.Name, msg.Error.Msg)
		default:
			a.opts.Logf("agent %s: unexpected message %q", a.opts.Name, msg.Type)
		}
	}
}

// applyAllocation updates bucket rates, remembering rates for flows whose
// buckets do not exist yet (allocation can race ahead of SendFlow).
func (a *Agent) applyAllocation(rates map[string]unit.Rate) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, r := range rates {
		a.lastRates[id] = r
		if b, ok := a.buckets[id]; ok {
			b.SetRate(float64(r))
		}
	}
}

// RegisterGroup announces an EchelonFlow to the Coordinator.
func (a *Agent) RegisterGroup(g *core.EchelonFlow) error {
	reg, err := wire.RegisterOf(g)
	if err != nil {
		return err
	}
	return a.codec.Send(wire.Message{Type: wire.TypeRegister, Register: &reg})
}

// UnregisterGroup removes an EchelonFlow.
func (a *Agent) UnregisterGroup(groupID string) error {
	return a.codec.Send(wire.Message{Type: wire.TypeUnregister, Unregister: &wire.Unregister{GroupID: groupID}})
}

// SendFlow transfers size bytes of flow data to the destination agent's
// data plane, paced by the Coordinator's allocation. It reports the flow
// released before the first byte and finished after the last, and blocks
// until done. The flow starts paused until the first allocation arrives.
func (a *Agent) SendFlow(ctx context.Context, groupID, flowID string, size int64, dstAddr string) error {
	if size < 0 {
		return fmt.Errorf("agent: negative flow size")
	}
	bucket, err := ratelimit.NewBucket(0, a.opts.Burst)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if _, dup := a.buckets[flowID]; dup {
		a.mu.Unlock()
		return fmt.Errorf("agent: flow %q already sending", flowID)
	}
	a.buckets[flowID] = bucket
	if r, ok := a.lastRates[flowID]; ok {
		bucket.SetRate(float64(r))
	}
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.buckets, flowID)
		a.mu.Unlock()
	}()

	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", dstAddr)
	if err != nil {
		return fmt.Errorf("agent: dial data plane: %w", err)
	}
	defer conn.Close()
	if err := writeDataHeader(conn, flowID, size); err != nil {
		return err
	}

	release := wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: groupID, FlowID: flowID, Event: wire.EventReleased}}
	if err := a.codec.Send(release); err != nil {
		return fmt.Errorf("agent: report release: %w", err)
	}

	chunk := make([]byte, a.opts.Chunk)
	for sent := int64(0); sent < size; {
		n := int64(len(chunk))
		if size-sent < n {
			n = size - sent
		}
		if err := bucket.Wait(ctx, float64(n)); err != nil {
			return fmt.Errorf("agent: pacing flow %q: %w", flowID, err)
		}
		if _, err := conn.Write(chunk[:n]); err != nil {
			return fmt.Errorf("agent: send flow %q: %w", flowID, err)
		}
		sent += n
	}

	finish := wire.Message{Type: wire.TypeFlowEvent,
		FlowEvent: &wire.FlowEvent{GroupID: groupID, FlowID: flowID, Event: wire.EventFinished}}
	if err := a.codec.Send(finish); err != nil {
		return fmt.Errorf("agent: report finish: %w", err)
	}
	return nil
}

// ReceivedBytes reports how many payload bytes have arrived for a flow.
func (a *Agent) ReceivedBytes(flowID string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received[flowID]
}

// WaitReceived blocks until the named flow's payload has fully arrived on
// this agent's data plane, or the context is cancelled.
func (a *Agent) WaitReceived(ctx context.Context, flowID string) error {
	a.mu.Lock()
	ch, ok := a.recvDone[flowID]
	if !ok {
		ch = make(chan struct{})
		a.recvDone[flowID] = ch
	}
	a.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acceptLoop serves the data plane.
func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.dataLn.Accept()
		if err != nil {
			return
		}
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			defer conn.Close()
			if err := a.receiveFlow(conn); err != nil && a.ctx.Err() == nil {
				a.opts.Logf("agent %s: data plane: %v", a.opts.Name, err)
			}
		}()
	}
}

// receiveFlow drains one incoming flow, accounting its bytes.
func (a *Agent) receiveFlow(conn net.Conn) error {
	flowID, size, err := readDataHeader(conn)
	if err != nil {
		return err
	}
	buf := make([]byte, 32<<10)
	var got int64
	for got < size {
		want := int64(len(buf))
		if size-got < want {
			want = size - got
		}
		n, err := conn.Read(buf[:want])
		if n > 0 {
			got += int64(n)
			a.mu.Lock()
			a.received[flowID] = got
			a.mu.Unlock()
		}
		if err != nil {
			if err == io.EOF && got == size {
				break
			}
			return fmt.Errorf("flow %q truncated at %d/%d: %w", flowID, got, size, err)
		}
	}
	a.mu.Lock()
	ch, ok := a.recvDone[flowID]
	if !ok {
		ch = make(chan struct{})
		a.recvDone[flowID] = ch
	}
	select {
	case <-ch:
	default:
		close(ch)
	}
	a.mu.Unlock()
	return nil
}

// writeDataHeader frames a flow's identity and size on the data plane.
func writeDataHeader(w io.Writer, flowID string, size int64) error {
	id := []byte(flowID)
	if len(id) > 1<<16 {
		return fmt.Errorf("agent: flow ID too long")
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(id)))
	binary.BigEndian.PutUint64(hdr[4:], uint64(size))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("agent: write data header: %w", err)
	}
	if _, err := w.Write(id); err != nil {
		return fmt.Errorf("agent: write data header: %w", err)
	}
	return nil
}

// readDataHeader parses the data-plane framing.
func readDataHeader(r io.Reader) (string, int64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", 0, fmt.Errorf("read data header: %w", err)
	}
	idLen := binary.BigEndian.Uint32(hdr[:4])
	if idLen > 1<<16 {
		return "", 0, fmt.Errorf("data header id length %d too large", idLen)
	}
	size := int64(binary.BigEndian.Uint64(hdr[4:]))
	if size < 0 {
		return "", 0, fmt.Errorf("negative flow size")
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", 0, fmt.Errorf("read flow id: %w", err)
	}
	return string(id), size, nil
}
