package agent

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

func TestDataHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeDataHeader(&buf, "job/flow-1", 12345); err != nil {
		t.Fatal(err)
	}
	id, size, err := readDataHeader(&buf)
	if err != nil || id != "job/flow-1" || size != 12345 {
		t.Errorf("round trip = %q, %d, %v", id, size, err)
	}
}

func TestDataHeaderErrors(t *testing.T) {
	if _, _, err := readDataHeader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := readDataHeader(&buf); err == nil {
		t.Error("oversized id accepted")
	}
}

func TestDialValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial(ctx, Options{CoordinatorAddr: "x"}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := Dial(ctx, Options{Name: "a"}); err == nil {
		t.Error("missing coordinator addr accepted")
	}
	if _, err := Dial(ctx, Options{Name: "a", CoordinatorAddr: "127.0.0.1:1", Chunk: 1 << 20, Burst: 1}); err == nil {
		t.Error("chunk > burst accepted")
	}
}

// startCluster brings up a coordinator and two agents on loopback TCP.
func startCluster(t *testing.T, capacity float64) (*coordinator.Coordinator, *Agent, *Agent, func()) {
	t.Helper()
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(unit.Rate(capacity), "w1", "w2")
	coord, err := coordinator.New(coordinator.Options{
		Net:       netModel,
		Scheduler: sched.EchelonMADD{Backfill: true},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := coord.Serve(ctx, ln); err != nil {
			t.Logf("coordinator serve: %v", err)
		}
	}()
	addr := ln.Addr().String()
	sender, err := Dial(ctx, Options{Name: "a1", CoordinatorAddr: addr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := Dial(ctx, Options{Name: "a2", CoordinatorAddr: addr, DataAddr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		sender.Close()
		receiver.Close()
		cancel()
		wg.Wait()
	}
	return coord, sender, receiver, cleanup
}

// TestLiveFlowTransfer is the Fig. 7 end-to-end path: register an
// EchelonFlow, move real bytes under coordinator-assigned rates, observe
// completion on both planes.
func TestLiveFlowTransfer(t *testing.T) {
	const capacity = 400 << 10 // 400 KiB/s model capacity
	coord, sender, receiver, cleanup := startCluster(t, capacity)
	defer cleanup()

	g, err := core.New("job/pp", core.Pipeline{T: 0.2},
		&core.Flow{ID: "f0", Src: "w1", Dst: "w2", Size: 60 << 10, Stage: 0},
		&core.Flow{ID: "f1", Src: "w1", Dst: "w2", Size: 60 << 10, Stage: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, id := range []string{"f0", "f1"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			errs <- sender.SendFlow(ctx, "job/pp", id, 60<<10, receiver.DataAddr())
		}(id)
		time.Sleep(50 * time.Millisecond) // stagger releases like a pipeline
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("SendFlow: %v", err)
		}
	}
	for _, id := range []string{"f0", "f1"} {
		if err := receiver.WaitReceived(ctx, id); err != nil {
			t.Fatalf("WaitReceived(%s): %v", id, err)
		}
		if got := receiver.ReceivedBytes(id); got != 60<<10 {
			t.Errorf("received %d bytes of %s, want %d", got, id, 60<<10)
		}
	}
	// The coordinator observed the whole lifecycle.
	ref, tard, err := coord.GroupStatus("job/pp")
	if err != nil {
		t.Fatal(err)
	}
	if ref < 0 {
		t.Errorf("reference = %v", ref)
	}
	if tard < 0 {
		t.Errorf("achieved tardiness = %v (head flow cannot beat its own start)", tard)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.Reschedules() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("reschedules = %d, want >=4 (2 releases + 2 finishes)", coord.Reschedules())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Enforcement: with the model capacity set well below loopback speed, the
// transfer must take at least size/capacity.
func TestLiveRateEnforcement(t *testing.T) {
	const capacity = 200 << 10 // 200 KiB/s
	_, sender, receiver, cleanup := startCluster(t, capacity)
	defer cleanup()

	g, err := core.NewCoflow("job/c",
		&core.Flow{ID: "big", Src: "w1", Dst: "w2", Size: 100 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := sender.SendFlow(ctx, "job/c", "big", 100<<10, receiver.DataAddr()); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 100 KiB at 200 KiB/s = 0.5s minimum (burst forgives ~64 KiB; be
	// conservative and require > 0.1s, far above raw loopback time).
	if elapsed < 100*time.Millisecond {
		t.Errorf("transfer finished in %v: pacing not enforced", elapsed)
	}
}

func TestSendFlowErrors(t *testing.T) {
	_, sender, receiver, cleanup := startCluster(t, 1<<20)
	defer cleanup()
	ctx := context.Background()
	if err := sender.SendFlow(ctx, "g", "f", -1, receiver.DataAddr()); err == nil {
		t.Error("negative size accepted")
	}
	if err := sender.SendFlow(ctx, "g", "f", 10, "127.0.0.1:1"); err == nil {
		t.Error("unreachable data plane accepted")
	}
}

// Stress: three groups with four flows each, all in flight concurrently
// between two agents; every byte must arrive and the coordinator must see
// every lifecycle event exactly once.
func TestConcurrentGroups(t *testing.T) {
	const capacity = 2 << 20 // 2 MiB/s model; plenty for CI
	coord, sender, receiver, cleanup := startCluster(t, capacity)
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const flowSize = 32 << 10
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	var flowIDs []string
	for gi := 0; gi < 3; gi++ {
		groupID := fmt.Sprintf("stress/g%d", gi)
		var flows []*core.Flow
		for fi := 0; fi < 4; fi++ {
			flows = append(flows, &core.Flow{
				ID:  fmt.Sprintf("%s-f%d", groupID, fi),
				Src: "w1", Dst: "w2", Size: flowSize, Stage: fi,
			})
		}
		g, err := core.New(groupID, core.Pipeline{T: 0.02}, flows...)
		if err != nil {
			t.Fatal(err)
		}
		if err := sender.RegisterGroup(g); err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			flowIDs = append(flowIDs, f.ID)
			wg.Add(1)
			go func(gid, fid string) {
				defer wg.Done()
				errs <- sender.SendFlow(ctx, gid, fid, flowSize, receiver.DataAddr())
			}(groupID, f.ID)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("SendFlow: %v", err)
		}
	}
	for _, id := range flowIDs {
		if err := receiver.WaitReceived(ctx, id); err != nil {
			t.Fatalf("WaitReceived(%s): %v", id, err)
		}
		if got := receiver.ReceivedBytes(id); got != flowSize {
			t.Errorf("%s: received %d, want %d", id, got, flowSize)
		}
	}
	// 12 releases + 12 finishes = 24 scheduling decisions. The control
	// plane is asynchronous: poll until the coordinator drains its socket.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Reschedules() < 24 {
		if time.Now().After(deadline) {
			t.Fatalf("reschedules = %d, want 24", coord.Reschedules())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := coord.Reschedules(); got != 24 {
		t.Errorf("reschedules = %d, want exactly 24", got)
	}
	for gi := 0; gi < 3; gi++ {
		if _, tard, err := coord.GroupStatus(fmt.Sprintf("stress/g%d", gi)); err != nil || tard < 0 {
			t.Errorf("group %d status: tardiness %v, err %v", gi, tard, err)
		}
	}
}

// Duplicate concurrent sends of the same flow ID must be rejected cleanly.
func TestDuplicateFlowSend(t *testing.T) {
	_, sender, receiver, cleanup := startCluster(t, 1<<20)
	defer cleanup()
	g, err := core.NewCoflow("dup/g", &core.Flow{ID: "dup-f", Src: "w1", Dst: "w2", Size: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- sender.SendFlow(ctx, "dup/g", "dup-f", 256<<10, receiver.DataAddr())
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the first send register its bucket
	if err := sender.SendFlow(ctx, "dup/g", "dup-f", 16, receiver.DataAddr()); err == nil {
		t.Error("duplicate concurrent send accepted")
	}
	if err := <-done; err != nil {
		t.Fatalf("original send failed: %v", err)
	}
}
