package agent

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/faults"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
)

// The full crash-recovery loop over live TCP: a journaling coordinator is
// killed mid-transfer by a faults.CoordinatorCrash event, rebuilt from its
// journal on the same address by the matching CoordinatorRestart, and the
// reconnecting agents are re-adopted — the in-flight transfer completes and
// the recovered coordinator learns its finish.
func TestCoordinatorCrashRecoveryLive(t *testing.T) {
	const size = 128 << 10
	const capacity = 64 << 10 // ~2s transfer: the crash lands mid-flight
	dir := t.TempDir()
	mkOpts := func() coordinator.Options {
		netModel := fabric.NewNetwork()
		netModel.AddUniformHosts(unit.Rate(capacity), "w1", "w2")
		return coordinator.Options{
			Net:               netModel,
			Scheduler:         sched.EchelonMADD{Backfill: true},
			QuarantineTimeout: 30 * time.Second,
			Logf:              t.Logf,
		}
	}

	coord, err := coordinator.Restore(mkOpts(), dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveCtx, killServe := context.WithCancel(context.Background())
	var serveWG sync.WaitGroup
	serveWG.Add(1)
	go func() { defer serveWG.Done(); _ = coord.Serve(serveCtx, ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	receiver, err := Dial(ctx, Options{
		Name: "a2", CoordinatorAddr: addr, DataAddr: "127.0.0.1:0",
		Reconnect: true, ReconnectBackoff: 20 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond, JitterSeed: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()
	sender, err := Dial(ctx, Options{
		Name: "a1", CoordinatorAddr: addr,
		Reconnect: true, ReconnectBackoff: 20 * time.Millisecond,
		ReconnectMax: 200 * time.Millisecond, JitterSeed: 1, Logf: t.Logf,
		Burst: 8 << 10, Chunk: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	g, err := core.NewCoflow("cr/g", &core.Flow{ID: "cr-f", Src: "w1", Dst: "w2", Size: size})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}
	sendErr := make(chan error, 1)
	go func() { sendErr <- sender.SendFlow(ctx, "cr/g", "cr-f", size, receiver.DataAddr()) }()
	waitUntil(t, "first bytes", func() bool { return receiver.ReceivedBytes("cr-f") > 0 })

	// The outage is a fault schedule replayed through the live driver: kill
	// immediately, restore from the journal 300ms later.
	serveCtx2, killServe2 := context.WithCancel(context.Background())
	var recovered *coordinator.Coordinator
	actions := faults.LiveActions{
		CrashCoordinator: func() error {
			killServe()
			ln.Close()
			serveWG.Wait()
			return nil
		},
		RestartCoordinator: func() error {
			c2, err := coordinator.Restore(mkOpts(), dir)
			if err != nil {
				return err
			}
			if !c2.GroupParked("cr/g") {
				t.Error("restored coordinator did not park the journaled group")
			}
			// Same address: the agents' redial loops find the restarted
			// coordinator without reconfiguration.
			ln2, err := net.Listen("tcp", addr)
			if err != nil {
				return err
			}
			serveWG.Add(1)
			go func() { defer serveWG.Done(); _ = c2.Serve(serveCtx2, ln2) }()
			recovered = c2
			return nil
		},
	}
	outage := &faults.Schedule{Events: []faults.Event{
		{At: 0, Kind: faults.CoordinatorCrash},
		{At: 0.3, Kind: faults.CoordinatorRestart},
	}}
	if err := faults.Replay(ctx, outage, actions, faults.ReplayOptions{Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
	defer serveWG.Wait()
	defer killServe2()

	// The sender's redial re-announces the group; re-adoption revives it
	// with its journaled state instead of restarting the job.
	waitUntil(t, "re-adoption", func() bool { return !recovered.GroupParked("cr/g") })
	if _, _, err := recovered.GroupStatus("cr/g"); err != nil {
		t.Fatalf("group lost across the crash: %v", err)
	}

	if err := <-sendErr; err != nil {
		t.Fatalf("transfer across the crash: %v", err)
	}
	if err := receiver.WaitReceived(ctx, "cr-f"); err != nil {
		t.Fatal(err)
	}
	if got := receiver.ReceivedBytes("cr-f"); got != size {
		t.Errorf("received %d bytes, want %d", got, size)
	}
	// The recovered coordinator must learn the finish (directly or via the
	// sender's deferred-finish replay) and stop scheduling the flow.
	waitUntil(t, "finish reported", func() bool {
		rates, err := recovered.Tick()
		if err != nil {
			t.Fatalf("tick: %v", err)
		}
		_, scheduled := rates["cr-f"]
		return !scheduled
	})
}
