package agent

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"echelonflow/internal/coordinator"
	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/sched"
	"echelonflow/internal/unit"
	"echelonflow/internal/wire"
)

func TestOptionsValidation(t *testing.T) {
	base := Options{Name: "a", CoordinatorAddr: "127.0.0.1:1"}
	cases := map[string]func(*Options){
		"negative heartbeat": func(o *Options) { o.Heartbeat = -time.Second },
		"negative burst":     func(o *Options) { o.Burst = -1 },
		"negative chunk":     func(o *Options) { o.Chunk = -1 },
		"negative backoff":   func(o *Options) { o.ReconnectBackoff = -time.Second },
		"negative max":       func(o *Options) { o.ReconnectMax = -time.Second },
	}
	for name, mutate := range cases {
		o := base
		mutate(&o)
		if err := o.validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	o := base
	o.Heartbeat = -1
	if err := o.validate(); err == nil || !strings.Contains(err.Error(), "DisableHeartbeat") {
		t.Errorf("negative-heartbeat error should point at DisableHeartbeat: %v", err)
	}
	ok := base
	if err := ok.validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Heartbeat != 5*time.Second || ok.ReconnectBackoff != 100*time.Millisecond || ok.ReconnectMax != 5*time.Second {
		t.Errorf("defaults not applied: %+v", ok)
	}
}

// Heartbeat intervals are spread uniformly over ±20% and actually vary.
func TestHeartbeatJitter(t *testing.T) {
	a := &Agent{rng: rand.New(rand.NewSource(42))}
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := a.jittered(time.Second)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered interval %v outside ±20%%", d)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Errorf("jitter barely varies: %d distinct values in 200 draws", len(seen))
	}
	// The stream is seedable: the same seed replays the same intervals.
	b1 := &Agent{rng: rand.New(rand.NewSource(7))}
	b2 := &Agent{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 10; i++ {
		if b1.jittered(time.Second) != b2.jittered(time.Second) {
			t.Fatal("same JitterSeed produced different jitter streams")
		}
	}
}

// startResilientCluster is startCluster with quarantine on the coordinator
// and reconnect enabled on the sending agent.
func startResilientCluster(t *testing.T, capacity float64) (*coordinator.Coordinator, string, *Agent, func()) {
	t.Helper()
	netModel := fabric.NewNetwork()
	netModel.AddUniformHosts(unit.Rate(capacity), "w1", "w2")
	coord, err := coordinator.New(coordinator.Options{
		Net:               netModel,
		Scheduler:         sched.EchelonMADD{Backfill: true},
		QuarantineTimeout: 30 * time.Second,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = coord.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	receiver, err := Dial(ctx, Options{Name: "a2", CoordinatorAddr: addr, DataAddr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return coord, addr, receiver, func() {
		receiver.Close()
		cancel()
		wg.Wait()
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A control-plane blip: the session drops mid-run, the agent redials with
// backoff, re-announces its group, and a subsequent transfer completes. The
// coordinator keeps the group through the takeover (quarantine + adopt).
func TestReconnectAfterControlBlip(t *testing.T) {
	coord, addr, receiver, cleanup := startResilientCluster(t, 1<<20)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sender, err := Dial(ctx, Options{
		Name: "a1", CoordinatorAddr: addr, Reconnect: true,
		ReconnectBackoff: 20 * time.Millisecond, JitterSeed: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	g, err := core.NewCoflow("blip/g", &core.Flow{ID: "blip-f", Src: "w1", Dst: "w2", Size: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "registration", func() bool {
		_, _, err := coord.GroupStatus("blip/g")
		return err == nil
	})

	// Sever the control session out from under the agent.
	sender.sessMu.Lock()
	oldConn := sender.conn
	sender.sessMu.Unlock()
	oldConn.Close()

	// The agent must come back with a working session on its own.
	waitUntil(t, "reconnect", func() bool {
		sender.sessMu.RLock()
		fresh := sender.conn != oldConn
		sender.sessMu.RUnlock()
		return fresh && sender.send(wire.Message{Type: wire.TypeHeartbeat}) == nil
	})
	// The coordinator never lost the group: parked at worst, revived by the
	// takeover.
	if _, _, err := coord.GroupStatus("blip/g"); err != nil {
		t.Fatalf("group lost across the blip: %v", err)
	}
	waitUntil(t, "revive", func() bool { return !coord.GroupParked("blip/g") })

	if err := sender.SendFlow(ctx, "blip/g", "blip-f", 32<<10, receiver.DataAddr()); err != nil {
		t.Fatalf("post-blip transfer: %v", err)
	}
	if err := receiver.WaitReceived(ctx, "blip-f"); err != nil {
		t.Fatal(err)
	}
	if got := receiver.ReceivedBytes("blip-f"); got != 32<<10 {
		t.Errorf("received %d, want %d", got, 32<<10)
	}
}

// A transfer that completes while the control session is down must not be
// lost: the finish report fails mid-outage, SendFlow still succeeds (the
// bytes were delivered), and the next redial replays the queued finish so
// the coordinator stops scheduling the flow.
func TestDeferredFinishReplayedOnReconnect(t *testing.T) {
	const size = 16 << 10
	const capacity = 64 << 10 // ~0.25s transfer: finishes well inside the outage
	coord, addr, receiver, cleanup := startResilientCluster(t, capacity)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A 1s initial backoff guarantees the transfer finishes (and the finish
	// report fails) before the first redial attempt.
	sender, err := Dial(ctx, Options{
		Name: "a1", CoordinatorAddr: addr, Reconnect: true,
		ReconnectBackoff: time.Second, JitterSeed: 1, Logf: t.Logf,
		Burst: 4 << 10, Chunk: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	g, err := core.NewCoflow("df/g", &core.Flow{ID: "df-f", Src: "w1", Dst: "w2", Size: size})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}

	sendErr := make(chan error, 1)
	go func() { sendErr <- sender.SendFlow(ctx, "df/g", "df-f", size, receiver.DataAddr()) }()
	waitUntil(t, "first bytes", func() bool { return receiver.ReceivedBytes("df-f") > 0 })

	// Sever the control session: the data plane keeps flowing, the finish
	// report has nowhere to go until the redial fires ~1s later.
	sender.sessMu.Lock()
	oldConn := sender.conn
	sender.sessMu.Unlock()
	oldConn.Close()

	if err := <-sendErr; err != nil {
		t.Fatalf("SendFlow failed despite completed delivery: %v", err)
	}
	if err := receiver.WaitReceived(ctx, "df-f"); err != nil {
		t.Fatal(err)
	}
	if got := receiver.ReceivedBytes("df-f"); got != size {
		t.Fatalf("received %d bytes, want %d", got, size)
	}
	sender.mu.Lock()
	pending := len(sender.pendingFinish)
	sender.mu.Unlock()
	if pending != 1 {
		t.Fatalf("finish not queued: %d pending reports", pending)
	}

	// The redial re-registers the group (reviving it) and then replays the
	// queued finish; once it lands the coordinator stops allocating df-f.
	waitUntil(t, "revive", func() bool { return !coord.GroupParked("df/g") })
	waitUntil(t, "finish replay", func() bool {
		rates, err := coord.Tick()
		if err != nil {
			t.Fatalf("tick: %v", err)
		}
		_, scheduled := rates["df-f"]
		return !scheduled
	})
	sender.mu.Lock()
	pending = len(sender.pendingFinish)
	sender.mu.Unlock()
	if pending != 0 {
		t.Errorf("pending finish queue not drained: %d left", pending)
	}
}

// The chaos acceptance path: an agent is killed mid-transfer, a fresh
// incarnation under the same name rejoins, and the flow resumes from the
// receiver's acknowledged offset instead of restarting from zero.
func TestLiveKillResume(t *testing.T) {
	const size = 128 << 10 // 128 KiB
	// 64 KiB/s model capacity: the transfer takes ~2s, so the kill reliably
	// lands mid-flight.
	const capacity = 64 << 10
	coord, addr, receiver, cleanup := startResilientCluster(t, capacity)
	defer cleanup()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sender1, err := Dial(ctx, Options{Name: "a1", CoordinatorAddr: addr, Logf: t.Logf,
		Burst: 8 << 10, Chunk: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewCoflow("kr/g", &core.Flow{ID: "kr-f", Src: "w1", Dst: "w2", Size: size})
	if err != nil {
		t.Fatal(err)
	}
	if err := sender1.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}

	sendCtx, killSend := context.WithCancel(ctx)
	sendErr := make(chan error, 1)
	go func() { sendErr <- sender1.SendFlow(sendCtx, "kr/g", "kr-f", size, receiver.DataAddr()) }()

	waitUntil(t, "first bytes", func() bool { return receiver.ReceivedBytes("kr-f") > 0 })
	killSend()
	sender1.Close()
	if err := <-sendErr; err == nil {
		t.Fatal("killed SendFlow reported success")
	}
	waitUntil(t, "park", func() bool { return coord.GroupParked("kr/g") })
	delivered := receiver.ReceivedBytes("kr-f")
	if delivered <= 0 || delivered >= size {
		t.Fatalf("kill landed outside the transfer: %d of %d bytes delivered", delivered, size)
	}

	// The restarted incarnation rejoins under the same name and resumes.
	sender2, err := Dial(ctx, Options{Name: "a1", CoordinatorAddr: addr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer sender2.Close()
	waitUntil(t, "revive", func() bool { return !coord.GroupParked("kr/g") })
	if err := sender2.RegisterGroup(g); err != nil {
		t.Fatal(err)
	}
	if err := sender2.SendFlow(ctx, "kr/g", "kr-f", size, receiver.DataAddr()); err != nil {
		t.Fatalf("resumed transfer: %v", err)
	}
	if err := receiver.WaitReceived(ctx, "kr-f"); err != nil {
		t.Fatal(err)
	}
	if got := receiver.ReceivedBytes("kr-f"); got != size {
		t.Errorf("received %d bytes, want %d", got, size)
	}
	resent := sender2.SentBytes("kr-f")
	if resent <= 0 || resent >= size {
		t.Errorf("second incarnation sent %d of %d bytes: resume did not skip the delivered prefix", resent, size)
	}
	if _, tard, err := coord.GroupStatus("kr/g"); err != nil || tard < 0 {
		t.Errorf("post-resume status: tardiness %v, err %v", tard, err)
	}
}
