package agent

import (
	"math/rand"
	"testing"
	"time"
)

// TestJitteredBounds checks the ±20% envelope the Heartbeat doc promises.
func TestJitteredBounds(t *testing.T) {
	a := &Agent{rng: rand.New(rand.NewSource(42))}
	d := 5 * time.Second
	lo := time.Duration(float64(d) * 0.8)
	hi := time.Duration(float64(d) * 1.2)
	for i := 0; i < 2000; i++ {
		j := a.jittered(d)
		if j < lo || j > hi {
			t.Fatalf("jittered(%v) = %v outside [%v, %v] at draw %d", d, j, lo, hi, i)
		}
	}
}

// TestJitteredDeterministic checks that a fixed JitterSeed replays the same
// jitter stream — the property fault-injection runs depend on.
func TestJitteredDeterministic(t *testing.T) {
	a1 := &Agent{rng: rand.New(rand.NewSource(7))}
	a2 := &Agent{rng: rand.New(rand.NewSource(7))}
	var diverged bool
	a3 := &Agent{rng: rand.New(rand.NewSource(8))}
	for i := 0; i < 100; i++ {
		x, y := a1.jittered(time.Second), a2.jittered(time.Second)
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, x, y)
		}
		if a3.jittered(time.Second) != x {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical jitter streams")
	}
}
