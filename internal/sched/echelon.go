package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// Order selects how EchelonMADD ranks competing EchelonFlows, the
// inter-EchelonFlow decision of the paper's Property 4 ("rank EchelonFlows
// by each EchelonFlow's tardiness, instead of the Coflow completion time").
type Order int

const (
	// SmallestTardinessFirst is the SEBF analogue: groups that can achieve
	// low tardiness go first, keeping them tight while barely delaying the
	// already-late ones. This is the default.
	SmallestTardinessFirst Order = iota
	// LargestTardinessFirst prioritizes the most tardy groups. Available
	// for the inter-group ordering ablation (DESIGN.md E1).
	LargestTardinessFirst
)

// String names the order for experiment tables.
func (o Order) String() string {
	switch o {
	case SmallestTardinessFirst:
		return "stf"
	case LargestTardinessFirst:
		return "ltf"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// EchelonMADD is the paper's EchelonFlow scheduler: the MADD adaptation of
// Property 4. For each EchelonFlow it finds the smallest achievable group
// tardiness τ — the minimal uniform slack such that every member flow can
// finish by its ideal finish time plus τ — and allocates just enough
// bandwidth to meet those staggered targets, planned over a time-varying
// capacity profile. Flows sharing a deadline (Coflow stages) are allocated
// proportionally so they finish simultaneously, which makes the scheduler
// collapse to classic MADD on Coflow-compliant groups (Property 2).
type EchelonMADD struct {
	// Order ranks competing groups; see Order.
	Order Order
	// Backfill redistributes leftover capacity (earliest deadline first)
	// after the minimal allocations, making the scheduler work-conserving.
	Backfill bool
	// Weighted divides each group's ordering metric by its weight (the
	// weighted-sum objective of Eq. 4): a weight-2 group is served as if
	// its achievable tardiness were half as large.
	Weighted bool
	// GlobalEDF plans deadline classes in one global earliest-(floored)-
	// deadline order across groups instead of group by group. Group-serial
	// planning (the default, Varys-like) cannot express workloads whose
	// computation interleaves consumption across groups (e.g. 1F1B
	// pipelines); global ordering can, at the cost of the SEBF-style
	// inter-group preference. Ablated in experiments E1/E7.
	GlobalEDF bool
	// Cache, when non-nil, memoizes each group's solo-tardiness ranking
	// (and the solo plan it derives from) across Schedule calls. Entries
	// are reused only when provably equivalent — same flow set, same
	// tardiness floor, same fabric generation, and remaining volumes at or
	// ahead of the cached solo plan's fluid-model pace — so allocations are
	// byte-identical to the uncached scheduler. Copies of an EchelonMADD
	// share the pointed-to cache. See PlanCache.
	Cache *PlanCache
}

// Name implements Scheduler.
func (e EchelonMADD) Name() string {
	n := "echelon-madd"
	if e.Order == LargestTardinessFirst {
		n += "-ltf"
	}
	if e.GlobalEDF {
		n += "-gedf"
	}
	if e.Weighted {
		n += "-w"
	}
	if e.Backfill {
		n += "+bf"
	}
	return n
}

// PlanCache exposes the scheduler's cache (possibly nil) so the simulator
// and coordinator can invalidate it eagerly when scheduling inputs change.
func (e EchelonMADD) PlanCache() *PlanCache { return e.Cache }

// portProfiles tracks the free-capacity timeline of every link during a
// planning pass — host NICs plus whatever interior links the fabric backend
// defines (rack uplinks, per-spine leaf-spine links). Instances are pooled:
// acquirePortProfiles hands out a reset copy whose maps and per-profile
// arrays are reused across Schedule calls, since rebuilding them dominated
// the seed scheduler's allocation count.
type portProfiles struct {
	net     fabric.Fabric
	topoGen uint64
	ports   map[fabric.LinkKey]*profile
	// Scratch space reused by classBreaks/classLambda/commitClass within one
	// planning pass (a portProfiles is only ever used by one goroutine at a
	// time).
	breaks []unit.Time
	vol    map[*profile]unit.Bytes
	lbuf   []fabric.LinkKey
}

func newPortProfiles(net fabric.Fabric, now unit.Time) *portProfiles {
	pp := &portProfiles{}
	pp.rebuild(net, now)
	return pp
}

// rebuild recreates the profile map from the fabric's current topology.
func (pp *portProfiles) rebuild(net fabric.Fabric, now unit.Time) {
	pp.net = net
	pp.topoGen = net.TopoGeneration()
	links := net.Links()
	pp.ports = make(map[fabric.LinkKey]*profile, len(links))
	for _, l := range links {
		pp.ports[l.Key] = newProfile(now, l.Capacity)
	}
	if pp.vol == nil {
		pp.vol = make(map[*profile]unit.Bytes)
	}
}

// ensure makes pp a fresh full-capacity timeline for net at now. When the
// pooled instance already mirrors net's topology it only rewinds the
// existing profiles — re-reading current link capacities, so SetCapacity
// needs no rebuild — and otherwise it rebuilds from scratch.
func (pp *portProfiles) ensure(net fabric.Fabric, now unit.Time) {
	if pp.net != net || pp.topoGen != net.TopoGeneration() {
		pp.rebuild(net, now)
		return
	}
	for k, p := range pp.ports {
		p.reset(now, pp.net.LinkCapacity(k))
	}
}

// ppPool recycles portProfiles across Schedule calls and across the
// goroutines of a parallel ranking pass.
var ppPool = sync.Pool{New: func() any { return new(portProfiles) }}

func acquirePortProfiles(net fabric.Fabric, now unit.Time) *portProfiles {
	pp := ppPool.Get().(*portProfiles)
	pp.ensure(net, now)
	return pp
}

func releasePortProfiles(pp *portProfiles) { ppPool.Put(pp) }

// flowPorts resolves a flow's links into pp's scratch key buffer. The
// returned slice is valid until the next flowPorts call on the same pp.
func (pp *portProfiles) flowPorts(src, dst string) []fabric.LinkKey {
	pp.lbuf = pp.net.FlowLinks(src, dst, pp.lbuf[:0])
	return pp.lbuf
}

// deadlineClass is a set of group flows sharing one ideal finish time; its
// members must finish simultaneously (a Coflow stage inside the group).
type deadlineClass struct {
	deadline unit.Time
	flows    []*FlowState
}

// classesOf partitions a group's flows by deadline, ascending.
func classesOf(snap *Snapshot, flows []*FlowState) []deadlineClass {
	sorted := sortedCopy(flows, func(a, b *FlowState) bool {
		da, db := snap.Deadline(a), snap.Deadline(b)
		if !da.ApproxEq(db) {
			return da < db
		}
		return a.Flow.Stage < b.Flow.Stage
	})
	var classes []deadlineClass
	for _, fs := range sorted {
		d := snap.Deadline(fs)
		if len(classes) > 0 && classes[len(classes)-1].deadline.ApproxEq(d) {
			classes[len(classes)-1].flows = append(classes[len(classes)-1].flows, fs)
			continue
		}
		classes = append(classes, deadlineClass{deadline: d, flows: []*FlowState{fs}})
	}
	return classes
}

// classFill plans a simultaneous-finish transmission for one deadline class
// inside [from, to]: at every instant each flow's rate is proportional to
// its remaining volume, scaled to the tightest port (classic MADD), over the
// time-varying free capacities. With paced set, rates are additionally
// capped at the minimum pace that still reaches the target — the "minimum
// allocation for desired duration" that leaves slack to other groups; the
// greedy (unpaced) mode transmits as early as possible and is used to test
// feasibility, since deferring work can only lose against a fixed capacity
// profile. It returns per-flow segments and whether the class finishes by
// the target. Nothing is committed.
func classFill(pp *portProfiles, cls deadlineClass, from, to unit.Time, paced bool) (map[string][]fillSegment, bool) {
	plans := make(map[string][]fillSegment, len(cls.flows))
	remaining := make(map[string]unit.Bytes, len(cls.flows))
	var total unit.Bytes
	for _, fs := range cls.flows {
		remaining[fs.Flow.ID] = fs.Remaining
		total += fs.Remaining
	}
	if total.Zeroish() {
		return plans, true
	}
	if to <= from {
		return nil, false
	}
	cuts := classBreaks(pp, cls, from, to)
	for i := 0; i+1 <= len(cuts)-1; i++ {
		a, b := cuts[i], cuts[i+1]
		// λ scales per-flow rates (rate_j = λ·v_j): the largest λ keeping
		// every port within its free capacity for this segment.
		lambda := classLambda(pp, cls, remaining, a)
		if paced && to > a {
			// Never exceed the pace that finishes exactly at the target:
			// the remaining fraction needs 1/λ more time, so λ = 1/(to−a).
			needed := 1 / float64(to-a)
			if needed < lambda {
				lambda = needed
			}
		}
		if lambda <= unit.Eps {
			continue
		}
		// All flows finish together after 1/λ more time at these rates.
		finishSpan := unit.Time(1 / lambda)
		segEnd := b
		done := false
		if a+finishSpan <= b+unit.Time(unit.Eps) {
			segEnd = a + finishSpan
			done = true
		}
		for _, fs := range cls.flows {
			v := remaining[fs.Flow.ID]
			if v.Zeroish() {
				continue
			}
			r := unit.Rate(lambda * float64(v))
			plans[fs.Flow.ID] = append(plans[fs.Flow.ID], fillSegment{from: a, to: segEnd, rate: r})
			remaining[fs.Flow.ID] = v - r.Over(segEnd-a)
		}
		if done {
			return plans, true
		}
	}
	return plans, false
}

// classLambda computes the largest proportional-rate scale for a class at
// time t: min over links of free capacity divided by the volume crossing it.
func classLambda(pp *portProfiles, cls deadlineClass, remaining map[string]unit.Bytes, t unit.Time) float64 {
	vol := pp.vol
	clear(vol)
	for _, fs := range cls.flows {
		v := remaining[fs.Flow.ID]
		if v.Zeroish() {
			continue
		}
		for _, k := range pp.flowPorts(fs.Flow.Src, fs.Flow.Dst) {
			vol[pp.ports[k]] += v
		}
	}
	lambda := 1e300
	for p, v := range vol {
		if l := float64(p.freeAt(t)) / float64(v); l < lambda {
			lambda = l
		}
	}
	return lambda
}

// classBreaks merges the breakpoints of every link a class touches within
// [from, to].
// The returned slice aliases pp's scratch buffer; it is valid until the next
// classBreaks call on the same pp.
func classBreaks(pp *portProfiles, cls deadlineClass, from, to unit.Time) []unit.Time {
	out := append(pp.breaks[:0], from, to)
	add := func(p *profile) {
		for _, t := range p.times {
			if t > from && t < to {
				out = append(out, t)
			}
		}
	}
	for _, fs := range cls.flows {
		for _, k := range pp.flowPorts(fs.Flow.Src, fs.Flow.Dst) {
			add(pp.ports[k])
		}
	}
	out = sortedBreaks(out)
	pp.breaks = out[:0]
	return out
}

// commitClass reserves a class plan on the port profiles.
func commitClass(pp *portProfiles, cls deadlineClass, plans map[string][]fillSegment) {
	for _, fs := range cls.flows {
		links := pp.flowPorts(fs.Flow.Src, fs.Flow.Dst)
		for _, seg := range plans[fs.Flow.ID] {
			for _, k := range links {
				pp.ports[k].reserve(seg.from, seg.to, seg.rate)
			}
		}
	}
}

// planHorizon is the open-ended window for "finish as early as possible"
// greedy fills.
const planHorizon = unit.Time(1e15)

// planGroup reserves a whole group on the port profiles, class by class in
// deadline order. Each class is paced to finish at
//
//	target = max(deadline + floor, earliest feasible finish)
//
// — the MADD adaptation of Property 4: a class receives the minimum
// allocation that meets its (floored) ideal finish time, and a class whose
// ideal finish is unattainable catches up as fast as the fabric allows
// without slacking the classes ahead of it. The floor is the group's
// already-achieved tardiness, which keeps the remaining flows aligned with
// the shifted echelon formation (§3.1) instead of over-serving them.
//
// It returns the per-flow plans and the group's planned tardiness (the
// worst planned finish minus deadline), or an error when a required port
// has no capacity at all.
func planGroup(snap *Snapshot, pp *portProfiles, classes []deadlineClass, floor unit.Time) (map[string][]fillSegment, unit.Time, error) {
	all := make(map[string][]fillSegment)
	tardiness := floor
	for _, cls := range classes {
		plans, planned, err := planClass(snap, pp, cls, floor)
		if err != nil {
			return nil, 0, err
		}
		tardiness = unit.MaxTime(tardiness, planned-cls.deadline)
		for id, segs := range plans {
			all[id] = segs
		}
	}
	return all, tardiness, nil
}

// planClass plans and commits one deadline class against the profiles,
// returning the per-flow plans and the class's planned finish.
func planClass(snap *Snapshot, pp *portProfiles, cls deadlineClass, floor unit.Time) (map[string][]fillSegment, unit.Time, error) {
	greedy, ok := classFill(pp, cls, snap.Now, planHorizon, false)
	if !ok {
		return nil, 0, fmt.Errorf("sched: class at deadline %v cannot finish (zero-capacity port?)", cls.deadline)
	}
	earliest := snap.Now
	for _, segs := range greedy {
		earliest = unit.MaxTime(earliest, finishOf(segs))
	}
	target := unit.MaxTime(cls.deadline+floor, earliest)
	plans := greedy
	if target.After(earliest) {
		// Deferring to the target may hit spans other groups already
		// reserved; keep the greedy plan if pacing cannot fit.
		if paced, ok := classFill(pp, cls, snap.Now, target, true); ok {
			plans = paced
		}
	}
	planned := snap.Now
	for _, segs := range plans {
		planned = unit.MaxTime(planned, finishOf(segs))
	}
	commitClass(pp, cls, plans)
	return plans, planned, nil
}

// soloTardiness estimates the tardiness a group would achieve alone on the
// full fabric — the inter-EchelonFlow ranking metric of Property 4. It also
// returns the solo plan, which PlanCache uses as the fluid-model pace that
// decides whether the ranking may be reused at a later event.
func soloTardiness(snap *Snapshot, net fabric.Fabric, classes []deadlineClass, floor unit.Time) (map[string][]fillSegment, unit.Time, error) {
	pp := acquirePortProfiles(net, snap.Now)
	plans, tau, err := planGroup(snap, pp, classes, floor)
	releasePortProfiles(pp)
	return plans, tau, err
}

// rankGroups computes the solo-tardiness ordering metric for every group,
// serving what it can from the cache and computing the rest — in parallel
// when more than one group misses, since each solo plan runs against its own
// pooled profile copy. Results and errors are merged in sorted group-id
// order, so the outcome (including which error surfaces first) matches the
// sequential seed loop exactly.
func (e EchelonMADD) rankGroups(snap *Snapshot, net fabric.Fabric, ids []string, byGroup map[string][]*FlowState, classes map[string][]deadlineClass, floors map[string]unit.Time) (map[string]unit.Time, error) {
	solo := make(map[string]unit.Time, len(ids))
	missing := make([]string, 0, len(ids))
	for _, id := range ids {
		if tau, ok := e.Cache.lookup(snap, net, id, byGroup[id], floors[id]); ok {
			solo[id] = tau
			continue
		}
		missing = append(missing, id)
	}
	type soloResult struct {
		plans map[string][]fillSegment
		tau   unit.Time
		err   error
	}
	results := make([]soloResult, len(missing))
	compute := func(i int) {
		id := missing[i]
		plans, tau, err := soloTardiness(snap, net, classes[id], floors[id])
		results[i] = soloResult{plans: plans, tau: tau, err: err}
	}
	if workers := min(runtime.GOMAXPROCS(0), len(missing)); workers > 1 {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(missing) {
						return
					}
					compute(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range missing {
			compute(i)
		}
	}
	for i, id := range missing {
		if results[i].err != nil {
			return nil, fmt.Errorf("sched: group %q: %w", id, results[i].err)
		}
		e.Cache.store(snap, net, id, byGroup[id], floors[id], results[i].tau, results[i].plans)
		solo[id] = results[i].tau
	}
	e.Cache.prune(ids)
	if e.Weighted {
		for _, id := range ids {
			solo[id] = unit.Time(float64(solo[id]) / snap.Groups[id].Group.EffectiveWeight())
		}
	}
	return solo, nil
}

// Schedule implements Scheduler.
func (e EchelonMADD) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	rates := zeroFill(snap)
	if len(snap.Flows) == 0 {
		return rates, nil
	}
	ids, byGroup := groupedFlows(snap)

	// Rank groups by the tardiness each could achieve alone on the full
	// fabric (the inter-EchelonFlow metric of Property 4).
	classes := make(map[string][]deadlineClass, len(ids))
	floors := make(map[string]unit.Time, len(ids))
	for _, id := range ids {
		classes[id] = classesOf(snap, byGroup[id])
		floors[id] = unit.MaxTime(0, snap.Groups[id].AchievedTardiness)
	}
	solo, err := e.rankGroups(snap, net, ids, byGroup, classes, floors)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := solo[ids[i]], solo[ids[j]]
		if !a.ApproxEq(b) {
			if e.Order == LargestTardinessFirst {
				return a > b
			}
			return a < b
		}
		return ids[i] < ids[j]
	})

	// Allocate against the shared capacity timeline: group by group in rank
	// order (default), or all deadline classes in one global EDF order.
	pp := acquirePortProfiles(net, snap.Now)
	defer releasePortProfiles(pp)
	if e.GlobalEDF {
		type gcls struct {
			gid   string
			cls   deadlineClass
			floor unit.Time
		}
		var all []gcls
		for _, id := range ids {
			for _, cls := range classes[id] {
				all = append(all, gcls{gid: id, cls: cls, floor: floors[id]})
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			a, b := all[i].cls.deadline+all[i].floor, all[j].cls.deadline+all[j].floor
			if !a.ApproxEq(b) {
				return a < b
			}
			if !solo[all[i].gid].ApproxEq(solo[all[j].gid]) {
				return solo[all[i].gid] < solo[all[j].gid]
			}
			return all[i].gid < all[j].gid
		})
		for _, gc := range all {
			plans, _, err := planClass(snap, pp, gc.cls, gc.floor)
			if err != nil {
				return nil, fmt.Errorf("sched: group %q: %w", gc.gid, err)
			}
			for id, segs := range plans {
				rates[id] += rateAt(segs, snap.Now)
			}
		}
	} else {
		for _, id := range ids {
			plans, _, err := planGroup(snap, pp, classes[id], floors[id])
			if err != nil {
				return nil, fmt.Errorf("sched: group %q: %w", id, err)
			}
			for _, fs := range byGroup[id] {
				rates[fs.Flow.ID] += rateAt(plans[fs.Flow.ID], snap.Now)
			}
		}
	}

	if e.Backfill {
		e.backfill(snap, net, rates)
	}

	// Clamp float fuzz so the allocation is exactly feasible.
	return clampFeasible(snap, net, rates)
}

// backfill hands leftover instantaneous capacity to flows in deadline order.
func (e EchelonMADD) backfill(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) {
	res := net.NewResidual()
	for _, fs := range snap.Flows {
		res.Take(fs.Flow.Src, fs.Flow.Dst, rates[fs.Flow.ID])
	}
	ordered := sortedCopy(snap.Flows, func(a, b *FlowState) bool {
		return snap.Deadline(a).Before(snap.Deadline(b))
	})
	for _, fs := range ordered {
		extra := res.Available(fs.Flow.Src, fs.Flow.Dst)
		if extra <= unit.Rate(unit.Eps) {
			continue
		}
		rates[fs.Flow.ID] += extra
		res.Take(fs.Flow.Src, fs.Flow.Dst, extra)
	}
}

// clampFeasible scales down any port's allocations that exceed capacity by
// accumulated floating-point fuzz, then validates.
func clampFeasible(snap *Snapshot, net fabric.Fabric, rates map[string]unit.Rate) (map[string]unit.Rate, error) {
	used := make(map[fabric.LinkKey]unit.Rate)
	var lbuf []fabric.LinkKey
	for _, fs := range snap.Flows {
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			used[k] += rates[fs.Flow.ID]
		}
	}
	scale := func(used, cap unit.Rate) float64 {
		if used <= cap || used == 0 {
			return 1
		}
		return float64(cap) / float64(used)
	}
	for _, fs := range snap.Flows {
		s := 1.0
		lbuf = net.FlowLinks(fs.Flow.Src, fs.Flow.Dst, lbuf[:0])
		for _, k := range lbuf {
			if v := scale(used[k], net.LinkCapacity(k)); v < s {
				s = v
			}
		}
		if s < 1 {
			rates[fs.Flow.ID] = unit.Rate(float64(rates[fs.Flow.ID]) * s)
		}
	}
	if err := net.Feasible(requestsOf(snap.Flows), rates); err != nil {
		return nil, err
	}
	return rates, nil
}
