package sched

import (
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/unit"
)

// equalRates compares allocations bitwise — the cache's contract is exact
// equivalence with the uncached scheduler, not approximate.
func equalRates(t *testing.T, got, want map[string]unit.Rate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rate map sizes differ: got %v, want %v", got, want)
	}
	for id, r := range want {
		if g, ok := got[id]; !ok || g != r {
			t.Fatalf("rate[%s] = %v, want exactly %v (full: got %v want %v)", id, got[id], r, got, want)
		}
	}
}

// An on-schedule group whose volumes track its solo plan is served from the
// cache at later events, with allocations identical to a fresh computation.
func TestPlanCacheHitOnSchedule(t *testing.T) {
	cache := NewPlanCache()
	cached := EchelonMADD{Cache: cache}
	fresh := EchelonMADD{}
	net := singleLinkNet(t)

	// Deadlines 2 and 4 (reference 2), sizes 2 each on a unit link: exactly
	// feasible at τ=0, so the group is on schedule.
	g := pipelineGroup(t, "p", 2, 2, 2)
	mkSnap := func(now unit.Time, rem0, rem1 unit.Bytes) *Snapshot {
		snap := buildSnapshot(t, now, map[string]*core.EchelonFlow{"p": g},
			map[string]unit.Bytes{"p-f0": rem0, "p-f1": rem1})
		snap.Groups["p"].Reference = 2
		return snap
	}

	r0, err := cached.Schedule(mkSnap(0, 2, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := fresh.Schedule(mkSnap(0, 2, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	equalRates(t, r0, w0)
	if st := cache.Stats(); st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after first call: %+v", st)
	}

	// One second later, volumes exactly on the solo pace (f0 transmitted at
	// the full unit link): the ranking must come from the cache.
	r1, err := cached.Schedule(mkSnap(1, 1, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := fresh.Schedule(mkSnap(1, 1, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	equalRates(t, r1, w1)
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("expected a cache hit, got %+v", st)
	}

	// Ahead of pace is also reusable: at t=1.5 the solo plan predicts
	// (0.5, 2) remaining; (0.25, 2) is strictly ahead.
	r2, err := cached.Schedule(mkSnap(1.5, 0.25, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := fresh.Schedule(mkSnap(1.5, 0.25, 2), net)
	if err != nil {
		t.Fatal(err)
	}
	equalRates(t, r2, w2)
	if st := cache.Stats(); st.Hits != 2 {
		t.Fatalf("expected a second hit, got %+v", st)
	}
}

// A flow that falls behind its solo pace (stalled by contention or agent
// lag) must miss: the achievable tardiness may have changed.
func TestPlanCacheMissOnLag(t *testing.T) {
	cache := NewPlanCache()
	cached := EchelonMADD{Cache: cache}
	net := singleLinkNet(t)
	g := pipelineGroup(t, "p", 2, 2, 2)
	mk := func(now unit.Time, rem0 unit.Bytes) *Snapshot {
		snap := buildSnapshot(t, now, map[string]*core.EchelonFlow{"p": g},
			map[string]unit.Bytes{"p-f0": rem0, "p-f1": 2})
		snap.Groups["p"].Reference = 2
		return snap
	}
	if _, err := cached.Schedule(mk(0, 2), net); err != nil {
		t.Fatal(err)
	}
	// At t=1 the solo plan predicts 1 byte remaining; 1.5 is behind pace.
	r, err := cached.Schedule(mk(1, 1.5), net)
	if err != nil {
		t.Fatal(err)
	}
	w, err := EchelonMADD{}.Schedule(mk(1, 1.5), net)
	if err != nil {
		t.Fatal(err)
	}
	equalRates(t, r, w)
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("lagging flow must not hit: %+v", st)
	}
}

// Any fabric mutation retires every cached entry via the generation counter,
// even without an explicit invalidation call.
func TestPlanCacheCapacityChangeMisses(t *testing.T) {
	cache := NewPlanCache()
	cached := EchelonMADD{Cache: cache}
	net := singleLinkNet(t)
	g := pipelineGroup(t, "p", 2, 2, 2)
	mk := func(now unit.Time) *Snapshot {
		snap := buildSnapshot(t, now, map[string]*core.EchelonFlow{"p": g},
			map[string]unit.Bytes{"p-f0": 2, "p-f1": 2})
		snap.Groups["p"].Reference = 2
		return snap
	}
	if _, err := cached.Schedule(mk(0), net); err != nil {
		t.Fatal(err)
	}
	if err := net.SetCapacity("a", 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	r, err := cached.Schedule(mk(0), net)
	if err != nil {
		t.Fatal(err)
	}
	w, err := EchelonMADD{}.Schedule(mk(0), net)
	if err != nil {
		t.Fatal(err)
	}
	equalRates(t, r, w)
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("capacity change must invalidate: %+v", st)
	}
}

// Explicit invalidation hooks and the nil cache are both safe.
func TestPlanCacheInvalidation(t *testing.T) {
	cache := NewPlanCache()
	cached := EchelonMADD{Cache: cache}
	net := singleLinkNet(t)
	g := pipelineGroup(t, "p", 2, 2, 2)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	snap.Groups["p"].Reference = 2
	if _, err := cached.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("expected one entry, got %+v", st)
	}
	cache.InvalidateGroup("no-such-group")
	if st := cache.Stats(); st.Entries != 1 || st.Invalidations != 0 {
		t.Fatalf("unknown-group invalidation changed state: %+v", st)
	}
	cache.InvalidateGroup("p")
	if st := cache.Stats(); st.Entries != 0 || st.Invalidations != 1 {
		t.Fatalf("after InvalidateGroup: %+v", st)
	}
	if _, err := cached.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	cache.InvalidateAll()
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("after InvalidateAll: %+v", st)
	}

	var nilCache *PlanCache
	nilCache.InvalidateGroup("p")
	nilCache.InvalidateAll()
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if _, ok := nilCache.lookup(snap, net, "p", nil, 0); ok {
		t.Fatal("nil cache reported a hit")
	}
}

// Entries for departed groups are pruned so the cache stays bounded by the
// live group set.
func TestPlanCachePrunesDepartedGroups(t *testing.T) {
	cache := NewPlanCache()
	cached := EchelonMADD{Cache: cache}
	net := singleLinkNet(t)
	p := pipelineGroup(t, "p", 2, 2, 2)
	c := coflowGroup(t, "c", 1)
	both := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": p, "c": c}, nil)
	both.Groups["p"].Reference = 2
	if _, err := cached.Schedule(both, net); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 2 {
		t.Fatalf("expected two entries, got %+v", st)
	}
	only := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": p}, nil)
	only.Groups["p"].Reference = 2
	if _, err := cached.Schedule(only, net); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("departed group not pruned: %+v", st)
	}
}

// prune's binary search requires sorted ids; an unsorted caller used to
// evict live entries silently (SearchStrings misses on unsorted input).
// The guard must detect the violation and prune against a sorted copy.
func TestPlanCachePruneUnsortedIDs(t *testing.T) {
	cache := NewPlanCache()
	cache.entries["a"] = &planEntry{}
	cache.entries["b"] = &planEntry{}
	ids := []string{"b", "a"} // deliberately unsorted
	cache.prune(ids)
	if st := cache.Stats(); st.Entries != 2 {
		t.Fatalf("live entries evicted by unsorted prune: %+v", st)
	}
	if ids[0] != "b" || ids[1] != "a" {
		t.Fatalf("caller's slice reordered in place: %v", ids)
	}
	cache.prune([]string{"b"})
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("sorted prune broken: %+v", st)
	}
	if _, ok := cache.entries["b"]; !ok {
		t.Fatal("wrong entry pruned")
	}
}
