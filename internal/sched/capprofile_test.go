package sched

import (
	"testing"

	"echelonflow/internal/unit"
)

func TestProfileReserveAndFreeAt(t *testing.T) {
	p := newProfile(0, 10)
	p.reserve(2, 5, 4)
	tests := []struct {
		t    unit.Time
		want unit.Rate
	}{
		{0, 10}, {1.9, 10}, {2, 6}, {4.9, 6}, {5, 10}, {100, 10},
	}
	for _, tt := range tests {
		if got := p.freeAt(tt.t); got != tt.want {
			t.Errorf("freeAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestProfileOverlappingReservations(t *testing.T) {
	p := newProfile(0, 10)
	p.reserve(0, 4, 3)
	p.reserve(2, 6, 3)
	if got := p.freeAt(3); got != 4 {
		t.Errorf("freeAt(3) = %v, want 4", got)
	}
	if got := p.freeAt(5); got != 7 {
		t.Errorf("freeAt(5) = %v, want 7", got)
	}
}

func TestProfileReserveClampsAtZero(t *testing.T) {
	p := newProfile(0, 1)
	p.reserve(0, 2, 5)
	if got := p.freeAt(1); got != 0 {
		t.Errorf("freeAt = %v, want 0", got)
	}
}

func TestProfileReserveBeforeStart(t *testing.T) {
	p := newProfile(5, 10)
	p.reserve(0, 7, 4) // starts before the profile: clamps to profile start
	if got := p.freeAt(5); got != 6 {
		t.Errorf("freeAt(5) = %v, want 6", got)
	}
	if got := p.freeAt(7); got != 10 {
		t.Errorf("freeAt(7) = %v, want 10", got)
	}
}

func TestProfileReserveToInfinity(t *testing.T) {
	p := newProfile(0, 10)
	p.reserve(3, unit.Inf, 2)
	if got := p.freeAt(1e9); got != 8 {
		t.Errorf("freeAt(1e9) = %v, want 8", got)
	}
	if got := p.freeAt(1); got != 10 {
		t.Errorf("freeAt(1) = %v, want 10", got)
	}
}

func TestProfileCloneIsIndependent(t *testing.T) {
	p := newProfile(0, 10)
	c := p.clone()
	c.reserve(0, 5, 9)
	if p.freeAt(2) != 10 {
		t.Error("clone mutation leaked into original")
	}
}

func TestPairFillSimple(t *testing.T) {
	src := newProfile(0, 2)
	dst := newProfile(0, 1)
	fills, ok := pairFill(src, dst, 0, 10, 3)
	if !ok {
		t.Fatal("fill should fit")
	}
	// Limited by dst (rate 1): 3 bytes in [0,3].
	if len(fills) != 1 || !fills[0].to.ApproxEq(3) || fills[0].rate != 1 {
		t.Errorf("fills = %+v", fills)
	}
	if got := finishOf(fills); !got.ApproxEq(3) {
		t.Errorf("finishOf = %v", got)
	}
}

func TestPairFillAcrossSegments(t *testing.T) {
	src := newProfile(0, 2)
	src.reserve(0, 2, 1.5) // only 0.5 free in [0,2]
	dst := newProfile(0, 2)
	fills, ok := pairFill(src, dst, 0, 10, 3)
	if !ok {
		t.Fatal("fill should fit")
	}
	// [0,2] at 0.5 => 1 byte; remaining 2 at rate 2 => [2,3].
	if len(fills) != 2 {
		t.Fatalf("fills = %+v", fills)
	}
	if fills[0].rate != 0.5 || !fills[1].to.ApproxEq(3) || fills[1].rate != 2 {
		t.Errorf("fills = %+v", fills)
	}
}

func TestPairFillDoesNotFit(t *testing.T) {
	src := newProfile(0, 1)
	dst := newProfile(0, 1)
	if _, ok := pairFill(src, dst, 0, 2, 5); ok {
		t.Error("5 bytes cannot fit in 2 seconds at rate 1")
	}
	if _, ok := pairFill(src, dst, 3, 3, 1); ok {
		t.Error("empty window accepted")
	}
}

func TestPairFillZeroVolume(t *testing.T) {
	src := newProfile(0, 1)
	dst := newProfile(0, 1)
	fills, ok := pairFill(src, dst, 0, 1, 0)
	if !ok || len(fills) != 0 {
		t.Errorf("zero-volume fill = %v, %v", fills, ok)
	}
}

func TestPairFillSkipsDeadSegments(t *testing.T) {
	src := newProfile(0, 1)
	src.reserve(0, 2, 1) // no capacity in [0,2]
	dst := newProfile(0, 1)
	fills, ok := pairFill(src, dst, 0, 5, 2)
	if !ok {
		t.Fatal("fill should fit after the dead segment")
	}
	if !fills[0].from.ApproxEq(2) || !finishOf(fills).ApproxEq(4) {
		t.Errorf("fills = %+v", fills)
	}
}

func TestCommitAndRateAt(t *testing.T) {
	src := newProfile(0, 2)
	dst := newProfile(0, 2)
	fills, ok := pairFill(src, dst, 0, 10, 4)
	if !ok {
		t.Fatal("fill failed")
	}
	commit(src, dst, fills)
	if got := src.freeAt(1); got != 0 {
		t.Errorf("src free after commit = %v", got)
	}
	if got := rateAt(fills, 0); got != 2 {
		t.Errorf("rateAt(0) = %v", got)
	}
	if got := rateAt(fills, 99); got != 0 {
		t.Errorf("rateAt(99) = %v", got)
	}
}

func TestFinishOfEmpty(t *testing.T) {
	if finishOf(nil) != 0 {
		t.Error("finishOf(nil) != 0")
	}
}
