package sched

import (
	"fmt"
	"testing"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/telemetry"
	"echelonflow/internal/unit"
)

// stubScheduler counts calls and optionally errors.
type stubScheduler struct {
	calls int
	fail  bool
}

func (s *stubScheduler) Name() string { return "stub" }

func (s *stubScheduler) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	s.calls++
	if s.fail {
		return nil, fmt.Errorf("stub failure")
	}
	return zeroFill(snap), nil
}

func TestInstrumentNilRegistryIsIdentity(t *testing.T) {
	s := &stubScheduler{}
	if got := Instrument(s, nil); got != Scheduler(s) {
		t.Error("nil registry should return the scheduler unchanged")
	}
	if got := Instrument(nil, telemetry.NewRegistry()); got != nil {
		t.Error("nil scheduler should pass through")
	}
}

func instrumentSnapshot(t *testing.T) (*Snapshot, *fabric.Network) {
	t.Helper()
	g, err := core.New("g", core.Coflow{}, &core.Flow{ID: "f", Src: "a", Dst: "b", Size: 100})
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.NewNetwork()
	net.AddUniformHosts(100, "a", "b")
	snap := &Snapshot{
		Now:    1,
		Groups: map[string]*GroupState{"g": {Group: g}},
		Flows:  []*FlowState{{Flow: g.Flows[0], GroupID: "g", Remaining: 100, Release: 0}},
	}
	return snap, net
}

func TestInstrumentCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	stub := &stubScheduler{}
	in := Instrument(stub, reg)
	if in.Name() != "stub" {
		t.Errorf("name = %q", in.Name())
	}
	snap, net := instrumentSnapshot(t)
	if _, err := in.Schedule(snap, net); err != nil {
		t.Fatal(err)
	}
	stub.fail = true
	if _, err := in.Schedule(snap, net); err == nil {
		t.Fatal("expected forwarded error")
	}
	if got := reg.Counter("echelon_schedule_calls_total", "", "scheduler", "stub").Value(); got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
	if got := reg.Counter("echelon_schedule_errors_total", "", "scheduler", "stub").Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := reg.Histogram("echelon_schedule_seconds", "", "scheduler", "stub").Count(); got != 2 {
		t.Errorf("latency observations = %d, want 2", got)
	}
}

func TestInstrumentForwardsPlanCache(t *testing.T) {
	cache := NewPlanCache()
	inner := EchelonMADD{Backfill: true, Cache: cache}
	reg := telemetry.NewRegistry()
	in := Instrument(inner, reg)
	pc, ok := in.(interface{ PlanCache() *PlanCache })
	if !ok || pc.PlanCache() != cache {
		t.Fatal("wrapper does not forward the inner scheduler's PlanCache")
	}
	// Two identical schedules: first misses, second hits; the counters
	// export the deltas of the cache's cumulative stats.
	snap, net := instrumentSnapshot(t)
	for i := 0; i < 2; i++ {
		if _, err := in.Schedule(snap, net); err != nil {
			t.Fatal(err)
		}
	}
	hits := reg.Counter("echelon_plan_cache_hits_total", "", "scheduler", inner.Name()).Value()
	misses := reg.Counter("echelon_plan_cache_misses_total", "", "scheduler", inner.Name()).Value()
	st := cache.Stats()
	if hits != st.Hits || misses != st.Misses {
		t.Errorf("exported hits/misses = %d/%d, cache stats = %d/%d", hits, misses, st.Hits, st.Misses)
	}
	if hits == 0 {
		t.Error("second identical schedule should have hit the plan cache")
	}
}
