package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"echelonflow/internal/core"
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// buildSnapshot wires flows into groups and a snapshot, with reference 0.
func buildSnapshot(t *testing.T, now unit.Time, groups map[string]*core.EchelonFlow, remaining map[string]unit.Bytes) *Snapshot {
	t.Helper()
	snap := &Snapshot{Now: now, Groups: make(map[string]*GroupState)}
	for id, g := range groups {
		snap.Groups[id] = &GroupState{Group: g}
		for _, f := range g.Flows {
			rem, ok := remaining[f.ID]
			if !ok {
				rem = f.Size
			}
			if rem <= 0 {
				continue
			}
			snap.Flows = append(snap.Flows, &FlowState{Flow: f, GroupID: id, Remaining: rem})
		}
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	return snap
}

func singleLinkNet(t *testing.T) *fabric.Network {
	t.Helper()
	n := fabric.NewNetwork()
	n.AddUniformHosts(1, "a", "b")
	return n
}

func coflowGroup(t *testing.T, id string, sizes ...unit.Bytes) *core.EchelonFlow {
	t.Helper()
	flows := make([]*core.Flow, len(sizes))
	for i, s := range sizes {
		flows[i] = &core.Flow{ID: id + "-f" + string(rune('0'+i)), Src: "a", Dst: "b", Size: s}
	}
	g, err := core.NewCoflow(id, flows...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pipelineGroup(t *testing.T, id string, T unit.Time, sizes ...unit.Bytes) *core.EchelonFlow {
	t.Helper()
	flows := make([]*core.Flow, len(sizes))
	for i, s := range sizes {
		flows[i] = &core.Flow{ID: id + "-f" + string(rune('0'+i)), Src: "a", Dst: "b", Size: s, Stage: i}
	}
	g, err := core.New(id, core.Pipeline{T: T}, flows...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotValidate(t *testing.T) {
	g := coflowGroup(t, "g", 1)
	f := g.Flows[0]
	ok := &Snapshot{
		Groups: map[string]*GroupState{"g": {Group: g}},
		Flows:  []*FlowState{{Flow: f, GroupID: "g", Remaining: 1}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
	bad := &Snapshot{
		Groups: map[string]*GroupState{},
		Flows:  []*FlowState{{Flow: f, GroupID: "missing", Remaining: 1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("unknown group accepted")
	}
	neg := &Snapshot{
		Groups: map[string]*GroupState{"g": {Group: g}},
		Flows:  []*FlowState{{Flow: f, GroupID: "g", Remaining: -1}},
	}
	if err := neg.Validate(); err == nil {
		t.Error("negative remaining accepted")
	}
	dup := &Snapshot{
		Groups: map[string]*GroupState{"g": {Group: g}},
		Flows: []*FlowState{
			{Flow: f, GroupID: "g", Remaining: 1},
			{Flow: f, GroupID: "g", Remaining: 1},
		},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate flow accepted")
	}
	alien := &core.Flow{ID: "alien", Src: "a", Dst: "b", Size: 1}
	wrong := &Snapshot{
		Groups: map[string]*GroupState{"g": {Group: g}},
		Flows:  []*FlowState{{Flow: alien, GroupID: "g", Remaining: 1}},
	}
	if err := wrong.Validate(); err == nil {
		t.Error("non-member flow accepted")
	}
}

func TestSnapshotDeadline(t *testing.T) {
	g := pipelineGroup(t, "p", 2, 1, 1, 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"p": g}, nil)
	snap.Groups["p"].Reference = 10
	for _, fs := range snap.Flows {
		want := unit.Time(10 + 2*fs.Flow.Stage)
		if got := snap.Deadline(fs); !got.ApproxEq(want) {
			t.Errorf("Deadline(%s) = %v, want %v", fs.Flow.ID, got, want)
		}
	}
}

func TestFairMatchesMaxMin(t *testing.T) {
	g := coflowGroup(t, "g", 5, 5, 5)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g": g}, nil)
	rates, err := Fair{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range rates {
		if math.Abs(float64(r)-1.0/3) > 1e-9 {
			t.Errorf("rate[%s] = %v, want 1/3", id, r)
		}
	}
}

func TestSRPTPrioritizesSmallest(t *testing.T) {
	g1 := coflowGroup(t, "g1", 10)
	g2 := coflowGroup(t, "g2", 1)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g1": g1, "g2": g2}, nil)
	rates, err := SRPT{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if rates["g2-f0"] != 1 || rates["g1-f0"] != 0 {
		t.Errorf("rates = %v, want smallest flow to get the link", rates)
	}
}

func TestFIFOPrioritizesEarliest(t *testing.T) {
	g1 := coflowGroup(t, "g1", 10)
	g2 := coflowGroup(t, "g2", 10)
	snap := buildSnapshot(t, 5, map[string]*core.EchelonFlow{"g1": g1, "g2": g2}, nil)
	for _, fs := range snap.Flows {
		if fs.GroupID == "g2" {
			fs.Release = 1
		} else {
			fs.Release = 3
		}
	}
	rates, err := FIFO{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if rates["g2-f0"] != 1 || rates["g1-f0"] != 0 {
		t.Errorf("rates = %v, want earliest release to get the link", rates)
	}
}

func TestEmptySnapshots(t *testing.T) {
	net := singleLinkNet(t)
	snap := &Snapshot{Groups: map[string]*GroupState{}}
	for _, s := range allSchedulers() {
		rates, err := s.Schedule(snap, net)
		if err != nil {
			t.Errorf("%s on empty snapshot: %v", s.Name(), err)
		}
		if len(rates) != 0 {
			t.Errorf("%s returned rates for empty snapshot: %v", s.Name(), rates)
		}
	}
}

func TestCoflowMADDSimultaneousFinish(t *testing.T) {
	// One coflow, sizes 1 and 3 on a unit link: Γ = 4, rates 0.25 and 0.75;
	// both finish at t=4 — the defining Coflow behaviour.
	g := coflowGroup(t, "g", 1, 3)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g": g}, nil)
	rates, err := CoflowMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["g-f0"])-0.25) > 1e-9 || math.Abs(float64(rates["g-f1"])-0.75) > 1e-9 {
		t.Errorf("rates = %v, want 0.25/0.75", rates)
	}
}

func TestCoflowMADDSEBFOrder(t *testing.T) {
	// Small coflow (Γ=1) should be served before big (Γ=10).
	small := coflowGroup(t, "small", 1)
	big := coflowGroup(t, "big", 10)
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"small": small, "big": big}, nil)
	rates, err := CoflowMADD{}.Schedule(snap, singleLinkNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rates["small-f0"])-1) > 1e-9 {
		t.Errorf("small coflow rate = %v, want full link", rates["small-f0"])
	}
	if rates["big-f0"] != 0 {
		t.Errorf("big coflow rate = %v, want starved", rates["big-f0"])
	}
}

func TestCoflowMADDBackfill(t *testing.T) {
	// A lone half-finished coflow under-uses the link without backfill.
	g := coflowGroup(t, "g", 4)
	net := fabric.NewNetwork()
	net.AddUniformHosts(2, "a", "b")
	snap := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"g": g}, nil)
	plain, err := CoflowMADD{}.Schedule(snap, net)
	if err != nil {
		t.Fatal(err)
	}
	// Γ = 2, so MADD gives 4/2 = 2 = full rate here. Use two flows with
	// unequal ports to expose backfill instead.
	_ = plain
	netB := fabric.NewNetwork()
	netB.AddUniformHosts(1, "a", "b", "c")
	ga, _ := core.NewCoflow("m",
		&core.Flow{ID: "m-ab", Src: "a", Dst: "b", Size: 2},
		&core.Flow{ID: "m-cb", Src: "c", Dst: "b", Size: 1},
	)
	snapB := buildSnapshot(t, 0, map[string]*core.EchelonFlow{"m": ga}, nil)
	noBF, err := CoflowMADD{}.Schedule(snapB, netB)
	if err != nil {
		t.Fatal(err)
	}
	// Γ = 3 (b ingress carries 3): rates 2/3 and 1/3; b saturated, so
	// backfill adds nothing on b but the a egress port idles at 1/3 spare.
	if math.Abs(float64(noBF["m-ab"])-2.0/3) > 1e-9 {
		t.Errorf("no-backfill rate = %v, want 2/3", noBF["m-ab"])
	}
	withBF, err := CoflowMADD{Backfill: true}.Schedule(snapB, netB)
	if err != nil {
		t.Fatal(err)
	}
	sum := withBF["m-ab"] + withBF["m-cb"]
	if math.Abs(float64(sum)-1) > 1e-9 {
		t.Errorf("backfill should saturate b ingress: sum = %v", sum)
	}
}

func allSchedulers() []Scheduler {
	return []Scheduler{
		Fair{}, SRPT{}, FIFO{}, EDF{},
		CoflowMADD{}, CoflowMADD{Backfill: true},
		EchelonMADD{}, EchelonMADD{Backfill: true},
		EchelonMADD{Order: LargestTardinessFirst},
	}
}

func TestSchedulerNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allSchedulers() {
		if s.Name() == "" || seen[s.Name()] {
			t.Errorf("scheduler name %q empty or duplicated", s.Name())
		}
		seen[s.Name()] = true
	}
	if Order(9).String() != "order(9)" {
		t.Error("unknown order string")
	}
	if SmallestTardinessFirst.String() != "stf" || LargestTardinessFirst.String() != "ltf" {
		t.Error("order names wrong")
	}
}

// Property: every scheduler returns a feasible allocation with an entry per
// flow, on randomized multi-group scenarios.
func TestAllSchedulersFeasibleProperty(t *testing.T) {
	schedulers := allSchedulers()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := fabric.NewNetwork()
		hostCount := 2 + rng.Intn(4)
		hosts := make([]string, hostCount)
		for i := range hosts {
			hosts[i] = "h" + string(rune('0'+i))
			_ = net.AddHost(hosts[i], unit.Rate(0.5+3*rng.Float64()), unit.Rate(0.5+3*rng.Float64()))
		}
		groups := make(map[string]*core.EchelonFlow)
		snap := &Snapshot{Now: unit.Time(rng.Float64() * 5), Groups: map[string]*GroupState{}}
		groupCount := 1 + rng.Intn(3)
		for gi := 0; gi < groupCount; gi++ {
			gid := "g" + string(rune('0'+gi))
			flowCount := 1 + rng.Intn(4)
			flows := make([]*core.Flow, flowCount)
			for fi := range flows {
				s := rng.Intn(hostCount)
				d := rng.Intn(hostCount)
				if s == d {
					d = (d + 1) % hostCount
				}
				flows[fi] = &core.Flow{
					ID:  gid + "f" + string(rune('0'+fi)),
					Src: hosts[s], Dst: hosts[d],
					Size:  unit.Bytes(0.5 + 4*rng.Float64()),
					Stage: fi,
				}
			}
			var g *core.EchelonFlow
			var err error
			switch rng.Intn(3) {
			case 0:
				g, err = core.NewCoflow(gid, flows...)
			case 1:
				g, err = core.New(gid, core.Pipeline{T: unit.Time(rng.Float64() * 2)}, flows...)
			default:
				gaps := make([]unit.Time, len(flows)-1)
				for i := range gaps {
					gaps[i] = unit.Time(rng.Float64())
				}
				g, err = core.New(gid, core.Staged{Gaps: gaps}, flows...)
			}
			if err != nil {
				return false
			}
			groups[gid] = g
			snap.Groups[gid] = &GroupState{Group: g, Reference: snap.Now - unit.Time(rng.Float64()*3)}
			for _, fl := range g.Flows {
				rem := unit.Bytes(float64(fl.Size) * (0.2 + 0.8*rng.Float64()))
				snap.Flows = append(snap.Flows, &FlowState{
					Flow: fl, GroupID: gid, Remaining: rem,
					Release: snap.Now - unit.Time(rng.Float64()),
				})
			}
		}
		if err := snap.Validate(); err != nil {
			return false
		}
		reqs := requestsOf(snap.Flows)
		for _, s := range schedulers {
			rates, err := s.Schedule(snap, net)
			if err != nil {
				t.Logf("%s failed: %v", s.Name(), err)
				return false
			}
			if len(rates) != len(snap.Flows) {
				t.Logf("%s returned %d rates for %d flows", s.Name(), len(rates), len(snap.Flows))
				return false
			}
			if err := net.Feasible(reqs, rates); err != nil {
				t.Logf("%s infeasible: %v", s.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
