// Package sched implements the flow schedulers compared in the paper:
// bandwidth fair sharing, Coflow scheduling (Varys-style MADD with SEBF
// ordering), and EchelonFlow scheduling (the paper's Property-4 adaptation
// of MADD to tardiness), plus per-flow baselines (SRPT, FIFO).
//
// A scheduler is a pure function from a scheduling snapshot (released,
// unfinished flows with group deadlines) and a fabric to per-flow rates.
// The co-simulator and the live Coordinator both re-invoke it on every flow
// arrival and departure, matching the paper's §5 sketch.
package sched

import (
	"sort"

	"echelonflow/internal/unit"
)

// profile is a piecewise-constant free-capacity timeline for one direction
// of one host port, used to plan time-varying reservations. Segment i spans
// [times[i], times[i+1]) (the last extends to infinity) with free[i]
// capacity remaining.
type profile struct {
	times []unit.Time
	free  []unit.Rate
}

func newProfile(start unit.Time, cap unit.Rate) *profile {
	return &profile{times: []unit.Time{start}, free: []unit.Rate{cap}}
}

func (p *profile) clone() *profile {
	return &profile{
		times: append([]unit.Time(nil), p.times...),
		free:  append([]unit.Rate(nil), p.free...),
	}
}

// reset rewinds the profile to a single full-capacity segment starting at
// start, reusing the backing arrays. It restores the newProfile state
// without allocating, so port profiles can be pooled across Schedule calls.
func (p *profile) reset(start unit.Time, cap unit.Rate) {
	p.times = append(p.times[:0], start)
	p.free = append(p.free[:0], cap)
}

// segIndex returns the index of the segment containing t, clamping to the
// first segment for times before the profile starts.
func (p *profile) segIndex(t unit.Time) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	if i < 0 {
		return 0
	}
	return i
}

// ensureBreak inserts a breakpoint at t (if within range) and returns the
// index of the segment starting at t.
func (p *profile) ensureBreak(t unit.Time) int {
	if t <= p.times[0] {
		return 0
	}
	i := p.segIndex(t)
	if p.times[i].ApproxEq(t) {
		return i
	}
	// Split segment i at t.
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.free[i+2:], p.free[i+1:])
	p.times[i+1] = t
	p.free[i+1] = p.free[i]
	return i + 1
}

// freeAt returns the free capacity at time t.
func (p *profile) freeAt(t unit.Time) unit.Rate {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.free[p.segIndex(t)]
}

// reserve subtracts rate over [from, to). Reservations may not exceed the
// free capacity (within tolerance); excess clamps at zero to keep later
// arithmetic sane.
func (p *profile) reserve(from, to unit.Time, rate unit.Rate) {
	if to <= from || rate <= 0 {
		return
	}
	i := p.ensureBreak(from)
	var j int
	if to.IsInf() {
		j = len(p.times)
	} else {
		j = p.ensureBreak(to)
	}
	for k := i; k < j; k++ {
		p.free[k] -= rate
		if p.free[k] < 0 {
			p.free[k] = 0
		}
	}
}

// fillSegment is one constant-rate span of a planned transmission.
type fillSegment struct {
	from, to unit.Time
	rate     unit.Rate
}

// pairFill plans an earliest-first transmission of vol bytes between the
// two port profiles inside [from, to]: at every instant it uses the minimum
// of the two free capacities. It returns the planned segments and whether
// the full volume fits. Nothing is committed.
func pairFill(src, dst *profile, from, to unit.Time, vol unit.Bytes) ([]fillSegment, bool) {
	if vol.Zeroish() {
		return nil, true
	}
	if to <= from {
		return nil, false
	}
	// Merge breakpoints from both profiles within [from, to].
	cuts := mergeBreaks(src, dst, from, to)
	var fills []fillSegment
	remaining := vol
	for i := 0; i+1 <= len(cuts)-1; i++ {
		a, b := cuts[i], cuts[i+1]
		r := unit.MinRate(src.freeAt(a), dst.freeAt(a))
		if r <= unit.Rate(unit.Eps) {
			continue
		}
		span := b - a
		capVol := r.Over(span)
		if float64(capVol) >= float64(remaining)-unit.Eps {
			// Volume exhausts within this segment.
			end := a + remaining.At(r)
			fills = append(fills, fillSegment{from: a, to: end, rate: r})
			return fills, true
		}
		fills = append(fills, fillSegment{from: a, to: b, rate: r})
		remaining -= capVol
	}
	return fills, false
}

// mergeBreaks returns the sorted breakpoints of both profiles clipped to
// [from, to], always including both endpoints. An infinite "to" is replaced
// by a horizon far beyond the last finite breakpoint.
func mergeBreaks(src, dst *profile, from, to unit.Time) []unit.Time {
	if to.IsInf() {
		last := from
		if n := len(src.times); n > 0 && src.times[n-1] > last {
			last = src.times[n-1]
		}
		if n := len(dst.times); n > 0 && dst.times[n-1] > last {
			last = dst.times[n-1]
		}
		to = last + 1e12
	}
	out := make([]unit.Time, 0, 2+len(src.times)+len(dst.times))
	out = append(out, from, to)
	for _, t := range src.times {
		if t > from && t < to {
			out = append(out, t)
		}
	}
	for _, t := range dst.times {
		if t > from && t < to {
			out = append(out, t)
		}
	}
	return sortedBreaks(out)
}

// sortedBreaks sorts breakpoints ascending and drops exact duplicates in
// place — the same set-of-times semantics the planners relied on when
// breakpoints were collected in a map, without the per-call map.
func sortedBreaks(ts []unit.Time) []unit.Time {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// commit subtracts the planned segments from both profiles.
func commit(src, dst *profile, fills []fillSegment) {
	for _, f := range fills {
		src.reserve(f.from, f.to, f.rate)
		dst.reserve(f.from, f.to, f.rate)
	}
}

// rateAt returns the planned rate at instant t (zero if no segment covers it).
func rateAt(fills []fillSegment, t unit.Time) unit.Rate {
	for _, f := range fills {
		if t >= f.from-unit.Time(unit.Eps) && t < f.to-unit.Time(unit.Eps) {
			return f.rate
		}
	}
	return 0
}

// finishOf returns the end of the last planned segment.
func finishOf(fills []fillSegment) unit.Time {
	if len(fills) == 0 {
		return 0
	}
	return fills[len(fills)-1].to
}
