package sched

import (
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// Fair is per-flow max-min bandwidth fair sharing — the "naive" baseline of
// the paper's Fig. 2 that Coflow scheduling can lose to on pipeline
// workloads. It ignores groups and deadlines entirely.
type Fair struct{}

// Name implements Scheduler.
func (Fair) Name() string { return "fair" }

// Schedule implements Scheduler via progressive filling.
func (Fair) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Flows) == 0 {
		return map[string]unit.Rate{}, nil
	}
	rates, err := net.MaxMin(requestsOf(snap.Flows))
	if err != nil {
		return nil, err
	}
	return rates, nil
}

// SRPT prioritizes the flow with the smallest remaining volume (a pFabric-
// style information-rich per-flow policy): flows are greedily filled in
// ascending remaining order. It minimizes mean flow completion time but is
// oblivious to computation arrangements.
type SRPT struct{}

// Name implements Scheduler.
func (SRPT) Name() string { return "srpt" }

// Schedule implements Scheduler.
func (SRPT) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Flows) == 0 {
		return map[string]unit.Rate{}, nil
	}
	ordered := sortedCopy(snap.Flows, func(a, b *FlowState) bool {
		return a.Remaining < b.Remaining
	})
	rates, err := net.GreedyFill(requestsOf(ordered))
	if err != nil {
		return nil, err
	}
	return rates, nil
}

// FIFO serves flows strictly in release order — the behaviour of a plain
// shared message queue with no scheduling at all.
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "fifo" }

// Schedule implements Scheduler.
func (FIFO) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Flows) == 0 {
		return map[string]unit.Rate{}, nil
	}
	ordered := sortedCopy(snap.Flows, func(a, b *FlowState) bool {
		return a.Release.Before(b.Release)
	})
	rates, err := net.GreedyFill(requestsOf(ordered))
	if err != nil {
		return nil, err
	}
	return rates, nil
}
