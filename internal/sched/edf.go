package sched

import (
	"echelonflow/internal/fabric"
	"echelonflow/internal/unit"
)

// EDF serves flows in ascending ideal-finish-time order with greedy
// filling — deadline-aware like EchelonMADD but per-flow: it ignores group
// structure (no simultaneous-finish classes, no minimal pacing, no
// inter-group ranking). The gap between EDF and EchelonMADD isolates how
// much of EchelonFlow's benefit comes from the arrangement-derived
// deadlines alone versus the full group treatment.
type EDF struct{}

// Name implements Scheduler.
func (EDF) Name() string { return "edf" }

// Schedule implements Scheduler.
func (EDF) Schedule(snap *Snapshot, net fabric.Fabric) (map[string]unit.Rate, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	if len(snap.Flows) == 0 {
		return map[string]unit.Rate{}, nil
	}
	ordered := sortedCopy(snap.Flows, func(a, b *FlowState) bool {
		return snap.Deadline(a).Before(snap.Deadline(b))
	})
	rates, err := net.GreedyFill(requestsOf(ordered))
	if err != nil {
		return nil, err
	}
	return rates, nil
}
